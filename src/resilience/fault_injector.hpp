// Deterministic fault injection for the resilience chaos suite.
//
// The solvers expose three hook sites — operator applies, preconditioner
// applies and block orthogonalization — through the same not-owned-pointer
// pattern as SolverOptions::trace and ::exec: a null injector (the
// default) reduces every hook to a pointer test, so production solves pay
// nothing. An attached injector counts visits per site and fires each
// scheduled FaultPlan exactly once, on the plan's N-th visit to its site,
// mutating the in-flight block (NaN / zeroed column / random perturbation)
// or throwing InjectedFault. Everything is seeded and visit-indexed, so a
// given (plan, solver, system) cell reproduces bit-for-bit — the chaos
// suite's assertions are deterministic, never flaky.
#pragma once

#include <complex>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "la/dense.hpp"

namespace bkr::resilience {

// Hook sites instrumented in the solvers (krylov_detail.hpp).
enum class FaultSite : int {
  OperatorApply = 0,   // block A·V (also residual recomputations)
  PrecondApply,        // block M^{-1}·R
  Orthogonalization,   // the block entering CholQR/TSQR normalization
  ShardHalo,           // gathered halo values of one shard (sharded applies)
};

inline constexpr int kFaultSiteCount = 4;

const char* site_name(FaultSite s);

enum class FaultKind : int {
  InjectNan = 0,  // overwrite one entry of the target column with quiet NaN
  ZeroColumn,     // zero the target column (exact rank deficiency)
  PerturbBlock,   // add magnitude-scaled random noise to the target column
  Throw,          // throw InjectedFault from inside the hook
};

inline constexpr int kFaultKindCount = 4;

const char* kind_name(FaultKind k);

// Thrown by FaultKind::Throw; carries the site so the solver entry point
// can map it to PreconditionerFailure vs Faulted.
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(FaultSite site, const std::string& what)
      : std::runtime_error(what), site_(site) {}
  [[nodiscard]] FaultSite site() const noexcept { return site_; }

 private:
  FaultSite site_;
};

struct FaultPlan {
  FaultSite site = FaultSite::OperatorApply;
  FaultKind kind = FaultKind::InjectNan;
  // Fire on the N-th hook visit to `site` (1-based), once.
  std::int64_t at_visit = 1;
  // Target column, clamped to the observed block width.
  index_t column = 0;
  // PerturbBlock noise scale.
  double magnitude = 1e6;
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0xb10c5eedULL) : seed_(seed) {}

  void schedule(const FaultPlan& plan) { plans_.push_back(Armed{plan, false}); }

  // Re-arm every plan and zero the visit counters (call between solves to
  // replay the same fault scenario).
  void reset();
  // Drop all plans and counters.
  void clear();

  // Hook entry point: counts the visit and applies any plan scheduled for
  // (site, visit). Called by the solvers with the in-flight block.
  template <class T>
  void at(FaultSite site, MatrixView<T> block);

  [[nodiscard]] std::int64_t visits(FaultSite site) const {
    return visits_[static_cast<int>(site)];
  }
  // Total plans fired so far.
  [[nodiscard]] std::int64_t injected() const { return injected_; }

 private:
  struct Armed {
    FaultPlan plan;
    bool fired = false;
  };

  std::vector<Armed> plans_;
  std::int64_t visits_[kFaultSiteCount] = {0, 0, 0, 0};
  std::int64_t injected_ = 0;
  std::uint64_t seed_;
};

extern template void FaultInjector::at<double>(FaultSite, MatrixView<double>);
extern template void FaultInjector::at<std::complex<double>>(FaultSite,
                                                             MatrixView<std::complex<double>>);

}  // namespace bkr::resilience
