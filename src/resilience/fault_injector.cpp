#include "resilience/fault_injector.hpp"

#include <algorithm>
#include <limits>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace bkr::resilience {

const char* site_name(FaultSite s) {
  switch (s) {
    case FaultSite::OperatorApply: return "operator-apply";
    case FaultSite::PrecondApply: return "precond-apply";
    case FaultSite::Orthogonalization: return "orthogonalization";
    case FaultSite::ShardHalo: return "shard-halo";
  }
  return "unknown";
}

const char* kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::InjectNan: return "inject-nan";
    case FaultKind::ZeroColumn: return "zero-column";
    case FaultKind::PerturbBlock: return "perturb-block";
    case FaultKind::Throw: return "throw";
  }
  return "unknown";
}

void FaultInjector::reset() {
  for (auto& armed : plans_) armed.fired = false;
  for (auto& v : visits_) v = 0;
  injected_ = 0;
}

void FaultInjector::clear() {
  plans_.clear();
  for (auto& v : visits_) v = 0;
  injected_ = 0;
}

template <class T>
void FaultInjector::at(FaultSite site, MatrixView<T> block) {
  BKR_REQUIRE(block.rows() >= 0 && block.cols() >= 0, "block.rows", block.rows(), "block.cols",
              block.cols());
  BKR_REQUIRE(block.ld() >= block.rows(), "block.ld", block.ld(), "block.rows", block.rows());
  const std::int64_t visit = ++visits_[static_cast<int>(site)];
  for (auto& armed : plans_) {
    if (armed.fired || armed.plan.site != site || armed.plan.at_visit != visit) continue;
    armed.fired = true;
    const index_t rows = block.rows();
    const index_t cols = block.cols();
    if (rows == 0 || cols == 0) continue;
    ++injected_;
    const index_t c = std::min<index_t>(std::max<index_t>(armed.plan.column, 0), cols - 1);
    switch (armed.plan.kind) {
      case FaultKind::InjectNan:
        block(rows / 2, c) =
            scalar_traits<T>::from_real(std::numeric_limits<real_t<T>>::quiet_NaN());
        break;
      case FaultKind::ZeroColumn:
        for (index_t i = 0; i < rows; ++i) block(i, c) = T(0);
        break;
      case FaultKind::PerturbBlock: {
        // Visit-indexed seed: a plan re-armed for a later solve perturbs
        // identically only when it fires at the same visit.
        Rng rng(static_cast<unsigned>(seed_ + 0x9e3779b9ULL * static_cast<std::uint64_t>(visit)));
        const T scale = scalar_traits<T>::from_real(real_t<T>(armed.plan.magnitude));
        for (index_t i = 0; i < rows; ++i) block(i, c) += scale * rng.scalar<T>();
        break;
      }
      case FaultKind::Throw:
        throw InjectedFault(site, std::string("injected fault at ") + site_name(site) +
                                      " visit " + std::to_string(visit));
    }
  }
}

template void FaultInjector::at<double>(FaultSite, MatrixView<double>);
template void FaultInjector::at<std::complex<double>>(FaultSite,
                                                      MatrixView<std::complex<double>>);

}  // namespace bkr::resilience
