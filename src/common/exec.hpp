// Kernel-execution interface: the facade the hot kernels are parameterized
// by, placed at the bottom of the module DAG.
//
// The dense/sparse kernel headers (la/blas.hpp, sparse/csr.hpp) sit below
// the parallel runtime in the layering spec (DESIGN.md §7: common → la →
// sparse → {direct,parallel,obs} → …), yet their hot loops fan out over
// the thread pool. This header resolves that inversion the textbook way:
// the *interface* (Kernel kinds, cutoffs, the KernelExecutor type with its
// lane-independent engage() predicate) lives here in common, while every
// member that needs the pool or the stats sink is declared out-of-line and
// defined in src/parallel/kernel_executor.cpp. Low layers compile against
// this header only; the linker binds them to the runtime above.
//
// The determinism contract (DESIGN.md §8) is owned by this interface: a
// kernel handed an executor must produce a result that depends only on the
// problem, never on lanes(). engage() therefore compares work against
// KernelCutoffs and never against the lane count, so the same algorithm
// (and the same floating-point result) is selected at every thread count.
#pragma once

#include <functional>
#include <memory>

#include "common/types.hpp"

namespace bkr {

class ThreadPool;  // parallel/thread_pool.hpp

namespace obs {
class KernelStats;  // obs/kernel_stats.hpp
}  // namespace obs

// The kernel families the executor dispatches. Kept in sync with
// kKernelNames in obs/kernel_stats.cpp.
enum class Kernel : int {
  Spmv = 0,     // CSR y = A x, row-partitioned
  Spmm,         // CSR Y = A X (multi-RHS), row-partitioned
  Gemm,         // dense C = op(A) op(B), panel-parallel
  Herk,         // Hermitian rank-k update / Gram matrix, pair-parallel
  Dot,          // chunked deterministic dot product
  Norms,        // fused per-column norm reductions
  Trsm,         // triangular solves, row/column partitioned
};

inline constexpr int kKernelCount = 7;

// Work floors below which kernels stay on the legacy serial path. The
// floors are deliberately coarse: fanning out a 100-element dot costs more
// in wake-up latency than the arithmetic saves.
struct KernelCutoffs {
  index_t spmv_nnz = 8192;      // nonzeros before a sparse apply fans out
  index_t gemm_work = 16384;    // output-elements x inner-length for dense kernels
  index_t reduce_elems = 8192;  // scalar elements before chunked reductions kick in
};

class KernelExecutor {
 public:
  // Wrap an existing pool (not owned; must outlive the executor). A null
  // pool behaves like a 1-lane executor: the executor code paths (and
  // their deterministic reduction orders) are taken, executed inline.
  explicit KernelExecutor(ThreadPool* pool, KernelCutoffs cutoffs = {});

  // Own a private pool of `threads` lanes (0 picks hardware concurrency).
  explicit KernelExecutor(index_t threads, KernelCutoffs cutoffs = {});

  ~KernelExecutor();
  KernelExecutor(const KernelExecutor&) = delete;
  KernelExecutor& operator=(const KernelExecutor&) = delete;

  [[nodiscard]] index_t lanes() const;
  [[nodiscard]] const KernelCutoffs& cutoffs() const { return cutoffs_; }

  // True when a kernel with `work` units should leave the legacy serial
  // path. Depends on the work size only — NOT on lanes() — so the same
  // algorithm (and the same floating-point result) is selected at every
  // thread count.
  [[nodiscard]] bool engage(Kernel kind, index_t work) const {
    switch (kind) {
      case Kernel::Spmv:
      case Kernel::Spmm:
        return work >= cutoffs_.spmv_nnz;
      case Kernel::Gemm:
      case Kernel::Herk:
      case Kernel::Trsm:
        return work >= cutoffs_.gemm_work;
      case Kernel::Dot:
      case Kernel::Norms:
        return work >= cutoffs_.reduce_elems;
    }
    return false;
  }

  // Run fn(i) for i in [0, ntasks): on the pool when more than one lane is
  // available, inline otherwise. Tasks must write disjoint state; the
  // caller owns any ordered combine step.
  void run(Kernel kind, index_t ntasks, const std::function<void(index_t)>& fn) const;

  // Mutable so kernels taking `const KernelExecutor*` can account.
  // (Dereferencing through the incomplete type is fine; member calls need
  // obs/kernel_stats.hpp, which only the layers above la may include.)
  [[nodiscard]] obs::KernelStats& stats() const { return *stats_; }

  // Process-wide executor over ThreadPool::global() (BKR_THREADS-sized).
  static KernelExecutor& global();

 private:
  std::unique_ptr<ThreadPool> owned_;
  ThreadPool* pool_ = nullptr;
  KernelCutoffs cutoffs_;
  mutable std::unique_ptr<obs::KernelStats> stats_;
};

}  // namespace bkr
