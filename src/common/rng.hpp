// Deterministic random number generation for reproducible workloads.
//
// Every random workload in the test suite and the benchmark harnesses is
// seeded explicitly so that paper-reproduction runs are repeatable.
#pragma once

#include <complex>
#include <random>

#include "common/types.hpp"

namespace bkr {

class Rng {
 public:
  explicit Rng(unsigned seed = 0x5eed) : gen_(seed) {}

  // Uniform in [-1, 1] (real part only for real T, both parts for complex).
  template <class T>
  T scalar() {
    std::uniform_real_distribution<real_t<T>> d(-1.0, 1.0);
    if constexpr (is_complex_v<T>) {
      const auto re = d(gen_);
      const auto im = d(gen_);
      return T(re, im);
    } else {
      return d(gen_);
    }
  }

  double uniform(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(gen_);
  }

  index_t index(index_t lo, index_t hi) {  // inclusive bounds
    std::uniform_int_distribution<index_t> d(lo, hi);
    return d(gen_);
  }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace bkr
