// Contract checking for kernel and solver entry points.
//
// The dense LA kernels, the sparse kernels and the solver drivers silently
// corrupt results when a dimension, leading dimension or factorization
// status code is mishandled; in checked builds every such entry point
// validates its contract and throws ContractViolation (with file:line and
// the offending operand values) instead. In release builds the macros
// compile to nothing — the operands are not even evaluated — so the hot
// paths carry zero overhead.
//
// Activation, per translation unit, in priority order:
//   1. BKR_FORCE_CONTRACTS (0/1)  — per-TU override, used by the tests;
//   2. BKR_ENABLE_CONTRACTS (0/1) — build-level switch (CMake -DBKR_CONTRACTS=ON,
//      always on for the unit-test target and the sanitizer presets);
//   3. default: on when NDEBUG is not defined (plain Debug builds).
//
// Macro summary (all variadic arguments are name/value pairs reported in
// the exception message, e.g. BKR_REQUIRE(n > 0, "n", n)):
//   BKR_REQUIRE(cond, ...)            — precondition on caller-supplied data
//   BKR_ENSURE(cond, ...)             — postcondition on produced data
//   BKR_ASSERT(cond, ...)             — internal invariant
//   BKR_ASSERT_SHAPE(view, rows, cols) — matrix/view dimension check
//
// Like <cassert>, the macro section below sits outside the include guard:
// a TU may re-include this header with a different BKR_FORCE_CONTRACTS to
// switch checking on or off mid-file (the contract tests use this to prove
// the compiled-out form evaluates nothing).
#ifndef BKR_COMMON_CONTRACTS_HPP_
#define BKR_COMMON_CONTRACTS_HPP_

#include <complex>
#include <sstream>
#include <stdexcept>
#include <string>

namespace bkr::contracts {

enum class Kind { Precondition, Postcondition, Invariant, Shape };

inline const char* kind_name(Kind kind) noexcept {
  switch (kind) {
    case Kind::Precondition: return "precondition";
    case Kind::Postcondition: return "postcondition";
    case Kind::Invariant: return "invariant";
    case Kind::Shape: return "shape contract";
  }
  return "contract";
}

// Thrown by every failed contract. Derives from logic_error: a violation
// is a programming error in the caller, unlike the std::runtime_error
// family used for numerical failures (singular pivots, non-convergence).
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(Kind kind, const std::string& what)
      : std::logic_error(what), kind_(kind) {}
  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

template <class V>
std::string repr(const V& value) {
  std::ostringstream os;
  os << value;
  return os.str();
}

// Operand formatting: describe("m", m, "n", n) -> "m=3, n=4".
inline std::string describe() { return {}; }
template <class V, class... Rest>
std::string describe(const char* name, const V& value, const Rest&... rest) {
  std::string out = std::string(name) + "=" + repr(value);
  const std::string tail = describe(rest...);
  if (!tail.empty()) {
    out += ", ";
    out += tail;
  }
  return out;
}

[[noreturn]] void fail(Kind kind, const char* condition, const char* file, long line,
                       const std::string& operands);

// True when the bkr library objects themselves were compiled with checks
// (tests use this to skip firing expectations against an unchecked lib).
[[nodiscard]] bool library_checks_enabled() noexcept;

}  // namespace bkr::contracts

// ---------------------------------------------------------------------------
// Concurrency annotations (DESIGN.md §7, "bkr-analyze"). Unconditional
// no-ops in every build mode — they exist purely as machine-readable
// source markers for the cross-TU project-model stage of tools/bkr_lint:
//
//   BKR_GUARDED_BY(mu)       on a data member: every access must happen in
//                            a scope that visibly holds `mu` (lock_guard /
//                            unique_lock / scoped_lock / .lock()), or in a
//                            function annotated BKR_REQUIRES_LOCK(mu).
//   BKR_ACQUIRED_BEFORE(mu)  on a mutex member: this mutex is always
//                            acquired before `mu`; the analyzer flags any
//                            observed reverse nesting (lock-order check).
//   BKR_REQUIRES_LOCK(mu)    after a function declarator: callers must hold
//                            `mu`; the analyzer seeds the function's lock
//                            set with it instead of flagging its accesses.
//   BKR_LOCK_FREE            on a member synchronized by its own atomicity;
//                            the analyzer verifies the declared type is a
//                            std::atomic so the marker cannot go stale.
//   BKR_THREAD_CONFINED      on a member owned by the attaching thread by
//                            protocol (e.g. a per-solve trace sink); the
//                            analyzer flags any access from inside a lambda
//                            handed to parallel_for/KernelExecutor::run.
//
// Placement convention: directly after the declarator name, before any
// initializer — `SchwarzStats stats_ BKR_GUARDED_BY(stats_mutex_);`.
#define BKR_GUARDED_BY(mu)
#define BKR_ACQUIRED_BEFORE(mu)
#define BKR_REQUIRES_LOCK(mu)
#define BKR_LOCK_FREE
#define BKR_THREAD_CONFINED

// ---------------------------------------------------------------------------
// Hot-path annotations (DESIGN.md §11, "bkr-hotpath"). Unconditional no-ops
// like the concurrency markers above — they seed the call-graph hot-path
// stage of tools/bkr_lint:
//
//   BKR_HOT       in a function head: the function is per-iteration work
//                 (a kernel, an orthogonalization step). Hotness propagates
//                 transitively to every project function it calls, and the
//                 hot-path discipline rules (no allocation growth without a
//                 visible reserve, no locks, no I/O, no throw outside the
//                 breakdown protocol) apply to the whole hot region.
//   BKR_COLD      in a function head or before a bare `{` block inside hot
//                 code: a slow path (recovery ladder, restart eigenproblem,
//                 setup). The rules are suspended inside it and calls made
//                 from it do not spread hotness. On a class head it exempts
//                 that interface's virtual methods from hot-path-virtual
//                 (observational interfaces such as trace sinks, whose
//                 hot-path cost is a null-pointer test).
//   BKR_HOT_LOOP  directly before a loop statement: the per-iteration
//                 iterate loop of a solver. Inside its body two stricter
//                 rules also fire: no container/matrix construction at all
//                 (hot-path-alloc) and no virtual dispatch through a
//                 project interface (hot-path-virtual).
//
// Placement convention: `BKR_HOT void gemm(...)` / `class BKR_COLD Sink` /
// `BKR_HOT_LOOP while (it < max) { ... }`.
#define BKR_HOT
#define BKR_COLD
#define BKR_HOT_LOOP

// ---------------------------------------------------------------------------
// Precision-flow annotations (DESIGN.md §14, "bkr-fpflow"). Unconditional
// no-ops like the lock and hot-path markers above — they are the vocabulary
// of the intra-function precision-flow stage of tools/bkr_lint, which is
// the precondition for any mixed-precision kernel (ROADMAP item 3): before
// a kernel may narrow to fp32, the analyzer must know *where* narrowing is
// permitted and *which* denominators and accumulations are guarded.
//
//   BKR_PRECISION_BOUNDARY  on a statement or function head: this is the
//                           deliberate fp32 <-> fp64 conversion point of a
//                           mixed-precision component (e.g. the promotion
//                           of an fp32 SpMM result back to the fp64 outer
//                           iteration). Marks the component for the
//                           oracle-mismatch reachability rule.
//   BKR_ALLOW_NARROWING     on a statement or function head: the double ->
//                           float (or complex<double> -> complex<float>)
//                           flow on this line / in this function is
//                           intentional. Without it, every narrowing
//                           assignment, initialization, cast or return is
//                           an implicit-narrowing finding.
//   BKR_GUARDED_DIV         on a statement: the division by a computed
//                           norm / dot / pivot on this line is protected by
//                           an invariant the analyzer cannot see (e.g. an
//                           early return that excludes the zero case).
//                           Requires a justification comment, like a
//                           baseline entry.
//   BKR_TOLERANCE_ORACLE(c) in a test file: the suite containing it is the
//                           tolerance-based oracle covering the narrowing
//                           component `c` (a class or function name). Every
//                           solver-reachable BKR_ALLOW_NARROWING component
//                           must be named by exactly such an annotation or
//                           bkr-fpflow reports oracle-mismatch.
//
// Placement convention: `BKR_ALLOW_NARROWING const float vf = float(v);` /
// `BKR_GUARDED_DIV const T tau = num / beta;  // beta != 0: early return` /
// `BKR_TOLERANCE_ORACLE(MixedPrecisionOperator);` at test-file scope.
#define BKR_PRECISION_BOUNDARY
#define BKR_ALLOW_NARROWING
#define BKR_GUARDED_DIV
#define BKR_TOLERANCE_ORACLE(component)

#endif  // BKR_COMMON_CONTRACTS_HPP_

// ---------------------------------------------------------------------------
// Macro layer. Deliberately OUTSIDE the include guard (assert.h-style) so a
// re-include with a different BKR_FORCE_CONTRACTS re-selects the macros.
// ---------------------------------------------------------------------------

#undef BKR_CONTRACTS_ACTIVE
#if defined(BKR_FORCE_CONTRACTS)
#if BKR_FORCE_CONTRACTS
#define BKR_CONTRACTS_ACTIVE 1
#else
#define BKR_CONTRACTS_ACTIVE 0
#endif
#elif defined(BKR_ENABLE_CONTRACTS) && BKR_ENABLE_CONTRACTS
#define BKR_CONTRACTS_ACTIVE 1
#elif !defined(NDEBUG)
#define BKR_CONTRACTS_ACTIVE 1
#else
#define BKR_CONTRACTS_ACTIVE 0
#endif

#undef BKR_REQUIRE
#undef BKR_ENSURE
#undef BKR_ASSERT
#undef BKR_ASSERT_SHAPE
#undef BKR_CONTRACT_DETAIL_CHECK

#if BKR_CONTRACTS_ACTIVE

#define BKR_CONTRACT_DETAIL_CHECK(kind, cond, ...)                                       \
  do {                                                                                   \
    if (!(cond))                                                                         \
      ::bkr::contracts::fail(kind, #cond, __FILE__, __LINE__,                            \
                             ::bkr::contracts::describe(__VA_ARGS__));                   \
  } while (false)

#define BKR_REQUIRE(cond, ...) \
  BKR_CONTRACT_DETAIL_CHECK(::bkr::contracts::Kind::Precondition, cond, __VA_ARGS__)
#define BKR_ENSURE(cond, ...) \
  BKR_CONTRACT_DETAIL_CHECK(::bkr::contracts::Kind::Postcondition, cond, __VA_ARGS__)
#define BKR_ASSERT(cond, ...) \
  BKR_CONTRACT_DETAIL_CHECK(::bkr::contracts::Kind::Invariant, cond, __VA_ARGS__)

#define BKR_ASSERT_SHAPE(view, expected_rows, expected_cols)                             \
  do {                                                                                   \
    if ((view).rows() != (expected_rows) || (view).cols() != (expected_cols))            \
      ::bkr::contracts::fail(                                                            \
          ::bkr::contracts::Kind::Shape, #view, __FILE__, __LINE__,                      \
          ::bkr::contracts::describe("rows", (view).rows(), "cols", (view).cols(),       \
                                     "expected_rows", (expected_rows), "expected_cols",  \
                                     (expected_cols)));                                  \
  } while (false)

#else  // compiled out: type-check the condition, evaluate nothing

#define BKR_REQUIRE(cond, ...) static_cast<void>(sizeof(!(cond)))
#define BKR_ENSURE(cond, ...) static_cast<void>(sizeof(!(cond)))
#define BKR_ASSERT(cond, ...) static_cast<void>(sizeof(!(cond)))
#define BKR_ASSERT_SHAPE(view, expected_rows, expected_cols) \
  static_cast<void>(sizeof((view).rows() + (expected_rows) + (expected_cols)))

#endif  // BKR_CONTRACTS_ACTIVE
