// Minimal command-line option parsing for the driver executables.
//
// Mirrors the artifact's "-hpddm_krylov_method gcrodr -hpddm_recycle 10"
// style: flags are "-name value" (or "-name" for booleans); unknown flags
// are collected so drivers can report them.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace bkr {

class Options {
 public:
  Options(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.size() < 2 || arg[0] != '-') {
        positional_.push_back(std::move(arg));
        continue;
      }
      const std::string name = arg.substr(1);
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        values_[name] = argv[++i];
      } else {
        values_[name] = "";  // boolean flag
      }
    }
  }

  [[nodiscard]] bool has(const std::string& name) const { return values_.count(name) > 0; }

  [[nodiscard]] std::string get(const std::string& name, const std::string& fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  [[nodiscard]] index_t get(const std::string& name, index_t fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() || it->second.empty() ? fallback : index_t(std::stoll(it->second));
  }

  [[nodiscard]] double get(const std::string& name, double fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() || it->second.empty() ? fallback : std::stod(it->second);
  }

  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }
  [[nodiscard]] const std::map<std::string, std::string>& all() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace bkr
