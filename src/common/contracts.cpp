#include "common/contracts.hpp"

namespace bkr::contracts {

void fail(Kind kind, const char* condition, const char* file, long line,
          const std::string& operands) {
  std::ostringstream os;
  os << kind_name(kind) << " violated at " << file << ":" << line << ": " << condition;
  if (!operands.empty()) os << " [" << operands << "]";
  throw ContractViolation(kind, os.str());
}

bool library_checks_enabled() noexcept { return BKR_CONTRACTS_ACTIVE != 0; }

}  // namespace bkr::contracts
