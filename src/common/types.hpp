// Scalar abstraction shared by every module.
//
// The library is templated on the scalar type of the linear systems it
// manipulates; the two instantiated types are `double` (Poisson,
// elasticity) and `std::complex<double>` (time-harmonic Maxwell). The
// traits below give every algorithm a uniform way to take conjugates,
// magnitudes, and to reason about the associated real type.
#pragma once

#include <cmath>
#include <complex>
#include <cstddef>
#include <type_traits>

namespace bkr {

using index_t = std::ptrdiff_t;

template <class T>
struct scalar_traits {
  using real_type = T;
  static constexpr bool is_complex = false;
  static T conj(T x) noexcept { return x; }
  static T real(T x) noexcept { return x; }
  static T imag(T) noexcept { return T(0); }
  static T abs(T x) noexcept { return std::abs(x); }
  static T from_real(real_type r) noexcept { return r; }
};

template <class R>
struct scalar_traits<std::complex<R>> {
  using real_type = R;
  static constexpr bool is_complex = true;
  static std::complex<R> conj(std::complex<R> x) noexcept { return std::conj(x); }
  static R real(std::complex<R> x) noexcept { return x.real(); }
  static R imag(std::complex<R> x) noexcept { return x.imag(); }
  static R abs(std::complex<R> x) noexcept { return std::abs(x); }
  static std::complex<R> from_real(R r) noexcept { return {r, R(0)}; }
};

template <class T>
using real_t = typename scalar_traits<T>::real_type;

template <class T>
inline constexpr bool is_complex_v = scalar_traits<T>::is_complex;

// conj/abs helpers that work uniformly on real and complex scalars.
template <class T>
inline T conj(T x) noexcept {
  return scalar_traits<T>::conj(x);
}
template <class T>
inline real_t<T> abs_val(T x) noexcept {
  return scalar_traits<T>::abs(x);
}
template <class T>
inline real_t<T> real_part(T x) noexcept {
  return scalar_traits<T>::real(x);
}

}  // namespace bkr
