// QR factorizations.
//
// Three flavours are needed by the solvers:
//  * HouseholderQR — dense QR of small matrices (e.g. H_m P_k at GCRO-DR
//    restarts, fig. 1 lines 18/35 of the paper).
//  * IncrementalQR — column-by-column QR of the (block) Hessenberg matrix,
//    updated once per Arnoldi iteration; this is what makes the paper's
//    eq. (2) form of the deflation eigenproblem cheap (Q and R are already
//    available when the cycle ends).
//  * CholQR — tall-skinny QR via the Gram matrix, the single-reduction
//    orthogonalization the paper selects (section III-A), with a
//    rank-revealing pivoted variant used for breakdown detection.
#pragma once

#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "la/blas.hpp"
#include "la/dense.hpp"
#include "la/factor.hpp"

namespace bkr {

namespace detail {

// LAPACK-style ?larfg: generate an elementary reflector H = I - tau v v^H
// with v(0) = 1 such that H^H x = beta e_1, beta real. `x` has n entries;
// on return x(0) = beta and x(1:) holds the reflector tail.
template <class T>
T make_reflector(index_t n, T* x) {
  using R = real_t<T>;
  if (n <= 0) return T(0);
  const T alpha = x[0];
  R xnorm(0);
  for (index_t i = 1; i < n; ++i) {
    const R a = abs_val(x[i]);
    xnorm += a * a;
  }
  const R alpha_im2 = [&] {
    if constexpr (is_complex_v<T>) {
      const R im = scalar_traits<T>::imag(alpha);
      return im * im;
    } else {
      return R(0);
    }
  }();
  if (xnorm == R(0) && alpha_im2 == R(0)) {
    return T(0);  // already in the right form
  }
  const R ar = real_part(alpha);
  R beta = -std::copysign(std::sqrt(ar * ar + alpha_im2 + xnorm), ar);
  const T tau = (scalar_traits<T>::from_real(beta) - alpha) / scalar_traits<T>::from_real(beta);
  const T scale = T(1) / (alpha - scalar_traits<T>::from_real(beta));
  for (index_t i = 1; i < n; ++i) x[i] *= scale;
  x[0] = scalar_traits<T>::from_real(beta);
  return tau;
}

// Apply H^H = I - conj(tau) v v^H (conj = true) or H (conj = false) to a
// block of columns, where v = [1; tail] lives at `v_tail` with n-1 entries.
template <class T>
void apply_reflector(index_t n, const T* v_tail, T tau, bool conj_tau, MatrixView<T> c) {
  if (tau == T(0)) return;
  const T t = conj_tau ? conj(tau) : tau;
  for (index_t j = 0; j < c.cols(); ++j) {
    T* cj = c.col(j);
    T s = cj[0];
    for (index_t i = 1; i < n; ++i) s += conj(v_tail[i - 1]) * cj[i];
    s *= t;
    cj[0] -= s;
    for (index_t i = 1; i < n; ++i) cj[i] -= v_tail[i - 1] * s;
  }
}

}  // namespace detail

// Dense Householder QR of an m x n matrix (m >= n).
template <class T>
class HouseholderQR {
 public:
  explicit HouseholderQR(DenseMatrix<T> a) : a_(std::move(a)), tau_(size_t(a_.cols())) {
    const index_t m = a_.rows(), n = a_.cols();
    BKR_REQUIRE(m >= n, "a.rows", m, "a.cols", n);
    for (index_t j = 0; j < n && j < m; ++j) {
      tau_[size_t(j)] = detail::make_reflector(m - j, &a_(j, j));
      if (j + 1 < n)
        detail::apply_reflector(m - j, &a_(j + 1, j), tau_[size_t(j)], true,
                                a_.block(j, j + 1, m - j, n - j - 1));
    }
  }

  [[nodiscard]] index_t rows() const { return a_.rows(); }
  [[nodiscard]] index_t cols() const { return a_.cols(); }

  // B := Q^H B (B has `rows()` rows).
  void apply_qt(MatrixView<T> b) const {
    const index_t m = a_.rows(), n = a_.cols();
    for (index_t j = 0; j < n && j < m; ++j)
      detail::apply_reflector(m - j, tail_ptr(j), tau_[size_t(j)], true,
                              b.block(j, 0, m - j, b.cols()));
  }

  // B := Q B.
  void apply_q(MatrixView<T> b) const {
    const index_t m = a_.rows(), n = a_.cols();
    for (index_t j = std::min(n, m) - 1; j >= 0; --j)
      detail::apply_reflector(m - j, tail_ptr(j), tau_[size_t(j)], false,
                              b.block(j, 0, m - j, b.cols()));
  }

  // The upper-triangular factor (n x n).
  [[nodiscard]] DenseMatrix<T> r() const {
    const index_t n = a_.cols();
    DenseMatrix<T> out(n, n);
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i <= j && i < a_.rows(); ++i) out(i, j) = a_(i, j);
    return out;
  }

  // Thin Q (m x n), formed by applying the reflectors to the identity.
  [[nodiscard]] DenseMatrix<T> q_thin() const {
    const index_t m = a_.rows(), n = a_.cols();
    DenseMatrix<T> q(m, n);
    for (index_t j = 0; j < n; ++j) q(j, j) = T(1);
    apply_q(q.view());
    return q;
  }

 private:
  // Pointer to the reflector tail of column j (never dereferenced when the
  // tail is empty); raw arithmetic avoids the bounds-checked accessor.
  [[nodiscard]] const T* tail_ptr(index_t j) const {
    return a_.data() + (j + 1) + j * a_.ld();
  }

  DenseMatrix<T> a_;
  std::vector<T> tau_;
};

// Incremental QR of a matrix whose columns arrive one at a time with
// growing row support (the Hessenberg pattern: column j is nonzero in its
// first `height` rows only). Maintains reflectors so that R, Q^H b and the
// thin Q are all available at any point of the Arnoldi process.
template <class T>
class IncrementalQR {
 public:
  IncrementalQR() = default;  // empty; reshape() before use
  IncrementalQR(index_t max_rows, index_t max_cols)
      : fact_(max_rows, max_cols), heights_(size_t(max_cols)), tau_(size_t(max_cols)) {}

  [[nodiscard]] index_t cols() const { return ncols_; }
  [[nodiscard]] index_t max_rows() const { return fact_.rows(); }
  [[nodiscard]] index_t max_cols() const { return fact_.cols(); }

  void reset() {
    ncols_ = 0;
    fact_.set_zero();
  }

  // Restore the state of a freshly constructed IncrementalQR(max_rows,
  // max_cols) while reusing the existing storage (capacity only grows).
  // This is what lets a restart cycle rebuild its Hessenberg QR without
  // touching the allocator once the workspace has warmed up.
  void reshape(index_t max_rows, index_t max_cols) {
    fact_.resize(max_rows, max_cols);
    heights_.assign(size_t(max_cols), 0);
    tau_.assign(size_t(max_cols), T(0));
    ncols_ = 0;
  }

  // Append one column whose first `height` entries are in `col`.
  BKR_HOT void add_column(const T* col, index_t height) {
    const index_t j = ncols_;
    BKR_REQUIRE(height <= fact_.rows() && j < fact_.cols(), "height", height, "max_rows",
                fact_.rows(), "ncols", j, "max_cols", fact_.cols());
    for (index_t i = 0; i < height; ++i) fact_(i, j) = col[i];
    for (index_t i = height; i < fact_.rows(); ++i) fact_(i, j) = T(0);
    // Apply previous reflectors.
    auto cj = fact_.block(0, j, fact_.rows(), 1);
    for (index_t l = 0; l < j; ++l) {
      const index_t ext = heights_[size_t(l)];
      detail::apply_reflector(ext - l, tail_ptr(l), tau_[size_t(l)], true,
                              cj.block(l, 0, ext - l, 1));
    }
    // New reflector annihilating rows (j+1 .. height).
    heights_[size_t(j)] = std::max(height, j + 1);
    tau_[size_t(j)] = detail::make_reflector(heights_[size_t(j)] - j, &fact_(j, j));
    ++ncols_;
  }

  // R entry (i <= j < cols()).
  [[nodiscard]] T r(index_t i, index_t j) const {
    assert(i <= j && j < ncols_);
    return fact_(i, j);
  }

  [[nodiscard]] DenseMatrix<T> r_matrix() const {
    DenseMatrix<T> out(ncols_, ncols_);
    for (index_t j = 0; j < ncols_; ++j)
      for (index_t i = 0; i <= j; ++i) out(i, j) = fact_(i, j);
    return out;
  }

  // b := Q^H b over the first `nrows` rows (nrows >= tallest reflector).
  void apply_qt(MatrixView<T> b) const {
    for (index_t l = 0; l < ncols_; ++l) {
      const index_t ext = heights_[size_t(l)];
      assert(ext <= b.rows());
      detail::apply_reflector(ext - l, tail_ptr(l), tau_[size_t(l)], true,
                              b.block(l, 0, ext - l, b.cols()));
    }
  }

  // b := (product of reflectors `from` .. cols()-1)^H b — the incremental
  // update applied to the least-squares right-hand side after new columns
  // are appended.
  void apply_qt_range(MatrixView<T> b, index_t from) const {
    for (index_t l = from; l < ncols_; ++l) {
      const index_t ext = heights_[size_t(l)];
      assert(ext <= b.rows());
      detail::apply_reflector(ext - l, tail_ptr(l), tau_[size_t(l)], true,
                              b.block(l, 0, ext - l, b.cols()));
    }
  }

  // b := Q b.
  void apply_q(MatrixView<T> b) const {
    for (index_t l = ncols_ - 1; l >= 0; --l) {
      const index_t ext = heights_[size_t(l)];
      assert(ext <= b.rows());
      detail::apply_reflector(ext - l, tail_ptr(l), tau_[size_t(l)], false,
                              b.block(l, 0, ext - l, b.cols()));
    }
  }

  // Thin Q: nrows x cols().
  [[nodiscard]] DenseMatrix<T> q_thin(index_t nrows) const {
    DenseMatrix<T> q(nrows, ncols_);
    for (index_t j = 0; j < ncols_; ++j) q(j, j) = T(1);
    apply_q(q.view());
    return q;
  }

 private:
  [[nodiscard]] const T* tail_ptr(index_t l) const {
    return fact_.data() + (l + 1) + l * fact_.ld();
  }

  DenseMatrix<T> fact_;
  std::vector<index_t> heights_;
  std::vector<T> tau_;
  index_t ncols_ = 0;
};

// CholQR: factor V = Q R with R upper triangular via the Gram matrix.
// On success V is overwritten with Q and `r` (p x p) with R. Returns false
// if the Gram matrix is numerically indefinite (block breakdown); callers
// fall back to Householder in that case.
template <class T>
BKR_HOT bool cholqr(MatrixView<T> v, MatrixView<T> r, const KernelExecutor* ex = nullptr) {
  const index_t p = v.cols();
  BKR_REQUIRE(v.rows() >= p, "v.rows", v.rows(), "v.cols", p);
  BKR_ASSERT_SHAPE(r, p, p);
  // Fused block reduction: the Gram matrix is one herk pass (pair-parallel
  // with an executor); the small p x p Cholesky stays serial.
  gram<T>(MatrixView<const T>(v.data(), v.rows(), v.cols(), v.ld()), r, ex);
  if (!cholesky_upper(r)) return false;
  trsm_right_upper<T>(MatrixView<const T>(r.data(), p, p, r.ld()), v, ex);
  return true;
}

// Rank-revealing diagnostic: numerical rank of the column space of V via
// pivoted Cholesky of its Gram matrix (V is not modified). Used at
// (B)GCRO-DR restarts to detect nearly-colinear residual columns.
template <class T>
index_t cholqr_rank(MatrixView<const T> v, real_t<T> tol = real_t<T>(1e-12)) {
  const index_t p = v.cols();
  DenseMatrix<T> g(p, p);
  gram<T>(v, g.view());
  std::vector<index_t> perm;
  return pivoted_cholesky(g.view(), perm, tol);
}

// Householder-based tall-skinny QR fallback (always succeeds for full-rank
// V): V := Q (thin), r := R. Only reached on a CholQR breakdown, so it is
// a cold recovery rung despite its hot caller.
template <class T>
BKR_COLD void householder_tsqr(MatrixView<T> v, MatrixView<T> r) {
  BKR_REQUIRE(v.rows() >= v.cols(), "v.rows", v.rows(), "v.cols", v.cols());
  BKR_ASSERT_SHAPE(r, v.cols(), v.cols());
  HouseholderQR<T> qr(copy_of(MatrixView<const T>(v.data(), v.rows(), v.cols(), v.ld())));
  DenseMatrix<T> rr = qr.r();
  copy_into<T>(rr.view(), r);
  DenseMatrix<T> q = qr.q_thin();
  copy_into<T>(q.view(), v);
}

}  // namespace bkr
