#include "la/eig.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "common/contracts.hpp"
#include "la/blas.hpp"
#include "la/factor.hpp"

namespace bkr {
namespace {

// Householder similarity reduction A -> Q^H A Q = H (upper Hessenberg),
// accumulating Q.
void hessenberg_reduce(DenseMatrix<cplx>& a, DenseMatrix<cplx>& q) {
  const index_t n = a.rows();
  q = DenseMatrix<cplx>::identity(n);
  std::vector<cplx> v(static_cast<size_t>(n));
  for (index_t j = 0; j + 2 < n; ++j) {
    // Reflector annihilating a(j+2 .. n-1, j).
    const index_t len = n - j - 1;
    for (index_t i = 0; i < len; ++i) v[size_t(i)] = a(j + 1 + i, j);
    cplx alpha = v[0];
    double xnorm = 0;
    for (index_t i = 1; i < len; ++i) xnorm += std::norm(v[size_t(i)]);
    if (xnorm == 0.0 && alpha.imag() == 0.0) continue;
    const double anorm = std::sqrt(std::norm(alpha) + xnorm);
    const double beta = -std::copysign(anorm, alpha.real() == 0.0 ? 1.0 : alpha.real());
    // beta = -copysign(anorm, ...) with anorm > 0 (the xnorm == 0 &&
    // imag == 0 case continued above), and alpha - beta cannot cancel:
    // copysign gives beta the sign opposite to alpha's real part.
    BKR_GUARDED_DIV const cplx tau = (cplx(beta) - alpha) / beta;
    BKR_GUARDED_DIV const cplx scale = 1.0 / (alpha - cplx(beta));
    v[0] = 1.0;
    for (index_t i = 1; i < len; ++i) v[size_t(i)] *= scale;
    a(j + 1, j) = beta;
    for (index_t i = j + 2; i < n; ++i) a(i, j) = 0.0;
    // A := H^H A on rows j+1..n-1, columns j+1..n-1.
    for (index_t c = j + 1; c < n; ++c) {
      cplx s = 0;
      for (index_t i = 0; i < len; ++i) s += std::conj(v[size_t(i)]) * a(j + 1 + i, c);
      s *= std::conj(tau);
      for (index_t i = 0; i < len; ++i) a(j + 1 + i, c) -= v[size_t(i)] * s;
    }
    // A := A H on all rows, columns j+1..n-1.
    for (index_t r = 0; r < n; ++r) {
      cplx s = 0;
      for (index_t i = 0; i < len; ++i) s += a(r, j + 1 + i) * v[size_t(i)];
      s *= tau;
      for (index_t i = 0; i < len; ++i) a(r, j + 1 + i) -= s * std::conj(v[size_t(i)]);
    }
    // Q := Q H.
    for (index_t r = 0; r < n; ++r) {
      cplx s = 0;
      for (index_t i = 0; i < len; ++i) s += q(r, j + 1 + i) * v[size_t(i)];
      s *= tau;
      for (index_t i = 0; i < len; ++i) q(r, j + 1 + i) -= s * std::conj(v[size_t(i)]);
    }
  }
}

struct Rotation {
  cplx c;  // |c|^2 + |s|^2 = 1, c real in the LAPACK convention we use
  cplx s;
};

// Complex Givens rotation zeroing b: [c conj(s); -s c]^H? We use the
// convention G = [c s; -conj(s) c], c real >= 0, so that
// G^H [a; b] = [r; 0].
Rotation make_rotation(cplx a, cplx b) {
  const double na = std::abs(a), nb = std::abs(b);
  if (nb == 0.0) return {1.0, 0.0};
  const double r = std::hypot(na, nb);
  if (na == 0.0) return {0.0, b / r};
  const cplx c = na / r;
  const cplx s = (a / na) * std::conj(b) / r;
  return {c, std::conj(s)};
}

// Single-shift (Wilkinson) QR iteration bringing an upper Hessenberg
// complex matrix to upper triangular (Schur) form, accumulating into q.
void hessenberg_schur(DenseMatrix<cplx>& h, DenseMatrix<cplx>& q) {
  const index_t n = h.rows();
  const double eps = std::numeric_limits<double>::epsilon();
  index_t hi = n - 1;
  index_t iterations_left = 60 * std::max<index_t>(n, 1);
  while (hi > 0) {
    if (iterations_left-- <= 0)
      throw EigFailure("eig: Hessenberg QR iteration failed to converge");
    // Deflate small subdiagonals.
    index_t lo = hi;
    while (lo > 0) {
      const double sub = std::abs(h(lo, lo - 1));
      const double scale = std::abs(h(lo - 1, lo - 1)) + std::abs(h(lo, lo));
      if (sub <= eps * std::max(scale, 1e-300)) {
        h(lo, lo - 1) = 0.0;
        break;
      }
      --lo;
    }
    if (lo == hi) {
      --hi;
      continue;
    }
    // Wilkinson shift from the trailing 2x2 of the active block.
    const cplx a = h(hi - 1, hi - 1), b = h(hi - 1, hi), c = h(hi, hi - 1), d = h(hi, hi);
    const cplx tr = a + d;
    const cplx det = a * d - b * c;
    const cplx disc = std::sqrt(tr * tr - 4.0 * det);
    const cplx l1 = 0.5 * (tr + disc), l2 = 0.5 * (tr - disc);
    const cplx shift = (std::abs(l1 - d) < std::abs(l2 - d)) ? l1 : l2;
    // Implicit single-shift sweep: chase the bulge with Givens rotations.
    cplx x = h(lo, lo) - shift;
    cplx y = h(lo + 1, lo);
    for (index_t k = lo; k < hi; ++k) {
      const Rotation g = make_rotation(x, y);
      // Apply G^H from the left to rows k, k+1.
      const index_t c0 = (k > lo) ? k - 1 : lo;
      for (index_t col = c0; col < n; ++col) {
        const cplx t1 = h(k, col), t2 = h(k + 1, col);
        h(k, col) = std::conj(g.c) * t1 + std::conj(g.s) * t2;
        h(k + 1, col) = -g.s * t1 + g.c * t2;
      }
      // Apply G from the right to columns k, k+1.
      const index_t rmax = std::min(hi, k + 2);
      for (index_t row = 0; row <= rmax; ++row) {
        const cplx t1 = h(row, k), t2 = h(row, k + 1);
        h(row, k) = t1 * g.c + t2 * g.s;
        h(row, k + 1) = -t1 * std::conj(g.s) + t2 * std::conj(g.c);
      }
      for (index_t row = 0; row < n; ++row) {
        const cplx t1 = q(row, k), t2 = q(row, k + 1);
        q(row, k) = t1 * g.c + t2 * g.s;
        q(row, k + 1) = -t1 * std::conj(g.s) + t2 * std::conj(g.c);
      }
      if (k + 1 < hi) {
        x = h(k + 1, k);
        y = h(k + 2, k);
      }
    }
  }
}

// Right eigenvectors of an upper triangular matrix by back substitution.
DenseMatrix<cplx> triangular_eigenvectors(const DenseMatrix<cplx>& t) {
  const index_t n = t.rows();
  DenseMatrix<cplx> y(n, n);
  double tnorm = 0;
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i <= j; ++i) tnorm = std::max(tnorm, std::abs(t(i, j)));
  const double smin = std::numeric_limits<double>::epsilon() * std::max(tnorm, 1e-300);
  for (index_t j = n - 1; j >= 0; --j) {
    const cplx lambda = t(j, j);
    y(j, j) = 1.0;
    for (index_t i = j - 1; i >= 0; --i) {
      cplx s = 0;
      for (index_t l = i + 1; l <= j; ++l) s += t(i, l) * y(l, j);
      cplx diag = t(i, i) - lambda;
      if (std::abs(diag) < smin) diag = cplx(smin);  // perturb repeated eigenvalues
      y(i, j) = -s / diag;
    }
    // Normalize.
    double nrm = 0;
    for (index_t i = 0; i <= j; ++i) nrm += std::norm(y(i, j));
    nrm = std::sqrt(nrm);
    for (index_t i = 0; i <= j; ++i) y(i, j) /= nrm;
  }
  return y;
}

// Order of eigenvalue indices by ascending magnitude.
std::vector<index_t> sort_by_magnitude(const std::vector<cplx>& values) {
  std::vector<index_t> order(values.size());
  std::iota(order.begin(), order.end(), index_t(0));
  std::sort(order.begin(), order.end(), [&](index_t i, index_t j) {
    return std::abs(values[size_t(i)]) < std::abs(values[size_t(j)]);
  });
  return order;
}

DenseMatrix<cplx> to_complex(const DenseMatrix<double>& a) {
  DenseMatrix<cplx> out(a.rows(), a.cols());
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i) out(i, j) = a(i, j);
  return out;
}

// Select k columns spanning the smallest-|theta| invariant subspace.
DenseMatrix<cplx> select_complex(const EigDecomposition& e, index_t k) {
  const auto order = sort_by_magnitude(e.values);
  const index_t n = e.vectors.rows();
  DenseMatrix<cplx> out(n, k);
  for (index_t j = 0; j < k; ++j)
    for (index_t i = 0; i < n; ++i) out(i, j) = e.vectors(i, order[size_t(j)]);
  return out;
}

// Real span of the smallest-|theta| eigenvectors: conjugate pairs become
// [Re z, Im z]; the pair's mirror eigenvalue is consumed.
DenseMatrix<double> select_real(const EigDecomposition& e, index_t k) {
  const auto order = sort_by_magnitude(e.values);
  const index_t n = e.vectors.rows();
  DenseMatrix<double> out(n, k);
  std::vector<bool> used(e.values.size(), false);
  index_t filled = 0;
  for (index_t oi = 0; oi < index_t(order.size()) && filled < k; ++oi) {
    const index_t idx = order[size_t(oi)];
    if (used[size_t(idx)]) continue;
    used[size_t(idx)] = true;
    const cplx lambda = e.values[size_t(idx)];
    const double scale = std::max(std::abs(lambda), 1e-300);
    if (std::abs(lambda.imag()) <= 1e-10 * scale) {
      // Real eigenvalue: take the real part of the eigenvector (for a real
      // matrix it is real up to a unit phase; pick the dominant part).
      double re2 = 0, im2 = 0;
      for (index_t i = 0; i < n; ++i) {
        re2 += e.vectors(i, idx).real() * e.vectors(i, idx).real();
        im2 += e.vectors(i, idx).imag() * e.vectors(i, idx).imag();
      }
      const bool use_im = im2 > re2;
      double nrm = std::sqrt(std::max(use_im ? im2 : re2, 1e-300));
      for (index_t i = 0; i < n; ++i)
        out(i, filled) = (use_im ? e.vectors(i, idx).imag() : e.vectors(i, idx).real()) / nrm;
      ++filled;
    } else {
      // Conjugate pair: mark the mirror as used, keep [Re z, Im z].
      index_t mirror = -1;
      double best = std::numeric_limits<double>::max();
      for (index_t l = 0; l < index_t(e.values.size()); ++l) {
        if (used[size_t(l)]) continue;
        const double d = std::abs(e.values[size_t(l)] - std::conj(lambda));
        if (d < best) {
          best = d;
          mirror = l;
        }
      }
      if (mirror >= 0 && best <= 1e-6 * scale) used[size_t(mirror)] = true;
      double re2 = 0, im2 = 0;
      for (index_t i = 0; i < n; ++i) {
        re2 += e.vectors(i, idx).real() * e.vectors(i, idx).real();
        im2 += e.vectors(i, idx).imag() * e.vectors(i, idx).imag();
      }
      const double nr = std::sqrt(std::max(re2, 1e-300));
      const double ni = std::sqrt(std::max(im2, 1e-300));
      for (index_t i = 0; i < n; ++i) out(i, filled) = e.vectors(i, idx).real() / nr;
      ++filled;
      if (filled < k) {
        for (index_t i = 0; i < n; ++i) out(i, filled) = e.vectors(i, idx).imag() / ni;
        ++filled;
      }
    }
  }
  return out;
}

}  // namespace

EigDecomposition eig_general(DenseMatrix<cplx> a) {
  const index_t n = a.rows();
  if (n != a.cols()) throw std::invalid_argument("eig_general: matrix must be square");
  DenseMatrix<cplx> q;
  hessenberg_reduce(a, q);
  hessenberg_schur(a, q);
  EigDecomposition out;
  out.values.resize(size_t(n));
  for (index_t i = 0; i < n; ++i) out.values[size_t(i)] = a(i, i);
  const DenseMatrix<cplx> y = triangular_eigenvectors(a);
  out.vectors.resize(n, n);
  gemm<cplx>(Trans::N, Trans::N, 1.0, q.view(), y.view(), 0.0, out.vectors.view());
  // Normalize columns.
  for (index_t j = 0; j < n; ++j) {
    const double nrm = norm2(n, out.vectors.col(j));
    if (nrm > 0)
      for (index_t i = 0; i < n; ++i) out.vectors(i, j) /= nrm;
  }
  return out;
}

EigDecomposition eig_generalized(const DenseMatrix<cplx>& t, const DenseMatrix<cplx>& w) {
  if (t.rows() != w.rows() || t.cols() != w.cols() || t.rows() != t.cols())
    throw std::invalid_argument("eig_generalized: dimension mismatch");
  DenseLU<cplx> lu(copy_of(w));
  if (lu.singular())
    throw EigFailure("eig_generalized: W is singular; use the other recycle strategy");
  DenseMatrix<cplx> c = copy_of(t);
  lu.solve(c.view());
  return eig_general(std::move(c));
}

template <>
DenseMatrix<double> smallest_eig_vectors<double>(const DenseMatrix<double>& a, index_t k) {
  BKR_REQUIRE(k >= 0 && k <= a.rows(), "k", k, "a.rows", a.rows());
  return select_real(eig_general(to_complex(a)), k);
}

template <>
DenseMatrix<cplx> smallest_eig_vectors<cplx>(const DenseMatrix<cplx>& a, index_t k) {
  BKR_REQUIRE(k >= 0 && k <= a.rows(), "k", k, "a.rows", a.rows());
  return select_complex(eig_general(copy_of(a)), k);
}

template <>
DenseMatrix<double> smallest_gen_eig_vectors<double>(const DenseMatrix<double>& t,
                                                     const DenseMatrix<double>& w, index_t k) {
  BKR_REQUIRE(k >= 0 && k <= t.rows(), "k", k, "t.rows", t.rows());
  return select_real(eig_generalized(to_complex(t), to_complex(w)), k);
}

template <>
DenseMatrix<cplx> smallest_gen_eig_vectors<cplx>(const DenseMatrix<cplx>& t,
                                                 const DenseMatrix<cplx>& w, index_t k) {
  BKR_REQUIRE(k >= 0 && k <= t.rows(), "k", k, "t.rows", t.rows());
  return select_complex(eig_generalized(t, w), k);
}

}  // namespace bkr
