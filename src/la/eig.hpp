// Dense nonsymmetric eigensolvers for the GCRO-DR deflation problems.
//
// GCRO-DR needs, once per cycle, the k eigenvectors of smallest
// eigenvalue magnitude of either a (nearly Hessenberg) matrix H (fig. 1
// line 16, with the left-hand side of eq. 2) or of a generalized pencil
// (T, W) (fig. 1 line 33, eq. 3a/3b). The matrices are small — order
// p*(m+1) at most — so a dense complex QR (Schur) iteration is used, the
// same algorithm LAPACK's ?hseqr implements. Real inputs are promoted to
// complex; for real solvers, complex-conjugate eigenvector pairs are
// returned as their real span [Re z, Im z] so that the recycled subspace
// U_k stays real.
#pragma once

#include <complex>
#include <stdexcept>
#include <string>
#include <vector>

#include "la/dense.hpp"

namespace bkr {

using cplx = std::complex<double>;

// Thrown when a dense eigensolve cannot produce a usable decomposition:
// QR-iteration non-convergence, or a singular pencil right-hand side W. A
// distinct type so solver-level recovery (GCRO-DR's identity-pk fallback)
// can catch eigensolve failures specifically without swallowing contract
// violations or unrelated runtime errors.
class EigFailure : public std::runtime_error {
 public:
  explicit EigFailure(const std::string& what) : std::runtime_error(what) {}
};

// Eigen decomposition of a general complex matrix (values unordered,
// right eigenvectors as unit-norm columns). Throws EigFailure if the QR
// iteration fails to converge.
struct EigDecomposition {
  std::vector<cplx> values;
  DenseMatrix<cplx> vectors;
};
EigDecomposition eig_general(DenseMatrix<cplx> a);

// Eigen decomposition of the pencil T z = theta W z, reduced to standard
// form through an LU solve with W (the paper notes W is invertible for
// both strategy A and B right-hand sides). Throws EigFailure if W is
// singular (e.g. a stagnating cycle leaves H_m rank deficient).
EigDecomposition eig_generalized(const DenseMatrix<cplx>& t, const DenseMatrix<cplx>& w);

// --- selection helpers used by (B)GCRO-DR -------------------------------

// Columns spanning the invariant subspace of the k smallest-|theta|
// eigenvalues, in the caller's scalar type. For T = complex<double> the
// eigenvectors themselves are returned; for T = double, conjugate pairs
// contribute [Re z, Im z]. The result always has exactly k columns.
template <class T>
DenseMatrix<T> smallest_eig_vectors(const DenseMatrix<T>& a, index_t k);

template <class T>
DenseMatrix<T> smallest_gen_eig_vectors(const DenseMatrix<T>& t, const DenseMatrix<T>& w,
                                        index_t k);

template <>
DenseMatrix<double> smallest_eig_vectors<double>(const DenseMatrix<double>&, index_t);
template <>
DenseMatrix<cplx> smallest_eig_vectors<cplx>(const DenseMatrix<cplx>&, index_t);
template <>
DenseMatrix<double> smallest_gen_eig_vectors<double>(const DenseMatrix<double>&,
                                                     const DenseMatrix<double>&, index_t);
template <>
DenseMatrix<cplx> smallest_gen_eig_vectors<cplx>(const DenseMatrix<cplx>&,
                                                 const DenseMatrix<cplx>&, index_t);

}  // namespace bkr
