// Explicit instantiations of the QR machinery for the two scalar types the
// library ships, keeping template costs out of every consumer TU.
#include "la/qr.hpp"

namespace bkr {

template class HouseholderQR<double>;
template class HouseholderQR<std::complex<double>>;
template class IncrementalQR<double>;
template class IncrementalQR<std::complex<double>>;

template bool cholqr<double>(MatrixView<double>, MatrixView<double>, const KernelExecutor*);
template bool cholqr<std::complex<double>>(MatrixView<std::complex<double>>,
                                           MatrixView<std::complex<double>>,
                                           const KernelExecutor*);
template index_t cholqr_rank<double>(MatrixView<const double>, double);
template index_t cholqr_rank<std::complex<double>>(MatrixView<const std::complex<double>>, double);
template void householder_tsqr<double>(MatrixView<double>, MatrixView<double>);
template void householder_tsqr<std::complex<double>>(MatrixView<std::complex<double>>,
                                                     MatrixView<std::complex<double>>);

}  // namespace bkr
