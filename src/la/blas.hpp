// Hand-written BLAS-like kernels on column-major views.
//
// The library does not depend on an external BLAS (the paper uses MKL);
// these loops are written for correctness first and for reasonable cache
// behaviour on the small-to-medium dense blocks that appear in Krylov
// methods (Hessenberg matrices of order p*(m+1) <= ~2000, Gram matrices of
// order p*k <= ~320). The naming follows BLAS so readers can map calls
// back to the paper's cost analysis.
#pragma once

#include <cmath>

#include "common/contracts.hpp"
#include "la/dense.hpp"

namespace bkr {

enum class Trans { N, C };  // no-transpose / conjugate-transpose

// C = alpha * op(A) * op(B) + beta * C.
template <class T>
void gemm(Trans ta, Trans tb, T alpha, MatrixView<const T> a, MatrixView<const T> b, T beta,
          MatrixView<T> c) {
  const index_t m = c.rows(), n = c.cols();
  const index_t k = (ta == Trans::N) ? a.cols() : a.rows();
  BKR_REQUIRE(((ta == Trans::N) ? a.rows() : a.cols()) == m, "op(a).rows",
              (ta == Trans::N) ? a.rows() : a.cols(), "c.rows", m);
  BKR_REQUIRE(((tb == Trans::N) ? b.rows() : b.cols()) == k, "op(b).rows",
              (tb == Trans::N) ? b.rows() : b.cols(), "op(a).cols", k);
  BKR_REQUIRE(((tb == Trans::N) ? b.cols() : b.rows()) == n, "op(b).cols",
              (tb == Trans::N) ? b.cols() : b.rows(), "c.cols", n);

  if (beta == T(0)) {
    c.set_zero();
  } else if (beta != T(1)) {
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i) c(i, j) *= beta;
  }
  if (alpha == T(0) || k == 0) return;

  if (ta == Trans::N && tb == Trans::N) {
    // C(:,j) += alpha * A * B(:,j) — rank-1 update loop order, unit-stride in A.
    for (index_t j = 0; j < n; ++j) {
      T* cj = c.col(j);
      for (index_t l = 0; l < k; ++l) {
        const T blj = alpha * b(l, j);
        if (blj == T(0)) continue;
        const T* al = a.col(l);
        for (index_t i = 0; i < m; ++i) cj[i] += al[i] * blj;
      }
    }
  } else if (ta == Trans::C && tb == Trans::N) {
    // C(i,j) += alpha * A(:,i)^H B(:,j) — dot products, unit stride in both.
    for (index_t j = 0; j < n; ++j) {
      const T* bj = b.col(j);
      for (index_t i = 0; i < m; ++i) {
        const T* ai = a.col(i);
        T s(0);
        for (index_t l = 0; l < k; ++l) s += conj(ai[l]) * bj[l];
        c(i, j) += alpha * s;
      }
    }
  } else if (ta == Trans::N && tb == Trans::C) {
    for (index_t l = 0; l < k; ++l) {
      const T* al = a.col(l);
      for (index_t j = 0; j < n; ++j) {
        const T blj = alpha * conj(b(j, l));
        if (blj == T(0)) continue;
        T* cj = c.col(j);
        for (index_t i = 0; i < m; ++i) cj[i] += al[i] * blj;
      }
    }
  } else {  // C^H * B^H
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i) {
        T s(0);
        for (index_t l = 0; l < k; ++l) s += conj(a(l, i)) * conj(b(j, l));
        c(i, j) += alpha * s;
      }
  }
}

// y = alpha * op(A) * x + beta * y.
template <class T>
void gemv(Trans ta, T alpha, MatrixView<const T> a, const T* x, T beta, T* y) {
  const index_t m = (ta == Trans::N) ? a.rows() : a.cols();
  const index_t k = (ta == Trans::N) ? a.cols() : a.rows();
  if (beta == T(0)) {
    for (index_t i = 0; i < m; ++i) y[i] = T(0);
  } else if (beta != T(1)) {
    for (index_t i = 0; i < m; ++i) y[i] *= beta;
  }
  if (ta == Trans::N) {
    for (index_t l = 0; l < k; ++l) {
      const T xl = alpha * x[l];
      const T* al = a.col(l);
      for (index_t i = 0; i < m; ++i) y[i] += al[i] * xl;
    }
  } else {
    for (index_t i = 0; i < m; ++i) {
      const T* ai = a.col(i);
      T s(0);
      for (index_t l = 0; l < k; ++l) s += conj(ai[l]) * x[l];
      y[i] += alpha * s;
    }
  }
}

// Conjugated dot product x^H y over n entries.
template <class T>
T dot(index_t n, const T* x, const T* y) {
  T s(0);
  for (index_t i = 0; i < n; ++i) s += conj(x[i]) * y[i];
  return s;
}

template <class T>
real_t<T> norm2(index_t n, const T* x) {
  real_t<T> s(0);
  for (index_t i = 0; i < n; ++i) {
    const auto a = abs_val(x[i]);
    s += a * a;
  }
  return std::sqrt(s);
}

// Per-column 2-norms of an n x p block: the batched reduction that pseudo-
// block methods fuse into a single global synchronization.
template <class T>
void column_norms(MatrixView<const T> x, real_t<T>* out) {
  for (index_t j = 0; j < x.cols(); ++j) out[j] = norm2(x.rows(), x.col(j));
}

template <class T>
void axpy(index_t n, T alpha, const T* x, T* y) {
  for (index_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

template <class T>
void scal(index_t n, T alpha, T* x) {
  for (index_t i = 0; i < n; ++i) x[i] *= alpha;
}

// Frobenius norm of a view.
template <class T>
real_t<T> norm_fro(MatrixView<const T> a) {
  real_t<T> s(0);
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i) {
      const auto v = abs_val(a(i, j));
      s += v * v;
    }
  return std::sqrt(s);
}

// Triangular solves with an upper-triangular matrix R (as produced by the
// QR and Cholesky factorizations).

// X := R^{-1} X (left solve, back substitution).
template <class T>
void trsm_left_upper(MatrixView<const T> r, MatrixView<T> x) {
  const index_t n = r.rows();
  BKR_REQUIRE(r.cols() == n && x.rows() == n, "r.rows", n, "r.cols", r.cols(), "x.rows", x.rows());
  for (index_t j = 0; j < x.cols(); ++j) {
    T* xj = x.col(j);
    for (index_t i = n - 1; i >= 0; --i) {
      T s = xj[i];
      for (index_t l = i + 1; l < n; ++l) s -= r(i, l) * xj[l];
      xj[i] = s / r(i, i);
    }
  }
}

// X := R^{-H} X (left solve with the conjugate transpose; forward
// substitution since R^H is lower triangular).
template <class T>
void trsm_left_upper_conj(MatrixView<const T> r, MatrixView<T> x) {
  const index_t n = r.rows();
  BKR_REQUIRE(r.cols() == n && x.rows() == n, "r.rows", n, "r.cols", r.cols(), "x.rows", x.rows());
  for (index_t j = 0; j < x.cols(); ++j) {
    T* xj = x.col(j);
    for (index_t i = 0; i < n; ++i) {
      T s = xj[i];
      for (index_t l = 0; l < i; ++l) s -= conj(r(l, i)) * xj[l];
      xj[i] = s / conj(r(i, i));
    }
  }
}

// X := X R^{-1} (right solve; used by CholQR to form Q = V R^{-1}).
template <class T>
void trsm_right_upper(MatrixView<const T> r, MatrixView<T> x) {
  const index_t p = r.rows();
  BKR_REQUIRE(r.cols() == p && x.cols() == p, "r.rows", p, "r.cols", r.cols(), "x.cols", x.cols());
  const index_t n = x.rows();
  for (index_t j = 0; j < p; ++j) {
    T* xj = x.col(j);
    for (index_t l = 0; l < j; ++l) {
      const T rlj = r(l, j);
      if (rlj == T(0)) continue;
      const T* xl = x.col(l);
      for (index_t i = 0; i < n; ++i) xj[i] -= xl[i] * rlj;
    }
    const T inv = T(1) / r(j, j);
    for (index_t i = 0; i < n; ++i) xj[i] *= inv;
  }
}

// Gram matrix G = V^H V (Hermitian, order p). One pass; in a distributed
// run this is the single-reduction kernel of CholQR.
template <class T>
void gram(MatrixView<const T> v, MatrixView<T> g) {
  const index_t p = v.cols();
  BKR_ASSERT_SHAPE(g, p, p);
  for (index_t j = 0; j < p; ++j)
    for (index_t i = 0; i <= j; ++i) {
      const T s = dot(v.rows(), v.col(i), v.col(j));
      g(i, j) = s;
      g(j, i) = conj(s);
    }
}

}  // namespace bkr
