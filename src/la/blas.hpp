// Hand-written BLAS-like kernels on column-major views.
//
// The library does not depend on an external BLAS (the paper uses MKL);
// these loops are written for correctness first and for reasonable cache
// behaviour on the small-to-medium dense blocks that appear in Krylov
// methods (Hessenberg matrices of order p*(m+1) <= ~2000, Gram matrices of
// order p*k <= ~320). The naming follows BLAS so readers can map calls
// back to the paper's cost analysis.
//
// Every kernel that appears on a solver hot path takes an optional
// KernelExecutor. With a null executor (the default) the legacy serial
// loops run unchanged. With an executor, the kernel fans out over the
// thread pool under the determinism contract of common/exec.hpp:
//  * partition-type kernels (gemm panels, trsm blocks) keep the exact
//    per-output-element operation order of the serial code, so they are
//    bitwise identical to it at every thread count;
//  * reduction-type kernels (dot, norm2, column_norms) switch to a
//    fixed-order chunked summation (kReduceChunk elements per partial,
//    partials combined in chunk-index order) whose result is bitwise
//    identical at every thread count but differs from the legacy straight
//    sum in rounding. The switch is decided by problem size only.
#pragma once

#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "common/exec.hpp"
#include "la/dense.hpp"

namespace bkr {

enum class Trans { N, C };  // no-transpose / conjugate-transpose

// Elements per partial sum of the deterministic chunked reductions. Fixed
// (never derived from the thread count) so the summation tree depends on
// the problem size only.
inline constexpr index_t kReduceChunk = 2048;

namespace detail {

// Straight conjugated dot over a contiguous range; the single compiled
// body shared by the serial and pooled schedules of every reduction.
template <class T>
T chunk_dot(index_t n, const T* x, const T* y) {
  T s(0);
  for (index_t i = 0; i < n; ++i) s += conj(x[i]) * y[i];
  return s;
}

template <class T>
real_t<T> chunk_sumsq(index_t n, const T* x) {
  real_t<T> s(0);
  for (index_t i = 0; i < n; ++i) {
    const auto a = abs_val(x[i]);
    s += a * a;
  }
  return s;
}

inline index_t reduce_chunks(index_t n) { return (n + kReduceChunk - 1) / kReduceChunk; }

// Pairwise binary-tree fold of the chunk partials, level by level:
// p[i] = p[2i] + p[2i+1], an odd tail carried up unchanged. The tree shape
// depends only on the partial count — never on lanes() and never on the
// shard count that produced the leaves — so the executed reduction tree of
// the sharded SPMD layer returns a bitwise shard-count-invariant result:
// every shard contributes leaf partials over the same fixed kReduceChunk
// grid, and the merge order is a pure function of the problem size.
template <class V>
V tree_fold(V* p, index_t m) {
  if (m <= 0) return V(0);
  while (m > 1) {
    const index_t half = m / 2;
    for (index_t i = 0; i < half; ++i) p[i] = p[2 * i] + p[2 * i + 1];
    if (m % 2 != 0) {
      p[half] = p[m - 1];
      m = half + 1;
    } else {
      m = half;
    }
  }
  return p[0];
}

// Evenly split [0, n) into `parts` contiguous ranges; boundary i of the
// split depends on (n, parts) only.
inline index_t even_split(index_t n, index_t parts, index_t i) {
  return (n / parts) * i + std::min(i, n % parts);
}

// Tasks per pooled dispatch: a small multiple of the lane count so the
// static chunking of ThreadPool::parallel_for stays load-balanced.
inline index_t fanout_tasks(const KernelExecutor* ex, index_t n) {
  const index_t want = ex->lanes() * 4;
  return n < want ? (n > 0 ? n : 1) : want;
}

}  // namespace detail

// C = alpha * op(A) * op(B) + beta * C.
template <class T>
BKR_HOT void gemm(Trans ta, Trans tb, T alpha, MatrixView<const T> a, MatrixView<const T> b, T beta,
          MatrixView<T> c, const KernelExecutor* ex = nullptr) {
  const index_t m = c.rows(), n = c.cols();
  const index_t k = (ta == Trans::N) ? a.cols() : a.rows();
  BKR_REQUIRE(((ta == Trans::N) ? a.rows() : a.cols()) == m, "op(a).rows",
              (ta == Trans::N) ? a.rows() : a.cols(), "c.rows", m);
  BKR_REQUIRE(((tb == Trans::N) ? b.rows() : b.cols()) == k, "op(b).rows",
              (tb == Trans::N) ? b.rows() : b.cols(), "op(a).cols", k);
  BKR_REQUIRE(((tb == Trans::N) ? b.cols() : b.rows()) == n, "op(b).cols",
              (tb == Trans::N) ? b.cols() : b.rows(), "c.cols", n);

  if (beta == T(0)) {
    c.set_zero();
  } else if (beta != T(1)) {
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i) c(i, j) *= beta;
  }
  if (alpha == T(0) || k == 0 || m == 0 || n == 0) return;

  const bool fan = ex != nullptr && ex->engage(Kernel::Gemm, m * n * k);

  if (ta == Trans::N && tb == Trans::N) {
    // C(:,j) += alpha * A * B(:,j) — rank-1 update loop order, unit-stride
    // in A. Parallel over output column panels; the per-element
    // accumulation order over l is unchanged, so panels are bitwise
    // independent of the partition.
    auto panel = [&](index_t j0, index_t j1) {
      for (index_t j = j0; j < j1; ++j) {
        T* cj = c.col(j);
        for (index_t l = 0; l < k; ++l) {
          const T blj = alpha * b(l, j);
          if (blj == T(0)) continue;
          const T* al = a.col(l);
          for (index_t i = 0; i < m; ++i) cj[i] += al[i] * blj;
        }
      }
    };
    if (!fan || n == 1) {
      panel(0, n);
    } else {
      const index_t parts = detail::fanout_tasks(ex, n);
      ex->run(Kernel::Gemm, parts, [&](index_t t) {
        panel(detail::even_split(n, parts, t), detail::even_split(n, parts, t + 1));
      });
    }
  } else if (ta == Trans::C && tb == Trans::N) {
    // C(i,j) += alpha * A(:,i)^H B(:,j) — dot products, unit stride in
    // both. Parallel over output entries (each entry is one independent
    // dot, computed in the same l order either way).
    auto entry = [&](index_t i, index_t j) {
      c(i, j) += alpha * detail::chunk_dot(k, a.col(i), b.col(j));
    };
    if (!fan || m * n == 1) {
      for (index_t j = 0; j < n; ++j)
        for (index_t i = 0; i < m; ++i) entry(i, j);
    } else {
      ex->run(Kernel::Gemm, m * n, [&](index_t t) { entry(t % m, t / m); });
    }
  } else if (ta == Trans::N && tb == Trans::C) {
    auto panel = [&](index_t j0, index_t j1) {
      for (index_t l = 0; l < k; ++l) {
        const T* al = a.col(l);
        for (index_t j = j0; j < j1; ++j) {
          const T blj = alpha * conj(b(j, l));
          if (blj == T(0)) continue;
          T* cj = c.col(j);
          for (index_t i = 0; i < m; ++i) cj[i] += al[i] * blj;
        }
      }
    };
    if (!fan || n == 1) {
      panel(0, n);
    } else {
      const index_t parts = detail::fanout_tasks(ex, n);
      ex->run(Kernel::Gemm, parts, [&](index_t t) {
        panel(detail::even_split(n, parts, t), detail::even_split(n, parts, t + 1));
      });
    }
  } else {  // C^H * B^H
    auto entry = [&](index_t i, index_t j) {
      T s(0);
      for (index_t l = 0; l < k; ++l) s += conj(a(l, i)) * conj(b(j, l));
      c(i, j) += alpha * s;
    };
    if (!fan || m * n == 1) {
      for (index_t j = 0; j < n; ++j)
        for (index_t i = 0; i < m; ++i) entry(i, j);
    } else {
      ex->run(Kernel::Gemm, m * n, [&](index_t t) { entry(t % m, t / m); });
    }
  }
}

// y = alpha * op(A) * x + beta * y.
template <class T>
BKR_HOT void gemv(Trans ta, T alpha, MatrixView<const T> a, const T* x, T beta, T* y) {
  const index_t m = (ta == Trans::N) ? a.rows() : a.cols();
  const index_t k = (ta == Trans::N) ? a.cols() : a.rows();
  if (beta == T(0)) {
    for (index_t i = 0; i < m; ++i) y[i] = T(0);
  } else if (beta != T(1)) {
    for (index_t i = 0; i < m; ++i) y[i] *= beta;
  }
  if (ta == Trans::N) {
    for (index_t l = 0; l < k; ++l) {
      const T xl = alpha * x[l];
      const T* al = a.col(l);
      for (index_t i = 0; i < m; ++i) y[i] += al[i] * xl;
    }
  } else {
    for (index_t i = 0; i < m; ++i) {
      const T* ai = a.col(i);
      T s(0);
      for (index_t l = 0; l < k; ++l) s += conj(ai[l]) * x[l];
      y[i] += alpha * s;
    }
  }
}

// Conjugated dot product x^H y over n entries (legacy straight sum).
template <class T>
BKR_HOT T dot(index_t n, const T* x, const T* y) {
  return detail::chunk_dot(n, x, y);
}

// Deterministic chunked dot: fixed kReduceChunk partials combined in chunk
// order. The result is independent of the executor's lane count.
template <class T>
BKR_HOT T dot(index_t n, const T* x, const T* y, const KernelExecutor* ex) {
  if (ex == nullptr || !ex->engage(Kernel::Dot, n)) return detail::chunk_dot(n, x, y);
  const index_t nchunks = detail::reduce_chunks(n);
  std::vector<T> partial(static_cast<size_t>(nchunks));
  ex->run(Kernel::Dot, nchunks, [&](index_t cidx) {
    const index_t begin = cidx * kReduceChunk;
    partial[size_t(cidx)] =
        detail::chunk_dot(std::min(kReduceChunk, n - begin), x + begin, y + begin);
  });
  T s(0);
  for (index_t cidx = 0; cidx < nchunks; ++cidx) s += partial[size_t(cidx)];
  return s;
}

template <class T>
BKR_HOT real_t<T> norm2(index_t n, const T* x) {
  return std::sqrt(detail::chunk_sumsq(n, x));
}

// Deterministic chunked 2-norm (same contract as the 4-argument dot).
template <class T>
BKR_HOT real_t<T> norm2(index_t n, const T* x, const KernelExecutor* ex) {
  if (ex == nullptr || !ex->engage(Kernel::Norms, n))
    return std::sqrt(detail::chunk_sumsq(n, x));
  const index_t nchunks = detail::reduce_chunks(n);
  std::vector<real_t<T>> partial(static_cast<size_t>(nchunks));
  ex->run(Kernel::Norms, nchunks, [&](index_t cidx) {
    const index_t begin = cidx * kReduceChunk;
    partial[size_t(cidx)] = detail::chunk_sumsq(std::min(kReduceChunk, n - begin), x + begin);
  });
  real_t<T> s(0);
  for (index_t cidx = 0; cidx < nchunks; ++cidx) s += partial[size_t(cidx)];
  return std::sqrt(s);
}

// Per-column 2-norms of an n x p block: the batched reduction that pseudo-
// block methods fuse into a single global synchronization. With an
// executor, all p columns' chunk partials form one task grid (the fused
// multi-lane reduction); each column combines its own partials in order.
template <class T>
BKR_HOT void column_norms(MatrixView<const T> x, real_t<T>* out, const KernelExecutor* ex = nullptr) {
  const index_t n = x.rows(), p = x.cols();
  if (ex == nullptr || p == 0 || !ex->engage(Kernel::Norms, n * p)) {
    for (index_t j = 0; j < p; ++j) out[j] = norm2(n, x.col(j));
    return;
  }
  const index_t nchunks = detail::reduce_chunks(n);
  if (nchunks == 0) {
    for (index_t j = 0; j < p; ++j) out[j] = real_t<T>(0);
    return;
  }
  std::vector<real_t<T>> partial(static_cast<size_t>(nchunks * p));
  ex->run(Kernel::Norms, nchunks * p, [&](index_t t) {
    const index_t j = t / nchunks, cidx = t % nchunks;
    const index_t begin = cidx * kReduceChunk;
    partial[size_t(t)] =
        detail::chunk_sumsq(std::min(kReduceChunk, n - begin), x.col(j) + begin);
  });
  for (index_t j = 0; j < p; ++j) {
    real_t<T> s(0);
    for (index_t cidx = 0; cidx < nchunks; ++cidx) s += partial[size_t(j * nchunks + cidx)];
    out[j] = std::sqrt(s);
  }
}

// Executed binary-tree reductions (sharded SPMD layer, DESIGN.md §13).
//
// The legacy chunked reductions above combine partials linearly in chunk
// order; these variants combine them through detail::tree_fold — the
// merge structure a distributed binary-tree all-reduce performs. Leaves
// live on the fixed kReduceChunk grid, so the tree shape (and therefore
// the floating-point result) depends on the vector length only: sharded
// solves are bitwise identical at 1 and N shards, at every thread count.
// An executor parallelizes leaf computation; the fold itself is serial
// (the partial count is tiny next to n).

template <class T>
BKR_HOT T tree_dot(index_t n, const T* x, const T* y, const KernelExecutor* ex = nullptr) {
  const index_t nchunks = detail::reduce_chunks(n);
  if (nchunks <= 1) return detail::chunk_dot(n, x, y);
  std::vector<T> partial(static_cast<size_t>(nchunks));
  auto leaf = [&](index_t cidx) {
    const index_t begin = cidx * kReduceChunk;
    partial[size_t(cidx)] =
        detail::chunk_dot(std::min(kReduceChunk, n - begin), x + begin, y + begin);
  };
  if (ex != nullptr && ex->engage(Kernel::Dot, n)) {
    ex->run(Kernel::Dot, nchunks, leaf);
  } else {
    for (index_t cidx = 0; cidx < nchunks; ++cidx) leaf(cidx);
  }
  return detail::tree_fold(partial.data(), nchunks);
}

template <class T>
BKR_HOT real_t<T> tree_norm2(index_t n, const T* x, const KernelExecutor* ex = nullptr) {
  const index_t nchunks = detail::reduce_chunks(n);
  if (nchunks <= 1) return std::sqrt(detail::chunk_sumsq(n, x));
  std::vector<real_t<T>> partial(static_cast<size_t>(nchunks));
  auto leaf = [&](index_t cidx) {
    const index_t begin = cidx * kReduceChunk;
    partial[size_t(cidx)] = detail::chunk_sumsq(std::min(kReduceChunk, n - begin), x + begin);
  };
  if (ex != nullptr && ex->engage(Kernel::Norms, n)) {
    ex->run(Kernel::Norms, nchunks, leaf);
  } else {
    for (index_t cidx = 0; cidx < nchunks; ++cidx) leaf(cidx);
  }
  return std::sqrt(detail::tree_fold(partial.data(), nchunks));
}

// Fused per-column tree norms: all p columns' leaves form one task grid
// (one global synchronization, as in column_norms); each column folds its
// own partials through the same length-determined tree.
template <class T>
BKR_HOT void tree_column_norms(MatrixView<const T> x, real_t<T>* out,
                               const KernelExecutor* ex = nullptr) {
  const index_t n = x.rows(), p = x.cols();
  const index_t nchunks = detail::reduce_chunks(n);
  if (p == 0) return;
  if (nchunks <= 1) {
    for (index_t j = 0; j < p; ++j) out[j] = std::sqrt(detail::chunk_sumsq(n, x.col(j)));
    return;
  }
  std::vector<real_t<T>> partial(static_cast<size_t>(nchunks * p));
  auto leaf = [&](index_t t) {
    const index_t j = t / nchunks, cidx = t % nchunks;
    const index_t begin = cidx * kReduceChunk;
    partial[size_t(t)] = detail::chunk_sumsq(std::min(kReduceChunk, n - begin), x.col(j) + begin);
  };
  if (ex != nullptr && ex->engage(Kernel::Norms, n * p)) {
    ex->run(Kernel::Norms, nchunks * p, leaf);
  } else {
    for (index_t t = 0; t < nchunks * p; ++t) leaf(t);
  }
  for (index_t j = 0; j < p; ++j)
    out[j] = std::sqrt(detail::tree_fold(partial.data() + j * nchunks, nchunks));
}

template <class T>
BKR_HOT void axpy(index_t n, T alpha, const T* x, T* y) {
  for (index_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

template <class T>
BKR_HOT void scal(index_t n, T alpha, T* x) {
  for (index_t i = 0; i < n; ++i) x[i] *= alpha;
}

// Frobenius norm of a view.
template <class T>
BKR_HOT real_t<T> norm_fro(MatrixView<const T> a) {
  real_t<T> s(0);
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i) {
      const auto v = abs_val(a(i, j));
      s += v * v;
    }
  return std::sqrt(s);
}

// Triangular solves with an upper-triangular matrix R (as produced by the
// QR and Cholesky factorizations).

// X := R^{-1} X (left solve, back substitution). Columns are independent;
// with an executor they fan out, each solved in the serial order.
template <class T>
BKR_HOT void trsm_left_upper(MatrixView<const T> r, MatrixView<T> x,
                             const KernelExecutor* ex = nullptr) {
  const index_t n = r.rows();
  BKR_REQUIRE(r.cols() == n && x.rows() == n, "r.rows", n, "r.cols", r.cols(), "x.rows", x.rows());
  auto solve_col = [&](index_t j) {
    T* xj = x.col(j);
    for (index_t i = n - 1; i >= 0; --i) {
      T s = xj[i];
      for (index_t l = i + 1; l < n; ++l) s -= r(i, l) * xj[l];
      xj[i] = s / r(i, i);
    }
  };
  if (ex != nullptr && x.cols() > 1 && ex->engage(Kernel::Trsm, n * n * x.cols())) {
    ex->run(Kernel::Trsm, x.cols(), solve_col);
  } else {
    for (index_t j = 0; j < x.cols(); ++j) solve_col(j);
  }
}

// X := R^{-H} X (left solve with the conjugate transpose; forward
// substitution since R^H is lower triangular).
template <class T>
BKR_HOT void trsm_left_upper_conj(MatrixView<const T> r, MatrixView<T> x,
                          const KernelExecutor* ex = nullptr) {
  const index_t n = r.rows();
  BKR_REQUIRE(r.cols() == n && x.rows() == n, "r.rows", n, "r.cols", r.cols(), "x.rows", x.rows());
  auto solve_col = [&](index_t j) {
    T* xj = x.col(j);
    for (index_t i = 0; i < n; ++i) {
      T s = xj[i];
      for (index_t l = 0; l < i; ++l) s -= conj(r(l, i)) * xj[l];
      xj[i] = s / conj(r(i, i));
    }
  };
  if (ex != nullptr && x.cols() > 1 && ex->engage(Kernel::Trsm, n * n * x.cols())) {
    ex->run(Kernel::Trsm, x.cols(), solve_col);
  } else {
    for (index_t j = 0; j < x.cols(); ++j) solve_col(j);
  }
}

// X := X R^{-1} (right solve; used by CholQR to form Q = V R^{-1}). Every
// row of X transforms independently through the same (j, l) elimination
// order, so the parallel row blocks are bitwise identical to the serial
// sweep.
template <class T>
BKR_HOT void trsm_right_upper(MatrixView<const T> r, MatrixView<T> x,
                              const KernelExecutor* ex = nullptr) {
  const index_t p = r.rows();
  BKR_REQUIRE(r.cols() == p && x.cols() == p, "r.rows", p, "r.cols", r.cols(), "x.cols", x.cols());
  const index_t n = x.rows();
  auto rows = [&](index_t i0, index_t i1) {
    for (index_t j = 0; j < p; ++j) {
      T* xj = x.col(j);
      for (index_t l = 0; l < j; ++l) {
        const T rlj = r(l, j);
        if (rlj == T(0)) continue;
        const T* xl = x.col(l);
        for (index_t i = i0; i < i1; ++i) xj[i] -= xl[i] * rlj;
      }
      const T inv = T(1) / r(j, j);
      for (index_t i = i0; i < i1; ++i) xj[i] *= inv;
    }
  };
  if (ex != nullptr && n > 1 && ex->engage(Kernel::Trsm, n * p * p)) {
    const index_t parts = detail::fanout_tasks(ex, n);
    ex->run(Kernel::Trsm, parts, [&](index_t t) {
      rows(detail::even_split(n, parts, t), detail::even_split(n, parts, t + 1));
    });
  } else {
    rows(0, n);
  }
}

// Hermitian rank-k update C := alpha * A^H A + beta * C (only the
// conjugate-transpose form the CholQR Gram matrix needs). Each (i, j)
// pair is one independent column dot, so the pair-parallel schedule is
// bitwise identical to the serial sweep at any thread count.
template <class T>
BKR_HOT void herk(Trans trans, T alpha, MatrixView<const T> a, T beta, MatrixView<T> c,
          const KernelExecutor* ex = nullptr) {
  BKR_REQUIRE(trans == Trans::C, "trans==C", index_t(trans == Trans::C ? 1 : 0));
  const index_t p = a.cols(), n = a.rows();
  BKR_ASSERT_SHAPE(c, p, p);
  auto pair = [&](index_t i, index_t j) {  // i <= j
    const T d = detail::chunk_dot(n, a.col(i), a.col(j));
    const T s = (alpha == T(1)) ? d : alpha * d;
    const T upper = (beta == T(0)) ? s : s + beta * c(i, j);
    const T lower = (beta == T(0)) ? conj(s) : conj(s) + beta * c(j, i);
    c(i, j) = upper;
    c(j, i) = lower;  // on the diagonal this leaves conj(s), matching gram()
  };
  const index_t npairs = p * (p + 1) / 2;
  if (ex != nullptr && npairs > 1 && ex->engage(Kernel::Herk, n * npairs)) {
    ex->run(Kernel::Herk, npairs, [&](index_t t) {
      // Unrank t over the upper triangle, column-major: pairs of column j
      // occupy [j(j+1)/2, (j+1)(j+2)/2).
      index_t j = 0;
      while ((j + 1) * (j + 2) / 2 <= t) ++j;
      pair(t - j * (j + 1) / 2, j);
    });
  } else {
    for (index_t j = 0; j < p; ++j)
      for (index_t i = 0; i <= j; ++i) pair(i, j);
  }
}

// Gram matrix G = V^H V (Hermitian, order p). One pass; in a distributed
// run this is the single-reduction kernel of CholQR.
template <class T>
BKR_HOT void gram(MatrixView<const T> v, MatrixView<T> g, const KernelExecutor* ex = nullptr) {
  herk<T>(Trans::C, T(1), v, T(0), g, ex);
}

}  // namespace bkr
