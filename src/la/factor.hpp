// Dense factorizations: Cholesky (plain and pivoted) and LU with partial
// pivoting. Cholesky backs CholQR; pivoted Cholesky is the rank-revealing
// variant used to detect block breakdowns at GCRO-DR restarts; LU backs the
// generalized deflation eigenproblem (reduction of T z = theta W z to
// standard form) and the AMG coarsest-grid solve.
#pragma once

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/contracts.hpp"
#include "la/blas.hpp"
#include "la/dense.hpp"

namespace bkr {

// In-place upper Cholesky of a Hermitian positive definite matrix:
// A = R^H R with R stored in the upper triangle. Returns false if a
// non-positive pivot is met (matrix numerically not PD).
template <class T>
bool cholesky_upper(MatrixView<T> a) {
  const index_t n = a.rows();
  BKR_REQUIRE(a.cols() == n, "a.rows", n, "a.cols", a.cols());
  for (index_t j = 0; j < n; ++j) {
    real_t<T> d = real_part(a(j, j));
    for (index_t l = 0; l < j; ++l) {
      const auto v = abs_val(a(l, j));
      d -= v * v;
    }
    if (!(d > real_t<T>(0))) return false;
    const real_t<T> rjj = std::sqrt(d);
    a(j, j) = scalar_traits<T>::from_real(rjj);
    for (index_t i = j + 1; i < n; ++i) {
      T s = a(j, i);
      for (index_t l = 0; l < j; ++l) s -= conj(a(l, j)) * a(l, i);
      a(j, i) = s / rjj;
    }
  }
  // Zero the (unreferenced) strict lower triangle for cleanliness.
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j + 1; i < n; ++i) a(i, j) = T(0);
  return true;
}

// Diagonally pivoted (rank-revealing) Cholesky: P^T A P = R^H R.
// On return `perm[j]` is the original index of pivot column j and the
// numerical rank (columns with pivot > tol * max_pivot) is returned.
template <class T>
index_t pivoted_cholesky(MatrixView<T> a, std::vector<index_t>& perm, real_t<T> tol) {
  const index_t n = a.rows();
  BKR_REQUIRE(a.cols() == n, "a.rows", n, "a.cols", a.cols());
  BKR_REQUIRE(tol >= real_t<T>(0), "tol", tol);
  perm.resize(size_t(n));
  std::iota(perm.begin(), perm.end(), index_t(0));
  std::vector<real_t<T>> d(static_cast<size_t>(n));
  for (index_t i = 0; i < n; ++i) d[size_t(i)] = real_part(a(i, i));
  const real_t<T> dmax0 = *std::max_element(d.begin(), d.end());
  index_t rank = 0;
  for (index_t j = 0; j < n; ++j) {
    // Select the largest remaining diagonal entry.
    index_t piv = j;
    for (index_t i = j + 1; i < n; ++i)
      if (d[size_t(i)] > d[size_t(piv)]) piv = i;
    if (!(d[size_t(piv)] > tol * std::max(dmax0, real_t<T>(1e-300)))) break;
    if (piv != j) {
      std::swap(perm[size_t(piv)], perm[size_t(j)]);
      std::swap(d[size_t(piv)], d[size_t(j)]);
      for (index_t i = 0; i < n; ++i) std::swap(a(i, piv), a(i, j));
      for (index_t i = 0; i < n; ++i) std::swap(a(piv, i), a(j, i));
    }
    real_t<T> djj = real_part(a(j, j));
    for (index_t l = 0; l < j; ++l) {
      const auto v = abs_val(a(l, j));
      djj -= v * v;
    }
    if (!(djj > real_t<T>(0))) break;
    const real_t<T> rjj = std::sqrt(djj);
    a(j, j) = scalar_traits<T>::from_real(rjj);
    for (index_t i = j + 1; i < n; ++i) {
      T s = a(j, i);
      for (index_t l = 0; l < j; ++l) s -= conj(a(l, j)) * a(l, i);
      a(j, i) = s / rjj;
      d[size_t(i)] -= abs_val(a(j, i)) * abs_val(a(j, i));
    }
    ++rank;
  }
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j + 1; i < n; ++i) a(i, j) = T(0);
  return rank;
}

// Dense LU with partial pivoting, stored packed in `a` (unit lower /
// upper). `piv[i]` records the row swapped into position i.
template <class T>
class DenseLU {
 public:
  DenseLU() = default;  // empty; factor() before solve()
  explicit DenseLU(DenseMatrix<T> a) : a_(std::move(a)), piv_(size_t(a_.rows())) {
    eliminate();
  }

  // Refactor a new matrix reusing the existing storage (no allocation once
  // capacity has grown to the problem size); identical elimination order,
  // so the factors are bitwise equal to a freshly constructed DenseLU.
  BKR_HOT void factor(MatrixView<const T> a) {
    BKR_REQUIRE(a.cols() == a.rows(), "a.rows", a.rows(), "a.cols", a.cols());
    a_.resize(a.rows(), a.cols());       // bkr-lint: allow(hot-path-alloc) capacity-reusing
    copy_into<T>(a, a_.view());
    piv_.assign(size_t(a.rows()), 0);    // bkr-lint: allow(hot-path-alloc) capacity-reusing
    eliminate();
  }

  [[nodiscard]] bool singular() const { return singular_; }
  [[nodiscard]] index_t n() const { return a_.rows(); }

  // Solve A X = B in place.
  BKR_HOT void solve(MatrixView<T> b) const {
    const index_t n = a_.rows();
    BKR_REQUIRE(b.rows() == n, "b.rows", b.rows(), "lu.n", n);
    for (index_t j = 0; j < b.cols(); ++j) {
      T* x = b.col(j);
      for (index_t i = 0; i < n; ++i)
        if (piv_[size_t(i)] != i) std::swap(x[i], x[piv_[size_t(i)]]);
      for (index_t i = 1; i < n; ++i) {
        T s = x[i];
        for (index_t l = 0; l < i; ++l) s -= a_(i, l) * x[l];
        x[i] = s;
      }
      for (index_t i = n - 1; i >= 0; --i) {
        T s = x[i];
        for (index_t l = i + 1; l < n; ++l) s -= a_(i, l) * x[l];
        x[i] = s / a_(i, i);
      }
    }
  }

 private:
  void eliminate() {
    const index_t n = a_.rows();
    BKR_REQUIRE(a_.cols() == n, "a.rows", n, "a.cols", a_.cols());
    singular_ = false;
    for (index_t j = 0; j < n; ++j) {
      index_t piv = j;
      real_t<T> best = abs_val(a_(j, j));
      for (index_t i = j + 1; i < n; ++i)
        if (abs_val(a_(i, j)) > best) {
          best = abs_val(a_(i, j));
          piv = i;
        }
      piv_[size_t(j)] = piv;
      if (best == real_t<T>(0)) {
        singular_ = true;
        continue;
      }
      if (piv != j)
        for (index_t c = 0; c < n; ++c) std::swap(a_(j, c), a_(piv, c));
      const T inv = T(1) / a_(j, j);
      for (index_t i = j + 1; i < n; ++i) {
        const T lij = a_(i, j) * inv;
        a_(i, j) = lij;
        if (lij == T(0)) continue;
        for (index_t c = j + 1; c < n; ++c) a_(i, c) -= lij * a_(j, c);
      }
    }
  }

  DenseMatrix<T> a_;
  std::vector<index_t> piv_;
  bool singular_ = false;
};

}  // namespace bkr
