// Column-major dense matrices and views.
//
// All dense computations in the library (Hessenberg least squares, CholQR
// Gram factors, deflation eigenproblems, coarse-grid solves) run on these
// types. Storage is column-major so that a block of p right-hand sides is
// p contiguous columns — the layout the paper relies on for single
// forward-elimination/backward-substitution direct solves with many RHS.
#pragma once

#include <algorithm>
#include <cassert>
#include <type_traits>
#include <vector>

#include "common/contracts.hpp"
#include "common/types.hpp"

namespace bkr {

// Non-owning view of a column-major matrix with leading dimension `ld`.
template <class T>
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(T* data, index_t rows, index_t cols, index_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    assert(ld >= rows);
  }
  // Mutable-to-const view conversion.
  template <class U>
    requires(std::is_same_v<U, std::remove_const_t<T>> && std::is_const_v<T>)
  MatrixView(const MatrixView<U>& other)  // NOLINT(google-explicit-constructor)
      : data_(other.data()), rows_(other.rows()), cols_(other.cols()), ld_(other.ld()) {}

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] index_t ld() const { return ld_; }
  [[nodiscard]] T* data() const { return data_; }

  T& operator()(index_t i, index_t j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i + j * ld_];
  }
  [[nodiscard]] T* col(index_t j) const { return data_ + j * ld_; }

  // Sub-block view rooted at (i0, j0).
  [[nodiscard]] MatrixView block(index_t i0, index_t j0, index_t r, index_t c) const {
    assert(i0 + r <= rows_ && j0 + c <= cols_);
    return MatrixView(data_ + i0 + j0 * ld_, r, c, ld_);
  }
  [[nodiscard]] MatrixView cols_view(index_t j0, index_t c) const {
    return block(0, j0, rows_, c);
  }

  void set_zero() const {
    for (index_t j = 0; j < cols_; ++j) std::fill(col(j), col(j) + rows_, T(0));
  }

 private:
  T* data_ = nullptr;
  index_t rows_ = 0, cols_ = 0, ld_ = 0;
};

template <class T>
using ConstMatrixView = MatrixView<const T>;

// Owning column-major matrix (leading dimension == rows).
template <class T>
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(index_t rows, index_t cols) : rows_(rows), cols_(cols), data_(size_t(rows * cols), T(0)) {}

  static DenseMatrix identity(index_t n) {
    DenseMatrix I(n, n);
    for (index_t i = 0; i < n; ++i) I(i, i) = T(1);
    return I;
  }

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] index_t ld() const { return rows_; }
  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }

  T& operator()(index_t i, index_t j) {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[size_t(i + j * rows_)];
  }
  const T& operator()(index_t i, index_t j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[size_t(i + j * rows_)];
  }
  [[nodiscard]] T* col(index_t j) { return data_.data() + j * rows_; }
  [[nodiscard]] const T* col(index_t j) const { return data_.data() + j * rows_; }

  [[nodiscard]] MatrixView<T> view() { return {data_.data(), rows_, cols_, rows_}; }
  [[nodiscard]] MatrixView<const T> view() const { return {data_.data(), rows_, cols_, rows_}; }
  operator MatrixView<T>() { return view(); }                // NOLINT(google-explicit-constructor)
  operator MatrixView<const T>() const { return view(); }    // NOLINT(google-explicit-constructor)

  [[nodiscard]] MatrixView<T> block(index_t i0, index_t j0, index_t r, index_t c) {
    return view().block(i0, j0, r, c);
  }
  [[nodiscard]] MatrixView<const T> block(index_t i0, index_t j0, index_t r, index_t c) const {
    return view().block(i0, j0, r, c);
  }

  void set_zero() { std::fill(data_.begin(), data_.end(), T(0)); }
  void resize(index_t rows, index_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(size_t(rows * cols), T(0));
  }

 private:
  index_t rows_ = 0, cols_ = 0;
  std::vector<T> data_;
};

// Deep copy of a view into an owning matrix.
template <class T>
DenseMatrix<T> copy_of(MatrixView<const T> a) {
  DenseMatrix<T> out(a.rows(), a.cols());
  for (index_t j = 0; j < a.cols(); ++j)
    std::copy(a.col(j), a.col(j) + a.rows(), out.col(j));
  return out;
}
template <class T>
DenseMatrix<T> copy_of(const DenseMatrix<T>& a) {
  return copy_of(a.view());
}

template <class T>
void copy_into(MatrixView<const T> src, MatrixView<T> dst) {
  BKR_ASSERT_SHAPE(dst, src.rows(), src.cols());
  for (index_t j = 0; j < src.cols(); ++j)
    std::copy(src.col(j), src.col(j) + src.rows(), dst.col(j));
}

}  // namespace bkr
