#include "sparse/partition.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

namespace bkr {

Partition partition_greedy(const Graph& g, index_t nparts) {
  Partition p;
  p.nparts = nparts;
  p.owner.assign(size_t(g.n), -1);
  p.interior.resize(size_t(nparts));
  const index_t target = (g.n + nparts - 1) / nparts;
  index_t next_unassigned = 0;
  for (index_t part = 0; part < nparts; ++part) {
    // Grow a BFS ball of ~target vertices from an unassigned seed.
    while (next_unassigned < g.n && p.owner[size_t(next_unassigned)] >= 0) ++next_unassigned;
    if (next_unassigned >= g.n) break;
    index_t remaining_parts = nparts - part;
    index_t unassigned = 0;
    for (index_t v = 0; v < g.n; ++v)
      if (p.owner[size_t(v)] < 0) ++unassigned;
    const index_t quota =
        (part + 1 == nparts) ? unassigned : std::min(target, (unassigned + remaining_parts - 1) / remaining_parts);
    std::deque<index_t> queue{next_unassigned};
    p.owner[size_t(next_unassigned)] = part;
    index_t taken = 0;
    std::vector<index_t> frontier;
    while (taken < quota) {
      if (queue.empty()) {
        // Component exhausted: jump to the next unassigned vertex.
        index_t v = next_unassigned;
        while (v < g.n && p.owner[size_t(v)] >= 0) ++v;
        if (v >= g.n) break;
        p.owner[size_t(v)] = part;
        queue.push_back(v);
        continue;
      }
      const index_t v = queue.front();
      queue.pop_front();
      p.interior[size_t(part)].push_back(v);
      ++taken;
      for (index_t l = g.ptr[size_t(v)]; l < g.ptr[size_t(v) + 1]; ++l) {
        const index_t w = g.adj[size_t(l)];
        if (p.owner[size_t(w)] >= 0) continue;
        p.owner[size_t(w)] = part;
        queue.push_back(w);
      }
    }
    // Vertices claimed but beyond the quota go back to the pool.
    while (!queue.empty()) {
      p.owner[size_t(queue.front())] = -1;
      queue.pop_front();
    }
  }
  // Safety: assign any leftover vertex to the last part.
  for (index_t v = 0; v < g.n; ++v)
    if (p.owner[size_t(v)] < 0) {
      p.owner[size_t(v)] = nparts - 1;
      p.interior[size_t(nparts) - 1].push_back(v);
    }
  for (auto& part : p.interior) std::sort(part.begin(), part.end());
  return p;
}

std::vector<index_t> grow_overlap(const Graph& g, const std::vector<index_t>& seeds,
                                  index_t delta) {
  std::vector<char> in(size_t(g.n), 0);
  std::vector<index_t> current = seeds;
  for (const index_t v : seeds) in[size_t(v)] = 1;
  for (index_t layer = 0; layer < delta; ++layer) {
    std::vector<index_t> next;
    for (const index_t v : current)
      for (index_t l = g.ptr[size_t(v)]; l < g.ptr[size_t(v) + 1]; ++l) {
        const index_t w = g.adj[size_t(l)];
        if (in[size_t(w)]) continue;
        in[size_t(w)] = 1;
        next.push_back(w);
      }
    current = std::move(next);
  }
  std::vector<index_t> out;
  for (index_t v = 0; v < g.n; ++v)
    if (in[size_t(v)]) out.push_back(v);
  return out;
}

OverlappingDecomposition make_decomposition(const Graph& g, index_t nparts, index_t delta,
                                            PouKind kind) {
  OverlappingDecomposition d;
  d.base = partition_greedy(g, nparts);
  d.rows.resize(size_t(nparts));
  d.pou.resize(size_t(nparts));
  for (index_t i = 0; i < nparts; ++i)
    d.rows[size_t(i)] = grow_overlap(g, d.base.interior[size_t(i)], delta);
  if (kind == PouKind::Boolean) {
    for (index_t i = 0; i < nparts; ++i) {
      d.pou[size_t(i)].resize(d.rows[size_t(i)].size());
      for (size_t l = 0; l < d.rows[size_t(i)].size(); ++l)
        d.pou[size_t(i)][l] = (d.base.owner[size_t(d.rows[size_t(i)][l])] == i) ? 1.0 : 0.0;
    }
  } else {
    std::vector<index_t> multiplicity(size_t(g.n), 0);
    for (index_t i = 0; i < nparts; ++i)
      for (const index_t v : d.rows[size_t(i)]) ++multiplicity[size_t(v)];
    for (index_t i = 0; i < nparts; ++i) {
      d.pou[size_t(i)].resize(d.rows[size_t(i)].size());
      for (size_t l = 0; l < d.rows[size_t(i)].size(); ++l)
        d.pou[size_t(i)][l] = 1.0 / double(multiplicity[size_t(d.rows[size_t(i)][l])]);
    }
  }
  return d;
}

}  // namespace bkr
