// fp32-storage mirror of a CsrMatrix — the mixed-precision pilot kernel
// (DESIGN.md §14, ROADMAP item 3).
//
// The narrow mirror shares the fp64 matrix's structure (rowptr/colind are
// referenced, never copied); only the values array is narrowed to fp32
// storage, halving the value-stream bandwidth of SpMV/SpMM — the memory
// traffic that dominates the paper's strong-scaling regime. Every apply
// promotes each value back to fp64 at load and accumulates in fp64 (the
// component's BKR_PRECISION_BOUNDARY), so the only rounding the mirror
// introduces is the one-time value narrowing: a componentwise relative
// perturbation of A bounded by fp32 machine epsilon. Solvers consume the
// mirror through MixedPrecisionOperator (core/operator.hpp), whose
// residual-replacement discipline recovers fp64 solution accuracy.
//
// Precision-flow discipline (tools/bkr_lint --fpflow): the narrowing
// below is confined to precision_convert and annotated
// BKR_ALLOW_NARROWING; the tolerance oracle naming these components
// lives in tests/test_mixed.cpp.
//
// bkr-lint: allow-file(float-literal) — this header IS the library's fp32
// storage scope; the fp64-only discipline the rule enforces everywhere
// else is exactly what confines `float` to this file.
#pragma once

#include <complex>
#include <vector>

#include "common/contracts.hpp"
#include "common/types.hpp"
#include "la/dense.hpp"
#include "common/exec.hpp"
#include "sparse/csr.hpp"

namespace bkr {

// double -> float and complex<double> -> complex<float>; the identity on
// types that are already narrow.
template <class T>
struct narrow_traits {
  using type = float;
};
template <class R>
struct narrow_traits<std::complex<R>> {
  using type = std::complex<float>;
};
template <class T>
using narrow_t = typename narrow_traits<T>::type;

// The two deliberate conversion directions of the pilot, in one place so
// every narrowing site in the library is annotated and auditable.
template <class T>
struct precision_convert {
  BKR_ALLOW_NARROWING static narrow_t<T> narrow(T v) noexcept {
    return static_cast<narrow_t<T>>(v);
  }
  static T widen(narrow_t<T> v) noexcept { return static_cast<T>(v); }
};
template <class R>
struct precision_convert<std::complex<R>> {
  BKR_ALLOW_NARROWING static narrow_t<std::complex<R>> narrow(std::complex<R> v) noexcept {
    return {static_cast<float>(v.real()), static_cast<float>(v.imag())};
  }
  static std::complex<R> widen(narrow_t<std::complex<R>> v) noexcept {
    return {static_cast<R>(v.real()), static_cast<R>(v.imag())};
  }
};

// Narrow-value view of a CsrMatrix<T>. Holds the full-precision matrix by
// pointer for its structure arrays (the mirror must not outlive it) plus
// one narrowed values array; spmv/spmm follow CsrMatrix's row-partitioned
// parallel contract exactly, so mirror applies are bitwise identical at
// every thread count.
template <class T>
class MixedCsr {
 public:
  using narrow_type = narrow_t<T>;

  MixedCsr() = default;
  explicit MixedCsr(const CsrMatrix<T>& a) : a_(&a) {
    values_.resize(size_t(a.nnz()));
    for (index_t l = 0; l < a.nnz(); ++l)
      values_[size_t(l)] = precision_convert<T>::narrow(a.values()[size_t(l)]);
  }

  [[nodiscard]] index_t rows() const { return a_->rows(); }
  [[nodiscard]] index_t cols() const { return a_->cols(); }
  [[nodiscard]] index_t nnz() const { return index_t(values_.size()); }
  [[nodiscard]] const std::vector<narrow_type>& values() const { return values_; }
  [[nodiscard]] const CsrMatrix<T>& full() const { return *a_; }

  // y = A32 x: fp32 value stream, fp64 promotion at load, fp64
  // accumulation. Same executor engagement and row splits as the fp64
  // kernel.
  BKR_HOT void spmv(const T* x, T* y, const KernelExecutor* ex = nullptr) const {
    const index_t rows = a_->rows();
    if (ex == nullptr || rows <= 1 || !ex->engage(Kernel::Spmv, nnz())) {
      spmv_rows(0, rows, x, y);
      return;
    }
    const index_t parts = std::min(rows, ex->lanes() * 4);
    const std::vector<index_t> splits = balanced_row_splits(a_->rowptr(), rows, parts);
    ex->run(Kernel::Spmv, parts, [&](index_t t) {
      spmv_rows(splits[size_t(t)], splits[size_t(t) + 1], x, y);
    });
  }

  // Y = A32 X over a block of p columns (the fused SpMM sweep).
  BKR_HOT void spmm(MatrixView<const T> x, MatrixView<T> y,
                    const KernelExecutor* ex = nullptr) const {
    const index_t rows = a_->rows(), p = x.cols();
    BKR_REQUIRE(x.rows() == a_->cols(), "x.rows", x.rows(), "a.cols", a_->cols());
    BKR_ASSERT_SHAPE(y, rows, p);
    if (p == 1) {
      spmv(x.col(0), y.col(0), ex);
      return;
    }
    if (ex == nullptr || rows <= 1 || !ex->engage(Kernel::Spmm, nnz() * p)) {
      spmm_rows(0, rows, x, y);
      return;
    }
    const index_t parts = std::min(rows, ex->lanes() * 4);
    const std::vector<index_t> splits = balanced_row_splits(a_->rowptr(), rows, parts);
    ex->run(Kernel::Spmm, parts, [&](index_t t) {
      spmm_rows(splits[size_t(t)], splits[size_t(t) + 1], x, y);
    });
  }

 private:
  void spmv_rows(index_t i0, index_t i1, const T* x, T* y) const {
    const std::vector<index_t>& rowptr = a_->rowptr();
    const std::vector<index_t>& colind = a_->colind();
    for (index_t i = i0; i < i1; ++i) {
      T s(0);
      BKR_PRECISION_BOUNDARY for (index_t l = rowptr[size_t(i)]; l < rowptr[size_t(i) + 1]; ++l)
        s += precision_convert<T>::widen(values_[size_t(l)]) * x[colind[size_t(l)]];
      y[i] = s;
    }
  }

  void spmm_rows(index_t i0, index_t i1, MatrixView<const T>& x, MatrixView<T>& y) const {
    const std::vector<index_t>& rowptr = a_->rowptr();
    const std::vector<index_t>& colind = a_->colind();
    const index_t p = x.cols();
    for (index_t i = i0; i < i1; ++i) {
      for (index_t j = 0; j < p; ++j) y(i, j) = T(0);
      BKR_PRECISION_BOUNDARY for (index_t l = rowptr[size_t(i)]; l < rowptr[size_t(i) + 1]; ++l) {
        const T a = precision_convert<T>::widen(values_[size_t(l)]);
        const index_t c = colind[size_t(l)];
        for (index_t j = 0; j < p; ++j) y(i, j) += a * x(c, j);
      }
    }
  }

  const CsrMatrix<T>* a_ = nullptr;  // structure (not owned)
  std::vector<narrow_type> values_;  // narrowed value stream
};

}  // namespace bkr
