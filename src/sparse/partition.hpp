// Graph partitioning and overlap growth for Schwarz methods.
//
// Stands in for SCOTCH: a greedy balanced BFS partitioner producing N
// connected (whenever possible) parts, plus the recursive overlap growth
// of the paper's section V-A (T_i^delta = T_i^{delta-1} plus adjacent
// elements) expressed on the matrix adjacency graph.
#pragma once

#include <vector>

#include "sparse/graph.hpp"

namespace bkr {

struct Partition {
  index_t nparts = 0;
  std::vector<index_t> owner;                   // vertex -> part id
  std::vector<std::vector<index_t>> interior;   // part -> owned vertices (sorted)
};

// Greedy balanced BFS k-way partition.
Partition partition_greedy(const Graph& g, index_t nparts);

// Overlapping subdomain: the seed set grown by `delta` layers of
// adjacency. Result is sorted; the first entries are NOT the seeds (the
// set is re-sorted globally).
std::vector<index_t> grow_overlap(const Graph& g, const std::vector<index_t>& seeds, index_t delta);

struct OverlappingDecomposition {
  // For each subdomain: sorted global indices of its overlapping vertex
  // set, and the partition-of-unity weights (same length). Sum over
  // subdomains of R_i^T D_i R_i equals the identity.
  std::vector<std::vector<index_t>> rows;
  std::vector<std::vector<double>> pou;
  Partition base;
};

enum class PouKind {
  Boolean,       // RAS: weight 1 on owned vertices, 0 on ghosts
  Multiplicity,  // 1/multiplicity on every vertex of the overlapping set
};

OverlappingDecomposition make_decomposition(const Graph& g, index_t nparts, index_t delta,
                                            PouKind kind = PouKind::Boolean);

}  // namespace bkr
