// Matrix Market I/O.
//
// Lets the driver and downstream users feed external systems to the
// solvers (the ecosystem the paper targets distributes test matrices in
// this format). Supports `matrix coordinate real|complex
// general|symmetric` for reading and writes `coordinate` files.
#pragma once

#include <complex>
#include <string>

#include "sparse/csr.hpp"

namespace bkr {

// Throws std::runtime_error on malformed input or unsupported headers.
template <class T>
CsrMatrix<T> read_matrix_market(const std::string& path);

template <class T>
void write_matrix_market(const std::string& path, const CsrMatrix<T>& a);

extern template CsrMatrix<double> read_matrix_market<double>(const std::string&);
extern template CsrMatrix<std::complex<double>> read_matrix_market<std::complex<double>>(
    const std::string&);
extern template void write_matrix_market<double>(const std::string&, const CsrMatrix<double>&);
extern template void write_matrix_market<std::complex<double>>(
    const std::string&, const CsrMatrix<std::complex<double>>&);

}  // namespace bkr
