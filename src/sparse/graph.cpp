#include "sparse/graph.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

namespace bkr {

std::vector<index_t> bfs_order(const Graph& g, index_t root, const std::vector<char>* mask) {
  std::vector<index_t> order;
  std::vector<char> seen(size_t(g.n), 0);
  std::deque<index_t> queue;
  auto allowed = [&](index_t v) { return mask == nullptr || (*mask)[size_t(v)] != 0; };
  if (!allowed(root)) return order;
  queue.push_back(root);
  seen[size_t(root)] = 1;
  while (!queue.empty()) {
    const index_t v = queue.front();
    queue.pop_front();
    order.push_back(v);
    for (index_t l = g.ptr[size_t(v)]; l < g.ptr[size_t(v) + 1]; ++l) {
      const index_t w = g.adj[size_t(l)];
      if (seen[size_t(w)] || !allowed(w)) continue;
      seen[size_t(w)] = 1;
      queue.push_back(w);
    }
  }
  return order;
}

index_t pseudo_peripheral_vertex(const Graph& g, index_t start) {
  if (g.n == 0) return 0;
  index_t v = start;
  index_t last_depth = -1;
  for (int round = 0; round < 8; ++round) {
    // One BFS, remembering the last visited (deepest) vertex and depth.
    std::vector<index_t> depth(size_t(g.n), -1);
    std::deque<index_t> queue{v};
    depth[size_t(v)] = 0;
    index_t deepest = v;
    while (!queue.empty()) {
      const index_t u = queue.front();
      queue.pop_front();
      if (depth[size_t(u)] > depth[size_t(deepest)] ||
          (depth[size_t(u)] == depth[size_t(deepest)] && g.degree(u) < g.degree(deepest)))
        deepest = u;
      for (index_t l = g.ptr[size_t(u)]; l < g.ptr[size_t(u) + 1]; ++l) {
        const index_t w = g.adj[size_t(l)];
        if (depth[size_t(w)] >= 0) continue;
        depth[size_t(w)] = depth[size_t(u)] + 1;
        queue.push_back(w);
      }
    }
    if (depth[size_t(deepest)] <= last_depth) break;
    last_depth = depth[size_t(deepest)];
    v = deepest;
  }
  return v;
}

std::vector<index_t> rcm_ordering(const Graph& g) {
  std::vector<index_t> perm;
  perm.reserve(size_t(g.n));
  std::vector<char> seen(size_t(g.n), 0);
  for (index_t comp_start = 0; comp_start < g.n; ++comp_start) {
    if (seen[size_t(comp_start)]) continue;
    const index_t root = pseudo_peripheral_vertex(g, comp_start);
    // Cuthill–McKee: BFS with neighbours sorted by ascending degree.
    std::deque<index_t> queue;
    if (!seen[size_t(root)]) {
      queue.push_back(root);
      seen[size_t(root)] = 1;
    }
    std::vector<index_t> nbrs;
    while (!queue.empty()) {
      const index_t v = queue.front();
      queue.pop_front();
      perm.push_back(v);
      nbrs.clear();
      for (index_t l = g.ptr[size_t(v)]; l < g.ptr[size_t(v) + 1]; ++l) {
        const index_t w = g.adj[size_t(l)];
        if (!seen[size_t(w)]) {
          seen[size_t(w)] = 1;
          nbrs.push_back(w);
        }
      }
      std::sort(nbrs.begin(), nbrs.end(),
                [&](index_t a, index_t b) { return g.degree(a) < g.degree(b); });
      for (const index_t w : nbrs) queue.push_back(w);
    }
  }
  std::reverse(perm.begin(), perm.end());
  return perm;
}

}  // namespace bkr
