#include "sparse/matrix_market.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bkr {
namespace {

struct Header {
  bool complex_values = false;
  bool symmetric = false;
};

Header parse_header(const std::string& line) {
  std::istringstream ss(line);
  std::string banner, object, format, field, symmetry;
  ss >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket" || object != "matrix" || format != "coordinate")
    throw std::runtime_error("matrix market: unsupported header: " + line);
  Header h;
  if (field == "complex")
    h.complex_values = true;
  else if (field != "real" && field != "integer")
    throw std::runtime_error("matrix market: unsupported field: " + field);
  if (symmetry == "symmetric")
    h.symmetric = true;
  else if (symmetry != "general")
    throw std::runtime_error("matrix market: unsupported symmetry: " + symmetry);
  return h;
}

template <class T>
T read_value(std::istringstream& ss, bool complex_values) {
  double re = 0, im = 0;
  ss >> re;
  if (complex_values) ss >> im;
  if constexpr (is_complex_v<T>) {
    return T(re, im);
  } else {
    if (im != 0.0) throw std::runtime_error("matrix market: complex file into real matrix");
    return T(re);
  }
}

}  // namespace

template <class T>
CsrMatrix<T> read_matrix_market(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("matrix market: cannot open " + path);
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("matrix market: empty file");
  const Header header = parse_header(line);
  // Skip comments.
  while (std::getline(in, line))
    if (!line.empty() && line[0] != '%') break;
  std::istringstream sizes(line);
  index_t rows = 0, cols = 0, nnz = 0;
  sizes >> rows >> cols >> nnz;
  if (rows <= 0 || cols <= 0 || nnz < 0)
    throw std::runtime_error("matrix market: bad size line: " + line);
  CooBuilder<T> builder(rows, cols);
  builder.reserve(static_cast<size_t>(header.symmetric ? 2 * nnz : nnz));
  for (index_t k = 0; k < nnz; ++k) {
    if (!std::getline(in, line)) throw std::runtime_error("matrix market: truncated file");
    std::istringstream ss(line);
    index_t i = 0, j = 0;
    ss >> i >> j;
    if (i < 1 || i > rows || j < 1 || j > cols)
      throw std::runtime_error("matrix market: index out of range: " + line);
    const T v = read_value<T>(ss, header.complex_values);
    builder.add(i - 1, j - 1, v);
    if (header.symmetric && i != j) builder.add(j - 1, i - 1, v);
  }
  return builder.build();
}

template <class T>
void write_matrix_market(const std::string& path, const CsrMatrix<T>& a) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("matrix market: cannot write " + path);
  out << "%%MatrixMarket matrix coordinate " << (is_complex_v<T> ? "complex" : "real")
      << " general\n";
  out << a.rows() << " " << a.cols() << " " << a.nnz() << "\n";
  out.precision(17);
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t l = a.rowptr()[size_t(i)]; l < a.rowptr()[size_t(i) + 1]; ++l) {
      out << (i + 1) << " " << (a.colind()[size_t(l)] + 1) << " ";
      const T v = a.values()[size_t(l)];
      if constexpr (is_complex_v<T>) {
        out << scalar_traits<T>::real(v) << " " << scalar_traits<T>::imag(v) << "\n";
      } else {
        out << v << "\n";
      }
    }
}

template CsrMatrix<double> read_matrix_market<double>(const std::string&);
template CsrMatrix<std::complex<double>> read_matrix_market<std::complex<double>>(
    const std::string&);
template void write_matrix_market<double>(const std::string&, const CsrMatrix<double>&);
template void write_matrix_market<std::complex<double>>(const std::string&,
                                                        const CsrMatrix<std::complex<double>>&);

}  // namespace bkr
