// Fixed-pattern CSR assembler.
//
// Finite element assembly on structured grids knows its sparsity pattern
// up front; building the CSR skeleton once and scattering element
// contributions by binary search avoids the memory blow-up of COO
// triplet lists on the larger 3-D problems.
#pragma once

#include <algorithm>
#include <cassert>
#include <vector>

#include "sparse/csr.hpp"

namespace bkr {

template <class T>
class PatternAssembler {
 public:
  // `columns[i]` lists the (not necessarily sorted, possibly duplicate)
  // potential column indices of row i.
  PatternAssembler(index_t rows, index_t cols, std::vector<std::vector<index_t>> columns)
      : rows_(rows), cols_(cols) {
    rowptr_.assign(size_t(rows) + 1, 0);
    for (index_t i = 0; i < rows; ++i) {
      auto& c = columns[size_t(i)];
      std::sort(c.begin(), c.end());
      c.erase(std::unique(c.begin(), c.end()), c.end());
      rowptr_[size_t(i) + 1] = rowptr_[size_t(i)] + index_t(c.size());
    }
    colind_.reserve(size_t(rowptr_[size_t(rows)]));
    for (index_t i = 0; i < rows; ++i)
      colind_.insert(colind_.end(), columns[size_t(i)].begin(), columns[size_t(i)].end());
    values_.assign(colind_.size(), T(0));
  }

  void add(index_t i, index_t j, T v) {
    const auto begin = colind_.begin() + rowptr_[size_t(i)];
    const auto end = colind_.begin() + rowptr_[size_t(i) + 1];
    const auto it = std::lower_bound(begin, end, j);
    assert(it != end && *it == j && "entry outside the preallocated pattern");
    values_[size_t(it - colind_.begin())] += v;
  }

  [[nodiscard]] CsrMatrix<T> build() && {
    return CsrMatrix<T>(rows_, cols_, std::move(rowptr_), std::move(colind_), std::move(values_));
  }

 private:
  index_t rows_, cols_;
  std::vector<index_t> rowptr_;
  std::vector<index_t> colind_;
  std::vector<T> values_;
};

}  // namespace bkr
