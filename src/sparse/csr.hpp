// Compressed sparse row matrices.
//
// CSR is the assembled-operator format used throughout: problem
// generators emit CSR, Krylov methods consume it through SpMV/SpMM, AMG
// builds Galerkin products on it and the Schwarz preconditioner extracts
// overlapping submatrices from it. SpMM (sparse matrix times a block of p
// contiguous columns) is the kernel that gives (pseudo-)block methods
// their arithmetic-intensity advantage (paper section V-B2).
#pragma once

#include <algorithm>
#include <cassert>
#include <tuple>
#include <vector>

#include "common/contracts.hpp"
#include "common/types.hpp"
#include "la/dense.hpp"
#include "common/exec.hpp"

namespace bkr {

// Partition [0, rows) into `parts` contiguous ranges with approximately
// equal nonzero counts (binary search on the rowptr prefix sums). Returns
// parts+1 monotone boundaries; used to load-balance row-parallel sparse
// kernels on matrices with irregular row lengths.
inline std::vector<index_t> balanced_row_splits(const std::vector<index_t>& rowptr, index_t rows,
                                                index_t parts) {
  BKR_REQUIRE(parts > 0 && index_t(rowptr.size()) >= rows + 1, "parts", parts, "rowptr.size",
              index_t(rowptr.size()), "rows", rows);
  std::vector<index_t> splits(size_t(parts) + 1, 0);
  splits[size_t(parts)] = rows;
  const index_t total = rowptr[size_t(rows)];
  for (index_t t = 1; t < parts; ++t) {
    const index_t target = (total / parts) * t + (total % parts) * t / parts;
    const auto it = std::lower_bound(rowptr.begin(), rowptr.begin() + rows + 1, target);
    const index_t cut = index_t(it - rowptr.begin());
    splits[size_t(t)] = std::min(rows, std::max(cut, splits[size_t(t) - 1]));
  }
  return splits;
}

template <class T>
class CsrMatrix {
 public:
  CsrMatrix() = default;
  CsrMatrix(index_t rows, index_t cols, std::vector<index_t> rowptr, std::vector<index_t> colind,
            std::vector<T> values)
      : rows_(rows),
        cols_(cols),
        rowptr_(std::move(rowptr)),
        colind_(std::move(colind)),
        values_(std::move(values)) {
    BKR_REQUIRE(index_t(rowptr_.size()) == rows_ + 1, "rowptr.size", index_t(rowptr_.size()),
                "rows+1", rows_ + 1);
    BKR_REQUIRE(colind_.size() == values_.size(), "colind.size", colind_.size(), "values.size",
                values_.size());
  }

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] index_t nnz() const { return index_t(values_.size()); }
  [[nodiscard]] const std::vector<index_t>& rowptr() const { return rowptr_; }
  [[nodiscard]] const std::vector<index_t>& colind() const { return colind_; }
  [[nodiscard]] const std::vector<T>& values() const { return values_; }
  [[nodiscard]] std::vector<T>& values() { return values_; }

  // y = A x. Rows write disjoint outputs in an unchanged per-row order, so
  // the executor's row-partitioned schedule is bitwise identical to the
  // serial sweep at every thread count.
  BKR_HOT void spmv(const T* x, T* y, const KernelExecutor* ex = nullptr) const {
    if (ex == nullptr || rows_ <= 1 || !ex->engage(Kernel::Spmv, nnz())) {
      spmv_rows(0, rows_, x, y);
      return;
    }
    const index_t parts = std::min(rows_, ex->lanes() * 4);
    const std::vector<index_t> splits = balanced_row_splits(rowptr_, rows_, parts);
    ex->run(Kernel::Spmv, parts, [&](index_t t) {
      spmv_rows(splits[size_t(t)], splits[size_t(t) + 1], x, y);
    });
  }

  // Y = A X for a block of p columns: one sweep over the matrix, all p
  // accumulations per nonzero (the BLAS-3-like fused kernel). Same
  // row-partitioned parallel contract as spmv.
  BKR_HOT void spmm(MatrixView<const T> x, MatrixView<T> y,
                    const KernelExecutor* ex = nullptr) const {
    const index_t p = x.cols();
    BKR_REQUIRE(x.rows() == cols_, "x.rows", x.rows(), "a.cols", cols_);
    BKR_ASSERT_SHAPE(y, rows_, p);
    if (p == 1) {
      spmv(x.col(0), y.col(0), ex);
      return;
    }
    if (ex == nullptr || rows_ <= 1 || !ex->engage(Kernel::Spmm, nnz() * p)) {
      spmm_rows(0, rows_, x, y);
      return;
    }
    const index_t parts = std::min(rows_, ex->lanes() * 4);
    const std::vector<index_t> splits = balanced_row_splits(rowptr_, rows_, parts);
    ex->run(Kernel::Spmm, parts, [&](index_t t) {
      spmm_rows(splits[size_t(t)], splits[size_t(t) + 1], x, y);
    });
  }

  [[nodiscard]] std::vector<T> diagonal() const {
    std::vector<T> d(size_t(rows_), T(0));
    for (index_t i = 0; i < rows_; ++i)
      for (index_t l = rowptr_[size_t(i)]; l < rowptr_[size_t(i) + 1]; ++l)
        if (colind_[size_t(l)] == i) d[size_t(i)] = values_[size_t(l)];
    return d;
  }

  [[nodiscard]] T at(index_t i, index_t j) const {
    for (index_t l = rowptr_[size_t(i)]; l < rowptr_[size_t(i) + 1]; ++l)
      if (colind_[size_t(l)] == j) return values_[size_t(l)];
    return T(0);
  }

  [[nodiscard]] DenseMatrix<T> to_dense() const {
    DenseMatrix<T> d(rows_, cols_);
    for (index_t i = 0; i < rows_; ++i)
      for (index_t l = rowptr_[size_t(i)]; l < rowptr_[size_t(i) + 1]; ++l)
        d(i, colind_[size_t(l)]) += values_[size_t(l)];
    return d;
  }

 private:
  // Shared row-range workers: the single compiled body behind both the
  // serial and the pooled schedules.
  void spmv_rows(index_t i0, index_t i1, const T* x, T* y) const {
    for (index_t i = i0; i < i1; ++i) {
      T s(0);
      for (index_t l = rowptr_[size_t(i)]; l < rowptr_[size_t(i) + 1]; ++l)
        s += values_[size_t(l)] * x[colind_[size_t(l)]];
      y[i] = s;
    }
  }

  void spmm_rows(index_t i0, index_t i1, MatrixView<const T>& x, MatrixView<T>& y) const {
    const index_t p = x.cols();
    for (index_t i = i0; i < i1; ++i) {
      // Accumulate the row against every column of X.
      for (index_t j = 0; j < p; ++j) y(i, j) = T(0);
      for (index_t l = rowptr_[size_t(i)]; l < rowptr_[size_t(i) + 1]; ++l) {
        const T a = values_[size_t(l)];
        const index_t c = colind_[size_t(l)];
        for (index_t j = 0; j < p; ++j) y(i, j) += a * x(c, j);
      }
    }
  }

  index_t rows_ = 0, cols_ = 0;
  std::vector<index_t> rowptr_;
  std::vector<index_t> colind_;
  std::vector<T> values_;
};

// Incremental COO assembly; duplicate entries are summed on conversion
// (the finite element convention).
template <class T>
class CooBuilder {
 public:
  CooBuilder(index_t rows, index_t cols) : rows_(rows), cols_(cols) {}

  void add(index_t i, index_t j, T v) {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    if (v == T(0)) return;
    entries_.emplace_back(i, j, v);
  }
  void reserve(size_t n) { entries_.reserve(n); }

  [[nodiscard]] CsrMatrix<T> build() const {
    std::vector<index_t> rowptr(size_t(rows_) + 1, 0);
    for (const auto& [i, j, v] : entries_) ++rowptr[size_t(i) + 1];
    for (size_t i = 0; i < size_t(rows_); ++i) rowptr[i + 1] += rowptr[i];
    std::vector<index_t> colind(entries_.size());
    std::vector<T> values(entries_.size());
    std::vector<index_t> next(rowptr.begin(), rowptr.end() - 1);
    for (const auto& [i, j, v] : entries_) {
      const index_t slot = next[size_t(i)]++;
      colind[size_t(slot)] = j;
      values[size_t(slot)] = v;
    }
    // Sort each row and merge duplicates.
    std::vector<index_t> out_rowptr(size_t(rows_) + 1, 0);
    std::vector<index_t> out_colind;
    std::vector<T> out_values;
    out_colind.reserve(entries_.size());
    out_values.reserve(entries_.size());
    std::vector<std::pair<index_t, T>> row;
    for (index_t i = 0; i < rows_; ++i) {
      row.clear();
      for (index_t l = rowptr[size_t(i)]; l < rowptr[size_t(i) + 1]; ++l)
        row.emplace_back(colind[size_t(l)], values[size_t(l)]);
      std::sort(row.begin(), row.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (size_t l = 0; l < row.size(); ++l) {
        if (!out_colind.empty() && index_t(out_colind.size()) > out_rowptr[size_t(i)] &&
            out_colind.back() == row[l].first) {
          out_values.back() += row[l].second;
        } else {
          out_colind.push_back(row[l].first);
          out_values.push_back(row[l].second);
        }
      }
      out_rowptr[size_t(i) + 1] = index_t(out_colind.size());
    }
    return CsrMatrix<T>(rows_, cols_, std::move(out_rowptr), std::move(out_colind),
                        std::move(out_values));
  }

 private:
  index_t rows_, cols_;
  std::vector<std::tuple<index_t, index_t, T>> entries_;
};

// B = A^T (no conjugation; the structural transpose).
template <class T>
CsrMatrix<T> transpose(const CsrMatrix<T>& a) {
  const index_t rows = a.rows(), cols = a.cols();
  std::vector<index_t> rowptr(size_t(cols) + 1, 0);
  for (index_t l = 0; l < a.nnz(); ++l) ++rowptr[size_t(a.colind()[size_t(l)]) + 1];
  for (size_t i = 0; i < size_t(cols); ++i) rowptr[i + 1] += rowptr[i];
  std::vector<index_t> colind(size_t(a.nnz()));
  std::vector<T> values(size_t(a.nnz()));
  std::vector<index_t> next(rowptr.begin(), rowptr.end() - 1);
  for (index_t i = 0; i < rows; ++i)
    for (index_t l = a.rowptr()[size_t(i)]; l < a.rowptr()[size_t(i) + 1]; ++l) {
      const index_t j = a.colind()[size_t(l)];
      const index_t slot = next[size_t(j)]++;
      colind[size_t(slot)] = i;
      values[size_t(slot)] = a.values()[size_t(l)];
    }
  return CsrMatrix<T>(cols, rows, std::move(rowptr), std::move(colind), std::move(values));
}

// C = A * B (row-merge sparse product with a dense workspace).
template <class T>
CsrMatrix<T> multiply(const CsrMatrix<T>& a, const CsrMatrix<T>& b) {
  BKR_REQUIRE(a.cols() == b.rows(), "a.cols", a.cols(), "b.rows", b.rows());
  const index_t rows = a.rows(), cols = b.cols();
  std::vector<index_t> rowptr(size_t(rows) + 1, 0);
  std::vector<index_t> colind;
  std::vector<T> values;
  std::vector<T> work(size_t(cols), T(0));
  std::vector<index_t> marker(size_t(cols), -1);
  std::vector<index_t> pattern;
  for (index_t i = 0; i < rows; ++i) {
    pattern.clear();
    for (index_t la = a.rowptr()[size_t(i)]; la < a.rowptr()[size_t(i) + 1]; ++la) {
      const index_t k = a.colind()[size_t(la)];
      const T av = a.values()[size_t(la)];
      for (index_t lb = b.rowptr()[size_t(k)]; lb < b.rowptr()[size_t(k) + 1]; ++lb) {
        const index_t j = b.colind()[size_t(lb)];
        if (marker[size_t(j)] != i) {
          marker[size_t(j)] = i;
          work[size_t(j)] = T(0);
          pattern.push_back(j);
        }
        work[size_t(j)] += av * b.values()[size_t(lb)];
      }
    }
    std::sort(pattern.begin(), pattern.end());
    for (const index_t j : pattern) {
      colind.push_back(j);
      values.push_back(work[size_t(j)]);
    }
    rowptr[size_t(i) + 1] = index_t(colind.size());
  }
  return CsrMatrix<T>(rows, cols, std::move(rowptr), std::move(colind), std::move(values));
}

// Galerkin triple product P^T A P (AMG coarse operator).
template <class T>
CsrMatrix<T> triple_product(const CsrMatrix<T>& p, const CsrMatrix<T>& a) {
  return multiply(transpose(p), multiply(a, p));
}

// Extract the square submatrix on `rows` (global-to-local renumbering;
// entries whose column is outside the set are dropped — the Dirichlet
// truncation used by ASM subdomain matrices).
template <class T>
CsrMatrix<T> extract_submatrix(const CsrMatrix<T>& a, const std::vector<index_t>& rows) {
  BKR_REQUIRE(a.rows() == a.cols(), "a.rows", a.rows(), "a.cols", a.cols());
  std::vector<index_t> g2l(size_t(a.cols()), -1);
  for (size_t l = 0; l < rows.size(); ++l) g2l[size_t(rows[l])] = index_t(l);
  const index_t n = index_t(rows.size());
  std::vector<index_t> rowptr(size_t(n) + 1, 0);
  std::vector<index_t> colind;
  std::vector<T> values;
  for (index_t li = 0; li < n; ++li) {
    const index_t gi = rows[size_t(li)];
    for (index_t l = a.rowptr()[size_t(gi)]; l < a.rowptr()[size_t(gi) + 1]; ++l) {
      const index_t lj = g2l[size_t(a.colind()[size_t(l)])];
      if (lj < 0) continue;
      colind.push_back(lj);
      values.push_back(a.values()[size_t(l)]);
    }
    rowptr[size_t(li) + 1] = index_t(colind.size());
  }
  return CsrMatrix<T>(n, n, std::move(rowptr), std::move(colind), std::move(values));
}

}  // namespace bkr
