// Sharded SPMD execution of a CSR operator.
//
// The paper's scalability argument (sections III-D and V) is phrased for a
// distributed-memory machine: each process owns a contiguous slab of rows,
// every SpMV is a halo exchange plus a local sweep, and every dot product
// is a log2(P)-depth tree reduction. This header executes that structure
// in-process: the greedy k-way partitioner splits the matrix into S shards,
// each shard owning its local CSR block, halo column list and
// partition-of-unity weights, and applies run shard-parallel over the
// KernelExecutor with an explicit serial gather (the "halo exchange")
// through owned buffers.
//
// Determinism contract (DESIGN.md §8, extended by §13): a sharded apply is
// bitwise identical to the monolithic serial sweep at EVERY shard count.
// Two properties guarantee it:
//  1. Shards own disjoint row sets, each local row keeps its global
//     nonzero order, and the local column map covers every referenced
//     column — so the per-row accumulation performs the same additions in
//     the same order as CsrMatrix::spmm, on gathered values that are
//     bitwise copies of the global vector.
//  2. Reductions are NOT performed per shard (a per-shard tree would make
//     the fold shape a function of S); solvers running sharded use the
//     global chunk-leaf trees of la/blas.hpp whose shape depends on the
//     problem size only.
#pragma once

#include <algorithm>
#include <functional>
#include <vector>

#include "common/contracts.hpp"
#include "common/exec.hpp"
#include "common/types.hpp"
#include "la/dense.hpp"
#include "sparse/csr.hpp"
#include "sparse/graph.hpp"
#include "sparse/partition.hpp"

namespace bkr {

// A CSR operator partitioned into S row-disjoint shards. extract_submatrix
// is unusable here: it drops entries whose column leaves the row set, which
// changes the computed values. Each shard instead keeps ALL columns its
// rows reference — owned columns first (sorted), then halo columns
// (sorted) — so the local sweep reproduces the monolithic result exactly.
template <class T>
class ShardedCsrOperator {
 public:
  // Observation hook over the gathered halo values of one shard, invoked
  // during the serial gather phase of every apply (before the parallel
  // fan-out, so hooks may keep non-atomic state). The resilience layer
  // uses it to corrupt halo payloads in flight.
  using HaloHook = std::function<void(index_t shard, MatrixView<T> halo)>;

  ShardedCsrOperator(const CsrMatrix<T>& a, index_t nshards) : source_(&a), n_(a.rows()) {
    BKR_REQUIRE(a.rows() == a.cols(), "a.rows", a.rows(), "a.cols", a.cols());
    BKR_REQUIRE(nshards >= 1, "nshards", nshards);
    BKR_REQUIRE(n_ > 0, "n", n_);
    const Graph g = adjacency_of(a);
    const Partition part = partition_greedy(g, nshards);
    shards_.resize(size_t(nshards));
    for (index_t s = 0; s < nshards; ++s) {
      Shard& sh = shards_[size_t(s)];
      sh.rows = part.interior[size_t(s)];  // sorted, disjoint across shards
      build_local(a, sh);
    }
    // Executed message structure: one point-to-point send per (shard,
    // neighbour-owner) pair whose values the shard gathers.
    for (index_t s = 0; s < nshards; ++s) {
      const Shard& sh = shards_[size_t(s)];
      halo_entries_ += index_t(sh.halo.size());
      std::vector<index_t> owners;
      owners.reserve(sh.halo.size());
      for (const index_t g_col : sh.halo) owners.push_back(part.owner[size_t(g_col)]);
      std::sort(owners.begin(), owners.end());
      owners.erase(std::unique(owners.begin(), owners.end()), owners.end());
      halo_messages_ += index_t(owners.size());
    }
  }

  [[nodiscard]] index_t n() const { return n_; }
  [[nodiscard]] index_t shard_count() const { return index_t(shards_.size()); }
  [[nodiscard]] const CsrMatrix<T>& source() const { return *source_; }

  // Per-shard introspection (tests and the deflation coarse space).
  [[nodiscard]] const std::vector<index_t>& owned_rows(index_t s) const {
    return shards_[size_t(s)].rows;
  }
  [[nodiscard]] const std::vector<index_t>& halo_indices(index_t s) const {
    return shards_[size_t(s)].halo;
  }
  [[nodiscard]] const std::vector<double>& pou_weights(index_t s) const {
    return shards_[size_t(s)].pou;
  }
  [[nodiscard]] const CsrMatrix<T>& local_matrix(index_t s) const {
    return shards_[size_t(s)].local;
  }

  // Total gathered halo values / point-to-point messages per apply — the
  // real per-round figures CommModel::halo_exchange records.
  [[nodiscard]] index_t halo_entries() const { return halo_entries_; }
  [[nodiscard]] index_t halo_messages() const { return halo_messages_; }

  void set_halo_hook(HaloHook hook) { halo_hook_ = std::move(hook); }

  // Y = A X, shard-parallel. Gather (halo exchange) runs serially — it is
  // the communication phase, and hooks observing it may keep plain state —
  // then the local sweeps fan out over disjoint owned-row outputs.
  void spmm(MatrixView<const T> x, MatrixView<T> y, const KernelExecutor* ex = nullptr) const {
    const index_t p = x.cols();
    BKR_REQUIRE(x.rows() == n_, "x.rows", x.rows(), "n", n_);
    BKR_ASSERT_SHAPE(y, n_, p);
    const index_t ns = shard_count();
    for (index_t s = 0; s < ns; ++s) gather(s, x);
    const auto work = [&](index_t s) {
      const Shard& sh = shards_[size_t(s)];
      const index_t nrows = index_t(sh.rows.size());
      if (nrows == 0) return;  // empty shard: nothing owned, nothing written
      const index_t ncols = index_t(sh.cols.size());
      MatrixView<const T> xv(sh.xbuf.data(), ncols, p, ncols);
      MatrixView<T> yv(sh.ybuf.data(), nrows, p, nrows);
      sh.local.spmm(xv, yv, nullptr);  // serial local sweep: global row order preserved
      for (index_t j = 0; j < p; ++j)
        for (index_t r = 0; r < nrows; ++r) y(sh.rows[size_t(r)], j) = yv(r, j);
    };
    if (ex != nullptr && ns > 1 && ex->engage(Kernel::Spmm, source_->nnz() * p)) {
      ex->run(Kernel::Spmm, ns, work);
    } else {
      for (index_t s = 0; s < ns; ++s) work(s);
    }
  }

  void spmv(const T* x, T* y, const KernelExecutor* ex = nullptr) const {
    spmm(MatrixView<const T>(x, n_, 1, n_), MatrixView<T>(y, n_, 1, n_), ex);
  }

 private:
  struct Shard {
    std::vector<index_t> rows;  // owned global rows, sorted, disjoint across shards
    std::vector<index_t> cols;  // local -> global column map: owned first, then halo
    std::vector<index_t> halo;  // gathered non-owned columns (== cols[nowned:]), sorted
    std::vector<double> pou;    // partition-of-unity weight per local column (1 owned, 0 halo)
    index_t nowned = 0;
    CsrMatrix<T> local;  // rows.size() x cols.size(), per-row global nonzero order
    // Apply workspaces, column-major with ld = cols.size() / rows.size().
    // Solve-confined: the serial gather fills xbuf, then exactly one
    // executor task reads xbuf / writes ybuf per apply.
    mutable std::vector<T> xbuf BKR_THREAD_CONFINED;
    mutable std::vector<T> ybuf BKR_THREAD_CONFINED;
  };

  void build_local(const CsrMatrix<T>& a, Shard& sh) {
    sh.nowned = index_t(sh.rows.size());
    // Halo = referenced columns outside the owned set, sorted.
    std::vector<char> owned(size_t(n_), 0);
    for (const index_t r : sh.rows) owned[size_t(r)] = 1;
    std::vector<char> seen(size_t(n_), 0);
    for (const index_t r : sh.rows)
      for (index_t l = a.rowptr()[size_t(r)]; l < a.rowptr()[size_t(r) + 1]; ++l) {
        const index_t c = a.colind()[size_t(l)];
        if (owned[size_t(c)] == 0 && seen[size_t(c)] == 0) {
          seen[size_t(c)] = 1;
          sh.halo.push_back(c);
        }
      }
    std::sort(sh.halo.begin(), sh.halo.end());
    sh.cols = sh.rows;
    sh.cols.insert(sh.cols.end(), sh.halo.begin(), sh.halo.end());
    sh.pou.assign(sh.cols.size(), 0.0);
    for (index_t k = 0; k < sh.nowned; ++k) sh.pou[size_t(k)] = 1.0;
    // Local CSR: global-to-local column renumbering, per-row entry order
    // untouched (the bitwise-invariance requirement).
    std::vector<index_t> g2l(size_t(n_), -1);
    for (size_t k = 0; k < sh.cols.size(); ++k) g2l[size_t(sh.cols[k])] = index_t(k);
    std::vector<index_t> rowptr(sh.rows.size() + 1, 0);
    std::vector<index_t> colind;
    std::vector<T> values;
    for (size_t li = 0; li < sh.rows.size(); ++li) {
      const index_t gi = sh.rows[li];
      for (index_t l = a.rowptr()[size_t(gi)]; l < a.rowptr()[size_t(gi) + 1]; ++l) {
        colind.push_back(g2l[size_t(a.colind()[size_t(l)])]);
        values.push_back(a.values()[size_t(l)]);
      }
      rowptr[li + 1] = index_t(colind.size());
    }
    sh.local = CsrMatrix<T>(index_t(sh.rows.size()), index_t(sh.cols.size()), std::move(rowptr),
                            std::move(colind), std::move(values));
    sh.xbuf.clear();
    sh.ybuf.clear();
  }

  // Halo exchange of shard s: copy the global values every local column
  // needs into the shard's buffer (bitwise copies — property 1 above),
  // then let the observation hook see the halo slice.
  void gather(index_t s, MatrixView<const T> x) const {
    const Shard& sh = shards_[size_t(s)];
    const index_t ncols = index_t(sh.cols.size());
    const index_t nrows = index_t(sh.rows.size());
    const index_t p = x.cols();
    if (nrows == 0) return;
    // Grow-once acquisition: the first apply sizes the buffers, every
    // later apply at the same block width reuses them allocation-free.
    if (index_t(sh.xbuf.size()) < ncols * p)
      sh.xbuf.resize(size_t(ncols) * size_t(p));  // bkr-lint: allow(hot-path-alloc)
    if (index_t(sh.ybuf.size()) < nrows * p)
      sh.ybuf.resize(size_t(nrows) * size_t(p));  // bkr-lint: allow(hot-path-alloc)
    for (index_t j = 0; j < p; ++j)
      for (index_t k = 0; k < ncols; ++k)
        sh.xbuf[size_t(k) + size_t(j) * size_t(ncols)] = x(sh.cols[size_t(k)], j);
    const index_t nhalo = ncols - sh.nowned;
    if (halo_hook_ && nhalo > 0)
      halo_hook_(s, MatrixView<T>(sh.xbuf.data() + sh.nowned, nhalo, p, ncols));
  }

  const CsrMatrix<T>* source_;
  index_t n_ = 0;
  std::vector<Shard> shards_;
  index_t halo_entries_ = 0;
  index_t halo_messages_ = 0;
  HaloHook halo_hook_;
};

}  // namespace bkr
