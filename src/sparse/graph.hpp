// Adjacency graphs of sparse matrices and orderings on them.
//
// The direct solver needs fill-reducing orderings (RCM here, a
// minimum-degree variant in src/direct/ordering.*), and the Schwarz
// preconditioner needs BFS machinery for partitioning and overlap growth —
// the role SCOTCH plays in the paper.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace bkr {

// Undirected adjacency structure (CSR of the symmetrized pattern, no
// self-loops).
struct Graph {
  index_t n = 0;
  std::vector<index_t> ptr;
  std::vector<index_t> adj;

  [[nodiscard]] index_t degree(index_t v) const { return ptr[size_t(v) + 1] - ptr[size_t(v)]; }
};

// Symmetrized pattern graph of a square sparse matrix.
template <class T>
Graph adjacency_of(const CsrMatrix<T>& a) {
  const index_t n = a.rows();
  std::vector<std::vector<index_t>> nbr(static_cast<size_t>(n));
  for (index_t i = 0; i < n; ++i)
    for (index_t l = a.rowptr()[size_t(i)]; l < a.rowptr()[size_t(i) + 1]; ++l) {
      const index_t j = a.colind()[size_t(l)];
      if (j == i) continue;
      nbr[size_t(i)].push_back(j);
      nbr[size_t(j)].push_back(i);
    }
  Graph g;
  g.n = n;
  g.ptr.assign(size_t(n) + 1, 0);
  for (index_t i = 0; i < n; ++i) {
    auto& v = nbr[size_t(i)];
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    g.ptr[size_t(i) + 1] = g.ptr[size_t(i)] + index_t(v.size());
  }
  g.adj.reserve(size_t(g.ptr[size_t(n)]));
  for (index_t i = 0; i < n; ++i)
    g.adj.insert(g.adj.end(), nbr[size_t(i)].begin(), nbr[size_t(i)].end());
  return g;
}

// Breadth-first levels from `root` (only vertices with mask[v] == true are
// visited when a mask is given). Returns the visit order.
std::vector<index_t> bfs_order(const Graph& g, index_t root, const std::vector<char>* mask = nullptr);

// A vertex of (approximately) maximal eccentricity, found by repeated BFS.
index_t pseudo_peripheral_vertex(const Graph& g, index_t start = 0);

// Reverse Cuthill–McKee ordering: perm[new] = old.
std::vector<index_t> rcm_ordering(const Graph& g);

// Apply a symmetric permutation to a square matrix: B = A(perm, perm)
// with B(i, j) = A(perm[i], perm[j]).
template <class T>
CsrMatrix<T> permute_symmetric(const CsrMatrix<T>& a, const std::vector<index_t>& perm) {
  const index_t n = a.rows();
  std::vector<index_t> inv(static_cast<size_t>(n));
  for (index_t i = 0; i < n; ++i) inv[size_t(perm[size_t(i)])] = i;
  CooBuilder<T> b(n, n);
  b.reserve(size_t(a.nnz()));
  for (index_t i = 0; i < n; ++i)
    for (index_t l = a.rowptr()[size_t(i)]; l < a.rowptr()[size_t(i) + 1]; ++l)
      b.add(inv[size_t(i)], inv[size_t(a.colind()[size_t(l)])], a.values()[size_t(l)]);
  return b.build();
}

}  // namespace bkr
