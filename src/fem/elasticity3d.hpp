// 3-D linear elasticity generator (the PETSc ex56 analogue of section
// IV-C).
//
// Displacement formulation -div(sigma) = f on the unit cube, Q1 hexahedral
// elements (ne x ne x ne), clamped on the x = 0 face, unit downward body
// force. The paper generates a sequence of four slowly varying systems by
// moving a small soft spherical inclusion (Young's modulus E/s_i) through
// the cube; `kElasticitySequence` reproduces its parameters. The six
// rigid-body modes feed the AMG near-nullspace.
#pragma once

#include <array>
#include <vector>

#include "la/dense.hpp"
#include "sparse/csr.hpp"

namespace bkr {

struct Inclusion {
  double stiffness_ratio = 1.0;  // s_i: E_inclusion = E / s_i
  double radius = 0.0;
  double x = 0.5, y = 0.5, z = 0.5;
};

struct ElasticityConfig {
  index_t ne = 8;          // elements per direction
  double young = 1.0;      // E outside the inclusion
  double poisson = 0.3;    // nu
  Inclusion inclusion;     // zero radius = homogeneous material
};

struct ElasticityProblem {
  CsrMatrix<double> matrix;           // on free dofs only
  std::vector<double> rhs;            // body force load
  std::vector<double> coords;         // 3 * nfree: coordinates of free dofs
  DenseMatrix<double> rigid_body_modes;  // nfree x 6 near-nullspace
  index_t nfree = 0;
};

ElasticityProblem elasticity3d(const ElasticityConfig& config);

// The paper's four-system sequence: {s_i}, {r_i}, {x_i}, {y_i}, {z_i}.
inline constexpr std::array<Inclusion, 4> kElasticitySequence = {{
    {30.0, 0.5, 0.5, 0.5, 0.5},
    {0.1, 0.45, 0.4, 0.5, 0.45},
    {20.0, 0.4, 0.4, 0.4, 0.4},
    {10.0, 0.35, 0.4, 0.4, 0.35},
}};

}  // namespace bkr
