// Time-harmonic Maxwell generator (section V of the paper).
//
// curl curl E - kappa^2 E = 0 with kappa^2 = k0^2 (eps_r + i sigma~),
// discretized with lowest-order edge elements on a uniform hex grid of the
// unit cube (the documented substitution for the paper's Nedelec
// tetrahedral discretization of the EMTensor imaging chamber). PEC
// (tangential E = 0) boundary conditions remove boundary-tangential edges.
// The resulting matrix is complex symmetric, indefinite for multi-
// wavelength domains, and ill-conditioned — the paper's solver stressors.
//
// Right-hand sides model the chamber's antenna ring: 32 dipole excitations
// on a circle around the vertical axis, each a different RHS (section
// V-A/V-C).
#pragma once

#include <complex>
#include <vector>

#include "sparse/csr.hpp"

namespace bkr {

struct MaxwellConfig {
  index_t n = 16;            // grid cells per direction
  double wavelengths = 2.5;  // wavelengths across the unit cube, in the background medium
  double eps_r = 1.0;        // relative permittivity of the background (matching liquid)
  double loss = 0.15;        // sigma / (omega eps0 eps_r): dissipation of the matching liquid
  // Optional non-dissipative inclusion (the plastic cylinder of section
  // V-C), a vertical cylinder at the centre.
  double inclusion_radius = 0.0;
  double inclusion_eps_r = 3.0;
};

struct MaxwellProblem {
  CsrMatrix<std::complex<double>> matrix;  // free (interior-tangential) edges
  index_t nfree = 0;
  std::vector<double> edge_center;  // 3 * nfree midpoints
  std::vector<int> edge_dir;        // 0/1/2: x/y/z-directed edge
  double h = 0.0;
  MaxwellConfig config;
};

MaxwellProblem maxwell3d(const MaxwellConfig& config);

// Dipole RHS for antenna `a` of `count` on a ring of given radius/height
// (z-directed current source, Gaussian footprint of width ~h).
std::vector<std::complex<double>> antenna_rhs(const MaxwellProblem& problem, index_t a,
                                              index_t count = 32, double ring_radius = 0.35,
                                              double ring_height = 0.5);

// Random complex RHS (the fig. 6 direct-solver workload).
std::vector<std::complex<double>> random_maxwell_rhs(const MaxwellProblem& problem, unsigned seed);

}  // namespace bkr
