// 2-D Poisson problem generator (the PETSc ex32 analogue of section IV-B).
//
// -Delta u = f on the unit square, homogeneous Dirichlet boundary,
// standard five-point stencil on an nx x ny interior grid. The paper's
// experiment solves one matrix against four successive right-hand sides
//   f_i(x, y) = (1/nu_i) exp(-(1-x)^2/nu_i) exp(-(1-y)^2/nu_i)
// with nu = {0.1, 10, 0.001, 100} — the `same_system` recycling scenario.
#pragma once

#include <array>
#include <vector>

#include "sparse/csr.hpp"

namespace bkr {

// Matrix of the five-point stencil, scaled so that diagonal entries are 4
// (the h^2-scaled operator; pair with poisson2d_rhs).
CsrMatrix<double> poisson2d(index_t nx, index_t ny);

// h^2-scaled load vector for the paper's Gaussian source with width nu.
std::vector<double> poisson2d_rhs(index_t nx, index_t ny, double nu);

// Heterogeneous-diffusion variant: -div(kappa grad u) = f with a
// background coefficient 1 and `inclusions` random disks of coefficient
// `contrast` (harmonic-mean edge coefficients, five-point stencil). High
// contrast produces the outlier eigenvalues in the AMG-preconditioned
// spectrum that make deflation/recycling pay off — the regime the paper
// reaches through sheer problem size (283M unknowns on Curie), recreated
// here at single-node scale (see DESIGN.md, substitutions).
CsrMatrix<double> poisson2d_varcoef(index_t nx, index_t ny, double contrast,
                                    index_t inclusions = 12, unsigned seed = 7);

// The four source widths used in the paper.
inline constexpr std::array<double, 4> kPoissonNus = {0.1, 10.0, 0.001, 100.0};

}  // namespace bkr
