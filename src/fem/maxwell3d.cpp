#include "fem/maxwell3d.hpp"

#include <cmath>
#include <numbers>

#include "common/rng.hpp"

namespace bkr {
namespace {

using cd = std::complex<double>;

// Edge numbering on an n^3 grid: x-edges, then y-edges, then z-edges.
struct EdgeGrid {
  index_t n;
  index_t nx_edges, ny_edges, nz_edges;

  explicit EdgeGrid(index_t n_) : n(n_) {
    const index_t np = n + 1;
    nx_edges = n * np * np;
    ny_edges = np * n * np;
    nz_edges = np * np * n;
  }
  [[nodiscard]] index_t total() const { return nx_edges + ny_edges + nz_edges; }
  // x-edge at (i+1/2, j, k): i in [0,n), j,k in [0,n].
  [[nodiscard]] index_t ex(index_t i, index_t j, index_t k) const {
    return i + j * n + k * n * (n + 1);
  }
  [[nodiscard]] index_t ey(index_t i, index_t j, index_t k) const {
    return nx_edges + i + j * (n + 1) + k * (n + 1) * n;
  }
  [[nodiscard]] index_t ez(index_t i, index_t j, index_t k) const {
    return nx_edges + ny_edges + i + j * (n + 1) + k * (n + 1) * (n + 1);
  }
};

}  // namespace

MaxwellProblem maxwell3d(const MaxwellConfig& config) {
  const index_t n = config.n;
  const double h = 1.0 / double(n);
  const EdgeGrid eg(n);

  // Free edges: tangential boundary edges are PEC-constrained.
  std::vector<index_t> free_of(size_t(eg.total()), -1);
  std::vector<double> center;
  std::vector<int> dir;
  index_t nfree = 0;
  auto mark_free = [&](index_t edge, double cx, double cy, double cz, int d) {
    free_of[size_t(edge)] = nfree++;
    center.push_back(cx);
    center.push_back(cy);
    center.push_back(cz);
    dir.push_back(d);
  };
  for (index_t k = 0; k <= n; ++k)
    for (index_t j = 0; j <= n; ++j)
      for (index_t i = 0; i < n; ++i)
        if (j != 0 && j != n && k != 0 && k != n)
          mark_free(eg.ex(i, j, k), (double(i) + 0.5) * h, double(j) * h, double(k) * h, 0);
  for (index_t k = 0; k <= n; ++k)
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i <= n; ++i)
        if (i != 0 && i != n && k != 0 && k != n)
          mark_free(eg.ey(i, j, k), double(i) * h, (double(j) + 0.5) * h, double(k) * h, 1);
  for (index_t k = 0; k < n; ++k)
    for (index_t j = 0; j <= n; ++j)
      for (index_t i = 0; i <= n; ++i)
        if (i != 0 && i != n && j != 0 && j != n)
          mark_free(eg.ez(i, j, k), double(i) * h, double(j) * h, (double(k) + 0.5) * h, 2);

  // Discrete curl: signed face-edge incidence on free edges.
  const index_t np = n + 1;
  const index_t nfaces = 3 * n * n * np;
  CooBuilder<cd> curl(nfaces, nfree);
  curl.reserve(size_t(nfaces) * 4);
  index_t face = 0;
  auto add = [&](index_t f, index_t edge, double sign) {
    const index_t c = free_of[size_t(edge)];
    if (c >= 0) curl.add(f, c, cd(sign));
  };
  // x-faces at (i, j+1/2, k+1/2): +ez(i,j+1,k) - ez(i,j,k) - ey(i,j,k+1) + ey(i,j,k).
  for (index_t k = 0; k < n; ++k)
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i <= n; ++i, ++face) {
        add(face, eg.ez(i, j + 1, k), 1.0);
        add(face, eg.ez(i, j, k), -1.0);
        add(face, eg.ey(i, j, k + 1), -1.0);
        add(face, eg.ey(i, j, k), 1.0);
      }
  // y-faces at (i+1/2, j, k+1/2): +ex(i,j,k+1) - ex(i,j,k) - ez(i+1,j,k) + ez(i,j,k).
  for (index_t k = 0; k < n; ++k)
    for (index_t j = 0; j <= n; ++j)
      for (index_t i = 0; i < n; ++i, ++face) {
        add(face, eg.ex(i, j, k + 1), 1.0);
        add(face, eg.ex(i, j, k), -1.0);
        add(face, eg.ez(i + 1, j, k), -1.0);
        add(face, eg.ez(i, j, k), 1.0);
      }
  // z-faces at (i+1/2, j+1/2, k): +ey(i+1,j,k) - ey(i,j,k) - ex(i,j+1,k) + ex(i,j,k).
  for (index_t k = 0; k <= n; ++k)
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < n; ++i, ++face) {
        add(face, eg.ey(i + 1, j, k), 1.0);
        add(face, eg.ey(i, j, k), -1.0);
        add(face, eg.ex(i, j + 1, k), -1.0);
        add(face, eg.ex(i, j, k), 1.0);
      }

  const CsrMatrix<cd> c = curl.build();
  CsrMatrix<cd> a = multiply(transpose(c), c);

  // Subtract the (lumped) mass term (k0 h)^2 (eps_r + i loss eps_r) per
  // edge, material evaluated at the edge midpoint.
  const double k0 = 2.0 * std::numbers::pi * config.wavelengths / std::sqrt(config.eps_r);
  const double k0h2 = (k0 * h) * (k0 * h);
  std::vector<cd> shift(static_cast<size_t>(nfree));
  for (index_t e = 0; e < nfree; ++e) {
    const double x = center[size_t(3 * e)];
    const double y = center[size_t(3 * e + 1)];
    double eps = config.eps_r;
    double loss = config.loss;
    if (config.inclusion_radius > 0) {
      const double dx = x - 0.5, dy = y - 0.5;
      if (dx * dx + dy * dy < config.inclusion_radius * config.inclusion_radius) {
        eps = config.inclusion_eps_r;  // non-dissipative plastic cylinder
        loss = 0.0;
      }
    }
    shift[size_t(e)] = k0h2 * cd(eps, eps * loss);
  }
  // A is built from C^T C; add -shift to diagonals (diagonal entries are
  // guaranteed present: every free edge belongs to at least one face).
  {
    auto& values = a.values();
    const auto& rowptr = a.rowptr();
    const auto& colind = a.colind();
    for (index_t i = 0; i < nfree; ++i) {
      bool found = false;
      for (index_t l = rowptr[size_t(i)]; l < rowptr[size_t(i) + 1]; ++l)
        if (colind[size_t(l)] == i) {
          values[size_t(l)] -= shift[size_t(i)];
          found = true;
          break;
        }
      (void)found;
      assert(found && "edge without diagonal curl-curl entry");
    }
  }

  MaxwellProblem out;
  out.matrix = std::move(a);
  out.nfree = nfree;
  out.edge_center = std::move(center);
  out.edge_dir = std::move(dir);
  out.h = h;
  out.config = config;
  return out;
}

std::vector<cd> antenna_rhs(const MaxwellProblem& problem, index_t a, index_t count,
                            double ring_radius, double ring_height) {
  const double theta = 2.0 * std::numbers::pi * double(a) / double(count);
  const double ax = 0.5 + ring_radius * std::cos(theta);
  const double ay = 0.5 + ring_radius * std::sin(theta);
  const double az = ring_height;
  const double width = 1.0 * problem.h;
  std::vector<cd> b(size_t(problem.nfree), cd(0));
  for (index_t e = 0; e < problem.nfree; ++e) {
    if (problem.edge_dir[size_t(e)] != 2) continue;  // z-directed dipole
    const double dx = problem.edge_center[size_t(3 * e)] - ax;
    const double dy = problem.edge_center[size_t(3 * e + 1)] - ay;
    const double dz = problem.edge_center[size_t(3 * e + 2)] - az;
    const double r2 = dx * dx + dy * dy + dz * dz;
    if (r2 > 4.0 * width * width) continue;
    // i * J source with Gaussian footprint.
    b[size_t(e)] = cd(0.0, std::exp(-r2 / (width * width)));
  }
  return b;
}

std::vector<cd> random_maxwell_rhs(const MaxwellProblem& problem, unsigned seed) {
  Rng rng(seed);
  std::vector<cd> b(static_cast<size_t>(problem.nfree));
  for (auto& v : b) v = rng.scalar<cd>();
  return b;
}

}  // namespace bkr
