#include "fem/poisson2d.hpp"

#include <cmath>

#include "common/rng.hpp"

#include "sparse/assembler.hpp"

namespace bkr {

CsrMatrix<double> poisson2d(index_t nx, index_t ny) {
  const index_t n = nx * ny;
  auto id = [nx](index_t i, index_t j) { return i + j * nx; };
  std::vector<std::vector<index_t>> pattern(static_cast<size_t>(n));
  for (index_t j = 0; j < ny; ++j)
    for (index_t i = 0; i < nx; ++i) {
      auto& row = pattern[size_t(id(i, j))];
      row.push_back(id(i, j));
      if (i > 0) row.push_back(id(i - 1, j));
      if (i + 1 < nx) row.push_back(id(i + 1, j));
      if (j > 0) row.push_back(id(i, j - 1));
      if (j + 1 < ny) row.push_back(id(i, j + 1));
    }
  PatternAssembler<double> a(n, n, std::move(pattern));
  for (index_t j = 0; j < ny; ++j)
    for (index_t i = 0; i < nx; ++i) {
      const index_t r = id(i, j);
      a.add(r, r, 4.0);
      if (i > 0) a.add(r, id(i - 1, j), -1.0);
      if (i + 1 < nx) a.add(r, id(i + 1, j), -1.0);
      if (j > 0) a.add(r, id(i, j - 1), -1.0);
      if (j + 1 < ny) a.add(r, id(i, j + 1), -1.0);
    }
  return std::move(a).build();
}

std::vector<double> poisson2d_rhs(index_t nx, index_t ny, double nu) {
  const double hx = 1.0 / double(nx + 1);
  const double hy = 1.0 / double(ny + 1);
  std::vector<double> f(static_cast<size_t>(nx * ny));
  for (index_t j = 0; j < ny; ++j)
    for (index_t i = 0; i < nx; ++i) {
      const double x = double(i + 1) * hx;
      const double y = double(j + 1) * hy;
      const double v =
          (1.0 / nu) * std::exp(-(1.0 - x) * (1.0 - x) / nu) * std::exp(-(1.0 - y) * (1.0 - y) / nu);
      f[size_t(i + j * nx)] = hx * hy * v;
    }
  return f;
}

}  // namespace bkr

namespace bkr {
namespace {

// Coefficient field: background 1, `inclusions` random disks of value
// `contrast`.
struct CoefField {
  std::vector<double> cx, cy, r;
  double contrast;
  [[nodiscard]] double at(double x, double y) const {
    for (size_t i = 0; i < cx.size(); ++i) {
      const double dx = x - cx[i], dy = y - cy[i];
      if (dx * dx + dy * dy < r[i] * r[i]) return contrast;
    }
    return 1.0;
  }
};

}  // namespace

CsrMatrix<double> poisson2d_varcoef(index_t nx, index_t ny, double contrast, index_t inclusions,
                                    unsigned seed) {
  CoefField field;
  field.contrast = contrast;
  Rng rng(seed);
  for (index_t i = 0; i < inclusions; ++i) {
    field.cx.push_back(rng.uniform(0.1, 0.9));
    field.cy.push_back(rng.uniform(0.1, 0.9));
    field.r.push_back(rng.uniform(0.03, 0.10));
  }
  const double hx = 1.0 / double(nx + 1);
  const double hy = 1.0 / double(ny + 1);
  const index_t n = nx * ny;
  auto id = [nx](index_t i, index_t j) { return i + j * nx; };
  auto kappa = [&](index_t i, index_t j) {
    return field.at(double(i + 1) * hx, double(j + 1) * hy);
  };
  // Harmonic mean on the edge between two cells.
  auto edge = [](double a, double b) { return 2.0 * a * b / (a + b); };
  std::vector<std::vector<index_t>> pattern(static_cast<size_t>(n));
  for (index_t j = 0; j < ny; ++j)
    for (index_t i = 0; i < nx; ++i) {
      auto& row = pattern[size_t(id(i, j))];
      row.push_back(id(i, j));
      if (i > 0) row.push_back(id(i - 1, j));
      if (i + 1 < nx) row.push_back(id(i + 1, j));
      if (j > 0) row.push_back(id(i, j - 1));
      if (j + 1 < ny) row.push_back(id(i, j + 1));
    }
  PatternAssembler<double> a(n, n, std::move(pattern));
  for (index_t j = 0; j < ny; ++j)
    for (index_t i = 0; i < nx; ++i) {
      const index_t r = id(i, j);
      const double kc = kappa(i, j);
      const double kw = (i > 0) ? edge(kc, kappa(i - 1, j)) : kc;
      const double ke = (i + 1 < nx) ? edge(kc, kappa(i + 1, j)) : kc;
      const double ks = (j > 0) ? edge(kc, kappa(i, j - 1)) : kc;
      const double kn = (j + 1 < ny) ? edge(kc, kappa(i, j + 1)) : kc;
      a.add(r, r, kw + ke + ks + kn);
      if (i > 0) a.add(r, id(i - 1, j), -kw);
      if (i + 1 < nx) a.add(r, id(i + 1, j), -ke);
      if (j > 0) a.add(r, id(i, j - 1), -ks);
      if (j + 1 < ny) a.add(r, id(i, j + 1), -kn);
    }
  return std::move(a).build();
}

}  // namespace bkr
