#include "fem/elasticity3d.hpp"

#include <array>
#include <cmath>

#include "sparse/assembler.hpp"

namespace bkr {
namespace {

// Trilinear shape function derivatives on the reference cube [-1,1]^3 at
// point (xi, eta, zeta); corners in lexicographic (x fastest) order.
struct ShapeGrads {
  std::array<std::array<double, 3>, 8> d;  // d[node][direction]
};

ShapeGrads q1_gradients(double xi, double eta, double zeta) {
  ShapeGrads g{};
  const std::array<double, 2> sx = {-1.0, 1.0};
  for (int c = 0; c < 8; ++c) {
    const double cx = sx[size_t(c & 1)];
    const double cy = sx[size_t((c >> 1) & 1)];
    const double cz = sx[size_t((c >> 2) & 1)];
    g.d[size_t(c)][0] = 0.125 * cx * (1 + cy * eta) * (1 + cz * zeta);
    g.d[size_t(c)][1] = 0.125 * cy * (1 + cx * xi) * (1 + cz * zeta);
    g.d[size_t(c)][2] = 0.125 * cz * (1 + cx * xi) * (1 + cy * eta);
  }
  return g;
}

// 24x24 Q1 element stiffness for isotropic material (lambda, mu) on a cube
// of side h, via 2x2x2 Gauss quadrature.
DenseMatrix<double> element_stiffness(double h, double lambda, double mu) {
  DenseMatrix<double> ke(24, 24);
  const double gp = 1.0 / std::sqrt(3.0);
  const double jac = h / 2.0;            // isotropic affine map
  const double detj = jac * jac * jac;   // per Gauss point, weight 1
  for (int gx = 0; gx < 2; ++gx)
    for (int gy = 0; gy < 2; ++gy)
      for (int gz = 0; gz < 2; ++gz) {
        const ShapeGrads g =
            q1_gradients(gp * (gx ? 1 : -1), gp * (gy ? 1 : -1), gp * (gz ? 1 : -1));
        // Physical gradients: dN/dx = dN/dxi / jac.
        std::array<std::array<double, 3>, 8> dn;
        for (int c = 0; c < 8; ++c)
          for (int d = 0; d < 3; ++d) dn[size_t(c)][size_t(d)] = g.d[size_t(c)][size_t(d)] / jac;
        // K += B^T C B detJ with engineering strain ordering
        // (xx, yy, zz, xy, yz, zx). Assembled per node pair directly.
        for (int a = 0; a < 8; ++a)
          for (int b = 0; b < 8; ++b) {
            const auto& da = dn[size_t(a)];
            const auto& db = dn[size_t(b)];
            for (int ia = 0; ia < 3; ++ia)
              for (int ib = 0; ib < 3; ++ib) {
                double v = lambda * da[size_t(ia)] * db[size_t(ib)];
                if (ia == ib) {
                  double graddot = 0;
                  for (int d = 0; d < 3; ++d) graddot += da[size_t(d)] * db[size_t(d)];
                  v += mu * graddot;
                }
                v += mu * da[size_t(ib)] * db[size_t(ia)];
                ke(3 * a + ia, 3 * b + ib) += v * detj;
              }
          }
      }
  return ke;
}

}  // namespace

ElasticityProblem elasticity3d(const ElasticityConfig& config) {
  const index_t ne = config.ne;
  const index_t nn = ne + 1;  // nodes per direction
  const double h = 1.0 / double(ne);
  auto node_id = [nn](index_t i, index_t j, index_t k) { return i + j * nn + k * nn * nn; };
  const index_t nnodes = nn * nn * nn;

  // Dirichlet: clamp all dofs of nodes on the x = 0 face.
  std::vector<index_t> free_of(size_t(3 * nnodes), -1);
  index_t nfree = 0;
  for (index_t k = 0; k < nn; ++k)
    for (index_t j = 0; j < nn; ++j)
      for (index_t i = 0; i < nn; ++i) {
        if (i == 0) continue;
        const index_t node = node_id(i, j, k);
        for (int d = 0; d < 3; ++d) free_of[size_t(3 * node + d)] = nfree++;
      }

  // Sparsity pattern: dofs of the 27-node neighbourhood.
  std::vector<std::vector<index_t>> pattern(static_cast<size_t>(nfree));
  for (index_t k = 0; k < nn; ++k)
    for (index_t j = 0; j < nn; ++j)
      for (index_t i = 1; i < nn; ++i) {
        const index_t node = node_id(i, j, k);
        for (index_t dk = -1; dk <= 1; ++dk)
          for (index_t dj = -1; dj <= 1; ++dj)
            for (index_t di = -1; di <= 1; ++di) {
              const index_t ni = i + di, nj = j + dj, nk = k + dk;
              if (ni < 0 || ni >= nn || nj < 0 || nj >= nn || nk < 0 || nk >= nn) continue;
              const index_t other = node_id(ni, nj, nk);
              for (int da = 0; da < 3; ++da) {
                const index_t ra = free_of[size_t(3 * node + da)];
                if (ra < 0) continue;
                for (int db = 0; db < 3; ++db) {
                  const index_t cb = free_of[size_t(3 * other + db)];
                  if (cb >= 0) pattern[size_t(ra)].push_back(cb);
                }
              }
            }
      }
  PatternAssembler<double> assembler(nfree, nfree, std::move(pattern));

  // Two element stiffness templates: background and inclusion material.
  const double nu = config.poisson;
  auto lame = [nu](double young) {
    const double lambda = young * nu / ((1 + nu) * (1 - 2 * nu));
    const double mu = young / (2 * (1 + nu));
    return std::pair<double, double>(lambda, mu);
  };
  const auto [l0, m0] = lame(config.young);
  const DenseMatrix<double> ke0 = element_stiffness(h, l0, m0);
  DenseMatrix<double> ke1;
  const bool has_inclusion = config.inclusion.radius > 0 && config.inclusion.stiffness_ratio != 1.0;
  if (has_inclusion) {
    const auto [l1, m1] = lame(config.young / config.inclusion.stiffness_ratio);
    ke1 = element_stiffness(h, l1, m1);
  }

  std::vector<double> rhs(size_t(nfree), 0.0);
  const double load = -1.0 * h * h * h / 8.0;  // downward body force, lumped

  for (index_t k = 0; k < ne; ++k)
    for (index_t j = 0; j < ne; ++j)
      for (index_t i = 0; i < ne; ++i) {
        // Element centre decides the material (the inclusion of eq. in
        // section IV-C).
        const double cx = (double(i) + 0.5) * h;
        const double cy = (double(j) + 0.5) * h;
        const double cz = (double(k) + 0.5) * h;
        bool inside = false;
        if (has_inclusion) {
          const double dx = cx - config.inclusion.x;
          const double dy = cy - config.inclusion.y;
          const double dz = cz - config.inclusion.z;
          inside = dx * dx + dy * dy + dz * dz < config.inclusion.radius * config.inclusion.radius;
        }
        const DenseMatrix<double>& ke = inside ? ke1 : ke0;
        std::array<index_t, 8> nodes;
        for (int c = 0; c < 8; ++c)
          nodes[size_t(c)] = node_id(i + (c & 1), j + ((c >> 1) & 1), k + ((c >> 2) & 1));
        for (int a = 0; a < 8; ++a) {
          for (int da = 0; da < 3; ++da) {
            const index_t ra = free_of[size_t(3 * nodes[size_t(a)] + da)];
            if (ra < 0) continue;
            if (da == 2) rhs[size_t(ra)] += load;
            for (int b = 0; b < 8; ++b)
              for (int db = 0; db < 3; ++db) {
                const index_t cb = free_of[size_t(3 * nodes[size_t(b)] + db)];
                if (cb >= 0) assembler.add(ra, cb, ke(3 * a + da, 3 * b + db));
              }
          }
        }
      }

  ElasticityProblem out;
  out.matrix = std::move(assembler).build();
  out.rhs = std::move(rhs);
  out.nfree = nfree;

  // Coordinates and rigid-body modes of the free dofs.
  out.coords.resize(size_t(3 * nfree));
  out.rigid_body_modes.resize(nfree, 6);
  for (index_t k = 0; k < nn; ++k)
    for (index_t j = 0; j < nn; ++j)
      for (index_t i = 1; i < nn; ++i) {
        const index_t node = node_id(i, j, k);
        const double x = double(i) * h, y = double(j) * h, z = double(k) * h;
        for (int d = 0; d < 3; ++d) {
          const index_t r = free_of[size_t(3 * node + d)];
          out.coords[size_t(3 * r)] = x;
          out.coords[size_t(3 * r + 1)] = y;
          out.coords[size_t(3 * r + 2)] = z;
          // Translations.
          out.rigid_body_modes(r, d) = 1.0;
          // Rotations about x, y, z.
          const double rx[3] = {0.0, -z, y};
          const double ry[3] = {z, 0.0, -x};
          const double rz[3] = {-y, x, 0.0};
          out.rigid_body_modes(r, 3) = rx[d];
          out.rigid_body_modes(r, 4) = ry[d];
          out.rigid_body_modes(r, 5) = rz[d];
        }
      }
  return out;
}

}  // namespace bkr
