// KernelExecutor: the facade the hot kernels use to fan work out over the
// ThreadPool.
//
// The interface (Kernel kinds, KernelCutoffs, the KernelExecutor type and
// its lane-independent engage() predicate) lives in common/exec.hpp at the
// bottom of the module DAG so la/sparse kernel headers can consume it
// without an upward include; this header binds the implementation side —
// the pool, the stats sink, and the scoped timer — for the layers that may
// depend on src/parallel.
//
// The determinism contract (DESIGN.md "Parallel kernel layer") is the
// load-bearing property: a kernel handed an executor must produce a result
// that depends only on the problem, never on lanes(). Partition-type
// kernels (SpMV/SpMM row ranges, gemm output panels, trsm row blocks)
// achieve this with disjoint outputs and an unchanged per-output operation
// order, so they are bitwise identical to the serial reference.
// Reduction-type kernels (dot, norms, Gram) use a fixed-order chunked
// summation whose chunk layout depends on the length only; partials are
// combined in chunk-index order on the calling thread. Their result is
// bitwise identical at every thread count (including a 1-lane executor),
// though it differs from the legacy straight-summation order in rounding.
//
// Algorithm selection is likewise lane-independent: a kernel switches from
// the legacy serial path to the executor path purely on (executor present,
// work >= cutoff). Whether the chunks then run inline or on the pool is a
// scheduling detail with no numerical effect.
#pragma once

#include <chrono>

#include "common/exec.hpp"
#include "obs/kernel_stats.hpp"
#include "parallel/thread_pool.hpp"

namespace bkr {

// Scoped stats recorder used inside kernels; a no-op (one relaxed atomic
// load) unless collection was enabled on the executor's stats.
class ScopedKernelTimer {
 public:
  ScopedKernelTimer(const KernelExecutor* ex, obs::Kernel kind, bool parallel)
      : kind_(kind), parallel_(parallel) {
    if (ex != nullptr && ex->stats().enabled()) {
      stats_ = &ex->stats();
      start_ = std::chrono::steady_clock::now();
    }
  }
  ScopedKernelTimer(const ScopedKernelTimer&) = delete;
  ScopedKernelTimer& operator=(const ScopedKernelTimer&) = delete;
  ~ScopedKernelTimer() {
    if (stats_ != nullptr)
      stats_->record(
          kind_, parallel_,
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count());
  }

 private:
  obs::KernelStats* stats_ = nullptr;
  obs::Kernel kind_;
  bool parallel_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bkr
