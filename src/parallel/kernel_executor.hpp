// KernelExecutor: the facade the hot kernels use to fan work out over the
// ThreadPool.
//
// The determinism contract (DESIGN.md "Parallel kernel layer") is the
// load-bearing property: a kernel handed an executor must produce a result
// that depends only on the problem, never on lanes(). Partition-type
// kernels (SpMV/SpMM row ranges, gemm output panels, trsm row blocks)
// achieve this with disjoint outputs and an unchanged per-output operation
// order, so they are bitwise identical to the serial reference.
// Reduction-type kernels (dot, norms, Gram) use a fixed-order chunked
// summation whose chunk layout depends on the length only; partials are
// combined in chunk-index order on the calling thread. Their result is
// bitwise identical at every thread count (including a 1-lane executor),
// though it differs from the legacy straight-summation order in rounding.
//
// Algorithm selection is likewise lane-independent: a kernel switches from
// the legacy serial path to the executor path purely on (executor present,
// work >= cutoff). Whether the chunks then run inline or on the pool is a
// scheduling detail with no numerical effect.
#pragma once

#include <chrono>
#include <functional>
#include <memory>

#include "common/types.hpp"
#include "obs/kernel_stats.hpp"
#include "parallel/thread_pool.hpp"

namespace bkr {

// Work floors below which kernels stay on the legacy serial path. The
// floors are deliberately coarse: fanning out a 100-element dot costs more
// in wake-up latency than the arithmetic saves.
struct KernelCutoffs {
  index_t spmv_nnz = 8192;      // nonzeros before a sparse apply fans out
  index_t gemm_work = 16384;    // output-elements x inner-length for dense kernels
  index_t reduce_elems = 8192;  // scalar elements before chunked reductions kick in
};

class KernelExecutor {
 public:
  // Wrap an existing pool (not owned; must outlive the executor). A null
  // pool behaves like a 1-lane executor: the executor code paths (and
  // their deterministic reduction orders) are taken, executed inline.
  explicit KernelExecutor(ThreadPool* pool, KernelCutoffs cutoffs = {})
      : pool_(pool), cutoffs_(cutoffs) {}

  // Own a private pool of `threads` lanes (0 picks hardware concurrency).
  explicit KernelExecutor(index_t threads, KernelCutoffs cutoffs = {})
      : owned_(std::make_unique<ThreadPool>(threads)), pool_(owned_.get()), cutoffs_(cutoffs) {}

  KernelExecutor(const KernelExecutor&) = delete;
  KernelExecutor& operator=(const KernelExecutor&) = delete;

  [[nodiscard]] index_t lanes() const { return pool_ != nullptr ? pool_->size() : 1; }
  [[nodiscard]] const KernelCutoffs& cutoffs() const { return cutoffs_; }

  // True when a kernel with `work` units should leave the legacy serial
  // path. Depends on the work size only — NOT on lanes() — so the same
  // algorithm (and the same floating-point result) is selected at every
  // thread count.
  [[nodiscard]] bool engage(obs::Kernel kind, index_t work) const {
    switch (kind) {
      case obs::Kernel::Spmv:
      case obs::Kernel::Spmm:
        return work >= cutoffs_.spmv_nnz;
      case obs::Kernel::Gemm:
      case obs::Kernel::Herk:
      case obs::Kernel::Trsm:
        return work >= cutoffs_.gemm_work;
      case obs::Kernel::Dot:
      case obs::Kernel::Norms:
        return work >= cutoffs_.reduce_elems;
    }
    return false;
  }

  // Run fn(i) for i in [0, ntasks): on the pool when more than one lane is
  // available, inline otherwise. Tasks must write disjoint state; the
  // caller owns any ordered combine step.
  void run(obs::Kernel kind, index_t ntasks, const std::function<void(index_t)>& fn) const;

  // Mutable so kernels taking `const KernelExecutor*` can account.
  [[nodiscard]] obs::KernelStats& stats() const { return stats_; }

  // Process-wide executor over ThreadPool::global() (BKR_THREADS-sized).
  static KernelExecutor& global();

 private:
  std::unique_ptr<ThreadPool> owned_;
  ThreadPool* pool_ = nullptr;
  KernelCutoffs cutoffs_;
  mutable obs::KernelStats stats_;
};

// Scoped stats recorder used inside kernels; a no-op (one relaxed atomic
// load) unless collection was enabled on the executor's stats.
class ScopedKernelTimer {
 public:
  ScopedKernelTimer(const KernelExecutor* ex, obs::Kernel kind, bool parallel)
      : kind_(kind), parallel_(parallel) {
    if (ex != nullptr && ex->stats().enabled()) {
      stats_ = &ex->stats();
      start_ = std::chrono::steady_clock::now();
    }
  }
  ScopedKernelTimer(const ScopedKernelTimer&) = delete;
  ScopedKernelTimer& operator=(const ScopedKernelTimer&) = delete;
  ~ScopedKernelTimer() {
    if (stats_ != nullptr)
      stats_->record(
          kind_, parallel_,
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count());
  }

 private:
  obs::KernelStats* stats_ = nullptr;
  obs::Kernel kind_;
  bool parallel_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bkr
