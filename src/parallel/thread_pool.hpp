// A small work-sharing thread pool.
//
// The paper runs on 8,192 MPI cores; this library reproduces the
// algorithms on a single node, using the pool to execute independent
// subdomain work (Schwarz local solves, direct-solver RHS panels) in
// parallel when hardware threads are available. The pool degrades to
// serial execution on a single-core host.
//
// Concurrency contract:
//  * parallel_for may be called from several threads at once; calls are
//    serialized on a submission mutex, each runs to completion.
//  * parallel_for called from inside a parallel_for body (nested
//    parallelism) runs the inner loop serially on the calling thread.
//  * The first exception thrown by an iteration is captured and rethrown
//    on the submitting thread once the loop has drained.
#pragma once

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/contracts.hpp"
#include "common/types.hpp"

namespace bkr {

class ThreadPool {
 public:
  // `threads` == 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(index_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total lanes (workers plus the calling thread). Lock-free so it can be
  // queried from inside a parallel_for body.
  [[nodiscard]] index_t size() const { return thread_count_.load(std::memory_order_acquire); }

  // Run fn(i) for i in [0, n), statically chunked over the pool plus the
  // calling thread. Blocks until all iterations are done. If any
  // iteration throws, remaining iterations of that chunk are skipped and
  // the first exception is rethrown here after the loop drains.
  // BKR_COLD: the submission mutex and wakeup are the documented launch
  // barrier of the pool, not per-element work — hot-path rules stop here.
  BKR_COLD void parallel_for(index_t n, const std::function<void(index_t)>& fn);

  // Replace the worker set with `threads` - 1 fresh workers (0 picks
  // hardware concurrency). Blocks until in-flight loops finish; safe to
  // call concurrently with parallel_for from other threads.
  void resize(index_t threads);

  // Process-wide pool sized from the BKR_THREADS environment variable
  // (default: hardware concurrency).
  static ThreadPool& global();

 private:
  struct Task {
    const std::function<void(index_t)>* fn = nullptr;
    index_t begin = 0, end = 0;
  };
  void worker_loop(size_t id, unsigned long start_generation);
  void spawn_workers(size_t count) BKR_REQUIRES_LOCK(submit_mutex_);
  void join_workers() BKR_REQUIRES_LOCK(submit_mutex_);
  void record_error();

  // Serializes submitting threads (parallel_for) and structural changes
  // (resize, destruction) against each other.
  std::mutex submit_mutex_ BKR_ACQUIRED_BEFORE(mutex_);
  std::vector<std::thread> workers_ BKR_GUARDED_BY(submit_mutex_);
  std::vector<Task> tasks_ BKR_GUARDED_BY(mutex_);  // one slot per worker
  std::atomic<index_t> thread_count_ BKR_LOCK_FREE{1};
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  index_t pending_ BKR_GUARDED_BY(mutex_) = 0;
  unsigned long generation_ BKR_GUARDED_BY(mutex_) = 0;
  bool stop_ BKR_GUARDED_BY(mutex_) = false;
  std::exception_ptr first_error_ BKR_GUARDED_BY(mutex_);
};

// Convenience wrapper over the global pool.
BKR_COLD void parallel_for(index_t n, const std::function<void(index_t)>& fn);

}  // namespace bkr
