// A small work-sharing thread pool.
//
// The paper runs on 8,192 MPI cores; this library reproduces the
// algorithms on a single node, using the pool to execute independent
// subdomain work (Schwarz local solves, direct-solver RHS panels) in
// parallel when hardware threads are available. The pool degrades to
// serial execution on a single-core host.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace bkr {

class ThreadPool {
 public:
  // `threads` == 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(index_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] index_t size() const { return index_t(workers_.size()) + 1; }

  // Run fn(i) for i in [0, n), statically chunked over the pool plus the
  // calling thread. Blocks until all iterations are done. Exceptions in
  // workers terminate (HPC convention: a failed local solve is fatal).
  void parallel_for(index_t n, const std::function<void(index_t)>& fn);

  // Process-wide pool sized from the BKR_THREADS environment variable
  // (default: hardware concurrency).
  static ThreadPool& global();

 private:
  struct Task {
    const std::function<void(index_t)>* fn = nullptr;
    index_t begin = 0, end = 0;
  };
  void worker_loop(size_t id);

  std::vector<std::thread> workers_;
  std::vector<Task> tasks_;        // one slot per worker
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  index_t pending_ = 0;
  unsigned long generation_ = 0;
  bool stop_ = false;
};

// Convenience wrapper over the global pool.
void parallel_for(index_t n, const std::function<void(index_t)>& fn);

}  // namespace bkr
