#include "parallel/comm_model.hpp"

#include <cmath>

namespace bkr {

double CommModel::modeled_seconds(index_t procs, double latency, double sec_per_byte) const {
  if (procs <= 1) return 0.0;  // a lone process exchanges nothing, halo included
  const double hops = std::ceil(std::log2(double(procs)));
  const double reduction_time =
      double(reductions()) * hops * latency + double(reduction_bytes()) * sec_per_byte * hops;
  const double halo_time =
      double(halo_exchanges()) * latency + double(halo_bytes()) * sec_per_byte;
  return reduction_time + halo_time;
}

}  // namespace bkr
