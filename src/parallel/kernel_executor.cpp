#include "parallel/kernel_executor.hpp"

namespace bkr {

void KernelExecutor::run(obs::Kernel kind, index_t ntasks,
                         const std::function<void(index_t)>& fn) const {
  if (ntasks <= 0) return;
  const bool fan_out = pool_ != nullptr && pool_->size() > 1 && ntasks > 1;
  ScopedKernelTimer timer(this, kind, fan_out);
  if (fan_out) {
    pool_->parallel_for(ntasks, fn);
  } else {
    // Inline execution: identical task bodies in identical order, so the
    // result matches the pooled schedule bitwise (tasks are disjoint).
    for (index_t i = 0; i < ntasks; ++i) fn(i);
  }
}

KernelExecutor& KernelExecutor::global() {
  static KernelExecutor ex(&ThreadPool::global());
  return ex;
}

}  // namespace bkr
