// Implementation side of the kernel-execution interface declared in
// common/exec.hpp: everything that needs the complete ThreadPool or
// KernelStats types is defined here, so the low-layer kernel headers can
// compile against the interface alone.
#include "parallel/kernel_executor.hpp"

namespace bkr {

KernelExecutor::KernelExecutor(ThreadPool* pool, KernelCutoffs cutoffs)
    : pool_(pool), cutoffs_(cutoffs), stats_(std::make_unique<obs::KernelStats>()) {}

KernelExecutor::KernelExecutor(index_t threads, KernelCutoffs cutoffs)
    : owned_(std::make_unique<ThreadPool>(threads)),
      pool_(owned_.get()),
      cutoffs_(cutoffs),
      stats_(std::make_unique<obs::KernelStats>()) {}

KernelExecutor::~KernelExecutor() = default;

index_t KernelExecutor::lanes() const { return pool_ != nullptr ? pool_->size() : 1; }

void KernelExecutor::run(Kernel kind, index_t ntasks,
                         const std::function<void(index_t)>& fn) const {
  if (ntasks <= 0) return;
  const bool fan_out = pool_ != nullptr && pool_->size() > 1 && ntasks > 1;
  ScopedKernelTimer timer(this, kind, fan_out);
  if (fan_out) {
    pool_->parallel_for(ntasks, fn);
  } else {
    // Inline execution: identical task bodies in identical order, so the
    // result matches the pooled schedule bitwise (tasks are disjoint).
    for (index_t i = 0; i < ntasks; ++i) fn(i);
  }
}

KernelExecutor& KernelExecutor::global() {
  static KernelExecutor ex(&ThreadPool::global());
  return ex;
}

}  // namespace bkr
