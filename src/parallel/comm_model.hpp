// Communication accounting for the SPMD simulation.
//
// The paper's section III-D analyses GCRO-DR purely in terms of the number
// of global reductions per cycle (the scalability-limiting operations on a
// large machine). Every solver in this library reports its global
// synchronizations through a CommModel so that benches can both verify the
// paper's reduction counts (2(m-k) per GCRO-DR cycle vs m for GMRES,
// single-reduction CholQR, zero-reduction strategy B) and convert them
// into a modeled communication time for a hypothetical P-process run.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/types.hpp"

namespace bkr {

class CommModel {
 public:
  // One global all-reduce of `bytes` payload (fused reductions count once —
  // the whole point of pseudo-block methods).
  void reduction(std::int64_t bytes = 8) {
    reductions_.fetch_add(1, std::memory_order_relaxed);
    reduction_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  // Neighbour (halo) exchange round: one per sparse matrix–(multi)vector
  // product in a distributed run.
  void halo_exchange(std::int64_t bytes = 0) {
    halo_exchanges_.fetch_add(1, std::memory_order_relaxed);
    halo_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }

  [[nodiscard]] std::int64_t reductions() const { return reductions_.load(); }
  [[nodiscard]] std::int64_t reduction_bytes() const { return reduction_bytes_.load(); }
  [[nodiscard]] std::int64_t halo_exchanges() const { return halo_exchanges_.load(); }
  [[nodiscard]] std::int64_t halo_bytes() const { return halo_bytes_.load(); }

  void reset() {
    reductions_ = 0;
    reduction_bytes_ = 0;
    halo_exchanges_ = 0;
    halo_bytes_ = 0;
  }

  // Modeled communication time (seconds) of the recorded traffic on a
  // P-process machine with the given per-hop latency and inverse
  // bandwidth: reductions cost ceil(log2 P) hops, halo exchanges one hop.
  [[nodiscard]] double modeled_seconds(index_t procs, double latency = 2.0e-6,
                                       double sec_per_byte = 1.0 / 4.0e9) const;

 private:
  std::atomic<std::int64_t> reductions_{0};
  std::atomic<std::int64_t> reduction_bytes_{0};
  std::atomic<std::int64_t> halo_exchanges_{0};
  std::atomic<std::int64_t> halo_bytes_{0};
};

}  // namespace bkr
