// Communication accounting for the SPMD simulation.
//
// The paper's section III-D analyses GCRO-DR purely in terms of the number
// of global reductions per cycle (the scalability-limiting operations on a
// large machine). Every solver in this library reports its global
// synchronizations through a CommModel so that benches can both verify the
// paper's reduction counts (2(m-k) per GCRO-DR cycle vs m for GMRES,
// single-reduction CholQR, zero-reduction strategy B) and convert them
// into a modeled communication time for a hypothetical P-process run.
//
// With a shard count attached (set_shards, the sharded SPMD layer of
// DESIGN.md §13) the model stops being purely hypothetical: every
// reduction() additionally records the point-to-point messages and tree
// rounds the executed binary-tree reduction performs across S shards
// (S - 1 messages over ceil(log2 S) rounds), and halo_exchange() carries
// the real per-apply message count of the sharded operator. An optional
// TraceSink mirror receives one CommEvent per sharded round so traces can
// audit the executed message structure.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/types.hpp"
#include "obs/trace.hpp"

namespace bkr {

class CommModel {
 public:
  // One global all-reduce of `bytes` payload (fused reductions count once —
  // the whole point of pseudo-block methods).
  void reduction(std::int64_t bytes = 8) {
    reductions_.fetch_add(1, std::memory_order_relaxed);
    reduction_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    const index_t s = shards_.load(std::memory_order_relaxed);
    if (s > 1) {
      // The executed tree: every non-root shard sends its partial exactly
      // once, merges proceed level by level.
      const std::int64_t msgs = s - 1;
      const std::int64_t rounds = ceil_log2(s);
      messages_.fetch_add(msgs, std::memory_order_relaxed);
      tree_rounds_.fetch_add(rounds, std::memory_order_relaxed);
      obs::TraceSink* const t = trace_.load(std::memory_order_relaxed);
      if (t != nullptr) t->comm(obs::CommEvent{"reduction-tree", s, msgs, rounds, bytes});
    }
  }
  // Neighbour (halo) exchange round: one per sparse matrix–(multi)vector
  // product in a distributed run. `messages` is the number of
  // point-to-point sends the round performs (1 in the modeled-only path;
  // the sharded operator passes its real shard-neighbor pair count).
  void halo_exchange(std::int64_t bytes = 0, std::int64_t messages = 1) {
    halo_exchanges_.fetch_add(1, std::memory_order_relaxed);
    halo_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    const index_t s = shards_.load(std::memory_order_relaxed);
    if (s > 1) {
      messages_.fetch_add(messages, std::memory_order_relaxed);
      obs::TraceSink* const t = trace_.load(std::memory_order_relaxed);
      if (t != nullptr) t->comm(obs::CommEvent{"halo", s, messages, 1, bytes});
    }
  }

  [[nodiscard]] std::int64_t reductions() const { return reductions_.load(); }
  [[nodiscard]] std::int64_t reduction_bytes() const { return reduction_bytes_.load(); }
  [[nodiscard]] std::int64_t halo_exchanges() const { return halo_exchanges_.load(); }
  [[nodiscard]] std::int64_t halo_bytes() const { return halo_bytes_.load(); }
  // Executed point-to-point messages (reduction-tree merges + halo sends)
  // and tree levels traversed; both stay 0 until a shard count > 1 is
  // attached, so the legacy modeled-only accounting is unchanged.
  [[nodiscard]] std::int64_t messages() const { return messages_.load(); }
  [[nodiscard]] std::int64_t tree_rounds() const { return tree_rounds_.load(); }

  // Attach the shard count of the sharded SPMD layer (0 or 1 = monolithic:
  // no messages, no tree rounds, no comm events).
  void set_shards(index_t s) { shards_.store(s < 0 ? 0 : s, std::memory_order_relaxed); }
  [[nodiscard]] index_t shards() const { return shards_.load(std::memory_order_relaxed); }

  // Optional trace mirror (not owned): one CommEvent per sharded halo /
  // reduction round. Null (the default) keeps the counters silent.
  void set_trace(obs::TraceSink* t) { trace_.store(t, std::memory_order_relaxed); }

  void reset() {
    reductions_ = 0;
    reduction_bytes_ = 0;
    halo_exchanges_ = 0;
    halo_bytes_ = 0;
    messages_ = 0;
    tree_rounds_ = 0;
  }

  // Modeled communication time (seconds) of the recorded traffic on a
  // P-process machine with the given per-hop latency and inverse
  // bandwidth: reductions cost ceil(log2 P) hops, halo exchanges one hop.
  // A single process communicates with nobody — reductions AND halo
  // exchanges are free at P <= 1 (the historical model charged halo
  // latency+bytes even at P = 1).
  [[nodiscard]] double modeled_seconds(index_t procs, double latency = 2.0e-6,
                                       double sec_per_byte = 1.0 / 4.0e9) const;

  [[nodiscard]] static std::int64_t ceil_log2(index_t s) {
    std::int64_t r = 0;
    for (index_t span = 1; span < s; span *= 2) ++r;
    return r;
  }

 private:
  std::atomic<std::int64_t> reductions_{0};
  std::atomic<std::int64_t> reduction_bytes_{0};
  std::atomic<std::int64_t> halo_exchanges_{0};
  std::atomic<std::int64_t> halo_bytes_{0};
  std::atomic<std::int64_t> messages_{0};
  std::atomic<std::int64_t> tree_rounds_{0};
  std::atomic<index_t> shards_{0};
  std::atomic<obs::TraceSink*> trace_{nullptr};
};

}  // namespace bkr
