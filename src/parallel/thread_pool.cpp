#include "parallel/thread_pool.hpp"

#include <cstdlib>

namespace bkr {

namespace {

// Depth of parallel_for frames on the current thread. Nonzero means we
// are inside a loop body (submitting thread or worker); nested loops then
// run serially inline instead of deadlocking on the submission mutex.
thread_local int pool_nesting = 0;

struct NestingGuard {
  NestingGuard() { ++pool_nesting; }
  ~NestingGuard() { --pool_nesting; }
  NestingGuard(const NestingGuard&) = delete;
  NestingGuard& operator=(const NestingGuard&) = delete;
};

index_t resolve_thread_count(index_t threads) {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return index_t(hw > 0 ? hw : 1);
}

}  // namespace

ThreadPool::ThreadPool(index_t threads) {
  std::lock_guard<std::mutex> submit(submit_mutex_);
  spawn_workers(size_t(resolve_thread_count(threads)) - 1);
}

ThreadPool::~ThreadPool() {
  std::lock_guard<std::mutex> submit(submit_mutex_);
  join_workers();
}

void ThreadPool::spawn_workers(size_t count) {
  // Workers must start with `seen` at the current generation so a worker
  // spawned after earlier loops ran does not replay a stale task slot.
  // No worker threads exist here (fresh pool, or join_workers just ran),
  // but tasks_ and generation_ are mutex_ state, so touch them under the
  // lock anyway — the new workers read both as soon as they start.
  unsigned long start_gen = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.assign(count, Task{});
    start_gen = generation_;
  }
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i)
    workers_.emplace_back([this, i, start_gen] { worker_loop(i, start_gen); });
  thread_count_.store(index_t(count) + 1, std::memory_order_release);
}

void ThreadPool::join_workers() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = false;
  }
  thread_count_.store(1, std::memory_order_release);
}

void ThreadPool::resize(index_t threads) {
  std::lock_guard<std::mutex> submit(submit_mutex_);
  join_workers();
  spawn_workers(size_t(resolve_thread_count(threads)) - 1);
}

void ThreadPool::record_error() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!first_error_) first_error_ = std::current_exception();
}

void ThreadPool::parallel_for(index_t n, const std::function<void(index_t)>& fn) {
  if (n <= 0) return;
  if (pool_nesting > 0 || n == 1) {
    // Nested (or trivially small) loop: run inline on this thread. Any
    // exception propagates directly to the enclosing frame.
    NestingGuard guard;
    for (index_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::lock_guard<std::mutex> submit(submit_mutex_);
  const index_t nthreads = index_t(workers_.size()) + 1;
  if (nthreads == 1) {
    NestingGuard guard;
    for (index_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const index_t chunk = (n + nthreads - 1) / nthreads;
  index_t launched = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    first_error_ = nullptr;
    for (size_t w = 0; w < workers_.size(); ++w) {
      const index_t begin = chunk * index_t(w + 1);
      const index_t end = std::min(n, begin + chunk);
      if (begin >= end) {
        tasks_[w].fn = nullptr;
        continue;
      }
      tasks_[w] = Task{&fn, begin, end};
      ++launched;
    }
    if (launched > 0) {
      pending_ = launched;
      ++generation_;
    }
  }
  if (launched == 0) {
    // Every worker range came out empty (n <= chunk): the calling thread's
    // chunk covers [0, n) by itself. Skip the generation bump and the
    // notify so no worker wakes for an empty round-trip, and let any
    // exception propagate directly like the other inline paths.
    NestingGuard guard;
    for (index_t i = 0; i < n; ++i) fn(i);
    return;
  }
  cv_start_.notify_all();
  // The calling thread takes the first chunk.
  {
    NestingGuard guard;
    const index_t end0 = std::min(n, chunk);
    try {
      for (index_t i = 0; i < end0; ++i) fn(i);
    } catch (...) {
      record_error();
    }
  }
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [this] { return pending_ == 0; });
  if (first_error_) {
    std::exception_ptr err;
    std::swap(err, first_error_);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop(size_t id, unsigned long start_generation) {
  unsigned long seen = start_generation;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      task = tasks_[id];
    }
    if (task.fn != nullptr) {
      {
        NestingGuard guard;
        try {
          for (index_t i = task.begin; i < task.end; ++i) (*task.fn)(i);
        } catch (...) {
          record_error();
        }
      }
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("BKR_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return index_t(v);
    }
    return index_t(0);
  }());
  return pool;
}

void parallel_for(index_t n, const std::function<void(index_t)>& fn) {
  ThreadPool::global().parallel_for(n, fn);
}

}  // namespace bkr
