#include "parallel/thread_pool.hpp"

#include <cstdlib>

namespace bkr {

ThreadPool::ThreadPool(index_t threads) {
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = index_t(hw > 0 ? hw : 1);
  }
  const size_t workers = size_t(threads) - 1;  // the caller is worker 0
  tasks_.resize(workers);
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::parallel_for(index_t n, const std::function<void(index_t)>& fn) {
  if (n <= 0) return;
  const index_t nthreads = size();
  if (nthreads == 1 || n == 1) {
    for (index_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const index_t chunk = (n + nthreads - 1) / nthreads;
  index_t launched = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t w = 0; w < workers_.size(); ++w) {
      const index_t begin = chunk * index_t(w + 1);
      const index_t end = std::min(n, begin + chunk);
      if (begin >= end) {
        tasks_[w].fn = nullptr;
        continue;
      }
      tasks_[w] = Task{&fn, begin, end};
      ++launched;
    }
    pending_ = launched;
    ++generation_;
  }
  cv_start_.notify_all();
  // The calling thread takes the first chunk.
  const index_t end0 = std::min(n, chunk);
  for (index_t i = 0; i < end0; ++i) fn(i);
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::worker_loop(size_t id) {
  unsigned long seen = 0;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      task = tasks_[id];
    }
    if (task.fn != nullptr) {
      for (index_t i = task.begin; i < task.end; ++i) (*task.fn)(i);
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("BKR_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return index_t(v);
    }
    return index_t(0);
  }());
  return pool;
}

void parallel_for(index_t n, const std::function<void(index_t)>& fn) {
  ThreadPool::global().parallel_for(n, fn);
}

}  // namespace bkr
