// (Damped) Jacobi preconditioner / smoother.
#pragma once

#include "common/contracts.hpp"
#include "core/operator.hpp"
#include "sparse/csr.hpp"

namespace bkr {

template <class T>
class JacobiPreconditioner final : public Preconditioner<T> {
 public:
  explicit JacobiPreconditioner(const CsrMatrix<T>& a, real_t<T> damping = real_t<T>(1))
      : inv_diag_(a.diagonal()) {
    // A missing/zero diagonal entry (semi-definite row, padded DOF) leaves
    // that row unsmoothed rather than poisoning the whole vector with inf.
    for (auto& d : inv_diag_)
      BKR_GUARDED_DIV d = (d == T(0)) ? T(0) : scalar_traits<T>::from_real(damping) / d;
  }

  [[nodiscard]] index_t n() const override { return index_t(inv_diag_.size()); }
  void apply(MatrixView<const T> r, MatrixView<T> z) override {
    BKR_REQUIRE(r.rows() == n(), "r.rows", r.rows(), "n", n());
    BKR_ASSERT_SHAPE(z, r.rows(), r.cols());
    for (index_t c = 0; c < r.cols(); ++c)
      for (index_t i = 0; i < r.rows(); ++i) z(i, c) = inv_diag_[size_t(i)] * r(i, c);
  }

 private:
  std::vector<T> inv_diag_;
};

}  // namespace bkr
