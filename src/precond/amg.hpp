// Smoothed-aggregation algebraic multigrid (the GAMG analogue).
//
// This is the preconditioner dial of the paper's section IV: the
// `threshold` knob (strength-of-connection drop tolerance, PETSc's
// -pc_gamg_threshold) trades setup cost against iteration counts, the
// smoother choice reproduces the paper's three configurations —
// GMRES(s) smoother (nonlinear -> FGMRES/FGCRO-DR), CG(s) smoother
// (nonlinear), Chebyshev (linear -> plain GCRO-DR/LGMRES) — and the
// near-nullspace hook takes the six rigid-body modes for elasticity.
#pragma once

#include <memory>
#include <vector>

#include "core/operator.hpp"
#include "sparse/csr.hpp"

namespace bkr {

enum class AmgSmoother { Jacobi, Chebyshev, Gmres, Cg };

struct AmgOptions {
  double threshold = 0.0;   // drop |a_ij| <= threshold * sqrt(|a_ii a_jj|)
  index_t block_size = 1;   // dofs per grid node (3 for 3-D elasticity)
  index_t max_levels = 12;
  index_t coarse_size = 400;  // direct solve below this many rows
  AmgSmoother smoother = AmgSmoother::Chebyshev;
  index_t smoother_iterations = 3;
  double omega = 2.0 / 3.0;  // prolongator smoothing / Jacobi damping
  // Aggregate on the squared strength graph (PETSc's -pc_gamg_square_graph):
  // bigger aggregates, faster coarsening, cheaper setup, weaker cycles.
  bool square_graph = false;
};

template <class T>
class AmgPreconditioner final : public Preconditioner<T> {
 public:
  // `near_nullspace` is n x nb (defaults to the constant vector).
  AmgPreconditioner(const CsrMatrix<T>& a, AmgOptions opts,
                    MatrixView<const T> near_nullspace = MatrixView<const T>());
  ~AmgPreconditioner() override;

  [[nodiscard]] index_t n() const override;
  [[nodiscard]] bool is_variable() const override {
    return opts_.smoother == AmgSmoother::Gmres || opts_.smoother == AmgSmoother::Cg;
  }
  void apply(MatrixView<const T> r, MatrixView<T> z) override;  // one V-cycle

  [[nodiscard]] index_t levels() const;
  [[nodiscard]] index_t level_rows(index_t level) const;
  // Smoothed prolongator leaving `level` (diagnostics/tests; defined for
  // non-coarsest levels only).
  [[nodiscard]] const CsrMatrix<T>& prolongator(index_t level) const;
  [[nodiscard]] double setup_seconds() const { return setup_seconds_; }
  [[nodiscard]] double operator_complexity() const;  // sum nnz(A_l) / nnz(A_0)

 private:
  struct Level;
  void vcycle(index_t level, MatrixView<const T> r, MatrixView<T> z);

  AmgOptions opts_;
  std::vector<std::unique_ptr<Level>> levels_;
  double setup_seconds_ = 0;
};

extern template class AmgPreconditioner<double>;
extern template class AmgPreconditioner<std::complex<double>>;

}  // namespace bkr
