// Subdomain deflation as a modular coarse space (paper section V-A's
// two-level extension; cf. the amgcl "deflated subdomain" construction).
//
// One-level Schwarz degrades with the subdomain count: low-frequency error
// components travel one subdomain per iteration. A coarse space removes
// them globally: a tall-skinny basis Z (one column per subdomain — the
// subdomain-constant indicator, or its partition-of-unity smoothing over
// the overlap) defines the explicit Galerkin coarse problem E = Zᵀ A Z,
// factored once with the sparse direct solver, and the correction
//   z = Z E⁻¹ Zᵀ r
// is composable with ANY inner preconditioner — additively
// (z = M⁻¹r + ZE⁻¹Zᵀr) or multiplicatively (coarse first, then the inner
// preconditioner on the updated residual) — through TwoLevelPreconditioner.
//
// Resilience: a singular coarse matrix (e.g. a pure-Neumann operator where
// the subdomain constants span the null space) must not kill the outer
// solve. The factorization failure is caught, the correction degrades to
// the identity (so a two-level preconditioner falls back to its inner
// one-level method), and an obs::RecoveryEvent records the degradation.
#pragma once

#include <memory>

#include "common/contracts.hpp"
#include "core/operator.hpp"
#include "direct/factor.hpp"
#include "sparse/partition.hpp"

namespace bkr {

// How the coarse basis Z is built from the k-way partition.
enum class CoarseBasis {
  SubdomainConstant,  // Z(i,s) = 1 when the partitioner owns row i to s
  PartitionOfUnity,   // Z(i,s) = PoU weight of subdomain s at row i
                      // (multiplicity weights over `overlap` grown layers)
};

struct CoarseSpaceOptions {
  index_t subdomains = 4;
  index_t overlap = 1;  // PoU basis only: layers grown past the interior
  CoarseBasis basis = CoarseBasis::SubdomainConstant;
  FactorOrdering ordering = FactorOrdering::NestedDissection;
  // Optional observability sink (not owned): receives the RecoveryEvent
  // when a singular coarse matrix degrades the correction to identity.
  obs::TraceSink* trace = nullptr;
};

// The deflation operator z = Z E^{-1} Z^T r with E = Z^T A Z. Usable
// standalone (as a Preconditioner: pure coarse correction) or inside
// TwoLevelPreconditioner.
template <class T>
class CoarseSpaceCorrection final : public Preconditioner<T> {
 public:
  CoarseSpaceCorrection(const CsrMatrix<T>& a, CoarseSpaceOptions opts);

  [[nodiscard]] index_t n() const override { return n_; }
  void apply(MatrixView<const T> r, MatrixView<T> z) override;

  // Coarse dimension (== subdomains).
  [[nodiscard]] index_t dim() const { return z_.cols(); }
  // True when the coarse factorization failed and applies pass r through.
  [[nodiscard]] bool degraded() const { return factor_ == nullptr; }
  // The Galerkin coarse matrix E = Z^T A Z (the P^T A P contract surface:
  // symmetric whenever A is, definite whenever A is on range(Z)).
  [[nodiscard]] const CsrMatrix<T>& coarse_matrix() const { return e_; }
  // The coarse basis Z (n x subdomains, CSR).
  [[nodiscard]] const CsrMatrix<T>& basis() const { return z_; }

 private:
  index_t n_ = 0;
  CoarseSpaceOptions opts_;
  CsrMatrix<T> z_;   // n x nsub
  CsrMatrix<T> zt_;  // nsub x n (explicit transpose for the restriction)
  CsrMatrix<T> e_;   // nsub x nsub Galerkin coarse matrix
  std::unique_ptr<SparseLDLT<T>> factor_;  // null => degraded
  DenseMatrix<T> rc_;  // dim x p coarse residual workspace (grow-once)
};

// Composition order of the coarse correction around the inner method.
enum class CoarseCorrection {
  Additive,        // z = M^{-1} r + Z E^{-1} Z^T r (fully parallel)
  Multiplicative,  // coarse first, inner on the updated residual r - A z_c
};

// Inner-preconditioner-agnostic two-level method: wraps ANY inner
// Preconditioner (Schwarz, AMG, Jacobi, ...) with the subdomain coarse
// correction. A degraded coarse space reduces exactly to the inner method.
template <class T>
class TwoLevelPreconditioner final : public Preconditioner<T> {
 public:
  // `inner` is not owned and must outlive the preconditioner; null inner
  // composes the coarse correction with the identity.
  TwoLevelPreconditioner(const CsrMatrix<T>& a, Preconditioner<T>* inner,
                         CoarseSpaceOptions copts,
                         CoarseCorrection mode = CoarseCorrection::Additive);

  [[nodiscard]] index_t n() const override { return coarse_.n(); }
  void apply(MatrixView<const T> r, MatrixView<T> z) override;
  [[nodiscard]] bool is_variable() const override {
    return inner_ != nullptr && inner_->is_variable();
  }

  [[nodiscard]] const CoarseSpaceCorrection<T>& coarse() const { return coarse_; }

 private:
  const CsrMatrix<T>* a_;  // multiplicative residual update needs A
  Preconditioner<T>* inner_;
  CoarseCorrection mode_;
  CoarseSpaceCorrection<T> coarse_;
  DenseMatrix<T> zc_;  // n x p coarse-correction workspace (grow-once)
  DenseMatrix<T> rr_;  // n x p updated-residual workspace (multiplicative)
};

extern template class CoarseSpaceCorrection<double>;
extern template class CoarseSpaceCorrection<std::complex<double>>;
extern template class TwoLevelPreconditioner<double>;
extern template class TwoLevelPreconditioner<std::complex<double>>;

}  // namespace bkr
