#include "precond/coarse_space.hpp"

#include <utility>

#include "sparse/graph.hpp"

namespace bkr {

namespace {

// Assemble the coarse basis Z (n x nsub) from the k-way partition.
template <class T>
CsrMatrix<T> build_basis(const CsrMatrix<T>& a, const CoarseSpaceOptions& opts) {
  const index_t n = a.rows();
  const Graph g = adjacency_of(a);
  CooBuilder<T> z(n, opts.subdomains);
  if (opts.basis == CoarseBasis::SubdomainConstant) {
    const Partition part = partition_greedy(g, opts.subdomains);
    z.reserve(size_t(n));
    for (index_t i = 0; i < n; ++i) z.add(i, part.owner[size_t(i)], T(1));
  } else {
    const OverlappingDecomposition d =
        make_decomposition(g, opts.subdomains, opts.overlap, PouKind::Multiplicity);
    for (index_t s = 0; s < opts.subdomains; ++s)
      for (size_t l = 0; l < d.rows[size_t(s)].size(); ++l)
        z.add(d.rows[size_t(s)][l], s, T(d.pou[size_t(s)][l]));
  }
  return z.build();
}

}  // namespace

template <class T>
CoarseSpaceCorrection<T>::CoarseSpaceCorrection(const CsrMatrix<T>& a, CoarseSpaceOptions opts)
    : n_(a.rows()), opts_(opts) {
  BKR_REQUIRE(a.rows() == a.cols(), "a.rows", a.rows(), "a.cols", a.cols());
  BKR_REQUIRE(opts_.subdomains >= 1 && opts_.subdomains <= a.rows(), "subdomains",
              opts_.subdomains, "n", a.rows());
  z_ = build_basis(a, opts_);
  zt_ = transpose(z_);
  e_ = triple_product(z_, a);
  try {
    factor_ = std::make_unique<SparseLDLT<T>>(e_, opts_.ordering);
  } catch (const std::runtime_error&) {
    // Singular coarse matrix (e.g. subdomain constants spanning a Neumann
    // null space): degrade to the identity correction instead of failing
    // the enclosing solve, and leave an auditable trail.
    factor_.reset();
    if (opts_.trace != nullptr)
      opts_.trace->recovery(obs::RecoveryEvent{0, "coarse-space", "identity-fallback", dim()});
  }
}

template <class T>
void CoarseSpaceCorrection<T>::apply(MatrixView<const T> r, MatrixView<T> z) {
  const index_t p = r.cols();
  BKR_REQUIRE(r.rows() == n_, "r.rows", r.rows(), "n", n_);
  BKR_ASSERT_SHAPE(z, n_, p);
  if (degraded()) {
    copy_into<T>(r, z);
    return;
  }
  if (rc_.rows() != dim() || rc_.cols() < p) rc_.resize(dim(), p);
  MatrixView<T> rc = rc_.block(0, 0, dim(), p);
  zt_.spmm(r, rc);                                      // restrict: rc = Z^T r
  factor_->solve(rc);                                   // coarse solve: rc = E^{-1} rc
  z_.spmm(MatrixView<const T>(rc.data(), dim(), p, rc.ld()), z);  // prolong: z = Z rc
}

template <class T>
TwoLevelPreconditioner<T>::TwoLevelPreconditioner(const CsrMatrix<T>& a, Preconditioner<T>* inner,
                                                  CoarseSpaceOptions copts, CoarseCorrection mode)
    : a_(&a), inner_(inner), mode_(mode), coarse_(a, copts) {
  BKR_REQUIRE(inner == nullptr || inner->n() == a.rows(), "inner.n",
              inner == nullptr ? index_t(0) : inner->n(), "a.rows", a.rows());
}

template <class T>
void TwoLevelPreconditioner<T>::apply(MatrixView<const T> r, MatrixView<T> z) {
  const index_t n = coarse_.n(), p = r.cols();
  BKR_REQUIRE(r.rows() == n, "r.rows", r.rows(), "n", n);
  BKR_ASSERT_SHAPE(z, n, p);
  // A degraded coarse space contributes nothing: the two-level method
  // reduces exactly to its inner one-level preconditioner.
  if (coarse_.degraded()) {
    if (inner_ != nullptr) {
      inner_->apply(r, z);
    } else {
      copy_into<T>(r, z);
    }
    return;
  }
  if (zc_.rows() != n || zc_.cols() < p) zc_.resize(n, p);
  MatrixView<T> zc = zc_.block(0, 0, n, p);
  coarse_.apply(r, zc);
  if (mode_ == CoarseCorrection::Additive) {
    if (inner_ != nullptr) {
      inner_->apply(r, z);
    } else {
      copy_into<T>(r, z);
    }
    for (index_t j = 0; j < p; ++j)
      for (index_t i = 0; i < n; ++i) z(i, j) += zc(i, j);
    return;
  }
  // Multiplicative: inner method sees the residual after the coarse
  // correction, r' = r - A z_c, and its update adds onto z_c.
  if (rr_.rows() != n || rr_.cols() < p) rr_.resize(n, p);
  MatrixView<T> rr = rr_.block(0, 0, n, p);
  a_->spmm(MatrixView<const T>(zc.data(), n, p, zc.ld()), rr);
  for (index_t j = 0; j < p; ++j)
    for (index_t i = 0; i < n; ++i) rr(i, j) = r(i, j) - rr(i, j);
  if (inner_ != nullptr) {
    inner_->apply(MatrixView<const T>(rr.data(), n, p, rr.ld()), z);
  } else {
    copy_into<T>(MatrixView<const T>(rr.data(), n, p, rr.ld()), z);
  }
  for (index_t j = 0; j < p; ++j)
    for (index_t i = 0; i < n; ++i) z(i, j) += zc(i, j);
}

template class CoarseSpaceCorrection<double>;
template class CoarseSpaceCorrection<std::complex<double>>;
template class TwoLevelPreconditioner<double>;
template class TwoLevelPreconditioner<std::complex<double>>;

}  // namespace bkr
