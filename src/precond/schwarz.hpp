// Overlapping Schwarz preconditioners: ASM, RAS, and the paper's
// one-level ORAS (eq. 6).
//
// The matrix graph is partitioned into N subdomains (SCOTCH stand-in),
// grown by `overlap` layers (the T_i^delta construction of section V-A).
// Each subdomain's local matrix is factored with the sparse direct solver;
// one application performs N independent local multi-RHS solves — a block
// of p RHS is one forward elimination + backward substitution per
// subdomain (the property fig. 6 quantifies) — combined as:
//   ASM :  z = sum_i R_i^T        B_i^{-1} R_i r
//   RAS :  z = sum_i R_i^T D_i    B_i^{-1} R_i r     (D_i Boolean PoU)
//   ORAS:  RAS with the local Dirichlet matrices replaced by matrices
//          with an impedance (optimized Robin) term on interface rows —
//          algebraically, B_i = A|_i + i*beta*|diag| (complex problems)
//          or + beta*|diag| (real) on rows cut by the decomposition.
//
// Per-subdomain setup/apply times are recorded and reduced as both a sum
// (the single-node cost) and a max (the critical path of an ideal
// distributed run) — the basis of the fig. 7 scaling reproduction.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "common/contracts.hpp"
#include "core/operator.hpp"
#include "direct/factor.hpp"
#include "sparse/partition.hpp"

namespace bkr {

enum class SchwarzKind { Asm, Ras, Oras };

struct SchwarzOptions {
  index_t subdomains = 4;
  index_t overlap = 1;         // delta
  SchwarzKind kind = SchwarzKind::Ras;
  double impedance = 0.0;      // beta of the ORAS transmission condition
  FactorOrdering ordering = FactorOrdering::NestedDissection;
  bool parallel = true;        // run local solves on the thread pool
};

struct SchwarzStats {
  double setup_seconds_sum = 0;   // total local factorization work
  double setup_seconds_max = 0;   // critical path across subdomains
  double apply_seconds_sum = 0;   // accumulated over all apply() calls
  double apply_seconds_max = 0;   // accumulated critical path
  index_t applications = 0;
  index_t factor_nnz_total = 0;
  index_t largest_subdomain = 0;
};

template <class T>
class SchwarzPreconditioner final : public Preconditioner<T> {
 public:
  SchwarzPreconditioner(const CsrMatrix<T>& a, SchwarzOptions opts);

  [[nodiscard]] index_t n() const override { return n_; }
  void apply(MatrixView<const T> r, MatrixView<T> z) override;

  // Snapshot of the accumulated counters (thread-safe; apply() may be
  // running concurrently on other threads).
  [[nodiscard]] SchwarzStats stats() const;
  [[nodiscard]] index_t subdomains() const { return index_t(locals_.size()); }

 private:
  struct Local {
    std::vector<index_t> rows;    // global indices of the overlapping set
    std::vector<double> weights;  // partition of unity
    std::unique_ptr<SparseLDLT<T>> factor;
  };

  index_t n_ = 0;
  SchwarzOptions opts_;
  std::vector<Local> locals_;
  mutable std::mutex stats_mutex_;
  SchwarzStats stats_ BKR_GUARDED_BY(stats_mutex_);
};

extern template class SchwarzPreconditioner<double>;
extern template class SchwarzPreconditioner<std::complex<double>>;

}  // namespace bkr
