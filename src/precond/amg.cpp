#include "precond/amg.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/contracts.hpp"
#include "common/timer.hpp"
#include "direct/factor.hpp"
#include "la/factor.hpp"
#include "sparse/graph.hpp"
#include "la/qr.hpp"
#include "precond/chebyshev.hpp"
#include "precond/jacobi.hpp"
#include "precond/krylov_smoother.hpp"

namespace bkr {

template <class T>
struct AmgPreconditioner<T>::Level {
  CsrMatrix<T> a;
  CsrMatrix<T> p;   // prolongator from the next (coarser) level to this one
  CsrMatrix<T> pt;  // cached restriction P^T
  std::unique_ptr<CsrOperator<T>> op;
  std::unique_ptr<Preconditioner<T>> inner;  // level PC inside Krylov smoothers
  std::unique_ptr<Preconditioner<T>> smoother;
  // Coarsest level only: dense LU for small grids, sparse LDL^T when
  // coarsening stalled on a still-large level.
  std::unique_ptr<DenseLU<T>> coarse_solver;
  std::unique_ptr<SparseLDLT<T>> coarse_sparse;
};

namespace {

// Node-level strength-of-connection graph: edge (i, j) kept when the
// block norm exceeds threshold * sqrt(s_ii * s_jj) (GAMG semantics).
template <class T>
Graph strength_graph(const CsrMatrix<T>& a, index_t bs, double threshold) {
  const index_t nodes = a.rows() / bs;
  // Condense to node-block magnitudes.
  std::vector<std::vector<std::pair<index_t, double>>> blocks(static_cast<size_t>(nodes));
  for (index_t i = 0; i < a.rows(); ++i) {
    const index_t ni = i / bs;
    for (index_t l = a.rowptr()[size_t(i)]; l < a.rowptr()[size_t(i) + 1]; ++l) {
      const index_t nj = a.colind()[size_t(l)] / bs;
      const double v = abs_val(a.values()[size_t(l)]);
      auto& row = blocks[size_t(ni)];
      auto it = std::find_if(row.begin(), row.end(),
                             [nj](const auto& e) { return e.first == nj; });
      if (it == row.end())
        row.emplace_back(nj, v * v);
      else
        it->second += v * v;
    }
  }
  std::vector<double> diag(static_cast<size_t>(nodes), 0.0);
  for (index_t i = 0; i < nodes; ++i)
    for (const auto& [j, s] : blocks[size_t(i)])
      if (j == i) diag[size_t(i)] = s;
  Graph g;
  g.n = nodes;
  g.ptr.assign(static_cast<size_t>(nodes) + 1, 0);
  std::vector<std::vector<index_t>> adj(static_cast<size_t>(nodes));
  const double t2 = threshold * threshold;
  for (index_t i = 0; i < nodes; ++i)
    for (const auto& [j, s] : blocks[size_t(i)]) {
      if (j == i) continue;
      const double scale = std::sqrt(std::max(diag[size_t(i)] * diag[size_t(j)], 1e-300));
      if (s > t2 * scale) adj[size_t(i)].push_back(j);
    }
  for (index_t i = 0; i < nodes; ++i) {
    std::sort(adj[size_t(i)].begin(), adj[size_t(i)].end());
    g.ptr[size_t(i) + 1] = g.ptr[size_t(i)] + index_t(adj[size_t(i)].size());
  }
  for (index_t i = 0; i < nodes; ++i)
    g.adj.insert(g.adj.end(), adj[size_t(i)].begin(), adj[size_t(i)].end());
  return g;
}

// Greedy aggregation (Vanek et al.): returns node -> aggregate id and the
// aggregate count. Aggregates smaller than `min_nodes` are merged into a
// neighbouring aggregate so the tentative prolongator's local QR stays
// overdetermined.
std::pair<std::vector<index_t>, index_t> aggregate(const Graph& g, index_t min_nodes) {
  const index_t n = g.n;
  std::vector<index_t> agg(static_cast<size_t>(n), -1);
  index_t count = 0;
  // Pass 1: roots whose strong neighbourhood is untouched.
  for (index_t i = 0; i < n; ++i) {
    if (agg[size_t(i)] >= 0) continue;
    bool free = true;
    for (index_t l = g.ptr[size_t(i)]; l < g.ptr[size_t(i) + 1]; ++l)
      if (agg[size_t(g.adj[size_t(l)])] >= 0) {
        free = false;
        break;
      }
    if (!free) continue;
    agg[size_t(i)] = count;
    for (index_t l = g.ptr[size_t(i)]; l < g.ptr[size_t(i) + 1]; ++l)
      agg[size_t(g.adj[size_t(l)])] = count;
    ++count;
  }
  // Pass 2: attach stragglers to an adjacent aggregate.
  for (index_t i = 0; i < n; ++i) {
    if (agg[size_t(i)] >= 0) continue;
    for (index_t l = g.ptr[size_t(i)]; l < g.ptr[size_t(i) + 1]; ++l)
      if (agg[size_t(g.adj[size_t(l)])] >= 0) {
        agg[size_t(i)] = agg[size_t(g.adj[size_t(l)])];
        break;
      }
  }
  // Pass 3: isolated vertices become singletons.
  for (index_t i = 0; i < n; ++i)
    if (agg[size_t(i)] < 0) agg[size_t(i)] = count++;
  // Merge undersized aggregates into a graph-adjacent one.
  std::vector<index_t> size(static_cast<size_t>(count), 0);
  for (index_t i = 0; i < n; ++i) ++size[size_t(agg[size_t(i)])];
  std::vector<index_t> remap(static_cast<size_t>(count), -1);
  for (index_t i = 0; i < n; ++i) {
    const index_t gi = agg[size_t(i)];
    if (size[size_t(gi)] >= min_nodes) continue;
    if (remap[size_t(gi)] < 0) {
      for (index_t l = g.ptr[size_t(i)]; l < g.ptr[size_t(i) + 1]; ++l) {
        const index_t gj = agg[size_t(g.adj[size_t(l)])];
        if (gj != gi && size[size_t(gj)] >= min_nodes) {
          remap[size_t(gi)] = gj;
          break;
        }
      }
    }
  }
  for (index_t i = 0; i < n; ++i)
    if (remap[size_t(agg[size_t(i)])] >= 0) agg[size_t(i)] = remap[size_t(agg[size_t(i)])];
  // Compact ids.
  std::vector<index_t> newid(static_cast<size_t>(count), -1);
  index_t compact = 0;
  for (index_t i = 0; i < n; ++i) {
    index_t& gi = agg[size_t(i)];
    if (newid[size_t(gi)] < 0) newid[size_t(gi)] = compact++;
    gi = newid[size_t(gi)];
  }
  return {std::move(agg), compact};
}

// Distance-2 closure of a graph (adjacency of the squared matrix).
Graph square(const Graph& g) {
  Graph out;
  out.n = g.n;
  out.ptr.assign(static_cast<size_t>(g.n) + 1, 0);
  std::vector<std::vector<index_t>> adj(static_cast<size_t>(g.n));
  std::vector<index_t> marker(static_cast<size_t>(g.n), -1);
  for (index_t i = 0; i < g.n; ++i) {
    auto& row = adj[size_t(i)];
    marker[size_t(i)] = i;
    for (index_t l = g.ptr[size_t(i)]; l < g.ptr[size_t(i) + 1]; ++l) {
      const index_t j = g.adj[size_t(l)];
      if (marker[size_t(j)] != i) {
        marker[size_t(j)] = i;
        row.push_back(j);
      }
      for (index_t l2 = g.ptr[size_t(j)]; l2 < g.ptr[size_t(j) + 1]; ++l2) {
        const index_t k = g.adj[size_t(l2)];
        if (marker[size_t(k)] != i) {
          marker[size_t(k)] = i;
          row.push_back(k);
        }
      }
    }
    std::sort(row.begin(), row.end());
  }
  for (index_t i = 0; i < g.n; ++i)
    out.ptr[size_t(i) + 1] = out.ptr[size_t(i)] + index_t(adj[size_t(i)].size());
  for (index_t i = 0; i < g.n; ++i)
    out.adj.insert(out.adj.end(), adj[size_t(i)].begin(), adj[size_t(i)].end());
  return out;
}

}  // namespace

template <class T>
AmgPreconditioner<T>::AmgPreconditioner(const CsrMatrix<T>& a, AmgOptions opts,
                                        MatrixView<const T> near_nullspace)
    : opts_(opts) {
  Timer timer;
  const index_t bs = opts_.block_size;
  if (a.rows() % bs != 0) throw std::invalid_argument("Amg: rows not divisible by block_size");

  // Near-nullspace (defaults to the constant vector per dof component).
  DenseMatrix<T> b;
  if (near_nullspace.cols() > 0) {
    b = copy_of(near_nullspace);
  } else {
    b.resize(a.rows(), bs);
    for (index_t i = 0; i < a.rows(); ++i) b(i, i % bs) = T(1);
  }
  const index_t nb = b.cols();

  CsrMatrix<T> current = a;
  for (index_t lvl = 0; lvl < opts_.max_levels; ++lvl) {
    auto level = std::make_unique<Level>();
    level->a = std::move(current);
    const CsrMatrix<T>& al = level->a;
    level->op = std::make_unique<CsrOperator<T>>(al);
    const bool coarsest = al.rows() <= opts_.coarse_size || lvl + 1 == opts_.max_levels;
    if (coarsest) {
      if (al.rows() <= std::max<index_t>(opts_.coarse_size, 1500)) {
        level->coarse_solver = std::make_unique<DenseLU<T>>(al.to_dense());
        if (level->coarse_solver->singular())
          throw std::runtime_error("amg: coarsest-grid matrix is singular");
      } else {
        level->coarse_sparse = std::make_unique<SparseLDLT<T>>(al);
      }
      levels_.push_back(std::move(level));
      break;
    }
    // Smoother for this level.
    switch (opts_.smoother) {
      case AmgSmoother::Jacobi:
        level->smoother = std::make_unique<JacobiPreconditioner<T>>(al, real_t<T>(opts_.omega));
        break;
      case AmgSmoother::Chebyshev:
        if constexpr (is_complex_v<T>) {
          level->smoother = std::make_unique<JacobiPreconditioner<T>>(al, real_t<T>(opts_.omega));
        } else {
          level->smoother =
              std::make_unique<ChebyshevSmoother>(al, opts_.smoother_iterations);
        }
        break;
      case AmgSmoother::Gmres:
        // Krylov smoothers carry a Jacobi level preconditioner, matching
        // PETSc's "-mg_levels_ksp_type gmres" with its default level PC.
        level->inner = std::make_unique<JacobiPreconditioner<T>>(al);
        level->smoother = std::make_unique<GmresSmoother<T>>(*level->op, opts_.smoother_iterations,
                                                             level->inner.get());
        break;
      case AmgSmoother::Cg:
        level->inner = std::make_unique<JacobiPreconditioner<T>>(al);
        level->smoother = std::make_unique<CgSmoother<T>>(*level->op, opts_.smoother_iterations,
                                                          level->inner.get());
        break;
    }
    // Aggregation on the node strength graph. The local QR needs at least
    // nb rows per aggregate -> at least ceil(nb / bs) nodes.
    Graph s = strength_graph(al, bs, opts_.threshold);
    if (opts_.square_graph) s = square(s);
    const index_t min_nodes = (nb + bs - 1) / bs;
    const auto [agg, nagg] = aggregate(s, min_nodes);
    if (nagg * nb >= al.rows()) {
      // Coarsening stalled: stop here with a direct solve.
      level->smoother.reset();
      if (al.rows() <= std::max<index_t>(opts_.coarse_size, 1500)) {
        level->coarse_solver = std::make_unique<DenseLU<T>>(al.to_dense());
        if (level->coarse_solver->singular())
          throw std::runtime_error("amg: coarsest-grid matrix is singular");
      } else {
        level->coarse_sparse = std::make_unique<SparseLDLT<T>>(al);
      }
      levels_.push_back(std::move(level));
      break;
    }
    // Tentative prolongator: per aggregate, orthonormalize the
    // near-nullspace restricted to the aggregate's dofs.
    std::vector<std::vector<index_t>> agg_rows(static_cast<size_t>(nagg));
    for (index_t node = 0; node < s.n; ++node)
      for (index_t d = 0; d < bs; ++d) agg_rows[size_t(agg[size_t(node)])].push_back(node * bs + d);
    CooBuilder<T> tent(al.rows(), nagg * nb);
    DenseMatrix<T> bc(nagg * nb, nb);
    for (index_t gidx = 0; gidx < nagg; ++gidx) {
      const auto& rows = agg_rows[size_t(gidx)];
      const index_t nr = index_t(rows.size());
      DenseMatrix<T> local(nr, nb);
      for (index_t r = 0; r < nr; ++r)
        for (index_t c = 0; c < nb; ++c) local(r, c) = b(rows[size_t(r)], c);
      HouseholderQR<T> qr(std::move(local));
      const DenseMatrix<T> q = qr.q_thin();
      const DenseMatrix<T> rr = qr.r();
      for (index_t r = 0; r < nr; ++r)
        for (index_t c = 0; c < nb; ++c) tent.add(rows[size_t(r)], gidx * nb + c, q(r, c));
      for (index_t rr1 = 0; rr1 < nb; ++rr1)
        for (index_t c = 0; c < nb; ++c) bc(gidx * nb + rr1, c) = rr(rr1, c);
    }
    CsrMatrix<T> tentative = tent.build();
    // Smooth the prolongator: P = (I - omega D^{-1} A) T.
    CsrMatrix<T> dinv_a = al;
    {
      const auto diag = al.diagonal();
      auto& vals = dinv_a.values();
      for (index_t i = 0; i < al.rows(); ++i) {
        // A zero diagonal row cannot be Jacobi-smoothed; keep the tentative
        // prolongator there instead of injecting inf into P.
        const T d = diag[size_t(i)];
        const T scale =
            d == T(0) ? T(0) : scalar_traits<T>::from_real(real_t<T>(opts_.omega)) / d;
        for (index_t l = al.rowptr()[size_t(i)]; l < al.rowptr()[size_t(i) + 1]; ++l)
          vals[size_t(l)] = al.values()[size_t(l)] * scale;
      }
    }
    CsrMatrix<T> smoothed_correction = multiply(dinv_a, tentative);
    // P = T - correction (merge the two patterns).
    CooBuilder<T> pb(al.rows(), nagg * nb);
    for (index_t i = 0; i < al.rows(); ++i) {
      for (index_t l = tentative.rowptr()[size_t(i)]; l < tentative.rowptr()[size_t(i) + 1]; ++l)
        pb.add(i, tentative.colind()[size_t(l)], tentative.values()[size_t(l)]);
      for (index_t l = smoothed_correction.rowptr()[size_t(i)];
           l < smoothed_correction.rowptr()[size_t(i) + 1]; ++l)
        pb.add(i, smoothed_correction.colind()[size_t(l)], -smoothed_correction.values()[size_t(l)]);
    }
    level->p = pb.build();
    level->pt = transpose(level->p);
    current = triple_product(level->p, al);
    b = std::move(bc);
    levels_.push_back(std::move(level));
  }
  setup_seconds_ = timer.seconds();
}

template <class T>
AmgPreconditioner<T>::~AmgPreconditioner() = default;

template <class T>
index_t AmgPreconditioner<T>::n() const {
  return levels_.front()->a.rows();
}

template <class T>
index_t AmgPreconditioner<T>::levels() const {
  return index_t(levels_.size());
}

template <class T>
index_t AmgPreconditioner<T>::level_rows(index_t level) const {
  return levels_[size_t(level)]->a.rows();
}

template <class T>
const CsrMatrix<T>& AmgPreconditioner<T>::prolongator(index_t level) const {
  return levels_[size_t(level)]->p;
}

template <class T>
double AmgPreconditioner<T>::operator_complexity() const {
  double total = 0;
  for (const auto& l : levels_) total += double(l->a.nnz());
  return total / double(levels_.front()->a.nnz());
}

template <class T>
void AmgPreconditioner<T>::vcycle(index_t lvl, MatrixView<const T> r, MatrixView<T> z) {
  Level& level = *levels_[size_t(lvl)];
  const index_t n = level.a.rows(), p = r.cols();
  if (level.coarse_solver != nullptr || level.coarse_sparse != nullptr) {
    copy_into<T>(r, z);
    if (level.coarse_solver != nullptr)
      level.coarse_solver->solve(z);
    else
      level.coarse_sparse->solve(z);
    return;
  }
  // Pre-smooth from a zero initial guess.
  level.smoother->apply(r, z);
  // Residual and coarse correction.
  DenseMatrix<T> res(n, p);
  level.a.spmm(MatrixView<const T>(z.data(), n, p, z.ld()), res.view());
  for (index_t c = 0; c < p; ++c)
    for (index_t i = 0; i < n; ++i) res(i, c) = r(i, c) - res(i, c);
  const index_t nc = level.p.cols();
  DenseMatrix<T> rc(nc, p), zc(nc, p);
  level.pt.spmm(res.view(), rc.view());
  vcycle(lvl + 1, rc.view(), zc.view());
  DenseMatrix<T> corr(n, p);
  level.p.spmm(zc.view(), corr.view());
  for (index_t c = 0; c < p; ++c)
    for (index_t i = 0; i < n; ++i) z(i, c) += corr(i, c);
  // Post-smooth.
  level.a.spmm(MatrixView<const T>(z.data(), n, p, z.ld()), res.view());
  for (index_t c = 0; c < p; ++c)
    for (index_t i = 0; i < n; ++i) res(i, c) = r(i, c) - res(i, c);
  DenseMatrix<T> dz(n, p);
  level.smoother->apply(res.view(), dz.view());
  for (index_t c = 0; c < p; ++c)
    for (index_t i = 0; i < n; ++i) z(i, c) += dz(i, c);
}

template <class T>
void AmgPreconditioner<T>::apply(MatrixView<const T> r, MatrixView<T> z) {
  BKR_REQUIRE(r.rows() == this->n(), "r.rows", r.rows(), "n", this->n());
  BKR_ASSERT_SHAPE(z, r.rows(), r.cols());
  z.set_zero();
  vcycle(0, r, z);
}

template class AmgPreconditioner<double>;
template class AmgPreconditioner<std::complex<double>>;

}  // namespace bkr
