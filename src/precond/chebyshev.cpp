#include "precond/chebyshev.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "la/blas.hpp"

namespace bkr {

ChebyshevSmoother::ChebyshevSmoother(const CsrMatrix<double>& a, index_t degree,
                                     double eig_fraction, double eig_upper,
                                     index_t power_iterations)
    : a_(&a), inv_diag_(a.diagonal()), degree_(degree) {
  const index_t n = a.rows();
  for (auto& d : inv_diag_) d = 1.0 / d;
  // Power iteration on D^{-1} A for the largest eigenvalue.
  Rng rng(0xc4eb);
  std::vector<double> v(static_cast<size_t>(n)), w(static_cast<size_t>(n));
  for (auto& x : v) x = rng.scalar<double>();
  double lambda = 1.0;
  for (index_t it = 0; it < power_iterations; ++it) {
    a.spmv(v.data(), w.data());
    for (index_t i = 0; i < n; ++i) w[size_t(i)] *= inv_diag_[size_t(i)];
    double nrm = norm2<double>(n, w.data());
    if (nrm == 0.0) break;
    lambda = nrm;
    for (index_t i = 0; i < n; ++i) v[size_t(i)] = w[size_t(i)] / nrm;
  }
  lambda_max_ = lambda;
  lo_ = eig_fraction * lambda_max_;
  hi_ = eig_upper * lambda_max_;
}

void ChebyshevSmoother::apply(MatrixView<const double> r, MatrixView<double> z) {
  BKR_REQUIRE(r.rows() == a_->rows(), "r.rows", r.rows(), "n", a_->rows());
  BKR_ASSERT_SHAPE(z, r.rows(), r.cols());
  // Standard Chebyshev iteration (Saad, "Iterative Methods", alg. 12.1)
  // on the Jacobi-preconditioned operator, z0 = 0.
  const index_t n = a_->rows(), p = r.cols();
  const double theta = 0.5 * (hi_ + lo_);
  const double delta = 0.5 * (hi_ - lo_);
  const double sigma1 = theta / delta;
  DenseMatrix<double> res(n, p), d(n, p), tmp(n, p);
  copy_into<double>(r, res.view());
  z.set_zero();
  double rho_old = 1.0 / sigma1;
  for (index_t c = 0; c < p; ++c)
    for (index_t i = 0; i < n; ++i) d(i, c) = inv_diag_[size_t(i)] * res(i, c) / theta;
  for (index_t it = 0;; ++it) {
    for (index_t c = 0; c < p; ++c)
      for (index_t i = 0; i < n; ++i) z(i, c) += d(i, c);
    if (it + 1 >= degree_) break;
    a_->spmm(MatrixView<const double>(d.data(), n, p, d.ld()), tmp.view());
    for (index_t c = 0; c < p; ++c)
      for (index_t i = 0; i < n; ++i) res(i, c) -= tmp(i, c);
    const double rho = 1.0 / (2.0 * sigma1 - rho_old);
    for (index_t c = 0; c < p; ++c)
      for (index_t i = 0; i < n; ++i)
        d(i, c) = rho * rho_old * d(i, c) +
                  (2.0 * rho / delta) * inv_diag_[size_t(i)] * res(i, c);
    rho_old = rho;
  }
}

}  // namespace bkr
