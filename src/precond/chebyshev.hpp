// Chebyshev polynomial smoother (the PETSc default for GAMG levels,
// used in the section IV-C "right preconditioning" experiment: a *linear*
// smoother, so plain GCRO-DR / LGMRES apply without flexible variants).
#pragma once

#include "core/operator.hpp"
#include "sparse/csr.hpp"

namespace bkr {

// Jacobi-preconditioned Chebyshev iteration on an SPD matrix, targeting
// the interval [eig_fraction * lambda_max, eig_upper * lambda_max] like
// PETSc's "-mg_levels_esteig" defaults. A fixed polynomial in A: linear,
// deterministic, is_variable() == false.
class ChebyshevSmoother final : public Preconditioner<double> {
 public:
  ChebyshevSmoother(const CsrMatrix<double>& a, index_t degree = 3,
                    double eig_fraction = 0.1, double eig_upper = 1.1,
                    index_t power_iterations = 12);

  [[nodiscard]] index_t n() const override { return a_->rows(); }
  void apply(MatrixView<const double> r, MatrixView<double> z) override;

  [[nodiscard]] double lambda_max_estimate() const { return lambda_max_; }

 private:
  const CsrMatrix<double>* a_;
  std::vector<double> inv_diag_;
  index_t degree_;
  double lambda_max_ = 0, lo_ = 0, hi_ = 0;
};

}  // namespace bkr
