// Krylov-method preconditioners/smoothers.
//
// A handful of GMRES or CG iterations used as a preconditioner is
// *nonlinear*: the operator applied to r depends on r. These wrappers
// report is_variable() == true, which makes the solvers switch to their
// flexible variants automatically — the mechanism the paper exercises
// with "-mg_levels_ksp_type gmres/cg" in section IV.
#pragma once

#include "core/cg.hpp"
#include "core/gmres.hpp"
#include "core/operator.hpp"

namespace bkr {

template <class T>
class GmresSmoother final : public Preconditioner<T> {
 public:
  GmresSmoother(const LinearOperator<T>& a, index_t iterations,
                Preconditioner<T>* inner = nullptr)
      : a_(&a), inner_(inner) {
    opts_.restart = iterations;
    opts_.max_iterations = iterations;
    opts_.tol = 0.0;  // always run the fixed number of iterations
    opts_.record_history = false;
    opts_.side = PrecondSide::Right;
  }

  [[nodiscard]] index_t n() const override { return a_->n(); }
  [[nodiscard]] bool is_variable() const override { return true; }
  void apply(MatrixView<const T> r, MatrixView<T> z) override {
    z.set_zero();
    (void)block_gmres<T>(*a_, inner_, r, z, opts_);
  }

 private:
  const LinearOperator<T>* a_;
  Preconditioner<T>* inner_;
  SolverOptions opts_;
};

template <class T>
class CgSmoother final : public Preconditioner<T> {
 public:
  CgSmoother(const LinearOperator<T>& a, index_t iterations, Preconditioner<T>* inner = nullptr)
      : a_(&a), inner_(inner) {
    opts_.max_iterations = iterations;
    opts_.tol = 0.0;
    opts_.record_history = false;
  }

  [[nodiscard]] index_t n() const override { return a_->n(); }
  [[nodiscard]] bool is_variable() const override { return true; }
  void apply(MatrixView<const T> r, MatrixView<T> z) override {
    z.set_zero();
    (void)cg<T>(*a_, inner_, r, z, opts_);
  }

 private:
  const LinearOperator<T>* a_;
  Preconditioner<T>* inner_;
  SolverOptions opts_;
};

}  // namespace bkr
