#include "precond/schwarz.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "common/contracts.hpp"
#include "common/timer.hpp"
#include "parallel/thread_pool.hpp"
#include "sparse/graph.hpp"

namespace bkr {

template <class T>
SchwarzPreconditioner<T>::SchwarzPreconditioner(const CsrMatrix<T>& a, SchwarzOptions opts)
    : n_(a.rows()), opts_(opts) {
  const Graph g = adjacency_of(a);
  const PouKind pou = (opts_.kind == SchwarzKind::Asm) ? PouKind::Multiplicity : PouKind::Boolean;
  OverlappingDecomposition dec = make_decomposition(g, opts_.subdomains, opts_.overlap, pou);
  locals_.resize(static_cast<size_t>(opts_.subdomains));
  // Per-lane accumulation slots: each subdomain build writes only its own
  // entry, so the lane bodies never touch stats_mutex_; everything is
  // merged once after the parallel_for (hot-path-lock discipline).
  std::vector<double> setup_times(static_cast<size_t>(opts_.subdomains), 0.0);
  std::vector<index_t> factor_nnz(static_cast<size_t>(opts_.subdomains), 0);
  std::vector<index_t> sub_rows(static_cast<size_t>(opts_.subdomains), 0);

  auto build_one = [&](index_t i) BKR_COLD {
    Timer timer;
    Local local;
    local.rows = std::move(dec.rows[size_t(i)]);
    if (opts_.kind == SchwarzKind::Asm) {
      // ASM adds overlapping contributions without weighting.
      local.weights.assign(local.rows.size(), 1.0);
    } else {
      local.weights = std::move(dec.pou[size_t(i)]);
    }
    CsrMatrix<T> sub = extract_submatrix(a, local.rows);
    if (opts_.kind == SchwarzKind::Oras && opts_.impedance != 0.0) {
      // Impedance (optimized Robin) transmission condition: perturb the
      // diagonal of rows whose global stencil is cut by the subdomain
      // boundary. Imaginary shift for complex (Maxwell) problems, real
      // shift otherwise.
      std::vector<char> inside(static_cast<size_t>(n_), 0);
      for (const index_t row : local.rows) inside[size_t(row)] = 1;
      auto& values = sub.values();
      for (index_t li = 0; li < sub.rows(); ++li) {
        const index_t gi = local.rows[size_t(li)];
        bool cut = false;
        for (index_t l = a.rowptr()[size_t(gi)]; l < a.rowptr()[size_t(gi) + 1] && !cut; ++l)
          cut = inside[size_t(a.colind()[size_t(l)])] == 0;
        if (!cut) continue;
        for (index_t l = sub.rowptr()[size_t(li)]; l < sub.rowptr()[size_t(li) + 1]; ++l)
          if (sub.colind()[size_t(l)] == li) {
            const auto mag = abs_val(values[size_t(l)]);
            if constexpr (is_complex_v<T>) {
              // Absorbing (impedance) condition: the imaginary part must
              // carry the same sign as the volume dissipation of the
              // time-harmonic operator (-i here, e^{-i omega t} convention).
              values[size_t(l)] -= T(0, opts_.impedance * mag);
            } else {
              values[size_t(l)] += T(opts_.impedance * mag);
            }
          }
      }
    }
    local.factor = std::make_unique<SparseLDLT<T>>(sub, opts_.ordering);
    setup_times[size_t(i)] = timer.seconds();
    factor_nnz[size_t(i)] = local.factor->factor_nnz();
    sub_rows[size_t(i)] = index_t(local.rows.size());
    // Each iteration owns its slot, so the move needs no lock.
    locals_[size_t(i)] = std::move(local);
  };
  if (opts_.parallel) {
    ThreadPool::global().parallel_for(opts_.subdomains, build_one);
  } else {
    for (index_t i = 0; i < opts_.subdomains; ++i) build_one(i);
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  for (index_t i = 0; i < opts_.subdomains; ++i) {
    stats_.setup_seconds_sum += setup_times[size_t(i)];
    stats_.setup_seconds_max = std::max(stats_.setup_seconds_max, setup_times[size_t(i)]);
    stats_.factor_nnz_total += factor_nnz[size_t(i)];
    stats_.largest_subdomain = std::max(stats_.largest_subdomain, sub_rows[size_t(i)]);
  }
}

template <class T>
void SchwarzPreconditioner<T>::apply(MatrixView<const T> r, MatrixView<T> z) {
  BKR_REQUIRE(r.rows() == n_, "r.rows", r.rows(), "n", n_);
  BKR_ASSERT_SHAPE(z, r.rows(), r.cols());
  const index_t p = r.cols();
  z.set_zero();
  const index_t nsub = index_t(locals_.size());
  std::vector<double> times(static_cast<size_t>(nsub), 0.0);
  // Local solves are independent; the scatter-add is serialized per
  // subdomain to keep the (shared-memory) sum deterministic.
  std::vector<DenseMatrix<T>> local_results(static_cast<size_t>(nsub));
  auto solve_one = [&](index_t i) {
    Timer timer;
    const Local& local = locals_[size_t(i)];
    const index_t ni = index_t(local.rows.size());
    DenseMatrix<T> rhs(ni, p);
    for (index_t c = 0; c < p; ++c)
      for (index_t l = 0; l < ni; ++l) rhs(l, c) = r(local.rows[size_t(l)], c);
    local.factor->solve(rhs.view());
    local_results[size_t(i)] = std::move(rhs);
    times[size_t(i)] = timer.seconds();
  };
  if (opts_.parallel) {
    ThreadPool::global().parallel_for(nsub, solve_one);
  } else {
    for (index_t i = 0; i < nsub; ++i) solve_one(i);
  }
  for (index_t i = 0; i < nsub; ++i) {
    const Local& local = locals_[size_t(i)];
    const auto& sol = local_results[size_t(i)];
    for (index_t c = 0; c < p; ++c)
      for (index_t l = 0; l < index_t(local.rows.size()); ++l)
        z(local.rows[size_t(l)], c) +=
            scalar_traits<T>::from_real(real_t<T>(local.weights[size_t(l)])) * sol(l, c);
  }
  double sum = 0, mx = 0;
  for (const double t : times) {
    sum += t;
    mx = std::max(mx, t);
  }
  // Once-per-apply bookkeeping, amortized over nsub local direct solves
  // and uncontended from the (serial) solver loop — cold by design.
  BKR_COLD {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.apply_seconds_sum += sum;
    stats_.apply_seconds_max += mx;
    ++stats_.applications;
  }
}

template <class T>
SchwarzStats SchwarzPreconditioner<T>::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

template class SchwarzPreconditioner<double>;
template class SchwarzPreconditioner<std::complex<double>>;

}  // namespace bkr
