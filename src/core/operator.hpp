// Operator and preconditioner interfaces for the Krylov solvers.
//
// Everything a solver touches is a block operation on p contiguous
// columns: Y = A X (SpMM) and Z = M^{-1} R. This is the layout contract
// that lets pseudo-block and block methods fuse work (paper section V-B)
// and lets direct subdomain solvers run one forward/backward substitution
// for the whole block (section V-B3).
#pragma once

#include "la/dense.hpp"
#include "parallel/comm_model.hpp"
#include "resilience/fault_injector.hpp"
#include "sparse/csr.hpp"
#include "sparse/mixed.hpp"
#include "sparse/sharded.hpp"

namespace bkr {

template <class T>
class LinearOperator {
 public:
  virtual ~LinearOperator() = default;
  [[nodiscard]] virtual index_t n() const = 0;
  // Y = A X for a block of X.cols() columns.
  virtual void apply(MatrixView<const T> x, MatrixView<T> y) const = 0;
};

// CSR-backed operator; records one halo-exchange round per application in
// the communication model (the traffic a distributed SpMM would incur).
// An optional executor (not owned) parallelizes the SpMM row-partitioned;
// the result is bitwise identical to the serial apply at any thread count.
template <class T>
class CsrOperator final : public LinearOperator<T> {
 public:
  explicit CsrOperator(const CsrMatrix<T>& a, CommModel* comm = nullptr,
                       const KernelExecutor* exec = nullptr)
      : a_(&a), comm_(comm), exec_(exec) {}

  [[nodiscard]] index_t n() const override { return a_->rows(); }
  void apply(MatrixView<const T> x, MatrixView<T> y) const override {
    a_->spmm(x, y, exec_);
    if (comm_ != nullptr) comm_->halo_exchange(x.cols() * 8);
  }
  [[nodiscard]] const CsrMatrix<T>& matrix() const { return *a_; }

 private:
  const CsrMatrix<T>* a_;
  CommModel* comm_;
  const KernelExecutor* exec_;
};

// Sharded SPMD operator (DESIGN.md §13): wraps a ShardedCsrOperator and
// records the *executed* communication of every apply — the real gathered
// halo bytes and the real shard-neighbour message count — instead of the
// modeled single-round figure of CsrOperator. An attached FaultInjector is
// wired to the halo hook, so the chaos suite can corrupt halo payloads in
// flight (FaultSite::ShardHalo).
template <class T>
class ShardedOperator final : public LinearOperator<T> {
 public:
  explicit ShardedOperator(const CsrMatrix<T>& a, index_t shards, CommModel* comm = nullptr,
                           const KernelExecutor* exec = nullptr,
                           resilience::FaultInjector* fault = nullptr)
      : shop_(a, shards), comm_(comm), exec_(exec) {
    if (comm_ != nullptr) comm_->set_shards(shop_.shard_count());
    if (fault != nullptr) {
      shop_.set_halo_hook([fault](index_t /*shard*/, MatrixView<T> halo) {
        fault->at(resilience::FaultSite::ShardHalo, halo);
      });
    }
  }

  [[nodiscard]] index_t n() const override { return shop_.n(); }
  void apply(MatrixView<const T> x, MatrixView<T> y) const override {
    shop_.spmm(x, y, exec_);
    if (comm_ != nullptr)
      comm_->halo_exchange(std::int64_t(shop_.halo_entries()) * x.cols() * 8,
                           shop_.halo_messages());
  }
  // The monolithic source matrix: fingerprints (and therefore recycle
  // cache keys) are shard-count invariant.
  [[nodiscard]] const CsrMatrix<T>& matrix() const { return shop_.source(); }
  [[nodiscard]] const ShardedCsrOperator<T>& sharded() const { return shop_; }

 private:
  ShardedCsrOperator<T> shop_;
  CommModel* comm_;
  const KernelExecutor* exec_;
};

// Mixed-precision pilot operator (DESIGN.md §14, ROADMAP item 3): the
// inner-iteration apply streams an fp32-storage mirror of the matrix
// (sparse/mixed.hpp) while the fp64 original stays available through
// apply_full for residual replacement and the final true-residual check.
// Solvers detect the reduced-precision apply by dynamic_cast when
// SolverOptions::mixed_precision is set; with the flag off, handing this
// operator to a solver is valid but converges only to the fp32-limited
// accuracy of the mirror. The tolerance oracle for this component is
// tests/test_mixed.cpp (BKR_TOLERANCE_ORACLE(MixedPrecisionOperator)).
template <class T>
class MixedPrecisionOperator final : public LinearOperator<T> {
 public:
  explicit MixedPrecisionOperator(const CsrMatrix<T>& a, CommModel* comm = nullptr,
                                  const KernelExecutor* exec = nullptr)
      : a_(&a), low_(a), comm_(comm), exec_(exec) {}

  [[nodiscard]] index_t n() const override { return a_->rows(); }
  // Inner apply: fp32 value stream, fp64 accumulation. The halo traffic
  // model charges half the fp64 bytes — the value stream is what a
  // distributed mixed-precision SpMM ships.
  BKR_PRECISION_BOUNDARY void apply(MatrixView<const T> x, MatrixView<T> y) const override {
    low_.spmm(x, y, exec_);
    if (comm_ != nullptr) comm_->halo_exchange(x.cols() * 4);
  }
  // Full-precision apply: residual replacement and the convergence
  // epilogue must measure against A, not its fp32 mirror.
  void apply_full(MatrixView<const T> x, MatrixView<T> y) const {
    a_->spmm(x, y, exec_);
    if (comm_ != nullptr) comm_->halo_exchange(x.cols() * 8);
  }
  [[nodiscard]] const CsrMatrix<T>& matrix() const { return *a_; }
  [[nodiscard]] const MixedCsr<T>& mirror() const { return low_; }

 private:
  const CsrMatrix<T>* a_;
  MixedCsr<T> low_;
  CommModel* comm_;
  const KernelExecutor* exec_;
};

template <class T>
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  [[nodiscard]] virtual index_t n() const = 0;
  // Z = M^{-1} R (block). Non-const: nonlinear preconditioners (Krylov
  // smoothers) carry mutable inner state / statistics.
  virtual void apply(MatrixView<const T> r, MatrixView<T> z) = 0;
  // Variable (nonlinear / nondeterministic) preconditioners force the
  // flexible solver variants (paper section III-C).
  [[nodiscard]] virtual bool is_variable() const { return false; }
};

template <class T>
class IdentityPreconditioner final : public Preconditioner<T> {
 public:
  explicit IdentityPreconditioner(index_t n) : n_(n) {}
  [[nodiscard]] index_t n() const override { return n_; }
  void apply(MatrixView<const T> r, MatrixView<T> z) override { copy_into<T>(r, z); }

 private:
  index_t n_;
};

}  // namespace bkr
