// LGMRES ("Loose GMRES", Baker, Jessup & Manteuffel 2005) — the recycling
// baseline available in PETSc that section IV-C compares GCRO-DR against.
//
// Restarted GMRES whose approximation space is augmented with the last
// `aug` error approximations z_i = x_{restart} - x_{restart-1}. Unlike
// GCRO-DR the augmentation is *not* carried from one linear system to the
// next (the limitation the paper points out in section II-C), so each
// call to lgmres() starts fresh.
#pragma once

#include "core/operator.hpp"
#include "core/solver.hpp"

namespace bkr {

// Single-RHS LGMRES(m, aug): per cycle, m - aug Arnoldi vectors plus up to
// `aug` previous error approximations (PETSc's -ksp_lgmres_augment
// semantics: `restart` counts the total space size). opts.recycle is the
// augmentation count.
template <class T>
SolveStats lgmres(const LinearOperator<T>& a, Preconditioner<T>* m, const std::vector<T>& b,
                  std::vector<T>& x, const SolverOptions& opts, CommModel* comm = nullptr);

extern template SolveStats lgmres<double>(const LinearOperator<double>&, Preconditioner<double>*,
                                          const std::vector<double>&, std::vector<double>&,
                                          const SolverOptions&, CommModel*);
extern template SolveStats lgmres<std::complex<double>>(
    const LinearOperator<std::complex<double>>&, Preconditioner<std::complex<double>>*,
    const std::vector<std::complex<double>>&, std::vector<std::complex<double>>&,
    const SolverOptions&, CommModel*);

}  // namespace bkr
