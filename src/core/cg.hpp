// Preconditioned Conjugate Gradient.
//
// Used two ways: as a solver for SPD systems and — with a fixed, small
// iteration count — as the *nonlinear* multigrid smoother of the paper's
// section IV-C ("-mg_levels_ksp_type cg -mg_levels_ksp_max_it 4"), which
// is what forces the flexible variants FGMRES / FGCRO-DR. A block of p
// RHS runs p independent recurrences with fused kernels (batched SpMM and
// one reduction per dot-product family).
#pragma once

#include "core/operator.hpp"
#include "core/solver.hpp"

namespace bkr {

template <class T>
SolveStats cg(const LinearOperator<T>& a, Preconditioner<T>* m, MatrixView<const T> b,
              MatrixView<T> x, const SolverOptions& opts, CommModel* comm = nullptr);

template <class T>
SolveStats cg(const LinearOperator<T>& a, Preconditioner<T>* m, const std::vector<T>& b,
              std::vector<T>& x, const SolverOptions& opts, CommModel* comm = nullptr) {
  const index_t n = a.n();
  return cg<T>(a, m, MatrixView<const T>(b.data(), n, 1, n), MatrixView<T>(x.data(), n, 1, n),
               opts, comm);
}

extern template SolveStats cg<double>(const LinearOperator<double>&, Preconditioner<double>*,
                                      MatrixView<const double>, MatrixView<double>,
                                      const SolverOptions&, CommModel*);
extern template SolveStats cg<std::complex<double>>(const LinearOperator<std::complex<double>>&,
                                                    Preconditioner<std::complex<double>>*,
                                                    MatrixView<const std::complex<double>>,
                                                    MatrixView<std::complex<double>>,
                                                    const SolverOptions&, CommModel*);

}  // namespace bkr
