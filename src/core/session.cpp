#include "core/session.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace bkr {

namespace {

constexpr const char* kMethodNames[kSessionMethodCount] = {
    "cg", "block_cg", "block_gmres", "pseudo_block_gmres", "lgmres", "gcrodr", "pseudo_gcrodr",
};

// Fold a per-column single-RHS SolveStats into the block-shaped record a
// session solve returns: iteration-like counters take the worst column
// (the block-iteration analogue), work counters and time add up, and the
// per-column diagnostics keep one slot per RHS.
void merge_column(SolveStats& acc, const SolveStats& col) {
  acc.converged = acc.converged && col.converged;
  if (!col.converged) acc.status = col.status;
  acc.recoveries += col.recoveries;
  acc.iterations = std::max(acc.iterations, col.iterations);
  acc.cycles = std::max(acc.cycles, col.cycles);
  acc.reductions += col.reductions;
  acc.operator_applies += col.operator_applies;
  acc.precond_applies += col.precond_applies;
  acc.seconds += col.seconds;
  acc.history.push_back(col.history.empty() ? std::vector<double>{} : col.history.front());
  acc.per_rhs_iterations.push_back(col.iterations);
}

// Attach the session-owned workspace before the config is stored (and
// before gcro_/pgcro_ copy the options), keeping a caller-attached
// workspace if one is already present.
SessionConfig bind_workspace(SessionConfig config, SolverWorkspaceBase* ws) {
  if (config.options.workspace == nullptr) config.options.workspace = ws;
  return config;
}

}  // namespace

const char* session_method_name(SessionMethod m) {
  const int i = static_cast<int>(m);
  return (i >= 0 && i < kSessionMethodCount) ? kMethodNames[i] : "unknown";
}

template <class T>
SolverSession<T>::SolverSession(const CsrMatrix<T>& a, Preconditioner<T>* m, SessionConfig config,
                                CommModel* comm)
    : a_(&a),
      m_(m),
      cfg_(bind_workspace(std::move(config), &ws_)),
      comm_(comm),
      op_(a, comm, cfg_.options.exec),
      gcro_(cfg_.options),
      pgcro_(cfg_.options) {
  BKR_REQUIRE(a.rows() == a.cols() && a.rows() > 0, "rows", a.rows(), "cols", a.cols());
  BKR_REQUIRE(m == nullptr || m->n() == a.rows(), "m.n", m == nullptr ? index_t(0) : m->n(),
              "rows", a.rows());
  BKR_REQUIRE(!session_method_recycles(cfg_.method) || cfg_.options.recycle > 0, "recycle",
              cfg_.options.recycle);
  if (cfg_.options.shards > 0) {
    // The sharded operator attaches its shard count to the comm model; a
    // monolithic session clears any count a previous binding left behind.
    sharded_ = std::make_unique<ShardedOperator<T>>(a, cfg_.options.shards, comm,
                                                    cfg_.options.exec, cfg_.options.fault);
  } else if (comm != nullptr) {
    comm->set_shards(0);
  }
  key_.fingerprint = operator_fingerprint(a);
  key_.method = std::uint32_t(cfg_.method);
  key_.scalar = is_complex_v<T> ? 1 : 0;
  if (cfg_.cache != nullptr && session_method_recycles(cfg_.method)) {
    RecycleSpace space;
    if (cfg_.cache->fetch(key_, &space, cfg_.options.trace)) {
      DenseMatrix<T> u, c;
      if (space.unpack(&u, &c)) {
        if (cfg_.method == SessionMethod::GcroDr) {
          gcro_.install_recycled(std::move(u), std::move(c));
          warm_ = true;
        } else if (space.lanes > 0) {
          pgcro_.install_recycled(std::move(u), std::move(c), space.lanes);
          warm_ = true;
        }
      }
    }
  }
}

template <class T>
SolverSession<T>::~SolverSession() {
  if (cfg_.store_on_destroy) flush();
}

template <class T>
bool SolverSession<T>::flush() {
  if (cfg_.cache == nullptr || !session_method_recycles(cfg_.method)) return false;
  if (cfg_.method == SessionMethod::GcroDr) {
    if (!gcro_.has_recycled_space()) return false;
    cfg_.cache->store(key_, RecycleSpace::pack(gcro_.recycled_u(), gcro_.recycled_c(), 0),
                      cfg_.options.trace);
    return true;
  }
  if (!pgcro_.has_recycled_space()) return false;
  cfg_.cache->store(
      key_,
      RecycleSpace::pack(pgcro_.recycled_u(), pgcro_.recycled_c(), pgcro_.recycle_lanes()),
      cfg_.options.trace);
  return true;
}

template <class T>
SolveStats SolverSession<T>::solve(MatrixView<const T> b, MatrixView<T> x) {
  BKR_REQUIRE(b.rows() == a_->rows() && x.rows() == a_->rows() && b.cols() == x.cols() &&
                  b.cols() > 0,
              "b.rows", b.rows(), "x.rows", x.rows(), "b.cols", b.cols(), "x.cols", x.cols());
  // A session binds one operator for its whole life, so every solve after
  // the first runs the sequence fast path (new_matrix = false); the first
  // solve keeps new_matrix = true so a warm-start space installed from the
  // cache is requalified before use.
  const bool first = stats_.solves == 0;
  SolveStats st;
  switch (cfg_.method) {
    case SessionMethod::Cg:
      st = cg<T>(oper(), m_, b, x, cfg_.options, comm_);
      break;
    case SessionMethod::BlockCg:
      st = block_cg<T>(oper(), m_, b, x, cfg_.options, comm_);
      break;
    case SessionMethod::BlockGmres:
      st = block_gmres<T>(oper(), m_, b, x, cfg_.options, comm_);
      break;
    case SessionMethod::PseudoBlockGmres:
      st = pseudo_block_gmres<T>(oper(), m_, b, x, cfg_.options, comm_);
      break;
    case SessionMethod::Lgmres:
      st = solve_lgmres(b, x);
      break;
    case SessionMethod::GcroDr:
      st = gcro_.solve(oper(), m_, b, x, comm_, first);
      break;
    case SessionMethod::PseudoGcroDr:
      st = pgcro_.solve(oper(), m_, b, x, comm_, first);
      break;
  }
  stats_.accumulate(st);
  return st;
}

// LGMRES has a single-RHS entry point; a session batch runs the columns
// back to back (each column's augmentation space starts fresh — the
// method does not carry state across systems, section II-C).
template <class T>
SolveStats SolverSession<T>::solve_lgmres(MatrixView<const T> b, MatrixView<T> x) {
  const index_t n = a_->rows(), p = b.cols();
  if (p == 1) {
    std::vector<T> bc(b.col(0), b.col(0) + n), xc(x.col(0), x.col(0) + n);
    const SolveStats st = lgmres<T>(oper(), m_, bc, xc, cfg_.options, comm_);
    std::copy(xc.begin(), xc.end(), x.col(0));
    return st;
  }
  SolveStats acc;
  acc.converged = true;
  acc.status = SolveStatus::Converged;
  for (index_t c = 0; c < p; ++c) {
    std::vector<T> bc(b.col(c), b.col(c) + n), xc(x.col(c), x.col(c) + n);
    const SolveStats st = lgmres<T>(oper(), m_, bc, xc, cfg_.options, comm_);
    std::copy(xc.begin(), xc.end(), x.col(c));
    merge_column(acc, st);
  }
  if (acc.converged) acc.status = SolveStatus::Converged;
  return acc;
}

template class SolverSession<double>;
template class SolverSession<std::complex<double>>;

}  // namespace bkr
