#include "core/gcrodr.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/krylov_detail.hpp"
#include "la/eig.hpp"

namespace bkr {

namespace {

// Workspace slot map (mats_ slot kWsProjectScratch is detail::project's).
enum : int { kWsUpdateT = kWsSolverBase, kWsYc };

// One (block) Arnoldi cycle, optionally on the projected operator
// (I - C C^H) op. Collects the raw block Hessenberg (hbar), its
// incremental QR, the least-squares RHS image (ghat), and — when
// projecting — the coupling matrix E = C^H op(V) (fig. 1 line 26).
template <class T>
struct ArnoldiCycle {
  DenseMatrix<T> v;     // n x (max_steps+1)p basis
  DenseMatrix<T> z;     // flexible preconditioned basis (n x max_steps*p)
  DenseMatrix<T> hbar;  // raw block Hessenberg
  DenseMatrix<T> ghat;
  DenseMatrix<T> e;  // kp x max_steps*p
  IncrementalQR<T> qr;
  index_t steps = 0;
  bool hit_tolerance = false;
  bool fatal = false;  // a residual estimate went non-finite mid-cycle
  // Iterate-loop scratch, reset (storage-reusing) at the top of run() so a
  // steady-state cycle touches the allocator nowhere inside the j-loop.
  DenseMatrix<T> ztmp, w, hcol, sblock, ecol;
  std::vector<double> relres;
  obs::IterationEvent ev;

  // Returns the usable Krylov dimension (0 on immediate breakdown).
  index_t run(const LinearOperator<T>& a, Preconditioner<T>* m, PrecondSide side,
              MatrixView<const T> r0, MatrixView<const T> c, index_t max_steps,
              const SolverOptions& opts, const std::vector<real_t<T>>& bnorm, SolveStats& st,
              CommModel* comm, obs::TraceSink* trace, detail::Resilience<T>* rz,
              SolverWorkspace<T>& ws) {
    using Real = real_t<T>;
    const KernelExecutor* const ex = opts.exec;
    const index_t n = r0.rows(), p = r0.cols();
    const index_t kp = c.cols();
    v.resize(n, (max_steps + 1) * p);
    if (side == PrecondSide::Flexible) z.resize(n, max_steps * p);
    hbar.resize((max_steps + 1) * p, max_steps * p);
    ghat.resize((max_steps + 1) * p, p);
    if (kp > 0) e.resize(kp, max_steps * p);
    qr.reshape((max_steps + 1) * p, max_steps * p);
    steps = 0;
    hit_tolerance = false;
    fatal = false;

    ztmp.resize(n, p);
    w.resize(n, p);
    hcol.resize((max_steps + 2) * p, p);
    sblock.resize(p, p);
    ecol.resize(std::max<index_t>(kp, 1), p);
    relres.reserve(static_cast<size_t>(p));
    ev.residuals.reserve(static_cast<size_t>(p));
    if (opts.record_history)
      for (index_t cc = 0; cc < p; ++cc)
        st.history[size_t(cc)].reserve(st.history[size_t(cc)].size() +
                                       static_cast<size_t>(max_steps));

    copy_into<T>(r0, v.block(0, 0, n, p));
    // Rank-deficient residual blocks are tolerated here: breakdown is
    // detected per-column through usable_columns further down the cycle
    // (or repaired by the recovery ladder when it is enabled).
    rz->prior = MatrixView<const T>();
    rz->iteration = st.iterations;
    detail::qr_block<T>(v.block(0, 0, n, p), sblock.view(),  // bkr-lint: allow(unchecked-factor)
                        st, comm, trace, ex, rz);
    ghat.set_zero();
    for (index_t cc = 0; cc < p; ++cc)
      for (index_t rr = 0; rr <= cc; ++rr) ghat(rr, cc) = sblock(rr, cc);

    // Stagnation-triggered early restart: within a cycle the worst-column
    // estimate is monotone non-increasing, so a long flat run means the
    // space is wedged and restarting from the true residual is cheaper.
    Real stag_best = std::numeric_limits<Real>::infinity();
    index_t stag_count = 0;
    index_t j = 0;
    BKR_HOT_LOOP while (j < max_steps && st.iterations < opts.max_iterations) {
      detail::poll_cancel(opts);
      const auto vj = MatrixView<const T>(v.col(j * p), n, p, v.ld());
      MatrixView<T> zj = (side == PrecondSide::Flexible) ? z.block(0, j * p, n, p) : ztmp.view();
      detail::apply_preconditioned<T>(a, m, side, vj, zj, w.view(), st, trace, rz);
      if (kp > 0) {
        // Project against the recycled space: E_j = C^H w, w -= C E_j
        // (one additional reduction per iteration — the 2(m-k) vs m count
        // of section III-D).
        obs::ScopedPhase sp(trace, obs::Phase::OrthoProjection);
        gemm<T>(Trans::C, Trans::N, T(1), c, w.view(), T(0), ecol.block(0, 0, kp, p), ex);
        detail::count_reductions(st, comm, trace, 1, kp * p * 8);
        gemm<T>(Trans::N, Trans::N, T(-1), c, ecol.block(0, 0, kp, p), T(1), w.view(), ex);
        copy_into<T>(ecol.block(0, 0, kp, p), e.block(0, j * p, kp, p));
      }
      hcol.set_zero();
      detail::project<T>(v.view(), (j + 1) * p, w.view(), hcol.view(), opts.ortho, p, st, comm,
                         ws, trace, ex);
      auto vnext = v.block(0, (j + 1) * p, n, p);
      copy_into<T>(w.view(), vnext);
      rz->prior = MatrixView<const T>(v.data(), n, (j + 1) * p, v.ld());
      rz->iteration = st.iterations;
      const bool full_rank = detail::qr_block<T>(vnext, sblock.view(), st, comm, trace, ex, rz);
      for (index_t cc = 0; cc < p; ++cc)
        for (index_t rr = 0; rr <= cc; ++rr) hcol((j + 1) * p + rr, cc) = sblock(rr, cc);
      // Commit the Hessenberg columns even on a (happy) breakdown — the
      // least squares over them may hold the exact solution; the rank-
      // deficient tail is excluded by usable_columns.
      {
        obs::ScopedPhase sp(trace, obs::Phase::SmallDense);
        for (index_t cc = 0; cc < p; ++cc) {
          for (index_t rr = 0; rr < (j + 2) * p; ++rr) hbar(rr, j * p + cc) = hcol(rr, cc);
          qr.add_column(hcol.col(cc), (j + 2) * p);
        }
        qr.apply_qt_range(ghat.view(), j * p);
      }
      ++j;
      ++st.iterations;
      bool all_small = true;
      Real worst(0);
      relres.assign(static_cast<size_t>(p), 0.0);
      for (index_t cc = 0; cc < p; ++cc) {
        const Real est = norm2<T>(p, &ghat(j * p, cc));
        relres[size_t(cc)] = est / bnorm[size_t(cc)];
        worst = std::max(worst, est / bnorm[size_t(cc)]);
        if (!std::isfinite(static_cast<double>(est))) fatal = true;
        if (opts.record_history) st.history[size_t(cc)].push_back(est / bnorm[size_t(cc)]);
        if (est > opts.tol * bnorm[size_t(cc)]) {
          all_small = false;
          ++st.per_rhs_iterations[size_t(cc)];
        }
      }
      if (trace != nullptr) {
        ev.cycle = st.cycles;
        ev.iteration = st.iterations;
        ev.basis_size = (j + 1) * p;
        ev.recycle_dim = kp;
        ev.residuals.assign(relres.begin(), relres.end());
        trace->iteration(ev);
      }
      steps = j;
      if (fatal) break;
      if (all_small) {
        hit_tolerance = true;
        break;
      }
      if (!full_rank) break;
      if (worst < stag_best * (Real(1) - Real(1e-12))) {
        stag_best = worst;
        stag_count = 0;
      } else if (opts.recovery.early_restart && ++stag_count >= opts.recovery.stagnation_window) {
        ++st.recoveries;
        if (trace != nullptr)
          trace->recovery(obs::RecoveryEvent{st.iterations, "cycle", "early-restart", 0});
        break;
      }
    }
    steps = j;
    return detail::usable_columns(qr, steps * p);
  }

  // Least-squares solution Y over the first s Krylov columns.
  [[nodiscard]] DenseMatrix<T> least_squares(index_t s, index_t p) const {
    DenseMatrix<T> y(s, p);
    copy_into<T>(MatrixView<const T>(ghat.data(), s, p, ghat.ld()), y.view());
    const DenseMatrix<T> r = qr.r_matrix();
    trsm_left_upper<T>(MatrixView<const T>(r.data(), s, s, r.ld()), y.view());
    return y;
  }

  // The basis reconstructing solution updates (preconditioned space for
  // flexible, Krylov space otherwise).
  [[nodiscard]] MatrixView<const T> update_basis(PrecondSide side, index_t n, index_t s) const {
    const DenseMatrix<T>& basis = (side == PrecondSide::Flexible) ? z : v;
    return MatrixView<const T>(basis.data(), n, s, basis.ld());
  }
};

// Harmonic Ritz deflation after the first (unprojected) cycle: the k
// smallest harmonic Ritz pairs of the Hessenberg, via the generalized
// form (R^H R) z = theta H_m^H z assembled from the incremental QR
// (fig. 1 line 16 / the paper's eq. 2 reformulation). Restart-only work.
template <class T>
BKR_COLD DenseMatrix<T> first_cycle_deflation_vectors(const ArnoldiCycle<T>& cycle, index_t s,
                                                      index_t k) {
  DenseMatrix<T> r = cycle.qr.r_matrix();  // steps*p square
  DenseMatrix<T> t(s, s);
  gemm<T>(Trans::C, Trans::N, T(1), MatrixView<const T>(r.data(), s, s, r.ld()),
          MatrixView<const T>(r.data(), s, s, r.ld()), T(0), t.view());
  DenseMatrix<T> w(s, s);
  for (index_t j = 0; j < s; ++j)
    for (index_t i = 0; i < s; ++i) w(i, j) = conj(cycle.hbar(j, i));  // H_m^H
  return smallest_gen_eig_vectors<T>(t, w, k);
}

}  // namespace

template <class T>
SolveStats GcroDr<T>::solve(const LinearOperator<T>& a, Preconditioner<T>* m,
                            MatrixView<const T> b, MatrixView<T> x, CommModel* comm,
                            bool new_matrix) {
  using Real = real_t<T>;
  detail::check_solve_entry<T>(a, m, b, x, opts_);
  const index_t n = a.n(), p = b.cols();
  obs::TraceSink* const trace = opts_.trace;
  const KernelExecutor* const ex = opts_.exec;
  PrecondSide side = (m == nullptr) ? PrecondSide::None : opts_.side;
  if (side == PrecondSide::Right && m != nullptr && m->is_variable()) side = PrecondSide::Flexible;
  const index_t mdim = opts_.restart;
  const index_t k = std::min(opts_.recycle, mdim - 1);
  if (k <= 0) throw std::invalid_argument("GcroDr: opts.recycle must be in [1, restart)");
  const index_t kp = k * p;
  const bool matrix_changed = (solves_ == 0) || (new_matrix && !opts_.same_system);
  ++solves_;

  return detail::run_solver_ws<T>("gcrodr", n, p, opts_,
                                  [&](SolveStats& st, SolverWorkspace<T>& ws) {
  detail::Resilience<T> rz{opts_.recovery, opts_.fault};

  std::vector<Real> bnorm(static_cast<size_t>(p)), rnorm(static_cast<size_t>(p));
  DenseMatrix<T> scratch;
  if (side == PrecondSide::Left) {
    scratch.resize(n, p);
    {
      obs::ScopedPhase sp(trace, obs::Phase::Precond);
      m->apply(b, scratch.view());
      ++st.precond_applies;
    }
    detail::norms<T>(scratch.view(), bnorm.data(), st, comm, trace, ex, opts_.shards);
  } else {
    detail::norms<T>(b, bnorm.data(), st, comm, trace, ex, opts_.shards);
  }
  for (auto& v : bnorm)
    if (v == Real(0)) v = Real(1);
  st.history.resize(size_t(p));
  st.per_rhs_iterations.assign(size_t(p), 0);

  DenseMatrix<T> r(n, p);
  detail::residual<T>(a, m, side, b, x, r.view(), scratch, st, trace, &rz);
  detail::norms<T>(r.view(), rnorm.data(), st, comm, trace, ex, opts_.shards);
  if (opts_.record_history)
    for (index_t c = 0; c < p; ++c)
      st.history[size_t(c)].push_back(rnorm[size_t(c)] / bnorm[size_t(c)]);
  if (!detail::finite_norms(bnorm.data(), p) || !detail::finite_norms(rnorm.data(), p)) {
    st.status = SolveStatus::NonFiniteResidual;
    return;
  }
  auto converged = [&] {
    for (index_t c = 0; c < p; ++c)
      if (rnorm[size_t(c)] > opts_.tol * bnorm[size_t(c)]) return false;
    return true;
  };
  if (converged()) {
    st.converged = true;
    return;
  }

  DenseMatrix<T> ztmp(n, p);
  ArnoldiCycle<T> cycle;

  // Apply the (possibly preconditioned) operator to a block (used for the
  // distributed QR of op(U), fig. 1 lines 4-6).
  auto apply_op = [&](MatrixView<const T> in, MatrixView<T> out) {
    if (side == PrecondSide::Right) {
      DenseMatrix<T> tmp(n, in.cols());
      {
        obs::ScopedPhase sp(trace, obs::Phase::Precond);
        m->apply(in, tmp.view());
        ++st.precond_applies;
        detail::fault_hook(&rz, resilience::FaultSite::PrecondApply, tmp.view());
      }
      obs::ScopedPhase sp(trace, obs::Phase::Spmm);
      a.apply(tmp.view(), out);
      ++st.operator_applies;
      detail::fault_hook(&rz, resilience::FaultSite::OperatorApply, out);
    } else if (side == PrecondSide::Left) {
      DenseMatrix<T> tmp(n, in.cols());
      {
        obs::ScopedPhase sp(trace, obs::Phase::Spmm);
        a.apply(in, tmp.view());
        ++st.operator_applies;
        detail::fault_hook(&rz, resilience::FaultSite::OperatorApply, tmp.view());
      }
      obs::ScopedPhase sp(trace, obs::Phase::Precond);
      m->apply(tmp.view(), out);
      ++st.precond_applies;
      detail::fault_hook(&rz, resilience::FaultSite::PrecondApply, out);
    } else {  // None, Flexible: U lives in solution space, apply A directly
      obs::ScopedPhase sp(trace, obs::Phase::Spmm);
      a.apply(in, out);
      ++st.operator_applies;
      detail::fault_hook(&rz, resilience::FaultSite::OperatorApply, out);
    }
  };
  // Add a solution update that lives in Krylov space (Right needs one
  // M^{-1}; everything else is direct).
  auto add_update = [&](MatrixView<const T> t) {
    if (side == PrecondSide::Right) {
      {
        obs::ScopedPhase sp(trace, obs::Phase::Precond);
        m->apply(t, ztmp.view());
        ++st.precond_applies;
        detail::fault_hook(&rz, resilience::FaultSite::PrecondApply, ztmp.view());
      }
      for (index_t c = 0; c < p; ++c) axpy<T>(n, T(1), ztmp.col(c), x.col(c));
    } else {
      for (index_t c = 0; c < p; ++c) axpy<T>(n, T(1), t.col(c), x.col(c));
    }
  };

  if (u_.cols() > 0) {
    if (matrix_changed) {
      // Lines 4-6: [Q, R] = distributed_qr(op(U)); C = Q; U = U R^{-1}.
      c_.resize(n, u_.cols());
      apply_op(u_.view(), c_.view());
      DenseMatrix<T> rq(u_.cols(), u_.cols());
      // A rank-deficient recycled space only degrades the deflation; the
      // subsequent trsm keeps U consistent with whatever rank survived.
      detail::qr_block<T>(c_.view(), rq.view(), st, comm, trace, ex);  // bkr-lint: allow(unchecked-factor)
      trsm_right_upper<T>(rq.view(), u_.view(), ex);
    }
    // Lines 8-9: X += U C^H R, R -= C C^H R (one fused reduction).
    DenseMatrix<T> y0(u_.cols(), p);
    {
      obs::ScopedPhase sp(trace, obs::Phase::Reduction);
      gemm<T>(Trans::C, Trans::N, T(1), c_.view(), r.view(), T(0), y0.view(), ex);
      st.reductions += 1;
      if (comm != nullptr) comm->reduction(u_.cols() * p * 8);
    }
    DenseMatrix<T>& t = ws.mat(kWsUpdateT, n, p);
    gemm<T>(Trans::N, Trans::N, T(1), u_.view(), y0.view(), T(0), t.view(), ex);
    add_update(t.view());
    gemm<T>(Trans::N, Trans::N, T(-1), c_.view(), y0.view(), T(1), r.view(), ex);
    detail::norms<T>(r.view(), rnorm.data(), st, comm, trace, ex, opts_.shards);
    if (!detail::finite_norms(rnorm.data(), p)) {
      st.status = SolveStatus::NonFiniteResidual;
      return;
    }
    if (converged()) {
      st.converged = true;
      return;
    }
  } else {
    // First cycle of the sequence: m steps of plain (block) GMRES
    // (fig. 1 lines 11-20).
    ++st.cycles;
    const index_t s =
        cycle.run(a, m, side, r.view(), MatrixView<const T>(nullptr, 0, 0, 0), mdim, opts_, bnorm,
                  st, comm, trace, &rz, ws);
    if (cycle.fatal) {
      // The least squares over a poisoned Hessenberg would corrupt x;
      // leave the iterate as it was.
      st.status = SolveStatus::NonFiniteResidual;
      return;
    }
    if (s == 0) {
      st.status = SolveStatus::Stagnated;
      return;  // complete stagnation
    }
    const DenseMatrix<T> y = cycle.least_squares(s, p);
    DenseMatrix<T>& t = ws.mat(kWsUpdateT, n, p);
    gemm<T>(Trans::N, Trans::N, T(1), cycle.update_basis(side, n, s), y.view(), T(0), t.view(), ex);
    add_update(t.view());
    {
      // Harmonic Ritz deflation seeds U_k, C_k (lines 16-20).
      obs::ScopedPhase sp(trace, obs::Phase::RestartEig);
      const index_t k_eff = std::min(kp, s);
      DenseMatrix<T> pk;
      try {
        pk = first_cycle_deflation_vectors<T>(cycle, s, k_eff);
      } catch (const EigFailure&) {
        // Harmonic Ritz extraction failed (QR iteration non-convergence
        // or a singular pencil): seed the recycle space with the leading
        // Krylov directions instead of aborting the solve — unless the
        // policy demands a hard failure.
        if (!opts_.recovery.shrink_recycle)
          throw BreakdownError(SolveStatus::EigSolveFailure,
                               "gcrodr: harmonic Ritz extraction failed");
        pk.resize(s, k_eff);
        for (index_t j = 0; j < k_eff; ++j) pk(j, j) = T(1);
        ++st.recoveries;
        if (trace != nullptr)
          trace->recovery(obs::RecoveryEvent{st.iterations, "deflation", "identity-pk", k_eff});
      }
      // [Q, R] = qr(Hbar * Pk); C = V_{m+1} Q; U = basis * Pk * R^{-1}.
      DenseMatrix<T> hp((cycle.steps + 1) * p, k_eff);
      gemm<T>(Trans::N, Trans::N, T(1),
              MatrixView<const T>(cycle.hbar.data(), (cycle.steps + 1) * p, s, cycle.hbar.ld()),
              pk.view(), T(0), hp.view());
      HouseholderQR<T> hq(copy_of(hp));
      const DenseMatrix<T> q = hq.q_thin();
      const DenseMatrix<T> rq = hq.r();
      c_.resize(n, k_eff);
      gemm<T>(Trans::N, Trans::N, T(1),
              MatrixView<const T>(cycle.v.data(), n, (cycle.steps + 1) * p, cycle.v.ld()), q.view(),
              T(0), c_.view(), ex);
      u_.resize(n, k_eff);
      gemm<T>(Trans::N, Trans::N, T(1), cycle.update_basis(side, n, s), pk.view(), T(0), u_.view(), ex);
      trsm_right_upper<T>(rq.view(), u_.view(), ex);
    }
    // Recompute the true residual for the EPS test (line 15).
    detail::residual<T>(a, m, side, b, x, r.view(), scratch, st, trace, &rz);
    detail::norms<T>(r.view(), rnorm.data(), st, comm, trace, ex, opts_.shards);
    if (!detail::finite_norms(rnorm.data(), p)) {
      st.status = SolveStatus::NonFiniteResidual;
      return;
    }
    if (converged()) {
      st.converged = true;
      return;
    }
  }

  // Outer loop (fig. 1 lines 22-39): cycles of m - k projected steps.
  const index_t inner = mdim - k;
  while (st.iterations < opts_.max_iterations) {
    ++st.cycles;
    // C^H R_{j-1} for the solution update (line 28; one reduction — this
    // is "the update of the least squares problem" of section III-D).
    DenseMatrix<T>& yc = ws.mat(kWsYc, u_.cols(), p);
    {
      obs::ScopedPhase sp(trace, obs::Phase::Reduction);
      gemm<T>(Trans::C, Trans::N, T(1), c_.view(), r.view(), T(0), yc.view(), ex);
      st.reductions += 1;
      if (comm != nullptr) comm->reduction(u_.cols() * p * 8);
    }

    const index_t s =
        cycle.run(a, m, side, r.view(), c_.view(), inner, opts_, bnorm, st, comm, trace, &rz, ws);
    if (cycle.fatal) {
      st.status = SolveStatus::NonFiniteResidual;
      break;
    }
    if (s == 0 && !cycle.hit_tolerance) {
      st.status = SolveStatus::Stagnated;
      break;  // stagnation
    }
    if (s > 0) {
      DenseMatrix<T>& t = ws.mat(kWsUpdateT, n, p);
      {
        obs::ScopedPhase sp(trace, obs::Phase::SmallDense);
        const DenseMatrix<T> ym = cycle.least_squares(s, p);
        // Y_k = C^H R_{j-1} - E Y_m (line 28).
        gemm<T>(Trans::N, Trans::N, T(-1),
                MatrixView<const T>(cycle.e.data(), u_.cols(), s, cycle.e.ld()), ym.view(), T(1),
                yc.view());
        gemm<T>(Trans::N, Trans::N, T(1), cycle.update_basis(side, n, s), ym.view(), T(0),
                t.view(), ex);
        gemm<T>(Trans::N, Trans::N, T(1), u_.view(), yc.view(), T(1), t.view(), ex);
      }
      if (side == PrecondSide::Flexible) {
        // U is in solution space; add U Y_k directly, basis part too.
        for (index_t c = 0; c < p; ++c) axpy<T>(n, T(1), t.col(c), x.col(c));
      } else {
        add_update(t.view());
      }
    }
    detail::residual<T>(a, m, side, b, x, r.view(), scratch, st, trace, &rz);
    detail::norms<T>(r.view(), rnorm.data(), st, comm, trace, ex, opts_.shards);
    if (!detail::finite_norms(rnorm.data(), p)) {
      st.status = SolveStatus::NonFiniteResidual;
      break;
    }
    if (converged()) {
      st.converged = true;
      break;
    }
    if (s == 0) {
      st.status = SolveStatus::Stagnated;
      break;
    }

    if (matrix_changed) {
      // Lines 31-38: refresh the recycled space through the generalized
      // eigenproblem T z = theta W z.
      const index_t kcur = u_.cols();
      const index_t vcols = (cycle.steps + 1) * p;  // columns of the V basis
      const index_t rows = kcur + vcols;
      const index_t cols = kcur + s;
      // Scale U columns to unit norm (line 32; one fused reduction).
      // The norms run before the RestartEig scope opens so phase scopes
      // stay non-nested.
      std::vector<Real> unorm(static_cast<size_t>(kcur));
      detail::norms<T>(u_.view(), unorm.data(), st, comm, trace, ex, opts_.shards);
      obs::ScopedPhase sp_eig(trace, obs::Phase::RestartEig);
      for (index_t c = 0; c < kcur; ++c) {
        const T inv = scalar_traits<T>::from_real(Real(1) / std::max(unorm[size_t(c)], Real(1e-300)));
        scal<T>(n, inv, u_.col(c));
      }
      // G = [[D_k, E], [0, Hbar]] with D_k = diag(1/||u_c||) so that
      // op([U_s, basis]) = [C, V] G.
      DenseMatrix<T> g(rows, cols);
      for (index_t c = 0; c < kcur; ++c)
        g(c, c) = scalar_traits<T>::from_real(Real(1) / std::max(unorm[size_t(c)], Real(1e-300)));
      for (index_t j = 0; j < s; ++j) {
        for (index_t i = 0; i < kcur; ++i) g(i, kcur + j) = cycle.e(i, j);
        for (index_t i = 0; i < vcols; ++i) g(kcur + i, kcur + j) = cycle.hbar(i, j);
      }
      DenseMatrix<T> tmat(cols, cols);
      gemm<T>(Trans::C, Trans::N, T(1), g.view(), g.view(), T(0), tmat.view());
      DenseMatrix<T> wmat(cols, cols);
      if (opts_.strategy == RecycleStrategy::B) {
        // Eq. 3b: W = G^H [I; 0] — the first `cols` rows of G, conjugated.
        for (index_t j = 0; j < cols; ++j)
          for (index_t i = 0; i < cols; ++i) wmat(i, j) = conj(g(j, i));
      } else {
        // Eq. 3a: W = G^H [[C^H U, 0], [V^H U, I]]; the [C V]^H U block
        // costs one extra global reduction.
        DenseMatrix<T> inner_mat(rows, cols);
        DenseMatrix<T> cu(rows, kcur);
        // [C V]^H U in two gemms sharing one reduction.
        gemm<T>(Trans::C, Trans::N, T(1), c_.view(), u_.view(), T(0),
                cu.block(0, 0, kcur, kcur), ex);
        gemm<T>(Trans::C, Trans::N, T(1),
                MatrixView<const T>(cycle.v.data(), n, vcols, cycle.v.ld()), u_.view(), T(0),
                cu.block(kcur, 0, vcols, kcur), ex);
        st.reductions += 1;
        if (comm != nullptr) comm->reduction(rows * kcur * 8);
        // Count-only: the time already lands in the enclosing RestartEig.
        if (trace != nullptr) trace->phase(obs::Phase::Reduction, 0.0, 1);
        copy_into<T>(MatrixView<const T>(cu.data(), rows, kcur, cu.ld()),
                     inner_mat.block(0, 0, rows, kcur));
        for (index_t j = 0; j < s; ++j) inner_mat(kcur + j, kcur + j) = T(1);
        gemm<T>(Trans::C, Trans::N, T(1), g.view(), inner_mat.view(), T(0), wmat.view());
      }
      DenseMatrix<T> pk;
      try {
        pk = smallest_gen_eig_vectors<T>(tmat, wmat, std::min(kp, cols));
      } catch (const EigFailure&) {
        // Deflation pencil failed to converge: fall back to retaining the
        // leading columns of [U, basis] (still re-orthonormalized below)
        // rather than crashing a solve that is otherwise progressing —
        // unless the policy demands a hard failure.
        if (!opts_.recovery.shrink_recycle)
          throw BreakdownError(SolveStatus::EigSolveFailure,
                               "gcrodr: deflation pencil eigensolve failed");
        const index_t kfall = std::min(kp, cols);
        pk.resize(cols, kfall);
        for (index_t j = 0; j < kfall; ++j) pk(j, j) = T(1);
        ++st.recoveries;
        if (trace != nullptr)
          trace->recovery(obs::RecoveryEvent{st.iterations, "deflation", "identity-pk", kfall});
      }
      const index_t knew = pk.cols();
      // [Q, R] = qr(G Pk); C = [C V] Q; U = [U basis] Pk R^{-1}.
      DenseMatrix<T> gp(rows, knew);
      gemm<T>(Trans::N, Trans::N, T(1), g.view(), pk.view(), T(0), gp.view());
      HouseholderQR<T> hq(copy_of(gp));
      const DenseMatrix<T> q = hq.q_thin();
      const DenseMatrix<T> rq = hq.r();
      DenseMatrix<T> cnew(n, knew);
      DenseMatrix<T> cv(n, rows);
      copy_into<T>(c_.view(), cv.block(0, 0, n, kcur));
      copy_into<T>(MatrixView<const T>(cycle.v.data(), n, vcols, cycle.v.ld()),
                   cv.block(0, kcur, n, vcols));
      gemm<T>(Trans::N, Trans::N, T(1), cv.view(), q.view(), T(0), cnew.view(), ex);
      DenseMatrix<T> ub(n, cols);
      copy_into<T>(u_.view(), ub.block(0, 0, n, kcur));
      copy_into<T>(cycle.update_basis(side, n, s), ub.block(0, kcur, n, s));
      DenseMatrix<T> unew(n, knew);
      gemm<T>(Trans::N, Trans::N, T(1), ub.view(), pk.view(), T(0), unew.view(), ex);
      trsm_right_upper<T>(rq.view(), unew.view(), ex);
      c_ = std::move(cnew);
      u_ = std::move(unew);
    }
  }
  detail::final_residual_check<T>(a, b, x, opts_, st, comm);
  });
}

template <class T>
void GcroDr<T>::install_recycled(DenseMatrix<T> u, DenseMatrix<T> c) {
  BKR_REQUIRE(u.rows() > 0 && u.cols() > 0 && u.rows() == c.rows() && u.cols() == c.cols(),
              "u.rows", u.rows(), "u.cols", u.cols(), "c.rows", c.rows(), "c.cols", c.cols());
  u_ = std::move(u);
  c_ = std::move(c);
  // solves_ stays untouched: the first solve still sees matrix_changed and
  // requalifies the seeded space through the distributed QR.
}

template class GcroDr<double>;
template class GcroDr<std::complex<double>>;

}  // namespace bkr
