// Pseudo-block GCRO-DR: p independent single-vector GCRO-DR instances
// advanced in lockstep with fused kernels (one SpMM / one batched
// reduction per global step), each lane owning its own k-column recycled
// subspace. This is the method of the paper's fig. 8 alternatives 5-6.
#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/gcrodr.hpp"
#include "core/krylov_detail.hpp"
#include "la/eig.hpp"

namespace bkr {

namespace {

// Workspace slot map (mats_ slot kWsProjectScratch is detail::project's).
enum : int { kWsVin = kWsSolverBase, kWsUpdateT };  // mats_
enum : int { kWsHcol = kWsSolverBase };             // vecs_

// Per-RHS lane of a fused GCRO-DR run (single-vector, contiguous storage).
template <class T>
struct Lane {
  using Real = real_t<T>;

  DenseMatrix<T> v;     // n x (m+1) Arnoldi basis
  DenseMatrix<T> z;     // flexible basis
  DenseMatrix<T> hbar;  // (m+1) x m
  DenseMatrix<T> e;     // k x m coupling with the recycled space
  std::vector<T> ghat;
  IncrementalQR<T> qr;
  DenseMatrix<T> u, c;  // n x k_l recycled space (persists across solves)

  index_t steps = 0;    // steps completed in the current cycle
  bool active = false;  // still iterating in the current cycle
  bool converged = false;
  Real bnorm = Real(1), rnorm = Real(0);
  std::vector<T> yc;  // C^H r at cycle start

  void start_cycle(index_t n, index_t max_steps, PrecondSide side, index_t k) {
    v.resize(n, max_steps + 1);
    if (side == PrecondSide::Flexible) z.resize(n, max_steps);
    hbar.resize(max_steps + 1, max_steps);
    if (k > 0) e.resize(k, max_steps);
    ghat.assign(static_cast<size_t>(max_steps) + 1, T(0));
    qr.reshape(max_steps + 1, max_steps);
    steps = 0;
  }

  // Least squares y over the first s columns.
  [[nodiscard]] std::vector<T> least_squares(index_t s) const {
    std::vector<T> y(ghat.begin(), ghat.begin() + s);
    for (index_t i = s - 1; i >= 0; --i) {
      T acc = y[size_t(i)];
      for (index_t cc = i + 1; cc < s; ++cc) acc -= qr.r(i, cc) * y[size_t(cc)];
      y[size_t(i)] = acc / qr.r(i, i);
    }
    return y;
  }

  [[nodiscard]] const DenseMatrix<T>& update_basis(PrecondSide side) const {
    return (side == PrecondSide::Flexible) ? z : v;
  }
};

// Refresh (or seed) a lane's recycled space from the cycle data.
// `with_projection` distinguishes the first cycle (harmonic Ritz of the
// plain Hessenberg) from later cycles (generalized pencil with the
// coupling block E and the scaled U).
template <class T>
BKR_COLD void refresh_lane_recycle(Lane<T>& lane, index_t n, index_t k, index_t s,
                                   PrecondSide side, RecycleStrategy strategy,
                                   bool with_projection, const KernelExecutor* ex,
                                   const RecoveryPolicy& policy, SolveStats& st,
                                   obs::TraceSink* trace) {
  using Real = real_t<T>;
  if (s <= 0) return;
  const index_t vcols = lane.steps + 1;
  const index_t kcur = with_projection ? lane.u.cols() : 0;
  const index_t rows = kcur + vcols;
  const index_t cols = kcur + s;
  // G = [[D_k, E], [0, Hbar]] (first cycle: G = Hbar).
  DenseMatrix<T> g(rows, cols);
  if (with_projection) {
    for (index_t cc = 0; cc < kcur; ++cc) {
      const Real un = std::max(norm2<T>(n, lane.u.col(cc), ex), Real(1e-300));
      scal<T>(n, scalar_traits<T>::from_real(Real(1) / un), lane.u.col(cc));
      g(cc, cc) = scalar_traits<T>::from_real(Real(1) / un);
    }
    for (index_t j = 0; j < s; ++j) {
      for (index_t i = 0; i < kcur; ++i) g(i, kcur + j) = lane.e(i, j);
      for (index_t i = 0; i < vcols; ++i) g(kcur + i, kcur + j) = lane.hbar(i, j);
    }
  } else {
    for (index_t j = 0; j < s; ++j)
      for (index_t i = 0; i < vcols; ++i) g(i, j) = lane.hbar(i, j);
  }
  DenseMatrix<T> pk;
  const index_t knew = std::min(k, cols);
  if (!with_projection) {
    // Harmonic Ritz: (R^H R) z = theta Hm^H z.
    const DenseMatrix<T> r = lane.qr.r_matrix();
    DenseMatrix<T> tmat(s, s);
    gemm<T>(Trans::C, Trans::N, T(1), MatrixView<const T>(r.data(), s, s, r.ld()),
            MatrixView<const T>(r.data(), s, s, r.ld()), T(0), tmat.view());
    DenseMatrix<T> wmat(s, s);
    for (index_t j = 0; j < s; ++j)
      for (index_t i = 0; i < s; ++i) wmat(i, j) = conj(lane.hbar(j, i));
    try {
      pk = smallest_gen_eig_vectors<T>(tmat, wmat, knew);
    } catch (const EigFailure&) {
      // Harmonic Ritz extraction failed: seed with leading Krylov
      // directions (see the block GCRO-DR fallback) — unless the policy
      // demands a hard failure.
      if (!policy.shrink_recycle)
        throw BreakdownError(SolveStatus::EigSolveFailure,
                             "pseudo_gcrodr: harmonic Ritz extraction failed");
      pk.resize(s, knew);
      for (index_t j = 0; j < knew; ++j) pk(j, j) = T(1);
      ++st.recoveries;
      if (trace != nullptr)
        trace->recovery(obs::RecoveryEvent{st.iterations, "deflation", "identity-pk", knew});
    }
  } else {
    DenseMatrix<T> tmat(cols, cols);
    gemm<T>(Trans::C, Trans::N, T(1), g.view(), g.view(), T(0), tmat.view());
    DenseMatrix<T> wmat(cols, cols);
    if (strategy == RecycleStrategy::B) {
      for (index_t j = 0; j < cols; ++j)
        for (index_t i = 0; i < cols; ++i) wmat(i, j) = conj(g(j, i));
    } else {
      DenseMatrix<T> inner_mat(rows, cols);
      // [C V]^H U (k columns).
      for (index_t cc = 0; cc < kcur; ++cc) {
        for (index_t i = 0; i < kcur; ++i)
          inner_mat(i, cc) = dot<T>(n, lane.c.col(i), lane.u.col(cc), ex);
        for (index_t i = 0; i < vcols; ++i)
          inner_mat(kcur + i, cc) = dot<T>(n, lane.v.col(i), lane.u.col(cc), ex);
      }
      for (index_t j = 0; j < s; ++j) inner_mat(kcur + j, kcur + j) = T(1);
      gemm<T>(Trans::C, Trans::N, T(1), g.view(), inner_mat.view(), T(0), wmat.view());
    }
    try {
      pk = smallest_gen_eig_vectors<T>(tmat, wmat, knew);
    } catch (const EigFailure&) {
      // Deflation pencil failed: keep the leading columns of [U, basis],
      // re-orthonormalized below — unless the policy demands a hard
      // failure.
      if (!policy.shrink_recycle)
        throw BreakdownError(SolveStatus::EigSolveFailure,
                             "pseudo_gcrodr: deflation pencil eigensolve failed");
      pk.resize(cols, knew);
      for (index_t j = 0; j < knew; ++j) pk(j, j) = T(1);
      ++st.recoveries;
      if (trace != nullptr)
        trace->recovery(obs::RecoveryEvent{st.iterations, "deflation", "identity-pk", knew});
    }
  }
  // [Q, R] = qr(G Pk); C = [C V] Q; U = [U basis] Pk R^{-1}.
  DenseMatrix<T> gp(rows, knew);
  gemm<T>(Trans::N, Trans::N, T(1), g.view(), pk.view(), T(0), gp.view());
  HouseholderQR<T> hq(copy_of(gp));
  const DenseMatrix<T> q = hq.q_thin();
  const DenseMatrix<T> rq = hq.r();
  DenseMatrix<T> cv(n, rows);
  if (kcur > 0) copy_into<T>(lane.c.view(), cv.block(0, 0, n, kcur));
  copy_into<T>(MatrixView<const T>(lane.v.data(), n, vcols, lane.v.ld()),
               cv.block(0, kcur, n, vcols));
  DenseMatrix<T> cnew(n, knew);
  gemm<T>(Trans::N, Trans::N, T(1), cv.view(), q.view(), T(0), cnew.view(), ex);
  DenseMatrix<T> ub(n, cols);
  if (kcur > 0) copy_into<T>(lane.u.view(), ub.block(0, 0, n, kcur));
  copy_into<T>(MatrixView<const T>(lane.update_basis(side).data(), n, s,
                                   lane.update_basis(side).ld()),
               ub.block(0, kcur, n, s));
  DenseMatrix<T> unew(n, knew);
  gemm<T>(Trans::N, Trans::N, T(1), ub.view(), pk.view(), T(0), unew.view(), ex);
  trsm_right_upper<T>(rq.view(), unew.view(), ex);
  lane.c = std::move(cnew);
  lane.u = std::move(unew);
}

}  // namespace

template <class T>
SolveStats PseudoGcroDr<T>::solve(const LinearOperator<T>& a, Preconditioner<T>* m,
                                  MatrixView<const T> b, MatrixView<T> x, CommModel* comm,
                                  bool new_matrix) {
  using Real = real_t<T>;
  detail::check_solve_entry<T>(a, m, b, x, opts_);
  const index_t n = a.n(), p = b.cols();
  obs::TraceSink* const trace = opts_.trace;
  const KernelExecutor* const ex = opts_.exec;
  PrecondSide side = (m == nullptr) ? PrecondSide::None : opts_.side;
  if (side == PrecondSide::Right && m != nullptr && m->is_variable()) side = PrecondSide::Flexible;
  const index_t mdim = opts_.restart;
  const index_t k = std::min(opts_.recycle, mdim - 1);
  if (k <= 0) throw std::invalid_argument("PseudoGcroDr: opts.recycle must be in [1, restart)");
  const bool matrix_changed = (solves_ == 0) || (new_matrix && !opts_.same_system);
  const bool had_recycle = u_.cols() > 0 && lanes_ == p;
  ++solves_;

  return detail::run_solver_ws<T>("pseudo_gcrodr", n, p, opts_,
                                  [&](SolveStats& st, SolverWorkspace<T>& ws) {
  detail::Resilience<T> rz{opts_.recovery, opts_.fault};

  std::vector<Lane<T>> lanes(static_cast<size_t>(p));
  if (had_recycle) {
    for (index_t l = 0; l < p; ++l) {
      lanes[size_t(l)].u.resize(n, k);
      lanes[size_t(l)].c.resize(n, k);
      for (index_t i = 0; i < k; ++i) {
        std::copy(u_.col(i * p + l), u_.col(i * p + l) + n, lanes[size_t(l)].u.col(i));
        std::copy(c_.col(i * p + l), c_.col(i * p + l) + n, lanes[size_t(l)].c.col(i));
      }
    }
  }

  st.history.resize(size_t(p));
  st.per_rhs_iterations.assign(size_t(p), 0);
  DenseMatrix<T> scratch;
  std::vector<Real> bnorm(static_cast<size_t>(p)), rnorm(static_cast<size_t>(p));
  if (side == PrecondSide::Left) {
    scratch.resize(n, p);
    {
      obs::ScopedPhase sp(trace, obs::Phase::Precond);
      m->apply(b, scratch.view());
      ++st.precond_applies;
    }
    detail::norms<T>(scratch.view(), bnorm.data(), st, comm, trace, ex, opts_.shards);
  } else {
    detail::norms<T>(b, bnorm.data(), st, comm, trace, ex, opts_.shards);
  }
  for (auto& v : bnorm)
    if (v == Real(0)) v = Real(1);

  DenseMatrix<T> r(n, p), w(n, p), ztmp(n, p);
  detail::residual<T>(a, m, side, b, x, r.view(), scratch, st, trace, &rz);
  detail::norms<T>(r.view(), rnorm.data(), st, comm, trace, ex, opts_.shards);
  for (index_t l = 0; l < p; ++l) {
    lanes[size_t(l)].bnorm = bnorm[size_t(l)];
    lanes[size_t(l)].rnorm = rnorm[size_t(l)];
    lanes[size_t(l)].converged = rnorm[size_t(l)] <= opts_.tol * bnorm[size_t(l)];
    if (opts_.record_history)
      st.history[size_t(l)].push_back(rnorm[size_t(l)] / bnorm[size_t(l)]);
  }
  if (!detail::finite_norms(bnorm.data(), p) || !detail::finite_norms(rnorm.data(), p)) {
    st.status = SolveStatus::NonFiniteResidual;
    return;
  }
  auto all_converged = [&] {
    for (const auto& lane : lanes)
      if (!lane.converged) return false;
    return true;
  };

  // Batched op([every lane's U]) for the re-orthonormalization and the
  // X += U C^H r correction (fig. 1 lines 3-9, per lane, fused).
  if (had_recycle) {
    if (matrix_changed) {
      DenseMatrix<T> uall(n, k * p), wall(n, k * p);
      for (index_t l = 0; l < p; ++l)
        copy_into<T>(lanes[size_t(l)].u.view(), uall.block(0, l * k, n, k));
      if (side == PrecondSide::Right) {
        DenseMatrix<T> tmp(n, k * p);
        {
          obs::ScopedPhase sp(trace, obs::Phase::Precond);
          m->apply(uall.view(), tmp.view());
          ++st.precond_applies;
          detail::fault_hook(&rz, resilience::FaultSite::PrecondApply, tmp.view());
        }
        obs::ScopedPhase sp(trace, obs::Phase::Spmm);
        a.apply(tmp.view(), wall.view());
        ++st.operator_applies;
        detail::fault_hook(&rz, resilience::FaultSite::OperatorApply, wall.view());
      } else if (side == PrecondSide::Left) {
        DenseMatrix<T> tmp(n, k * p);
        {
          obs::ScopedPhase sp(trace, obs::Phase::Spmm);
          a.apply(uall.view(), tmp.view());
          ++st.operator_applies;
          detail::fault_hook(&rz, resilience::FaultSite::OperatorApply, tmp.view());
        }
        obs::ScopedPhase sp(trace, obs::Phase::Precond);
        m->apply(tmp.view(), wall.view());
        ++st.precond_applies;
        detail::fault_hook(&rz, resilience::FaultSite::PrecondApply, wall.view());
      } else {
        obs::ScopedPhase sp(trace, obs::Phase::Spmm);
        a.apply(uall.view(), wall.view());
        ++st.operator_applies;
        detail::fault_hook(&rz, resilience::FaultSite::OperatorApply, wall.view());
      }
      // Per-lane CholQR of its k columns (one fused reduction).
      obs::ScopedPhase sp(trace, obs::Phase::OrthoNormalization);
      st.reductions += 1;
      if (comm != nullptr) comm->reduction(p * k * k * 8);
      if (trace != nullptr) trace->phase(obs::Phase::Reduction, 0.0, 1);
      for (index_t l = 0; l < p; ++l) {
        auto wl = wall.block(0, l * k, n, k);
        DenseMatrix<T> rq(k, k);
        if (!cholqr<T>(wl, rq.view(), ex)) householder_tsqr<T>(wl, rq.view());
        copy_into<T>(MatrixView<const T>(wl.data(), n, k, wl.ld()), lanes[size_t(l)].c.view());
        trsm_right_upper<T>(rq.view(), lanes[size_t(l)].u.view(), ex);
      }
    }
    // X += U C^H r; r -= C C^H r (fused dots: one reduction).
    DenseMatrix<T> t(n, p);
    t.set_zero();
    {
      obs::ScopedPhase sp(trace, obs::Phase::Reduction);
      st.reductions += 1;
      if (comm != nullptr) comm->reduction(p * k * 8);
      for (index_t l = 0; l < p; ++l) {
        auto& lane = lanes[size_t(l)];
        if (lane.converged) continue;
        std::vector<T> y0(static_cast<size_t>(k));
        for (index_t i = 0; i < k; ++i) y0[size_t(i)] = dot<T>(n, lane.c.col(i), r.col(l), ex);
        for (index_t i = 0; i < k; ++i) {
          axpy<T>(n, y0[size_t(i)], lane.u.col(i), t.col(l));
          axpy<T>(n, -y0[size_t(i)], lane.c.col(i), r.col(l));
        }
      }
    }
    if (side == PrecondSide::Right) {
      {
        obs::ScopedPhase sp(trace, obs::Phase::Precond);
        m->apply(t.view(), ztmp.view());
        ++st.precond_applies;
        detail::fault_hook(&rz, resilience::FaultSite::PrecondApply, ztmp.view());
      }
      for (index_t l = 0; l < p; ++l) axpy<T>(n, T(1), ztmp.col(l), x.col(l));
    } else {
      for (index_t l = 0; l < p; ++l) axpy<T>(n, T(1), t.col(l), x.col(l));
    }
    // The projection changed the residual: refresh norms and flags.
    detail::norms<T>(r.view(), rnorm.data(), st, comm, trace, ex, opts_.shards);
    if (!detail::finite_norms(rnorm.data(), p)) {
      st.status = SolveStatus::NonFiniteResidual;
      return;
    }
    for (index_t l = 0; l < p; ++l) {
      lanes[size_t(l)].rnorm = rnorm[size_t(l)];
      lanes[size_t(l)].converged = rnorm[size_t(l)] <= opts_.tol * bnorm[size_t(l)];
    }
  }

  // Main loop. The first pass of a fresh sequence runs m unprojected
  // steps (and seeds the recycled spaces); every later pass runs m - k
  // projected steps. Iterate-loop scratch comes from workspace slots so
  // steady-state steps stay off the allocator.
  DenseMatrix<T>& vin = ws.mat(kWsVin, n, p);
  obs::IterationEvent ev;
  if (trace != nullptr) ev.residuals.reserve(static_cast<size_t>(p));
  bool first_cycle = !had_recycle;
  bool fatal = false;
  while (!all_converged() && st.iterations < opts_.max_iterations) {
    ++st.cycles;
    const index_t max_steps = first_cycle ? mdim : (mdim - k);
    const bool project = !first_cycle;
    // Cycle start: normalize each lane's residual (norms already known
    // from the last batched residual evaluation) and C^H r.
    {
      obs::ScopedPhase sp(trace, obs::Phase::Reduction);
      for (index_t l = 0; l < p; ++l) {
        auto& lane = lanes[size_t(l)];
        lane.active = !lane.converged;
        lane.start_cycle(n, max_steps, side, project ? lane.u.cols() : 0);
        if (!lane.active) continue;
        const Real beta = lane.rnorm;
        const T inv = scalar_traits<T>::from_real(Real(1) / beta);
        for (index_t i = 0; i < n; ++i) lane.v(i, 0) = r(i, l) * inv;
        lane.ghat[0] = scalar_traits<T>::from_real(beta);
        if (project) {
          lane.yc.assign(static_cast<size_t>(lane.u.cols()), T(0));
          for (index_t i = 0; i < lane.u.cols(); ++i)
            lane.yc[size_t(i)] = dot<T>(n, lane.c.col(i), r.col(l), ex);
        }
      }
      st.reductions += 1;  // fused residual QR (norms) / C^H r
      if (comm != nullptr) comm->reduction(p * 8);
    }
    if (opts_.record_history)
      for (index_t l = 0; l < p; ++l)
        st.history[size_t(l)].reserve(st.history[size_t(l)].size() +
                                      static_cast<size_t>(max_steps));

    index_t j = 0;
    BKR_HOT_LOOP while (j < max_steps && st.iterations < opts_.max_iterations) {
      detail::poll_cancel(opts_);
      // Assemble the batched operator input (zeroing locked lanes so inner
      // block preconditioners never see stale data).
      vin.set_zero();
      for (index_t l = 0; l < p; ++l)
        if (lanes[size_t(l)].active)
          std::copy(lanes[size_t(l)].v.col(j), lanes[size_t(l)].v.col(j) + n, vin.col(l));
      MatrixView<T> zj = ztmp.view();
      detail::apply_preconditioned<T>(a, m, side, vin.view(), zj, w.view(), st, trace, &rz);
      index_t nactive = 0;
      for (const auto& lane : lanes) nactive += lane.active ? 1 : 0;
      if (nactive == 0) break;
      // Projection against each lane's C (one fused reduction).
      if (project) {
        obs::ScopedPhase sp(trace, obs::Phase::OrthoProjection);
        st.reductions += 1;
        if (comm != nullptr) comm->reduction(nactive * k * 8);
        if (trace != nullptr) trace->phase(obs::Phase::Reduction, 0.0, 1);
        for (index_t l = 0; l < p; ++l) {
          auto& lane = lanes[size_t(l)];
          if (!lane.active) continue;
          for (index_t i = 0; i < lane.u.cols(); ++i) {
            const T ei = dot<T>(n, lane.c.col(i), w.col(l), ex);
            lane.e(i, j) = ei;
            axpy<T>(n, -ei, lane.c.col(i), w.col(l));
          }
        }
      }
      // Fused CGS projection + normalization (2 reductions). The per-lane
      // work interleaves both, so the span is attributed to the
      // projection phase and the reduction counts ride as count-only.
      st.reductions += 2;
      if (comm != nullptr) {
        comm->reduction(nactive * (j + 1) * 8);
        comm->reduction(nactive * 8);
      }
      if (trace != nullptr) trace->phase(obs::Phase::Reduction, 0.0, 2);
      {
        obs::ScopedPhase sp(trace, obs::Phase::OrthoProjection);
        detail::fault_hook(&rz, resilience::FaultSite::Orthogonalization, w.view());
        for (index_t l = 0; l < p; ++l) {
          auto& lane = lanes[size_t(l)];
          if (!lane.active) continue;
          if (side == PrecondSide::Flexible) std::copy(zj.col(l), zj.col(l) + n, lane.z.col(j));
          std::vector<T>& hcol = ws.vec(kWsHcol, max_steps + 1);
          for (index_t i = 0; i <= j; ++i) hcol[size_t(i)] = dot<T>(n, lane.v.col(i), w.col(l), ex);
          for (index_t i = 0; i <= j; ++i) axpy<T>(n, -hcol[size_t(i)], lane.v.col(i), w.col(l));
          if (opts_.ortho == Ortho::Cgs2) {
            for (index_t i = 0; i <= j; ++i) {
              const T h2 = dot<T>(n, lane.v.col(i), w.col(l), ex);
              hcol[size_t(i)] += h2;
              axpy<T>(n, -h2, lane.v.col(i), w.col(l));
            }
          }
          const Real hn = norm2<T>(n, w.col(l), ex);
          hcol[size_t(j) + 1] = scalar_traits<T>::from_real(hn);
          if (hn > Real(0)) {
            const T inv = scalar_traits<T>::from_real(Real(1) / hn);
            for (index_t i = 0; i < n; ++i) lane.v(i, j + 1) = w(i, l) * inv;
          }
          for (index_t i = 0; i < j + 2; ++i) lane.hbar(i, j) = hcol[size_t(i)];
          lane.qr.add_column(hcol.data(), j + 2);
          lane.qr.apply_qt_range(
              MatrixView<T>(lane.ghat.data(), index_t(lane.ghat.size()), 1,
                            index_t(lane.ghat.size())),
              j);
          lane.steps = j + 1;
          const Real est = abs_val(lane.ghat[size_t(j) + 1]);
          lane.rnorm = est;
          if (!std::isfinite(static_cast<double>(est)) ||
              !std::isfinite(static_cast<double>(hn))) {
            fatal = true;
            lane.active = false;
          }
          if (opts_.record_history) st.history[size_t(l)].push_back(est / lane.bnorm);
          if (est > opts_.tol * lane.bnorm) ++st.per_rhs_iterations[size_t(l)];
          if (est <= opts_.tol * lane.bnorm || hn == Real(0)) lane.active = false;
        }
      }
      ++j;
      ++st.iterations;
      if (trace != nullptr) {
        ev.cycle = st.cycles;
        ev.iteration = st.iterations;
        ev.basis_size = j + 1;
        ev.recycle_dim = project ? k : 0;
        ev.residuals.resize(size_t(p));
        for (index_t l = 0; l < p; ++l)
          ev.residuals[size_t(l)] = lanes[size_t(l)].rnorm / lanes[size_t(l)].bnorm;
        trace->iteration(ev);
      }
      if (fatal) break;
      bool any = false;
      for (const auto& lane : lanes) any |= lane.active;
      if (!any) break;
    }
    if (fatal) {
      // A poisoned lane would corrupt the shared update and the recycle
      // refresh: stop with the last consistent iterate and recycle data.
      st.status = SolveStatus::NonFiniteResidual;
      break;
    }

    // Per-lane least squares, solution update, recycle refresh.
    DenseMatrix<T>& t = ws.mat(kWsUpdateT, n, p);
    bool progress = false;
    {
      obs::ScopedPhase sp(trace, obs::Phase::SmallDense);
      for (index_t l = 0; l < p; ++l) {
        auto& lane = lanes[size_t(l)];
        if (lane.converged || lane.steps == 0) continue;
        const index_t s = detail::usable_columns(lane.qr, lane.steps);
        if (s == 0) continue;
        progress = true;
        const std::vector<T> y = lane.least_squares(s);
        const auto& basis = lane.update_basis(side);
        for (index_t i = 0; i < s; ++i) axpy<T>(n, y[size_t(i)], basis.col(i), t.col(l));
        if (project) {
          // Y_k = C^H r - E y (fig. 1 line 28).
          std::vector<T> yk = lane.yc;
          for (index_t i = 0; i < lane.u.cols(); ++i)
            for (index_t cc = 0; cc < s; ++cc) yk[size_t(i)] -= lane.e(i, cc) * y[size_t(cc)];
          if (side == PrecondSide::Flexible) {
            for (index_t i = 0; i < lane.u.cols(); ++i)
              axpy<T>(n, yk[size_t(i)], lane.u.col(i), x.col(l));
          } else {
            for (index_t i = 0; i < lane.u.cols(); ++i)
              axpy<T>(n, yk[size_t(i)], lane.u.col(i), t.col(l));
          }
        }
      }
    }
    if (!progress) {
      if (st.iterations < opts_.max_iterations) st.status = SolveStatus::Stagnated;
      break;
    }
    if (side == PrecondSide::Right) {
      {
        obs::ScopedPhase sp(trace, obs::Phase::Precond);
        m->apply(t.view(), ztmp.view());
        ++st.precond_applies;
        detail::fault_hook(&rz, resilience::FaultSite::PrecondApply, ztmp.view());
      }
      for (index_t l = 0; l < p; ++l) axpy<T>(n, T(1), ztmp.col(l), x.col(l));
    } else {
      for (index_t l = 0; l < p; ++l) axpy<T>(n, T(1), t.col(l), x.col(l));
    }
    detail::residual<T>(a, m, side, b, x, r.view(), scratch, st, trace, &rz);
    detail::norms<T>(r.view(), rnorm.data(), st, comm, trace, ex, opts_.shards);
    if (!detail::finite_norms(rnorm.data(), p)) {
      // Break before refreshing the recycled spaces so they keep the last
      // consistent state.
      st.status = SolveStatus::NonFiniteResidual;
      break;
    }
    for (index_t l = 0; l < p; ++l) {
      lanes[size_t(l)].rnorm = rnorm[size_t(l)];
      lanes[size_t(l)].converged = rnorm[size_t(l)] <= opts_.tol * bnorm[size_t(l)];
    }
    // Refresh the recycled spaces (first cycle always seeds them; later
    // cycles only when the matrix changes — section III-B).
    if (first_cycle || matrix_changed) {
      obs::ScopedPhase sp(trace, obs::Phase::RestartEig);
      if (!first_cycle) {
        st.reductions += 1;  // fused ||u_i|| scaling norms
        if (comm != nullptr) comm->reduction(p * k * 8);
        if (trace != nullptr) trace->phase(obs::Phase::Reduction, 0.0, 1);
      }
      for (index_t l = 0; l < p; ++l) {
        auto& lane = lanes[size_t(l)];
        if (lane.steps == 0) continue;
        const index_t s = detail::usable_columns(lane.qr, lane.steps);
        refresh_lane_recycle<T>(lane, n, k, s, side, opts_.strategy, !first_cycle, ex,
                                opts_.recovery, st, trace);
      }
      if (opts_.strategy == RecycleStrategy::A && !first_cycle) {
        st.reductions += 1;  // [C V]^H U of eq. 3a (fused over lanes)
        if (comm != nullptr) comm->reduction(p * k * 8);
        if (trace != nullptr) trace->phase(obs::Phase::Reduction, 0.0, 1);
      }
    }
    first_cycle = false;
  }

  // Persist the recycled spaces (interleaved storage).
  index_t kmin = k;
  for (const auto& lane : lanes) kmin = std::min(kmin, lane.u.cols());
  if (kmin > 0) {
    lanes_ = p;
    u_.resize(n, kmin * p);
    c_.resize(n, kmin * p);
    for (index_t l = 0; l < p; ++l)
      for (index_t i = 0; i < kmin; ++i) {
        std::copy(lanes[size_t(l)].u.col(i), lanes[size_t(l)].u.col(i) + n, u_.col(i * p + l));
        std::copy(lanes[size_t(l)].c.col(i), lanes[size_t(l)].c.col(i) + n, c_.col(i * p + l));
      }
  }
  st.converged = all_converged();
  detail::final_residual_check<T>(a, b, x, opts_, st, comm);
  });
}

template <class T>
void PseudoGcroDr<T>::install_recycled(DenseMatrix<T> u, DenseMatrix<T> c, index_t lanes) {
  BKR_REQUIRE(u.rows() > 0 && u.cols() > 0 && u.rows() == c.rows() && u.cols() == c.cols(),
              "u.rows", u.rows(), "u.cols", u.cols(), "c.rows", c.rows(), "c.cols", c.cols());
  BKR_REQUIRE(lanes > 0 && u.cols() % lanes == 0, "lanes", lanes, "u.cols", u.cols());
  u_ = std::move(u);
  c_ = std::move(c);
  lanes_ = lanes;
  // solves_ stays untouched; a first solve whose RHS count matches `lanes`
  // requalifies the space (matrix_changed path), any other count ignores it.
}

template class PseudoGcroDr<double>;
template class PseudoGcroDr<std::complex<double>>;

}  // namespace bkr
