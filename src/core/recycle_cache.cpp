#include "core/recycle_cache.hpp"

#include <cstdio>
#include <fstream>

namespace bkr {

namespace {

constexpr char kMagic[4] = {'B', 'K', 'R', 'C'};
constexpr std::uint32_t kFormatVersion = 1;
// Entries are rejected before any allocation when their declared shape is
// implausible; keeps a corrupted header from turning into a huge resize.
constexpr std::uint64_t kMaxDim = std::uint64_t(1) << 40;

// Field order avoids padding so the struct can be hashed and (de)serialized
// as raw bytes without indeterminate gaps.
struct EntryHeader {
  std::uint64_t fingerprint = 0;
  std::uint64_t n = 0;
  std::uint64_t cols = 0;
  std::uint64_t lanes = 0;
  std::uint64_t doubles = 0;  // length of each of u and c
  std::uint32_t method = 0;
  std::uint32_t scalar = 0;
  std::uint32_t is_complex = 0;
  std::uint32_t reserved = 0;
};
static_assert(sizeof(EntryHeader) == 56, "EntryHeader must be packed");

template <class V>
bool write_pod(std::ofstream& os, const V& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
  return bool(os);
}

template <class V>
bool read_pod(std::ifstream& is, V* v) {
  is.read(reinterpret_cast<char*>(v), sizeof *v);
  return is.gcount() == std::streamsize(sizeof *v);
}

std::uint64_t entry_checksum(const EntryHeader& h, const std::vector<double>& u,
                             const std::vector<double>& c) {
  std::uint64_t sum = fnv1a64(&h, sizeof h);
  sum = fnv1a64(u.data(), u.size() * sizeof(double), sum);
  sum = fnv1a64(c.data(), c.size() * sizeof(double), sum);
  return sum;
}

}  // namespace

void RecycleCache::emit(obs::TraceSink* sink, const char* action, const CacheKey& key,
                        std::size_t bytes) const {
  if (sink != nullptr)
    sink->cache(obs::CacheEvent{action, key.fingerprint, std::int64_t(bytes)});
}

void RecycleCache::evict_to_budget(obs::TraceSink* sink) {
  while (bytes_ > budget_ && !entries_.empty()) {
    auto oldest = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it)
      if (it->second.tick < oldest->second.tick) oldest = it;
    const std::size_t freed = oldest->second.space.bytes();
    emit(sink, "evict", oldest->first, freed);
    bytes_ -= freed;
    ++counters_.evictions;
    entries_.erase(oldest);
  }
}

bool RecycleCache::fetch(const CacheKey& key, RecycleSpace* out, obs::TraceSink* sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++counters_.misses;
    emit(sink, "miss", key, 0);
    return false;
  }
  it->second.tick = ++tick_;
  ++counters_.hits;
  emit(sink, "hit", key, it->second.space.bytes());
  if (out != nullptr) *out = it->second.space;
  return true;
}

void RecycleCache::store(const CacheKey& key, RecycleSpace space, obs::TraceSink* sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t incoming = space.bytes();
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    bytes_ -= it->second.space.bytes();
    it->second.space = std::move(space);
    it->second.tick = ++tick_;
  } else {
    entries_.emplace(key, Entry{std::move(space), ++tick_});
  }
  bytes_ += incoming;
  ++counters_.stores;
  emit(sink, "store", key, incoming);
  evict_to_budget(sink);
}

RecycleCache::Counters RecycleCache::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Counters out = counters_;
  out.bytes = bytes_;
  out.entries = entries_.size();
  return out;
}

void RecycleCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  bytes_ = 0;
}

bool RecycleCache::save(const std::string& path) const {
  // Atomic snapshot: write the full image to a sibling temp file, then
  // rename over the target. A crash or write failure mid-save can never
  // destroy the previous good snapshot (the rename is all-or-nothing on
  // POSIX filesystems).
  const std::string tmp = path + ".tmp";
  bool ok = false;
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return false;
    std::lock_guard<std::mutex> lock(mutex_);
    os.write(kMagic, sizeof kMagic);
    ok = write_pod(os, kFormatVersion);
    const std::uint64_t count = entries_.size();
    ok = ok && write_pod(os, count);
    for (auto it = entries_.begin(); ok && it != entries_.end(); ++it) {
      const RecycleSpace& s = it->second.space;
      EntryHeader h;
      h.fingerprint = it->first.fingerprint;
      h.method = it->first.method;
      h.scalar = it->first.scalar;
      h.n = std::uint64_t(s.n);
      h.cols = std::uint64_t(s.cols);
      h.lanes = std::uint64_t(s.lanes);
      h.is_complex = s.is_complex ? 1 : 0;
      h.doubles = s.u.size();
      ok = write_pod(os, h);
      os.write(reinterpret_cast<const char*>(s.u.data()),
               std::streamsize(s.u.size() * sizeof(double)));
      os.write(reinterpret_cast<const char*>(s.c.data()),
               std::streamsize(s.c.size() * sizeof(double)));
      ok = ok && write_pod(os, entry_checksum(h, s.u, s.c));
    }
    os.flush();
    ok = ok && bool(os);
  }
  if (ok && std::rename(tmp.c_str(), path.c_str()) != 0) ok = false;
  if (!ok) std::remove(tmp.c_str());
  return ok;
}

bool RecycleCache::load(const std::string& path, obs::TraceSink* sink) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  char magic[4] = {0, 0, 0, 0};
  is.read(magic, sizeof magic);
  if (is.gcount() != std::streamsize(sizeof magic) ||
      std::memcmp(magic, kMagic, sizeof kMagic) != 0)
    return false;
  std::uint32_t version = 0;
  std::uint64_t count = 0;
  if (!read_pod(is, &version) || version != kFormatVersion) return false;
  if (!read_pod(is, &count)) return false;
  for (std::uint64_t e = 0; e < count; ++e) {
    EntryHeader h;
    if (!read_pod(is, &h)) return false;
    // Shape sanity before any allocation: the declared payload length must
    // match the declared dimensions exactly.
    if (h.n == 0 || h.cols == 0 || h.n > kMaxDim || h.cols > kMaxDim || h.lanes > kMaxDim ||
        h.is_complex > 1)
      return false;
    const std::uint64_t expect = h.n * h.cols * (h.is_complex != 0 ? 2 : 1);
    if (h.doubles != expect) return false;
    RecycleSpace s;
    s.n = index_t(h.n);
    s.cols = index_t(h.cols);
    s.lanes = index_t(h.lanes);
    s.is_complex = h.is_complex != 0;
    s.u.resize(std::size_t(h.doubles));
    s.c.resize(std::size_t(h.doubles));
    is.read(reinterpret_cast<char*>(s.u.data()), std::streamsize(s.u.size() * sizeof(double)));
    if (is.gcount() != std::streamsize(s.u.size() * sizeof(double))) return false;
    is.read(reinterpret_cast<char*>(s.c.data()), std::streamsize(s.c.size() * sizeof(double)));
    if (is.gcount() != std::streamsize(s.c.size() * sizeof(double))) return false;
    std::uint64_t sum = 0;
    if (!read_pod(is, &sum) || sum != entry_checksum(h, s.u, s.c)) return false;
    store(CacheKey{h.fingerprint, h.method, h.scalar}, std::move(s), sink);
  }
  return true;
}

}  // namespace bkr
