// SolverSession: the solver-as-a-service core (ROADMAP item 1).
//
// The paper's sequence experiments (fig. 2: one Poisson matrix against
// four successive sources; section V: an antenna ring against one Maxwell
// matrix) are *sessions*, not one-shot solves: the operator and the
// preconditioner are fixed once, right-hand sides arrive repeatedly, and
// the recycled subspace is the state carried between arrivals. This type
// lifts the setup (operator binding, fingerprinting, warm-start fetch)
// and the finalize (stats accumulation, recycle-space deposit) out of the
// one-shot entry points into a reusable object:
//
//   RecycleCache cache;
//   SolverSession<double> s(a, precond, {SessionMethod::GcroDr, opts, &cache});
//   s.solve(b0, x0);   // cold, or warm-started from the cache
//   s.solve(b1, x1);   // recycles the space built by the first solve
//   // ~SolverSession deposits the final space back into the cache
//
// Semantics:
//  * the first solve of a cold session is bitwise identical to the
//    corresponding one-shot entry point (same kernels, same reduction
//    order, same iteration counts) — the session conformance suite pins
//    this at every lane count;
//  * subsequent solves of the recycling methods (GcroDr, PseudoGcroDr)
//    reuse the session's recycled space, as with `same_system` sequences;
//  * SolveStats follows RESET semantics per call — every solve() returns
//    a fresh per-call record — while the session-level SessionStats
//    ACCUMULATES across calls until reset_stats();
//  * the resilience taxonomy flows through unchanged: per-call status,
//    recovery counts and (with throw_on_failure) BreakdownError behave
//    exactly as on the one-shot entry points.
#pragma once

#include <cstdint>
#include <memory>

#include "core/block_cg.hpp"
#include "core/cg.hpp"
#include "core/gcrodr.hpp"
#include "core/gmres.hpp"
#include "core/lgmres.hpp"
#include "core/recycle_cache.hpp"
#include "core/workspace.hpp"

namespace bkr {

// Every solver entry point of the library, addressable as a session.
enum class SessionMethod : int {
  Cg = 0,
  BlockCg,
  BlockGmres,
  PseudoBlockGmres,
  Lgmres,
  GcroDr,
  PseudoGcroDr,
};

inline constexpr int kSessionMethodCount = 7;

// Stable lowercase identifier ("cg", "block_gmres", ...).
const char* session_method_name(SessionMethod m);

// True for the methods whose recycled subspace persists across solves and
// can be deposited into / withdrawn from a RecycleCache.
inline constexpr bool session_method_recycles(SessionMethod m) {
  return m == SessionMethod::GcroDr || m == SessionMethod::PseudoGcroDr;
}

struct SessionConfig {
  SessionMethod method = SessionMethod::BlockGmres;
  SolverOptions options;
  // Optional recycle-space cache (not owned, may be shared by sessions).
  // Recycling methods fetch a warm start at construction and deposit
  // their final space at flush()/destruction; other methods ignore it.
  RecycleCache* cache = nullptr;
  // Deposit the recycle space into the cache when the session dies.
  bool store_on_destroy = true;
};

// Accumulated across every solve of one session (ACCUMULATE semantics;
// the per-call SolveStats returned by solve() RESET each call).
struct SessionStats {
  index_t solves = 0;
  index_t converged_solves = 0;
  std::int64_t iterations = 0;
  std::int64_t cycles = 0;
  std::int64_t reductions = 0;
  std::int64_t operator_applies = 0;
  std::int64_t precond_applies = 0;
  std::int64_t recoveries = 0;
  double seconds = 0;
  SolveStatus last_status = SolveStatus::Converged;

  void accumulate(const SolveStats& st) {
    ++solves;
    converged_solves += st.converged ? 1 : 0;
    iterations += st.iterations;
    cycles += st.cycles;
    reductions += st.reductions;
    operator_applies += st.operator_applies;
    precond_applies += st.precond_applies;
    recoveries += st.recoveries;
    seconds += st.seconds;
    last_status = st.status;
  }
  void reset() { *this = SessionStats{}; }
};

template <class T>
class SolverSession {
 public:
  // Bind the session to one assembled operator and preconditioner (both
  // not owned; they must outlive the session). The operator fingerprint
  // is computed here; recycling methods with a cache attached withdraw a
  // warm-start space immediately.
  SolverSession(const CsrMatrix<T>& a, Preconditioner<T>* m, SessionConfig config,
                CommModel* comm = nullptr);
  ~SolverSession();
  SolverSession(const SolverSession&) = delete;
  SolverSession& operator=(const SolverSession&) = delete;

  // Solve A X = B for a block of B.cols() right-hand sides (X holds the
  // initial guess on entry, the solution on return). Returns the per-call
  // SolveStats (reset semantics); the session accumulates into stats().
  SolveStats solve(MatrixView<const T> b, MatrixView<T> x);

  // Deposit the current recycle space into the cache now. Returns true
  // if a space was stored. No-op (false) without a cache, for
  // non-recycling methods, or before any space exists.
  bool flush();

  [[nodiscard]] const SessionStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

  [[nodiscard]] index_t rows() const { return a_->rows(); }
  [[nodiscard]] SessionMethod method() const { return cfg_.method; }
  [[nodiscard]] const SolverOptions& options() const { return cfg_.options; }
  [[nodiscard]] const CacheKey& key() const { return key_; }
  [[nodiscard]] index_t solves() const { return stats_.solves; }
  // True when construction installed a cached recycle space.
  [[nodiscard]] bool warm_started() const { return warm_; }

  // Attach (or clear, with {nullptr, epoch}) cooperative cancellation for
  // the *next* solves of this session. Options are otherwise frozen at
  // construction; a long-lived server session re-arms per request through
  // here. The token is not owned and must stay alive across the solve.
  void set_cancellation(const std::atomic<bool>* cancel,
                        std::chrono::steady_clock::time_point deadline =
                            std::chrono::steady_clock::time_point{}) {
    cfg_.options.cancel = cancel;
    cfg_.options.deadline = deadline;
    gcro_.set_cancellation(cancel, deadline);
    pgcro_.set_cancellation(cancel, deadline);
  }

  // True when the session executes applies through the sharded SPMD layer
  // (options().shards > 0, DESIGN.md §13).
  [[nodiscard]] bool sharded() const { return sharded_ != nullptr; }
  // The sharded operator, for introspection. Requires sharded().
  [[nodiscard]] const ShardedOperator<T>& sharded_operator() const { return *sharded_; }

 private:
  SolveStats solve_lgmres(MatrixView<const T> b, MatrixView<T> x);
  // The operator every solve dispatches through: the sharded SPMD operator
  // when one is configured, the monolithic CSR operator otherwise. The
  // CacheKey is computed from the source matrix either way, so recycle
  // spaces survive resharding.
  [[nodiscard]] const LinearOperator<T>& oper() const {
    return sharded_ != nullptr ? static_cast<const LinearOperator<T>&>(*sharded_)
                               : static_cast<const LinearOperator<T>&>(op_);
  }

  const CsrMatrix<T>* a_;
  Preconditioner<T>* m_;
  // Session-lifetime scratch for the solver iterate loops: bound into
  // cfg_.options.workspace (unless the caller attached one) so repeated
  // solves reach a zero-allocation steady state. Declared before cfg_ so
  // the binding in the constructor's initializer list sees a live object.
  SolverWorkspace<T> ws_;
  SessionConfig cfg_;
  CommModel* comm_;
  CsrOperator<T> op_;
  // Sharded SPMD operator, constructed only when options().shards > 0.
  std::unique_ptr<ShardedOperator<T>> sharded_;
  CacheKey key_;
  bool warm_ = false;
  GcroDr<T> gcro_;
  PseudoGcroDr<T> pgcro_;
  SessionStats stats_;
};

extern template class SolverSession<double>;
extern template class SolverSession<std::complex<double>>;

}  // namespace bkr
