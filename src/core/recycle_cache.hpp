// RecycleCache: deflation/recycle spaces keyed by operator fingerprint.
//
// Soodhalter (arXiv:1412.0393) motivates reusing a recycle space across
// systems that share an operator but have unrelated right-hand sides; the
// cache is the serving-side face of that idea. A SolverSession that ends
// with a recycled (U_k, C_k) deposits it here under a fingerprint of the
// exact CSR operator (structure + values); a later session over the same
// operator withdraws it and warm-starts — the next-system path of the
// paper's fig. 1 (lines 3-9) requalifies the space, so a stale or
// mismatched deposit can degrade convergence but never correctness.
//
// Policy: least-recently-used eviction under a byte budget, a binary
// save/load format with per-entry checksums (a corrupted or truncated
// file degrades to a cold start, never to a wrong answer), and hit /
// miss / store / eviction counters exported as obs::CacheEvent trace
// events on the caller's sink.
//
// Thread safety: every public member is safe to call concurrently; the
// internal map, counters and LRU clock are guarded by one mutex. The
// optional TraceSink argument is the *caller's* per-session sink and is
// only touched on the calling thread (under the cache mutex, so events
// from concurrent sessions are serialized but land on their own sinks).
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "la/dense.hpp"
#include "obs/trace.hpp"
#include "sparse/csr.hpp"

namespace bkr {

// FNV-1a, the 64-bit offset-basis/prime pair.
inline std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                             std::uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Fingerprint of the exact assembled operator: dimensions, CSR structure
// and the raw value bytes all feed the hash, so a perturbation of a single
// nonzero yields a different key while a bit-identical rebuild of the same
// matrix yields the same one.
template <class T>
std::uint64_t operator_fingerprint(const CsrMatrix<T>& a) {
  BKR_REQUIRE(a.rows() > 0 && index_t(a.rowptr().size()) == a.rows() + 1, "rows", a.rows(),
              "rowptr.size", index_t(a.rowptr().size()));
  const std::int64_t dims[3] = {std::int64_t(a.rows()), std::int64_t(a.cols()),
                                std::int64_t(a.nnz())};
  std::uint64_t h = fnv1a64(dims, sizeof dims);
  h = fnv1a64(a.rowptr().data(), a.rowptr().size() * sizeof(index_t), h);
  h = fnv1a64(a.colind().data(), a.colind().size() * sizeof(index_t), h);
  h = fnv1a64(a.values().data(), a.values().size() * sizeof(T), h);
  return h;
}

// Cache key: the operator fingerprint plus the method family and scalar
// type that produced the space (a pseudo-block lane-interleaved space is
// not a valid seed for the block method and vice versa).
struct CacheKey {
  std::uint64_t fingerprint = 0;
  std::uint32_t method = 0;  // SessionMethod underlying value
  std::uint32_t scalar = 0;  // 0 = double, 1 = complex<double>

  friend bool operator<(const CacheKey& a, const CacheKey& b) {
    if (a.fingerprint != b.fingerprint) return a.fingerprint < b.fingerprint;
    if (a.method != b.method) return a.method < b.method;
    return a.scalar < b.scalar;
  }
  friend bool operator==(const CacheKey& a, const CacheKey& b) {
    return a.fingerprint == b.fingerprint && a.method == b.method && a.scalar == b.scalar;
  }
};

// Type-erased recycled subspace payload (U_k, C_k), stored as raw doubles
// (complex scalars interleaved re/im, the std::complex<double> layout).
// `lanes` carries the pseudo-block lane interleaving (0 for the block
// layout of GcroDr).
struct RecycleSpace {
  index_t n = 0;
  index_t cols = 0;
  index_t lanes = 0;
  bool is_complex = false;
  std::vector<double> u, c;  // column-major, ld == n

  template <class T>
  static RecycleSpace pack(const DenseMatrix<T>& u, const DenseMatrix<T>& c, index_t lanes) {
    BKR_REQUIRE(u.rows() == c.rows() && u.cols() == c.cols(), "u.rows", u.rows(), "c.rows",
                c.rows(), "u.cols", u.cols(), "c.cols", c.cols());
    RecycleSpace s;
    s.n = u.rows();
    s.cols = u.cols();
    s.lanes = lanes;
    s.is_complex = is_complex_v<T>;
    const std::size_t doubles =
        std::size_t(u.rows()) * std::size_t(u.cols()) * (is_complex_v<T> ? 2 : 1);
    s.u.resize(doubles);
    s.c.resize(doubles);
    if (doubles > 0) {
      // std::complex<double> is layout-compatible with double[2], so the
      // scalar buffers reinterpret as raw double arrays.
      const auto* up = reinterpret_cast<const double*>(u.data());
      const auto* cp = reinterpret_cast<const double*>(c.data());
      std::copy(up, up + doubles, s.u.data());
      std::copy(cp, cp + doubles, s.c.data());
    }
    return s;
  }

  template <class T>
  bool unpack(DenseMatrix<T>* u_out, DenseMatrix<T>* c_out) const {
    BKR_REQUIRE(u_out != nullptr && c_out != nullptr, "n", n, "cols", cols);
    if (is_complex != is_complex_v<T> || n <= 0 || cols <= 0) return false;
    const std::size_t doubles = std::size_t(n) * std::size_t(cols) * width();
    if (u.size() != doubles || c.size() != doubles) return false;
    u_out->resize(n, cols);
    c_out->resize(n, cols);
    std::copy(u.data(), u.data() + doubles, reinterpret_cast<double*>(u_out->data()));
    std::copy(c.data(), c.data() + doubles, reinterpret_cast<double*>(c_out->data()));
    return true;
  }

  [[nodiscard]] std::size_t bytes() const { return (u.size() + c.size()) * sizeof(double); }
  [[nodiscard]] std::size_t width() const { return is_complex ? 2 : 1; }
};

class RecycleCache {
 public:
  struct Counters {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t stores = 0;
    std::int64_t evictions = 0;
    std::size_t bytes = 0;    // payload bytes currently held
    std::size_t entries = 0;  // entries currently held
  };

  static constexpr std::size_t kDefaultBudget = std::size_t(64) << 20;  // 64 MiB

  explicit RecycleCache(std::size_t byte_budget = kDefaultBudget) : budget_(byte_budget) {}
  RecycleCache(const RecycleCache&) = delete;
  RecycleCache& operator=(const RecycleCache&) = delete;

  // Copy the cached space for `key` into `*out`; false (and a "miss"
  // event) when absent. A hit refreshes the entry's LRU stamp.
  bool fetch(const CacheKey& key, RecycleSpace* out, obs::TraceSink* sink = nullptr);

  // Insert or replace the space under `key`, then evict least-recently-
  // used entries until the byte budget is met (the new entry is the most
  // recent, so it is evicted only if it alone exceeds the budget).
  void store(const CacheKey& key, RecycleSpace space, obs::TraceSink* sink = nullptr);

  [[nodiscard]] Counters counters() const;
  [[nodiscard]] std::size_t byte_budget() const { return budget_; }
  void clear();

  // Binary serialization ("BKRC" magic, versioned, per-entry FNV-1a
  // checksum). load() keeps every entry that validates and returns false
  // on the first malformed one — a truncated or corrupted file yields a
  // smaller (possibly empty) cache, i.e. a cold start, never bad data.
  bool save(const std::string& path) const;
  bool load(const std::string& path, obs::TraceSink* sink = nullptr);

 private:
  struct Entry {
    RecycleSpace space;
    std::uint64_t tick = 0;
  };

  void emit(obs::TraceSink* sink, const char* action, const CacheKey& key,
            std::size_t bytes) const BKR_REQUIRES_LOCK(mutex_);
  void evict_to_budget(obs::TraceSink* sink) BKR_REQUIRES_LOCK(mutex_);

  mutable std::mutex mutex_;
  std::map<CacheKey, Entry> entries_ BKR_GUARDED_BY(mutex_);
  Counters counters_ BKR_GUARDED_BY(mutex_);
  std::uint64_t tick_ BKR_GUARDED_BY(mutex_) = 0;
  std::size_t bytes_ BKR_GUARDED_BY(mutex_) = 0;
  const std::size_t budget_;
};

}  // namespace bkr
