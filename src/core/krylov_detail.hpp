// Shared building blocks of the (block) Krylov implementations: the
// preconditioned operator application, block orthogonalization schemes and
// the block QR normalization, all instrumented with the reduction counts
// of the paper's section III-D and the per-phase timers of src/obs.
#pragma once

#include "common/contracts.hpp"
#include "core/operator.hpp"
#include "core/solver.hpp"
#include "la/blas.hpp"
#include "la/qr.hpp"
#include "obs/trace.hpp"

namespace bkr::detail {

// Entry-point preconditions shared by every solver: consistent system /
// block dimensions, a matching preconditioner, and sane option values.
template <class T>
void check_solve_entry(const LinearOperator<T>& a, const Preconditioner<T>* m,
                       MatrixView<const T> b, MatrixView<T> x, const SolverOptions& opts) {
  BKR_REQUIRE(a.n() > 0, "a.n", a.n());
  BKR_REQUIRE(b.rows() == a.n(), "b.rows", b.rows(), "a.n", a.n());
  BKR_REQUIRE(b.cols() >= 1, "b.cols", b.cols());
  BKR_ASSERT_SHAPE(x, b.rows(), b.cols());
  BKR_REQUIRE(m == nullptr || m->n() == a.n(), "m.n", m == nullptr ? a.n() : m->n(), "a.n", a.n());
  BKR_REQUIRE(opts.restart >= 1, "opts.restart", opts.restart);
  BKR_REQUIRE(opts.recycle >= 0, "opts.recycle", opts.recycle);
  BKR_REQUIRE(opts.max_iterations >= 0, "opts.max_iterations", opts.max_iterations);
  BKR_REQUIRE(opts.tol > 0, "opts.tol", opts.tol);
}

// Account `k` global reductions at once: the SolveStats counter, the
// communication model (bytes per reduction) and the trace's reduction
// phase all stay in lockstep. Every solver routes its synchronization
// points through here so the counter-accounting tests can assert
// stats.reductions == trace reduction count exactly.
inline void count_reductions(SolveStats& stats, CommModel* comm, obs::TraceSink* trace,
                             std::int64_t k = 1, std::int64_t bytes = 8) {
  stats.reductions += k;
  if (comm != nullptr)
    for (std::int64_t i = 0; i < k; ++i) comm->reduction(bytes);
  if (trace != nullptr) trace->phase(obs::Phase::Reduction, 0.0, k);
}

// Z and W outputs of one preconditioned operator application on the block
// V: W is the vector entering the Arnoldi recurrence; Z is the vector that
// reconstructs the solution update (Z = M^{-1}V for right/flexible).
template <class T>
void apply_preconditioned(const LinearOperator<T>& a, Preconditioner<T>* m, PrecondSide side,
                          MatrixView<const T> v, MatrixView<T> z, MatrixView<T> w,
                          SolveStats& stats, obs::TraceSink* trace = nullptr) {
  switch (side) {
    case PrecondSide::None: {
      obs::ScopedPhase sp(trace, obs::Phase::Spmm);
      a.apply(v, w);
      ++stats.operator_applies;
      break;
    }
    case PrecondSide::Right:
    case PrecondSide::Flexible: {
      {
        obs::ScopedPhase sp(trace, obs::Phase::Precond);
        m->apply(v, z);
        ++stats.precond_applies;
      }
      obs::ScopedPhase sp(trace, obs::Phase::Spmm);
      a.apply(MatrixView<const T>(z.data(), z.rows(), z.cols(), z.ld()), w);
      ++stats.operator_applies;
      break;
    }
    case PrecondSide::Left: {
      {
        obs::ScopedPhase sp(trace, obs::Phase::Spmm);
        a.apply(v, z);  // z used as scratch: z = A v
        ++stats.operator_applies;
      }
      obs::ScopedPhase sp(trace, obs::Phase::Precond);
      m->apply(MatrixView<const T>(z.data(), z.rows(), z.cols(), z.ld()), w);
      ++stats.precond_applies;
      break;
    }
  }
}

// (Possibly left-preconditioned) residual: R = B - A X, or M^{-1}(B - A X).
template <class T>
void residual(const LinearOperator<T>& a, Preconditioner<T>* m, PrecondSide side,
              MatrixView<const T> b, MatrixView<const T> x, MatrixView<T> r,
              DenseMatrix<T>& scratch, SolveStats& stats, obs::TraceSink* trace = nullptr) {
  const index_t n = b.rows(), p = b.cols();
  if (side == PrecondSide::Left) {
    scratch.resize(n, p);
    {
      obs::ScopedPhase sp(trace, obs::Phase::Spmm);
      a.apply(x, scratch.view());
      ++stats.operator_applies;
    }
    for (index_t c = 0; c < p; ++c)
      for (index_t i = 0; i < n; ++i) scratch(i, c) = b(i, c) - scratch(i, c);
    obs::ScopedPhase sp(trace, obs::Phase::Precond);
    m->apply(scratch.view(), r);
    ++stats.precond_applies;
  } else {
    {
      obs::ScopedPhase sp(trace, obs::Phase::Spmm);
      a.apply(x, r);
      ++stats.operator_applies;
    }
    for (index_t c = 0; c < p; ++c)
      for (index_t i = 0; i < n; ++i) r(i, c) = b(i, c) - r(i, c);
  }
}

// Project W against the first `s` columns of the basis, writing the
// coefficients into the first s rows of `h` (s x p view). Reduction
// accounting follows section III-D: CGS fuses the projection into one
// global reduction, MGS needs one per basis block.
template <class T>
void project(MatrixView<const T> basis, index_t s, MatrixView<T> w, MatrixView<T> h, Ortho ortho,
             index_t block, SolveStats& stats, CommModel* comm, obs::TraceSink* trace = nullptr,
             const KernelExecutor* ex = nullptr) {
  if (s == 0) return;
  obs::ScopedPhase sp(trace, obs::Phase::OrthoProjection);
  const auto v = basis.cols_view(0, s);
  auto count = [&](std::int64_t k) { count_reductions(stats, comm, trace, k); };
  const auto wc = MatrixView<const T>(w.data(), w.rows(), w.cols(), w.ld());
  switch (ortho) {
    case Ortho::Cgs:
    case Ortho::CholQr: {
      gemm<T>(Trans::C, Trans::N, T(1), v, wc, T(0), h.block(0, 0, s, w.cols()), ex);
      count(1);
      gemm<T>(Trans::N, Trans::N, T(-1), v, h.block(0, 0, s, w.cols()), T(1), w, ex);
      break;
    }
    case Ortho::Cgs2: {
      gemm<T>(Trans::C, Trans::N, T(1), v, wc, T(0), h.block(0, 0, s, w.cols()), ex);
      gemm<T>(Trans::N, Trans::N, T(-1), v, h.block(0, 0, s, w.cols()), T(1), w, ex);
      DenseMatrix<T> h2(s, w.cols());
      gemm<T>(Trans::C, Trans::N, T(1), v, wc, T(0), h2.view(), ex);
      gemm<T>(Trans::N, Trans::N, T(-1), v, h2.view(), T(1), w, ex);
      for (index_t c = 0; c < w.cols(); ++c)
        for (index_t i = 0; i < s; ++i) h(i, c) += h2(i, c);
      count(2);
      break;
    }
    case Ortho::Mgs: {
      for (index_t i0 = 0; i0 < s; i0 += block) {
        const index_t width = std::min(block, s - i0);
        const auto vi = basis.cols_view(i0, width);
        gemm<T>(Trans::C, Trans::N, T(1), vi, wc, T(0), h.block(i0, 0, width, w.cols()), ex);
        gemm<T>(Trans::N, Trans::N, T(-1), vi, h.block(i0, 0, width, w.cols()), T(1), w, ex);
        count(1);
      }
      break;
    }
  }
}

// Normalize a block in place: W = Q R via CholQR (single reduction),
// falling back to Householder TSQR on breakdown. Returns false when even
// the fallback produced a numerically rank-deficient R (exact block
// breakdown).
template <class T>
bool qr_block(MatrixView<T> w, MatrixView<T> r, SolveStats& stats, CommModel* comm,
              obs::TraceSink* trace = nullptr, const KernelExecutor* ex = nullptr) {
  obs::ScopedPhase sp(trace, obs::Phase::OrthoNormalization);
  count_reductions(stats, comm, trace, 1, w.cols() * w.cols() * 8);
  if (!cholqr<T>(w, r, ex)) householder_tsqr<T>(w, r);
  real_t<T> dmax(0);
  for (index_t c = 0; c < r.cols(); ++c) dmax = std::max(dmax, abs_val(r(c, c)));
  for (index_t c = 0; c < r.cols(); ++c)
    if (abs_val(r(c, c)) <= real_t<T>(1e-14) * std::max(dmax, real_t<T>(1e-300))) return false;
  return true;
}

// Per-column norms with reduction accounting (one fused reduction). The
// compute *is* the global reduction, so its time lands in that phase.
template <class T>
void norms(MatrixView<const T> x, real_t<T>* out, SolveStats& stats, CommModel* comm,
           obs::TraceSink* trace = nullptr, const KernelExecutor* ex = nullptr) {
  // The ScopedPhase itself contributes the single reduction count.
  obs::ScopedPhase sp(trace, obs::Phase::Reduction);
  column_norms<T>(x, out, ex);
  stats.reductions += 1;
  if (comm != nullptr) comm->reduction(x.cols() * 8);
}

}  // namespace bkr::detail
