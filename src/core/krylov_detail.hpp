// Shared building blocks of the (block) Krylov implementations: the
// preconditioned operator application, block orthogonalization schemes and
// the block QR normalization, all instrumented with the reduction counts
// of the paper's section III-D and the per-phase timers of src/obs.
#pragma once

#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/operator.hpp"
#include "core/solver.hpp"
#include "core/workspace.hpp"
#include "la/blas.hpp"
#include "la/qr.hpp"
#include "obs/trace.hpp"
#include "resilience/fault_injector.hpp"

namespace bkr::detail {

// Entry-point preconditions shared by every solver: consistent system /
// block dimensions, a matching preconditioner, and sane option values.
template <class T>
void check_solve_entry(const LinearOperator<T>& a, const Preconditioner<T>* m,
                       MatrixView<const T> b, MatrixView<T> x, const SolverOptions& opts) {
  BKR_REQUIRE(a.n() > 0, "a.n", a.n());
  BKR_REQUIRE(b.rows() == a.n(), "b.rows", b.rows(), "a.n", a.n());
  BKR_REQUIRE(b.cols() >= 1, "b.cols", b.cols());
  BKR_ASSERT_SHAPE(x, b.rows(), b.cols());
  BKR_REQUIRE(m == nullptr || m->n() == a.n(), "m.n", m == nullptr ? a.n() : m->n(), "a.n", a.n());
  BKR_REQUIRE(opts.restart >= 1, "opts.restart", opts.restart);
  BKR_REQUIRE(opts.recycle >= 0, "opts.recycle", opts.recycle);
  BKR_REQUIRE(opts.max_iterations >= 0, "opts.max_iterations", opts.max_iterations);
  // tol == 0 is the documented smoother mode: never converge, run exactly
  // max_iterations (see Cg.FixedIterationSmootherMode). Only negatives are
  // malformed.
  BKR_REQUIRE(opts.tol >= 0, "opts.tol", opts.tol);
}

// Per-solve resilience context threaded through the shared kernels. Owns
// nothing; a null pointer (the default of every `rz` parameter below)
// keeps each kernel on its legacy code path with zero added work.
template <class T>
struct Resilience {
  const RecoveryPolicy& policy;
  resilience::FaultInjector* fault = nullptr;
  // Orthonormal basis columns preceding the block being normalized; the
  // replacement ladder re-orthogonalizes substitute columns against it.
  MatrixView<const T> prior{};
  // Solver-maintained global (block) iteration count, for event records.
  index_t iteration = 0;
  // Block-recovery engagements consumed this solve (vs policy.max_recoveries).
  index_t used = 0;
};

// Fault-injection hook: a pointer test when no injector is attached.
template <class T>
inline void fault_hook(Resilience<T>* rz, resilience::FaultSite site, MatrixView<T> block) {
  if (rz != nullptr && rz->fault != nullptr) rz->fault->at(site, block);
}

// True when every entry of a residual-norm array is finite.
template <class R>
inline bool finite_norms(const R* v, index_t k) {
  for (index_t i = 0; i < k; ++i)
    if (!std::isfinite(static_cast<double>(v[i]))) return false;
  return true;
}

// Leading Krylov columns with a safely invertible R factor; stagnated
// directions past the first tiny (or non-finite: NaN compares false
// against every threshold, so it must be cut explicitly) diagonal are
// discarded. Shared by GMRES / GCRO-DR / pseudo-GCRO-DR.
template <class T>
index_t usable_columns(const IncrementalQR<T>& qr, index_t s) {
  real_t<T> dmax(0);
  for (index_t c = 0; c < s; ++c) {
    const real_t<T> d = abs_val(qr.r(c, c));
    if (std::isfinite(static_cast<double>(d))) dmax = std::max(dmax, d);
  }
  for (index_t c = 0; c < s; ++c) {
    const real_t<T> d = abs_val(qr.r(c, c));
    if (!std::isfinite(static_cast<double>(d)) ||
        d <= real_t<T>(1e-14) * std::max(dmax, real_t<T>(1e-300)))
      return c;
  }
  return s;
}

// True when a deadline is attached: the epoch default of
// SolverOptions::deadline is the disabled sentinel, so solves without one
// never read the clock on the hot path.
inline bool deadline_enabled(const SolverOptions& opts) {
  return opts.deadline.time_since_epoch().count() != 0;
}

// Cooperative cancellation/deadline poll (DESIGN.md §15), called once per
// (block) outer iteration at the top of every solver's hot loop and once
// at solve entry (so an already-expired deadline aborts before the first
// operator apply). With no token and no deadline attached — the default —
// this is two branch-predictable tests with no loads of shared state, so
// it is sanctioned inside BKR_HOT_LOOP by bkr-lint --hotpath. The relaxed
// load is deliberate: the only contract is "a flag set by another thread
// is observed at some subsequent iteration boundary".
BKR_HOT inline void poll_cancel(const SolverOptions& opts) {
  if (opts.cancel != nullptr && opts.cancel->load(std::memory_order_relaxed))
    throw BreakdownError(SolveStatus::Cancelled, "solve cancelled by token");
  if (deadline_enabled(opts) && std::chrono::steady_clock::now() >= opts.deadline)
    throw BreakdownError(SolveStatus::DeadlineExceeded, "solve deadline exceeded");
}

// Uniform solver entry wrapper: owns the wall clock, the begin/end trace
// pairing, the terminal-status resolution and the translation of the two
// structured abort exceptions into SolveStats. `body` is the solver's
// iteration loop; it fills `st` and returns, setting st.status only on
// explicit failure exits (the default covers budget exhaustion, the
// wrapper covers success).
template <class F>
SolveStats run_solver(const char* method, index_t n, index_t nrhs, const SolverOptions& opts,
                      F&& body) {
  BKR_REQUIRE(n > 0, "n", n);
  BKR_REQUIRE(nrhs >= 1, "nrhs", nrhs);
  BKR_REQUIRE(opts.recovery.max_recoveries >= 0, "opts.recovery.max_recoveries",
              opts.recovery.max_recoveries);
  BKR_REQUIRE(opts.recovery.stagnation_window >= 1, "opts.recovery.stagnation_window",
              opts.recovery.stagnation_window);
  Timer timer;
  SolveStats st;
  obs::TraceSink* const trace = opts.trace;
  if (trace != nullptr) trace->begin_solve(method, n, nrhs);
  try {
    poll_cancel(opts);  // expired-at-entry deadline: abort with 0 applies
    body(st);
  } catch (const resilience::InjectedFault& f) {
    st.converged = false;
    st.status = f.site() == resilience::FaultSite::PrecondApply
                    ? SolveStatus::PreconditionerFailure
                    : SolveStatus::Faulted;
  } catch (const BreakdownError& e) {
    st.converged = false;
    st.status = e.status();
  }
  if (st.converged) st.status = SolveStatus::Converged;
  st.seconds = timer.seconds();
  if (trace != nullptr) trace->end_solve(st.converged, st.iterations, st.cycles, st.seconds);
  if (opts.recovery.throw_on_failure && !st.converged &&
      st.status != SolveStatus::MaxIterations && st.status != SolveStatus::Stagnated &&
      st.status != SolveStatus::Cancelled && st.status != SolveStatus::DeadlineExceeded)
    throw BreakdownError(st.status, std::string(method) + ": " + status_name(st.status));
  return st;
}

// Downcast the type-erased SolverOptions::workspace to the solve's scalar
// type; a null or mismatched attachment falls back to `fallback` (the
// per-solve one-shot workspace) so it can never corrupt a solve.
template <class T>
SolverWorkspace<T>* resolve_workspace(SolverWorkspaceBase* base, SolverWorkspace<T>* fallback) {
  if (base != nullptr)
    if (auto* typed = dynamic_cast<SolverWorkspace<T>*>(base)) return typed;
  return fallback;
}

// run_solver with workspace plumbing: resolves the session workspace (or
// owns a one-shot fallback for the duration of the solve) and hands it to
// the body alongside the stats record.
template <class T, class F>
SolveStats run_solver_ws(const char* method, index_t n, index_t nrhs, const SolverOptions& opts,
                         F&& body) {
  SolverWorkspace<T> one_shot;
  SolverWorkspace<T>& ws = *resolve_workspace<T>(opts.workspace, &one_shot);
  return run_solver(method, n, nrhs, opts, [&](SolveStats& st) { body(st, ws); });
}

// Account `k` global reductions at once: the SolveStats counter, the
// communication model (bytes per reduction) and the trace's reduction
// phase all stay in lockstep. Every solver routes its synchronization
// points through here so the counter-accounting tests can assert
// stats.reductions == trace reduction count exactly.
inline void count_reductions(SolveStats& stats, CommModel* comm, obs::TraceSink* trace,
                             std::int64_t k = 1, std::int64_t bytes = 8) {
  stats.reductions += k;
  if (comm != nullptr)
    for (std::int64_t i = 0; i < k; ++i) comm->reduction(bytes);
  if (trace != nullptr) trace->phase(obs::Phase::Reduction, 0.0, k);
}

template <class T>
void norms(MatrixView<const T> x, real_t<T>* out, SolveStats& stats, CommModel* comm,
           obs::TraceSink* trace = nullptr, const KernelExecutor* ex = nullptr,
           index_t shards = 0);

// Fault-gated epilogue: a corrupted recurrence can drive the *estimated*
// residual below tolerance while the true residual is arbitrary (the
// estimate converges against the faulted operator, not A). When an
// injector is attached — or the caller opts in via final_check — recompute
// b - A x and demote `converged` to Faulted / NonFiniteResidual if they
// disagree. The factor is looser than the tolerance itself because left
// preconditioning converges on M^{-1}(b - A x); it only has to catch
// corruption, which is orders of magnitude, not a rounding factor.
template <class T>
BKR_COLD void final_residual_check(const LinearOperator<T>& a, MatrixView<const T> b,
                                   MatrixView<T> x, const SolverOptions& opts, SolveStats& st,
                                   CommModel* comm) {
  using Real = real_t<T>;
  if (!st.converged ||
      (opts.fault == nullptr && !opts.recovery.final_check && !opts.mixed_precision))
    return;
  obs::TraceSink* const trace = opts.trace;
  const KernelExecutor* const ex = opts.exec;
  const index_t n = b.rows(), p = b.cols();
  // Under the mixed-precision pilot the operator's apply is the fp32
  // mirror; the epilogue must measure against the fp64 matrix.
  const auto* const mp = dynamic_cast<const MixedPrecisionOperator<T>*>(&a);
  DenseMatrix<T> q(n, p);
  {
    obs::ScopedPhase sp(trace, obs::Phase::Spmm);
    const auto xv = MatrixView<const T>(x.data(), n, p, x.ld());
    if (mp != nullptr) {
      mp->apply_full(xv, q.view());
    } else {
      a.apply(xv, q.view());
    }
    ++st.operator_applies;
  }
  for (index_t c = 0; c < p; ++c)
    for (index_t i = 0; i < n; ++i) q(i, c) = b(i, c) - q(i, c);
  std::vector<Real> rn(static_cast<size_t>(p)), bn(static_cast<size_t>(p));
  norms<T>(MatrixView<const T>(q.data(), n, p, q.ld()), rn.data(), st, comm, trace, ex,
           opts.shards);
  norms<T>(b, bn.data(), st, comm, trace, ex, opts.shards);
  for (index_t c = 0; c < p; ++c) {
    const Real scale = bn[size_t(c)] > Real(0) ? bn[size_t(c)] : Real(1);
    if (rn[size_t(c)] <= Real(100) * opts.tol * scale) continue;
    st.converged = false;
    st.status = finite_norms(&rn[size_t(c)], 1) ? SolveStatus::Faulted
                                                : SolveStatus::NonFiniteResidual;
    break;
  }
}

// Z and W outputs of one preconditioned operator application on the block
// V: W is the vector entering the Arnoldi recurrence; Z is the vector that
// reconstructs the solution update (Z = M^{-1}V for right/flexible).
template <class T>
BKR_HOT void apply_preconditioned(const LinearOperator<T>& a, Preconditioner<T>* m,
                                  PrecondSide side, MatrixView<const T> v, MatrixView<T> z,
                                  MatrixView<T> w, SolveStats& stats,
                                  obs::TraceSink* trace = nullptr, Resilience<T>* rz = nullptr) {
  switch (side) {
    case PrecondSide::None: {
      obs::ScopedPhase sp(trace, obs::Phase::Spmm);
      a.apply(v, w);
      ++stats.operator_applies;
      fault_hook(rz, resilience::FaultSite::OperatorApply, w);
      break;
    }
    case PrecondSide::Right:
    case PrecondSide::Flexible: {
      {
        obs::ScopedPhase sp(trace, obs::Phase::Precond);
        m->apply(v, z);
        ++stats.precond_applies;
        fault_hook(rz, resilience::FaultSite::PrecondApply, z);
      }
      obs::ScopedPhase sp(trace, obs::Phase::Spmm);
      a.apply(MatrixView<const T>(z.data(), z.rows(), z.cols(), z.ld()), w);
      ++stats.operator_applies;
      fault_hook(rz, resilience::FaultSite::OperatorApply, w);
      break;
    }
    case PrecondSide::Left: {
      {
        obs::ScopedPhase sp(trace, obs::Phase::Spmm);
        a.apply(v, z);  // z used as scratch: z = A v
        ++stats.operator_applies;
        fault_hook(rz, resilience::FaultSite::OperatorApply, z);
      }
      obs::ScopedPhase sp(trace, obs::Phase::Precond);
      m->apply(MatrixView<const T>(z.data(), z.rows(), z.cols(), z.ld()), w);
      ++stats.precond_applies;
      fault_hook(rz, resilience::FaultSite::PrecondApply, w);
      break;
    }
  }
}

// (Possibly left-preconditioned) residual: R = B - A X, or M^{-1}(B - A X).
template <class T>
void residual(const LinearOperator<T>& a, Preconditioner<T>* m, PrecondSide side,
              MatrixView<const T> b, MatrixView<const T> x, MatrixView<T> r,
              DenseMatrix<T>& scratch, SolveStats& stats, obs::TraceSink* trace = nullptr,
              Resilience<T>* rz = nullptr) {
  const index_t n = b.rows(), p = b.cols();
  if (side == PrecondSide::Left) {
    scratch.resize(n, p);
    {
      obs::ScopedPhase sp(trace, obs::Phase::Spmm);
      a.apply(x, scratch.view());
      ++stats.operator_applies;
      fault_hook(rz, resilience::FaultSite::OperatorApply, scratch.view());
    }
    for (index_t c = 0; c < p; ++c)
      for (index_t i = 0; i < n; ++i) scratch(i, c) = b(i, c) - scratch(i, c);
    obs::ScopedPhase sp(trace, obs::Phase::Precond);
    m->apply(scratch.view(), r);
    ++stats.precond_applies;
    fault_hook(rz, resilience::FaultSite::PrecondApply, r);
  } else {
    {
      obs::ScopedPhase sp(trace, obs::Phase::Spmm);
      a.apply(x, r);
      ++stats.operator_applies;
      fault_hook(rz, resilience::FaultSite::OperatorApply, r);
    }
    for (index_t c = 0; c < p; ++c)
      for (index_t i = 0; i < n; ++i) r(i, c) = b(i, c) - r(i, c);
  }
}

// Project W against the first `s` columns of the basis, writing the
// coefficients into the first s rows of `h` (s x p view). Reduction
// accounting follows section III-D: CGS fuses the projection into one
// global reduction, MGS needs one per basis block. `ws` provides the CGS2
// reprojection scratch (legacy code constructed it fresh per call — one
// heap allocation on every block iteration of the default Cgs2 scheme).
template <class T>
BKR_HOT void project(MatrixView<const T> basis, index_t s, MatrixView<T> w, MatrixView<T> h,
                     Ortho ortho, index_t block, SolveStats& stats, CommModel* comm,
                     SolverWorkspace<T>& ws, obs::TraceSink* trace = nullptr,
                     const KernelExecutor* ex = nullptr) {
  if (s == 0) return;
  obs::ScopedPhase sp(trace, obs::Phase::OrthoProjection);
  const auto v = basis.cols_view(0, s);
  auto count = [&](std::int64_t k) { count_reductions(stats, comm, trace, k); };
  const auto wc = MatrixView<const T>(w.data(), w.rows(), w.cols(), w.ld());
  switch (ortho) {
    case Ortho::Cgs:
    case Ortho::CholQr: {
      gemm<T>(Trans::C, Trans::N, T(1), v, wc, T(0), h.block(0, 0, s, w.cols()), ex);
      count(1);
      gemm<T>(Trans::N, Trans::N, T(-1), v, h.block(0, 0, s, w.cols()), T(1), w, ex);
      break;
    }
    case Ortho::Cgs2: {
      gemm<T>(Trans::C, Trans::N, T(1), v, wc, T(0), h.block(0, 0, s, w.cols()), ex);
      gemm<T>(Trans::N, Trans::N, T(-1), v, h.block(0, 0, s, w.cols()), T(1), w, ex);
      DenseMatrix<T>& h2 = ws.mat(kWsProjectScratch, s, w.cols());
      gemm<T>(Trans::C, Trans::N, T(1), v, wc, T(0), h2.view(), ex);
      gemm<T>(Trans::N, Trans::N, T(-1), v, h2.view(), T(1), w, ex);
      for (index_t c = 0; c < w.cols(); ++c)
        for (index_t i = 0; i < s; ++i) h(i, c) += h2(i, c);
      count(2);
      break;
    }
    case Ortho::Mgs: {
      for (index_t i0 = 0; i0 < s; i0 += block) {
        const index_t width = std::min(block, s - i0);
        const auto vi = basis.cols_view(i0, width);
        gemm<T>(Trans::C, Trans::N, T(1), vi, wc, T(0), h.block(i0, 0, width, w.cols()), ex);
        gemm<T>(Trans::N, Trans::N, T(-1), vi, h.block(i0, 0, width, w.cols()), T(1), w, ex);
        count(1);
      }
      break;
    }
  }
}

// Normalize a block in place: W = Q R via CholQR (single reduction),
// falling back to Householder TSQR on breakdown. Returns false when even
// the fallback produced a numerically rank-deficient R (exact block
// breakdown) — unless a Resilience context with block recovery is
// attached, in which case the final ladder rung replaces the dead columns
// with seeded random directions re-orthogonalized against the basis and
// reports success (the caller's cycle continues on a full-rank block; the
// next restart recomputes the true residual, so a stale Hessenberg column
// can only cost iterations, never correctness).
template <class T>
BKR_HOT bool qr_block(MatrixView<T> w, MatrixView<T> r, SolveStats& stats, CommModel* comm,
                      obs::TraceSink* trace = nullptr, const KernelExecutor* ex = nullptr,
                      Resilience<T>* rz = nullptr) {
  obs::ScopedPhase sp(trace, obs::Phase::OrthoNormalization);
  fault_hook(rz, resilience::FaultSite::Orthogonalization, w);
  const index_t n = w.rows(), p = w.cols();
  const bool recover = rz != nullptr && rz->policy.block_recovery;
  if (recover) {
    // Zero poisoned columns before the Gram matrix: one non-finite entry
    // would otherwise contaminate every factor column through CholQR's
    // triangular solve. The zeroed columns surface as dead below.
    for (index_t c = 0; c < p; ++c) {
      bool finite = true;
      for (index_t i = 0; i < n; ++i)
        if (!std::isfinite(static_cast<double>(abs_val(w(i, c))))) {
          finite = false;
          break;
        }
      if (!finite)
        for (index_t i = 0; i < n; ++i) w(i, c) = T(0);
    }
  }
  count_reductions(stats, comm, trace, 1, w.cols() * w.cols() * 8);
  if (!cholqr<T>(w, r, ex)) householder_tsqr<T>(w, r);
  real_t<T> dmax(0);
  for (index_t c = 0; c < r.cols(); ++c) {
    const real_t<T> d = abs_val(r(c, c));
    if (std::isfinite(static_cast<double>(d))) dmax = std::max(dmax, d);
  }
  const real_t<T> cutoff = real_t<T>(1e-14) * std::max(dmax, real_t<T>(1e-300));
  auto is_dead = [&](index_t c) {
    const real_t<T> d = abs_val(r(c, c));
    return !std::isfinite(static_cast<double>(d)) || d <= cutoff;
  };
  bool any_dead = false;
  for (index_t c = 0; c < p && !any_dead; ++c) any_dead = is_dead(c);
  if (!any_dead) return true;
  if (!recover || rz->used >= rz->policy.max_recoveries) return false;
  // Replacement ladder: off the iterate fast path by construction — it
  // only runs on an actual block breakdown, at most max_recoveries times
  // per solve — so allocation and trace construction are acceptable here.
  BKR_COLD {
    ++rz->used;
    ++stats.recoveries;
    std::vector<index_t> alive, dead;
    for (index_t c = 0; c < p; ++c) (is_dead(c) ? dead : alive).push_back(c);
    // Seed varies per engagement so a second breakdown in the same solve
    // draws fresh directions, but reruns stay bit-identical.
    Rng rng(static_cast<unsigned>(rz->policy.seed + 0x9e3779b9ULL *
                                                        static_cast<std::uint64_t>(rz->used)));
    for (size_t di = 0; di < dead.size(); ++di) {
      const index_t c = dead[di];
      for (index_t i = 0; i < n; ++i) w(i, c) = rng.scalar<T>();
      // Two classical Gram-Schmidt passes against the prior basis, the
      // surviving block columns and the already-replaced ones; serial dots
      // keep the replacement deterministic at any thread count.
      for (int pass = 0; pass < 2; ++pass) {
        for (index_t q = 0; q < rz->prior.cols(); ++q) {
          const T h = dot<T>(n, rz->prior.col(q), w.col(c));
          axpy<T>(n, -h, rz->prior.col(q), w.col(c));
        }
        for (const index_t q : alive) {
          const T h = dot<T>(n, w.col(q), w.col(c));
          axpy<T>(n, -h, w.col(q), w.col(c));
        }
        for (size_t dj = 0; dj < di; ++dj) {
          const T h = dot<T>(n, w.col(dead[dj]), w.col(c));
          axpy<T>(n, -h, w.col(dead[dj]), w.col(c));
        }
      }
      const real_t<T> nrm = norm2<T>(n, w.col(c));
      if (!(nrm > real_t<T>(0)) || !std::isfinite(static_cast<double>(nrm))) return false;
      scal<T>(n, scalar_traits<T>::from_real(real_t<T>(1) / nrm), w.col(c));
    }
    // The replacement dots amount to one more fused synchronization.
    count_reductions(stats, comm, trace, 1, p * p * 8);
    // R still factors the *original* block over the surviving columns (its
    // dead diagonals are ~0, so backsolves keep excluding them); only
    // non-finite entries are scrubbed so Hessenberg assembly stays finite.
    for (index_t i = 0; i < r.rows(); ++i)
      for (index_t c = 0; c < r.cols(); ++c)
        if (!std::isfinite(static_cast<double>(abs_val(r(i, c))))) r(i, c) = T(0);
    if (trace != nullptr)
      trace->recovery(obs::RecoveryEvent{rz->iteration, "ortho", "replace-columns",
                                         static_cast<index_t>(dead.size())});
  }
  return true;
}

// Per-column norms with reduction accounting (one fused reduction). The
// compute *is* the global reduction, so its time lands in that phase.
// `shards > 0` selects the explicit binary-tree combine (DESIGN.md §13);
// the tree's shape is a function of the problem size only — never of the
// shard count — so sharded solves are bitwise identical at every S >= 1.
template <class T>
BKR_HOT void norms(MatrixView<const T> x, real_t<T>* out, SolveStats& stats, CommModel* comm,
                   obs::TraceSink* trace, const KernelExecutor* ex, index_t shards) {
  // The ScopedPhase itself contributes the single reduction count.
  obs::ScopedPhase sp(trace, obs::Phase::Reduction);
  if (shards > 0) {
    tree_column_norms<T>(x, out, ex);
  } else {
    column_norms<T>(x, out, ex);
  }
  stats.reductions += 1;
  if (comm != nullptr) comm->reduction(x.cols() * 8);
}

}  // namespace bkr::detail
