#include "core/lgmres.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "core/krylov_detail.hpp"

namespace bkr {

namespace {

// Workspace slot map (mats_ slot kWsProjectScratch is detail::project's).
enum : int { kWsCycleQr = kWsSolverBase };  // qrs_
enum : int { kWsSmallY = kWsSolverBase };   // vecs_

template <class T>
void lgmres_body(const LinearOperator<T>& a, Preconditioner<T>* m, const std::vector<T>& b,
                 std::vector<T>& x, const SolverOptions& opts, CommModel* comm, SolveStats& st,
                 SolverWorkspace<T>& ws) {
  using Real = real_t<T>;
  const index_t n = a.n();
  obs::TraceSink* const trace = opts.trace;
  const KernelExecutor* const ex = opts.exec;
  PrecondSide side = (m == nullptr) ? PrecondSide::None : opts.side;
  if (side == PrecondSide::Right && m != nullptr && m->is_variable()) side = PrecondSide::Flexible;
  const index_t total = opts.restart;              // total space per cycle
  const index_t aug_max = std::min(opts.recycle, total - 1);
  detail::Resilience<T> rz{opts.recovery, opts.fault};

  Real bnorm;
  DenseMatrix<T> scratch;
  const auto bview = MatrixView<const T>(b.data(), n, 1, n);
  if (side == PrecondSide::Left) {
    scratch.resize(n, 1);
    {
      obs::ScopedPhase sp(trace, obs::Phase::Precond);
      m->apply(bview, scratch.view());
      ++st.precond_applies;
    }
    detail::norms<T>(scratch.view(), &bnorm, st, comm, trace, ex, opts.shards);
  } else {
    detail::norms<T>(bview, &bnorm, st, comm, trace, ex, opts.shards);
  }
  if (bnorm == Real(0)) bnorm = Real(1);
  if (!detail::finite_norms(&bnorm, 1)) {
    st.status = SolveStatus::NonFiniteResidual;
    return;
  }
  st.history.resize(1);
  st.per_rhs_iterations.assign(1, 0);

  DenseMatrix<T> v(n, total + 1);
  DenseMatrix<T> zflex;  // flexible preconditioned vectors
  if (side == PrecondSide::Flexible) zflex.resize(n, total);
  DenseMatrix<T> ztmp(n, 1), w(n, 1), r(n, 1);
  std::deque<std::vector<T>> augmented;  // error approximations, newest first
  auto xview = MatrixView<T>(x.data(), n, 1, n);
  // Cycle-lifetime scratch hoisted out of the restart loop; `dx` is donated
  // into `augmented` each cycle and its storage recycled from the evicted
  // augmentation vector once the deque is full.
  std::vector<T> ghat(static_cast<size_t>(total) + 1);
  std::vector<T> hcol(static_cast<size_t>(total) + 1);
  std::vector<T> dx;
  DenseMatrix<T> t(n, 1);
  obs::IterationEvent ev;
  if (trace != nullptr) ev.residuals.reserve(1);

  while (st.iterations < opts.max_iterations) {
    ++st.cycles;
    detail::residual<T>(a, m, side, bview, xview, r.view(), scratch, st, trace, &rz);
    Real rnorm;
    detail::norms<T>(r.view(), &rnorm, st, comm, trace, ex, opts.shards);
    if (st.cycles == 1 && opts.record_history) st.history[0].push_back(rnorm / bnorm);
    if (!detail::finite_norms(&rnorm, 1)) {
      st.status = SolveStatus::NonFiniteResidual;
      break;
    }
    if (rnorm <= opts.tol * bnorm) {
      st.converged = true;
      break;
    }

    const index_t naug = std::min<index_t>(index_t(augmented.size()), aug_max);
    const index_t mk = total - naug;  // pure Krylov steps this cycle
    IncrementalQR<T>& qr = ws.qr(kWsCycleQr, total + 1, total);
    ghat.assign(static_cast<size_t>(total) + 1, T(0));
    ghat[0] = scalar_traits<T>::from_real(rnorm);
    const T inv = scalar_traits<T>::from_real(Real(1) / rnorm);
    for (index_t i = 0; i < n; ++i) v(i, 0) = r(i, 0) * inv;
    st.reductions += 0;  // the residual norm above doubles as the QR
    if (opts.record_history)
      st.history[0].reserve(st.history[0].size() + static_cast<size_t>(total));

    index_t j = 0;
    bool hit = false;
    bool fatal = false;
    // Single-RHS early-restart tracking: the residual estimate is monotone
    // non-increasing within a cycle, so a long flat run means the space is
    // exhausted and restarting (refreshing the augmentation set) is better.
    Real stag_best = std::numeric_limits<Real>::infinity();
    index_t stag_count = 0;
    BKR_HOT_LOOP while (j < total && st.iterations < opts.max_iterations) {
      detail::poll_cancel(opts);
      const bool is_aug = j >= mk;
      MatrixView<const T> input =
          is_aug ? MatrixView<const T>(augmented[size_t(j - mk)].data(), n, 1, n)
                 : MatrixView<const T>(v.col(j), n, 1, v.ld());
      MatrixView<T> zj = (side == PrecondSide::Flexible) ? zflex.block(0, j, n, 1) : ztmp.view();
      if (is_aug) {
        // Augmentation vectors live in solution space: w = A z directly.
        {
          obs::ScopedPhase sp(trace, obs::Phase::Spmm);
          a.apply(input, w.view());
          ++st.operator_applies;
          detail::fault_hook(&rz, resilience::FaultSite::OperatorApply, w.view());
        }
        if (side == PrecondSide::Left) {
          obs::ScopedPhase sp(trace, obs::Phase::Precond);
          copy_into<T>(MatrixView<const T>(w.data(), n, 1, n), ztmp.view());
          m->apply(ztmp.view(), w.view());
          ++st.precond_applies;
          detail::fault_hook(&rz, resilience::FaultSite::PrecondApply, w.view());
        }
      } else {
        detail::apply_preconditioned<T>(a, m, side, input, zj, w.view(), st, trace, &rz);
      }
      std::fill(hcol.begin(), hcol.end(), T(0));
      detail::project<T>(v.view(), j + 1,
                         MatrixView<T>(w.data(), n, 1, n),
                         MatrixView<T>(hcol.data(), index_t(hcol.size()), 1,
                                       index_t(hcol.size())),
                         opts.ortho, 1, st, comm, ws, trace, ex);
      Real hn;
      {
        obs::ScopedPhase sp(trace, obs::Phase::OrthoNormalization);
        detail::fault_hook(&rz, resilience::FaultSite::Orthogonalization, w.view());
        hn = norm2<T>(n, w.col(0), ex);
        hcol[size_t(j) + 1] = scalar_traits<T>::from_real(hn);
        st.reductions += 1;
        if (comm != nullptr) comm->reduction(8);
        if (trace != nullptr) trace->phase(obs::Phase::Reduction, 0.0, 1);
        if (hn > Real(0)) {
          const T hinv = scalar_traits<T>::from_real(Real(1) / hn);
          for (index_t i = 0; i < n; ++i) v(i, j + 1) = w(i, 0) * hinv;
        }
      }
      {
        obs::ScopedPhase sp(trace, obs::Phase::SmallDense);
        qr.add_column(hcol.data(), j + 2);
        qr.apply_qt_range(MatrixView<T>(ghat.data(), index_t(ghat.size()), 1, index_t(ghat.size())),
                          j);
      }
      ++j;
      ++st.iterations;
      const Real est = abs_val(ghat[size_t(j)]);
      if (opts.record_history) st.history[0].push_back(est / bnorm);
      if (est > opts.tol * bnorm) ++st.per_rhs_iterations[0];
      if (trace != nullptr) {
        ev.cycle = st.cycles;
        ev.iteration = st.iterations;
        ev.basis_size = j + 1;
        ev.recycle_dim = naug;
        ev.residuals.assign(1, est / bnorm);
        trace->iteration(ev);
      }
      if (!std::isfinite(static_cast<double>(est)) ||
          !std::isfinite(static_cast<double>(hn))) {
        fatal = true;
        break;
      }
      if (hn == Real(0)) break;
      if (est <= opts.tol * bnorm) {
        hit = true;
        break;
      }
      if (est / bnorm < stag_best * (Real(1) - Real(1e-12))) {
        stag_best = est / bnorm;
        stag_count = 0;
      } else if (opts.recovery.early_restart && ++stag_count >= opts.recovery.stagnation_window) {
        ++st.recoveries;
        if (trace != nullptr)
          trace->recovery(obs::RecoveryEvent{st.iterations, "cycle", "early-restart", 0});
        break;
      }
    }
    if (fatal) {
      // A poisoned basis would feed NaN into the least squares; stop with
      // the last consistent iterate.
      st.status = SolveStatus::NonFiniteResidual;
      break;
    }
    // Least squares over the j columns.
    if (j == 0) {
      st.status = SolveStatus::Stagnated;
      break;
    }
    std::vector<T>& y = ws.vec(kWsSmallY, j);
    for (index_t i = 0; i < j; ++i) y[size_t(i)] = ghat[size_t(i)];
    t.set_zero();
    const index_t jk = std::min(j, mk);
    {
      obs::ScopedPhase sp(trace, obs::Phase::SmallDense);
      for (index_t i = j - 1; i >= 0; --i) {
        T acc = y[size_t(i)];
        for (index_t c = i + 1; c < j; ++c) acc -= qr.r(i, c) * y[size_t(c)];
        if (abs_val(qr.r(i, i)) == Real(0)) {
          y[size_t(i)] = T(0);
          continue;
        }
        y[size_t(i)] = acc / qr.r(i, i);
      }
      // x update: Krylov part (preconditioned for Right) + augmentation part.
      for (index_t i = 0; i < jk; ++i) {
        const T* col = (side == PrecondSide::Flexible) ? zflex.col(i) : v.col(i);
        axpy<T>(n, y[size_t(i)], col, t.col(0));
      }
    }
    dx.assign(static_cast<size_t>(n), T(0));
    if (side == PrecondSide::Right) {
      obs::ScopedPhase sp(trace, obs::Phase::Precond);
      m->apply(t.view(), ztmp.view());
      ++st.precond_applies;
      for (index_t i = 0; i < n; ++i) dx[size_t(i)] = ztmp(i, 0);
    } else {
      for (index_t i = 0; i < n; ++i) dx[size_t(i)] = t(i, 0);
    }
    for (index_t i = jk; i < j; ++i)
      axpy<T>(n, y[size_t(i)], augmented[size_t(i - jk)].data(), dx.data());
    for (index_t i = 0; i < n; ++i) x[size_t(i)] += dx[size_t(i)];
    // Record the error approximation (normalized), newest first.
    Real dxn;
    {
      obs::ScopedPhase sp(trace, obs::Phase::Reduction);
      dxn = norm2<T>(n, dx.data(), ex);
      st.reductions += 1;
      if (comm != nullptr) comm->reduction(8);
    }
    if (dxn > Real(0)) {
      const T dinv = scalar_traits<T>::from_real(Real(1) / dxn);
      for (auto& val : dx) val *= dinv;
      augmented.push_front(std::move(dx));
      if (index_t(augmented.size()) > aug_max) {
        dx = std::move(augmented.back());  // recycle the evicted storage
        augmented.pop_back();
      }
    } else if (!hit && side != PrecondSide::Flexible) {
      // Exactly null update with a fixed preconditioner: the next cycle
      // replays this one from an identical state, so stop now.
      st.status = SolveStatus::Stagnated;
      break;
    }
  }
}

}  // namespace

template <class T>
SolveStats lgmres(const LinearOperator<T>& a, Preconditioner<T>* m, const std::vector<T>& b,
                  std::vector<T>& x, const SolverOptions& opts, CommModel* comm) {
  detail::check_solve_entry<T>(
      a, m, MatrixView<const T>(b.data(), index_t(b.size()), 1, index_t(b.size())),
      MatrixView<T>(x.data(), index_t(x.size()), 1, index_t(x.size())), opts);
  return detail::run_solver_ws<T>(
      "lgmres", a.n(), 1, opts, [&](SolveStats& st, SolverWorkspace<T>& ws) {
        lgmres_body<T>(a, m, b, x, opts, comm, st, ws);
        detail::final_residual_check<T>(a, MatrixView<const T>(b.data(), a.n(), 1, a.n()),
                                        MatrixView<T>(x.data(), a.n(), 1, a.n()), opts, st, comm);
      });
}

template SolveStats lgmres<double>(const LinearOperator<double>&, Preconditioner<double>*,
                                   const std::vector<double>&, std::vector<double>&,
                                   const SolverOptions&, CommModel*);
template SolveStats lgmres<std::complex<double>>(const LinearOperator<std::complex<double>>&,
                                                 Preconditioner<std::complex<double>>*,
                                                 const std::vector<std::complex<double>>&,
                                                 std::vector<std::complex<double>>&,
                                                 const SolverOptions&, CommModel*);

}  // namespace bkr
