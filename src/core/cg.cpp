#include "core/cg.hpp"

#include <algorithm>
#include <cmath>

#include "core/krylov_detail.hpp"

namespace bkr {

namespace {

template <class T>
void cg_body(const LinearOperator<T>& a, Preconditioner<T>* m, MatrixView<const T> b,
             MatrixView<T> x, const SolverOptions& opts, CommModel* comm, SolveStats& st) {
  using Real = real_t<T>;
  const index_t n = a.n(), p = b.cols();
  obs::TraceSink* const trace = opts.trace;
  const KernelExecutor* const ex = opts.exec;
  detail::Resilience<T> rz{opts.recovery, opts.fault};
  // Sharded solves route every synchronization through the explicit tree
  // combine; the fold shape is shard-count independent (DESIGN.md §13).
  const bool tree = opts.shards > 0;
  auto cdot = [&](const T* u, const T* v) {
    return tree ? tree_dot<T>(n, u, v, ex) : dot<T>(n, u, v, ex);
  };

  std::vector<Real> bnorm(static_cast<size_t>(p)), rnorm(static_cast<size_t>(p));
  detail::norms<T>(b, bnorm.data(), st, comm, trace, ex, opts.shards);
  for (auto& v : bnorm)
    if (v == Real(0)) v = Real(1);
  st.history.resize(size_t(p));
  st.per_rhs_iterations.assign(size_t(p), 0);

  DenseMatrix<T> r(n, p), z(n, p), q(n, p), d(n, p);
  // r = b - A x
  {
    obs::ScopedPhase sp(trace, obs::Phase::Spmm);
    a.apply(MatrixView<const T>(x.data(), n, p, x.ld()), r.view());
    ++st.operator_applies;
    detail::fault_hook(&rz, resilience::FaultSite::OperatorApply, r.view());
  }
  for (index_t c = 0; c < p; ++c)
    for (index_t i = 0; i < n; ++i) r(i, c) = b(i, c) - r(i, c);
  detail::norms<T>(r.view(), rnorm.data(), st, comm, trace, ex, opts.shards);
  if (opts.record_history)
    for (index_t c = 0; c < p; ++c)
      st.history[size_t(c)].push_back(rnorm[size_t(c)] / bnorm[size_t(c)]);
  if (!detail::finite_norms(bnorm.data(), p) || !detail::finite_norms(rnorm.data(), p)) {
    st.status = SolveStatus::NonFiniteResidual;
    return;
  }

  auto precondition = [&](MatrixView<const T> in, MatrixView<T> out) {
    if (m != nullptr) {
      obs::ScopedPhase sp(trace, obs::Phase::Precond);
      m->apply(in, out);
      ++st.precond_applies;
      detail::fault_hook(&rz, resilience::FaultSite::PrecondApply, out);
    } else {
      copy_into<T>(in, out);
    }
  };
  precondition(r.view(), z.view());
  copy_into<T>(MatrixView<const T>(z.data(), n, p, z.ld()), d.view());
  std::vector<T> rho(static_cast<size_t>(p)), rho_old(static_cast<size_t>(p));
  {
    obs::ScopedPhase sp(trace, obs::Phase::Reduction);
    for (index_t c = 0; c < p; ++c) rho[size_t(c)] = cdot(r.col(c), z.col(c));
    st.reductions += 1;
    if (comm != nullptr) comm->reduction(p * 8);
  }

  auto converged = [&] {
    for (index_t c = 0; c < p; ++c)
      if (rnorm[size_t(c)] > opts.tol * bnorm[size_t(c)]) return false;
    return true;
  };
  // A lane whose search direction exposed an indefinite or non-finite
  // curvature is frozen: it can make no further progress and would
  // otherwise loop to max_iterations.
  std::vector<char> lane_dead(static_cast<size_t>(p), 0);
  auto live_work = [&] {
    for (index_t c = 0; c < p; ++c)
      if (lane_dead[size_t(c)] == 0 && rnorm[size_t(c)] > opts.tol * bnorm[size_t(c)]) return true;
    return false;
  };

  // Mixed-precision pilot (DESIGN.md §14): the recursive residual tracks
  // the reduced-precision operator, so it is periodically replaced — and
  // always re-verified before reporting convergence — by the true fp64
  // residual b - A x. With a MixedPrecisionOperator that goes through
  // apply_full; any other operator is its own full-precision apply.
  const MixedPrecisionOperator<T>* const mp =
      opts.mixed_precision ? dynamic_cast<const MixedPrecisionOperator<T>*>(&a) : nullptr;
  auto replace_residual = [&] {
    {
      obs::ScopedPhase sp(trace, obs::Phase::Spmm);
      const auto xv = MatrixView<const T>(x.data(), n, p, x.ld());
      if (mp != nullptr) {
        mp->apply_full(xv, r.view());
      } else {
        a.apply(xv, r.view());
      }
      ++st.operator_applies;
    }
    for (index_t c = 0; c < p; ++c)
      for (index_t i = 0; i < n; ++i) r(i, c) = b(i, c) - r(i, c);
    detail::norms<T>(r.view(), rnorm.data(), st, comm, trace, ex, opts.shards);
    ++st.recoveries;
    if (trace != nullptr)
      trace->recovery(obs::RecoveryEvent{st.iterations, "mixed-precision",
                                         "residual-replacement", p});
  };

  obs::IterationEvent ev;
  if (trace != nullptr) ev.residuals.reserve(static_cast<size_t>(p));
  if (opts.record_history) {
    const size_t hint = static_cast<size_t>(std::min<index_t>(opts.max_iterations, 256)) + 1;
    for (index_t c = 0; c < p; ++c) st.history[size_t(c)].reserve(hint);
  }

  BKR_HOT_LOOP while (live_work() && st.iterations < opts.max_iterations) {
    detail::poll_cancel(opts);
    {
      obs::ScopedPhase sp(trace, obs::Phase::Spmm);
      a.apply(MatrixView<const T>(d.data(), n, p, d.ld()), q.view());
      ++st.operator_applies;
      detail::fault_hook(&rz, resilience::FaultSite::OperatorApply, q.view());
    }
    // Fused alpha = rho / (d, q) and (later) residual norms: two global
    // reductions, counted by the scope. The interleaved axpy updates ride
    // in the same span (separating them would split every column loop).
    {
      obs::ScopedPhase sp(trace, obs::Phase::Reduction, 2);
      st.reductions += 2;
      if (comm != nullptr) {
        comm->reduction(p * 8);
        comm->reduction(p * 8);
      }
      for (index_t c = 0; c < p; ++c) {
        if (lane_dead[size_t(c)] != 0) continue;
        const T dq = cdot(d.col(c), q.col(c));
        const Real dqr = real_part(dq);
        if (!std::isfinite(static_cast<double>(dqr)) || dqr < Real(0)) {
          // Indefinite operator (negative curvature) or numerical poison.
          lane_dead[size_t(c)] = 1;
          st.status = std::isfinite(static_cast<double>(dqr)) ? SolveStatus::Breakdown
                                                              : SolveStatus::NonFiniteResidual;
          continue;
        }
        if (dq == T(0)) continue;  // converged/breakdown lane
        const T alpha = rho[size_t(c)] / dq;
        axpy<T>(n, alpha, d.col(c), x.col(c));
        axpy<T>(n, -alpha, q.col(c), r.col(c));
      }
      if (tree) {
        tree_column_norms<T>(r.view(), rnorm.data(), ex);
      } else {
        column_norms<T>(r.view(), rnorm.data(), ex);
      }
    }
    ++st.iterations;
    for (index_t c = 0; c < p; ++c) {
      if (opts.record_history)
        st.history[size_t(c)].push_back(rnorm[size_t(c)] / bnorm[size_t(c)]);
      if (rnorm[size_t(c)] > opts.tol * bnorm[size_t(c)]) ++st.per_rhs_iterations[size_t(c)];
    }
    if (trace != nullptr) {
      ev.cycle = 1;
      ev.iteration = st.iterations;
      ev.basis_size = p;
      ev.residuals.resize(size_t(p));
      for (index_t c = 0; c < p; ++c)
        ev.residuals[size_t(c)] = rnorm[size_t(c)] / bnorm[size_t(c)];
      trace->iteration(ev);
    }
    if (!detail::finite_norms(rnorm.data(), p)) {
      st.status = SolveStatus::NonFiniteResidual;
      break;
    }
    if (opts.mixed_precision) {
      bool done = converged();
      const bool periodic = opts.replacement_interval > 0 &&
                            st.iterations % opts.replacement_interval == 0;
      if (done || periodic) {
        // Drift correction (periodic) or convergence verification: after
        // the replacement, rnorm holds the true fp64 residual, so the
        // stopping test below cannot be lied to by the fp32 recursion.
        replace_residual();
        if (!detail::finite_norms(rnorm.data(), p)) {
          st.status = SolveStatus::NonFiniteResidual;
          break;
        }
        done = converged();
      }
      if (done) break;
    } else if (converged()) {
      break;
    }
    precondition(r.view(), z.view());
    std::swap(rho, rho_old);
    {
      obs::ScopedPhase sp(trace, obs::Phase::Reduction);
      for (index_t c = 0; c < p; ++c) rho[size_t(c)] = cdot(r.col(c), z.col(c));
      st.reductions += 1;
      if (comm != nullptr) comm->reduction(p * 8);
    }
    for (index_t c = 0; c < p; ++c) {
      const T beta = (rho_old[size_t(c)] == T(0)) ? T(0) : rho[size_t(c)] / rho_old[size_t(c)];
      for (index_t i = 0; i < n; ++i) d(i, c) = z(i, c) + beta * d(i, c);
    }
  }
  st.converged = detail::finite_norms(rnorm.data(), p) && converged();
  if (st.converged &&
      (opts.fault != nullptr || opts.recovery.final_check || opts.mixed_precision)) {
    // The CG recursion can be lied to by a faulted operator: the recursive
    // residual drifts away from b - A x. Confirm against the true residual
    // before reporting success. Under the mixed-precision pilot the same
    // epilogue re-measures against the fp64 matrix, not the fp32 mirror.
    {
      obs::ScopedPhase sp(trace, obs::Phase::Spmm);
      const auto xv = MatrixView<const T>(x.data(), n, p, x.ld());
      if (mp != nullptr) {
        mp->apply_full(xv, q.view());
      } else {
        a.apply(xv, q.view());
      }
      ++st.operator_applies;
    }
    for (index_t c = 0; c < p; ++c)
      for (index_t i = 0; i < n; ++i) q(i, c) = b(i, c) - q(i, c);
    detail::norms<T>(MatrixView<const T>(q.data(), n, p, q.ld()), rnorm.data(), st, comm, trace,
                     ex, opts.shards);
    for (index_t c = 0; c < p; ++c) {
      if (rnorm[size_t(c)] <= Real(10) * opts.tol * bnorm[size_t(c)]) continue;
      st.converged = false;
      st.status = detail::finite_norms(&rnorm[size_t(c)], 1) ? SolveStatus::Faulted
                                                             : SolveStatus::NonFiniteResidual;
      break;
    }
  }
}

}  // namespace

template <class T>
SolveStats cg(const LinearOperator<T>& a, Preconditioner<T>* m, MatrixView<const T> b,
              MatrixView<T> x, const SolverOptions& opts, CommModel* comm) {
  detail::check_solve_entry<T>(a, m, b, x, opts);
  return detail::run_solver("cg", a.n(), b.cols(), opts,
                            [&](SolveStats& st) { cg_body<T>(a, m, b, x, opts, comm, st); });
}

template SolveStats cg<double>(const LinearOperator<double>&, Preconditioner<double>*,
                               MatrixView<const double>, MatrixView<double>, const SolverOptions&,
                               CommModel*);
template SolveStats cg<std::complex<double>>(const LinearOperator<std::complex<double>>&,
                                             Preconditioner<std::complex<double>>*,
                                             MatrixView<const std::complex<double>>,
                                             MatrixView<std::complex<double>>,
                                             const SolverOptions&, CommModel*);

}  // namespace bkr
