#include "core/cg.hpp"

#include <algorithm>

#include "common/timer.hpp"
#include "core/krylov_detail.hpp"

namespace bkr {

template <class T>
SolveStats cg(const LinearOperator<T>& a, Preconditioner<T>* m, MatrixView<const T> b,
              MatrixView<T> x, const SolverOptions& opts, CommModel* comm) {
  using Real = real_t<T>;
  detail::check_solve_entry<T>(a, m, b, x, opts);
  Timer timer;
  SolveStats st;
  const index_t n = a.n(), p = b.cols();
  obs::TraceSink* const trace = opts.trace;
  const KernelExecutor* const ex = opts.exec;
  if (trace != nullptr) trace->begin_solve("cg", n, p);

  std::vector<Real> bnorm(static_cast<size_t>(p)), rnorm(static_cast<size_t>(p));
  detail::norms<T>(b, bnorm.data(), st, comm, trace, ex);
  for (auto& v : bnorm)
    if (v == Real(0)) v = Real(1);
  st.history.resize(size_t(p));
  st.per_rhs_iterations.assign(size_t(p), 0);

  DenseMatrix<T> r(n, p), z(n, p), q(n, p), d(n, p);
  // r = b - A x
  {
    obs::ScopedPhase sp(trace, obs::Phase::Spmm);
    a.apply(MatrixView<const T>(x.data(), n, p, x.ld()), r.view());
    ++st.operator_applies;
  }
  for (index_t c = 0; c < p; ++c)
    for (index_t i = 0; i < n; ++i) r(i, c) = b(i, c) - r(i, c);
  detail::norms<T>(r.view(), rnorm.data(), st, comm, trace, ex);
  if (opts.record_history)
    for (index_t c = 0; c < p; ++c)
      st.history[size_t(c)].push_back(rnorm[size_t(c)] / bnorm[size_t(c)]);

  auto precondition = [&](MatrixView<const T> in, MatrixView<T> out) {
    if (m != nullptr) {
      obs::ScopedPhase sp(trace, obs::Phase::Precond);
      m->apply(in, out);
      ++st.precond_applies;
    } else {
      copy_into<T>(in, out);
    }
  };
  precondition(r.view(), z.view());
  copy_into<T>(MatrixView<const T>(z.data(), n, p, z.ld()), d.view());
  std::vector<T> rho(static_cast<size_t>(p)), rho_old(static_cast<size_t>(p));
  {
    obs::ScopedPhase sp(trace, obs::Phase::Reduction);
    for (index_t c = 0; c < p; ++c) rho[size_t(c)] = dot<T>(n, r.col(c), z.col(c), ex);
    st.reductions += 1;
    if (comm != nullptr) comm->reduction(p * 8);
  }

  auto converged = [&] {
    for (index_t c = 0; c < p; ++c)
      if (rnorm[size_t(c)] > opts.tol * bnorm[size_t(c)]) return false;
    return true;
  };

  while (!converged() && st.iterations < opts.max_iterations) {
    {
      obs::ScopedPhase sp(trace, obs::Phase::Spmm);
      a.apply(MatrixView<const T>(d.data(), n, p, d.ld()), q.view());
      ++st.operator_applies;
    }
    // Fused alpha = rho / (d, q) and (later) residual norms: two global
    // reductions, counted by the scope. The interleaved axpy updates ride
    // in the same span (separating them would split every column loop).
    {
      obs::ScopedPhase sp(trace, obs::Phase::Reduction, 2);
      st.reductions += 2;
      if (comm != nullptr) {
        comm->reduction(p * 8);
        comm->reduction(p * 8);
      }
      for (index_t c = 0; c < p; ++c) {
        const T dq = dot<T>(n, d.col(c), q.col(c), ex);
        if (dq == T(0)) continue;  // converged/breakdown lane
        const T alpha = rho[size_t(c)] / dq;
        axpy<T>(n, alpha, d.col(c), x.col(c));
        axpy<T>(n, -alpha, q.col(c), r.col(c));
      }
      column_norms<T>(r.view(), rnorm.data(), ex);
    }
    ++st.iterations;
    for (index_t c = 0; c < p; ++c) {
      if (opts.record_history)
        st.history[size_t(c)].push_back(rnorm[size_t(c)] / bnorm[size_t(c)]);
      if (rnorm[size_t(c)] > opts.tol * bnorm[size_t(c)]) ++st.per_rhs_iterations[size_t(c)];
    }
    if (trace != nullptr) {
      obs::IterationEvent ev;
      ev.cycle = 1;
      ev.iteration = st.iterations;
      ev.basis_size = p;
      ev.residuals.resize(size_t(p));
      for (index_t c = 0; c < p; ++c)
        ev.residuals[size_t(c)] = rnorm[size_t(c)] / bnorm[size_t(c)];
      trace->iteration(ev);
    }
    if (converged()) break;
    precondition(r.view(), z.view());
    std::swap(rho, rho_old);
    {
      obs::ScopedPhase sp(trace, obs::Phase::Reduction);
      for (index_t c = 0; c < p; ++c) rho[size_t(c)] = dot<T>(n, r.col(c), z.col(c), ex);
      st.reductions += 1;
      if (comm != nullptr) comm->reduction(p * 8);
    }
    for (index_t c = 0; c < p; ++c) {
      const T beta = (rho_old[size_t(c)] == T(0)) ? T(0) : rho[size_t(c)] / rho_old[size_t(c)];
      for (index_t i = 0; i < n; ++i) d(i, c) = z(i, c) + beta * d(i, c);
    }
  }
  st.converged = converged();
  st.seconds = timer.seconds();
  if (trace != nullptr) trace->end_solve(st.converged, st.iterations, st.cycles, st.seconds);
  return st;
}

template SolveStats cg<double>(const LinearOperator<double>&, Preconditioner<double>*,
                               MatrixView<const double>, MatrixView<double>, const SolverOptions&,
                               CommModel*);
template SolveStats cg<std::complex<double>>(const LinearOperator<std::complex<double>>&,
                                             Preconditioner<std::complex<double>>*,
                                             MatrixView<const std::complex<double>>,
                                             MatrixView<std::complex<double>>,
                                             const SolverOptions&, CommModel*);

}  // namespace bkr
