#include "core/gmres.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/krylov_detail.hpp"

namespace bkr {

namespace {

// Workspace slot map (mats_ slot kWsProjectScratch belongs to
// detail::project; each pool numbers independently from kWsSolverBase).
enum : int { kWsUpdate = kWsSolverBase, kWsSmallY };  // mats_
enum : int { kWsCycleQr = kWsSolverBase };            // qrs_
enum : int { kWsLaneY = kWsSolverBase };              // vecs_

template <class T>
void block_gmres_body(const LinearOperator<T>& a, Preconditioner<T>* m, MatrixView<const T> b,
                      MatrixView<T> x, const SolverOptions& opts, CommModel* comm,
                      SolveStats& st, SolverWorkspace<T>& ws) {
  using Real = real_t<T>;
  const index_t n = a.n(), p = b.cols();
  obs::TraceSink* const trace = opts.trace;
  const KernelExecutor* const ex = opts.exec;
  PrecondSide side = (m == nullptr) ? PrecondSide::None : opts.side;
  if (side == PrecondSide::Right && m != nullptr && m->is_variable()) side = PrecondSide::Flexible;
  const index_t mdim = opts.restart;
  detail::Resilience<T> rz{opts.recovery, opts.fault};

  std::vector<Real> bnorm(static_cast<size_t>(p)), rnorm(static_cast<size_t>(p));
  DenseMatrix<T> scratch;
  if (side == PrecondSide::Left) {
    scratch.resize(n, p);
    {
      obs::ScopedPhase sp(trace, obs::Phase::Precond);
      m->apply(b, scratch.view());
      ++st.precond_applies;
    }
    detail::norms<T>(scratch.view(), bnorm.data(), st, comm, trace, ex, opts.shards);
  } else {
    detail::norms<T>(b, bnorm.data(), st, comm, trace, ex, opts.shards);
  }
  for (auto& v : bnorm)
    if (v == Real(0)) v = Real(1);
  if (!detail::finite_norms(bnorm.data(), p)) {
    st.status = SolveStatus::NonFiniteResidual;
    return;
  }
  st.history.resize(size_t(p));
  st.per_rhs_iterations.assign(size_t(p), 0);

  DenseMatrix<T> v(n, (mdim + 1) * p);
  DenseMatrix<T> z;
  if (side == PrecondSide::Flexible) z.resize(n, mdim * p);
  DenseMatrix<T> ztmp(n, p);
  DenseMatrix<T> w(n, p), r(n, p);
  DenseMatrix<T> ghat((mdim + 1) * p, p);
  DenseMatrix<T> hcol((mdim + 2) * p, p);
  DenseMatrix<T> sblock(p, p);
  obs::IterationEvent ev;
  if (trace != nullptr) ev.residuals.reserve(static_cast<size_t>(p));

  while (st.iterations < opts.max_iterations) {
    ++st.cycles;
    detail::residual<T>(a, m, side, b, x, r.view(), scratch, st, trace, &rz);
    detail::norms<T>(r.view(), rnorm.data(), st, comm, trace, ex, opts.shards);
    if (st.cycles == 1 && opts.record_history)
      for (index_t c = 0; c < p; ++c)
        st.history[size_t(c)].push_back(rnorm[size_t(c)] / bnorm[size_t(c)]);
    if (!detail::finite_norms(rnorm.data(), p)) {
      st.status = SolveStatus::NonFiniteResidual;
      break;
    }
    bool conv = true;
    for (index_t c = 0; c < p; ++c) conv &= rnorm[size_t(c)] <= opts.tol * bnorm[size_t(c)];
    if (conv) {
      st.converged = true;
      break;
    }

    copy_into<T>(r.view(), v.block(0, 0, n, p));
    // Rank-deficient residual blocks are tolerated here: breakdown is
    // detected per-column through usable_columns further down the cycle
    // (or repaired by the recovery ladder when it is enabled).
    rz.prior = MatrixView<const T>();
    rz.iteration = st.iterations;
    detail::qr_block<T>(v.block(0, 0, n, p), sblock.view(),  // bkr-lint: allow(unchecked-factor)
                        st, comm, trace, ex, &rz);
    IncrementalQR<T>& qr = ws.qr(kWsCycleQr, (mdim + 1) * p, mdim * p);
    ghat.set_zero();
    for (index_t c = 0; c < p; ++c)
      for (index_t rr = 0; rr <= c; ++rr) ghat(rr, c) = sblock(rr, c);
    if (opts.record_history)
      for (index_t c = 0; c < p; ++c)
        st.history[size_t(c)].reserve(st.history[size_t(c)].size() + static_cast<size_t>(mdim));

    index_t j = 0;
    bool cycle_converged = false;
    bool fatal = false;
    // Worst-column progress tracking for the stagnation-triggered early
    // restart: GMRES residual estimates are monotone non-increasing, so a
    // long flat stretch means the cycle is wedged and a restart from the
    // true residual is the better use of the budget.
    Real stag_best = std::numeric_limits<Real>::infinity();
    index_t stag_count = 0;
    BKR_HOT_LOOP while (j < mdim && st.iterations < opts.max_iterations) {
      detail::poll_cancel(opts);
      const auto vj = MatrixView<const T>(v.col(j * p), n, p, v.ld());
      MatrixView<T> zj =
          (side == PrecondSide::Flexible) ? z.block(0, j * p, n, p) : ztmp.view();
      detail::apply_preconditioned<T>(a, m, side, vj, zj, w.view(), st, trace, &rz);
      hcol.set_zero();
      detail::project<T>(v.view(), (j + 1) * p, w.view(), hcol.view(), opts.ortho, p, st, comm,
                         ws, trace, ex);
      auto vnext = v.block(0, (j + 1) * p, n, p);
      copy_into<T>(w.view(), vnext);
      rz.prior = MatrixView<const T>(v.data(), n, (j + 1) * p, v.ld());
      rz.iteration = st.iterations;
      const bool full_rank = detail::qr_block<T>(vnext, sblock.view(), st, comm, trace, ex, &rz);
      for (index_t c = 0; c < p; ++c)
        for (index_t rr = 0; rr <= c; ++rr) hcol((j + 1) * p + rr, c) = sblock(rr, c);
      // The Hessenberg columns are committed even on a (happy) block
      // breakdown: the projection coefficients are valid and the least
      // squares over them may already contain the exact solution. The
      // rank-deficient trailing rows are excluded by usable_columns.
      {
        obs::ScopedPhase sp(trace, obs::Phase::SmallDense);
        const index_t before = qr.cols();
        for (index_t c = 0; c < p; ++c) qr.add_column(hcol.col(c), (j + 2) * p);
        qr.apply_qt_range(ghat.view(), before);
      }
      ++j;
      ++st.iterations;
      bool all_small = true;
      for (index_t c = 0; c < p; ++c) {
        const Real est = norm2<T>(p, &ghat(j * p, c));
        rnorm[size_t(c)] = est;
        if (!std::isfinite(static_cast<double>(est))) fatal = true;
        if (opts.record_history) st.history[size_t(c)].push_back(est / bnorm[size_t(c)]);
        if (est > opts.tol * bnorm[size_t(c)]) {
          all_small = false;
          ++st.per_rhs_iterations[size_t(c)];
        }
      }
      if (trace != nullptr) {
        ev.cycle = st.cycles;
        ev.iteration = st.iterations;
        ev.basis_size = (j + 1) * p;
        ev.residuals.resize(size_t(p));
        for (index_t c = 0; c < p; ++c)
          ev.residuals[size_t(c)] = rnorm[size_t(c)] / bnorm[size_t(c)];
        trace->iteration(ev);
      }
      if (fatal) {
        st.status = SolveStatus::NonFiniteResidual;
        break;
      }
      if (all_small) {
        cycle_converged = true;
        break;
      }
      if (!full_rank) break;  // block breakdown: close the cycle and restart
      Real worst(0);
      for (index_t c = 0; c < p; ++c)
        worst = std::max(worst, rnorm[size_t(c)] / bnorm[size_t(c)]);
      if (worst < stag_best * (Real(1) - Real(1e-12))) {
        stag_best = worst;
        stag_count = 0;
      } else if (opts.recovery.early_restart && ++stag_count >= opts.recovery.stagnation_window) {
        ++st.recoveries;
        if (trace != nullptr)
          trace->recovery(obs::RecoveryEvent{st.iterations, "cycle", "early-restart", 0});
        break;
      }
    }
    if (fatal) break;

    const index_t s = detail::usable_columns(qr, j * p);
    if (s > 0) {
      DenseMatrix<T>& t = ws.mat(kWsUpdate, n, p);
      bool null_update = true;
      {
        obs::ScopedPhase sp(trace, obs::Phase::SmallDense);
        DenseMatrix<T>& y = ws.mat(kWsSmallY, s, p);
        copy_into<T>(MatrixView<const T>(ghat.data(), s, p, ghat.ld()), y.view());
        const DenseMatrix<T> rr = qr.r_matrix();
        trsm_left_upper<T>(MatrixView<const T>(rr.data(), s, s, rr.ld()), y.view());
        for (index_t c = 0; c < p && null_update; ++c)
          for (index_t i = 0; i < s; ++i)
            if (y(i, c) != T(0)) {
              null_update = false;
              break;
            }
        const auto& basis = (side == PrecondSide::Flexible) ? z : v;
        gemm<T>(Trans::N, Trans::N, T(1),
                MatrixView<const T>(basis.data(), n, s, basis.ld()),
                MatrixView<const T>(y.data(), s, p, y.ld()), T(0), t.view(), ex);
      }
      if (side == PrecondSide::Right) {
        {
          obs::ScopedPhase sp(trace, obs::Phase::Precond);
          m->apply(t.view(), ztmp.view());
          ++st.precond_applies;
        }
        for (index_t c = 0; c < p; ++c) axpy<T>(n, T(1), ztmp.col(c), x.col(c));
      } else {
        for (index_t c = 0; c < p; ++c) axpy<T>(n, T(1), t.col(c), x.col(c));
      }
      if (null_update && !cycle_converged && side != PrecondSide::Flexible) {
        // An exactly zero update means the next cycle replays this one
        // from an identical state (the restart is deterministic for a
        // fixed preconditioner): provably wedged, so stop now.
        st.status = SolveStatus::Stagnated;
        break;
      }
    } else if (!cycle_converged) {
      st.status = SolveStatus::Stagnated;
      break;  // stagnation: no usable direction was produced
    }
    // Loop re-enters with a freshly computed true residual; the converged
    // flag is only set from that recomputation.
  }
}

template <class T>
void pseudo_block_gmres_body(const LinearOperator<T>& a, Preconditioner<T>* m,
                             MatrixView<const T> b, MatrixView<T> x, const SolverOptions& opts,
                             CommModel* comm, SolveStats& st, SolverWorkspace<T>& ws) {
  using Real = real_t<T>;
  const index_t n = a.n(), p = b.cols();
  obs::TraceSink* const trace = opts.trace;
  const KernelExecutor* const ex = opts.exec;
  PrecondSide side = (m == nullptr) ? PrecondSide::None : opts.side;
  if (side == PrecondSide::Right && m != nullptr && m->is_variable()) side = PrecondSide::Flexible;
  const index_t mdim = opts.restart;
  detail::Resilience<T> rz{opts.recovery, opts.fault};

  // Reduction accounting where the fused batch maps to ONE comm-model
  // all-reduce but `k` paper-count synchronizations (MGS).
  auto note_reductions = [&](std::int64_t k, std::int64_t bytes) {
    st.reductions += k;
    if (comm != nullptr) comm->reduction(bytes);
    if (trace != nullptr) trace->phase(obs::Phase::Reduction, 0.0, k);
  };

  std::vector<Real> bnorm(static_cast<size_t>(p)), rnorm(static_cast<size_t>(p));
  DenseMatrix<T> scratch;
  if (side == PrecondSide::Left) {
    scratch.resize(n, p);
    {
      obs::ScopedPhase sp(trace, obs::Phase::Precond);
      m->apply(b, scratch.view());
      ++st.precond_applies;
    }
    detail::norms<T>(scratch.view(), bnorm.data(), st, comm, trace, ex, opts.shards);
  } else {
    detail::norms<T>(b, bnorm.data(), st, comm, trace, ex, opts.shards);
  }
  for (auto& v : bnorm)
    if (v == Real(0)) v = Real(1);
  if (!detail::finite_norms(bnorm.data(), p)) {
    st.status = SolveStatus::NonFiniteResidual;
    return;
  }
  st.history.resize(size_t(p));
  st.per_rhs_iterations.assign(size_t(p), 0);

  DenseMatrix<T> v(n, (mdim + 1) * p);
  DenseMatrix<T> z;
  if (side == PrecondSide::Flexible) z.resize(n, mdim * p);
  DenseMatrix<T> ztmp(n, p);
  DenseMatrix<T> w(n, p), r(n, p);
  // Per-lane small least-squares state. The QR objects are constructed
  // once per solve and reshaped (storage-reusing) at each cycle.
  std::vector<IncrementalQR<T>> qr(static_cast<size_t>(p));
  DenseMatrix<T> ghat(mdim + 1, p);   // lane l's Q^H g in column l
  DenseMatrix<T> hcol(mdim + 2, p);   // lane l's new Hessenberg column in column l
  DenseMatrix<T> t(n, p);             // per-cycle solution update
  std::vector<char> active(static_cast<size_t>(p), 1);
  std::vector<index_t> steps(static_cast<size_t>(p), 0);
  obs::IterationEvent ev;
  if (trace != nullptr) ev.residuals.reserve(static_cast<size_t>(p));

  bool done = false;
  bool fatal = false;
  while (!done && !fatal && st.iterations < opts.max_iterations) {
    ++st.cycles;
    detail::residual<T>(a, m, side, b, x, r.view(), scratch, st, trace, &rz);
    detail::norms<T>(r.view(), rnorm.data(), st, comm, trace, ex, opts.shards);
    if (st.cycles == 1 && opts.record_history)
      for (index_t c = 0; c < p; ++c)
        st.history[size_t(c)].push_back(rnorm[size_t(c)] / bnorm[size_t(c)]);
    if (!detail::finite_norms(rnorm.data(), p)) {
      st.status = SolveStatus::NonFiniteResidual;
      break;
    }
    bool conv = true;
    for (index_t c = 0; c < p; ++c) conv &= rnorm[size_t(c)] <= opts.tol * bnorm[size_t(c)];
    if (conv) {
      st.converged = true;
      break;
    }

    // Lane setup: v0 = r / ||r|| (the norms above double as the "QR" of
    // the p separate residual vectors — one fused reduction total).
    for (index_t l = 0; l < p; ++l) qr[size_t(l)].reshape(mdim + 1, mdim);
    ghat.set_zero();
    active.assign(size_t(p), 1);
    steps.assign(size_t(p), 0);
    if (opts.record_history)
      for (index_t c = 0; c < p; ++c)
        st.history[size_t(c)].reserve(st.history[size_t(c)].size() + static_cast<size_t>(mdim));
    for (index_t l = 0; l < p; ++l) {
      const Real beta = rnorm[size_t(l)];
      if (beta <= opts.tol * bnorm[size_t(l)]) {
        active[size_t(l)] = 0;
        continue;
      }
      const T inv = scalar_traits<T>::from_real(Real(1) / beta);
      for (index_t i = 0; i < n; ++i) v(i, l) = r(i, l) * inv;
      ghat(0, l) = scalar_traits<T>::from_real(beta);
    }

    index_t j = 0;
    BKR_HOT_LOOP while (j < mdim && st.iterations < opts.max_iterations) {
      detail::poll_cancel(opts);
      // Zero the inputs of locked lanes so inner (block) preconditioners
      // never see stale data.
      for (index_t l = 0; l < p; ++l)
        if (!active[size_t(l)]) std::fill(v.col(j * p + l), v.col(j * p + l) + n, T(0));
      const auto vj = MatrixView<const T>(v.col(j * p), n, p, v.ld());
      MatrixView<T> zj =
          (side == PrecondSide::Flexible) ? z.block(0, j * p, n, p) : ztmp.view();
      detail::apply_preconditioned<T>(a, m, side, vj, zj, w.view(), st, trace, &rz);
      // Fused CGS projection: every lane's dots batch into one reduction.
      index_t nactive = 0;
      for (index_t l = 0; l < p; ++l) nactive += active[size_t(l)];
      if (nactive == 0) break;
      {
        obs::ScopedPhase sp(trace, obs::Phase::OrthoProjection);
        hcol.set_zero();
        for (index_t l = 0; l < p; ++l) {
          if (!active[size_t(l)]) continue;
          for (index_t i = 0; i <= j; ++i)
            hcol(i, l) = dot<T>(n, v.col(i * p + l), w.col(l), ex);
        }
        note_reductions((opts.ortho == Ortho::Mgs) ? (j + 1) : 1, (j + 1) * nactive * 8);
        for (index_t l = 0; l < p; ++l) {
          if (!active[size_t(l)]) continue;
          for (index_t i = 0; i <= j; ++i) axpy<T>(n, -hcol(i, l), v.col(i * p + l), w.col(l));
          if (opts.ortho == Ortho::Cgs2) {
            for (index_t i = 0; i <= j; ++i) {
              const T h2 = dot<T>(n, v.col(i * p + l), w.col(l), ex);
              hcol(i, l) += h2;
              axpy<T>(n, -h2, v.col(i * p + l), w.col(l));
            }
          }
        }
        if (opts.ortho == Ortho::Cgs2) note_reductions(1, (j + 1) * nactive * 8);
      }
      // Fused normalization (the per-lane Hessenberg QR updates ride in
      // the same scope; their cost is O(m) per lane).
      note_reductions(1, nactive * 8);
      {
        obs::ScopedPhase sp(trace, obs::Phase::OrthoNormalization);
        detail::fault_hook(&rz, resilience::FaultSite::Orthogonalization, w.view());
        for (index_t l = 0; l < p; ++l) {
          if (!active[size_t(l)]) continue;
          const Real hn = norm2<T>(n, w.col(l), ex);
          hcol(j + 1, l) = scalar_traits<T>::from_real(hn);
          if (hn > Real(0)) {
            const T inv = scalar_traits<T>::from_real(Real(1) / hn);
            for (index_t i = 0; i < n; ++i) v(i, (j + 1) * p + l) = w(i, l) * inv;
          }
          qr[size_t(l)].add_column(hcol.col(l), j + 2);
          qr[size_t(l)].apply_qt_range(ghat.block(0, l, mdim + 1, 1), j);
          steps[size_t(l)] = j + 1;
          const Real est = abs_val(ghat(j + 1, l));
          rnorm[size_t(l)] = est;
          if (!std::isfinite(static_cast<double>(est)) ||
              !std::isfinite(static_cast<double>(hn))) {
            fatal = true;
            active[size_t(l)] = 0;
          }
          if (opts.record_history) st.history[size_t(l)].push_back(est / bnorm[size_t(l)]);
          if (est > opts.tol * bnorm[size_t(l)]) ++st.per_rhs_iterations[size_t(l)];
          if (est <= opts.tol * bnorm[size_t(l)] || hn == Real(0)) active[size_t(l)] = 0;
        }
      }
      ++j;
      ++st.iterations;
      if (trace != nullptr) {
        ev.cycle = st.cycles;
        ev.iteration = st.iterations;
        ev.basis_size = (j + 1) * p;
        ev.residuals.resize(size_t(p));
        for (index_t l = 0; l < p; ++l)
          ev.residuals[size_t(l)] = rnorm[size_t(l)] / bnorm[size_t(l)];
        trace->iteration(ev);
      }
      if (fatal) break;
      bool any = false;
      for (index_t l = 0; l < p; ++l) any |= (active[size_t(l)] != 0);
      if (!any) break;
    }
    if (fatal) {
      // A poisoned lane would feed NaN into the shared least-squares
      // update; stop with the last consistent iterate.
      st.status = SolveStatus::NonFiniteResidual;
      break;
    }

    // Per-lane least squares and solution update.
    t.set_zero();
    bool updated = false;
    {
      obs::ScopedPhase sp(trace, obs::Phase::SmallDense);
      for (index_t l = 0; l < p; ++l) {
        const index_t s = detail::usable_columns(qr[size_t(l)], steps[size_t(l)]);
        if (s == 0) continue;
        updated = true;
        std::vector<T>& y = ws.vec(kWsLaneY, s);
        for (index_t i = 0; i < s; ++i) y[size_t(i)] = ghat(i, l);
        for (index_t i = s - 1; i >= 0; --i) {
          T acc = y[size_t(i)];
          for (index_t c = i + 1; c < s; ++c) acc -= qr[size_t(l)].r(i, c) * y[size_t(c)];
          y[size_t(i)] = acc / qr[size_t(l)].r(i, i);
        }
        const auto& basis = (side == PrecondSide::Flexible) ? z : v;
        for (index_t i = 0; i < s; ++i) axpy<T>(n, y[size_t(i)], basis.col(i * p + l), t.col(l));
      }
    }
    if (updated) {
      if (side == PrecondSide::Right) {
        {
          obs::ScopedPhase sp(trace, obs::Phase::Precond);
          m->apply(t.view(), ztmp.view());
          ++st.precond_applies;
        }
        for (index_t c = 0; c < p; ++c) axpy<T>(n, T(1), ztmp.col(c), x.col(c));
      } else {
        for (index_t c = 0; c < p; ++c) axpy<T>(n, T(1), t.col(c), x.col(c));
      }
    } else {
      st.status = SolveStatus::Stagnated;
      done = true;  // stagnation everywhere
    }
  }
}

}  // namespace

template <class T>
SolveStats block_gmres(const LinearOperator<T>& a, Preconditioner<T>* m, MatrixView<const T> b,
                       MatrixView<T> x, const SolverOptions& opts, CommModel* comm) {
  detail::check_solve_entry<T>(a, m, b, x, opts);
  return detail::run_solver_ws<T>(
      "block_gmres", a.n(), b.cols(), opts, [&](SolveStats& st, SolverWorkspace<T>& ws) {
        block_gmres_body<T>(a, m, b, x, opts, comm, st, ws);
        detail::final_residual_check<T>(a, b, x, opts, st, comm);
      });
}

template <class T>
SolveStats pseudo_block_gmres(const LinearOperator<T>& a, Preconditioner<T>* m,
                              MatrixView<const T> b, MatrixView<T> x, const SolverOptions& opts,
                              CommModel* comm) {
  detail::check_solve_entry<T>(a, m, b, x, opts);
  return detail::run_solver_ws<T>(
      "pseudo_block_gmres", a.n(), b.cols(), opts, [&](SolveStats& st, SolverWorkspace<T>& ws) {
        pseudo_block_gmres_body<T>(a, m, b, x, opts, comm, st, ws);
        detail::final_residual_check<T>(a, b, x, opts, st, comm);
      });
}

template SolveStats block_gmres<double>(const LinearOperator<double>&, Preconditioner<double>*,
                                        MatrixView<const double>, MatrixView<double>,
                                        const SolverOptions&, CommModel*);
template SolveStats block_gmres<std::complex<double>>(const LinearOperator<std::complex<double>>&,
                                                      Preconditioner<std::complex<double>>*,
                                                      MatrixView<const std::complex<double>>,
                                                      MatrixView<std::complex<double>>,
                                                      const SolverOptions&, CommModel*);
template SolveStats pseudo_block_gmres<double>(const LinearOperator<double>&,
                                               Preconditioner<double>*, MatrixView<const double>,
                                               MatrixView<double>, const SolverOptions&,
                                               CommModel*);
template SolveStats pseudo_block_gmres<std::complex<double>>(
    const LinearOperator<std::complex<double>>&, Preconditioner<std::complex<double>>*,
    MatrixView<const std::complex<double>>, MatrixView<std::complex<double>>, const SolverOptions&,
    CommModel*);

}  // namespace bkr
