#include "core/block_cg.hpp"

#include <algorithm>

#include "core/krylov_detail.hpp"
#include "la/factor.hpp"

namespace bkr {

namespace {

// Workspace slot map (mats_ slot kWsProjectScratch is detail::project's).
enum : int { kWsPq = kWsSolverBase, kWsAlpha, kWsBeta, kWsRt, kWsPnext };

template <class T>
void block_cg_body(const LinearOperator<T>& a, Preconditioner<T>* m, MatrixView<const T> b,
                   MatrixView<T> x, const SolverOptions& opts, CommModel* comm, SolveStats& st,
                   SolverWorkspace<T>& ws) {
  using Real = real_t<T>;
  const index_t n = a.n(), p = b.cols();
  obs::TraceSink* const trace = opts.trace;
  const KernelExecutor* const ex = opts.exec;
  detail::Resilience<T> rz{opts.recovery, opts.fault};

  std::vector<Real> bnorm(static_cast<size_t>(p)), rnorm(static_cast<size_t>(p));
  detail::norms<T>(b, bnorm.data(), st, comm, trace, ex, opts.shards);
  for (auto& v : bnorm)
    if (v == Real(0)) v = Real(1);
  st.history.resize(size_t(p));
  st.per_rhs_iterations.assign(size_t(p), 0);

  DenseMatrix<T> r(n, p), z(n, p), pdir(n, p), q(n, p);
  {
    obs::ScopedPhase sp(trace, obs::Phase::Spmm);
    a.apply(MatrixView<const T>(x.data(), n, p, x.ld()), r.view());
    ++st.operator_applies;
    detail::fault_hook(&rz, resilience::FaultSite::OperatorApply, r.view());
  }
  for (index_t c = 0; c < p; ++c)
    for (index_t i = 0; i < n; ++i) r(i, c) = b(i, c) - r(i, c);
  detail::norms<T>(r.view(), rnorm.data(), st, comm, trace, ex, opts.shards);
  if (opts.record_history)
    for (index_t c = 0; c < p; ++c)
      st.history[size_t(c)].push_back(rnorm[size_t(c)] / bnorm[size_t(c)]);
  if (!detail::finite_norms(bnorm.data(), p) || !detail::finite_norms(rnorm.data(), p)) {
    st.status = SolveStatus::NonFiniteResidual;
    return;
  }

  auto precondition = [&](MatrixView<const T> in, MatrixView<T> out) {
    if (m != nullptr) {
      obs::ScopedPhase sp(trace, obs::Phase::Precond);
      m->apply(in, out);
      ++st.precond_applies;
      detail::fault_hook(&rz, resilience::FaultSite::PrecondApply, out);
    } else {
      copy_into<T>(in, out);
    }
  };
  auto converged = [&] {
    for (index_t c = 0; c < p; ++c)
      if (rnorm[size_t(c)] > opts.tol * bnorm[size_t(c)]) return false;
    return true;
  };

  precondition(r.view(), z.view());
  copy_into<T>(MatrixView<const T>(z.data(), n, p, z.ld()), pdir.view());
  // rho = Z^H R (p x p); one fused reduction.
  DenseMatrix<T> rho(p, p), rho_new(p, p);
  {
    obs::ScopedPhase sp(trace, obs::Phase::Reduction);
    gemm<T>(Trans::C, Trans::N, T(1), z.view(), r.view(), T(0), rho.view(), ex);
    st.reductions += 1;
    if (comm != nullptr) comm->reduction(p * p * 8);
  }

  // Iterate-loop scratch: workspace slots and persistent factor objects, so
  // the block recursion reaches its steady state with zero heap traffic.
  DenseMatrix<T>& pnext = ws.mat(kWsPnext, n, p);
  DenseLU<T> lu, lurho;
  obs::IterationEvent ev;
  if (trace != nullptr) ev.residuals.reserve(static_cast<size_t>(p));
  if (opts.record_history) {
    const size_t hint = static_cast<size_t>(std::min<index_t>(opts.max_iterations, 256)) + 1;
    for (index_t c = 0; c < p; ++c) st.history[size_t(c)].reserve(hint);
  }

  BKR_HOT_LOOP while (!converged() && st.iterations < opts.max_iterations) {
    detail::poll_cancel(opts);
    {
      obs::ScopedPhase sp(trace, obs::Phase::Spmm);
      a.apply(MatrixView<const T>(pdir.data(), n, p, pdir.ld()), q.view());
      ++st.operator_applies;
      detail::fault_hook(&rz, resilience::FaultSite::OperatorApply, q.view());
    }
    // alpha solves (P^H Q) alpha = rho; fused with the residual norms.
    DenseMatrix<T>& pq = ws.mat(kWsPq, p, p);
    {
      obs::ScopedPhase sp(trace, obs::Phase::Reduction, 2);
      gemm<T>(Trans::C, Trans::N, T(1), pdir.view(), q.view(), T(0), pq.view(), ex);
      st.reductions += 2;
      if (comm != nullptr) {
        comm->reduction(p * p * 8);
        comm->reduction(p * 8);
      }
    }
    lu.factor(MatrixView<const T>(pq.data(), p, p, pq.ld()));
    if (lu.singular()) {
      // Exact block breakdown (rank-collapsed direction block, e.g. a zero
      // or duplicated RHS column): restart semantics not needed for SPD.
      st.status = SolveStatus::Breakdown;
      break;
    }
    {
      obs::ScopedPhase sp(trace, obs::Phase::SmallDense);
      DenseMatrix<T>& alpha = ws.mat(kWsAlpha, p, p);
      copy_into<T>(MatrixView<const T>(rho.data(), p, p, rho.ld()), alpha.view());
      lu.solve(alpha.view());
      // X += P alpha; R -= Q alpha.
      gemm<T>(Trans::N, Trans::N, T(1), pdir.view(), alpha.view(), T(1),
              MatrixView<T>(x.data(), n, p, x.ld()), ex);
      gemm<T>(Trans::N, Trans::N, T(-1), q.view(), alpha.view(), T(1), r.view(), ex);
    }
    // Sharded solves take the explicit tree combine; the block inner
    // products above stay gemm-panelled either way (shard-independent).
    if (opts.shards > 0) {
      tree_column_norms<T>(r.view(), rnorm.data(), ex);
    } else {
      column_norms<T>(r.view(), rnorm.data(), ex);
    }
    ++st.iterations;
    for (index_t c = 0; c < p; ++c) {
      if (opts.record_history)
        st.history[size_t(c)].push_back(rnorm[size_t(c)] / bnorm[size_t(c)]);
      if (rnorm[size_t(c)] > opts.tol * bnorm[size_t(c)]) ++st.per_rhs_iterations[size_t(c)];
    }
    if (trace != nullptr) {
      ev.cycle = 1;
      ev.iteration = st.iterations;
      ev.basis_size = p;
      ev.residuals.resize(size_t(p));
      for (index_t c = 0; c < p; ++c)
        ev.residuals[size_t(c)] = rnorm[size_t(c)] / bnorm[size_t(c)];
      trace->iteration(ev);
    }
    if (!detail::finite_norms(rnorm.data(), p)) {
      st.status = SolveStatus::NonFiniteResidual;
      break;
    }
    if (converged()) break;
    precondition(r.view(), z.view());
    {
      obs::ScopedPhase sp(trace, obs::Phase::Reduction);
      gemm<T>(Trans::C, Trans::N, T(1), z.view(), r.view(), T(0), rho_new.view(), ex);
      st.reductions += 1;
      if (comm != nullptr) comm->reduction(p * p * 8);
    }
    obs::ScopedPhase sp(trace, obs::Phase::SmallDense);
    // beta solves rho^H beta = rho_new (the O'Leary block update).
    DenseMatrix<T>& rt = ws.mat(kWsRt, p, p);
    for (index_t j = 0; j < p; ++j)
      for (index_t i = 0; i < p; ++i) rt(i, j) = conj(rho(j, i));
    lurho.factor(MatrixView<const T>(rt.data(), p, p, rt.ld()));
    if (lurho.singular()) {
      st.status = SolveStatus::Breakdown;
      break;
    }
    DenseMatrix<T>& beta = ws.mat(kWsBeta, p, p);
    copy_into<T>(MatrixView<const T>(rho_new.data(), p, p, rho_new.ld()), beta.view());
    lurho.solve(beta.view());
    // P = Z + P beta (swap keeps both direction buffers live for reuse).
    copy_into<T>(MatrixView<const T>(z.data(), n, p, z.ld()), pnext.view());
    gemm<T>(Trans::N, Trans::N, T(1), pdir.view(), beta.view(), T(1), pnext.view(), ex);
    std::swap(pdir, pnext);
    rho = rho_new;
  }
  st.converged = detail::finite_norms(rnorm.data(), p) && converged();
  if (st.converged && (opts.fault != nullptr || opts.recovery.final_check)) {
    // Like CG, the block recursion can be lied to by a faulted operator:
    // confirm against the true residual before reporting success.
    {
      obs::ScopedPhase sp(trace, obs::Phase::Spmm);
      a.apply(MatrixView<const T>(x.data(), n, p, x.ld()), q.view());
      ++st.operator_applies;
    }
    for (index_t c = 0; c < p; ++c)
      for (index_t i = 0; i < n; ++i) q(i, c) = b(i, c) - q(i, c);
    detail::norms<T>(MatrixView<const T>(q.data(), n, p, q.ld()), rnorm.data(), st, comm, trace,
                     ex, opts.shards);
    for (index_t c = 0; c < p; ++c) {
      if (rnorm[size_t(c)] <= Real(10) * opts.tol * bnorm[size_t(c)]) continue;
      st.converged = false;
      st.status = detail::finite_norms(&rnorm[size_t(c)], 1) ? SolveStatus::Faulted
                                                             : SolveStatus::NonFiniteResidual;
      break;
    }
  }
}

}  // namespace

template <class T>
SolveStats block_cg(const LinearOperator<T>& a, Preconditioner<T>* m, MatrixView<const T> b,
                    MatrixView<T> x, const SolverOptions& opts, CommModel* comm) {
  detail::check_solve_entry<T>(a, m, b, x, opts);
  return detail::run_solver_ws<T>(
      "block_cg", a.n(), b.cols(), opts, [&](SolveStats& st, SolverWorkspace<T>& ws) {
        block_cg_body<T>(a, m, b, x, opts, comm, st, ws);
      });
}

template SolveStats block_cg<double>(const LinearOperator<double>&, Preconditioner<double>*,
                                     MatrixView<const double>, MatrixView<double>,
                                     const SolverOptions&, CommModel*);
template SolveStats block_cg<std::complex<double>>(const LinearOperator<std::complex<double>>&,
                                                   Preconditioner<std::complex<double>>*,
                                                   MatrixView<const std::complex<double>>,
                                                   MatrixView<std::complex<double>>,
                                                   const SolverOptions&, CommModel*);

}  // namespace bkr
