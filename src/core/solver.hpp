// Solver options and statistics shared by every iterative method.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/trace.hpp"

namespace bkr {

class KernelExecutor;  // parallel/kernel_executor.hpp

// Where the preconditioner enters the iteration (paper: "right, left, or
// variable preconditioning" are all supported uniformly).
enum class PrecondSide {
  None,
  Left,      // solve M^{-1}A x = M^{-1}b; stopping test on the preconditioned residual
  Right,     // solve A M^{-1} u = b, x = M^{-1} u
  Flexible,  // right with per-iteration preconditioner (FGMRES / FGCRO-DR)
};

// Right-hand side matrix W of the generalized deflation eigenproblem at
// GCRO-DR restarts (paper eq. 3a vs 3b; section III-C/III-D).
enum class RecycleStrategy {
  A,  // eq. 3a — needs one extra global reduction per restart
  B,  // eq. 3b — communication-free
};

// Arnoldi orthogonalization scheme (reduction counts per iteration differ;
// paper section III-D).
enum class Ortho {
  Cgs,     // classical Gram-Schmidt, 1 projection reduction + 1 normalization
  Cgs2,    // CGS with reorthogonalization (2 + 1)
  Mgs,     // modified Gram-Schmidt, one reduction per basis block
  CholQr,  // block normalization via CholQR is always used; this selects CGS projections
};

struct SolverOptions {
  index_t restart = 30;            // m: maximum Krylov dimension (in blocks)
  index_t recycle = 0;             // k: recycled blocks (GCRO-DR only)
  double tol = 1e-8;               // relative residual target, per RHS column
  index_t max_iterations = 10000;  // total (block) iterations
  PrecondSide side = PrecondSide::Right;
  RecycleStrategy strategy = RecycleStrategy::B;
  bool same_system = false;  // sequence with identical matrices: skip
                             // fig. 1 lines 3-7 and 31-38
  // Iterated CGS by default (Belos's choice): single-pass CGS loses
  // Arnoldi orthogonality, which GCRO-DR inherits into C_k and turns into
  // a residual-accuracy floor near 1e-8.
  Ortho ortho = Ortho::Cgs2;
  bool record_history = true;
  // Optional observability sink (not owned). When null — the default —
  // the instrumentation reduces to pointer tests: no clock reads, no
  // allocation, no virtual calls on the hot path.
  obs::TraceSink* trace = nullptr;
  // Optional kernel executor (not owned). When null — the default — every
  // hot kernel runs its legacy serial path unchanged. When set, SpMM,
  // gemm, CholQR and the fused reductions fan out over the executor's
  // thread pool under the determinism contract of kernel_executor.hpp:
  // iteration counts, residual histories and solutions are identical at
  // every thread count.
  const KernelExecutor* exec = nullptr;
};

struct SolveStats {
  bool converged = false;
  index_t iterations = 0;  // (block) Arnoldi steps performed
  index_t cycles = 0;      // restarts + 1
  std::int64_t reductions = 0;       // global synchronizations
  std::int64_t operator_applies = 0; // SpMM count (blocks)
  std::int64_t precond_applies = 0;  // M^{-1} block applications
  double seconds = 0;
  // Per RHS column: relative residual estimate after each (block)
  // iteration, starting with the initial residual.
  std::vector<std::vector<double>> history;
  // Per RHS column: iterations spent while that column was not yet
  // converged (the per-RHS counts reported in the paper's tables).
  std::vector<index_t> per_rhs_iterations;
};

}  // namespace bkr
