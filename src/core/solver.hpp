// Solver options and statistics shared by every iterative method.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/trace.hpp"

namespace bkr {

class KernelExecutor;  // parallel/kernel_executor.hpp
class SolverWorkspaceBase;  // core/workspace.hpp

namespace resilience {
class FaultInjector;  // resilience/fault_injector.hpp
}

// Failure taxonomy: why a solve stopped. Every solver reports exactly one
// terminal status in SolveStats::status; `Converged` if and only if
// SolveStats::converged. The non-converged values diagnose the *first*
// unrecoverable condition encountered:
enum class SolveStatus : int {
  Converged = 0,         // relative residual target met for every RHS column
  MaxIterations,         // iteration budget exhausted while still making progress
  Stagnated,             // no usable new direction / provably wedged restart cycle
  Breakdown,             // block rank collapse or indefinite-operator breakdown
                         // that the recovery ladder could not (or was not
                         // allowed to) repair
  NonFiniteResidual,     // NaN/Inf reached a residual norm or Hessenberg entry
  PreconditionerFailure, // the preconditioner apply threw
  EigSolveFailure,       // deflation eigenproblem failed and recycling recovery
                         // was disabled (RecoveryPolicy::shrink_recycle = false)
  Faulted,               // an injected fault terminated the solve, or the final
                         // true-residual check caught a corrupted recursion
  Cancelled,             // SolverOptions::cancel flag observed set at an
                         // iteration boundary; x holds the last consistent
                         // partial iterate
  DeadlineExceeded,      // SolverOptions::deadline passed at an iteration
                         // boundary (or before the first operator apply when
                         // the deadline was already expired at entry)
};

inline constexpr int kSolveStatusCount = 10;

// Stable lowercase identifier ("converged", "max-iterations", ...).
inline const char* status_name(SolveStatus s) {
  switch (s) {
    case SolveStatus::Converged: return "converged";
    case SolveStatus::MaxIterations: return "max-iterations";
    case SolveStatus::Stagnated: return "stagnated";
    case SolveStatus::Breakdown: return "breakdown";
    case SolveStatus::NonFiniteResidual: return "non-finite-residual";
    case SolveStatus::PreconditionerFailure: return "preconditioner-failure";
    case SolveStatus::EigSolveFailure: return "eig-solve-failure";
    case SolveStatus::Faulted: return "faulted";
    case SolveStatus::Cancelled: return "cancelled";
    case SolveStatus::DeadlineExceeded: return "deadline-exceeded";
  }
  return "unknown";
}

// Structured solver failure. Used two ways: internally, deep solver code
// throws it to abort a solve with a precise status (the solver entry point
// catches it and finalizes SolveStats); externally, it is what callers see
// when RecoveryPolicy::throw_on_failure is set and a solve ends in a hard
// failure. It deliberately does NOT derive from the types the legacy
// blanket catches used, so ContractViolation (std::logic_error) and
// unrelated runtime errors keep propagating.
class BreakdownError : public std::runtime_error {
 public:
  BreakdownError(SolveStatus status, const std::string& what)
      : std::runtime_error(what), status_(status) {}
  [[nodiscard]] SolveStatus status() const noexcept { return status_; }

 private:
  SolveStatus status_;
};

// Bounded recovery-escalation ladder applied when a solver hits a fragile
// moment. Every rung is deterministic (seeded) and every engagement is
// counted in SolveStats::recoveries and emitted as an obs::RecoveryEvent,
// so a "recovered" solve is always distinguishable from a clean one. With
// the defaults, a solve that never hits a fragile moment takes bitwise
// identical steps to a build without the resilience layer.
struct RecoveryPolicy {
  // Block breakdown (rank-deficient Arnoldi block): after the built-in
  // CholQR -> Householder TSQR escalation, replace dead basis columns with
  // seeded random vectors re-orthogonalized against the basis. Off: the
  // cycle is truncated at the breakdown (legacy behavior).
  bool block_recovery = true;
  // Total block-recovery engagements allowed per solve before the solver
  // gives up with SolveStatus::Breakdown.
  index_t max_recoveries = 8;
  // Deflation eigenproblem failure at a GCRO-DR restart: keep the current
  // recycle space via the identity-coefficient fallback (drop the refresh)
  // instead of failing the solve with EigSolveFailure.
  bool shrink_recycle = true;
  // Close a restart cycle early when the worst-column residual estimate
  // has not improved for `stagnation_window` consecutive iterations; the
  // restart re-seeds the basis from the true residual.
  bool early_restart = true;
  index_t stagnation_window = 15;
  // Seed for the random replacement columns.
  std::uint64_t seed = 0x5eedb10cULL;
  // Re-verify the true residual before reporting convergence (CG-family
  // recursions can be lied to by a faulted operator). Automatically on
  // whenever a FaultInjector is attached.
  bool final_check = false;
  // Surface hard failures (Breakdown, NonFiniteResidual,
  // PreconditionerFailure, EigSolveFailure, Faulted — not the soft exits
  // MaxIterations, Stagnated, Cancelled or DeadlineExceeded) as a thrown
  // BreakdownError after SolveStats is finalized.
  bool throw_on_failure = false;
};

// Where the preconditioner enters the iteration (paper: "right, left, or
// variable preconditioning" are all supported uniformly).
enum class PrecondSide {
  None,
  Left,      // solve M^{-1}A x = M^{-1}b; stopping test on the preconditioned residual
  Right,     // solve A M^{-1} u = b, x = M^{-1} u
  Flexible,  // right with per-iteration preconditioner (FGMRES / FGCRO-DR)
};

// Right-hand side matrix W of the generalized deflation eigenproblem at
// GCRO-DR restarts (paper eq. 3a vs 3b; section III-C/III-D).
enum class RecycleStrategy {
  A,  // eq. 3a — needs one extra global reduction per restart
  B,  // eq. 3b — communication-free
};

// Arnoldi orthogonalization scheme (reduction counts per iteration differ;
// paper section III-D).
enum class Ortho {
  Cgs,     // classical Gram-Schmidt, 1 projection reduction + 1 normalization
  Cgs2,    // CGS with reorthogonalization (2 + 1)
  Mgs,     // modified Gram-Schmidt, one reduction per basis block
  CholQr,  // block normalization via CholQR is always used; this selects CGS projections
};

struct SolverOptions {
  index_t restart = 30;            // m: maximum Krylov dimension (in blocks)
  index_t recycle = 0;             // k: recycled blocks (GCRO-DR only)
  double tol = 1e-8;               // relative residual target, per RHS column
  index_t max_iterations = 10000;  // total (block) iterations
  PrecondSide side = PrecondSide::Right;
  RecycleStrategy strategy = RecycleStrategy::B;
  bool same_system = false;  // sequence with identical matrices: skip
                             // fig. 1 lines 3-7 and 31-38
  // Iterated CGS by default (Belos's choice): single-pass CGS loses
  // Arnoldi orthogonality, which GCRO-DR inherits into C_k and turns into
  // a residual-accuracy floor near 1e-8.
  Ortho ortho = Ortho::Cgs2;
  bool record_history = true;
  // Optional observability sink (not owned). When null — the default —
  // the instrumentation reduces to pointer tests: no clock reads, no
  // allocation, no virtual calls on the hot path.
  obs::TraceSink* trace = nullptr;
  // Optional kernel executor (not owned). When null — the default — every
  // hot kernel runs its legacy serial path unchanged. When set, SpMM,
  // gemm, CholQR and the fused reductions fan out over the executor's
  // thread pool under the determinism contract of kernel_executor.hpp:
  // iteration counts, residual histories and solutions are identical at
  // every thread count.
  const KernelExecutor* exec = nullptr;
  // Shard count of the sharded SPMD layer (DESIGN.md §13). 0 — the
  // default — keeps the monolithic operator and the executor-chunked
  // reductions. S >= 1 makes a session execute operator applies through a
  // ShardedCsrOperator over S row-disjoint subdomains and routes every dot
  // and norm through the explicit binary-tree reductions of la/blas.hpp,
  // whose fold shape depends on the problem size only — so iteration
  // histories and solutions are bitwise identical at every shard count.
  index_t shards = 0;
  // Mixed-precision pilot (DESIGN.md §14, ROADMAP item 3). When set, the
  // solver treats the operator apply as reduced precision (normally a
  // MixedPrecisionOperator streaming fp32 values): every
  // `replacement_interval` iterations — and before reporting convergence —
  // the recursive residual is replaced by the true fp64 residual
  // b - A x (computed through MixedPrecisionOperator::apply_full when the
  // operator is one), each replacement is emitted as an
  // obs::RecoveryEvent{site:"mixed-precision",
  // action:"residual-replacement"}, and the final true-residual check of
  // the convergence epilogue is forced on. Off — the default — solves are
  // bitwise identical to the pre-pilot code paths.
  bool mixed_precision = false;
  // Iterations between residual replacements under mixed_precision
  // (<= 0 disables the periodic replacement; the convergence-time
  // replacement still runs).
  index_t replacement_interval = 50;
  // Recovery-escalation policy; the defaults keep fault-free solves
  // bitwise identical to the pre-resilience code paths.
  RecoveryPolicy recovery;
  // Optional deterministic fault injector (not owned). When null — the
  // default — the hooks at operator applies, preconditioner applies and
  // orthogonalization reduce to pointer tests.
  resilience::FaultInjector* fault = nullptr;
  // Optional preallocated solver workspace (not owned; must be a
  // SolverWorkspace<T> matching the solve's scalar type — a SolverSession
  // attaches its own). When null — the default — each solve carries a
  // private one-shot workspace, so iterate loops never allocate either
  // way; an attached workspace additionally reuses capacity *across*
  // solves. Value semantics are unchanged in both modes: workspace slots
  // acquire with fresh zero-initialized semantics, so histories and
  // solutions are bitwise identical to the legacy allocating code.
  SolverWorkspaceBase* workspace = nullptr;
  // Cooperative cancellation (DESIGN.md §15). When non-null, every solver
  // polls the flag once per (block) outer iteration at the top of its hot
  // loop and aborts with SolveStatus::Cancelled, leaving x at the last
  // consistent iterate. Relaxed loads only — the owner sets the flag from
  // another thread (server watchdog, SIGTERM drain) and needs no stronger
  // ordering than "observed at the next iteration boundary". Null — the
  // default — reduces the poll to one pointer test: numerics are bitwise
  // identical to a build without the mechanism.
  const std::atomic<bool>* cancel = nullptr;
  // Cooperative deadline on the steady clock. The epoch default disables
  // the check entirely (no clock reads on the hot path). When set, the
  // solver compares steady_clock::now() against it alongside the cancel
  // poll and aborts with SolveStatus::DeadlineExceeded; a deadline already
  // expired at solve entry aborts before the first operator apply.
  std::chrono::steady_clock::time_point deadline{};
};

struct SolveStats {
  bool converged = false;
  // Terminal status (== Converged exactly when `converged`). The default
  // covers the one exit no solver marks explicitly: budget exhaustion.
  SolveStatus status = SolveStatus::MaxIterations;
  // Recovery-ladder engagements during this solve (column replacements,
  // identity-pk deflation fallbacks, early restarts). 0 on a clean solve.
  std::int64_t recoveries = 0;
  index_t iterations = 0;  // (block) Arnoldi steps performed
  index_t cycles = 0;      // restarts + 1
  std::int64_t reductions = 0;       // global synchronizations
  std::int64_t operator_applies = 0; // SpMM count (blocks)
  std::int64_t precond_applies = 0;  // M^{-1} block applications
  double seconds = 0;
  // Per RHS column: relative residual estimate after each (block)
  // iteration, starting with the initial residual.
  std::vector<std::vector<double>> history;
  // Per RHS column: iterations spent while that column was not yet
  // converged (the per-RHS counts reported in the paper's tables).
  std::vector<index_t> per_rhs_iterations;
};

}  // namespace bkr
