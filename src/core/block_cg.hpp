// Block Conjugate Gradient (O'Leary 1980) — the first block Krylov
// method, cited by the paper (section II-B) as the origin of the family.
//
// True block recurrences: the step and orthogonalization coefficients are
// p x p matrices solved by dense LU, so all p right-hand sides share one
// block Krylov space (unlike the fused-but-independent recurrences of
// cg()). For SPD (or Hermitian positive definite) systems only.
#pragma once

#include "core/operator.hpp"
#include "core/solver.hpp"

namespace bkr {

template <class T>
SolveStats block_cg(const LinearOperator<T>& a, Preconditioner<T>* m, MatrixView<const T> b,
                    MatrixView<T> x, const SolverOptions& opts, CommModel* comm = nullptr);

extern template SolveStats block_cg<double>(const LinearOperator<double>&,
                                            Preconditioner<double>*, MatrixView<const double>,
                                            MatrixView<double>, const SolverOptions&, CommModel*);
extern template SolveStats block_cg<std::complex<double>>(
    const LinearOperator<std::complex<double>>&, Preconditioner<std::complex<double>>*,
    MatrixView<const std::complex<double>>, MatrixView<std::complex<double>>,
    const SolverOptions&, CommModel*);

}  // namespace bkr
