// SolverWorkspace: preallocated per-iteration temporaries for the Krylov
// solvers (DESIGN.md §11, "Hot-path discipline").
//
// The paper's scalability argument needs the per-iteration cost dominated
// by the block kernels, so the iterate loops must not touch the allocator.
// Every scratch block a solver used to construct fresh each iteration or
// cycle (Hessenberg columns, CGS2 reprojection coefficients, least-squares
// copies, direction updates) is instead acquired from a SolverWorkspace
// slot. A slot acquire has exactly the semantics of a fresh zero-
// initialized object of the requested shape — the backing storage is
// reused, the *values* are bitwise identical to the legacy allocating code
// — so solves with and without an attached workspace produce identical
// histories (asserted by tests/test_workspace.cpp).
//
// Ownership (ROADMAP item 1): a SolverSession owns one workspace for its
// whole life and threads it to every solve through
// SolverOptions::workspace, so a solve sequence reaches a steady state
// with zero per-iteration heap allocations (measured by the alloc_churn
// row of bench_kernels). One-shot entry points get a per-solve fallback
// inside detail::run_solver_ws — still allocation-free per iteration after
// the first restart cycle, just not across solves.
#pragma once

#include <deque>
#include <vector>

#include "common/contracts.hpp"
#include "la/dense.hpp"
#include "la/qr.hpp"

namespace bkr {

// Type-erased handle carried by SolverOptions (which is scalar-agnostic).
// detail::resolve_workspace downcasts to the solve's scalar type and falls
// back to a local workspace on a mismatch, so a mis-attached workspace
// degrades to the one-shot path instead of corrupting a solve.
class SolverWorkspaceBase {
 public:
  virtual ~SolverWorkspaceBase() = default;
};

// Shared slot assignments. Slot 0 is reserved for the CGS2 reprojection
// scratch inside detail::project (called from every solver); solver bodies
// number their private slots upward from kWsSolverBase.
inline constexpr int kWsProjectScratch = 0;
inline constexpr int kWsSolverBase = 1;

template <class T>
class SolverWorkspace final : public SolverWorkspaceBase {
 public:
  // Shaped, zero-filled matrix slot: value-identical to a fresh
  // DenseMatrix<T>(rows, cols). Capacity only ever grows, so re-acquiring
  // a slot at a previously seen (or smaller) shape never allocates.
  DenseMatrix<T>& mat(int slot, index_t rows, index_t cols) {
    DenseMatrix<T>& m = at(mats_, slot);
    m.resize(rows, cols);  // bkr-lint: allow(hot-path-alloc) capacity-reusing by construction
    return m;
  }

  // Zero-filled scalar vector slot (fresh std::vector<T>(n) semantics).
  std::vector<T>& vec(int slot, index_t n) {
    std::vector<T>& v = at(vecs_, slot);
    v.assign(static_cast<size_t>(n), T(0));  // bkr-lint: allow(hot-path-alloc) capacity-reusing by construction
    return v;
  }

  // Zero-filled real vector slot (residual estimates, event payloads).
  std::vector<double>& dvec(int slot, index_t n) {
    std::vector<double>& v = at(dvecs_, slot);
    v.assign(static_cast<size_t>(n), 0.0);  // bkr-lint: allow(hot-path-alloc) capacity-reusing by construction
    return v;
  }

  // Incremental-QR slot, reset to the state of a freshly constructed
  // IncrementalQR<T>(max_rows, max_cols) with storage reuse.
  IncrementalQR<T>& qr(int slot, index_t max_rows, index_t max_cols) {
    IncrementalQR<T>& q = at(qrs_, slot);
    q.reshape(max_rows, max_cols);
    return q;
  }

 private:
  // Pools are deques: solvers hold references to earlier slots (e.g. a
  // direction buffer kept across the iterate loop) while acquiring later
  // ones, and deque growth never moves existing elements.
  template <class V>
  static typename V::value_type& at(V& pool, int slot) {
    BKR_REQUIRE(slot >= 0, "slot", index_t(slot));
    while (static_cast<size_t>(slot) >= pool.size()) pool.emplace_back();
    return pool[static_cast<size_t>(slot)];
  }

  std::deque<DenseMatrix<T>> mats_;
  std::deque<std::vector<T>> vecs_;
  std::deque<std::vector<double>> dvecs_;
  std::deque<IncrementalQR<T>> qrs_;
};

}  // namespace bkr
