// (Block / pseudo-block / flexible) GCRO-DR — the paper's fig. 1.
//
// GCRO-DR (Parks et al. 2006) solves sequences A_i X_i = B_i while
// recycling a k-dimensional (k blocks of p columns in block mode) subspace
// between cycles and between systems:
//  * first cycle of the first system: m steps of (block) GMRES, then the
//    harmonic Ritz vectors of the Hessenberg matrix seed U_k, C_k
//    (fig. 1 lines 11-20). The harmonic problem is solved in the
//    equivalent generalized form R^H R z = theta H_m^H z built from the
//    incrementally computed QR of the block Hessenberg (the spirit of the
//    paper's eq. 2: Q and R are free by the time the cycle ends);
//  * subsequent cycles: m - k steps of (block) GMRES on the projected
//    operator (I - C_k C_k^H) A (lines 23-30), then the generalized
//    eigenproblem T z = theta W z with W from strategy A (eq. 3a, one
//    extra reduction) or B (eq. 3b, communication-free) refreshes U_k
//    (lines 31-38);
//  * next system in the sequence: if the matrix changed, U_k is
//    re-orthonormalized through a distributed QR of A U_k (lines 3-7);
//    with `same_system` both that QR and the per-cycle eigenproblem are
//    skipped (the paper's non-variable optimization, section III-B);
//  * the initial guess is improved with the recycled space before any
//    iteration (lines 8-9).
//
// U_k is stored in *solution space* (for right preconditioning U_k holds
// M^{-1} of the Krylov-space vectors), so A U_k = C_k holds with the plain
// operator and variable preconditioning (FGCRO-DR, Carvalho et al.) falls
// out of the same code path.
#pragma once

#include "core/operator.hpp"
#include "core/solver.hpp"
#include "la/dense.hpp"

namespace bkr {

template <class T>
class GcroDr {
 public:
  explicit GcroDr(SolverOptions opts) : opts_(std::move(opts)) {}

  // Solve the next system of the sequence (p = b.cols(); p > 1 is Block
  // GCRO-DR). `new_matrix` marks A_i != A_{i-1}; it is ignored for the
  // first solve and overridden by opts.same_system.
  SolveStats solve(const LinearOperator<T>& a, Preconditioner<T>* m, MatrixView<const T> b,
                   MatrixView<T> x, CommModel* comm = nullptr, bool new_matrix = true);

  void reset() {
    u_.resize(0, 0);
    c_.resize(0, 0);
    solves_ = 0;
  }

  // Seed the recycled space before the first solve (warm start from a
  // RecycleCache deposit). The pair is treated exactly like the space
  // carried over from a previous system of a sequence: the next solve
  // requalifies it through the distributed QR of A·U (fig. 1 lines 3-7),
  // so a stale pair degrades convergence but never correctness.
  void install_recycled(DenseMatrix<T> u, DenseMatrix<T> c);

  [[nodiscard]] bool has_recycled_space() const { return u_.cols() > 0; }
  [[nodiscard]] index_t recycle_dim() const { return u_.cols(); }
  [[nodiscard]] const DenseMatrix<T>& recycled_u() const { return u_; }
  [[nodiscard]] const DenseMatrix<T>& recycled_c() const { return c_; }
  [[nodiscard]] const SolverOptions& options() const { return opts_; }

  // Re-arm (or clear, with {nullptr, epoch}) cooperative cancellation on a
  // persistent engine: the options snapshot is taken at construction, so
  // per-request tokens/deadlines on a long-lived session go through here.
  void set_cancellation(const std::atomic<bool>* cancel,
                        std::chrono::steady_clock::time_point deadline) {
    opts_.cancel = cancel;
    opts_.deadline = deadline;
  }

 private:
  SolverOptions opts_;
  DenseMatrix<T> u_, c_;  // persistent recycled subspace (n x k*p)
  index_t solves_ = 0;
};

// Pseudo-block GCRO-DR: p fused single-vector GCRO-DR instances — one
// SpMM, one batched reduction per iteration, each RHS with its own
// k-column recycled space (alternatives 5-6 of the paper's fig. 8).
template <class T>
class PseudoGcroDr {
 public:
  explicit PseudoGcroDr(SolverOptions opts) : opts_(std::move(opts)) {}

  SolveStats solve(const LinearOperator<T>& a, Preconditioner<T>* m, MatrixView<const T> b,
                   MatrixView<T> x, CommModel* comm = nullptr, bool new_matrix = true);

  void reset() {
    u_.resize(0, 0);
    c_.resize(0, 0);
    lanes_ = 0;
    solves_ = 0;
  }

  // Warm-start seed, lane-interleaved layout (column i*lanes + l holds
  // lane l's i-th recycled vector). Consumed only when a solve's RHS
  // count matches `lanes`; requalified like a next-system space.
  void install_recycled(DenseMatrix<T> u, DenseMatrix<T> c, index_t lanes);

  [[nodiscard]] bool has_recycled_space() const { return u_.cols() > 0; }
  [[nodiscard]] const DenseMatrix<T>& recycled_u() const { return u_; }
  [[nodiscard]] const DenseMatrix<T>& recycled_c() const { return c_; }
  [[nodiscard]] index_t recycle_lanes() const { return lanes_; }
  [[nodiscard]] const SolverOptions& options() const { return opts_; }

  // See GcroDr::set_cancellation.
  void set_cancellation(const std::atomic<bool>* cancel,
                        std::chrono::steady_clock::time_point deadline) {
    opts_.cancel = cancel;
    opts_.deadline = deadline;
  }

 private:
  SolverOptions opts_;
  // Lane l's i-th recycled column lives at column i*lanes_ + l.
  DenseMatrix<T> u_, c_;
  index_t lanes_ = 0;
  index_t solves_ = 0;
};

extern template class GcroDr<double>;
extern template class GcroDr<std::complex<double>>;
extern template class PseudoGcroDr<double>;
extern template class PseudoGcroDr<std::complex<double>>;

}  // namespace bkr
