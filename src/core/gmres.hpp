// (Block / pseudo-block / flexible) GMRES.
//
// One implementation covers the whole family of section V-B1:
//  * block_gmres with p = 1 is restarted GMRES(m) (FGMRES when
//    side == Flexible);
//  * block_gmres with p > 1 is BGMRES: a single block Krylov space, block
//    Hessenberg with p x p blocks, CholQR block normalization;
//  * pseudo_block_gmres runs p independent single-vector Krylov spaces
//    with fused kernels — one SpMM and one batched reduction per
//    iteration for all p RHS, as formalized in Belos and implemented in
//    HPDDM.
//
// Stopping: every RHS column's relative (unpreconditioned, except for
// left preconditioning) residual below opts.tol — the EPS test of fig. 1.
#pragma once

#include "core/operator.hpp"
#include "core/solver.hpp"

namespace bkr {

template <class T>
SolveStats block_gmres(const LinearOperator<T>& a, Preconditioner<T>* m, MatrixView<const T> b,
                       MatrixView<T> x, const SolverOptions& opts, CommModel* comm = nullptr);

template <class T>
SolveStats pseudo_block_gmres(const LinearOperator<T>& a, Preconditioner<T>* m,
                              MatrixView<const T> b, MatrixView<T> x, const SolverOptions& opts,
                              CommModel* comm = nullptr);

// Single-RHS convenience wrapper around block_gmres.
template <class T>
SolveStats gmres(const LinearOperator<T>& a, Preconditioner<T>* m, const std::vector<T>& b,
                 std::vector<T>& x, const SolverOptions& opts, CommModel* comm = nullptr) {
  const index_t n = a.n();
  return block_gmres<T>(a, m, MatrixView<const T>(b.data(), n, 1, n),
                        MatrixView<T>(x.data(), n, 1, n), opts, comm);
}

extern template SolveStats block_gmres<double>(const LinearOperator<double>&,
                                               Preconditioner<double>*, MatrixView<const double>,
                                               MatrixView<double>, const SolverOptions&,
                                               CommModel*);
extern template SolveStats block_gmres<std::complex<double>>(
    const LinearOperator<std::complex<double>>&, Preconditioner<std::complex<double>>*,
    MatrixView<const std::complex<double>>, MatrixView<std::complex<double>>, const SolverOptions&,
    CommModel*);
extern template SolveStats pseudo_block_gmres<double>(const LinearOperator<double>&,
                                                      Preconditioner<double>*,
                                                      MatrixView<const double>, MatrixView<double>,
                                                      const SolverOptions&, CommModel*);
extern template SolveStats pseudo_block_gmres<std::complex<double>>(
    const LinearOperator<std::complex<double>>&, Preconditioner<std::complex<double>>*,
    MatrixView<const std::complex<double>>, MatrixView<std::complex<double>>, const SolverOptions&,
    CommModel*);

}  // namespace bkr
