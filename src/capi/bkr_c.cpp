#include "capi/bkr_c.h"

#include <atomic>
#include <chrono>
#include <complex>
#include <cstring>
#include <vector>

#include "core/gcrodr.hpp"
#include "core/gmres.hpp"
#include "core/recycle_cache.hpp"
#include "core/session.hpp"
#include "obs/trace.hpp"
#include "precond/coarse_space.hpp"
#include "sparse/csr.hpp"

/* Defined before the helpers so to_cpp can reach through it. */
struct bkr_trace {
  bkr::obs::SolverTrace t;
};

struct bkr_cancel_token {
  std::atomic<bool> flag{false};
};

namespace {

using bkr::CsrMatrix;
using bkr::CsrOperator;
using bkr::GcroDr;
using bkr::index_t;
using bkr::MatrixView;
using bkr::RecycleCache;
using bkr::SessionConfig;
using bkr::SessionMethod;
using bkr::SolveStats;
using bkr::SolverOptions;
using bkr::SolverSession;
using cd = std::complex<double>;

SolverOptions to_cpp(const bkr_options* opts) {
  SolverOptions o;
  if (opts == nullptr) return o;
  o.restart = opts->restart;
  o.recycle = opts->recycle;
  o.tol = opts->tol;
  o.max_iterations = opts->max_iterations;
  switch (opts->side) {
    case BKR_SIDE_NONE: o.side = bkr::PrecondSide::None; break;
    case BKR_SIDE_LEFT: o.side = bkr::PrecondSide::Left; break;
    case BKR_SIDE_RIGHT: o.side = bkr::PrecondSide::Right; break;
    case BKR_SIDE_FLEXIBLE: o.side = bkr::PrecondSide::Flexible; break;
  }
  o.strategy =
      (opts->strategy == BKR_STRATEGY_A) ? bkr::RecycleStrategy::A : bkr::RecycleStrategy::B;
  o.same_system = opts->same_system != 0;
  if (opts->shards > 0) o.shards = opts->shards;
  o.record_history = false;
  if (opts->trace != nullptr) o.trace = &opts->trace->t;
  if (opts->no_recovery != 0) {
    o.recovery.block_recovery = false;
    o.recovery.shrink_recycle = false;
    o.recovery.early_restart = false;
  }
  if (opts->cancel != nullptr) o.cancel = &opts->cancel->flag;
  /* deadline_ms counts from the moment the options are bound; < 0 keeps
   * the epoch sentinel (no deadline, no clock reads on the hot path). */
  if (opts->deadline_ms >= 0)
    o.deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(opts->deadline_ms);
  return o;
}

/* Deadline re-arming shared by the session setters. */
std::chrono::steady_clock::time_point deadline_from_ms(int64_t deadline_ms) {
  if (deadline_ms < 0) return std::chrono::steady_clock::time_point{};
  return std::chrono::steady_clock::now() + std::chrono::milliseconds(deadline_ms);
}

void to_c(const SolveStats& st, bkr_result* result) {
  if (result == nullptr) return;
  result->converged = st.converged ? 1 : 0;
  result->iterations = st.iterations;
  result->cycles = st.cycles;
  result->reductions = st.reductions;
  result->operator_applies = st.operator_applies;
  result->precond_applies = st.precond_applies;
  result->seconds = st.seconds;
  result->status = static_cast<bkr_status>(st.status);
  result->recoveries = st.recoveries;
  result->cache_hits = 0;
  result->cache_misses = 0;
  result->cache_evictions = 0;
  result->cache_bytes = 0;
  result->warm_start = 0;
}

/* Overlay the attached cache's counters and the session warm-start flag
 * onto a result already filled by to_c. */
void fill_cache_stats(const RecycleCache* cache, bool warm, bkr_result* result) {
  if (result == nullptr) return;
  result->warm_start = warm ? 1 : 0;
  if (cache == nullptr) return;
  const auto c = cache->counters();
  result->cache_hits = c.hits;
  result->cache_misses = c.misses;
  result->cache_evictions = c.evictions;
  result->cache_bytes = int64_t(c.bytes);
}

/* C callers can store any integer in the enum-typed options field, and
 * loading an out-of-range value through the enum lvalue is UB; read the raw
 * bytes so a bad value is rejected instead of tripping the sanitizer. */
bool to_session_method(const bkr_method* m, SessionMethod* out) {
  static_assert(sizeof(bkr_method) == sizeof(int), "bkr_method must be int-sized");
  int v = 0;
  std::memcpy(&v, m, sizeof v);
  if (v < 0 || v >= bkr::kSessionMethodCount) return false;
  *out = static_cast<SessionMethod>(v);
  return true;
}

/* A hard failure escaped the solver (throw_on_failure, or a breakdown that
 * crossed the persistent-handle boundary): report its specific status. */
int hard_failure(const bkr::BreakdownError& e, bkr_result* result) {
  if (result != nullptr) {
    result->converged = 0;
    result->status = static_cast<bkr_status>(e.status());
  }
  return 3;
}

template <class T>
CsrMatrix<T>* make_matrix(int64_t n, const int64_t* rowptr, const int64_t* colind,
                          const T* values) {
  if (n <= 0 || rowptr == nullptr || colind == nullptr || values == nullptr) return nullptr;
  const int64_t nnz = rowptr[n];
  if (nnz < 0 || rowptr[0] != 0) return nullptr;
  for (int64_t i = 0; i < n; ++i)
    if (rowptr[i] > rowptr[i + 1]) return nullptr;
  for (int64_t l = 0; l < nnz; ++l)
    if (colind[l] < 0 || colind[l] >= n) return nullptr;
  return new CsrMatrix<T>(n, n, std::vector<index_t>(rowptr, rowptr + n + 1),
                          std::vector<index_t>(colind, colind + nnz),
                          std::vector<T>(values, values + nnz));
}

}  // namespace

struct bkr_matrix {
  CsrMatrix<double>* m;
};
struct bkr_zmatrix {
  CsrMatrix<cd>* m;
};
struct bkr_gcrodr {
  GcroDr<double>* s;
};
struct bkr_zgcrodr {
  GcroDr<cd>* s;
};
struct bkr_cache {
  explicit bkr_cache(size_t budget) : c(budget) {}
  RecycleCache c;
};
struct bkr_session {
  SolverSession<double>* s;
  RecycleCache* cache;
  /* Owned subdomain-deflation preconditioner (bkr_options.coarse > 0). */
  bkr::TwoLevelPreconditioner<double>* coarse = nullptr;
};
struct bkr_zsession {
  SolverSession<cd>* s;
  RecycleCache* cache;
  bkr::TwoLevelPreconditioner<cd>* coarse = nullptr;
};

extern "C" {

void bkr_options_default(bkr_options* opts) {
  if (opts == nullptr) return;
  opts->restart = 30;
  opts->recycle = 10;
  opts->tol = 1e-8;
  opts->max_iterations = 10000;
  opts->side = BKR_SIDE_RIGHT;
  opts->strategy = BKR_STRATEGY_B;
  opts->same_system = 0;
  opts->trace = nullptr;
  opts->no_recovery = 0;
  opts->method = BKR_METHOD_GMRES;
  opts->shards = 0;
  opts->coarse = 0;
  opts->deadline_ms = -1;
  opts->cancel = nullptr;
}

/* --- cooperative cancellation ----------------------------------------- */

bkr_cancel_token* bkr_cancel_token_create(void) {
  return new bkr_cancel_token{};  // bkr-lint: allow(raw-new-delete)
}

void bkr_cancel_token_destroy(bkr_cancel_token* token) {
  delete token;  // bkr-lint: allow(raw-new-delete)
}

void bkr_cancel_token_cancel(bkr_cancel_token* token) {
  if (token != nullptr) token->flag.store(true, std::memory_order_relaxed);
}

void bkr_cancel_token_reset(bkr_cancel_token* token) {
  if (token != nullptr) token->flag.store(false, std::memory_order_relaxed);
}

int bkr_cancel_token_cancelled(const bkr_cancel_token* token) {
  return (token != nullptr && token->flag.load(std::memory_order_relaxed)) ? 1 : 0;
}

/* --- recycle-space cache ---------------------------------------------- */

bkr_cache* bkr_cache_create(size_t byte_budget) {
  return new bkr_cache(byte_budget == 0 ? RecycleCache::kDefaultBudget  // bkr-lint: allow(raw-new-delete)
                                        : byte_budget);
}

void bkr_cache_destroy(bkr_cache* cache) { delete cache; }  // bkr-lint: allow(raw-new-delete)

void bkr_cache_clear(bkr_cache* cache) {
  if (cache != nullptr) cache->c.clear();
}

int64_t bkr_cache_hits(const bkr_cache* cache) {
  return cache == nullptr ? 0 : cache->c.counters().hits;
}

int64_t bkr_cache_misses(const bkr_cache* cache) {
  return cache == nullptr ? 0 : cache->c.counters().misses;
}

int64_t bkr_cache_evictions(const bkr_cache* cache) {
  return cache == nullptr ? 0 : cache->c.counters().evictions;
}

int64_t bkr_cache_entries(const bkr_cache* cache) {
  return cache == nullptr ? 0 : int64_t(cache->c.counters().entries);
}

int64_t bkr_cache_bytes(const bkr_cache* cache) {
  return cache == nullptr ? 0 : int64_t(cache->c.counters().bytes);
}

int bkr_cache_save(const bkr_cache* cache, const char* path) {
  if (cache == nullptr || path == nullptr) return 1;
  return cache->c.save(std::string(path)) ? 0 : 1;
}

int bkr_cache_load(bkr_cache* cache, const char* path) {
  if (cache == nullptr || path == nullptr) return 1;
  return cache->c.load(std::string(path)) ? 0 : 1;
}

bkr_trace* bkr_trace_create(void) { return new bkr_trace{}; }

void bkr_trace_destroy(bkr_trace* trace) { delete trace; }

void bkr_trace_clear(bkr_trace* trace) {
  if (trace != nullptr) trace->t.clear();
}

int64_t bkr_trace_solve_count(const bkr_trace* trace) {
  return trace == nullptr ? 0 : int64_t(trace->t.solves().size());
}

double bkr_trace_phase_seconds(const bkr_trace* trace, bkr_phase phase) {
  if (trace == nullptr || phase < 0 || phase >= bkr::obs::kPhaseCount) return 0;
  return trace->t.phase_seconds(static_cast<bkr::obs::Phase>(phase));
}

int64_t bkr_trace_phase_count(const bkr_trace* trace, bkr_phase phase) {
  if (trace == nullptr || phase < 0 || phase >= bkr::obs::kPhaseCount) return 0;
  return trace->t.phase_count(static_cast<bkr::obs::Phase>(phase));
}

int bkr_trace_write_json(const bkr_trace* trace, const char* path) {
  if (trace == nullptr || path == nullptr) return 1;
  return trace->t.write_json(std::string(path)) ? 0 : 1;
}

int bkr_trace_write_csv(const bkr_trace* trace, const char* path) {
  if (trace == nullptr || path == nullptr) return 1;
  return trace->t.write_csv(std::string(path)) ? 0 : 1;
}

bkr_matrix* bkr_matrix_create(int64_t n, const int64_t* rowptr, const int64_t* colind,
                              const double* values) {
  auto* m = make_matrix<double>(n, rowptr, colind, values);
  return m == nullptr ? nullptr : new bkr_matrix{m};
}

void bkr_matrix_destroy(bkr_matrix* a) {
  if (a == nullptr) return;
  delete a->m;
  delete a;
}

int64_t bkr_matrix_rows(const bkr_matrix* a) { return a == nullptr ? 0 : a->m->rows(); }

int bkr_gmres(const bkr_matrix* a, const double* b, double* x, const bkr_options* opts,
              bkr_result* result) {
  if (a == nullptr || b == nullptr || x == nullptr) return 1;
  const index_t n = a->m->rows();
  CsrOperator<double> op(*a->m);
  const auto st = bkr::block_gmres<double>(op, nullptr, MatrixView<const double>(b, n, 1, n),
                                           MatrixView<double>(x, n, 1, n), to_cpp(opts));
  to_c(st, result);
  return 0;
}

bkr_gcrodr* bkr_gcrodr_create(const bkr_options* opts) {
  auto o = to_cpp(opts);
  if (o.recycle <= 0) o.recycle = 10;
  return new bkr_gcrodr{new GcroDr<double>(o)};
}

void bkr_gcrodr_destroy(bkr_gcrodr* solver) {
  if (solver == nullptr) return;
  delete solver->s;
  delete solver;
}

int bkr_gcrodr_solve(bkr_gcrodr* solver, const bkr_matrix* a, const double* b, double* x,
                     int new_matrix, bkr_result* result) {
  if (solver == nullptr || a == nullptr || b == nullptr || x == nullptr) return 1;
  const index_t n = a->m->rows();
  CsrOperator<double> op(*a->m);
  try {
    const auto st = solver->s->solve(op, nullptr, MatrixView<const double>(b, n, 1, n),
                                     MatrixView<double>(x, n, 1, n), nullptr, new_matrix != 0);
    to_c(st, result);
  } catch (const bkr::BreakdownError& e) {
    return hard_failure(e, result);
  } catch (const std::exception&) {
    return 2;
  }
  return 0;
}

bkr_session* bkr_session_create(const bkr_matrix* a, const bkr_options* opts, bkr_cache* cache) {
  if (a == nullptr) return nullptr;
  SessionMethod method = SessionMethod::BlockGmres;
  if (opts != nullptr && !to_session_method(&opts->method, &method)) return nullptr;
  SessionConfig cfg;
  cfg.method = method;
  cfg.options = to_cpp(opts);
  if (bkr::session_method_recycles(method) && cfg.options.recycle <= 0) cfg.options.recycle = 10;
  cfg.cache = cache == nullptr ? nullptr : &cache->c;
  bkr::TwoLevelPreconditioner<double>* coarse = nullptr;
  if (opts != nullptr && opts->coarse > 0) {
    bkr::CoarseSpaceOptions copts;
    copts.subdomains = index_t(opts->coarse);
    if (opts->trace != nullptr) copts.trace = &opts->trace->t;
    coarse = new bkr::TwoLevelPreconditioner<double>(*a->m, nullptr, copts);  // bkr-lint: allow(raw-new-delete)
  }
  auto* s = new SolverSession<double>(*a->m, coarse, cfg);  // bkr-lint: allow(raw-new-delete)
  return new bkr_session{s, cfg.cache, coarse};  // bkr-lint: allow(raw-new-delete)
}

void bkr_session_destroy(bkr_session* session) {
  if (session == nullptr) return;
  delete session->s;       // bkr-lint: allow(raw-new-delete)
  delete session->coarse;  // bkr-lint: allow(raw-new-delete)
  delete session;          // bkr-lint: allow(raw-new-delete)
}

int bkr_session_solve(bkr_session* session, const double* b, double* x, int64_t nrhs,
                      bkr_result* result) {
  if (session == nullptr || b == nullptr || x == nullptr || nrhs <= 0) return 1;
  const index_t n = session->s->rows();
  try {
    const auto st = session->s->solve(MatrixView<const double>(b, n, nrhs, n),
                                      MatrixView<double>(x, n, nrhs, n));
    to_c(st, result);
    fill_cache_stats(session->cache, session->s->warm_started(), result);
  } catch (const bkr::BreakdownError& e) {
    return hard_failure(e, result);
  } catch (const std::exception&) {
    return 2;
  }
  return 0;
}

int bkr_session_flush(bkr_session* session) {
  return (session != nullptr && session->s->flush()) ? 1 : 0;
}

int64_t bkr_session_solves(const bkr_session* session) {
  return session == nullptr ? 0 : int64_t(session->s->solves());
}

int bkr_session_warm_started(const bkr_session* session) {
  return (session != nullptr && session->s->warm_started()) ? 1 : 0;
}

void bkr_session_set_cancellation(bkr_session* session, bkr_cancel_token* token,
                                  int64_t deadline_ms) {
  if (session == nullptr) return;
  session->s->set_cancellation(token == nullptr ? nullptr : &token->flag,
                               deadline_from_ms(deadline_ms));
}

bkr_zmatrix* bkr_zmatrix_create(int64_t n, const int64_t* rowptr, const int64_t* colind,
                                const double* values_interleaved) {
  auto* m = make_matrix<cd>(n, rowptr, colind,
                            reinterpret_cast<const cd*>(values_interleaved));
  return m == nullptr ? nullptr : new bkr_zmatrix{m};
}

void bkr_zmatrix_destroy(bkr_zmatrix* a) {
  if (a == nullptr) return;
  delete a->m;
  delete a;
}

int64_t bkr_zmatrix_rows(const bkr_zmatrix* a) { return a == nullptr ? 0 : a->m->rows(); }

int bkr_zgmres(const bkr_zmatrix* a, const double* b_interleaved, double* x_interleaved,
               const bkr_options* opts, bkr_result* result) {
  if (a == nullptr || b_interleaved == nullptr || x_interleaved == nullptr) return 1;
  const index_t n = a->m->rows();
  CsrOperator<cd> op(*a->m);
  const auto st = bkr::block_gmres<cd>(
      op, nullptr, MatrixView<const cd>(reinterpret_cast<const cd*>(b_interleaved), n, 1, n),
      MatrixView<cd>(reinterpret_cast<cd*>(x_interleaved), n, 1, n), to_cpp(opts));
  to_c(st, result);
  return 0;
}

bkr_zgcrodr* bkr_zgcrodr_create(const bkr_options* opts) {
  auto o = to_cpp(opts);
  if (o.recycle <= 0) o.recycle = 10;
  return new bkr_zgcrodr{new GcroDr<cd>(o)};
}

void bkr_zgcrodr_destroy(bkr_zgcrodr* solver) {
  if (solver == nullptr) return;
  delete solver->s;
  delete solver;
}

int bkr_zgcrodr_solve(bkr_zgcrodr* solver, const bkr_zmatrix* a, const double* b_interleaved,
                      double* x_interleaved, int new_matrix, bkr_result* result) {
  if (solver == nullptr || a == nullptr || b_interleaved == nullptr || x_interleaved == nullptr)
    return 1;
  const index_t n = a->m->rows();
  CsrOperator<cd> op(*a->m);
  try {
    const auto st = solver->s->solve(
        op, nullptr, MatrixView<const cd>(reinterpret_cast<const cd*>(b_interleaved), n, 1, n),
        MatrixView<cd>(reinterpret_cast<cd*>(x_interleaved), n, 1, n), nullptr, new_matrix != 0);
    to_c(st, result);
  } catch (const bkr::BreakdownError& e) {
    return hard_failure(e, result);
  } catch (const std::exception&) {
    return 2;
  }
  return 0;
}

bkr_zsession* bkr_zsession_create(const bkr_zmatrix* a, const bkr_options* opts,
                                  bkr_cache* cache) {
  if (a == nullptr) return nullptr;
  SessionMethod method = SessionMethod::BlockGmres;
  if (opts != nullptr && !to_session_method(&opts->method, &method)) return nullptr;
  SessionConfig cfg;
  cfg.method = method;
  cfg.options = to_cpp(opts);
  if (bkr::session_method_recycles(method) && cfg.options.recycle <= 0) cfg.options.recycle = 10;
  cfg.cache = cache == nullptr ? nullptr : &cache->c;
  bkr::TwoLevelPreconditioner<cd>* coarse = nullptr;
  if (opts != nullptr && opts->coarse > 0) {
    bkr::CoarseSpaceOptions copts;
    copts.subdomains = index_t(opts->coarse);
    if (opts->trace != nullptr) copts.trace = &opts->trace->t;
    coarse = new bkr::TwoLevelPreconditioner<cd>(*a->m, nullptr, copts);  // bkr-lint: allow(raw-new-delete)
  }
  auto* s = new SolverSession<cd>(*a->m, coarse, cfg);  // bkr-lint: allow(raw-new-delete)
  return new bkr_zsession{s, cfg.cache, coarse};  // bkr-lint: allow(raw-new-delete)
}

void bkr_zsession_destroy(bkr_zsession* session) {
  if (session == nullptr) return;
  delete session->s;       // bkr-lint: allow(raw-new-delete)
  delete session->coarse;  // bkr-lint: allow(raw-new-delete)
  delete session;          // bkr-lint: allow(raw-new-delete)
}

int bkr_zsession_solve(bkr_zsession* session, const double* b_interleaved,
                       double* x_interleaved, int64_t nrhs, bkr_result* result) {
  if (session == nullptr || b_interleaved == nullptr || x_interleaved == nullptr || nrhs <= 0)
    return 1;
  const index_t n = session->s->rows();
  try {
    const auto st = session->s->solve(
        MatrixView<const cd>(reinterpret_cast<const cd*>(b_interleaved), n, nrhs, n),
        MatrixView<cd>(reinterpret_cast<cd*>(x_interleaved), n, nrhs, n));
    to_c(st, result);
    fill_cache_stats(session->cache, session->s->warm_started(), result);
  } catch (const bkr::BreakdownError& e) {
    return hard_failure(e, result);
  } catch (const std::exception&) {
    return 2;
  }
  return 0;
}

int bkr_zsession_flush(bkr_zsession* session) {
  return (session != nullptr && session->s->flush()) ? 1 : 0;
}

int64_t bkr_zsession_solves(const bkr_zsession* session) {
  return session == nullptr ? 0 : int64_t(session->s->solves());
}

int bkr_zsession_warm_started(const bkr_zsession* session) {
  return (session != nullptr && session->s->warm_started()) ? 1 : 0;
}

void bkr_zsession_set_cancellation(bkr_zsession* session, bkr_cancel_token* token,
                                   int64_t deadline_ms) {
  if (session == nullptr) return;
  session->s->set_cancellation(token == nullptr ? nullptr : &token->flag,
                               deadline_from_ms(deadline_ms));
}

}  // extern "C"
