/*
 * C interface to the bkrylov solvers.
 *
 * The paper ships its solvers "readily available and usable in any C/C++,
 * Python, or Fortran code" through a C library built from the C++ core
 * (artifact section C: `LIST_COMPILATION=c make lib`). This header is the
 * equivalent surface here: opaque handles around CSR matrices and solver
 * instances, plain-old-data options, and double / double-complex entry
 * points (the complex functions take interleaved re/im pairs, the layout
 * of both C99 `double complex` and C++ `std::complex<double>`).
 */
#ifndef BKR_C_H
#define BKR_C_H

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct bkr_matrix bkr_matrix;         /* CSR matrix, double */
typedef struct bkr_zmatrix bkr_zmatrix;       /* CSR matrix, double complex */
typedef struct bkr_gcrodr bkr_gcrodr;         /* persistent GCRO-DR solver, double */
typedef struct bkr_zgcrodr bkr_zgcrodr;       /* persistent GCRO-DR solver, complex */
typedef struct bkr_trace bkr_trace;           /* solver telemetry sink (src/obs) */
typedef struct bkr_cache bkr_cache;           /* recycle-space cache (src/core) */
typedef struct bkr_session bkr_session;       /* solver session, double */
typedef struct bkr_zsession bkr_zsession;     /* solver session, double complex */
typedef struct bkr_cancel_token bkr_cancel_token; /* cooperative cancel flag */

typedef enum bkr_side {
  BKR_SIDE_NONE = 0,
  BKR_SIDE_LEFT = 1,
  BKR_SIDE_RIGHT = 2,
  BKR_SIDE_FLEXIBLE = 3,
} bkr_side;

typedef enum bkr_strategy {
  BKR_STRATEGY_A = 0, /* eq. 3a */
  BKR_STRATEGY_B = 1, /* eq. 3b */
} bkr_strategy;

/* Krylov method selector for the session API (mirrors the C++
 * SessionMethod in core/session.hpp). */
typedef enum bkr_method {
  BKR_METHOD_CG = 0,
  BKR_METHOD_BLOCK_CG = 1,
  BKR_METHOD_GMRES = 2,          /* (block) GMRES */
  BKR_METHOD_PSEUDO_GMRES = 3,   /* pseudo-block GMRES */
  BKR_METHOD_LGMRES = 4,
  BKR_METHOD_GCRODR = 5,         /* (block) GCRO-DR */
  BKR_METHOD_PSEUDO_GCRODR = 6,  /* pseudo-block GCRO-DR */
} bkr_method;

/* Termination taxonomy, mirroring the C++ SolveStatus (core/solver.hpp).
 * `converged` in bkr_result stays the primary success flag; the status
 * refines every non-converged exit into a diagnosable cause. */
typedef enum bkr_status {
  BKR_STATUS_CONVERGED = 0,              /* residual target met */
  BKR_STATUS_MAX_ITERATIONS = 1,         /* iteration budget exhausted */
  BKR_STATUS_STAGNATED = 2,              /* no progress possible (null update /
                                          * exhausted space) */
  BKR_STATUS_BREAKDOWN = 3,              /* structural breakdown (singular block
                                          * pivot, rank collapse) */
  BKR_STATUS_NON_FINITE_RESIDUAL = 4,    /* NaN/Inf entered the recurrence */
  BKR_STATUS_PRECONDITIONER_FAILURE = 5, /* preconditioner apply failed */
  BKR_STATUS_EIG_SOLVE_FAILURE = 6,      /* deflation eigensolve failed and
                                          * recovery was disabled */
  BKR_STATUS_FAULTED = 7,                /* external fault (injected or
                                          * operator-side) */
  BKR_STATUS_CANCELLED = 8,              /* bkr_cancel_token observed set at an
                                          * iteration boundary; x holds the
                                          * last consistent partial iterate */
  BKR_STATUS_DEADLINE_EXCEEDED = 9,      /* deadline_ms elapsed before
                                          * convergence */
} bkr_status;

typedef struct bkr_options {
  int64_t restart;        /* m  (default 30) */
  int64_t recycle;        /* k  (GCRO-DR only; default 10) */
  double tol;             /* relative residual target (default 1e-8) */
  int64_t max_iterations; /* default 10000 */
  bkr_side side;          /* default BKR_SIDE_RIGHT */
  bkr_strategy strategy;  /* default BKR_STRATEGY_B */
  int same_system;        /* nonzero: A_i identical across the sequence */
  bkr_trace* trace;       /* optional telemetry sink, not owned (default NULL).
                           * For the persistent GCRO-DR handles the sink is
                           * captured at create time. */
  int no_recovery;        /* nonzero: disable the recovery-escalation ladder
                           * (orthogonalization repair, recycle shrinking,
                           * early restart); failures then surface directly
                           * as their bkr_status (default 0) */
  bkr_method method;      /* Krylov method used by the session API
                           * (default BKR_METHOD_GMRES; ignored by the
                           * method-specific entry points) */
  int64_t shards;         /* > 0: session operator applies run through the
                           * sharded SPMD layer with this many row-disjoint
                           * shards, and every dot/norm uses the explicit
                           * binary-tree reduction. Solves are bitwise
                           * identical at every shard count (default 0:
                           * monolithic operator) */
  int64_t coarse;         /* > 0: the session owns a subdomain-deflation
                           * coarse correction (identity inner level,
                           * additive: z = r + Z E^-1 Z^T r) with this many
                           * subdomains as its preconditioner (default 0:
                           * unpreconditioned) */
  int64_t deadline_ms;    /* >= 0: solves abort with
                           * BKR_STATUS_DEADLINE_EXCEEDED once this many
                           * milliseconds have elapsed, measured from the
                           * moment the options are bound (solver create /
                           * session create); 0 expires immediately, before
                           * the first operator apply. Default -1: no
                           * deadline, no clock reads on the hot path. */
  bkr_cancel_token* cancel; /* optional cooperative cancel flag, not owned;
                             * must outlive every solve it is attached to.
                             * Solvers poll it once per outer iteration and
                             * abort with BKR_STATUS_CANCELLED (default
                             * NULL) */
} bkr_options;

typedef struct bkr_result {
  int converged;
  int64_t iterations;
  int64_t cycles;
  int64_t reductions;
  int64_t operator_applies; /* SpMM count (blocks) */
  int64_t precond_applies;  /* M^{-1} block applications */
  double seconds;
  bkr_status status;        /* refined termination cause */
  int64_t recoveries;       /* escalation-ladder actions taken during the solve */
  /* Recycle-cache statistics (session API only; zero elsewhere). The
   * counters are cumulative totals of the cache attached to the session
   * at the time the solve returned. */
  int64_t cache_hits;
  int64_t cache_misses;
  int64_t cache_evictions;
  int64_t cache_bytes;      /* payload bytes currently held by the cache */
  int warm_start;           /* nonzero: the session was warm-started from
                             * a cached recycle space */
} bkr_result;

/* Fill `opts` with the library defaults. */
void bkr_options_default(bkr_options* opts);

/* --- cooperative cancellation ----------------------------------------- */

/* A cancel token wraps one atomic flag. Attach it to any number of solves
 * through bkr_options.cancel (or re-arm a live session with
 * bkr_session_set_cancellation); setting it from any thread makes every
 * attached solve abort with BKR_STATUS_CANCELLED at its next iteration
 * boundary, leaving x at the last consistent iterate. */
bkr_cancel_token* bkr_cancel_token_create(void);
void bkr_cancel_token_destroy(bkr_cancel_token* token);
/* Set the flag (thread-safe, may be called from a signal-adjacent thread). */
void bkr_cancel_token_cancel(bkr_cancel_token* token);
/* Clear the flag so the token can be reused for the next solve. */
void bkr_cancel_token_reset(bkr_cancel_token* token);
/* 1 if the flag is set. */
int bkr_cancel_token_cancelled(const bkr_cancel_token* token);

/* --- telemetry --------------------------------------------------------- */

/* Identifiers of the instrumented phases (see src/obs/trace.hpp). */
typedef enum bkr_phase {
  BKR_PHASE_SPMM = 0,
  BKR_PHASE_PRECOND = 1,
  BKR_PHASE_ORTHO_PROJECTION = 2,
  BKR_PHASE_ORTHO_NORMALIZATION = 3,
  BKR_PHASE_REDUCTION = 4,
  BKR_PHASE_SMALL_DENSE = 5,
  BKR_PHASE_RESTART_EIG = 6,
} bkr_phase;

/* A trace accumulates one record per solve it observes; attach it through
 * bkr_options.trace. Not thread-safe: use one trace per concurrent solver. */
bkr_trace* bkr_trace_create(void);
void bkr_trace_destroy(bkr_trace* trace);
void bkr_trace_clear(bkr_trace* trace);
/* Number of solves recorded so far. */
int64_t bkr_trace_solve_count(const bkr_trace* trace);
/* Totals across all recorded solves. */
double bkr_trace_phase_seconds(const bkr_trace* trace, bkr_phase phase);
int64_t bkr_trace_phase_count(const bkr_trace* trace, bkr_phase phase);
/* Export; return 0 on success, nonzero if the file could not be written. */
int bkr_trace_write_json(const bkr_trace* trace, const char* path);
int bkr_trace_write_csv(const bkr_trace* trace, const char* path);

/* --- recycle-space cache ---------------------------------------------- */

/* A process-wide cache of recycled deflation spaces keyed by operator
 * fingerprint. Share one cache across sessions (it is thread-safe) so a
 * session over a previously-seen operator warm-starts from the space a
 * prior session deposited. `byte_budget` bounds the payload bytes held;
 * least-recently-used entries are evicted past it. Pass 0 for the
 * default budget (64 MiB). */
bkr_cache* bkr_cache_create(size_t byte_budget);
void bkr_cache_destroy(bkr_cache* cache);
void bkr_cache_clear(bkr_cache* cache);
int64_t bkr_cache_hits(const bkr_cache* cache);
int64_t bkr_cache_misses(const bkr_cache* cache);
int64_t bkr_cache_evictions(const bkr_cache* cache);
int64_t bkr_cache_entries(const bkr_cache* cache);
int64_t bkr_cache_bytes(const bkr_cache* cache);
/* Binary snapshot of the cache contents (checksummed; a corrupted or
 * truncated file loads as a smaller / empty cache, never as bad data).
 * Return 0 on success, nonzero on failure. */
int bkr_cache_save(const bkr_cache* cache, const char* path);
int bkr_cache_load(bkr_cache* cache, const char* path);

/* --- double-precision real ------------------------------------------- */

/* Take ownership of nothing: the CSR arrays are copied. Returns NULL on
 * invalid input (sizes must be consistent, indices 0-based). */
bkr_matrix* bkr_matrix_create(int64_t n, const int64_t* rowptr, const int64_t* colind,
                              const double* values);
void bkr_matrix_destroy(bkr_matrix* a);
int64_t bkr_matrix_rows(const bkr_matrix* a);

/* One GMRES solve of A x = b (x holds the initial guess on entry, the
 * solution on return). Returns 0 on success, nonzero on invalid input. */
int bkr_gmres(const bkr_matrix* a, const double* b, double* x, const bkr_options* opts,
              bkr_result* result);

/* Persistent GCRO-DR: the recycled subspace lives in the handle across
 * calls, as in the paper's sequence API (eq. 1). `new_matrix` marks
 * A_i != A_{i-1}.
 *
 * Solve return codes: 0 = the solve ran (inspect result->converged and
 * result->status for the outcome), 1 = invalid input, 2 = internal error,
 * 3 = hard solver failure (breakdown family) — result->status carries the
 * specific bkr_status. */
bkr_gcrodr* bkr_gcrodr_create(const bkr_options* opts);
void bkr_gcrodr_destroy(bkr_gcrodr* solver);
int bkr_gcrodr_solve(bkr_gcrodr* solver, const bkr_matrix* a, const double* b, double* x,
                     int new_matrix, bkr_result* result);

/* A session binds one matrix (not owned; it must outlive the session)
 * and one method (opts->method) for its whole life; right-hand sides
 * arrive through bkr_session_solve. Recycling methods (GCRODR /
 * PSEUDO_GCRODR) carry their deflation space across solves; with a cache
 * attached they warm-start from it at create and deposit their final
 * space back at destroy. `cache` may be NULL. Returns NULL on invalid
 * input. */
bkr_session* bkr_session_create(const bkr_matrix* a, const bkr_options* opts, bkr_cache* cache);
void bkr_session_destroy(bkr_session* session);
/* Solve A X = B for nrhs right-hand sides stored column-major with
 * leading dimension n (x holds the initial guess on entry, the solution
 * on return). Same return codes as bkr_gcrodr_solve. */
int bkr_session_solve(bkr_session* session, const double* b, double* x, int64_t nrhs,
                      bkr_result* result);
/* Deposit the current recycle space into the cache now; returns 1 if a
 * space was stored, 0 otherwise. */
int bkr_session_flush(bkr_session* session);
int64_t bkr_session_solves(const bkr_session* session);
/* 1 when the session was warm-started from a cached recycle space. */
int bkr_session_warm_started(const bkr_session* session);
/* Re-arm cancellation for the session's next solves: `token` (may be NULL)
 * replaces the one captured at create, and `deadline_ms` (measured from
 * this call; < 0 clears any deadline) replaces the create-time deadline.
 * A long-lived server session calls this once per request. */
void bkr_session_set_cancellation(bkr_session* session, bkr_cancel_token* token,
                                  int64_t deadline_ms);

/* --- double-precision complex (interleaved re/im) --------------------- */

bkr_zmatrix* bkr_zmatrix_create(int64_t n, const int64_t* rowptr, const int64_t* colind,
                                const double* values_interleaved);
void bkr_zmatrix_destroy(bkr_zmatrix* a);
int64_t bkr_zmatrix_rows(const bkr_zmatrix* a);

int bkr_zgmres(const bkr_zmatrix* a, const double* b_interleaved, double* x_interleaved,
               const bkr_options* opts, bkr_result* result);

bkr_zgcrodr* bkr_zgcrodr_create(const bkr_options* opts);
void bkr_zgcrodr_destroy(bkr_zgcrodr* solver);
int bkr_zgcrodr_solve(bkr_zgcrodr* solver, const bkr_zmatrix* a, const double* b_interleaved,
                      double* x_interleaved, int new_matrix, bkr_result* result);

/* Complex sessions; semantics mirror bkr_session_*. */
bkr_zsession* bkr_zsession_create(const bkr_zmatrix* a, const bkr_options* opts,
                                  bkr_cache* cache);
void bkr_zsession_destroy(bkr_zsession* session);
int bkr_zsession_solve(bkr_zsession* session, const double* b_interleaved,
                       double* x_interleaved, int64_t nrhs, bkr_result* result);
int bkr_zsession_flush(bkr_zsession* session);
int64_t bkr_zsession_solves(const bkr_zsession* session);
int bkr_zsession_warm_started(const bkr_zsession* session);
void bkr_zsession_set_cancellation(bkr_zsession* session, bkr_cancel_token* token,
                                   int64_t deadline_ms);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* BKR_C_H */
