// Sparse symmetric direct solver (the PARDISO stand-in).
//
// LDL^T factorization of a symmetric matrix — real SPD (Poisson,
// elasticity subdomains) or complex *symmetric* (time-harmonic Maxwell,
// A = A^T without conjugation) — using the up-looking row algorithm of
// Davis's LDL, preceded by a nested-dissection fill-reducing ordering.
//
// The solve phase accepts a block of p contiguous right-hand sides and
// traverses the factor once for the whole block (single forward
// elimination + backward substitution, exactly the property the paper
// exploits in section V-B3 / fig. 6: the factor is the large, memory-bound
// data structure, so solving p RHS together multiplies arithmetic
// intensity by p). RHS panels can additionally be spread over threads.
#pragma once

#include <complex>
#include <stdexcept>
#include <vector>

#include "direct/ordering.hpp"
#include "la/dense.hpp"
#include "sparse/csr.hpp"

namespace bkr {

enum class FactorOrdering { NestedDissection, Rcm, Natural };

template <class T>
class SparseLDLT {
 public:
  // Factors the matrix eagerly; throws std::runtime_error on a (numerically)
  // singular pivot. The matrix must be structurally and numerically
  // symmetric (unconjugated).
  explicit SparseLDLT(const CsrMatrix<T>& a,
                      FactorOrdering ordering = FactorOrdering::NestedDissection);

  [[nodiscard]] index_t n() const { return n_; }
  [[nodiscard]] index_t factor_nnz() const { return index_t(li_.size()) + n_; }

  // X := A^{-1} B, in place, for a block of B.cols() RHS. `threads` > 1
  // splits the RHS into panels executed on the global thread pool.
  void solve(MatrixView<T> b, index_t threads = 1) const;

  // Convenience out-of-place single/multi RHS solve.
  void solve_copy(MatrixView<const T> b, MatrixView<T> x, index_t threads = 1) const {
    copy_into<T>(b, x);
    solve(x, threads);
  }

 private:
  void solve_panel(MatrixView<T> b) const;

  index_t n_ = 0;
  std::vector<index_t> perm_;      // new -> old
  std::vector<index_t> inv_perm_;  // old -> new
  std::vector<index_t> lp_;        // column pointers of L (CSC), size n+1
  std::vector<index_t> li_;        // row indices of L
  std::vector<T> lx_;              // values of L (unit diagonal implicit)
  std::vector<T> d_;               // diagonal of D
};

extern template class SparseLDLT<double>;
extern template class SparseLDLT<std::complex<double>>;

}  // namespace bkr
