#include "direct/ordering.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

namespace bkr {
namespace {

// BFS level structure of the masked subgraph from `root`.
std::vector<index_t> bfs_levels(const Graph& g, index_t root, const std::vector<index_t>& verts,
                                const std::vector<index_t>& local_of, std::vector<index_t>& level) {
  level.assign(verts.size(), -1);
  std::vector<index_t> order;
  order.reserve(verts.size());
  std::deque<index_t> queue{root};
  level[size_t(local_of[size_t(verts[size_t(root)])])] = 0;  // root is a local index
  // NOTE: `root` is local; translate through verts.
  while (!queue.empty()) {
    const index_t v = queue.front();
    queue.pop_front();
    order.push_back(v);
    const index_t gv = verts[size_t(v)];
    for (index_t l = g.ptr[size_t(gv)]; l < g.ptr[size_t(gv) + 1]; ++l) {
      const index_t gw = g.adj[size_t(l)];
      const index_t w = local_of[size_t(gw)];
      if (w < 0 || level[size_t(w)] >= 0) continue;
      level[size_t(w)] = level[size_t(v)] + 1;
      queue.push_back(w);
    }
  }
  return order;
}

struct Work {
  std::vector<index_t> verts;  // global vertex ids of this subproblem
};

}  // namespace

std::vector<index_t> nested_dissection(const Graph& g, index_t leaf_size) {
  std::vector<index_t> perm;
  perm.reserve(size_t(g.n));
  std::vector<index_t> local_of(size_t(g.n), -1);

  // Output slots are filled back-to-front: separators are ordered last.
  std::vector<index_t> out(size_t(g.n), -1);
  index_t out_hi = g.n;  // next free slot counting down for separators

  // Depth-first worklist; each item either recurses or gets leaf-ordered
  // at the front cursor.
  std::vector<Work> stack;
  {
    Work all;
    all.verts.resize(size_t(g.n));
    std::iota(all.verts.begin(), all.verts.end(), index_t(0));
    stack.push_back(std::move(all));
  }
  std::vector<std::vector<index_t>> leaves;  // ordered blocks, front part

  while (!stack.empty()) {
    Work w = std::move(stack.back());
    stack.pop_back();
    const index_t n = index_t(w.verts.size());
    if (n == 0) continue;
    if (n <= leaf_size) {
      leaves.push_back(std::move(w.verts));
      continue;
    }
    for (index_t l = 0; l < n; ++l) local_of[size_t(w.verts[size_t(l)])] = l;
    // Find a deep BFS root, then split at the median level.
    std::vector<index_t> level;
    std::vector<index_t> order = bfs_levels(g, 0, w.verts, local_of, level);
    if (index_t(order.size()) < n) {
      // Disconnected: peel off the reached component, requeue the rest.
      std::vector<char> reached(size_t(n), 0);
      for (const index_t v : order) reached[size_t(v)] = 1;
      Work comp, rest;
      for (index_t l = 0; l < n; ++l)
        (reached[size_t(l)] ? comp.verts : rest.verts).push_back(w.verts[size_t(l)]);
      for (index_t l = 0; l < n; ++l) local_of[size_t(w.verts[size_t(l)])] = -1;
      stack.push_back(std::move(rest));
      stack.push_back(std::move(comp));
      continue;
    }
    // Re-root at the deepest vertex for a flatter level structure.
    const index_t new_root = order.back();
    order = bfs_levels(g, new_root, w.verts, local_of, level);
    const index_t max_level = level[size_t(order.back())];
    if (max_level < 2) {
      // Too shallow to cut: order as a leaf.
      for (index_t l = 0; l < n; ++l) local_of[size_t(w.verts[size_t(l)])] = -1;
      leaves.push_back(std::move(w.verts));
      continue;
    }
    const index_t mid = max_level / 2;
    Work below, above;
    std::vector<index_t> separator;
    for (index_t l = 0; l < n; ++l) {
      const index_t lev = level[size_t(l)];
      if (lev < mid)
        below.verts.push_back(w.verts[size_t(l)]);
      else if (lev > mid)
        above.verts.push_back(w.verts[size_t(l)]);
      else
        separator.push_back(w.verts[size_t(l)]);
    }
    for (index_t l = 0; l < n; ++l) local_of[size_t(w.verts[size_t(l)])] = -1;
    // Separator vertices take the highest remaining slots.
    for (index_t l = index_t(separator.size()) - 1; l >= 0; --l) out[size_t(--out_hi)] = separator[size_t(l)];
    stack.push_back(std::move(above));
    stack.push_back(std::move(below));
  }

  // Leaf blocks fill the front slots in discovery order, RCM-ordered
  // inside each block for low local fill.
  index_t cursor = 0;
  for (auto& block : leaves) {
    // Local RCM: build the subgraph and reuse the global RCM.
    const index_t n = index_t(block.size());
    std::vector<index_t> lof(size_t(g.n), -1);
    for (index_t l = 0; l < n; ++l) lof[size_t(block[size_t(l)])] = l;
    Graph sub;
    sub.n = n;
    sub.ptr.assign(size_t(n) + 1, 0);
    for (index_t l = 0; l < n; ++l) {
      const index_t gv = block[size_t(l)];
      for (index_t e = g.ptr[size_t(gv)]; e < g.ptr[size_t(gv) + 1]; ++e)
        if (lof[size_t(g.adj[size_t(e)])] >= 0) ++sub.ptr[size_t(l) + 1];
    }
    for (index_t l = 0; l < n; ++l) sub.ptr[size_t(l) + 1] += sub.ptr[size_t(l)];
    sub.adj.resize(size_t(sub.ptr[size_t(n)]));
    {
      std::vector<index_t> next(sub.ptr.begin(), sub.ptr.end() - 1);
      for (index_t l = 0; l < n; ++l) {
        const index_t gv = block[size_t(l)];
        for (index_t e = g.ptr[size_t(gv)]; e < g.ptr[size_t(gv) + 1]; ++e) {
          const index_t lw = lof[size_t(g.adj[size_t(e)])];
          if (lw >= 0) sub.adj[size_t(next[size_t(l)]++)] = lw;
        }
      }
    }
    const std::vector<index_t> local_perm = rcm_ordering(sub);
    for (index_t l = 0; l < n; ++l) out[size_t(cursor++)] = block[size_t(local_perm[size_t(l)])];
  }
  return out;
}

}  // namespace bkr
