#include "direct/factor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/types.hpp"
#include "parallel/thread_pool.hpp"
#include "sparse/graph.hpp"

namespace bkr {

template <class T>
SparseLDLT<T>::SparseLDLT(const CsrMatrix<T>& a, FactorOrdering ordering) : n_(a.rows()) {
  if (a.rows() != a.cols()) throw std::invalid_argument("SparseLDLT: matrix must be square");
  const Graph g = adjacency_of(a);
  switch (ordering) {
    case FactorOrdering::NestedDissection:
      perm_ = nested_dissection(g);
      break;
    case FactorOrdering::Rcm:
      perm_ = rcm_ordering(g);
      break;
    case FactorOrdering::Natural:
      perm_.resize(size_t(n_));
      std::iota(perm_.begin(), perm_.end(), index_t(0));
      break;
  }
  inv_perm_.resize(size_t(n_));
  for (index_t i = 0; i < n_; ++i) inv_perm_[size_t(perm_[size_t(i)])] = i;
  const CsrMatrix<T> pa = permute_symmetric(a, perm_);

  // --- symbolic: elimination tree and column counts (upper triangle) ---
  const index_t n = n_;
  std::vector<index_t> parent(size_t(n), -1);
  std::vector<index_t> flag(size_t(n), -1);
  std::vector<index_t> lnz(size_t(n), 0);
  for (index_t k = 0; k < n; ++k) {
    parent[size_t(k)] = -1;
    flag[size_t(k)] = k;
    for (index_t p = pa.rowptr()[size_t(k)]; p < pa.rowptr()[size_t(k) + 1]; ++p) {
      index_t i = pa.colind()[size_t(p)];
      if (i >= k) continue;
      for (; flag[size_t(i)] != k; i = parent[size_t(i)]) {
        if (parent[size_t(i)] == -1) parent[size_t(i)] = k;
        ++lnz[size_t(i)];
        flag[size_t(i)] = k;
      }
    }
  }
  lp_.resize(size_t(n) + 1);
  lp_[0] = 0;
  for (index_t k = 0; k < n; ++k) lp_[size_t(k) + 1] = lp_[size_t(k)] + lnz[size_t(k)];
  li_.resize(size_t(lp_[size_t(n)]));
  lx_.resize(size_t(lp_[size_t(n)]));
  d_.resize(size_t(n));

  // --- numeric: up-looking LDL^T (Davis's LDL, unconjugated) -----------
  std::vector<T> y(size_t(n), T(0));
  std::vector<index_t> pattern(static_cast<size_t>(n));
  std::vector<index_t> lfill(size_t(n), 0);  // current fill of each column
  std::fill(flag.begin(), flag.end(), index_t(-1));
  real_t<T> dmax(0);
  for (index_t k = 0; k < n; ++k) {
    index_t top = n;
    flag[size_t(k)] = k;
    y[size_t(k)] = T(0);
    for (index_t p = pa.rowptr()[size_t(k)]; p < pa.rowptr()[size_t(k) + 1]; ++p) {
      index_t i = pa.colind()[size_t(p)];
      if (i > k) continue;
      y[size_t(i)] += pa.values()[size_t(p)];
      index_t len = 0;
      for (; flag[size_t(i)] != k; i = parent[size_t(i)]) {
        pattern[size_t(len++)] = i;
        flag[size_t(i)] = k;
      }
      while (len > 0) pattern[size_t(--top)] = pattern[size_t(--len)];
    }
    d_[size_t(k)] = y[size_t(k)];
    y[size_t(k)] = T(0);
    for (; top < n; ++top) {
      const index_t i = pattern[size_t(top)];
      const T yi = y[size_t(i)];
      y[size_t(i)] = T(0);
      const index_t p2 = lp_[size_t(i)] + lfill[size_t(i)];
      for (index_t p = lp_[size_t(i)]; p < p2; ++p) y[size_t(li_[size_t(p)])] -= lx_[size_t(p)] * yi;
      const T lki = yi / d_[size_t(i)];
      d_[size_t(k)] -= lki * yi;
      li_[size_t(p2)] = k;
      lx_[size_t(p2)] = lki;
      ++lfill[size_t(i)];
    }
    const auto mag = abs_val(d_[size_t(k)]);
    dmax = std::max(dmax, mag);
    if (mag <= real_t<T>(1e-14) * std::max(dmax, real_t<T>(1)))
      throw std::runtime_error("SparseLDLT: zero pivot at column " + std::to_string(k));
  }
}

template <class T>
void SparseLDLT<T>::solve_panel(MatrixView<T> b) const {
  const index_t n = n_;
  const index_t p = b.cols();
  // L Y = B (forward); the factor is traversed once for all p columns.
  for (index_t j = 0; j < n; ++j) {
    for (index_t l = lp_[size_t(j)]; l < lp_[size_t(j) + 1]; ++l) {
      const index_t i = li_[size_t(l)];
      const T lij = lx_[size_t(l)];
      for (index_t r = 0; r < p; ++r) b(i, r) -= lij * b(j, r);
    }
  }
  // D Z = Y.
  for (index_t j = 0; j < n; ++j) {
    const T inv = T(1) / d_[size_t(j)];
    for (index_t r = 0; r < p; ++r) b(j, r) *= inv;
  }
  // L^T X = Z (backward).
  for (index_t j = n - 1; j >= 0; --j) {
    for (index_t l = lp_[size_t(j)]; l < lp_[size_t(j) + 1]; ++l) {
      const index_t i = li_[size_t(l)];
      const T lij = lx_[size_t(l)];
      for (index_t r = 0; r < p; ++r) b(j, r) -= lij * b(i, r);
    }
  }
}

template <class T>
void SparseLDLT<T>::solve(MatrixView<T> b, index_t threads) const {
  const index_t n = n_;
  const index_t p = b.cols();
  assert(b.rows() == n);
  // Permute rows into factor order in a scratch block.
  DenseMatrix<T> scratch(n, p);
  for (index_t r = 0; r < p; ++r) {
    const T* src = b.col(r);
    T* dst = scratch.col(r);
    for (index_t i = 0; i < n; ++i) dst[i] = src[perm_[size_t(i)]];
  }
  if (threads <= 1 || p == 1) {
    solve_panel(scratch.view());
  } else {
    const index_t panels = std::min(threads, p);
    const index_t width = (p + panels - 1) / panels;
    ThreadPool::global().parallel_for(panels, [&](index_t t) {
      const index_t j0 = t * width;
      const index_t w = std::min(width, p - j0);
      if (w > 0) solve_panel(scratch.block(0, j0, n, w));
    });
  }
  for (index_t r = 0; r < p; ++r) {
    const T* src = scratch.col(r);
    T* dst = b.col(r);
    for (index_t i = 0; i < n; ++i) dst[perm_[size_t(i)]] = src[i];
  }
}

template class SparseLDLT<double>;
template class SparseLDLT<std::complex<double>>;

}  // namespace bkr
