// Fill-reducing orderings for the sparse direct solver.
//
// Nested dissection (BFS-level separators, RCM-ordered leaves) is the
// default: it behaves well on the 2-D/3-D grid graphs our problem
// generators emit, which is exactly the regime where the paper's
// subdomain solves live.
#pragma once

#include <vector>

#include "sparse/graph.hpp"

namespace bkr {

// Returns perm with perm[new] = old.
std::vector<index_t> nested_dissection(const Graph& g, index_t leaf_size = 64);

}  // namespace bkr
