// Kernel-level timing counters for the parallel kernel layer.
//
// The solver-level trace (trace.hpp) partitions a solve into seven phases;
// the kernels underneath those phases (SpMV panels, gemm tiles, chunked
// reductions) report here instead, so phase totals and kernel totals never
// double-count the same span. A KernelStats instance is owned by a
// KernelExecutor (src/parallel); collection is off by default so the hot
// path pays one relaxed atomic load per kernel call, no clock reads.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>

namespace bkr::obs {

// The kernel families the executor dispatches. Kept in sync with
// kKernelNames in kernel_stats.cpp.
enum class Kernel : int {
  Spmv = 0,     // CSR y = A x, row-partitioned
  Spmm,         // CSR Y = A X (multi-RHS), row-partitioned
  Gemm,         // dense C = op(A) op(B), panel-parallel
  Herk,         // Hermitian rank-k update / Gram matrix, pair-parallel
  Dot,          // chunked deterministic dot product
  Norms,        // fused per-column norm reductions
  Trsm,         // triangular solves, row/column partitioned
};

inline constexpr int kKernelCount = 7;

// Stable lowercase identifier ("spmv", "gemm", ...) used in JSON.
const char* kernel_name(Kernel k);

// Thread-safe accumulation of per-kernel call counts and wall time.
// Disabled (the default) it records nothing.
class KernelStats {
 public:
  struct Totals {
    std::int64_t calls = 0;           // total dispatches
    std::int64_t parallel_calls = 0;  // dispatches that fanned out on the pool
    double seconds = 0;               // wall time inside the kernel
  };

  void enable(bool on) { enabled_.store(on, std::memory_order_release); }
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  void record(Kernel k, bool parallel, double seconds);
  [[nodiscard]] Totals totals(Kernel k) const;
  void reset();

  // {"kernels":[{"kernel":"spmv","calls":..,"parallel_calls":..,"seconds":..},...]}
  // Kernels with zero calls are omitted.
  void write_json(std::ostream& os) const;

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::int64_t> calls_[kKernelCount] = {};
  std::atomic<std::int64_t> parallel_calls_[kKernelCount] = {};
  std::atomic<std::int64_t> nanos_[kKernelCount] = {};
};

}  // namespace bkr::obs
