// Kernel-level timing counters for the parallel kernel layer.
//
// The solver-level trace (trace.hpp) partitions a solve into seven phases;
// the kernels underneath those phases (SpMV panels, gemm tiles, chunked
// reductions) report here instead, so phase totals and kernel totals never
// double-count the same span. A KernelStats instance is owned by a
// KernelExecutor (src/parallel); collection is off by default so the hot
// path pays one relaxed atomic load per kernel call, no clock reads.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>

#include "common/contracts.hpp"
#include "common/exec.hpp"

namespace bkr::obs {

// The kernel-family enum lives with the execution interface at the bottom
// of the module DAG (common/exec.hpp); re-exported here so the telemetry
// surface keeps its historical obs::Kernel spelling.
using Kernel = ::bkr::Kernel;
using ::bkr::kKernelCount;

// Stable lowercase identifier ("spmv", "gemm", ...) used in JSON.
const char* kernel_name(Kernel k);

// Thread-safe accumulation of per-kernel call counts and wall time.
// Disabled (the default) it records nothing.
class KernelStats {
 public:
  struct Totals {
    std::int64_t calls = 0;           // total dispatches
    std::int64_t parallel_calls = 0;  // dispatches that fanned out on the pool
    double seconds = 0;               // wall time inside the kernel
  };

  void enable(bool on) { enabled_.store(on, std::memory_order_release); }
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  void record(Kernel k, bool parallel, double seconds);
  [[nodiscard]] Totals totals(Kernel k) const;
  void reset();

  // {"kernels":[{"kernel":"spmv","calls":..,"parallel_calls":..,"seconds":..},...]}
  // Kernels with zero calls are omitted.
  void write_json(std::ostream& os) const;

 private:
  std::atomic<bool> enabled_ BKR_LOCK_FREE{false};
  std::atomic<std::int64_t> calls_ BKR_LOCK_FREE[kKernelCount] = {};
  std::atomic<std::int64_t> parallel_calls_ BKR_LOCK_FREE[kKernelCount] = {};
  std::atomic<std::int64_t> nanos_ BKR_LOCK_FREE[kKernelCount] = {};
};

}  // namespace bkr::obs
