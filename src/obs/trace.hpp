// Solver observability: per-phase scoped timers and per-iteration event
// records for every iterative method.
//
// The paper's argument is quantitative — reduction counts, SpMM counts and
// time-to-solution per method (figs. 2-8) — so the solvers expose *where*
// a solve spends its time and synchronizations, not just end-of-solve
// aggregates. A solver is handed an optional TraceSink through
// SolverOptions::trace; when the pointer is null the instrumentation
// compiles down to a pointer test (no clock read, no allocation, no
// virtual call) so the hot path is unaffected.
//
// Phases partition the instrumented work; scopes never nest, so the sum of
// per-phase seconds approximates the solve wall time (the uninstrumented
// remainder is block copies and solution axpy updates, a few percent).
// See DESIGN.md "Telemetry" for the schema and the accounting contract.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "common/types.hpp"

namespace bkr::obs {

// Where instrumented time is spent inside a solve. Kept in sync with
// kPhaseNames in trace.cpp.
enum class Phase : int {
  Spmm = 0,            // operator (block) applications A·V
  Precond,             // preconditioner applications M^{-1}·R
  OrthoProjection,     // Gram-Schmidt projections against the basis
  OrthoNormalization,  // CholQR / TSQR block normalization
  Reduction,           // global synchronization points (norms, fused dots)
  SmallDense,          // Hessenberg QR updates, least squares, basis combos
  RestartEig,          // deflation eigenproblem + recycle-space refresh
};

inline constexpr int kPhaseCount = 7;

// Stable lowercase identifier ("spmm", "precond", ...) used in JSON/CSV.
const char* phase_name(Phase p);

// One record per (block) iteration of any method.
struct IterationEvent {
  index_t cycle = 0;       // restart cycle (1-based, as in SolveStats)
  index_t iteration = 0;   // global (block) iteration count so far
  index_t basis_size = 0;  // Krylov basis columns held at this point
  index_t recycle_dim = 0; // recycled columns C_k in play (0 = none)
  // Per RHS column: relative residual estimate after this iteration.
  std::vector<double> residuals;
};

// One record per RecycleCache interaction observed by a session: the
// cache's hit/miss/store/evict traffic keyed by operator fingerprint, so
// a warm-started solve is distinguishable from a cold one in the trace.
struct CacheEvent {
  std::string action;         // "hit" | "miss" | "store" | "evict"
  std::uint64_t key = 0;      // operator fingerprint of the entry
  std::int64_t bytes = 0;     // payload bytes moved (0 for a miss)
};

// One record per sharded communication round (SPMD layer): the CommModel
// mirrors the *executed* message traffic of the sharded operator — halo
// gathers per apply, point-to-point merges per tree reduction — so a
// trace can audit the real communication structure, not just the modeled
// log2(P) cost.
struct CommEvent {
  std::string kind;           // "halo" | "reduction-tree"
  index_t shards = 0;         // shard count in effect when the event fired
  std::int64_t messages = 0;  // point-to-point messages this round
  std::int64_t rounds = 0;    // tree levels (ceil(log2 shards); 1 for halo)
  std::int64_t bytes = 0;     // payload bytes moved
};

// One record per recovery-ladder engagement (resilience layer): a
// "recovered" solve is distinguishable from a clean one in the trace, and
// the chaos suite can assert exactly which rung fired.
struct RecoveryEvent {
  index_t iteration = 0;  // global (block) iteration count when it fired
  std::string site;       // "ortho" | "deflation" | "cycle" | "mixed-precision"
  std::string action;     // "replace-columns" | "identity-pk" | "early-restart"
                          // | "residual-replacement"
  index_t columns = 0;    // basis columns affected (0 when not applicable)
};

// Consumer interface. Implementations must tolerate any call order the
// solvers produce: phases and iterations arrive between begin_solve /
// end_solve pairs; a sink may be reused across many solves (the sequence
// API) and accumulates one record per solve.
//
// BKR_COLD on the class head: observability is virtual by design — the
// dispatch is null-guarded and once per (block) iteration, amortized over
// the iteration's kernel work — so bkr-analyze --hotpath exempts calls
// through this interface from the hot-path-virtual rule.
class BKR_COLD TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void begin_solve(const char* method, index_t n, index_t nrhs) = 0;
  virtual void end_solve(bool converged, index_t iterations, index_t cycles, double seconds) = 0;
  // `seconds` of work attributed to phase `p`; `count` occurrences (for
  // Reduction, the number of global synchronizations the span fused).
  virtual void phase(Phase p, double seconds, std::int64_t count = 1) = 0;
  virtual void iteration(const IterationEvent& ev) = 0;
  // Recovery-escalation event. Default no-op so pre-existing sinks stay
  // source compatible.
  virtual void recovery(const RecoveryEvent&) {}
  // RecycleCache event (sessions layer). Default no-op, like recovery():
  // cache traffic happens outside begin/end solve pairs, so sinks that only
  // model per-solve records can ignore it.
  virtual void cache(const CacheEvent&) {}
  // Sharded communication event (SPMD layer). Default no-op: only sinks
  // auditing the executed message structure need to observe it.
  virtual void comm(const CommEvent&) {}
};

// RAII phase timer: no-op (a single pointer test, no clock read) when the
// sink is null. `count` is the number of occurrences the span represents
// (e.g. a fused pair of global reductions passes 2).
class ScopedPhase {
 public:
  ScopedPhase(TraceSink* sink, Phase p, std::int64_t count = 1)
      : sink_(sink), phase_(p), count_(count) {
    if (sink_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;
  ~ScopedPhase() {
    if (sink_ != nullptr)
      sink_->phase(phase_,
                   std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count(),
                   count_);
  }

 private:
  TraceSink* sink_;
  Phase phase_;
  std::int64_t count_;
  std::chrono::steady_clock::time_point start_;
};

// Default sink: accumulates per-phase totals and the full iteration event
// log per solve, exportable as JSON or CSV. Not thread-safe; attach one
// instance per concurrently running solver.
class SolverTrace final : public TraceSink {
 public:
  struct PhaseTotals {
    double seconds = 0;
    std::int64_t count = 0;
  };

  struct SolveRecord {
    std::string method;
    index_t n = 0;
    index_t nrhs = 0;
    bool converged = false;
    index_t iterations = 0;
    index_t cycles = 0;
    double seconds = 0;
    PhaseTotals phases[kPhaseCount];
    std::vector<IterationEvent> events;
    std::vector<RecoveryEvent> recoveries;
  };

  void begin_solve(const char* method, index_t n, index_t nrhs) override;
  void end_solve(bool converged, index_t iterations, index_t cycles, double seconds) override;
  void phase(Phase p, double seconds, std::int64_t count = 1) override;
  void iteration(const IterationEvent& ev) override;
  void recovery(const RecoveryEvent& ev) override;
  void cache(const CacheEvent& ev) override;
  void comm(const CommEvent& ev) override;

  [[nodiscard]] const std::vector<SolveRecord>& solves() const { return solves_; }
  // Recovery events across every recorded solve.
  [[nodiscard]] std::int64_t recovery_count() const;
  // Cache traffic is accumulated at trace level, not per solve record
  // (it happens between solves and the bkr-trace-1 JSON schema stays
  // unchanged); counters filter by action ("hit", "miss", "store", ...).
  [[nodiscard]] const std::vector<CacheEvent>& cache_events() const { return cache_events_; }
  [[nodiscard]] std::int64_t cache_event_count(const std::string& action) const;
  // Comm events mirror cache events: accumulated at trace level (they can
  // arrive outside begin/end solve pairs), filtered by kind.
  [[nodiscard]] const std::vector<CommEvent>& comm_events() const { return comm_events_; }
  [[nodiscard]] std::int64_t comm_event_count(const std::string& kind) const;

  // Totals across every recorded solve.
  [[nodiscard]] PhaseTotals phase_totals(Phase p) const;
  [[nodiscard]] double phase_seconds(Phase p) const { return phase_totals(p).seconds; }
  [[nodiscard]] std::int64_t phase_count(Phase p) const { return phase_totals(p).count; }
  // Sum of the per-phase seconds of every solve (the quantity compared
  // against the SolveStats wall time in the accounting tests).
  [[nodiscard]] double total_phase_seconds() const;
  [[nodiscard]] double total_solve_seconds() const;

  void clear();

  // JSON document: {"schema":"bkr-trace-1","solves":[...]} — see DESIGN.md.
  void write_json(std::ostream& os) const;
  // CSV: one row per (solve, phase) with seconds and count.
  void write_csv(std::ostream& os) const;
  // File variants; return false if the file could not be opened.
  bool write_json(const std::string& path) const;
  bool write_csv(const std::string& path) const;

 private:
  // Events arriving outside begin/end pairs open an implicit record so a
  // misattached sink never drops data.
  SolveRecord& current();

  std::vector<SolveRecord> solves_ BKR_THREAD_CONFINED;
  std::vector<CacheEvent> cache_events_ BKR_THREAD_CONFINED;
  std::vector<CommEvent> comm_events_ BKR_THREAD_CONFINED;
  bool open_ BKR_THREAD_CONFINED = false;
};

}  // namespace bkr::obs
