#include "obs/trace.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>

namespace bkr::obs {

namespace {

constexpr const char* kPhaseNames[kPhaseCount] = {
    "spmm",      "precond",     "ortho_projection", "ortho_normalization",
    "reduction", "small_dense", "restart_eig",
};

void json_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

// Shortest round-trip-safe double formatting (%.17g keeps bit identity,
// which the determinism tests rely on).
void json_double(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

}  // namespace

const char* phase_name(Phase p) { return kPhaseNames[static_cast<int>(p)]; }

SolverTrace::SolveRecord& SolverTrace::current() {
  if (!open_) {
    solves_.emplace_back();
    solves_.back().method = "unknown";
    open_ = true;
  }
  return solves_.back();
}

void SolverTrace::begin_solve(const char* method, index_t n, index_t nrhs) {
  solves_.emplace_back();
  auto& rec = solves_.back();
  rec.method = method == nullptr ? "unknown" : method;
  rec.n = n;
  rec.nrhs = nrhs;
  // Amortize the per-iteration push_back growth: a typical solve logs a
  // few dozen block iterations, so one up-front reservation keeps the
  // event log out of the allocator for the whole solve.
  rec.events.reserve(64);
  open_ = true;
}

void SolverTrace::end_solve(bool converged, index_t iterations, index_t cycles, double seconds) {
  auto& rec = current();
  rec.converged = converged;
  rec.iterations = iterations;
  rec.cycles = cycles;
  rec.seconds = seconds;
  open_ = false;
}

void SolverTrace::phase(Phase p, double seconds, std::int64_t count) {
  auto& totals = current().phases[static_cast<int>(p)];
  totals.seconds += seconds;
  totals.count += count;
}

void SolverTrace::iteration(const IterationEvent& ev) { current().events.push_back(ev); }

void SolverTrace::recovery(const RecoveryEvent& ev) { current().recoveries.push_back(ev); }

void SolverTrace::cache(const CacheEvent& ev) {
  if (cache_events_.capacity() == 0) cache_events_.reserve(16);
  cache_events_.push_back(ev);
}

std::int64_t SolverTrace::cache_event_count(const std::string& action) const {
  std::int64_t n = 0;
  for (const auto& ev : cache_events_) n += ev.action == action ? 1 : 0;
  return n;
}

void SolverTrace::comm(const CommEvent& ev) {
  if (comm_events_.capacity() == 0) comm_events_.reserve(64);
  comm_events_.push_back(ev);
}

std::int64_t SolverTrace::comm_event_count(const std::string& kind) const {
  std::int64_t n = 0;
  for (const auto& ev : comm_events_) n += ev.kind == kind ? 1 : 0;
  return n;
}

std::int64_t SolverTrace::recovery_count() const {
  std::int64_t n = 0;
  for (const auto& rec : solves_) n += static_cast<std::int64_t>(rec.recoveries.size());
  return n;
}

SolverTrace::PhaseTotals SolverTrace::phase_totals(Phase p) const {
  PhaseTotals out;
  for (const auto& rec : solves_) {
    out.seconds += rec.phases[static_cast<int>(p)].seconds;
    out.count += rec.phases[static_cast<int>(p)].count;
  }
  return out;
}

double SolverTrace::total_phase_seconds() const {
  double s = 0;
  for (int p = 0; p < kPhaseCount; ++p) s += phase_totals(static_cast<Phase>(p)).seconds;
  return s;
}

double SolverTrace::total_solve_seconds() const {
  double s = 0;
  for (const auto& rec : solves_) s += rec.seconds;
  return s;
}

void SolverTrace::clear() {
  solves_.clear();
  cache_events_.clear();
  comm_events_.clear();
  open_ = false;
}

void SolverTrace::write_json(std::ostream& os) const {
  os << "{\"schema\":\"bkr-trace-1\",\"solves\":[";
  for (size_t s = 0; s < solves_.size(); ++s) {
    const auto& rec = solves_[s];
    if (s > 0) os << ',';
    os << "{\"method\":";
    json_escaped(os, rec.method);
    os << ",\"n\":" << rec.n << ",\"nrhs\":" << rec.nrhs
       << ",\"converged\":" << (rec.converged ? "true" : "false")
       << ",\"iterations\":" << rec.iterations << ",\"cycles\":" << rec.cycles
       << ",\"seconds\":";
    json_double(os, rec.seconds);
    os << ",\"phases\":{";
    for (int p = 0; p < kPhaseCount; ++p) {
      if (p > 0) os << ',';
      os << '"' << kPhaseNames[p] << "\":{\"seconds\":";
      json_double(os, rec.phases[p].seconds);
      os << ",\"count\":" << rec.phases[p].count << '}';
    }
    os << "},\"iterations_log\":[";
    for (size_t e = 0; e < rec.events.size(); ++e) {
      const auto& ev = rec.events[e];
      if (e > 0) os << ',';
      os << "{\"cycle\":" << ev.cycle << ",\"iteration\":" << ev.iteration
         << ",\"basis_size\":" << ev.basis_size << ",\"recycle_dim\":" << ev.recycle_dim
         << ",\"residuals\":[";
      for (size_t c = 0; c < ev.residuals.size(); ++c) {
        if (c > 0) os << ',';
        json_double(os, ev.residuals[c]);
      }
      os << "]}";
    }
    os << "],\"recoveries\":[";
    for (size_t e = 0; e < rec.recoveries.size(); ++e) {
      const auto& ev = rec.recoveries[e];
      if (e > 0) os << ',';
      os << "{\"iteration\":" << ev.iteration << ",\"site\":";
      json_escaped(os, ev.site);
      os << ",\"action\":";
      json_escaped(os, ev.action);
      os << ",\"columns\":" << ev.columns << '}';
    }
    os << "]}";
  }
  os << "]}";
}

void SolverTrace::write_csv(std::ostream& os) const {
  os << "solve,method,phase,seconds,count\n";
  for (size_t s = 0; s < solves_.size(); ++s) {
    const auto& rec = solves_[s];
    for (int p = 0; p < kPhaseCount; ++p) {
      os << s << ',' << rec.method << ',' << kPhaseNames[p] << ',';
      json_double(os, rec.phases[p].seconds);
      os << ',' << rec.phases[p].count << '\n';
    }
  }
}

bool SolverTrace::write_json(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_json(f);
  f << '\n';
  return bool(f);
}

bool SolverTrace::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_csv(f);
  return bool(f);
}

}  // namespace bkr::obs
