#include "obs/kernel_stats.hpp"

#include <cmath>
#include <ostream>

namespace bkr::obs {

namespace {
const char* const kKernelNames[kKernelCount] = {"spmv", "spmm", "gemm", "herk",
                                                "dot",  "norms", "trsm"};
}  // namespace

const char* kernel_name(Kernel k) { return kKernelNames[static_cast<int>(k)]; }

void KernelStats::record(Kernel k, bool parallel, double seconds) {
  const int i = static_cast<int>(k);
  calls_[i].fetch_add(1, std::memory_order_relaxed);
  if (parallel) parallel_calls_[i].fetch_add(1, std::memory_order_relaxed);
  nanos_[i].fetch_add(std::int64_t(std::llround(seconds * 1e9)), std::memory_order_relaxed);
}

KernelStats::Totals KernelStats::totals(Kernel k) const {
  const int i = static_cast<int>(k);
  Totals t;
  t.calls = calls_[i].load(std::memory_order_relaxed);
  t.parallel_calls = parallel_calls_[i].load(std::memory_order_relaxed);
  t.seconds = double(nanos_[i].load(std::memory_order_relaxed)) * 1e-9;
  return t;
}

void KernelStats::reset() {
  for (int i = 0; i < kKernelCount; ++i) {
    calls_[i].store(0, std::memory_order_relaxed);
    parallel_calls_[i].store(0, std::memory_order_relaxed);
    nanos_[i].store(0, std::memory_order_relaxed);
  }
}

void KernelStats::write_json(std::ostream& os) const {
  os << "{\"kernels\":[";
  bool first = true;
  for (int i = 0; i < kKernelCount; ++i) {
    const Totals t = totals(static_cast<Kernel>(i));
    if (t.calls == 0) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"kernel\":\"" << kKernelNames[i] << "\",\"calls\":" << t.calls
       << ",\"parallel_calls\":" << t.parallel_calls << ",\"seconds\":" << t.seconds << "}";
  }
  os << "]}";
}

}  // namespace bkr::obs
