// bkr-lint: the project's own static analysis pass.
//
// Scans the C++ sources for patterns this codebase bans by convention:
//
//   raw-new-delete     raw `new` / `delete` expressions (ownership must go
//                      through std::unique_ptr / containers; the C API
//                      boundary is baselined)
//   using-namespace-header
//                      `using namespace` at header scope leaks names into
//                      every includer
//   unchecked-factor   the boolean/status result of a factorization kernel
//                      (cholqr, cholesky_upper, pivoted_cholesky, qr_block)
//                      discarded at statement level — breakdown would pass
//                      silently
//   non-central-rng    direct <random> engine/distribution use outside
//                      src/common/rng.hpp (all randomness must be seeded
//                      through the central helpers for reproducibility)
//   missing-include-guard
//                      header without `#pragma once` or a classic #ifndef
//                      guard ahead of the first declaration
//   float-literal      `float` type or f-suffixed literal in a library that
//                      computes exclusively in double/complex<double> —
//                      a stray float silently truncates
//   unpooled-thread    raw `std::thread` construction/ownership outside
//                      src/parallel/ — all concurrency must go through
//                      bkr::ThreadPool so kernels inherit its nesting and
//                      error protocol (`std::thread::` scope accesses such
//                      as hardware_concurrency() stay legal)
//   broad-catch        `catch (std::runtime_error)` or `catch (...)` inside
//                      src/core/ — solver recovery must name the specific
//                      failure types (EigFailure, BreakdownError,
//                      InjectedFault) so contract violations and unknown
//                      errors keep propagating to the caller
//
// The scanner is a small lexer, not a regex pass: comments, string
// literals (including raw strings) and character literals are blanked
// before matching, so prose and printf formats never trip a rule.
//
// A second stage, `--analyze` ("bkr-analyze"), builds a cross-TU project
// model of src/ — include graph, annotation index, per-scope lock sets —
// and checks project-wide rules the line scanner cannot see:
//
//   layer-upward-include   an #include that points at a strictly higher
//                          rank of the module DAG (common < la < sparse <
//                          {direct,parallel,obs,resilience} < core <
//                          precond < fem < capi); same-rank includes are
//                          legal
//   include-cycle          a cycle in the file-level include graph
//   unguarded-member-access  a BKR_GUARDED_BY(mu) member accessed in a
//                          scope that does not visibly hold mu
//   requires-lock-not-held a BKR_REQUIRES_LOCK(mu) function called without
//                          mu held
//   lock-order-inversion   two mutexes nested against a declared
//                          BKR_ACQUIRED_BEFORE order
//   lock-free-not-atomic   BKR_LOCK_FREE on a declaration that is not a
//                          std::atomic
//   confined-member-in-parallel  a BKR_THREAD_CONFINED member accessed
//                          inside a lambda dispatched to run()/parallel_for
//   lane-dependent-body    lanes()/hardware_concurrency/thread_count_ read
//                          inside a dispatched task body (determinism
//                          scope: src/parallel, la/blas.hpp, sparse/csr.hpp)
//   nonshared-reduce-chunk reduction task body whose chunking does not come
//                          from the shared la/blas.hpp kReduceChunk
//   float-atomic-accumulation  std::atomic<double|float> in the determinism
//                          scope (floating-point sums must never be built
//                          from atomics — ordering would be scheduling-
//                          dependent)
//   contract-coverage      share of public header entries taking data-plane
//                          arguments whose definition (or a callee) checks
//                          a contract fell below the gated floor
//
// A third stage, `--hotpath` ("bkr-hotpath"), builds an intra-project call
// graph over src/ and enforces allocation/locking/IO/throw/virtual-dispatch
// discipline in hot code. Hot regions are seeded by BKR_HOT function
// definitions, BKR_HOT_LOOP loop bodies and lambdas submitted to
// KernelExecutor::run / parallel_for, and hotness propagates to named
// callees; BKR_COLD (on a function, class, lambda or bare block) stops it.
// Rules: hot-path-alloc, hot-path-lock, hot-path-io, hot-path-throw,
// hot-path-virtual, hot-path-clock — see the comment block above class
// Hotpath.
//
// The annotation vocabulary (no-op macros) lives in common/contracts.hpp;
// DESIGN.md §7 documents the model and the normative DAG, §11 the hot-path
// discipline.
//
// Suppression (both stages):
//   * inline:   a `// bkr-lint: allow(rule)` comment on the offending line
//   * baseline: `--baseline FILE` with tab-separated lines
//               `rule<TAB>relative/path<TAB>normalized line content`
//               (line-number independent, survives unrelated edits)
//
// Exit code 0 when no unsuppressed finding remains, 1 otherwise.
// `--json` emits one JSON object per finding (rule/file/line/content)
// instead of the human lines; exit codes are unchanged.
// `--self-test` runs both stages against embedded fixtures with one
// planted violation per rule and must find exactly those.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string rule;
  std::string path;  // relative to the scan root
  long line = 0;
  std::string content;  // normalized offending line
};

// Collapse runs of whitespace and trim, so baseline entries survive
// reformatting of the surrounding file.
std::string normalize(const std::string& line) {
  std::string out;
  bool in_space = true;
  for (const char c : line) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (!in_space && !out.empty()) out.push_back(' ');
      in_space = true;
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

// Replace the contents of comments, string literals (ordinary and raw)
// and character literals with spaces, preserving newlines so line numbers
// keep meaning. Returns the blanked text.
std::string blank_non_code(const std::string& src) {
  std::string out = src;
  enum class State { Code, LineComment, BlockComment, String, Char, RawString };
  State state = State::Code;
  std::string raw_delim;  // the )delim" closer of the active raw string
  for (size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::Code:
        if (c == '/' && next == '/') {
          state = State::LineComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::BlockComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (std::isalnum(static_cast<unsigned char>(src[i - 1])) == 0 &&
                               src[i - 1] != '_'))) {
          size_t j = i + 2;
          while (j < src.size() && src[j] != '(') ++j;
          raw_delim = ")" + src.substr(i + 2, j - (i + 2)) + "\"";
          for (size_t k = i; k <= j && k < src.size(); ++k) out[k] = ' ';
          i = j;
          state = State::RawString;
        } else if (c == '"') {
          state = State::String;
        } else if (c == '\'') {
          // Digit separators (1'000'000) are not character literals.
          const bool sep = i > 0 && std::isalnum(static_cast<unsigned char>(src[i - 1])) != 0 &&
                           i + 1 < src.size() &&
                           std::isalnum(static_cast<unsigned char>(src[i + 1])) != 0;
          if (!sep) state = State::Char;
        }
        break;
      case State::LineComment:
        if (c == '\n')
          state = State::Code;
        else
          out[i] = ' ';
        break;
      case State::BlockComment:
        if (c == '*' && next == '/') {
          out[i] = out[i + 1] = ' ';
          ++i;
          state = State::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::String:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::Char:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::RawString:
        if (src.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t k = 0; k < raw_delim.size(); ++k) out[i + k] = ' ';
          i += raw_delim.size() - 1;
          state = State::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Find `word` as a whole token in `line`, starting at `from`.
size_t find_token(const std::string& line, const std::string& word, size_t from = 0) {
  for (size_t pos = line.find(word, from); pos != std::string::npos;
       pos = line.find(word, pos + 1)) {
    const bool left_ok = pos == 0 || !is_ident(line[pos - 1]);
    const size_t end = pos + word.size();
    const bool right_ok = end >= line.size() || !is_ident(line[end]);
    if (left_ok && right_ok) return pos;
  }
  return std::string::npos;
}

// The last non-whitespace character before (file-offset semantics across
// lines): used to decide whether a call result is discarded.
char prev_significant(const std::vector<std::string>& lines, size_t line_idx, size_t col) {
  for (size_t li = line_idx + 1; li-- > 0;) {
    const std::string& l = lines[li];
    size_t end = li == line_idx ? col : l.size();
    for (size_t ci = end; ci-- > 0;) {
      if (std::isspace(static_cast<unsigned char>(l[ci])) == 0) return l[ci];
    }
  }
  return '\0';
}

// f/F-suffixed floating literal: digits with a '.' or exponent then f.
bool has_float_literal(const std::string& line, size_t* where) {
  for (size_t i = 0; i < line.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(line[i])) == 0) continue;
    if (i > 0 && is_ident(line[i - 1])) continue;  // inside an identifier / hex
    size_t j = i;
    bool fractional = false;
    while (j < line.size() &&
           (std::isdigit(static_cast<unsigned char>(line[j])) != 0 || line[j] == '.')) {
      if (line[j] == '.') fractional = true;
      ++j;
    }
    if (j < line.size() && (line[j] == 'e' || line[j] == 'E')) {
      fractional = true;
      ++j;
      if (j < line.size() && (line[j] == '+' || line[j] == '-')) ++j;
      while (j < line.size() && std::isdigit(static_cast<unsigned char>(line[j])) != 0) ++j;
    }
    if (fractional && j < line.size() && (line[j] == 'f' || line[j] == 'F') &&
        (j + 1 >= line.size() || !is_ident(line[j + 1]))) {
      *where = i;
      return true;
    }
    i = j;
  }
  return false;
}

const char* const kFactorCalls[] = {"cholqr", "cholesky_upper", "pivoted_cholesky", "qr_block"};

const char* const kRngTokens[] = {"mt19937",
                                  "mt19937_64",
                                  "minstd_rand",
                                  "random_device",
                                  "uniform_int_distribution",
                                  "uniform_real_distribution",
                                  "normal_distribution",
                                  "bernoulli_distribution",
                                  "srand",
                                  "drand48"};

struct FileReport {
  std::vector<Finding> findings;
};

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Extension-exact: ".hpp" and ".h" files of any path length (a bare "a.h"
// is a header too — the old size guard silently skipped short paths).
bool is_header(const std::string& path) {
  return ends_with(path, ".hpp") || ends_with(path, ".h");
}

// Per-line inline suppressions harvested from the *raw* text before
// blanking: `// bkr-lint: allow(rule1, rule2)`.
std::map<long, std::set<std::string>> harvest_allows(const std::vector<std::string>& raw_lines) {
  std::map<long, std::set<std::string>> allows;
  for (size_t li = 0; li < raw_lines.size(); ++li) {
    const std::string& l = raw_lines[li];
    const size_t marker = l.find("bkr-lint: allow(");
    if (marker == std::string::npos) continue;
    const size_t open = l.find('(', marker);
    const size_t close = l.find(')', open);
    if (open == std::string::npos || close == std::string::npos) continue;
    std::stringstream list(l.substr(open + 1, close - open - 1));
    std::string rule;
    while (std::getline(list, rule, ',')) {
      allows[long(li) + 1].insert(normalize(rule));
    }
  }
  return allows;
}

// File-scope suppressions: `// bkr-lint: allow-file(rule1, rule2)` anywhere
// in the file turns the named rules off for the whole file. Used by the
// mixed-precision scope (DESIGN.md §14), where `float` storage is the
// point and the precision discipline moves to the bkr-fpflow rules.
// Convention mirrors the baseline: a justification comment is required.
std::set<std::string> harvest_file_allows(const std::vector<std::string>& raw_lines) {
  std::set<std::string> allows;
  for (const std::string& l : raw_lines) {
    const size_t marker = l.find("bkr-lint: allow-file(");
    if (marker == std::string::npos) continue;
    const size_t open = l.find('(', marker);
    const size_t close = l.find(')', open);
    if (open == std::string::npos || close == std::string::npos) continue;
    std::stringstream list(l.substr(open + 1, close - open - 1));
    std::string rule;
    while (std::getline(list, rule, ',')) allows.insert(normalize(rule));
  }
  return allows;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::stringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) lines.push_back(line);
  return lines;
}

FileReport scan_content(const std::string& rel_path, const std::string& content) {
  FileReport report;
  const std::vector<std::string> raw_lines = split_lines(content);
  const std::string blanked = blank_non_code(content);
  const std::vector<std::string> lines = split_lines(blanked);
  const auto allows = harvest_allows(raw_lines);
  const auto file_allows = harvest_file_allows(raw_lines);

  auto add = [&](const std::string& rule, size_t line_idx) {
    if (file_allows.count(rule) != 0) return;
    const long line_no = long(line_idx) + 1;
    const auto it = allows.find(line_no);
    if (it != allows.end() && it->second.count(rule) != 0) return;
    const std::string& raw =
        line_idx < raw_lines.size() ? raw_lines[line_idx] : std::string();
    report.findings.push_back(Finding{rule, rel_path, line_no, normalize(raw)});
  };

  const bool header = is_header(rel_path);
  const bool rng_central = rel_path.size() >= 14 &&
                           rel_path.rfind("common/rng.hpp") == rel_path.size() - 14;
  const bool pool_home = rel_path.rfind("src/parallel/", 0) == 0;
  const bool core_scope = rel_path.rfind("src/core/", 0) == 0;

  for (size_t li = 0; li < lines.size(); ++li) {
    const std::string& line = lines[li];

    // raw-new-delete
    if (find_token(line, "new") != std::string::npos) add("raw-new-delete", li);
    for (size_t pos = find_token(line, "delete"); pos != std::string::npos;
         pos = find_token(line, "delete", pos + 1)) {
      // `= delete` (deleted functions) and `operator delete` are fine.
      const char prev = prev_significant(lines, li, pos);
      if (prev != '=' && prev != 'r') {  // 'r' = trailing char of `operator`
        add("raw-new-delete", li);
        break;
      }
    }

    // using-namespace-header
    if (header && line.find("using namespace") != std::string::npos)
      add("using-namespace-header", li);

    // unchecked-factor: call token whose preceding significant character
    // ends a statement (result discarded).
    for (const char* fn : kFactorCalls) {
      const size_t pos = find_token(line, fn);
      if (pos == std::string::npos) continue;
      // Allow qualified discard-position names: walk back over `detail::`
      // style qualifiers to the true statement start.
      size_t stmt = pos;
      while (stmt >= 2 && lines[li][stmt - 1] == ':' && lines[li][stmt - 2] == ':') {
        stmt -= 2;
        while (stmt > 0 && is_ident(lines[li][stmt - 1])) --stmt;
      }
      const char prev = prev_significant(lines, li, stmt);
      if (prev == ';' || prev == '{' || prev == '}' || prev == '\0') add("unchecked-factor", li);
    }

    // non-central-rng
    if (!rng_central) {
      for (const char* tok : kRngTokens) {
        if (find_token(line, tok) != std::string::npos) {
          add("non-central-rng", li);
          break;
        }
      }
    }

    // unpooled-thread: the literal `std::thread` type outside the pool's
    // home directory. A following `::` is a scope access (static members
    // like hardware_concurrency), not thread ownership, and stays legal.
    if (!pool_home) {
      constexpr size_t kLen = sizeof("std::thread") - 1;
      for (size_t pos = line.find("std::thread"); pos != std::string::npos;
           pos = line.find("std::thread", pos + 1)) {
        const bool left_ok = pos == 0 || !is_ident(line[pos - 1]);
        const size_t end = pos + kLen;
        const bool right_ok = end >= line.size() || !is_ident(line[end]);
        const bool scope_access =
            end + 1 < line.size() && line[end] == ':' && line[end + 1] == ':';
        if (left_ok && right_ok && !scope_access) {
          add("unpooled-thread", li);
          break;
        }
      }
    }

    // broad-catch: a catch clause in src/core that swallows whole exception
    // families. Recovery paths must name the specific type they handle.
    if (core_scope) {
      const size_t pos = find_token(line, "catch");
      if (pos != std::string::npos) {
        const size_t open = line.find('(', pos);
        const size_t close = open == std::string::npos ? std::string::npos : line.find(')', open);
        if (open != std::string::npos && close != std::string::npos) {
          const std::string inside = line.substr(open + 1, close - open - 1);
          if (inside.find("runtime_error") != std::string::npos ||
              inside.find("...") != std::string::npos)
            add("broad-catch", li);
        }
      }
    }

    // float-literal
    size_t where = 0;
    if (find_token(line, "float") != std::string::npos || has_float_literal(line, &where))
      add("float-literal", li);
  }

  // missing-include-guard: first significant line of a header must open a
  // `#pragma once` or an #ifndef/#define guard.
  if (header) {
    bool guarded = false;
    for (const std::string& line : lines) {
      const std::string norm = normalize(line);
      if (norm.empty()) continue;
      guarded = norm.rfind("#pragma once", 0) == 0 || norm.rfind("#ifndef", 0) == 0;
      break;
    }
    if (!guarded) add("missing-include-guard", 0);
  }
  return report;
}

// ---------------------------------------------------------------------------
// bkr-analyze: the cross-TU project-model stage.
//
// The model is built from blanked text only (comments and strings never
// participate), with a statement/scope walker shared by two passes: a
// harvest pass that indexes the annotation vocabulary per class, and a
// check pass that tracks the visibly-held lock set through every scope and
// validates accesses, ordering, dispatch-lambda bodies and contract
// coverage against the index.

struct SourceFile {
  std::string path;  // relative to the scan root, e.g. "src/la/blas.hpp"
  std::vector<std::string> raw_lines;
  std::string blanked;
  std::vector<std::string> lines;
  std::map<long, std::set<std::string>> allows;
  std::set<std::string> file_allows;
};

SourceFile make_source(const std::string& path, const std::string& content) {
  SourceFile f;
  f.path = path;
  f.raw_lines = split_lines(content);
  f.blanked = blank_non_code(content);
  f.lines = split_lines(f.blanked);
  f.allows = harvest_allows(f.raw_lines);
  f.file_allows = harvest_file_allows(f.raw_lines);
  return f;
}

// The normative module DAG (DESIGN.md §7). Same-rank includes are legal;
// an include must never point at a strictly higher rank.
int module_rank(const std::string& mod) {
  static const std::map<std::string, int> kRanks = {
      {"common", 0},  {"la", 1},         {"sparse", 2}, {"direct", 3}, {"parallel", 3},
      {"obs", 3},     {"resilience", 3}, {"core", 4},   {"precond", 5}, {"fem", 6},
      {"capi", 7}};
  const auto it = kRanks.find(mod);
  return it == kRanks.end() ? -1 : it->second;
}

std::string module_of(const std::string& rel) {
  std::string p = rel;
  if (p.rfind("src/", 0) == 0) p = p.substr(4);
  const size_t slash = p.find('/');
  return slash == std::string::npos ? std::string() : p.substr(0, slash);
}

// Files whose parallel task bodies carry the determinism contract.
bool determinism_scope(const std::string& path) {
  return path.rfind("src/parallel/", 0) == 0 || path == "src/la/blas.hpp" ||
         path == "src/sparse/csr.hpp" || path == "src/sparse/sharded.hpp";
}

// Parameter types that mark a public function as a data-plane entry point
// for the contract-coverage rule.
const char* const kDataPlaneTypes[] = {"MatrixView",  "DenseMatrix",    "CsrMatrix",
                                       "MultiVector", "LinearOperator", "Preconditioner",
                                       "SolverOptions"};

const char* const kContractTokens[] = {"BKR_REQUIRE", "BKR_ENSURE", "BKR_ASSERT",
                                       "BKR_ASSERT_SHAPE", "check_solve_entry"};

bool is_cxx_keyword(const std::string& w) {
  static const std::set<std::string> kw = {
      "if",     "for",   "while",  "switch", "catch",   "return", "sizeof", "new",
      "delete", "throw", "void",   "int",    "long",    "bool",   "char",   "double",
      "float",  "auto",  "const",  "static", "virtual", "case",   "do",     "else",
      "try",    "using", "friend", "public", "private", "protected"};
  return kw.count(w) != 0;
}

// ---- shared scope machinery: statement-head classification at '{' ----
//
// Used by both the cross-TU Analyzer walker and the bkr-hotpath stage.

enum class ScopeKind { Namespace, Class, Function, Lambda, Control, Block };

struct OpenInfo {
  ScopeKind kind = ScopeKind::Block;
  std::string name;       // function or class name
  std::string qualifier;  // Class of a `Ret Class::name(...)` definition
  std::string head;       // normalized statement head
  bool struct_like = false;
  bool hot = false;       // BKR_HOT on the head
  bool cold = false;      // BKR_COLD on the head (fn, class, block or lambda)
  bool hot_loop = false;  // BKR_HOT_LOOP on a loop head
  std::vector<std::string> seeds;  // BKR_REQUIRES_LOCK on the definition
};

std::string ident_before(const std::string& s, size_t pos) {
  size_t e = pos;
  while (e > 0 && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  size_t b = e;
  while (b > 0 && is_ident(s[b - 1])) --b;
  return s.substr(b, e - b);
}

std::string macro_arg(const std::string& s, size_t macro_end) {
  const size_t open = s.find('(', macro_end);
  if (open == std::string::npos) return {};
  const size_t close = s.find(')', open);
  if (close == std::string::npos) return {};
  return normalize(s.substr(open + 1, close - open - 1));
}

// Matching '(' for the ')' at `close` (walking left).
size_t match_open_paren(const std::string& s, size_t close) {
  int depth = 0;
  for (size_t i = close + 1; i-- > 0;) {
    if (s[i] == ')') ++depth;
    if (s[i] == '(') {
      --depth;
      if (depth == 0) return i;
    }
  }
  return std::string::npos;
}

size_t last_significant(const std::string& s) {
  for (size_t i = s.size(); i-- > 0;)
    if (std::isspace(static_cast<unsigned char>(s[i])) == 0) return i;
  return std::string::npos;
}

OpenInfo classify_open(const std::string& raw_head) {
  OpenInfo info;
  std::string h = normalize(raw_head);
  if (h.empty()) return info;  // bare block
  info.hot = find_token(h, "BKR_HOT") != std::string::npos;
  info.cold = find_token(h, "BKR_COLD") != std::string::npos;
  info.hot_loop = find_token(h, "BKR_HOT_LOOP") != std::string::npos;
  if (h == "BKR_COLD") {
    // `BKR_COLD { ... }` — an annotated bare block opens a real scope.
    info.kind = ScopeKind::Control;
    return info;
  }

  // Strip leading `template <...>` clauses.
  while (h.rfind("template", 0) == 0) {
    const size_t lt = h.find('<');
    if (lt == std::string::npos) break;
    int depth = 0;
    size_t gt = lt;
    for (; gt < h.size(); ++gt) {
      if (h[gt] == '<') ++depth;
      if (h[gt] == '>' && --depth == 0) break;
    }
    if (gt >= h.size()) break;
    h = normalize(h.substr(gt + 1));
  }

  // Leading storage-class / declaration keywords, then type-introducers.
  std::stringstream ts(h);
  std::string tok;
  while (ts >> tok) {
    if (tok == "typedef" || tok == "inline" || tok == "static" || tok == "constexpr" ||
        tok == "friend" || tok == "mutable" || tok == "virtual" || tok == "explicit" ||
        tok == "BKR_HOT" || tok == "BKR_COLD" || tok == "BKR_HOT_LOOP")
      continue;
    break;
  }
  if (tok == "namespace" || tok == "extern") {
    info.kind = ScopeKind::Namespace;
    return info;
  }
  if (tok == "class" || tok == "struct" || tok == "union") {
    info.kind = ScopeKind::Class;
    info.struct_like = tok != "class";
    // First identifier after the keyword, skipping annotation macros
    // (`class BKR_COLD TraceSink`).
    while (ts >> info.name &&
           (info.name == "BKR_COLD" || info.name == "BKR_HOT" || info.name == "final")) {
    }
    return info;
  }
  if (tok == "do" || tok == "else" || tok == "try") {
    info.kind = ScopeKind::Control;
    return info;
  }

  // Constructor initializer list: truncate at a top-level single ':'.
  {
    int depth = 0;
    for (size_t i = 0; i < h.size(); ++i) {
      const char c = h[i];
      if (c == '(' || c == '[') ++depth;
      if (c == ')' || c == ']') --depth;
      if (c == ':' && depth == 0) {
        const bool dbl = (i + 1 < h.size() && h[i + 1] == ':') || (i > 0 && h[i - 1] == ':');
        if (!dbl && h.find('(') < i) {
          h = normalize(h.substr(0, i));
          break;
        }
      }
    }
  }

  // Trailing lambda return type: `...) -> T` / `...] -> T`.
  {
    const size_t arrow = h.rfind("->");
    if (arrow != std::string::npos && arrow > 0) {
      const std::string before = normalize(h.substr(0, arrow));
      if (!before.empty() && (before.back() == ')' || before.back() == ']'))
        h = before;
    }
  }

  // Trailing qualifiers: const / noexcept / override / final / mutable /
  // ref-qualifiers / noexcept(...) / BKR_REQUIRES_LOCK(mu) / annotations.
  for (;;) {
    const size_t last = last_significant(h);
    if (last == std::string::npos) break;
    if (h[last] == '&') {
      h = normalize(h.substr(0, last));
      continue;
    }
    if (is_ident(h[last])) {
      const std::string w = ident_before(h, last + 1);
      if (w == "const" || w == "noexcept" || w == "override" || w == "final" ||
          w == "mutable" || w == "BKR_COLD" || w == "BKR_HOT") {
        h = normalize(h.substr(0, last + 1 - w.size()));
        continue;
      }
      break;
    }
    if (h[last] == ')') {
      const size_t open = match_open_paren(h, last);
      if (open == std::string::npos) break;
      const std::string w = ident_before(h, open);
      if (w == "noexcept") {
        h = normalize(h.substr(0, open - w.size()));
        continue;
      }
      if (w == "BKR_REQUIRES_LOCK") {
        info.seeds.push_back(normalize(h.substr(open + 1, last - open - 1)));
        h = normalize(h.substr(0, open - w.size()));
        continue;
      }
      break;
    }
    break;
  }

  const size_t last = last_significant(h);
  if (last == std::string::npos) return info;
  if (h[last] == ']') {
    info.kind = ScopeKind::Lambda;
    return info;
  }
  if (h[last] != ')') return info;  // brace-init / enum body etc.

  const size_t open = match_open_paren(h, last);
  if (open == std::string::npos) return info;
  const std::string before = normalize(h.substr(0, open));
  if (!before.empty() && before.back() == ']') {
    info.kind = ScopeKind::Lambda;
    return info;
  }
  std::string name = ident_before(h, open);
  if (name.empty()) return info;
  if (name == "if" || name == "for" || name == "while" || name == "switch" ||
      name == "catch") {
    info.kind = ScopeKind::Control;
    return info;
  }
  info.kind = ScopeKind::Function;
  info.name = name;
  info.head = h;
  // `Ret Class::name(...)` — the qualifier immediately before the name
  // (skipping a destructor '~' and template arguments) is the class.
  size_t b = open;
  while (b > 0 && std::isspace(static_cast<unsigned char>(h[b - 1])) != 0) --b;
  b -= name.size();
  while (b > 0 && std::isspace(static_cast<unsigned char>(h[b - 1])) != 0) --b;
  if (b > 0 && h[b - 1] == '~') --b;
  if (b >= 2 && h[b - 1] == ':' && h[b - 2] == ':') {
    b -= 2;
    if (b > 0 && h[b - 1] == '>') {  // Class<T>::
      int depth = 0;
      while (b-- > 0) {
        if (h[b] == '>') ++depth;
        if (h[b] == '<' && --depth == 0) break;
      }
    }
    info.qualifier = ident_before(h, b);
  }
  return info;
}

class Analyzer {
 public:
  Analyzer(std::vector<SourceFile> files, double coverage_floor)
      : files_(std::move(files)), coverage_floor_(coverage_floor) {}

  std::vector<Finding> run() {
    scan_includes();
    find_cycles();
    for (size_t i = 0; i < files_.size(); ++i) walk_file(i, Mode::Harvest);
    for (size_t i = 0; i < files_.size(); ++i) walk_file(i, Mode::Check);
    check_lock_order();
    scan_float_atomics();
    check_coverage();
    return std::move(findings_);
  }

 private:
  enum class Mode { Harvest, Check };

  struct Guarded {
    std::string cls, member, mu;
  };
  struct Confined {
    std::string cls, member;
  };
  struct OrderDecl {
    std::string first, second;  // `first` is declared ACQUIRED_BEFORE `second`
  };
  struct ObservedPair {
    std::string held, acquired;
    size_t file;
    long line;
  };
  struct Edge {
    size_t to;
    long line;
  };
  struct Candidate {
    std::string cls, name;
    size_t file;
    long line;
  };
  struct Scope {
    ScopeKind kind = ScopeKind::Block;
    std::string cls;
    std::string fn_name;
    int access = 1;  // Class scopes: 1 = public region
    bool in_function = false;
    bool dispatch = false;   // lexically inside a run()/parallel_for lambda
    bool reduction = false;  // the dispatch named Kernel::Dot / Kernel::Norms
    size_t body_start = 0;
    long open_line = 0;
    std::string saved_buf;  // Lambda: the suspended outer statement
    std::vector<long> saved_buf_lines;
    int saved_paren = 0;
    std::vector<std::string> acquired;                      // release at close
    std::map<std::string, std::vector<std::string>> guards;  // RAII var -> mutexes
  };
  void add(size_t file, const std::string& rule, long line_no) {
    const SourceFile& f = files_[file];
    if (f.file_allows.count(rule) != 0) return;
    const auto it = f.allows.find(line_no);
    if (it != f.allows.end() && it->second.count(rule) != 0) return;
    const std::string raw = (line_no >= 1 && size_t(line_no) <= f.raw_lines.size())
                                ? f.raw_lines[size_t(line_no) - 1]
                                : std::string();
    findings_.push_back(Finding{rule, f.path, line_no, normalize(raw)});
  }

  // ---- include graph: layering and cycles ----

  void scan_includes() {
    std::map<std::string, size_t> by_path;
    for (size_t i = 0; i < files_.size(); ++i) {
      by_path[files_[i].path] = i;
      if (files_[i].path.rfind("src/", 0) == 0) by_path[files_[i].path.substr(4)] = i;
    }
    edges_.assign(files_.size(), {});
    for (size_t i = 0; i < files_.size(); ++i) {
      const SourceFile& f = files_[i];
      for (size_t li = 0; li < f.lines.size(); ++li) {
        if (f.lines[li].find("#include") == std::string::npos) continue;
        // The include path itself was blanked with the string literal;
        // recover it from the raw line.
        const std::string& raw = li < f.raw_lines.size() ? f.raw_lines[li] : std::string();
        const size_t q1 = raw.find('"');
        const size_t q2 = q1 == std::string::npos ? std::string::npos : raw.find('"', q1 + 1);
        if (q2 == std::string::npos) continue;  // <system> include
        const std::string target = raw.substr(q1 + 1, q2 - q1 - 1);
        const long line_no = long(li) + 1;
        const int from_rank = module_rank(module_of(f.path));
        const int to_rank = module_rank(module_of("src/" + target));
        if (from_rank >= 0 && to_rank >= 0 && to_rank > from_rank)
          add(i, "layer-upward-include", line_no);
        const auto tgt = by_path.find(target);
        if (tgt != by_path.end() && tgt->second != i)
          edges_[i].push_back(Edge{tgt->second, line_no});
      }
    }
  }

  void find_cycles() {
    std::vector<int> color(files_.size(), 0);  // 0 white, 1 on stack, 2 done
    std::function<void(size_t)> dfs = [&](size_t u) {
      color[u] = 1;
      for (const Edge& e : edges_[u]) {
        if (color[e.to] == 1)
          add(u, "include-cycle", e.line);
        else if (color[e.to] == 0)
          dfs(e.to);
      }
      color[u] = 2;
    };
    for (size_t i = 0; i < files_.size(); ++i)
      if (color[i] == 0) dfs(i);
  }

  // ---- determinism: float accumulation through atomics ----

  void scan_float_atomics() {
    for (size_t i = 0; i < files_.size(); ++i) {
      if (!determinism_scope(files_[i].path)) continue;
      for (size_t li = 0; li < files_[i].lines.size(); ++li) {
        std::string dense;
        for (const char c : files_[i].lines[li])
          if (std::isspace(static_cast<unsigned char>(c)) == 0) dense.push_back(c);
        if (dense.find("atomic<double>") != std::string::npos ||
            dense.find("atomic<float>") != std::string::npos)
          add(i, "float-atomic-accumulation", long(li) + 1);
      }
    }
  }

  // ---- lock-set bookkeeping ----

  bool holds(const std::string& mu) const {
    return std::find(held_.begin(), held_.end(), mu) != held_.end();
  }

  void acquire(std::vector<Scope>& st, const std::string& mu, size_t file, long line) {
    for (const std::string& h : held_)
      observed_.push_back(ObservedPair{h, mu, file, line});
    held_.push_back(mu);
    st.back().acquired.push_back(mu);
  }

  void release(std::vector<Scope>& st, const std::string& mu) {
    const auto it = std::find(held_.begin(), held_.end(), mu);
    if (it != held_.end()) held_.erase(it);
    for (size_t si = st.size(); si-- > 0;) {
      auto& acq = st[si].acquired;
      const auto a = std::find(acq.begin(), acq.end(), mu);
      if (a != acq.end()) {
        acq.erase(a);
        break;
      }
    }
  }

  // Mutexes named by a guard declaration's argument list.
  static std::vector<std::string> guard_args(const std::string& args, bool* defer) {
    std::vector<std::string> mus;
    *defer = false;
    int depth = 0;
    std::string cur;
    auto flush = [&] {
      const std::string a = normalize(cur);
      cur.clear();
      if (a.empty()) return;
      if (a.find("defer_lock") != std::string::npos) {
        *defer = true;
        return;
      }
      if (a.find("adopt_lock") != std::string::npos || a.find("try_to_lock") != std::string::npos)
        return;
      const std::string mu = ident_before(a, a.size());
      if (!mu.empty()) mus.push_back(mu);
    };
    for (const char c : args) {
      if (c == '(' || c == '<' || c == '[') ++depth;
      if (c == ')' || c == '>' || c == ']') --depth;
      if (c == ',' && depth == 0) {
        flush();
        continue;
      }
      cur.push_back(c);
    }
    flush();
    return mus;
  }

  void handle_guard_decls(std::vector<Scope>& st, const std::string& b,
                          const std::vector<long>& bl, size_t file) {
    for (const char* kw : {"lock_guard", "unique_lock", "scoped_lock"}) {
      const size_t pos = find_token(b, kw);
      if (pos == std::string::npos) continue;
      size_t j = pos + std::strlen(kw);
      while (j < b.size() && std::isspace(static_cast<unsigned char>(b[j])) != 0) ++j;
      if (j < b.size() && b[j] == '<') {  // template arguments
        int depth = 0;
        for (; j < b.size(); ++j) {
          if (b[j] == '<') ++depth;
          if (b[j] == '>' && --depth == 0) {
            ++j;
            break;
          }
        }
      }
      while (j < b.size() && std::isspace(static_cast<unsigned char>(b[j])) != 0) ++j;
      std::string var;
      while (j < b.size() && is_ident(b[j])) var.push_back(b[j++]);
      while (j < b.size() && std::isspace(static_cast<unsigned char>(b[j])) != 0) ++j;
      if (j >= b.size() || b[j] != '(') continue;
      int depth = 1;
      const size_t arg_begin = ++j;
      for (; j < b.size() && depth > 0; ++j) {
        if (b[j] == '(') ++depth;
        if (b[j] == ')') --depth;
      }
      const std::string args = b.substr(arg_begin, j - 1 - arg_begin);
      bool defer = false;
      const std::vector<std::string> mus = guard_args(args, &defer);
      if (!var.empty()) st.back().guards[var] = mus;
      if (!defer)
        for (const std::string& mu : mus) acquire(st, mu, file, bl[pos]);
    }
  }

  const std::vector<std::string>* lookup_guard(const std::vector<Scope>& st,
                                               const std::string& var) const {
    for (size_t si = st.size(); si-- > 0;) {
      const auto it = st[si].guards.find(var);
      if (it != st[si].guards.end()) return &it->second;
    }
    return nullptr;
  }

  void handle_lock_calls(std::vector<Scope>& st, const std::string& b,
                         const std::vector<long>& bl, size_t file) {
    for (const char* kw : {"unlock", "lock"}) {
      for (size_t pos = find_token(b, kw); pos != std::string::npos;
           pos = find_token(b, kw, pos + 1)) {
        if (pos == 0 || b[pos - 1] != '.') continue;
        size_t j = pos + std::strlen(kw);
        while (j < b.size() && std::isspace(static_cast<unsigned char>(b[j])) != 0) ++j;
        if (j >= b.size() || b[j] != '(') continue;
        const std::string obj = ident_before(b, pos - 1);
        if (obj.empty()) continue;
        const std::vector<std::string>* mapped = lookup_guard(st, obj);
        const std::vector<std::string> mus = mapped != nullptr ? *mapped
                                                               : std::vector<std::string>{obj};
        if (std::strcmp(kw, "lock") == 0)
          for (const std::string& mu : mus) acquire(st, mu, file, bl[pos]);
        else
          for (const std::string& mu : mus) release(st, mu);
      }
    }
  }

  // ---- candidates / definitions for contract coverage ----

  static bool has_data_plane(const std::string& text) {
    for (const char* t : kDataPlaneTypes)
      if (find_token(text, t) != std::string::npos) return true;
    return false;
  }

  void maybe_candidate(const std::vector<Scope>& st, const std::string& stmt, size_t file,
                       long line) {
    const std::string h = normalize(stmt);
    if (h.empty() || h.find('(') == std::string::npos) return;
    if (find_token(h, "operator") != std::string::npos) return;
    if (ends_with(h, "= 0") || h.find("= delete") != std::string::npos ||
        h.find("= default") != std::string::npos)
      return;
    std::stringstream ts(h);
    std::string first;
    ts >> first;
    if (first == "using" || first == "typedef" || first == "friend" || first == "return" ||
        first == "static_assert" || first == "#define")
      return;
    // The parameter-list '(' is the first one outside template arguments.
    int angle = 0;
    size_t open = std::string::npos;
    for (size_t i = 0; i < h.size(); ++i) {
      if (h[i] == '<') ++angle;
      if (h[i] == '>' && angle > 0) --angle;
      if (h[i] == '(' && angle == 0) {
        open = i;
        break;
      }
    }
    if (open == std::string::npos) return;
    const std::string name = ident_before(h, open);
    if (name.empty() || is_cxx_keyword(name) || name.rfind("BKR_", 0) == 0) return;
    if (!has_data_plane(h.substr(open))) return;
    candidates_.push_back(Candidate{st.back().cls, name, file, line});
  }

  // ---- the statement/scope walker ----

  void statement(std::vector<Scope>& st, Mode mode, size_t file, const std::string& b,
                 const std::vector<long>& bl) {
    if (b.empty() || bl.empty()) return;
    const SourceFile& f = files_[file];
    if (mode == Mode::Harvest) {
      if (st.back().kind != ScopeKind::Class) return;
      harvest_stmt(st, file, b, bl);
      return;
    }
    if (!st.back().in_function) {
      // Pure declarations at public class scope / namespace scope of a
      // header are contract-coverage candidates.
      const bool decl_scope =
          (st.back().kind == ScopeKind::Class && st.back().access == 1) ||
          st.back().kind == ScopeKind::Namespace;
      if (decl_scope && is_header(f.path) && ends_with(normalize(b), ")"))
        maybe_candidate(st, b, file, bl.front());
      return;
    }

    handle_guard_decls(st, b, bl, file);
    handle_lock_calls(st, b, bl, file);

    const std::string& cls = st.back().cls;
    for (const Guarded& g : guarded_) {
      if (g.cls != cls) continue;
      const size_t pos = find_token(b, g.member);
      if (pos != std::string::npos && !holds(g.mu)) add(file, "unguarded-member-access", bl[pos]);
    }
    for (const auto& [key, mus] : requires_lock_) {
      const size_t sep = key.find("::");
      if (key.substr(0, sep) != cls) continue;
      const std::string& fn = key.substr(sep + 2);
      if (fn == st.back().fn_name) continue;  // the function's own body
      const size_t pos = find_token(b, fn);
      if (pos == std::string::npos) continue;
      size_t j = pos + fn.size();
      while (j < b.size() && std::isspace(static_cast<unsigned char>(b[j])) != 0) ++j;
      if (j >= b.size() || b[j] != '(') continue;
      for (const std::string& mu : mus)
        if (!holds(mu)) add(file, "requires-lock-not-held", bl[pos]);
    }
    if (st.back().dispatch) {
      for (const Confined& cm : confined_) {
        if (cm.cls != cls) continue;
        const size_t pos = find_token(b, cm.member);
        if (pos != std::string::npos) add(file, "confined-member-in-parallel", bl[pos]);
      }
      if (determinism_scope(f.path)) {
        for (const char* tok : {"lanes", "hardware_concurrency", "thread_count_"}) {
          const size_t pos = find_token(b, tok);
          if (pos != std::string::npos) add(file, "lane-dependent-body", bl[pos]);
        }
      }
    }
  }

  void harvest_stmt(std::vector<Scope>& st, size_t file, const std::string& b,
                    const std::vector<long>& bl) {
    const std::string& cls = st.back().cls;
    struct MacroHit {
      const char* name;
      size_t pos;
    };
    for (const char* m : {"BKR_GUARDED_BY", "BKR_ACQUIRED_BEFORE", "BKR_THREAD_CONFINED",
                          "BKR_LOCK_FREE", "BKR_REQUIRES_LOCK"}) {
      const size_t pos = find_token(b, m);
      if (pos == std::string::npos) continue;
      const std::string subject = ident_before(b, pos);
      const std::string arg = macro_arg(b, pos + std::strlen(m));
      if (std::strcmp(m, "BKR_GUARDED_BY") == 0 && !subject.empty() && !arg.empty()) {
        guarded_.push_back(Guarded{cls, subject, arg});
      } else if (std::strcmp(m, "BKR_ACQUIRED_BEFORE") == 0 && !subject.empty() &&
                 !arg.empty()) {
        order_.push_back(OrderDecl{subject, arg});
      } else if (std::strcmp(m, "BKR_THREAD_CONFINED") == 0 && !subject.empty()) {
        confined_.push_back(Confined{cls, subject});
      } else if (std::strcmp(m, "BKR_LOCK_FREE") == 0) {
        if (find_token(b.substr(0, pos), "atomic") == std::string::npos)
          add(file, "lock-free-not-atomic", bl[pos]);
      } else if (std::strcmp(m, "BKR_REQUIRES_LOCK") == 0 && !arg.empty()) {
        // `Ret name(params) BKR_REQUIRES_LOCK(mu);` — the declarator name
        // is the identifier before the parameter list's '('.
        const size_t close = b.rfind(')', pos);
        if (close == std::string::npos) continue;
        const size_t open = match_open_paren(b, close);
        if (open == std::string::npos) continue;
        const std::string fn = ident_before(b, open);
        if (!fn.empty()) requires_lock_[cls + "::" + fn].push_back(arg);
      }
    }
  }

  void walk_file(size_t file, Mode mode) {
    const SourceFile& f = files_[file];
    const std::string& s = f.blanked;
    std::vector<Scope> st(1);
    st[0].kind = ScopeKind::Namespace;
    held_.clear();
    std::string buf;
    std::vector<long> bl;
    int paren = 0;
    int init_depth = 0;
    long line = 1;
    bool line_has_code = false;
    auto push_char = [&](char c) {
      buf.push_back(c);
      bl.push_back(line);
    };
    for (size_t i = 0; i < s.size(); ++i) {
      const char c = s[i];
      if (c == '\n') {
        ++line;
        line_has_code = false;
        push_char(' ');
        continue;
      }
      if (c == '#' && !line_has_code) {
        // Preprocessor directive: consume (including continuation lines).
        while (i < s.size()) {
          if (s[i] == '\n') {
            bool cont = false;
            for (size_t k = i; k-- > 0 && s[k] != '\n';) {
              if (std::isspace(static_cast<unsigned char>(s[k])) == 0) {
                cont = s[k] == '\\';
                break;
              }
            }
            ++line;
            if (!cont) break;
          }
          ++i;
        }
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c)) == 0) line_has_code = true;
      if (init_depth > 0) {
        if (c == '{') ++init_depth;
        if (c == '}') --init_depth;
        push_char(c);
        continue;
      }
      switch (c) {
        case '(':
          ++paren;
          push_char(c);
          break;
        case ')':
          --paren;
          push_char(c);
          break;
        case ';':
          if (paren > 0) {
            push_char(c);
          } else {
            statement(st, mode, file, buf, bl);
            buf.clear();
            bl.clear();
          }
          break;
        case ':': {
          // Access specifiers and switch labels terminate without ';'.
          const bool dbl = (i + 1 < s.size() && s[i + 1] == ':') || (i > 0 && s[i - 1] == ':');
          if (!dbl && paren == 0) {
            const std::string t = ident_before(buf, buf.size());
            const std::string h = normalize(buf);
            if (t == "public" || t == "private" || t == "protected") {
              if (st.back().kind == ScopeKind::Class) st.back().access = t == "public" ? 1 : 0;
              buf.clear();
              bl.clear();
              break;
            }
            if (t == "default" || h.rfind("case ", 0) == 0 || h == "case") {
              buf.clear();
              bl.clear();
              break;
            }
          }
          push_char(c);
          break;
        }
        case '{': {
          const OpenInfo info = classify_open(buf);
          if (info.kind == ScopeKind::Block && !normalize(buf).empty()) {
            // Brace initializer (or enum body): stay inside the statement.
            init_depth = 1;
            push_char(c);
            break;
          }
          Scope sc;
          sc.kind = info.kind;
          sc.cls = st.back().cls;
          sc.access = st.back().access;
          sc.in_function = st.back().in_function;
          sc.dispatch = st.back().dispatch;
          sc.reduction = st.back().reduction;
          sc.body_start = i + 1;
          sc.open_line = line;
          switch (info.kind) {
            case ScopeKind::Class:
              sc.cls = info.name;
              sc.access = info.struct_like ? 1 : 0;
              sc.in_function = false;
              sc.dispatch = sc.reduction = false;
              break;
            case ScopeKind::Function: {
              sc.in_function = true;
              sc.fn_name = info.name;
              sc.dispatch = sc.reduction = false;
              if (!info.qualifier.empty()) sc.cls = info.qualifier;
              if (mode == Mode::Check) {
                // Inline definitions at public class scope / namespace
                // scope of a header are coverage candidates too.
                const bool decl_scope =
                    (st.back().kind == ScopeKind::Class && st.back().access == 1) ||
                    st.back().kind == ScopeKind::Namespace;
                if (decl_scope && is_header(f.path)) maybe_candidate(st, info.head, file, line);
                std::vector<std::string> seeds = info.seeds;
                const auto rl = requires_lock_.find(sc.cls + "::" + info.name);
                if (rl != requires_lock_.end())
                  seeds.insert(seeds.end(), rl->second.begin(), rl->second.end());
                for (const std::string& mu : seeds) {
                  held_.push_back(mu);
                  sc.acquired.push_back(mu);
                }
              }
              break;
            }
            case ScopeKind::Lambda: {
              sc.in_function = true;
              sc.saved_buf = buf;
              sc.saved_buf_lines = bl;
              sc.saved_paren = paren;
              if (find_token(buf, "run") != std::string::npos ||
                  find_token(buf, "parallel_for") != std::string::npos) {
                sc.dispatch = true;
                sc.reduction = find_token(buf, "Dot") != std::string::npos ||
                               find_token(buf, "Norms") != std::string::npos;
              }
              paren = 0;
              break;
            }
            case ScopeKind::Control:
              statement(st, mode, file, buf, bl);
              break;
            default:
              break;
          }
          st.push_back(std::move(sc));
          buf.clear();
          bl.clear();
          break;
        }
        case '}': {
          statement(st, mode, file, buf, bl);
          buf.clear();
          bl.clear();
          if (st.size() <= 1) break;  // stray close (unbalanced input)
          Scope sc = std::move(st.back());
          st.pop_back();
          for (const std::string& mu : sc.acquired) {
            const auto it = std::find(held_.begin(), held_.end(), mu);
            if (it != held_.end()) held_.erase(it);
          }
          if (sc.kind == ScopeKind::Lambda) {
            if (mode == Mode::Check && sc.dispatch && sc.reduction &&
                determinism_scope(f.path)) {
              const std::string body = s.substr(sc.body_start, i - sc.body_start);
              if (find_token(body, "kReduceChunk") == std::string::npos)
                add(file, "nonshared-reduce-chunk", sc.open_line);
            }
            buf = std::move(sc.saved_buf);
            bl = std::move(sc.saved_buf_lines);
            paren = sc.saved_paren;
          } else if (sc.kind == ScopeKind::Function && mode == Mode::Check) {
            defs_.emplace(sc.cls + "::" + sc.fn_name,
                          s.substr(sc.body_start, i - sc.body_start));
          }
          break;
        }
        default:
          push_char(c);
          break;
      }
    }
  }

  // ---- post passes ----

  void check_lock_order() {
    for (const OrderDecl& d : order_)
      for (const ObservedPair& p : observed_)
        if (p.held == d.second && p.acquired == d.first)
          add(p.file, "lock-order-inversion", p.line);
  }

  static bool body_has_contract(const std::string& body) {
    for (const char* t : kContractTokens)
      if (find_token(body, t) != std::string::npos) return true;
    return false;
  }

  void check_coverage() {
    if (candidates_.empty()) return;
    // Collapse overloads / re-declarations onto one entry per class::name.
    std::map<std::string, Candidate> uniq;
    for (const Candidate& c : candidates_) uniq.emplace(c.cls + "::" + c.name, c);
    std::map<std::string, bool> covered;
    for (const auto& [key, c] : uniq) {
      bool cov = false;
      const auto range = defs_.equal_range(key);
      for (auto it = range.first; it != range.second; ++it)
        cov = cov || body_has_contract(it->second);
      covered[key] = cov;
    }
    // Delegation fixed point: an entry whose definition calls an already
    // covered entry inherits its checks.
    for (bool changed = true; changed;) {
      changed = false;
      for (const auto& [key, c] : uniq) {
        if (covered[key]) continue;
        const auto range = defs_.equal_range(key);
        for (auto it = range.first; it != range.second && !covered[key]; ++it) {
          for (const auto& [key2, c2] : uniq) {
            if (key2 == key || !covered[key2]) continue;
            const size_t pos = find_token(it->second, c2.name);
            if (pos == std::string::npos) continue;
            size_t j = pos + c2.name.size();
            const std::string& b = it->second;
            while (j < b.size() && std::isspace(static_cast<unsigned char>(b[j])) != 0) ++j;
            if (j < b.size() && (b[j] == '(' || b[j] == '<')) {
              covered[key] = true;
              changed = true;
              break;
            }
          }
        }
      }
    }
    size_t total = uniq.size(), cov = 0;
    for (const auto& [key, c] : covered) cov += c ? 1 : 0;
    coverage_detail_ = covered;
    const double coverage = double(cov) / double(total);
    measured_coverage_ = coverage;
    if (coverage + 1e-9 < coverage_floor_) {
      char msg[160];
      std::snprintf(msg, sizeof(msg),
                    "public data-plane entry contract coverage %.0f%% (%zu/%zu) below floor %.0f%%",
                    100.0 * coverage, cov, total, 100.0 * coverage_floor_);
      findings_.push_back(Finding{"contract-coverage", "src", 0, msg});
    }
  }

 public:
  [[nodiscard]] double measured_coverage() const { return measured_coverage_; }
  [[nodiscard]] const std::map<std::string, bool>& coverage_detail() const {
    return coverage_detail_;
  }

 private:
  std::vector<SourceFile> files_;
  double coverage_floor_;
  double measured_coverage_ = 0.0;
  std::map<std::string, bool> coverage_detail_;  // cls::fn -> has a contract
  std::vector<Finding> findings_;
  std::vector<std::vector<Edge>> edges_;
  std::vector<Guarded> guarded_;
  std::vector<Confined> confined_;
  std::vector<OrderDecl> order_;
  std::vector<ObservedPair> observed_;
  std::map<std::string, std::vector<std::string>> requires_lock_;  // cls::fn -> mus
  std::multimap<std::string, std::string> defs_;                   // cls::fn -> body
  std::vector<Candidate> candidates_;
  std::vector<std::string> held_;
};

// The coverage floor baked against the current tree (measured 63/93 = 67%;
// losing a single covered entry drops to 66%). Raise it as coverage grows,
// never lower it (override for experiments via --coverage-floor).
constexpr double kDefaultCoverageFloor = 0.66;

std::vector<Finding> analyze_files(std::vector<SourceFile> files, double floor_value) {
  Analyzer an(std::move(files), floor_value);
  return an.run();
}

bool should_scan(const fs::path& p);

std::vector<SourceFile> load_tree_files(const fs::path& root, const char* sub) {
  std::vector<SourceFile> files;
  const fs::path dir = root / sub;
  if (fs::exists(dir)) {
    std::vector<fs::path> paths;
    for (const auto& entry : fs::recursive_directory_iterator(dir))
      if (entry.is_regular_file() && should_scan(entry.path())) paths.push_back(entry.path());
    std::sort(paths.begin(), paths.end());
    for (const fs::path& p : paths) {
      std::ifstream in(p, std::ios::binary);
      std::stringstream ss;
      ss << in.rdbuf();
      files.push_back(make_source(fs::relative(p, root).generic_string(), ss.str()));
    }
  }
  return files;
}

std::vector<SourceFile> load_project_files(const fs::path& root) {
  return load_tree_files(root, "src");
}

std::vector<Finding> analyze_tree(const fs::path& root, double floor_value) {
  return analyze_files(load_project_files(root), floor_value);
}

// --coverage-report: dump every public data-plane entry with its covered
// status, so a failing contract-coverage gate points at concrete names.
int coverage_report_tree(const fs::path& root, double floor_value) {
  Analyzer an(load_project_files(root), floor_value);
  (void)an.run();
  size_t cov = 0;
  for (const auto& [key, covered] : an.coverage_detail()) {
    std::printf("%-9s %s\n", covered ? "covered" : "UNCOVERED", key.c_str());
    cov += covered ? 1 : 0;
  }
  const size_t total = an.coverage_detail().size();
  std::printf("coverage: %zu/%zu = %.1f%% (floor %.0f%%)\n", cov, total,
              total == 0 ? 0.0 : 100.0 * double(cov) / double(total), 100.0 * floor_value);
  return an.measured_coverage() + 1e-9 < floor_value ? 1 : 0;
}

// ---------------------------------------------------------------------------
// bkr-hotpath: call-graph hot-path discipline analysis.
//
// Seeds: BKR_HOT function definitions, BKR_HOT_LOOP loop bodies, and lambdas
// submitted to KernelExecutor::run / parallel_for. Hotness propagates over a
// name-based intra-project call graph; BKR_COLD stops it at an annotated
// callee and hides it inside an annotated block or lambda (no edges, no
// findings). Rules checked over hot code:
//
//   hot-path-alloc    heap traffic: new / malloc-family calls anywhere hot;
//                     container growth (push_back / emplace_back / resize /
//                     assign / insert / emplace) whose receiver has no
//                     visible `.reserve(` in the same function body; owning
//                     container/matrix declarations inside a BKR_HOT_LOOP
//                     body (hoist them into a SolverWorkspace slot).
//   hot-path-lock     mutex acquisition (lock_guard / unique_lock /
//                     scoped_lock / .lock()).
//   hot-path-io       stream or stdio output, file open.
//   hot-path-throw    `throw` other than `throw BreakdownError(...)` — the
//                     documented breakdown escalation path.
//   hot-path-virtual  virtual-method call inside a BKR_HOT_LOOP body.
//                     Classes annotated `class BKR_COLD X` (null-guarded,
//                     amortized observers) are exempt.
//   hot-path-clock    raw clock read (`now(`) inside a BKR_HOT_LOOP body.
//                     The sanctioned cancellation/deadline check is
//                     `detail::poll_cancel(opts)` (DESIGN.md §15): a relaxed
//                     atomic load plus one steady_clock compare per outer
//                     iteration that escalates via `throw BreakdownError`,
//                     all of which this stage deliberately allows — the
//                     poll helper is exempt; ad-hoc clock math in the loop
//                     body itself is not.

class Hotpath {
 public:
  explicit Hotpath(std::vector<SourceFile> files) : files_(std::move(files)) {}

  std::vector<Finding> run() {
    newlines_.resize(files_.size());
    for (size_t i = 0; i < files_.size(); ++i) {
      for (size_t j = 0; j < files_[i].blanked.size(); ++j)
        if (files_[i].blanked[j] == '\n') newlines_[i].push_back(j);
      walk_file(i);
    }
    propagate();
    for (const HpFn& fn : fns_) check_fn(fn);
    // A dispatch lambda nested in a hot function is scanned twice (as its
    // own seed and as enclosing-body text); collapse the duplicates.
    std::sort(findings_.begin(), findings_.end(), [](const Finding& a, const Finding& b) {
      return std::tie(a.rule, a.path, a.line) < std::tie(b.rule, b.path, b.line);
    });
    findings_.erase(std::unique(findings_.begin(), findings_.end(),
                                [](const Finding& a, const Finding& b) {
                                  return a.rule == b.rule && a.path == b.path && a.line == b.line;
                                }),
                    findings_.end());
    return std::move(findings_);
  }

 private:
  using Range = std::pair<size_t, size_t>;

  struct HpFn {
    std::string name;  // unqualified; "" for dispatch lambdas
    size_t file = 0;
    size_t body_begin = 0, body_end = 0;  // offsets into the blanked text
    long open_line = 0;
    bool hot = false;   // BKR_HOT seed, dispatch-lambda seed, or propagated
    bool cold = false;  // BKR_COLD on the head: no checks, stops propagation
    bool mined = false;             // whole body already mined for edges
    std::vector<Range> cold_ranges;  // BKR_COLD blocks / lambdas inside
    std::vector<Range> loop_ranges;  // BKR_HOT_LOOP bodies inside
  };

  struct WScope {
    ScopeKind kind = ScopeKind::Block;
    int fn = -1;            // innermost enclosing HpFn record
    bool owns_fn = false;   // this scope created fns_[fn]
    bool cold = false;      // the scope itself is a BKR_COLD region
    bool cold_ctx = false;  // some enclosing scope is cold
    bool hot_loop = false;
    std::string cls;  // enclosing class (virtual harvest)
    bool cls_cold = false;
    size_t body_start = 0;
    long open_line = 0;
    std::string saved_buf;  // Lambda: suspended outer statement
    int saved_paren = 0;
  };

  static bool in_ranges(const std::vector<Range>& rs, size_t off) {
    for (const Range& r : rs)
      if (off >= r.first && off < r.second) return true;
    return false;
  }

  void add(size_t file, const std::string& rule, long line_no) {
    const SourceFile& f = files_[file];
    if (f.file_allows.count(rule) != 0) return;
    const auto it = f.allows.find(line_no);
    if (it != f.allows.end() && it->second.count(rule) != 0) return;
    const std::string raw = (line_no >= 1 && size_t(line_no) <= f.raw_lines.size())
                                ? f.raw_lines[size_t(line_no) - 1]
                                : std::string();
    findings_.push_back(Finding{rule, f.path, line_no, normalize(raw)});
  }

  // Line number of an offset into the blanked text (same newlines as raw).
  long line_of(size_t file, size_t off) const {
    const std::vector<size_t>& nl = newlines_[file];
    return long(std::upper_bound(nl.begin(), nl.end(), off) - nl.begin()) + 1;
  }

  // ---- scope walk: collect function records, regions, virtual methods ----

  void walk_file(size_t file) {
    const SourceFile& f = files_[file];
    const std::string& s = f.blanked;
    std::vector<WScope> st(1);
    st[0].kind = ScopeKind::Namespace;
    std::string buf;
    int paren = 0;
    int init_depth = 0;
    long line = 1;
    bool line_has_code = false;
    for (size_t i = 0; i < s.size(); ++i) {
      const char c = s[i];
      if (c == '\n') {
        ++line;
        line_has_code = false;
        buf.push_back(' ');
        continue;
      }
      if (c == '#' && !line_has_code) {
        while (i < s.size()) {
          if (s[i] == '\n') {
            bool cont = false;
            for (size_t k = i; k-- > 0 && s[k] != '\n';) {
              if (std::isspace(static_cast<unsigned char>(s[k])) == 0) {
                cont = s[k] == '\\';
                break;
              }
            }
            ++line;
            if (!cont) break;
          }
          ++i;
        }
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c)) == 0) line_has_code = true;
      if (init_depth > 0) {
        if (c == '{') ++init_depth;
        if (c == '}') --init_depth;
        buf.push_back(c);
        continue;
      }
      switch (c) {
        case '(':
          ++paren;
          buf.push_back(c);
          break;
        case ')':
          --paren;
          buf.push_back(c);
          break;
        case ';':
          if (paren > 0) {
            buf.push_back(c);
          } else {
            harvest_virtual(st.back(), buf);
            buf.clear();
          }
          break;
        case ':': {
          const bool dbl = (i + 1 < s.size() && s[i + 1] == ':') || (i > 0 && s[i - 1] == ':');
          if (!dbl && paren == 0) {
            const std::string t = ident_before(buf, buf.size());
            const std::string h = normalize(buf);
            if (t == "public" || t == "private" || t == "protected" || t == "default" ||
                h.rfind("case ", 0) == 0 || h == "case") {
              buf.clear();
              break;
            }
          }
          buf.push_back(c);
          break;
        }
        case '{': {
          const OpenInfo info = classify_open(buf);
          if (info.kind == ScopeKind::Block && !normalize(buf).empty()) {
            init_depth = 1;  // brace initializer: stay inside the statement
            buf.push_back(c);
            break;
          }
          WScope sc;
          sc.kind = info.kind;
          sc.fn = st.back().fn;
          sc.cls = st.back().cls;
          sc.cls_cold = st.back().cls_cold;
          sc.cold_ctx = st.back().cold_ctx || st.back().cold;
          sc.cold = info.cold;
          sc.body_start = i + 1;
          sc.open_line = line;
          switch (info.kind) {
            case ScopeKind::Class:
              sc.cls = info.name;
              sc.cls_cold = info.cold;
              sc.fn = -1;
              sc.cold = false;
              break;
            case ScopeKind::Function: {
              if (st.back().kind == ScopeKind::Class && !st.back().cls_cold &&
                  find_token(normalize(buf), "virtual") != std::string::npos)
                virtuals_.insert(info.name);  // inline-defined virtual
              HpFn fn;
              fn.name = info.name;
              fn.file = file;
              fn.body_begin = i + 1;
              fn.open_line = line;
              fn.hot = info.hot;
              fn.cold = info.cold;
              sc.fn = int(fns_.size());
              sc.owns_fn = true;
              fns_.push_back(std::move(fn));
              break;
            }
            case ScopeKind::Lambda: {
              sc.saved_buf = buf;
              sc.saved_paren = paren;
              paren = 0;
              const bool dispatch = find_token(buf, "run") != std::string::npos ||
                                    find_token(buf, "parallel_for") != std::string::npos;
              if (dispatch && !info.cold && !sc.cold_ctx) {
                HpFn fn;  // per-element body: an implicit hot seed
                fn.file = file;
                fn.body_begin = i + 1;
                fn.open_line = line;
                fn.hot = true;
                sc.fn = int(fns_.size());
                sc.owns_fn = true;
                fns_.push_back(std::move(fn));
              }
              break;
            }
            case ScopeKind::Control:
              sc.hot_loop = info.hot_loop;
              break;
            default:
              break;
          }
          st.push_back(std::move(sc));
          buf.clear();
          break;
        }
        case '}': {
          harvest_virtual(st.back(), buf);
          buf.clear();
          if (st.size() <= 1) break;
          WScope sc = std::move(st.back());
          st.pop_back();
          if (sc.kind == ScopeKind::Lambda) {
            buf = std::move(sc.saved_buf);
            paren = sc.saved_paren;
          }
          if (sc.owns_fn) {
            fns_[size_t(sc.fn)].body_end = i;
          } else if (sc.fn >= 0) {
            // Attach to every enclosing function record: a hot enclosing
            // function scans its full body, including nested lambda text.
            int prev = -1;
            for (const WScope& up : st) {
              if (up.fn < 0 || up.fn == prev) continue;
              prev = up.fn;
              HpFn& owner = fns_[size_t(up.fn)];
              if (sc.cold)
                owner.cold_ranges.push_back(Range{sc.body_start, i});
              else if (sc.hot_loop && !sc.cold_ctx)
                owner.loop_ranges.push_back(Range{sc.body_start, i});
            }
          }
          break;
        }
        default:
          buf.push_back(c);
          break;
      }
    }
  }

  // `virtual Ret name(...)...;` declared in a class body. Classes whose head
  // carries BKR_COLD are exempt from the hot-path-virtual rule.
  void harvest_virtual(const WScope& scope, const std::string& buf) {
    if (scope.kind != ScopeKind::Class || scope.cls_cold) return;
    const std::string h = normalize(buf);
    if (find_token(h, "virtual") == std::string::npos) return;
    const size_t open = h.find('(');
    if (open == std::string::npos) return;
    const std::string name = ident_before(h, open);
    if (!name.empty()) virtuals_.insert(name);
  }

  // ---- transitive hotness over the name-based call graph ----

  // The receiver chain left of a '.'/'->', subscript groups stripped:
  // `st.history[size_t(c)].push_back` and `st.history.reserve` both yield
  // `st.history`, so a reserve on the container covers subscripted growth.
  static std::string receiver_base(const std::string& s, size_t dot) {
    std::string out;
    size_t i = dot;  // exclusive end of the receiver
    bool after_dot = false;
    while (i > 0) {
      const char c = s[i - 1];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        if (!after_dot) {
          // Whitespace binds only across a pending '.'/'->' (wrapped chain)
          // or just before one.
          size_t j = i - 1;
          while (j > 0 && std::isspace(static_cast<unsigned char>(s[j - 1])) != 0) --j;
          if (j == 0 || (s[j - 1] != '.' && !(s[j - 1] == '>' && j >= 2 && s[j - 2] == '-')))
            break;
        }
        --i;
        continue;
      }
      after_dot = false;
      if (c == ']') {
        int depth = 0;
        size_t j = i;
        while (j-- > 0) {
          if (s[j] == ']') ++depth;
          if (s[j] == '[' && --depth == 0) break;
        }
        i = j;  // subscript stripped from the chain
        continue;
      }
      if (is_ident(c)) {
        size_t b = i;
        while (b > 0 && is_ident(s[b - 1])) --b;
        out.insert(0, s.substr(b, i - b));
        i = b;
        continue;
      }
      if (c == '.') {
        out.insert(0, ".");
        --i;
        after_dot = true;
        continue;
      }
      if (c == '>' && i >= 2 && s[i - 2] == '-') {
        out.insert(0, "->");
        i -= 2;
        after_dot = true;
        continue;
      }
      break;
    }
    return out;
  }

  // Callee names (`ident(`) in [begin,end) of a function's body, skipping
  // BKR_COLD sub-ranges and exception construction (`throw X(...)`).
  // Member calls (`x.name(` / `p->name(`) do NOT emit edges: without type
  // information a name-based graph would conflate unrelated methods (every
  // `.resize(` would heat ThreadPool::resize, every `.load(` the recycle
  // cache). Methods on the per-iteration path carry BKR_HOT themselves.
  void mine_segment(const HpFn& fn, size_t begin, size_t end,
                    std::vector<std::string>& out) const {
    const std::string& s = files_[fn.file].blanked;
    std::string prev_word;
    for (size_t i = begin; i < end && i < s.size();) {
      if (!is_ident(s[i])) {
        ++i;
        continue;
      }
      const size_t b = i;
      while (i < end && is_ident(s[i])) ++i;
      const std::string w = s.substr(b, i - b);
      size_t j = i;
      while (j < end && std::isspace(static_cast<unsigned char>(s[j])) != 0) ++j;
      const bool member =
          b > 0 && (s[b - 1] == '.' || (s[b - 1] == '>' && b >= 2 && s[b - 2] == '-'));
      if (j < end && s[j] == '(' && !member && !in_ranges(fn.cold_ranges, b) &&
          prev_word != "throw")
        out.push_back(w);
      prev_word = w;
    }
  }

  void propagate() {
    std::map<std::string, std::vector<size_t>> by_name;
    for (size_t i = 0; i < fns_.size(); ++i)
      if (!fns_[i].name.empty()) by_name[fns_[i].name].push_back(i);
    std::vector<size_t> work;
    for (size_t i = 0; i < fns_.size(); ++i)
      if (!fns_[i].cold && (fns_[i].hot || !fns_[i].loop_ranges.empty())) work.push_back(i);
    while (!work.empty()) {
      const size_t idx = work.back();
      work.pop_back();
      HpFn& fn = fns_[idx];
      std::vector<std::string> callees;
      if (fn.hot) {
        if (fn.mined) continue;
        fn.mined = true;
        mine_segment(fn, fn.body_begin, fn.body_end, callees);
      } else {
        // Only the annotated loop bodies of a lukewarm function are hot.
        for (const Range& r : fn.loop_ranges) mine_segment(fn, r.first, r.second, callees);
      }
      for (const std::string& name : callees) {
        const auto it = by_name.find(name);
        if (it == by_name.end()) continue;
        for (const size_t t : it->second) {
          if (fns_[t].cold || fns_[t].hot) continue;
          fns_[t].hot = true;
          work.push_back(t);
        }
      }
    }
  }

  // ---- rule checks over hot text ----

  static bool is_growth_call(const std::string& w) {
    return w == "push_back" || w == "emplace_back" || w == "resize" || w == "assign" ||
           w == "insert" || w == "emplace";
  }

  static bool is_io_token(const std::string& w) {
    return w == "cout" || w == "cerr" || w == "clog" || w == "printf" || w == "fprintf" ||
           w == "puts" || w == "fputs" || w == "fopen" || w == "fwrite" || w == "ofstream" ||
           w == "ifstream" || w == "fstream" || w == "getline";
  }

  static bool is_owning_container(const std::string& w) {
    return w == "vector" || w == "deque" || w == "DenseMatrix" || w == "IncrementalQR" ||
           w == "DenseLU";
  }

  // Does the function body contain `<receiver>.reserve(` (modulo subscripts)?
  bool has_reserve(const HpFn& fn, const std::string& receiver) const {
    const std::string& s = files_[fn.file].blanked;
    size_t pos = fn.body_begin;
    while (pos < fn.body_end) {
      const size_t hit = s.find("reserve", pos);
      if (hit == std::string::npos || hit >= fn.body_end) return false;
      pos = hit + 7;
      if (hit == 0 || is_ident(s[hit - 1])) continue;  // part of a longer ident
      size_t j = pos;
      while (j < s.size() && std::isspace(static_cast<unsigned char>(s[j])) != 0) ++j;
      if (j >= s.size() || s[j] != '(') continue;
      size_t dot = hit;
      while (dot > 0 && std::isspace(static_cast<unsigned char>(s[dot - 1])) != 0) --dot;
      if (dot == 0 || (s[dot - 1] != '.' && s[dot - 1] != '>')) continue;
      const size_t anchor = s[dot - 1] == '.' ? dot - 1 : dot - 2;
      if (receiver_base(s, anchor) == receiver) return true;
    }
    return false;
  }

  void check_fn(const HpFn& fn) {
    if (fn.cold) return;
    const bool whole = fn.hot;
    if (!whole && fn.loop_ranges.empty()) return;
    const std::string& s = files_[fn.file].blanked;
    std::string prev_word;
    for (size_t i = fn.body_begin; i < fn.body_end && i < s.size();) {
      if (!is_ident(s[i])) {
        if (std::isspace(static_cast<unsigned char>(s[i])) == 0) prev_word.clear();
        ++i;
        continue;
      }
      const size_t b = i;
      while (i < fn.body_end && is_ident(s[i])) ++i;
      const std::string w = s.substr(b, i - b);
      if (in_ranges(fn.cold_ranges, b)) {
        prev_word = w;
        continue;
      }
      const bool in_loop = in_ranges(fn.loop_ranges, b);
      if (!whole && !in_loop) {
        prev_word = w;
        continue;
      }
      size_t j = i;
      while (j < fn.body_end && std::isspace(static_cast<unsigned char>(s[j])) != 0) ++j;
      const char next = j < fn.body_end ? s[j] : '\0';
      const bool member = b > 0 && (s[b - 1] == '.' || (s[b - 1] == '>' && b >= 2 && s[b - 2] == '-'));
      const long line_no = line_of(fn.file, b);

      if (w == "new" && prev_word != "operator") {
        add(fn.file, "hot-path-alloc", line_no);
      } else if ((w == "malloc" || w == "calloc" || w == "realloc" || w == "aligned_alloc") &&
                 next == '(') {
        add(fn.file, "hot-path-alloc", line_no);
      } else if (member && is_growth_call(w) && next == '(') {
        const size_t anchor = s[b - 1] == '.' ? b - 1 : b - 2;
        const std::string recv = receiver_base(s, anchor);
        if (recv.empty() || !has_reserve(fn, recv)) add(fn.file, "hot-path-alloc", line_no);
      } else if (in_loop && !member && is_owning_container(w) && next == '<') {
        // An owning container declared inside a hot loop: skip references /
        // pointers / nested-name uses of the type.
        int depth = 0;
        size_t k = j;
        for (; k < fn.body_end; ++k) {
          if (s[k] == '<') ++depth;
          if (s[k] == '>' && --depth == 0) break;
        }
        ++k;
        while (k < fn.body_end && std::isspace(static_cast<unsigned char>(s[k])) != 0) ++k;
        const char after = k < fn.body_end ? s[k] : '\0';
        if (after == '(' || is_ident(after)) add(fn.file, "hot-path-alloc", line_no);
      } else if (w == "lock_guard" || w == "unique_lock" || w == "scoped_lock") {
        add(fn.file, "hot-path-lock", line_no);
      } else if (member && (w == "lock" || w == "try_lock") && next == '(') {
        add(fn.file, "hot-path-lock", line_no);
      } else if (is_io_token(w)) {
        add(fn.file, "hot-path-io", line_no);
      } else if (prev_word == "throw" || (w == "throw" && next == ';')) {
        if (w != "BreakdownError") add(fn.file, "hot-path-throw", line_no);
      } else if (in_loop && member && next == '(' && virtuals_.count(w) != 0) {
        add(fn.file, "hot-path-virtual", line_no);
      } else if (in_loop && w == "now" && next == '(') {
        // Deadline checks belong in detail::poll_cancel (BKR_HOT, straight-
        // line, once per outer iteration) — the one sanctioned clock/cancel
        // poll site in hot code. A raw clock read spelled out in the loop
        // body is unbounded timing traffic and gets flagged.
        add(fn.file, "hot-path-clock", line_no);
      }
      prev_word = w;
    }
  }

  std::vector<SourceFile> files_;
  std::vector<std::vector<size_t>> newlines_;  // '\n' offsets per file
  std::vector<HpFn> fns_;
  std::set<std::string> virtuals_;
  std::vector<Finding> findings_;
};

std::vector<Finding> hotpath_files(std::vector<SourceFile> files) {
  Hotpath hp(std::move(files));
  return hp.run();
}

std::vector<Finding> hotpath_tree(const fs::path& root) {
  return hotpath_files(load_project_files(root));
}

// ---------------------------------------------------------------------------
// bkr-fpflow: intra-function precision-flow & numerical-safety analysis
// (DESIGN.md §14). A def-use walk over every function body in src/ that
// tracks scalar precision (float / double / std::complex widths) through
// declarations, assignments, casts and returns, the precondition for the
// mixed-precision work of ROADMAP item 3. Five rules:
//
//   implicit-narrowing          double -> float (or complex<double> ->
//                               complex<float>) flow — initialization,
//                               assignment, cast or return — without a
//                               BKR_ALLOW_NARROWING on the statement or
//                               the function head.
//   low-precision-accumulation  a float accumulator receiving += / -= in
//                               a loop body: the classic error-growth bug;
//                               accumulate in double (or annotate).
//   unguarded-division          dividing by a computed norm / dot / pivot
//                               value with no visible zero or non-finite
//                               guard on the divisor anywhere in the
//                               function and no BKR_GUARDED_DIV — the cg
//                               dq breakdown fixed in PR 5 is this class.
//   mixed-literal               an f-suffixed and an unsuffixed fractional
//                               literal on one line: one of them is almost
//                               certainly the wrong precision.
//   oracle-mismatch             a narrowing component (class or function
//                               carrying BKR_ALLOW_NARROWING /
//                               BKR_PRECISION_BOUNDARY) referenced from
//                               src/core — i.e. reachable from a solver
//                               entry — with no BKR_TOLERANCE_ORACLE(c)
//                               covering it in tests/.
//
// Like the other stages this is lexical, not semantic: `auto` and template
// scalars stay Unknown and produce no findings (no false positives from
// generic code), so the rules bind exactly where precision is spelled out.

class Fpflow {
 public:
  Fpflow(std::vector<SourceFile> files, std::vector<SourceFile> test_files)
      : files_(std::move(files)), tests_(std::move(test_files)) {}

  std::vector<Finding> run() {
    newlines_.resize(files_.size());
    for (size_t i = 0; i < files_.size(); ++i) {
      for (size_t j = 0; j < files_[i].blanked.size(); ++j)
        if (files_[i].blanked[j] == '\n') newlines_[i].push_back(j);
      walk_file(i);
      check_mixed_literals(i);
    }
    for (const FpFn& fn : fns_) check_fn(fn);
    check_oracles();
    std::sort(findings_.begin(), findings_.end(), [](const Finding& a, const Finding& b) {
      return std::tie(a.path, a.line, a.rule) < std::tie(b.path, b.line, b.rule);
    });
    findings_.erase(std::unique(findings_.begin(), findings_.end(),
                                [](const Finding& a, const Finding& b) {
                                  return a.rule == b.rule && a.path == b.path && a.line == b.line;
                                }),
                    findings_.end());
    return std::move(findings_);
  }

 private:
  using Range = std::pair<size_t, size_t>;

  enum class Prec { Unknown, F32, F64, C32, C64 };
  static bool narrow(Prec p) { return p == Prec::F32 || p == Prec::C32; }
  static bool wide(Prec p) { return p == Prec::F64 || p == Prec::C64; }

  struct FpFn {
    std::string name;
    std::string cls;   // enclosing class, "" at namespace scope
    std::string head;  // normalized declarator head (params included)
    size_t file = 0;
    size_t body_begin = 0, body_end = 0;
    long open_line = 0;
    bool allow = false;  // BKR_ALLOW_NARROWING on the head
    std::vector<Range> loop_ranges;
  };

  struct ClassRange {
    std::string name;
    size_t file = 0;
    size_t begin = 0, end = 0;
  };

  struct WScope {
    ScopeKind kind = ScopeKind::Block;
    int fn = -1;
    bool owns_fn = false;
    bool loop = false;
    std::string cls;
    size_t body_start = 0;
    size_t cls_idx = size_t(-1);  // open ClassRange being built
    std::string saved_buf;        // Lambda: suspended outer statement
    int saved_paren = 0;
  };

  static bool in_ranges(const std::vector<Range>& rs, size_t off) {
    for (const Range& r : rs)
      if (off >= r.first && off < r.second) return true;
    return false;
  }

  void add(size_t file, const std::string& rule, long line_no) {
    const SourceFile& f = files_[file];
    if (f.file_allows.count(rule) != 0) return;
    const auto it = f.allows.find(line_no);
    if (it != f.allows.end() && it->second.count(rule) != 0) return;
    const std::string raw = (line_no >= 1 && size_t(line_no) <= f.raw_lines.size())
                                ? f.raw_lines[size_t(line_no) - 1]
                                : std::string();
    findings_.push_back(Finding{rule, f.path, line_no, normalize(raw)});
  }

  long line_of(size_t file, size_t off) const {
    const std::vector<size_t>& nl = newlines_[file];
    return long(std::upper_bound(nl.begin(), nl.end(), off) - nl.begin()) + 1;
  }

  // First statement token is a loop introducer (annotations skipped).
  static bool loop_head(const std::string& raw_head) {
    std::stringstream ts(normalize(raw_head));
    std::string tok;
    while (ts >> tok) {
      if (tok == "BKR_HOT_LOOP" || tok == "BKR_HOT" || tok == "BKR_COLD") continue;
      break;
    }
    if (tok == "do" || tok == "while") return true;
    return tok.rfind("for", 0) == 0 && (tok.size() == 3 || tok[3] == '(');
  }

  // ---- scope walk: function records, loop ranges, class ranges ----

  void walk_file(size_t file) {
    const SourceFile& f = files_[file];
    const std::string& s = f.blanked;
    std::vector<WScope> st(1);
    st[0].kind = ScopeKind::Namespace;
    std::string buf;
    int paren = 0;
    int init_depth = 0;
    long line = 1;
    bool line_has_code = false;
    for (size_t i = 0; i < s.size(); ++i) {
      const char c = s[i];
      if (c == '\n') {
        ++line;
        line_has_code = false;
        buf.push_back(' ');
        continue;
      }
      if (c == '#' && !line_has_code) {
        while (i < s.size()) {
          if (s[i] == '\n') {
            bool cont = false;
            for (size_t k = i; k-- > 0 && s[k] != '\n';) {
              if (std::isspace(static_cast<unsigned char>(s[k])) == 0) {
                cont = s[k] == '\\';
                break;
              }
            }
            ++line;
            if (!cont) break;
          }
          ++i;
        }
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c)) == 0) line_has_code = true;
      if (init_depth > 0) {
        if (c == '{') ++init_depth;
        if (c == '}') --init_depth;
        buf.push_back(c);
        continue;
      }
      switch (c) {
        case '(':
          ++paren;
          buf.push_back(c);
          break;
        case ')':
          --paren;
          buf.push_back(c);
          break;
        case ';':
          if (paren > 0)
            buf.push_back(c);
          else
            buf.clear();
          break;
        case ':': {
          const bool dbl = (i + 1 < s.size() && s[i + 1] == ':') || (i > 0 && s[i - 1] == ':');
          if (!dbl && paren == 0) {
            const std::string t = ident_before(buf, buf.size());
            const std::string h = normalize(buf);
            if (t == "public" || t == "private" || t == "protected" || t == "default" ||
                h.rfind("case ", 0) == 0 || h == "case") {
              buf.clear();
              break;
            }
          }
          buf.push_back(c);
          break;
        }
        case '{': {
          const OpenInfo info = classify_open(buf);
          if (info.kind == ScopeKind::Block && !normalize(buf).empty()) {
            init_depth = 1;
            buf.push_back(c);
            break;
          }
          WScope sc;
          sc.kind = info.kind;
          sc.fn = st.back().fn;
          sc.cls = st.back().cls;
          sc.body_start = i + 1;
          switch (info.kind) {
            case ScopeKind::Class:
              sc.cls = info.name;
              sc.fn = -1;
              sc.cls_idx = classes_.size();
              classes_.push_back(ClassRange{info.name, file, i + 1, 0});
              break;
            case ScopeKind::Function:
              if (st.back().fn < 0) {
                FpFn fn;
                fn.name = info.name;
                fn.cls = !info.qualifier.empty() ? info.qualifier : st.back().cls;
                fn.head = normalize(buf);
                fn.file = file;
                fn.body_begin = i + 1;
                fn.open_line = line;
                fn.allow = find_token(fn.head, "BKR_ALLOW_NARROWING") != std::string::npos;
                sc.fn = int(fns_.size());
                sc.owns_fn = true;
                fns_.push_back(std::move(fn));
              }
              break;
            case ScopeKind::Lambda:
              sc.saved_buf = buf;
              sc.saved_paren = paren;
              paren = 0;
              break;
            case ScopeKind::Control:
              sc.loop = loop_head(buf);
              break;
            default:
              break;
          }
          st.push_back(std::move(sc));
          buf.clear();
          break;
        }
        case '}': {
          buf.clear();
          if (st.size() <= 1) break;
          WScope sc = std::move(st.back());
          st.pop_back();
          if (sc.kind == ScopeKind::Lambda) {
            buf = std::move(sc.saved_buf);
            paren = sc.saved_paren;
          }
          if (sc.cls_idx != size_t(-1)) classes_[sc.cls_idx].end = i;
          if (sc.owns_fn)
            fns_[size_t(sc.fn)].body_end = i;
          else if (sc.loop && sc.fn >= 0)
            fns_[size_t(sc.fn)].loop_ranges.push_back(Range{sc.body_start, i});
          break;
        }
        default:
          buf.push_back(c);
          break;
      }
    }
  }

  // ---- precision lattice helpers ----

  // Unsuffixed fractional / exponent literal (0.1, 1e-14, 2.), i.e. a
  // double literal. The f-suffixed twin is has_float_literal above.
  static bool has_plain_double_literal(const std::string& text) {
    for (size_t i = 0; i < text.size(); ++i) {
      if (std::isdigit(static_cast<unsigned char>(text[i])) == 0) continue;
      if (i > 0 && (is_ident(text[i - 1]) || text[i - 1] == '.')) {
        while (i < text.size() && (is_ident(text[i]) || text[i] == '.')) ++i;
        continue;
      }
      size_t j = i;
      bool fractional = false;
      while (j < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[j])) != 0 || text[j] == '.')) {
        if (text[j] == '.') fractional = true;
        ++j;
      }
      if (j < text.size() && (text[j] == 'e' || text[j] == 'E')) {
        fractional = true;
        ++j;
        if (j < text.size() && (text[j] == '+' || text[j] == '-')) ++j;
        while (j < text.size() && std::isdigit(static_cast<unsigned char>(text[j])) != 0) ++j;
      }
      if (fractional && (j >= text.size() || (!is_ident(text[j]) && text[j] != '.'))) return true;
      i = j;
    }
    return false;
  }

  // Declared variable name following a type token, or "" when the token is
  // a cast / return type / template argument rather than a declaration.
  static std::string decl_ident_after(const std::string& t, size_t from) {
    size_t i = from;
    for (;;) {
      while (i < t.size() && std::isspace(static_cast<unsigned char>(t[i])) != 0) ++i;
      if (i < t.size() && (t[i] == '&' || t[i] == '*')) {
        ++i;
        continue;
      }
      if (find_token(t, "const", i) == i) {
        i += 5;
        continue;
      }
      break;
    }
    if (i >= t.size() || !is_ident(t[i]) ||
        std::isdigit(static_cast<unsigned char>(t[i])) != 0)
      return {};
    size_t e = i;
    while (e < t.size() && is_ident(t[e])) ++e;
    const std::string name = t.substr(i, e - i);
    if (is_cxx_keyword(name)) return {};
    return name;
  }

  // Harvest `float x` / `double y` / `std::complex<float> z` declarations
  // (including function parameters when `text` is a declarator head).
  static void harvest_decls(const std::string& text, std::map<std::string, Prec>& vars) {
    std::string t = text;
    for (size_t pos = find_token(t, "complex"); pos != std::string::npos;
         pos = find_token(t, "complex", pos + 1)) {
      size_t lt = pos + 7;
      while (lt < t.size() && std::isspace(static_cast<unsigned char>(t[lt])) != 0) ++lt;
      if (lt >= t.size() || t[lt] != '<') continue;
      int depth = 0;
      size_t gt = lt;
      for (; gt < t.size(); ++gt) {
        if (t[gt] == '<') ++depth;
        if (t[gt] == '>' && --depth == 0) break;
      }
      if (gt >= t.size()) break;
      const std::string arg = t.substr(lt + 1, gt - lt - 1);
      Prec p = Prec::Unknown;
      if (find_token(arg, "float") != std::string::npos) p = Prec::C32;
      if (find_token(arg, "double") != std::string::npos) p = Prec::C64;
      const std::string var = decl_ident_after(t, gt + 1);
      if (p != Prec::Unknown && !var.empty()) vars[var] = p;
      for (size_t k = pos; k <= gt; ++k) t[k] = ' ';  // hide the template arg
    }
    const std::pair<const char*, Prec> kScalars[] = {{"float", Prec::F32},
                                                     {"double", Prec::F64}};
    for (const auto& [kw, prec] : kScalars) {
      const size_t len = std::strlen(kw);
      for (size_t pos = find_token(t, kw); pos != std::string::npos;
           pos = find_token(t, kw, pos + len)) {
        const std::string var = decl_ident_after(t, pos + len);
        if (!var.empty()) vars[var] = prec;
      }
    }
  }

  // Return-type precision of a declarator head: the type tokens before the
  // function name.
  static Prec return_precision(const std::string& head, const std::string& name) {
    const size_t pos = name.empty() ? std::string::npos : find_token(head, name);
    if (pos == std::string::npos) return Prec::Unknown;
    const std::string before = head.substr(0, pos);
    const size_t cpos = find_token(before, "complex");
    if (cpos != std::string::npos) {
      const size_t lt = before.find('<', cpos);
      if (lt != std::string::npos) {
        if (find_token(before, "float", lt) != std::string::npos) return Prec::C32;
        if (find_token(before, "double", lt) != std::string::npos) return Prec::C64;
      }
      return Prec::Unknown;
    }
    if (find_token(before, "float") != std::string::npos) return Prec::F32;
    if (find_token(before, "double") != std::string::npos) return Prec::F64;
    return Prec::Unknown;
  }

  // A source of double-width values in an expression: a wide-declared
  // variable, an unsuffixed fractional literal, or a `double` cast.
  static bool wide_source(const std::string& expr, const std::map<std::string, Prec>& vars) {
    if (has_plain_double_literal(expr)) return true;
    if (find_token(expr, "double") != std::string::npos) return true;
    for (const auto& [name, prec] : vars) {
      if (!wide(prec)) continue;
      if (find_token(expr, name) != std::string::npos) return true;
    }
    return false;
  }

  // Computed-denominator vocabulary: names and producer calls whose result
  // can legitimately be zero (norms of zero columns, dots at breakdown,
  // pivots of singular blocks) and therefore must be guarded before use as
  // a divisor.
  static bool computed_name(const std::string& name) {
    std::string lower;
    for (const char c : name) lower.push_back(char(std::tolower(static_cast<unsigned char>(c))));
    return lower.find("norm") != std::string::npos || lower.find("pivot") != std::string::npos ||
           lower.find("denom") != std::string::npos;
  }

  static bool has_producer_call(const std::string& expr) {
    static const char* const kProducers[] = {
        "dot",  "cdot",  "vdot",  "tree_dot", "dot_products", "norm",          "norms",
        "nrm2", "norm2", "gram",  "pivot",    "pivots",       "column_norms",  "diagonal",
        "tree_column_norms"};
    for (const char* p : kProducers)
      if (find_token(expr, p) != std::string::npos) return true;
    return false;
  }

  // Visible guard on `var` anywhere in the function body: a comparison
  // touching it (possibly through a subscript), an isfinite() on it, a
  // max()-clamp around it, or a range-for sanitize pass over it.
  static bool guarded_in(const std::string& body, const std::string& var) {
    for (size_t pos = find_token(body, var); pos != std::string::npos;
         pos = find_token(body, var, pos + 1)) {
      size_t b = pos;
      while (b > 0 && std::isspace(static_cast<unsigned char>(body[b - 1])) != 0) --b;
      if (b > 0) {
        const char c1 = body[b - 1];
        const char c2 = b > 1 ? body[b - 2] : '\0';
        if (c1 == '<' || c1 == '>') return true;
        if (c1 == '=' && (c2 == '=' || c2 == '!' || c2 == '<' || c2 == '>')) return true;
        if (c1 == ':' && c2 != ':') return true;  // range-for sanitize pass
        if (c1 == '(') {
          const std::string callee = ident_before(body, b - 1);
          if (callee == "isfinite" || callee == "max" || callee == "fmax" || callee == "abs")
            return true;
        }
      }
      size_t e = pos + var.size();
      for (;;) {  // skip subscripts / call args to the comparator
        while (e < body.size() && std::isspace(static_cast<unsigned char>(body[e])) != 0) ++e;
        if (e < body.size() && (body[e] == '[' || body[e] == '(')) {
          const char open = body[e];
          const char close = open == '[' ? ']' : ')';
          int depth = 0;
          while (e < body.size()) {
            if (body[e] == open) ++depth;
            if (body[e] == close && --depth == 0) {
              ++e;
              break;
            }
            ++e;
          }
          continue;
        }
        break;
      }
      if (e < body.size()) {
        const char c = body[e];
        const char c2 = e + 1 < body.size() ? body[e + 1] : '\0';
        if (c == '<' || c == '>') return true;
        if ((c == '=' || c == '!') && c2 == '=') return true;
      }
    }
    return false;
  }

  // Identifier tokens of an expression, skipping keywords.
  static std::vector<std::string> idents_of(const std::string& expr) {
    std::vector<std::string> out;
    for (size_t i = 0; i < expr.size(); ++i) {
      if (!is_ident(expr[i]) || std::isdigit(static_cast<unsigned char>(expr[i])) != 0) {
        while (i < expr.size() && is_ident(expr[i])) ++i;
        continue;
      }
      size_t e = i;
      while (e < expr.size() && is_ident(expr[e])) ++e;
      const std::string w = expr.substr(i, e - i);
      if (!is_cxx_keyword(w) && w != "std") out.push_back(w);
      i = e;
    }
    return out;
  }

  // Divisor expression after a '/' at `slash`: the primary expression up to
  // the next top-level additive / separator boundary. Over-capture past a
  // comparison is harmless — extra identifiers only widen the guard search.
  static std::string divisor_expr(const std::string& stmt, size_t slash) {
    size_t j = slash + 1;
    if (j < stmt.size() && stmt[j] == '=') ++j;  // x /= d
    const size_t start = j;
    int depth = 0;
    for (; j < stmt.size(); ++j) {
      const char ch = stmt[j];
      if (ch == '(' || ch == '[') ++depth;
      if (ch == ')' || ch == ']') {
        if (depth == 0) break;
        --depth;
      }
      if (depth == 0 && (ch == '+' || ch == '-' || ch == '*' || ch == ',' || ch == ';' ||
                         ch == '?' || ch == '=' || ch == '/'))
        break;
    }
    return stmt.substr(start, j - start);
  }

  // ---- per-function def-use walk ----

  void check_fn(const FpFn& fn) {
    const std::string& s = files_[fn.file].blanked;
    if (fn.body_end <= fn.body_begin || fn.body_end > s.size()) return;
    const std::string body = s.substr(fn.body_begin, fn.body_end - fn.body_begin);
    std::map<std::string, Prec> vars;
    std::set<std::string> computed;
    harvest_decls(fn.head, vars);
    for (const auto& [name, prec] : vars)
      if (computed_name(name)) computed.insert(name);
    const Prec ret = return_precision(fn.head, fn.name);

    size_t stmt_begin = fn.body_begin;
    int paren = 0;
    for (size_t i = fn.body_begin; i <= fn.body_end; ++i) {
      const char c = i < fn.body_end ? s[i] : ';';
      if (c == '(') ++paren;
      if (c == ')' && paren > 0) --paren;
      const bool end = (c == ';' && paren == 0) || c == '{' || c == '}' || i == fn.body_end;
      if (!end) continue;
      if (i > stmt_begin) {
        const std::string stmt = s.substr(stmt_begin, i - stmt_begin);
        check_stmt(fn, stmt, stmt_begin, body, vars, computed, ret);
      }
      stmt_begin = i + 1;
      paren = 0;
    }
  }

  void check_stmt(const FpFn& fn, const std::string& stmt, size_t off, const std::string& body,
                  std::map<std::string, Prec>& vars, std::set<std::string>& computed, Prec ret) {
    size_t first = 0;
    while (first < stmt.size() && std::isspace(static_cast<unsigned char>(stmt[first])) != 0)
      ++first;
    if (first == stmt.size()) return;
    const long line = line_of(fn.file, off + first);
    const bool allow =
        fn.allow || find_token(stmt, "BKR_ALLOW_NARROWING") != std::string::npos;
    const bool div_ok = find_token(stmt, "BKR_GUARDED_DIV") != std::string::npos;

    // Declarations first: the RHS of a narrow declaration is checked
    // against the *previous* environment, then the new vars take effect.
    std::map<std::string, Prec> declared;
    harvest_decls(stmt, declared);

    bool narrowed = false;
    const size_t assign = first_plain_assign(stmt);
    const std::string rhs =
        assign == std::string::npos ? std::string() : stmt.substr(assign + 1);

    // implicit-narrowing: narrow declaration or assignment fed by a wide
    // source, a narrowing cast, or a wide return from a narrow function.
    if (!allow) {
      for (const auto& [name, prec] : declared) {
        if (!narrow(prec) || assign == std::string::npos) continue;
        if (find_token(stmt.substr(0, assign), name) == std::string::npos) continue;
        if (wide_source(rhs, vars)) {
          add(fn.file, "implicit-narrowing", line);
          narrowed = true;
          break;
        }
      }
      if (!narrowed && assign != std::string::npos && declared.empty()) {
        const std::string lhs = ident_before(stmt, assign);
        const auto it = vars.find(lhs);
        if (it != vars.end() && narrow(it->second) && wide_source(rhs, vars)) {
          add(fn.file, "implicit-narrowing", line);
          narrowed = true;
        }
      }
      if (!narrowed && has_narrowing_cast(stmt, vars)) {
        add(fn.file, "implicit-narrowing", line);
        narrowed = true;
      }
      if (!narrowed && narrow(ret)) {
        const std::string norm_stmt = normalize(stmt);
        if (norm_stmt.rfind("return", 0) == 0 && wide_source(norm_stmt.substr(6), vars))
          add(fn.file, "implicit-narrowing", line);
      }
    }

    // low-precision-accumulation: narrow += / -= inside a loop body.
    if (!allow && in_ranges(fn.loop_ranges, off)) {
      for (const char* op : {"+=", "-="}) {
        const size_t pos = stmt.find(op);
        if (pos == std::string::npos) continue;
        const std::string acc = ident_before(stmt, pos);
        const auto it = vars.find(acc);
        const auto dit = declared.find(acc);
        const Prec p = dit != declared.end() ? dit->second
                                             : it != vars.end() ? it->second : Prec::Unknown;
        if (narrow(p)) {
          add(fn.file, "low-precision-accumulation", line);
          break;
        }
      }
    }

    for (const auto& [name, prec] : declared) vars[name] = prec;
    for (const auto& [name, prec] : declared)
      if (computed_name(name)) computed.insert(name);

    // Track computed denominators through assignment. A max()/fmax()-clamped
    // RHS is sanitized at production (`max(norm2(x), tiny)`) and is safe to
    // divide by.
    if (assign != std::string::npos) {
      const std::string lhs = ident_before(stmt, assign);
      if (!lhs.empty() && !clamped_rhs(rhs)) {
        bool is_computed = has_producer_call(rhs);
        if (!is_computed)
          for (const std::string& w : idents_of(rhs))
            if (computed.count(w) != 0) {
              is_computed = true;
              break;
            }
        if (is_computed) computed.insert(lhs);
      }
    }

    // unguarded-division: a computed value in divisor position with no
    // visible guard anywhere in the function.
    if (!div_ok && !allow) {
      for (size_t i = 0; i < stmt.size(); ++i) {
        if (stmt[i] != '/') continue;
        const std::string expr = divisor_expr(stmt, i);
        bool flagged = false;
        for (const std::string& w : idents_of(expr)) {
          if (computed.count(w) == 0) continue;
          if (guarded_in(body, w)) continue;
          add(fn.file, "unguarded-division", line_of(fn.file, off + i));
          flagged = true;
          break;
        }
        if (flagged) break;
      }
    }
  }

  // RHS whose outermost call is a max/fmax clamp.
  static bool clamped_rhs(const std::string& rhs) {
    const std::string t = normalize(rhs);
    size_t i = 0;
    while (i < t.size() && !is_ident(t[i])) ++i;
    size_t e = i;
    while (e < t.size() && is_ident(t[e])) ++e;
    std::string w = t.substr(i, e - i);
    if (w == "std") {
      while (e < t.size() && (t[e] == ':' || t[e] == ' ')) ++e;
      i = e;
      while (e < t.size() && is_ident(t[e])) ++e;
      w = t.substr(i, e - i);
    }
    return w == "max" || w == "fmax";
  }

  // Position of the first top-level plain '=' (not ==, !=, <=, >=, +=, ...).
  static size_t first_plain_assign(const std::string& stmt) {
    int depth = 0;
    for (size_t i = 0; i < stmt.size(); ++i) {
      const char c = stmt[i];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') --depth;
      if (c != '=' || depth != 0) continue;
      const char prev = i > 0 ? stmt[i - 1] : '\0';
      const char next = i + 1 < stmt.size() ? stmt[i + 1] : '\0';
      if (next == '=') {
        ++i;
        continue;
      }
      if (prev == '=' || prev == '!' || prev == '<' || prev == '>' || prev == '+' ||
          prev == '-' || prev == '*' || prev == '/' || prev == '%' || prev == '&' ||
          prev == '|' || prev == '^')
        continue;
      return i;
    }
    return std::string::npos;
  }

  // `float(...)` / `static_cast<float>(...)` over a wide expression.
  static bool has_narrowing_cast(const std::string& stmt, const std::map<std::string, Prec>& vars) {
    for (size_t pos = find_token(stmt, "float"); pos != std::string::npos;
         pos = find_token(stmt, "float", pos + 5)) {
      size_t j = pos + 5;
      while (j < stmt.size() && std::isspace(static_cast<unsigned char>(stmt[j])) != 0) ++j;
      if (j >= stmt.size()) break;
      std::string inner;
      if (stmt[j] == '(') {
        inner = balanced(stmt, j);
      } else if (stmt[j] == '>' && pos >= 1) {
        // static_cast<float>(expr) / complex<float>(expr)
        const size_t call = stmt.find('(', j);
        if (call == std::string::npos) continue;
        inner = balanced(stmt, call);
      } else {
        continue;
      }
      if (wide_source(inner, vars)) return true;
    }
    return false;
  }

  static std::string balanced(const std::string& s, size_t open) {
    int depth = 0;
    for (size_t i = open; i < s.size(); ++i) {
      if (s[i] == '(') ++depth;
      if (s[i] == ')' && --depth == 0) return s.substr(open + 1, i - open - 1);
    }
    return s.substr(open + 1);
  }

  // ---- file-level rules ----

  void check_mixed_literals(size_t file) {
    const SourceFile& f = files_[file];
    for (size_t li = 0; li < f.lines.size(); ++li) {
      size_t where = 0;
      if (has_float_literal(f.lines[li], &where) && has_plain_double_literal(f.lines[li]))
        add(file, "mixed-literal", long(li) + 1);
    }
  }

  // ---- oracle coverage: annotated components reachable from src/core ----

  void check_oracles() {
    // component -> first annotation site
    std::map<std::string, std::pair<size_t, long>> components;
    for (size_t fi = 0; fi < files_.size(); ++fi) {
      const SourceFile& f = files_[fi];
      for (const char* marker : {"BKR_ALLOW_NARROWING", "BKR_PRECISION_BOUNDARY"}) {
        for (size_t pos = find_token(f.blanked, marker); pos != std::string::npos;
             pos = find_token(f.blanked, marker, pos + 1)) {
          const long line = line_of(fi, pos);
          if (line >= 1 && size_t(line) <= f.lines.size()) {
            const std::string norm_line = normalize(f.lines[size_t(line) - 1]);
            if (!norm_line.empty() && norm_line[0] == '#') continue;  // the #define itself
          }
          const std::string comp = component_of(fi, pos);
          if (comp.empty()) continue;
          if (components.count(comp) == 0) components[comp] = {fi, line};
        }
      }
    }
    if (components.empty()) return;

    std::set<std::string> oracles;
    for (const SourceFile& t : tests_) {
      for (size_t pos = find_token(t.blanked, "BKR_TOLERANCE_ORACLE"); pos != std::string::npos;
           pos = find_token(t.blanked, "BKR_TOLERANCE_ORACLE", pos + 1)) {
        const std::string arg = macro_arg(t.blanked, pos + std::strlen("BKR_TOLERANCE_ORACLE"));
        if (!arg.empty()) oracles.insert(arg);
      }
    }

    for (const auto& [comp, site] : components) {
      bool reachable = false;
      for (const SourceFile& f : files_) {
        if (f.path.rfind("src/core/", 0) != 0) continue;
        if (find_token(f.blanked, comp) != std::string::npos) {
          reachable = true;
          break;
        }
      }
      if (!reachable) continue;
      bool covered = false;
      for (const std::string& o : oracles)
        if (find_token(o, comp) != std::string::npos) {
          covered = true;
          break;
        }
      if (!covered) add(site.first, "oracle-mismatch", site.second);
    }
  }

  // Innermost named entity containing an offset: class range, else function.
  std::string component_of(size_t file, size_t off) const {
    std::string best;
    size_t best_size = size_t(-1);
    for (const ClassRange& cr : classes_) {
      if (cr.file != file || off < cr.begin || off >= cr.end) continue;
      if (cr.end - cr.begin < best_size) {
        best_size = cr.end - cr.begin;
        best = cr.name;
      }
    }
    if (!best.empty()) return best;
    for (const FpFn& fn : fns_) {
      // Head annotations sit before body_begin: accept a small window that
      // covers the declarator statement.
      if (fn.file != file) continue;
      const size_t head_begin = fn.body_begin > fn.head.size() + 64
                                    ? fn.body_begin - fn.head.size() - 64
                                    : 0;
      if (off >= head_begin && off < fn.body_end)
        return !fn.cls.empty() ? fn.cls : fn.name;
    }
    return {};
  }

  std::vector<SourceFile> files_;
  std::vector<SourceFile> tests_;
  std::vector<std::vector<size_t>> newlines_;
  std::vector<FpFn> fns_;
  std::vector<ClassRange> classes_;
  std::vector<Finding> findings_;
};

std::vector<Finding> fpflow_files(std::vector<SourceFile> files,
                                  std::vector<SourceFile> test_files) {
  Fpflow fp(std::move(files), std::move(test_files));
  return fp.run();
}

std::vector<SourceFile> load_tree_files(const fs::path& root, const char* sub);

std::vector<Finding> fpflow_tree(const fs::path& root) {
  return fpflow_files(load_project_files(root), load_tree_files(root, "tests"));
}

// ---------------------------------------------------------------------------
// Baseline handling.

std::set<std::string> load_baseline(const std::string& path) {
  std::set<std::string> entries;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    entries.insert(line);
  }
  return entries;
}

std::string baseline_key(const Finding& f) {
  return f.rule + "\t" + f.path + "\t" + f.content;
}

// ---------------------------------------------------------------------------
// Driver.

bool should_scan(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

std::vector<Finding> scan_tree(const fs::path& root, const std::vector<std::string>& subdirs) {
  std::vector<Finding> all;
  for (const std::string& sub : subdirs) {
    const fs::path dir = root / sub;
    if (!fs::exists(dir)) continue;
    std::vector<fs::path> files;
    for (const auto& entry : fs::recursive_directory_iterator(dir))
      if (entry.is_regular_file() && should_scan(entry.path())) files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    for (const fs::path& file : files) {
      std::ifstream in(file, std::ios::binary);
      std::stringstream ss;
      ss << in.rdbuf();
      const std::string rel = fs::relative(file, root).generic_string();
      FileReport report = scan_content(rel, ss.str());
      all.insert(all.end(), report.findings.begin(), report.findings.end());
    }
  }
  return all;
}

// ---------------------------------------------------------------------------
// Self-test: one planted violation per rule plus clean fixtures that must
// stay silent.

int self_test() {
  struct Case {
    const char* name;
    const char* content;
    const char* expect_rule;  // nullptr = expect clean
  };
  const Case cases[] = {
      {"plant-new.cpp", "void f() { int* p = new int(3); }\n", "raw-new-delete"},
      {"plant-delete.cpp", "void f(int* p) { delete p; }\n", "raw-new-delete"},
      {"plant-using.hpp", "#pragma once\nusing namespace std;\n", "using-namespace-header"},
      {"plant-factor.cpp", "void f() { cholqr<double>(v, r); }\n", "unchecked-factor"},
      {"plant-factor-qualified.cpp", "void f() { bkr::detail::qr_block<double>(w, r, s, c); }\n",
       "unchecked-factor"},
      {"plant-rng.cpp", "#include <random>\nstd::mt19937 gen(42);\n", "non-central-rng"},
      {"plant-guard.hpp", "inline int f() { return 1; }\n", "missing-include-guard"},
      {"plant-float.cpp", "double x = 1.5f;\n", "float-literal"},
      {"plant-float-type.cpp", "float y = 2.0;\n", "float-literal"},
      {"plant-thread.cpp", "void f() { std::thread t([] {}); t.join(); }\n", "unpooled-thread"},
      {"plant-thread-vec.cpp", "std::vector<std::thread> workers;\n", "unpooled-thread"},
      {"src/core/plant-catch.cpp",
       "void f() { try { g(); } catch (const std::runtime_error& e) { h(); } }\n", "broad-catch"},
      {"src/core/plant-catch-all.cpp", "void f() { try { g(); } catch (...) { h(); } }\n",
       "broad-catch"},
      // Clean fixtures: constructs that look like violations but are not.
      {"clean-deleted-fn.hpp", "#pragma once\nstruct S { S(const S&) = delete; };\n", nullptr},
      {"clean-comment.cpp", "// new delete mt19937 using namespace cholqr( 1.0f\nint a;\n",
       nullptr},
      {"clean-string.cpp", "const char* s = \"new 1.5f mt19937 delete\";\n", nullptr},
      {"clean-checked-factor.cpp", "void f() { if (!cholqr<double>(v, r)) g(); bool ok = "
                                   "cholesky_upper(a); (void)ok; }\n",
       nullptr},
      {"clean-allow.cpp",
       "void f() { cholqr<double>(v, r); }  // bkr-lint: allow(unchecked-factor)\n", nullptr},
      {"clean-guard-comment.hpp", "// leading comment\n// more comment\n#pragma once\nint f();\n",
       nullptr},
      {"clean-ifndef.hpp", "#ifndef X_H_\n#define X_H_\n#endif\n", nullptr},
      {"clean-double.cpp", "double x = 1.5; double y = 1e-14; auto z = 0.0;\n", nullptr},
      {"clean-raw-string.cpp", "const char* s = R\"(new delete 1.0f)\";\n", nullptr},
      {"src/parallel/clean-pool-home.cpp", "std::thread worker([] {});\n", nullptr},
      {"clean-thread-scope.cpp", "const auto hw = std::thread::hardware_concurrency();\n",
       nullptr},
      {"clean-thread-comment.cpp", "// std::thread is banned here\nint a;\n", nullptr},
      {"clean-thread-allow.cpp",
       "std::thread t([] {});  // bkr-lint: allow(unpooled-thread)\n", nullptr},
      {"src/core/clean-typed-catch.cpp",
       "void f() { try { g(); } catch (const EigFailure& e) { h(); } }\n", nullptr},
      {"src/capi/clean-catch-outside-core.cpp",
       "void f() { try { g(); } catch (...) { h(); } }\n", nullptr},
      {"src/core/clean-catch-comment.cpp", "// catch (...) is banned in core\nint a;\n", nullptr},
      // .h files are headers too (regression for the short-path skip).
      {"a.h", "int f();\n", "missing-include-guard"},
      {"clean-short.h", "#pragma once\nint f();\n", nullptr},
      // File-scope suppression: the mixed-precision scope stores fp32 on
      // purpose; allow-file lifts float-literal for the whole file.
      {"clean-allow-file.cpp",
       "// bkr-lint: allow-file(float-literal) fp32 storage scope\n"
       "float x = 1.5f;\nfloat y = 2.5f;\n",
       nullptr},
  };
  int failures = 0;
  for (const Case& c : cases) {
    const FileReport report = scan_content(c.name, c.content);
    if (c.expect_rule == nullptr) {
      if (!report.findings.empty()) {
        std::printf("SELF-TEST FAIL %s: expected clean, got %s at line %ld\n", c.name,
                    report.findings[0].rule.c_str(), report.findings[0].line);
        ++failures;
      }
    } else {
      const bool hit = std::any_of(report.findings.begin(), report.findings.end(),
                                   [&](const Finding& f) { return f.rule == c.expect_rule; });
      if (!hit) {
        std::printf("SELF-TEST FAIL %s: rule %s not detected\n", c.name, c.expect_rule);
        ++failures;
      }
    }
  }
  // Project-model fixtures: each is a miniature multi-file src/ tree with
  // one planted cross-TU violation (or a near-miss that must stay clean).
  struct AnalyzeCase {
    const char* name;
    std::vector<std::pair<std::string, std::string>> files;
    const char* expect_rule;  // nullptr = expect clean
    double floor_value;
    bool hotpath = false;  // run the bkr-hotpath stage instead of bkr-analyze
  };
  const char* kGuardedHeader =
      "#pragma once\nclass S {\n public:\n  void bump();\n private:\n  std::mutex mu_;\n"
      "  long count_ BKR_GUARDED_BY(mu_);\n};\n";
  const char* kConfinedHeader =
      "#pragma once\nclass THolder {\n public:\n  void tick();\n private:\n"
      "  long hits_ BKR_THREAD_CONFINED;\n};\n";
  const char* kCovHeader =
      "#pragma once\nclass Cov {\n public:\n  void apply(MatrixView<const double> r);\n};\n";
  const std::vector<AnalyzeCase> pcases = {
      {"layer-upward",
       {{"src/la/up.hpp", "#pragma once\n#include \"core/solver.hpp\"\nint f();\n"}},
       "layer-upward-include", 0.0},
      {"layer-downward-clean",
       {{"src/core/down.hpp", "#pragma once\n#include \"la/blas.hpp\"\nint f();\n"}},
       nullptr, 0.0},
      {"layer-same-rank-clean",
       {{"src/parallel/x.hpp", "#pragma once\n#include \"obs/trace.hpp\"\nint f();\n"}},
       nullptr, 0.0},
      {"include-cycle",
       {{"src/la/a.hpp", "#pragma once\n#include \"la/b.hpp\"\n"},
        {"src/la/b.hpp", "#pragma once\n#include \"la/a.hpp\"\n"}},
       "include-cycle", 0.0},
      {"unguarded-member",
       {{"src/core/s.hpp", kGuardedHeader},
        {"src/core/s.cpp", "#include \"core/s.hpp\"\nvoid S::bump() { ++count_; }\n"}},
       "unguarded-member-access", 0.0},
      {"guarded-clean",
       {{"src/core/s.hpp", kGuardedHeader},
        {"src/core/s.cpp",
         "#include \"core/s.hpp\"\nvoid S::bump() {\n"
         "  std::lock_guard<std::mutex> lock(mu_);\n  ++count_;\n}\n"}},
       nullptr, 0.0},
      {"requires-lock-seed-clean",
       {{"src/core/s.hpp",
         "#pragma once\nclass S {\n public:\n  void bump() BKR_REQUIRES_LOCK(mu_);\n"
         " private:\n  std::mutex mu_;\n  long count_ BKR_GUARDED_BY(mu_);\n};\n"},
        {"src/core/s.cpp", "#include \"core/s.hpp\"\nvoid S::bump() { ++count_; }\n"}},
       nullptr, 0.0},
      {"requires-lock-not-held",
       {{"src/core/s.hpp",
         "#pragma once\nclass S {\n public:\n  void bump() BKR_REQUIRES_LOCK(mu_);\n"
         "  void outer();\n private:\n  std::mutex mu_;\n};\n"},
        {"src/core/s.cpp", "#include \"core/s.hpp\"\nvoid S::outer() { bump(); }\n"}},
       "requires-lock-not-held", 0.0},
      {"unlock-then-access",
       {{"src/core/s.hpp", kGuardedHeader},
        {"src/core/s.cpp",
         "#include \"core/s.hpp\"\nvoid S::bump() {\n"
         "  std::unique_lock<std::mutex> lk(mu_);\n  ++count_;\n  lk.unlock();\n  ++count_;\n}\n"}},
       "unguarded-member-access", 0.0},
      {"lock-order-inversion",
       {{"src/core/p.hpp",
         "#pragma once\nclass P {\n public:\n  void work();\n private:\n"
         "  std::mutex a_ BKR_ACQUIRED_BEFORE(b_);\n  std::mutex b_;\n};\n"},
        {"src/core/p.cpp",
         "#include \"core/p.hpp\"\nvoid P::work() {\n  std::lock_guard<std::mutex> l1(b_);\n"
         "  std::lock_guard<std::mutex> l2(a_);\n}\n"}},
       "lock-order-inversion", 0.0},
      {"lock-order-clean",
       {{"src/core/p.hpp",
         "#pragma once\nclass P {\n public:\n  void work();\n private:\n"
         "  std::mutex a_ BKR_ACQUIRED_BEFORE(b_);\n  std::mutex b_;\n};\n"},
        {"src/core/p.cpp",
         "#include \"core/p.hpp\"\nvoid P::work() {\n  std::lock_guard<std::mutex> l1(a_);\n"
         "  std::lock_guard<std::mutex> l2(b_);\n}\n"}},
       nullptr, 0.0},
      {"lock-free-not-atomic",
       {{"src/core/q.hpp", "#pragma once\nclass Q {\n  long n_ BKR_LOCK_FREE;\n};\n"}},
       "lock-free-not-atomic", 0.0},
      {"lock-free-atomic-clean",
       {{"src/core/q.hpp",
         "#pragma once\nclass Q {\n  std::atomic<long> n_ BKR_LOCK_FREE{0};\n};\n"}},
       nullptr, 0.0},
      {"lane-dependent-body",
       {{"src/parallel/k.cpp",
         "void f(KernelExecutor* ex) {\n  ex->run(Kernel::Spmv, 8, [&](index_t t) {\n"
         "    index_t w = ex->lanes() * 2;\n    use(w, t);\n  });\n}\n"}},
       "lane-dependent-body", 0.0},
      {"lane-clean",
       {{"src/parallel/k.cpp",
         "void f(KernelExecutor* ex) {\n  ex->run(Kernel::Spmv, 8, [&](index_t t) {\n"
         "    use(t);\n  });\n}\n"}},
       nullptr, 0.0},
      {"nonshared-reduce-chunk",
       {{"src/parallel/r.cpp",
         "void g(KernelExecutor* ex) {\n  ex->run(Kernel::Dot, 4, [&](index_t c) {\n"
         "    index_t chunk = 1024;\n    use(chunk, c);\n  });\n}\n"}},
       "nonshared-reduce-chunk", 0.0},
      {"reduce-chunk-clean",
       {{"src/parallel/r.cpp",
         "void g(KernelExecutor* ex) {\n  ex->run(Kernel::Dot, 4, [&](index_t c) {\n"
         "    const index_t begin = c * kReduceChunk;\n    use(begin);\n  });\n}\n"}},
       nullptr, 0.0},
      {"float-atomic",
       {{"src/parallel/fa.cpp", "std::atomic<double> sum{0};\n"}},
       "float-atomic-accumulation", 0.0},
      {"float-atomic-outside-scope-clean",
       {{"src/core/fa.cpp", "std::atomic<double> sum{0};\n"}},
       nullptr, 0.0},
      {"confined-member-in-parallel",
       {{"src/core/t.hpp", kConfinedHeader},
        {"src/core/t.cpp",
         "#include \"core/t.hpp\"\nvoid THolder::tick() {\n"
         "  pool.parallel_for(4, [&](index_t i) {\n    ++hits_;\n    use(i);\n  });\n}\n"}},
       "confined-member-in-parallel", 0.0},
      {"confined-serial-clean",
       {{"src/core/t.hpp", kConfinedHeader},
        {"src/core/t.cpp",
         "#include \"core/t.hpp\"\nvoid THolder::tick() { ++hits_; }\n"}},
       nullptr, 0.0},
      {"contract-coverage-below-floor",
       {{"src/la/cov.hpp", kCovHeader}},
       "contract-coverage", 0.9},
      {"contract-coverage-met",
       {{"src/la/cov.hpp", kCovHeader},
        {"src/la/cov.cpp",
         "#include \"la/cov.hpp\"\nvoid Cov::apply(MatrixView<const double> r) {\n"
         "  BKR_REQUIRE(r.rows() >= 0, \"rows\");\n}\n"}},
       nullptr, 0.9},
      {"contract-coverage-delegation",
       {{"src/la/cov.hpp",
         "#pragma once\nclass Cov {\n public:\n  void apply(MatrixView<const double> r);\n"
         "  void apply_impl(MatrixView<const double> r);\n};\n"},
        {"src/la/cov.cpp",
         "#include \"la/cov.hpp\"\nvoid Cov::apply(MatrixView<const double> r) { apply_impl(r); }\n"
         "void Cov::apply_impl(MatrixView<const double> r) {\n"
         "  BKR_REQUIRE(r.rows() >= 0, \"rows\");\n}\n"}},
       nullptr, 0.9},
      // The session/recycle-cache service layer lives in src/core and fans
      // out over sparse (CSR fingerprinting), la (dense payloads) and obs
      // (cache trace events) — all strictly downward includes, so the model
      // must accept the shape the real session.hpp / recycle_cache.hpp use.
      {"session-core-layer-clean",
       {{"src/core/sess.hpp",
         "#pragma once\n#include \"la/dense.hpp\"\n#include \"obs/trace.hpp\"\n"
         "#include \"sparse/csr.hpp\"\nclass Sess {\n public:\n  int solve();\n};\n"},
        {"src/core/sess.cpp", "#include \"core/sess.hpp\"\nint Sess::solve() { return 0; }\n"}},
       nullptr, 0.0},
      // ...and the reverse direction stays illegal: the data-plane layers
      // must never reach up into the session service.
      {"session-upward-from-sparse",
       {{"src/sparse/bad.hpp", "#pragma once\n#include \"core/recycle_cache.hpp\"\nint f();\n"}},
       "layer-upward-include", 0.0},
      {"session-upward-from-obs",
       {{"src/obs/bad.hpp", "#pragma once\n#include \"core/session.hpp\"\nint f();\n"}},
       "layer-upward-include", 0.0},
      // The cache's lock discipline as the scope walker sees it: the map is
      // guarded, every touch goes through a lock_guard, and the private
      // helpers carry BKR_REQUIRES_LOCK instead of re-locking.
      {"session-cache-lock-clean",
       {{"src/core/rc.hpp",
         "#pragma once\nclass Rc {\n public:\n  bool fetch(int k);\n private:\n"
         "  void emit(int k) BKR_REQUIRES_LOCK(mu_);\n  mutable std::mutex mu_;\n"
         "  long hits_ BKR_GUARDED_BY(mu_);\n};\n"},
        {"src/core/rc.cpp",
         "#include \"core/rc.hpp\"\nbool Rc::fetch(int k) {\n"
         "  std::lock_guard<std::mutex> lock(mu_);\n  ++hits_;\n  emit(k);\n  return true;\n}\n"
         "void Rc::emit(int k) { use(k, hits_); }\n"}},
       nullptr, 0.0},
      {"session-cache-unlocked-counter",
       {{"src/core/rc.hpp",
         "#pragma once\nclass Rc {\n public:\n  bool fetch(int k);\n private:\n"
         "  mutable std::mutex mu_;\n  long hits_ BKR_GUARDED_BY(mu_);\n};\n"},
        {"src/core/rc.cpp",
         "#include \"core/rc.hpp\"\nbool Rc::fetch(int k) { ++hits_; return k != 0; }\n"}},
       "unguarded-member-access", 0.0},
      // bkr-hotpath fixtures: hot-region seeding, propagation, and one
      // positive plus one allowed-negative per rule.
      {"hotpath-new",
       {{"src/la/h.cpp", "BKR_HOT void f(double* p) { auto* q = new double[8]; use(p, q); }\n"}},
       "hot-path-alloc", 0.0, true},
      {"hotpath-transitive-alloc",
       {{"src/la/h.cpp",
         "void helper(std::vector<double>& v) { v.push_back(1.0); }\n"
         "BKR_HOT void f(std::vector<double>& v) { helper(v); }\n"}},
       "hot-path-alloc", 0.0, true},
      {"hotpath-reserve-clean",
       {{"src/la/h.cpp",
         "BKR_HOT void f(std::vector<double>& v, int n) {\n  v.reserve(size_t(n));\n"
         "  for (int i = 0; i < n; ++i) v.push_back(double(i));\n}\n"}},
       nullptr, 0.0, true},
      {"hotpath-subscript-reserve-clean",
       {{"src/la/h.cpp",
         "BKR_HOT void f(State& st, int c, int n) {\n  st.history[size_t(c)].reserve(size_t(n));\n"
         "  for (int i = 0; i < n; ++i) st.history[size_t(c)].push_back(double(i));\n}\n"}},
       nullptr, 0.0, true},
      {"hotpath-cold-callee-stops",
       {{"src/la/h.cpp",
         "BKR_COLD void setup(std::vector<double>& v) { v.push_back(0.0); }\n"
         "BKR_HOT void f(std::vector<double>& v) { setup(v); }\n"}},
       nullptr, 0.0, true},
      {"hotpath-lock-in-loop",
       {{"src/core/h.cpp",
         "void f(std::mutex& m, int n) {\n  BKR_HOT_LOOP while (n-- > 0) {\n"
         "    std::lock_guard<std::mutex> lk(m);\n  }\n}\n"}},
       "hot-path-lock", 0.0, true},
      {"hotpath-cold-block-clean",
       {{"src/core/h.cpp",
         "BKR_HOT void f(std::mutex& m) {\n  BKR_COLD {\n"
         "    std::lock_guard<std::mutex> lk(m);\n  }\n}\n"}},
       nullptr, 0.0, true},
      {"hotpath-dispatch-lambda-io",
       {{"src/parallel/h.cpp",
         "void f(KernelExecutor* ex) {\n  ex->run(Kernel::Spmv, 8, [&](index_t t) {\n"
         "    std::printf(\"%ld\", long(t));\n  });\n}\n"}},
       "hot-path-io", 0.0, true},
      {"hotpath-cold-lambda-clean",
       {{"src/parallel/h.cpp",
         "void f(ThreadPool& pool) {\n  pool.parallel_for(8, [&](index_t t) BKR_COLD {\n"
         "    std::printf(\"%ld\", long(t));\n  });\n}\n"}},
       nullptr, 0.0, true},
      {"hotpath-throw",
       {{"src/core/h.cpp",
         "BKR_HOT void f(int n) { if (n < 0) throw std::runtime_error(\"n\"); use(n); }\n"}},
       "hot-path-throw", 0.0, true},
      {"hotpath-breakdown-throw-clean",
       {{"src/core/h.cpp",
         "BKR_HOT void f(int n) { if (n < 0) throw BreakdownError(\"gamma\"); use(n); }\n"}},
       nullptr, 0.0, true},
      {"hotpath-virtual-in-loop",
       {{"src/obs/h.hpp",
         "#pragma once\nclass Sink {\n public:\n  virtual void emit(int i) = 0;\n};\n"},
        {"src/obs/h.cpp",
         "#include \"obs/h.hpp\"\nvoid f(Sink* s, int n) {\n"
         "  BKR_HOT_LOOP for (int i = 0; i < n; ++i) {\n    s->emit(i);\n  }\n}\n"}},
       "hot-path-virtual", 0.0, true},
      {"hotpath-virtual-cold-class-clean",
       {{"src/obs/h.hpp",
         "#pragma once\nclass BKR_COLD Sink {\n public:\n  virtual void emit(int i) = 0;\n};\n"},
        {"src/obs/h.cpp",
         "#include \"obs/h.hpp\"\nvoid f(Sink* s, int n) {\n"
         "  BKR_HOT_LOOP for (int i = 0; i < n; ++i) {\n    s->emit(i);\n  }\n}\n"}},
       nullptr, 0.0, true},
      {"hotpath-loop-decl",
       {{"src/core/h.cpp",
         "void f(int n) {\n  BKR_HOT_LOOP for (int i = 0; i < n; ++i) {\n"
         "    std::vector<double> tmp(size_t(n));\n    use(tmp, i);\n  }\n}\n"}},
       "hot-path-alloc", 0.0, true},
      {"hotpath-workspace-ref-clean",
       {{"src/core/h.cpp",
         "void f(SolverWorkspace<double>& ws, int n) {\n"
         "  BKR_HOT_LOOP for (int i = 0; i < n; ++i) {\n"
         "    std::vector<double>& t = ws.vec(0, size_t(n));\n    use(t, i);\n  }\n}\n"}},
       nullptr, 0.0, true},
      {"hotpath-inline-allow-clean",
       {{"src/la/h.cpp",
         "BKR_HOT void f(double* p) {\n"
         "  auto* q = new double[8];  // bkr-lint: allow(hot-path-alloc)\n  use(p, q);\n}\n"}},
       nullptr, 0.0, true},
      // The cancellation poll (DESIGN.md §15) is the sanctioned abort check
      // in hot loops: a relaxed atomic load, one steady_clock compare and a
      // BreakdownError escalation, packaged as detail::poll_cancel. The
      // whole idiom must lint clean inside a BKR_HOT_LOOP...
      {"hotpath-cancel-poll-call-clean",
       {{"src/core/h.cpp",
         "BKR_HOT inline void poll_cancel(const SolverOptions& opts) {\n"
         "  if (opts.cancel != nullptr && opts.cancel->load(std::memory_order_relaxed))\n"
         "    throw BreakdownError(SolveStatus::Cancelled, \"cancelled\");\n"
         "  if (deadline_enabled(opts) && std::chrono::steady_clock::now() >= opts.deadline)\n"
         "    throw BreakdownError(SolveStatus::DeadlineExceeded, \"deadline\");\n"
         "}\n"
         "void f(const SolverOptions& opts, int n) {\n"
         "  BKR_HOT_LOOP while (n-- > 0) {\n    poll_cancel(opts);\n    use(n);\n  }\n}\n"}},
       nullptr, 0.0, true},
      // ...including the flag check written inline at the loop top.
      {"hotpath-cancel-flag-inline-clean",
       {{"src/core/h.cpp",
         "void f(const SolverOptions& opts, int n) {\n"
         "  BKR_HOT_LOOP while (n-- > 0) {\n"
         "    if (opts.cancel != nullptr && opts.cancel->load(std::memory_order_relaxed))\n"
         "      throw BreakdownError(SolveStatus::Cancelled, \"cancelled\");\n"
         "    use(n);\n  }\n}\n"}},
       nullptr, 0.0, true},
      // The boundary of the allowance: ad-hoc clock math spelled out in the
      // loop body (instead of delegating to the poll helper) is flagged...
      {"hotpath-raw-clock-in-loop",
       {{"src/core/h.cpp",
         "void f(Deadline d, int n) {\n  BKR_HOT_LOOP while (n-- > 0) {\n"
         "    if (std::chrono::steady_clock::now() >= d.when) break;\n    use(n);\n  }\n}\n"}},
       "hot-path-clock", 0.0, true},
      // ...and so is a mutex-guarded cancellation flag: only the lock-free
      // poll is sanctioned in hot code.
      {"hotpath-locked-cancel-flag-in-loop",
       {{"src/core/h.cpp",
         "void f(std::mutex& m, bool* flag, int n) {\n  BKR_HOT_LOOP while (n-- > 0) {\n"
         "    std::lock_guard<std::mutex> lk(m);\n    if (*flag) break;\n  }\n}\n"}},
       "hot-path-lock", 0.0, true},
  };
  for (const AnalyzeCase& c : pcases) {
    std::vector<SourceFile> fv;
    fv.reserve(c.files.size());
    for (const auto& [p, content] : c.files) fv.push_back(make_source(p, content));
    const std::vector<Finding> fnd = c.hotpath ? hotpath_files(std::move(fv))
                                               : analyze_files(std::move(fv), c.floor_value);
    if (c.expect_rule == nullptr) {
      if (!fnd.empty()) {
        std::printf("SELF-TEST FAIL %s: expected clean, got %s at %s:%ld\n", c.name,
                    fnd[0].rule.c_str(), fnd[0].path.c_str(), fnd[0].line);
        ++failures;
      }
    } else {
      const bool hit = std::any_of(fnd.begin(), fnd.end(),
                                   [&](const Finding& f) { return f.rule == c.expect_rule; });
      if (!hit) {
        std::printf("SELF-TEST FAIL %s: rule %s not detected\n", c.name, c.expect_rule);
        ++failures;
      }
    }
  }
  // bkr-fpflow fixtures: each is a miniature src/ (+ optional tests/) tree
  // with one planted precision-flow violation or a near-miss that must stay
  // clean.
  struct FpflowCase {
    const char* name;
    std::vector<std::pair<std::string, std::string>> files;   // src/ tree
    std::vector<std::pair<std::string, std::string>> tests;   // tests/ tree
    const char* expect_rule;  // nullptr = expect clean
  };
  const std::vector<FpflowCase> fcases = {
      {"narrowing-init",
       {{"src/la/f.cpp", "void f(double d) { float x = d; use(x); }\n"}},
       {},
       "implicit-narrowing"},
      {"narrowing-assign",
       {{"src/la/f.cpp", "void f(double d) { float x = 0; x = d; use(x); }\n"}},
       {},
       "implicit-narrowing"},
      {"narrowing-literal",
       {{"src/la/f.cpp", "void f() { float x = 0.1; use(x); }\n"}},
       {},
       "implicit-narrowing"},
      {"narrowing-static-cast",
       {{"src/la/f.cpp", "void f(double d) { g(static_cast<float>(d)); }\n"}},
       {},
       "implicit-narrowing"},
      {"narrowing-functional-cast",
       {{"src/la/f.cpp", "void f(double d) { g(float(d)); }\n"}},
       {},
       "implicit-narrowing"},
      {"narrowing-complex",
       {{"src/la/f.cpp",
         "void f(std::complex<double> z) { std::complex<float> w = z; use(w); }\n"}},
       {},
       "implicit-narrowing"},
      {"narrowing-return",
       {{"src/la/f.cpp", "float f(double d) { return d; }\n"}},
       {},
       "implicit-narrowing"},
      {"narrowing-allowed-line-clean",
       {{"src/la/f.cpp",
         "void f(double d) { BKR_ALLOW_NARROWING const float x = float(d); use(x); }\n"}},
       {},
       nullptr},
      {"narrowing-allowed-head-clean",
       {{"src/la/f.cpp",
         "BKR_ALLOW_NARROWING void f(double d) { float x = float(d); use(x); }\n"}},
       {},
       nullptr},
      {"widening-clean",
       {{"src/la/f.cpp", "void f(float x) { double d = x; use(d); }\n"}},
       {},
       nullptr},
      {"accumulation-in-loop",
       {{"src/la/f.cpp",
         "void f(const float* v, int n) {\n  float s = 0;\n"
         "  for (int i = 0; i < n; ++i) {\n    s += v[i];\n  }\n  use(s);\n}\n"}},
       {},
       "low-precision-accumulation"},
      {"accumulation-double-clean",
       {{"src/la/f.cpp",
         "void f(const float* v, int n) {\n  double s = 0;\n"
         "  for (int i = 0; i < n; ++i) {\n    s += v[i];\n  }\n  use(s);\n}\n"}},
       {},
       nullptr},
      {"accumulation-outside-loop-clean",
       {{"src/la/f.cpp",
         "void f(float a, float b) { float s = 0; s += a; s += b; use(s); }\n"}},
       {},
       nullptr},
      {"unguarded-div-norm",
       {{"src/la/f.cpp",
         "void f(const V& x, const V& y) {\n  double xnorm = norm2(x);\n"
         "  double t = dot(x, y) / xnorm;\n  use(t);\n}\n"}},
       {},
       "unguarded-division"},
      {"guarded-div-if-clean",
       {{"src/la/f.cpp",
         "double f(const V& x) {\n  double nrm = norm2(x);\n"
         "  if (nrm == 0.0) return 0.0;\n  return 1.0 / nrm;\n}\n"}},
       {},
       nullptr},
      {"unguarded-div-pivot",
       {{"src/la/f.cpp",
         "void f(double pivot) { double inv = 1.0 / pivot; use(inv); }\n"}},
       {},
       "unguarded-division"},
      {"guarded-div-annotated-clean",
       {{"src/la/f.cpp",
         "void f(double pivot) { BKR_GUARDED_DIV double inv = 1.0 / pivot; use(inv); }\n"}},
       {},
       nullptr},
      {"clamped-producer-clean",
       {{"src/la/f.cpp",
         "void f(const V& x) {\n  double un = std::max(norm2(x), 1e-300);\n"
         "  double s = 1.0 / un;\n  use(s);\n}\n"}},
       {},
       nullptr},
      {"mixed-literal",
       {{"src/la/f.cpp", "void f() { double x = 0.5f * 0.5; use(x); }\n"}},
       {},
       "mixed-literal"},
      {"mixed-literal-clean",
       {{"src/la/f.cpp", "void f() { double x = 0.5 * 2.0; use(x); }\n"}},
       {},
       nullptr},
      {"oracle-mismatch",
       {{"src/la/nf.hpp",
         "#pragma once\nclass Narrower {\n public:\n  BKR_ALLOW_NARROWING void apply();\n};\n"},
        {"src/core/use.cpp",
         "#include \"la/nf.hpp\"\nvoid g(Narrower& n) { n.apply(); }\n"}},
       {},
       "oracle-mismatch"},
      {"oracle-covered-clean",
       {{"src/la/nf.hpp",
         "#pragma once\nclass Narrower {\n public:\n  BKR_ALLOW_NARROWING void apply();\n};\n"},
        {"src/core/use.cpp",
         "#include \"la/nf.hpp\"\nvoid g(Narrower& n) { n.apply(); }\n"}},
       {{"tests/test_nf.cpp",
         "BKR_TOLERANCE_ORACLE(Narrower);\nTEST(NarrowerTolerance, Converges) {}\n"}},
       nullptr},
      {"oracle-unreachable-clean",
       {{"src/la/nf.hpp",
         "#pragma once\nclass Narrower {\n public:\n  BKR_ALLOW_NARROWING void apply();\n};\n"}},
       {},
       nullptr},
  };
  for (const FpflowCase& c : fcases) {
    std::vector<SourceFile> fv;
    fv.reserve(c.files.size());
    for (const auto& [p, content] : c.files) fv.push_back(make_source(p, content));
    std::vector<SourceFile> tv;
    tv.reserve(c.tests.size());
    for (const auto& [p, content] : c.tests) tv.push_back(make_source(p, content));
    const std::vector<Finding> fnd = fpflow_files(std::move(fv), std::move(tv));
    if (c.expect_rule == nullptr) {
      if (!fnd.empty()) {
        std::printf("SELF-TEST FAIL fpflow/%s: expected clean, got %s at %s:%ld\n", c.name,
                    fnd[0].rule.c_str(), fnd[0].path.c_str(), fnd[0].line);
        ++failures;
      }
    } else {
      const bool hit = std::any_of(fnd.begin(), fnd.end(),
                                   [&](const Finding& f) { return f.rule == c.expect_rule; });
      if (!hit) {
        std::printf("SELF-TEST FAIL fpflow/%s: rule %s not detected\n", c.name, c.expect_rule);
        ++failures;
      }
    }
  }
  if (failures == 0) {
    std::printf("bkr-lint self-test: %zu fixtures OK\n",
                std::size(cases) + pcases.size() + fcases.size());
    return 0;
  }
  return 1;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// SARIF 2.1.0 export (one run, one driver) so findings can render as CI
// annotations. Only unsuppressed findings are emitted — baselined debt is
// deliberate and must not resurface as annotations.
void write_sarif(const std::string& path, const char* tool,
                 const std::vector<Finding>& findings) {
  std::set<std::string> rules;
  for (const Finding& f : findings) rules.insert(f.rule);
  std::ofstream out(path);
  out << "{\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"runs\": [\n    {\n"
      << "      \"tool\": {\n        \"driver\": {\n"
      << "          \"name\": \"" << json_escape(tool) << "\",\n"
      << "          \"informationUri\": \"https://example.invalid/bkr/DESIGN.md\",\n"
      << "          \"rules\": [";
  bool first = true;
  for (const std::string& r : rules) {
    out << (first ? "" : ",") << "\n            {\"id\": \"" << json_escape(r) << "\"}";
    first = false;
  }
  out << (rules.empty() ? "" : "\n          ") << "]\n        }\n      },\n"
      << "      \"results\": [";
  first = true;
  for (const Finding& f : findings) {
    out << (first ? "" : ",") << "\n        {\n"
        << "          \"ruleId\": \"" << json_escape(f.rule) << "\",\n"
        << "          \"level\": \"error\",\n"
        << "          \"message\": {\"text\": \"" << json_escape(f.content) << "\"},\n"
        << "          \"locations\": [{\"physicalLocation\": {\"artifactLocation\": "
        << "{\"uri\": \"" << json_escape(f.path) << "\"}, \"region\": {\"startLine\": "
        << (f.line >= 1 ? f.line : 1) << "}}}]\n        }";
    first = false;
  }
  out << (findings.empty() ? "" : "\n      ") << "]\n    }\n  ]\n}\n";
}

// --baseline-check: the baseline is debt, and debt lists rot. Fail on
// duplicate entries (copy-paste) and on stale entries that no longer match
// any finding (the debt was paid but the entry kept suppressing).
int baseline_check(const char* stage, const std::string& baseline_path,
                   const std::vector<Finding>& findings) {
  std::vector<std::string> entries;
  std::ifstream in(baseline_path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    entries.push_back(line);
  }
  std::set<std::string> live;
  for (const Finding& f : findings) live.insert(baseline_key(f));
  std::set<std::string> seen;
  int bad = 0;
  for (const std::string& e : entries) {
    if (!seen.insert(e).second) {
      std::printf("%s: duplicate baseline entry: %s\n", stage, normalize(e).c_str());
      ++bad;
    } else if (live.count(e) == 0) {
      std::printf("%s: stale baseline entry (no longer fires): %s\n", stage,
                  normalize(e).c_str());
      ++bad;
    }
  }
  if (bad == 0) {
    std::printf("%s: baseline %s clean (%zu entries, all live, no duplicates)\n", stage,
                baseline_path.c_str(), entries.size());
    return 0;
  }
  std::printf("%s: %d baseline hygiene issue(s) in %s\n", stage, bad, baseline_path.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string sarif_path;
  std::string root = ".";
  bool run_self_test = false;
  bool update_baseline = false;
  bool check_baseline = false;
  bool analyze_only = false;
  bool hotpath_only = false;
  bool fpflow_only = false;
  bool coverage_report = false;
  bool json = false;
  double coverage_floor = kDefaultCoverageFloor;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") {
      run_self_test = true;
    } else if (arg == "--analyze") {
      analyze_only = true;
    } else if (arg == "--hotpath") {
      hotpath_only = true;
    } else if (arg == "--fpflow") {
      fpflow_only = true;
    } else if (arg == "--coverage-report") {
      coverage_report = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--coverage-floor" && i + 1 < argc) {
      coverage_floor = std::strtod(argv[++i], nullptr);
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--update-baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
      update_baseline = true;
    } else if (arg == "--baseline-check" && i + 1 < argc) {
      baseline_path = argv[++i];
      check_baseline = true;
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--help") {
      std::printf("usage: bkr_lint [--self-test] [--analyze] [--hotpath] [--fpflow] "
                  "[--coverage-report] [--json] [--sarif FILE] [--coverage-floor F] "
                  "[--baseline FILE | --update-baseline FILE | --baseline-check FILE] "
                  "[ROOT]\n"
                  "  default: per-file rules over src/ bench/ tests/ plus the cross-TU\n"
                  "  project model, hot-path call-graph and precision-flow analysis\n"
                  "  over src/; --analyze / --hotpath / --fpflow restrict to those\n"
                  "  stages (combinable). --baseline-check fails on duplicate or\n"
                  "  stale baseline entries; --sarif also writes SARIF 2.1.0.\n");
      return 0;
    } else {
      root = arg;
    }
  }
  if (run_self_test) return self_test();
  if (coverage_report) return coverage_report_tree(root, coverage_floor);

  std::vector<Finding> findings;
  const bool all_stages = !analyze_only && !hotpath_only && !fpflow_only;
  if (all_stages) {
    const std::vector<std::string> subdirs = {"src", "bench", "tests"};
    findings = scan_tree(root, subdirs);
  }
  if (all_stages || analyze_only) {
    const std::vector<Finding> project = analyze_tree(root, coverage_floor);
    findings.insert(findings.end(), project.begin(), project.end());
  }
  if (all_stages || hotpath_only) {
    const std::vector<Finding> hot = hotpath_tree(root);
    findings.insert(findings.end(), hot.begin(), hot.end());
  }
  if (all_stages || fpflow_only) {
    const std::vector<Finding> fp = fpflow_tree(root);
    findings.insert(findings.end(), fp.begin(), fp.end());
  }
  const char* stage = all_stages      ? "bkr-lint"
                      : analyze_only  ? "bkr-analyze"
                      : hotpath_only  ? "bkr-hotpath"
                                      : "bkr-fpflow";

  if (check_baseline) return baseline_check(stage, baseline_path, findings);

  if (update_baseline) {
    std::ofstream out(baseline_path);
    out << "# bkr-lint baseline: rule<TAB>path<TAB>normalized line content.\n"
        << "# Every entry needs a justification comment above it.\n";
    for (const Finding& f : findings) out << baseline_key(f) << "\n";
    std::printf("%s: wrote %zu baseline entries to %s\n", stage, findings.size(),
                baseline_path.c_str());
    return 0;
  }

  std::set<std::string> baseline;
  if (!baseline_path.empty()) baseline = load_baseline(baseline_path);
  std::vector<Finding> visible;
  for (const Finding& f : findings)
    if (baseline.count(baseline_key(f)) == 0) visible.push_back(f);
  if (!sarif_path.empty()) write_sarif(sarif_path, stage, visible);
  for (const Finding& f : visible) {
    if (json)
      std::printf("{\"rule\":\"%s\",\"file\":\"%s\",\"line\":%ld,\"content\":\"%s\"}\n",
                  json_escape(f.rule).c_str(), json_escape(f.path).c_str(), f.line,
                  json_escape(f.content).c_str());
    else
      std::printf("%s:%ld: [%s] %s\n", f.path.c_str(), f.line, f.rule.c_str(),
                  f.content.c_str());
  }
  // In --json mode the summary goes to stderr so stdout stays pure JSONL.
  std::FILE* sum = json ? stderr : stdout;
  if (visible.empty()) {
    std::fprintf(sum, "%s: clean (%zu finding(s) baselined)\n", stage, findings.size());
    return 0;
  }
  std::fprintf(sum, "%s: %zu unsuppressed finding(s)\n", stage, visible.size());
  return 1;
}
