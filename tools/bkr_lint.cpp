// bkr-lint: the project's own static analysis pass.
//
// Scans the C++ sources for patterns this codebase bans by convention:
//
//   raw-new-delete     raw `new` / `delete` expressions (ownership must go
//                      through std::unique_ptr / containers; the C API
//                      boundary is baselined)
//   using-namespace-header
//                      `using namespace` at header scope leaks names into
//                      every includer
//   unchecked-factor   the boolean/status result of a factorization kernel
//                      (cholqr, cholesky_upper, pivoted_cholesky, qr_block)
//                      discarded at statement level — breakdown would pass
//                      silently
//   non-central-rng    direct <random> engine/distribution use outside
//                      src/common/rng.hpp (all randomness must be seeded
//                      through the central helpers for reproducibility)
//   missing-include-guard
//                      header without `#pragma once` or a classic #ifndef
//                      guard ahead of the first declaration
//   float-literal      `float` type or f-suffixed literal in a library that
//                      computes exclusively in double/complex<double> —
//                      a stray float silently truncates
//   unpooled-thread    raw `std::thread` construction/ownership outside
//                      src/parallel/ — all concurrency must go through
//                      bkr::ThreadPool so kernels inherit its nesting and
//                      error protocol (`std::thread::` scope accesses such
//                      as hardware_concurrency() stay legal)
//
// The scanner is a small lexer, not a regex pass: comments, string
// literals (including raw strings) and character literals are blanked
// before matching, so prose and printf formats never trip a rule.
//
// Suppression:
//   * inline:   a `// bkr-lint: allow(rule)` comment on the offending line
//   * baseline: `--baseline FILE` with tab-separated lines
//               `rule<TAB>relative/path<TAB>normalized line content`
//               (line-number independent, survives unrelated edits)
//
// Exit code 0 when no unsuppressed finding remains, 1 otherwise.
// `--self-test` runs the scanner against embedded fixtures with one
// planted violation per rule and must find exactly those.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string rule;
  std::string path;  // relative to the scan root
  long line = 0;
  std::string content;  // normalized offending line
};

// Collapse runs of whitespace and trim, so baseline entries survive
// reformatting of the surrounding file.
std::string normalize(const std::string& line) {
  std::string out;
  bool in_space = true;
  for (const char c : line) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (!in_space && !out.empty()) out.push_back(' ');
      in_space = true;
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

// Replace the contents of comments, string literals (ordinary and raw)
// and character literals with spaces, preserving newlines so line numbers
// keep meaning. Returns the blanked text.
std::string blank_non_code(const std::string& src) {
  std::string out = src;
  enum class State { Code, LineComment, BlockComment, String, Char, RawString };
  State state = State::Code;
  std::string raw_delim;  // the )delim" closer of the active raw string
  for (size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::Code:
        if (c == '/' && next == '/') {
          state = State::LineComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::BlockComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (std::isalnum(static_cast<unsigned char>(src[i - 1])) == 0 &&
                               src[i - 1] != '_'))) {
          size_t j = i + 2;
          while (j < src.size() && src[j] != '(') ++j;
          raw_delim = ")" + src.substr(i + 2, j - (i + 2)) + "\"";
          for (size_t k = i; k <= j && k < src.size(); ++k) out[k] = ' ';
          i = j;
          state = State::RawString;
        } else if (c == '"') {
          state = State::String;
        } else if (c == '\'') {
          // Digit separators (1'000'000) are not character literals.
          const bool sep = i > 0 && std::isalnum(static_cast<unsigned char>(src[i - 1])) != 0 &&
                           i + 1 < src.size() &&
                           std::isalnum(static_cast<unsigned char>(src[i + 1])) != 0;
          if (!sep) state = State::Char;
        }
        break;
      case State::LineComment:
        if (c == '\n')
          state = State::Code;
        else
          out[i] = ' ';
        break;
      case State::BlockComment:
        if (c == '*' && next == '/') {
          out[i] = out[i + 1] = ' ';
          ++i;
          state = State::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::String:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::Char:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::RawString:
        if (src.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t k = 0; k < raw_delim.size(); ++k) out[i + k] = ' ';
          i += raw_delim.size() - 1;
          state = State::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Find `word` as a whole token in `line`, starting at `from`.
size_t find_token(const std::string& line, const std::string& word, size_t from = 0) {
  for (size_t pos = line.find(word, from); pos != std::string::npos;
       pos = line.find(word, pos + 1)) {
    const bool left_ok = pos == 0 || !is_ident(line[pos - 1]);
    const size_t end = pos + word.size();
    const bool right_ok = end >= line.size() || !is_ident(line[end]);
    if (left_ok && right_ok) return pos;
  }
  return std::string::npos;
}

// The last non-whitespace character before (file-offset semantics across
// lines): used to decide whether a call result is discarded.
char prev_significant(const std::vector<std::string>& lines, size_t line_idx, size_t col) {
  for (size_t li = line_idx + 1; li-- > 0;) {
    const std::string& l = lines[li];
    size_t end = li == line_idx ? col : l.size();
    for (size_t ci = end; ci-- > 0;) {
      if (std::isspace(static_cast<unsigned char>(l[ci])) == 0) return l[ci];
    }
  }
  return '\0';
}

// f/F-suffixed floating literal: digits with a '.' or exponent then f.
bool has_float_literal(const std::string& line, size_t* where) {
  for (size_t i = 0; i < line.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(line[i])) == 0) continue;
    if (i > 0 && is_ident(line[i - 1])) continue;  // inside an identifier / hex
    size_t j = i;
    bool fractional = false;
    while (j < line.size() &&
           (std::isdigit(static_cast<unsigned char>(line[j])) != 0 || line[j] == '.')) {
      if (line[j] == '.') fractional = true;
      ++j;
    }
    if (j < line.size() && (line[j] == 'e' || line[j] == 'E')) {
      fractional = true;
      ++j;
      if (j < line.size() && (line[j] == '+' || line[j] == '-')) ++j;
      while (j < line.size() && std::isdigit(static_cast<unsigned char>(line[j])) != 0) ++j;
    }
    if (fractional && j < line.size() && (line[j] == 'f' || line[j] == 'F') &&
        (j + 1 >= line.size() || !is_ident(line[j + 1]))) {
      *where = i;
      return true;
    }
    i = j;
  }
  return false;
}

const char* const kFactorCalls[] = {"cholqr", "cholesky_upper", "pivoted_cholesky", "qr_block"};

const char* const kRngTokens[] = {"mt19937",
                                  "mt19937_64",
                                  "minstd_rand",
                                  "random_device",
                                  "uniform_int_distribution",
                                  "uniform_real_distribution",
                                  "normal_distribution",
                                  "bernoulli_distribution",
                                  "srand",
                                  "drand48"};

struct FileReport {
  std::vector<Finding> findings;
};

bool is_header(const std::string& path) {
  return path.size() > 4 && (path.rfind(".hpp") == path.size() - 4 ||
                             (path.size() > 2 && path.rfind(".h") == path.size() - 2));
}

// Per-line inline suppressions harvested from the *raw* text before
// blanking: `// bkr-lint: allow(rule1, rule2)`.
std::map<long, std::set<std::string>> harvest_allows(const std::vector<std::string>& raw_lines) {
  std::map<long, std::set<std::string>> allows;
  for (size_t li = 0; li < raw_lines.size(); ++li) {
    const std::string& l = raw_lines[li];
    const size_t marker = l.find("bkr-lint: allow(");
    if (marker == std::string::npos) continue;
    const size_t open = l.find('(', marker);
    const size_t close = l.find(')', open);
    if (open == std::string::npos || close == std::string::npos) continue;
    std::stringstream list(l.substr(open + 1, close - open - 1));
    std::string rule;
    while (std::getline(list, rule, ',')) {
      allows[long(li) + 1].insert(normalize(rule));
    }
  }
  return allows;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::stringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) lines.push_back(line);
  return lines;
}

FileReport scan_content(const std::string& rel_path, const std::string& content) {
  FileReport report;
  const std::vector<std::string> raw_lines = split_lines(content);
  const std::string blanked = blank_non_code(content);
  const std::vector<std::string> lines = split_lines(blanked);
  const auto allows = harvest_allows(raw_lines);

  auto add = [&](const std::string& rule, size_t line_idx) {
    const long line_no = long(line_idx) + 1;
    const auto it = allows.find(line_no);
    if (it != allows.end() && it->second.count(rule) != 0) return;
    const std::string& raw =
        line_idx < raw_lines.size() ? raw_lines[line_idx] : std::string();
    report.findings.push_back(Finding{rule, rel_path, line_no, normalize(raw)});
  };

  const bool header = is_header(rel_path);
  const bool rng_central = rel_path.size() >= 14 &&
                           rel_path.rfind("common/rng.hpp") == rel_path.size() - 14;
  const bool pool_home = rel_path.rfind("src/parallel/", 0) == 0;

  for (size_t li = 0; li < lines.size(); ++li) {
    const std::string& line = lines[li];

    // raw-new-delete
    if (find_token(line, "new") != std::string::npos) add("raw-new-delete", li);
    for (size_t pos = find_token(line, "delete"); pos != std::string::npos;
         pos = find_token(line, "delete", pos + 1)) {
      // `= delete` (deleted functions) and `operator delete` are fine.
      const char prev = prev_significant(lines, li, pos);
      if (prev != '=' && prev != 'r') {  // 'r' = trailing char of `operator`
        add("raw-new-delete", li);
        break;
      }
    }

    // using-namespace-header
    if (header && line.find("using namespace") != std::string::npos)
      add("using-namespace-header", li);

    // unchecked-factor: call token whose preceding significant character
    // ends a statement (result discarded).
    for (const char* fn : kFactorCalls) {
      const size_t pos = find_token(line, fn);
      if (pos == std::string::npos) continue;
      // Allow qualified discard-position names: walk back over `detail::`
      // style qualifiers to the true statement start.
      size_t stmt = pos;
      while (stmt >= 2 && lines[li][stmt - 1] == ':' && lines[li][stmt - 2] == ':') {
        stmt -= 2;
        while (stmt > 0 && is_ident(lines[li][stmt - 1])) --stmt;
      }
      const char prev = prev_significant(lines, li, stmt);
      if (prev == ';' || prev == '{' || prev == '}' || prev == '\0') add("unchecked-factor", li);
    }

    // non-central-rng
    if (!rng_central) {
      for (const char* tok : kRngTokens) {
        if (find_token(line, tok) != std::string::npos) {
          add("non-central-rng", li);
          break;
        }
      }
    }

    // unpooled-thread: the literal `std::thread` type outside the pool's
    // home directory. A following `::` is a scope access (static members
    // like hardware_concurrency), not thread ownership, and stays legal.
    if (!pool_home) {
      constexpr size_t kLen = sizeof("std::thread") - 1;
      for (size_t pos = line.find("std::thread"); pos != std::string::npos;
           pos = line.find("std::thread", pos + 1)) {
        const bool left_ok = pos == 0 || !is_ident(line[pos - 1]);
        const size_t end = pos + kLen;
        const bool right_ok = end >= line.size() || !is_ident(line[end]);
        const bool scope_access =
            end + 1 < line.size() && line[end] == ':' && line[end + 1] == ':';
        if (left_ok && right_ok && !scope_access) {
          add("unpooled-thread", li);
          break;
        }
      }
    }

    // float-literal
    size_t where = 0;
    if (find_token(line, "float") != std::string::npos || has_float_literal(line, &where))
      add("float-literal", li);
  }

  // missing-include-guard: first significant line of a header must open a
  // `#pragma once` or an #ifndef/#define guard.
  if (header) {
    bool guarded = false;
    for (const std::string& line : lines) {
      const std::string norm = normalize(line);
      if (norm.empty()) continue;
      guarded = norm.rfind("#pragma once", 0) == 0 || norm.rfind("#ifndef", 0) == 0;
      break;
    }
    if (!guarded) add("missing-include-guard", 0);
  }
  return report;
}

// ---------------------------------------------------------------------------
// Baseline handling.

std::set<std::string> load_baseline(const std::string& path) {
  std::set<std::string> entries;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    entries.insert(line);
  }
  return entries;
}

std::string baseline_key(const Finding& f) {
  return f.rule + "\t" + f.path + "\t" + f.content;
}

// ---------------------------------------------------------------------------
// Driver.

bool should_scan(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

std::vector<Finding> scan_tree(const fs::path& root, const std::vector<std::string>& subdirs) {
  std::vector<Finding> all;
  for (const std::string& sub : subdirs) {
    const fs::path dir = root / sub;
    if (!fs::exists(dir)) continue;
    std::vector<fs::path> files;
    for (const auto& entry : fs::recursive_directory_iterator(dir))
      if (entry.is_regular_file() && should_scan(entry.path())) files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    for (const fs::path& file : files) {
      std::ifstream in(file, std::ios::binary);
      std::stringstream ss;
      ss << in.rdbuf();
      const std::string rel = fs::relative(file, root).generic_string();
      FileReport report = scan_content(rel, ss.str());
      all.insert(all.end(), report.findings.begin(), report.findings.end());
    }
  }
  return all;
}

// ---------------------------------------------------------------------------
// Self-test: one planted violation per rule plus clean fixtures that must
// stay silent.

int self_test() {
  struct Case {
    const char* name;
    const char* content;
    const char* expect_rule;  // nullptr = expect clean
  };
  const Case cases[] = {
      {"plant-new.cpp", "void f() { int* p = new int(3); }\n", "raw-new-delete"},
      {"plant-delete.cpp", "void f(int* p) { delete p; }\n", "raw-new-delete"},
      {"plant-using.hpp", "#pragma once\nusing namespace std;\n", "using-namespace-header"},
      {"plant-factor.cpp", "void f() { cholqr<double>(v, r); }\n", "unchecked-factor"},
      {"plant-factor-qualified.cpp", "void f() { bkr::detail::qr_block<double>(w, r, s, c); }\n",
       "unchecked-factor"},
      {"plant-rng.cpp", "#include <random>\nstd::mt19937 gen(42);\n", "non-central-rng"},
      {"plant-guard.hpp", "inline int f() { return 1; }\n", "missing-include-guard"},
      {"plant-float.cpp", "double x = 1.5f;\n", "float-literal"},
      {"plant-float-type.cpp", "float y = 2.0;\n", "float-literal"},
      {"plant-thread.cpp", "void f() { std::thread t([] {}); t.join(); }\n", "unpooled-thread"},
      {"plant-thread-vec.cpp", "std::vector<std::thread> workers;\n", "unpooled-thread"},
      // Clean fixtures: constructs that look like violations but are not.
      {"clean-deleted-fn.hpp", "#pragma once\nstruct S { S(const S&) = delete; };\n", nullptr},
      {"clean-comment.cpp", "// new delete mt19937 using namespace cholqr( 1.0f\nint a;\n",
       nullptr},
      {"clean-string.cpp", "const char* s = \"new 1.5f mt19937 delete\";\n", nullptr},
      {"clean-checked-factor.cpp", "void f() { if (!cholqr<double>(v, r)) g(); bool ok = "
                                   "cholesky_upper(a); (void)ok; }\n",
       nullptr},
      {"clean-allow.cpp",
       "void f() { cholqr<double>(v, r); }  // bkr-lint: allow(unchecked-factor)\n", nullptr},
      {"clean-guard-comment.hpp", "// leading comment\n// more comment\n#pragma once\nint f();\n",
       nullptr},
      {"clean-ifndef.hpp", "#ifndef X_H_\n#define X_H_\n#endif\n", nullptr},
      {"clean-double.cpp", "double x = 1.5; double y = 1e-14; auto z = 0.0;\n", nullptr},
      {"clean-raw-string.cpp", "const char* s = R\"(new delete 1.0f)\";\n", nullptr},
      {"src/parallel/clean-pool-home.cpp", "std::thread worker([] {});\n", nullptr},
      {"clean-thread-scope.cpp", "const auto hw = std::thread::hardware_concurrency();\n",
       nullptr},
      {"clean-thread-comment.cpp", "// std::thread is banned here\nint a;\n", nullptr},
      {"clean-thread-allow.cpp",
       "std::thread t([] {});  // bkr-lint: allow(unpooled-thread)\n", nullptr},
  };
  int failures = 0;
  for (const Case& c : cases) {
    const FileReport report = scan_content(c.name, c.content);
    if (c.expect_rule == nullptr) {
      if (!report.findings.empty()) {
        std::printf("SELF-TEST FAIL %s: expected clean, got %s at line %ld\n", c.name,
                    report.findings[0].rule.c_str(), report.findings[0].line);
        ++failures;
      }
    } else {
      const bool hit = std::any_of(report.findings.begin(), report.findings.end(),
                                   [&](const Finding& f) { return f.rule == c.expect_rule; });
      if (!hit) {
        std::printf("SELF-TEST FAIL %s: rule %s not detected\n", c.name, c.expect_rule);
        ++failures;
      }
    }
  }
  if (failures == 0) {
    std::printf("bkr-lint self-test: %zu fixtures OK\n", std::size(cases));
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string root = ".";
  bool run_self_test = false;
  bool update_baseline = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") {
      run_self_test = true;
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--update-baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
      update_baseline = true;
    } else if (arg == "--help") {
      std::printf("usage: bkr_lint [--self-test] [--baseline FILE | --update-baseline FILE] "
                  "[ROOT]\n");
      return 0;
    } else {
      root = arg;
    }
  }
  if (run_self_test) return self_test();

  const std::vector<std::string> subdirs = {"src", "bench", "tests"};
  std::vector<Finding> findings = scan_tree(root, subdirs);

  if (update_baseline) {
    std::ofstream out(baseline_path);
    out << "# bkr-lint baseline: rule<TAB>path<TAB>normalized line content.\n"
        << "# Every entry needs a justification comment above it.\n";
    for (const Finding& f : findings) out << baseline_key(f) << "\n";
    std::printf("bkr-lint: wrote %zu baseline entries to %s\n", findings.size(),
                baseline_path.c_str());
    return 0;
  }

  std::set<std::string> baseline;
  if (!baseline_path.empty()) baseline = load_baseline(baseline_path);
  int unsuppressed = 0;
  for (const Finding& f : findings) {
    if (baseline.count(baseline_key(f)) != 0) continue;
    std::printf("%s:%ld: [%s] %s\n", f.path.c_str(), f.line, f.rule.c_str(), f.content.c_str());
    ++unsuppressed;
  }
  if (unsuppressed == 0) {
    std::printf("bkr-lint: clean (%zu finding(s) baselined)\n", findings.size());
    return 0;
  }
  std::printf("bkr-lint: %d unsuppressed finding(s)\n", unsuppressed);
  return 1;
}
