// bench-check: validator and regression gate for the kernel-bench
// trajectory (BENCH_kernels.json, schema "bkr-bench-kernels-1") and the
// sharded SPMD bench (BENCH_sharded.json, schema "bkr-bench-sharded-1").
//
// Modes:
//   bench_check FILE
//       schema validation only: well-formed JSON, required fields,
//       known kernel names, positive calibration, non-empty entries.
//       alloc_churn rows (steady-state allocations per solver iteration,
//       DESIGN.md §11) are gated here at exactly zero — an allocating
//       iterate loop is a contract violation, not a trend to track.
//       Sharded documents are additionally gated on two structural
//       invariants: iteration counts must be identical across shard
//       counts for the same (case, precond) — the bitwise shard-invariance
//       contract of DESIGN.md §13 — and every case solved with the
//       subdomain-deflation coarse space must take strictly fewer
//       iterations than its one-level counterpart.
//   bench_check FILE --baseline BASE [--max-regression 0.25]
//                     [--min-median-seconds 1e-4]
//       additionally compares FILE against BASE entry by entry. Entries
//       match on (kernel, shape, threads); medians are normalized by each
//       file's calibration_seconds so a slower host does not read as a
//       regression. A matched entry fails the gate when its normalized
//       median exceeds the baseline's by more than --max-regression AND
//       the baseline median is at least --min-median-seconds (microsecond
//       timings are too noisy to gate on). (Kernel schema only; sharded
//       documents are gated structurally, not on timings.)
//
// The parser below handles exactly the JSON subset our writer emits
// (objects, arrays, strings without escapes we generate, numbers, bools)
// — deliberately dependency-free, like bkr-lint.
//
// Exit code: 0 valid (and no gated regression), 1 otherwise, 2 usage.

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// --- minimal JSON ----------------------------------------------------------

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind = Kind::Null;
  bool boolean = false;
  double number = 0;
  std::string text;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> fields;

  [[nodiscard]] const JsonValue* get(const std::string& key) const {
    const auto it = fields.find(key);
    return it == fields.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(JsonValue* out) {
    const bool ok = value(out);
    skip_ws();
    return ok && pos_ == s_.size();
  }

  [[nodiscard]] std::string error() const { return error_; }

 private:
  const std::string& s_;
  size_t pos_ = 0;
  std::string error_;

  bool fail(const std::string& what) {
    if (error_.empty()) {
      std::ostringstream os;
      os << what << " at offset " << pos_;
      error_ = os.str();
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) ++pos_;
  }

  bool literal(const char* word) {
    const size_t len = std::strlen(word);
    if (s_.compare(pos_, len, word) != 0) return fail("bad literal");
    pos_ += len;
    return true;
  }

  bool value(JsonValue* out) {
    skip_ws();
    if (pos_ >= s_.size()) return fail("unexpected end");
    const char c = s_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::String;
      return string(&out->text);
    }
    if (c == 't' || c == 'f') {
      out->kind = JsonValue::Kind::Bool;
      out->boolean = c == 't';
      return literal(c == 't' ? "true" : "false");
    }
    if (c == 'n') {
      out->kind = JsonValue::Kind::Null;
      return literal("null");
    }
    return number(out);
  }

  bool string(std::string* out) {
    if (s_[pos_] != '"') return fail("expected string");
    ++pos_;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        // Writer-side strings never need escapes beyond these.
        ++pos_;
        if (pos_ >= s_.size()) return fail("bad escape");
        const char e = s_[pos_];
        if (e == 'n')
          out->push_back('\n');
        else if (e == 't')
          out->push_back('\t');
        else
          out->push_back(e);
      } else {
        out->push_back(s_[pos_]);
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool number(JsonValue* out) {
    const size_t start = pos_;
    while (pos_ < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
                                std::strchr("+-.eE", s_[pos_]) != nullptr))
      ++pos_;
    if (pos_ == start) return fail("expected number");
    char* end = nullptr;
    const std::string tok = s_.substr(start, pos_ - start);
    out->number = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("bad number");
    out->kind = JsonValue::Kind::Number;
    return true;
  }

  bool array(JsonValue* out) {
    out->kind = JsonValue::Kind::Array;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue item;
      if (!value(&item)) return false;
      out->items.push_back(std::move(item));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated array");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected , or ]");
    }
  }

  bool object(JsonValue* out) {
    out->kind = JsonValue::Kind::Object;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!string(&key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return fail("expected :");
      ++pos_;
      JsonValue val;
      if (!value(&val)) return false;
      out->fields.emplace(std::move(key), std::move(val));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated object");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected , or }");
    }
  }
};

// --- schema ----------------------------------------------------------------

const char* const kSchema = "bkr-bench-kernels-1";
const char* const kShardedSchema = "bkr-bench-sharded-1";
const char* const kKernels[] = {"spmv", "spmm", "gemm",  "herk",
                                "dot",  "norms", "trsm", "alloc_churn"};

struct BenchEntry {
  std::string kernel;
  std::string shape;
  long threads = 0;
  double median_seconds = 0;
};

struct BenchDoc {
  double calibration_seconds = 0;
  std::map<std::string, BenchEntry> by_key;  // "kernel|shape|threads"
};

bool known_kernel(const std::string& name) {
  for (const char* k : kKernels)
    if (name == k) return true;
  return false;
}

bool parse_json_file(const std::string& path, JsonValue* root, std::string* err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *err = "cannot open " + path;
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  JsonParser parser(text);
  if (!parser.parse(root) || root->kind != JsonValue::Kind::Object) {
    *err = path + ": not a JSON object (" + parser.error() + ")";
    return false;
  }
  return true;
}

// Reads the schema string of FILE without validating anything else, so main
// can dispatch between the kernels gate and the sharded gate.
std::string peek_schema(const std::string& path) {
  JsonValue root;
  std::string err;
  if (!parse_json_file(path, &root, &err)) return "";
  const JsonValue* schema = root.get("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::String) return "";
  return schema->text;
}

bool load_doc(const std::string& path, BenchDoc* doc, std::string* err) {
  JsonValue root;
  if (!parse_json_file(path, &root, err)) return false;
  const JsonValue* schema = root.get("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::String || schema->text != kSchema) {
    *err = path + ": missing or unknown schema (want \"" + std::string(kSchema) + "\")";
    return false;
  }
  const JsonValue* cal = root.get("calibration_seconds");
  if (cal == nullptr || cal->kind != JsonValue::Kind::Number || !(cal->number > 0) ||
      !std::isfinite(cal->number)) {
    *err = path + ": calibration_seconds must be a positive finite number";
    return false;
  }
  doc->calibration_seconds = cal->number;
  const JsonValue* entries = root.get("entries");
  if (entries == nullptr || entries->kind != JsonValue::Kind::Array || entries->items.empty()) {
    *err = path + ": entries must be a non-empty array";
    return false;
  }
  for (size_t i = 0; i < entries->items.size(); ++i) {
    const JsonValue& e = entries->items[i];
    const std::string at = path + ": entries[" + std::to_string(i) + "]";
    if (e.kind != JsonValue::Kind::Object) {
      *err = at + " is not an object";
      return false;
    }
    const JsonValue* kernel = e.get("kernel");
    const JsonValue* shape = e.get("shape");
    const JsonValue* threads = e.get("threads");
    const JsonValue* median = e.get("median_seconds");
    const JsonValue* reps = e.get("reps");
    if (kernel == nullptr || kernel->kind != JsonValue::Kind::String ||
        !known_kernel(kernel->text)) {
      *err = at + ": kernel missing or unknown";
      return false;
    }
    if (shape == nullptr || shape->kind != JsonValue::Kind::String || shape->text.empty()) {
      *err = at + ": shape missing";
      return false;
    }
    if (threads == nullptr || threads->kind != JsonValue::Kind::Number || threads->number < 0) {
      *err = at + ": threads missing or negative";
      return false;
    }
    if (median == nullptr || median->kind != JsonValue::Kind::Number || median->number < 0 ||
        !std::isfinite(median->number)) {
      *err = at + ": median_seconds missing or invalid";
      return false;
    }
    if (reps == nullptr || reps->kind != JsonValue::Kind::Number || reps->number < 1) {
      *err = at + ": reps missing or < 1";
      return false;
    }
    // alloc_churn rows carry steady-state allocations per solver iteration
    // in the value slot, not a timing. The workspace-hoisting contract
    // (DESIGN.md §11) admits exactly zero — any other value means a solver
    // iterate loop touched the allocator, which is a hard failure, not a
    // regression to trend.
    if (kernel->text == "alloc_churn" && median->number != 0.0) {
      std::ostringstream os;
      os << at << ": alloc_churn must be exactly 0 allocations/iteration, got "
         << median->number;
      *err = os.str();
      return false;
    }
    BenchEntry entry{kernel->text, shape->text, long(threads->number), median->number};
    const std::string key =
        entry.kernel + "|" + entry.shape + "|" + std::to_string(entry.threads);
    if (doc->by_key.count(key) != 0) {
      *err = at + ": duplicate entry key " + key;
      return false;
    }
    doc->by_key.emplace(key, std::move(entry));
  }
  return true;
}

// --- sharded schema --------------------------------------------------------

struct ShardedEntry {
  std::string case_name;
  long shards = 0;
  long coarse = 0;  // coarse-space subdomains; 0 means one-level Schwarz
  long iterations = 0;
  bool converged = false;
  double setup_seconds = 0;
  double solve_seconds = 0;
};

// Validates a "bkr-bench-sharded-1" document and applies its two structural
// gates (see file header). Returns the entry count via *count on success.
bool check_sharded_doc(const std::string& path, size_t* count, std::string* err) {
  JsonValue root;
  if (!parse_json_file(path, &root, err)) return false;
  const JsonValue* schema = root.get("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::String ||
      schema->text != kShardedSchema) {
    *err = path + ": missing or unknown schema (want \"" + std::string(kShardedSchema) + "\")";
    return false;
  }
  const JsonValue* entries = root.get("entries");
  if (entries == nullptr || entries->kind != JsonValue::Kind::Array || entries->items.empty()) {
    *err = path + ": entries must be a non-empty array";
    return false;
  }
  std::map<std::string, ShardedEntry> by_key;  // "case|shards|coarse"
  for (size_t i = 0; i < entries->items.size(); ++i) {
    const JsonValue& e = entries->items[i];
    const std::string at = path + ": entries[" + std::to_string(i) + "]";
    if (e.kind != JsonValue::Kind::Object) {
      *err = at + " is not an object";
      return false;
    }
    const JsonValue* cs = e.get("case");
    const JsonValue* shards = e.get("shards");
    const JsonValue* coarse = e.get("coarse");
    const JsonValue* iters = e.get("iterations");
    const JsonValue* conv = e.get("converged");
    const JsonValue* setup = e.get("setup_seconds");
    const JsonValue* solve = e.get("solve_seconds");
    if (cs == nullptr || cs->kind != JsonValue::Kind::String || cs->text.empty()) {
      *err = at + ": case missing";
      return false;
    }
    if (shards == nullptr || shards->kind != JsonValue::Kind::Number || shards->number < 1) {
      *err = at + ": shards missing or < 1";
      return false;
    }
    if (coarse == nullptr || coarse->kind != JsonValue::Kind::Number || coarse->number < 0) {
      *err = at + ": coarse missing or negative";
      return false;
    }
    if (iters == nullptr || iters->kind != JsonValue::Kind::Number || iters->number < 0) {
      *err = at + ": iterations missing or negative";
      return false;
    }
    if (conv == nullptr || conv->kind != JsonValue::Kind::Bool) {
      *err = at + ": converged missing";
      return false;
    }
    if (!conv->boolean) {
      *err = at + ": case " + cs->text + " did not converge";
      return false;
    }
    for (const JsonValue* t : {setup, solve}) {
      if (t == nullptr || t->kind != JsonValue::Kind::Number || t->number < 0 ||
          !std::isfinite(t->number)) {
        *err = at + ": setup_seconds/solve_seconds missing or invalid";
        return false;
      }
    }
    ShardedEntry entry{cs->text,          long(shards->number), long(coarse->number),
                       long(iters->number), conv->boolean,      setup->number,
                       solve->number};
    const std::string key = entry.case_name + "|" + std::to_string(entry.shards) + "|" +
                            std::to_string(entry.coarse);
    if (by_key.count(key) != 0) {
      *err = at + ": duplicate entry key " + key;
      return false;
    }
    by_key.emplace(key, std::move(entry));
  }

  // Gate 1 — shard invariance: the solver history is bitwise independent of
  // the shard count (DESIGN.md §13), so iteration counts for the same
  // (case, coarse) pair must agree across every shard count benchmarked.
  std::map<std::string, long> canon_iters;  // "case|coarse" -> iterations
  for (const auto& [key, e] : by_key) {
    const std::string ck = e.case_name + "|" + std::to_string(e.coarse);
    const auto it = canon_iters.find(ck);
    if (it == canon_iters.end()) {
      canon_iters.emplace(ck, e.iterations);
    } else if (it->second != e.iterations) {
      std::ostringstream os;
      os << path << ": shard-invariance violation for " << ck << " — " << it->second
         << " vs " << e.iterations << " iterations across shard counts";
      *err = os.str();
      return false;
    }
  }

  // Gate 2 — deflation must pay: wherever a case was run both one-level and
  // with the subdomain-deflation coarse space at the same shard count, the
  // deflated run must converge in strictly fewer iterations.
  bool any_pair = false;
  for (const auto& [key, e] : by_key) {
    if (e.coarse == 0) continue;
    // Find the one-level counterpart at the same (case, shards).
    for (const auto& [okey, plain] : by_key) {
      if (plain.coarse != 0 || plain.case_name != e.case_name || plain.shards != e.shards)
        continue;
      any_pair = true;
      if (e.iterations >= plain.iterations) {
        std::ostringstream os;
        os << path << ": deflation gate failed for " << e.case_name << " at " << e.shards
           << " shard(s): coarse=" << e.coarse << " took " << e.iterations
           << " iterations vs " << plain.iterations << " one-level";
        *err = os.str();
        return false;
      }
    }
  }
  if (!any_pair) {
    *err = path + ": no (one-level, deflated) pair to gate — bench must emit both";
    return false;
  }
  *count = by_key.size();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string baseline_path;
  double max_regression = 0.25;
  double min_median = 1e-4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--max-regression" && i + 1 < argc) {
      max_regression = std::atof(argv[++i]);
    } else if (arg == "--min-median-seconds" && i + 1 < argc) {
      min_median = std::atof(argv[++i]);
    } else if (arg == "--help") {
      std::printf("usage: bench_check FILE [--baseline BASE] [--max-regression R] "
                  "[--min-median-seconds S]\n");
      return 0;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "bench_check: unexpected argument %s\n", arg.c_str());
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: bench_check FILE [--baseline BASE] ...\n");
    return 2;
  }

  std::string err;
  if (peek_schema(path) == kShardedSchema) {
    size_t count = 0;
    if (!check_sharded_doc(path, &count, &err)) {
      std::fprintf(stderr, "bench_check: %s\n", err.c_str());
      return 1;
    }
    std::printf("bench_check: %s valid (%zu entries, shard-invariance and deflation gates "
                "passed)\n",
                path.c_str(), count);
    if (!baseline_path.empty())
      std::printf("bench_check: note — sharded documents are gated structurally; "
                  "--baseline ignored\n");
    return 0;
  }
  BenchDoc doc;
  if (!load_doc(path, &doc, &err)) {
    std::fprintf(stderr, "bench_check: %s\n", err.c_str());
    return 1;
  }
  std::printf("bench_check: %s valid (%zu entries, calibration %.3e s)\n", path.c_str(),
              doc.by_key.size(), doc.calibration_seconds);
  if (baseline_path.empty()) return 0;

  BenchDoc base;
  if (!load_doc(baseline_path, &base, &err)) {
    std::fprintf(stderr, "bench_check: %s\n", err.c_str());
    return 1;
  }
  // Normalized comparison: medians divided by the calibration probe of
  // their own run, so host speed cancels and only the trajectory counts.
  int compared = 0, regressed = 0, skipped_noise = 0;
  for (const auto& [key, cur] : doc.by_key) {
    const auto it = base.by_key.find(key);
    if (it == base.by_key.end()) continue;
    const BenchEntry& ref = it->second;
    if (ref.median_seconds < min_median) {
      ++skipped_noise;
      continue;
    }
    ++compared;
    const double cur_norm = cur.median_seconds / doc.calibration_seconds;
    const double ref_norm = ref.median_seconds / base.calibration_seconds;
    const double ratio = ref_norm > 0 ? cur_norm / ref_norm : 1.0;
    if (ratio > 1.0 + max_regression) {
      std::printf("  REGRESSION %s: normalized %.3f -> %.3f (%+.0f%%, gate %+.0f%%)\n",
                  key.c_str(), ref_norm, cur_norm, 100.0 * (ratio - 1.0),
                  100.0 * max_regression);
      ++regressed;
    }
  }
  std::printf("bench_check: %d compared, %d below noise floor, %d regression(s) vs %s\n",
              compared, skipped_noise, regressed, baseline_path.c_str());
  return regressed == 0 ? 0 : 1;
}
