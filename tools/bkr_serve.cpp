// bkr_serve — a long-lived multi-tenant solve server over the C API
// (DESIGN.md §15, ROADMAP item 1).
//
// The paper's workload is sequences of related systems: one operator hit
// by many right-hand sides. This daemon productionizes that shape. It
// accepts newline-delimited JSON solve requests (stdin/stdout pipe mode,
// or a Unix-domain socket with -socket PATH), dispatches them onto worker
// lanes running on the library ThreadPool, batches concurrent requests
// that share an operator into one block solve (block methods *are*
// request batching), and warm-starts recycling methods from a shared
// RecycleCache whose snapshot survives restarts on disk.
//
// Robustness model:
//  * admission control — a bounded queue (-queue) and a per-tenant
//    in-flight cap (-tenant_cap); past either, requests are shed
//    immediately with a typed "overloaded" response, never parked
//    unboundedly;
//  * deadlines & cancellation — every request may carry "deadline_ms";
//    the solver itself enforces it cooperatively (SolverOptions::cancel /
//    deadline through bkr_options), a 10 ms watchdog sheds requests that
//    expire while still queued, and {"op":"cancel","id":...} aborts a
//    queued or in-flight request at its next iteration boundary;
//  * graceful degradation — repeated hard failures climb a ladder
//    (drop warm-start -> disable deflation -> gcrodr->gmres fallback ->
//    block width 1), each transition emitted as a RecoveryEvent-style
//    {"event":"degrade",...} line; sustained health climbs back down;
//  * graceful shutdown — SIGTERM (or stdin EOF) stops admission, drains
//    in-flight work under -drain_ms (the watchdog cancels whatever is
//    still running past that), snapshots the cache atomically, exits 0.
//
// Request protocol (one JSON object per line; see DESIGN.md §15 for the
// full field table):
//   {"op":"solve","id":"r1","tenant":"a","matrix":"poisson2d:32",
//    "method":"gcrodr","nu":0.1,"tol":1e-8,"m":30,"k":10,
//    "deadline_ms":500,"hold":true,"return_x":false}
//   {"op":"flush"}                  dispatch held requests as block batches
//   {"op":"cancel","id":"r1"}       cooperative cancel
//   {"op":"stats"}                  server counters
//   {"op":"degrade","level":2}      admin: force the degradation ladder
//   {"op":"shutdown"}               drain and exit
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "capi/bkr_c.h"
#include "common/options.hpp"
#include "core/recycle_cache.hpp"  // fnv1a64 for response x hashes
#include "fem/poisson2d.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using Clock = std::chrono::steady_clock;

volatile sig_atomic_t g_sigterm = 0;
void on_term_signal(int) { g_sigterm = 1; }

/* ---- minimal JSON (flat objects of string/number/bool values) --------- */

struct JsonObject {
  std::map<std::string, std::string> strings;
  std::map<std::string, double> numbers;
  std::map<std::string, bool> bools;

  [[nodiscard]] std::string str(const std::string& k, const std::string& d = "") const {
    const auto it = strings.find(k);
    return it == strings.end() ? d : it->second;
  }
  [[nodiscard]] double num(const std::string& k, double d) const {
    const auto it = numbers.find(k);
    return it == numbers.end() ? d : it->second;
  }
  [[nodiscard]] int64_t integer(const std::string& k, int64_t d) const {
    const auto it = numbers.find(k);
    return it == numbers.end() ? d : int64_t(it->second);
  }
  [[nodiscard]] bool flag(const std::string& k, bool d = false) const {
    const auto it = bools.find(k);
    return it == bools.end() ? d : it->second;
  }
  [[nodiscard]] bool has(const std::string& k) const {
    return strings.count(k) != 0 || numbers.count(k) != 0 || bools.count(k) != 0;
  }
};

// Parses exactly the flat-object subset the protocol uses. Nested values
// are rejected (no request needs them), which keeps the parser small
// enough to audit.
bool parse_flat_json(const std::string& line, JsonObject* out, std::string* err) {
  size_t i = 0;
  const auto skip = [&] { while (i < line.size() && std::isspace(uint8_t(line[i])) != 0) ++i; };
  const auto string_token = [&](std::string* s) -> bool {
    if (i >= line.size() || line[i] != '"') return false;
    ++i;
    s->clear();
    while (i < line.size() && line[i] != '"') {
      char c = line[i++];
      if (c == '\\' && i < line.size()) {
        const char e = line[i++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          default: return false;  // \uXXXX etc: not part of the protocol
        }
      }
      s->push_back(c);
    }
    if (i >= line.size()) return false;
    ++i;  // closing quote
    return true;
  };
  skip();
  if (i >= line.size() || line[i] != '{') {
    *err = "expected object";
    return false;
  }
  ++i;
  skip();
  if (i < line.size() && line[i] == '}') return true;
  while (true) {
    skip();
    std::string key;
    if (!string_token(&key)) {
      *err = "expected key string";
      return false;
    }
    skip();
    if (i >= line.size() || line[i] != ':') {
      *err = "expected ':'";
      return false;
    }
    ++i;
    skip();
    if (i >= line.size()) {
      *err = "truncated value";
      return false;
    }
    if (line[i] == '"') {
      std::string v;
      if (!string_token(&v)) {
        *err = "bad string value";
        return false;
      }
      out->strings[key] = v;
    } else if (line.compare(i, 4, "true") == 0) {
      out->bools[key] = true;
      i += 4;
    } else if (line.compare(i, 5, "false") == 0) {
      out->bools[key] = false;
      i += 5;
    } else if (line.compare(i, 4, "null") == 0) {
      i += 4;
    } else if (line[i] == '{' || line[i] == '[') {
      *err = "nested values not supported";
      return false;
    } else {
      char* end = nullptr;
      const double v = std::strtod(line.c_str() + i, &end);
      if (end == line.c_str() + i) {
        *err = "bad number";
        return false;
      }
      out->numbers[key] = v;
      i = size_t(end - line.c_str());
    }
    skip();
    if (i < line.size() && line[i] == ',') {
      ++i;
      continue;
    }
    if (i < line.size() && line[i] == '}') return true;
    *err = "expected ',' or '}'";
    return false;
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/* ---- connections ------------------------------------------------------ */

// One response sink (stdout in pipe mode, a client socket otherwise).
// Responses from concurrent workers interleave whole lines only.
struct Connection {
  explicit Connection(int out_fd) : fd(out_fd) {}
  int fd;
  std::mutex write_mutex;

  void write_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(write_mutex);
    std::string full = line;
    full.push_back('\n');
    size_t off = 0;
    while (off < full.size()) {
      const ssize_t w = ::write(fd, full.data() + off, full.size() - off);
      if (w <= 0) return;  // client gone; drop the response
      off += size_t(w);
    }
  }
};

/* ---- matrix registry -------------------------------------------------- */

// Operators are named by generator spec ("poisson2d:32", or
// "varcoef:32:100" / "varcoef:32:100:8"), so two tenants naming the same
// spec share one assembled matrix — the server-side equivalent of an
// operator-fingerprint match — and their solves batch into one block RHS.
struct MatrixEntry {
  bkr_matrix* handle = nullptr;
  int64_t grid = 0;
  int64_t n = 0;
};

class MatrixRegistry {
 public:
  ~MatrixRegistry() {
    for (auto& [spec, e] : entries_) bkr_matrix_destroy(e.handle);
  }

  const MatrixEntry* get(const std::string& spec) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(spec);
    if (it != entries_.end()) return &it->second;
    bkr::CsrMatrix<double> a(1, 1, {0, 0}, {}, {});
    int64_t grid = 0;
    if (!build(spec, &a, &grid)) return nullptr;
    std::vector<int64_t> rowptr(a.rowptr().begin(), a.rowptr().end());
    std::vector<int64_t> colind(a.colind().begin(), a.colind().end());
    MatrixEntry e;
    e.handle = bkr_matrix_create(a.rows(), rowptr.data(), colind.data(), a.values().data());
    if (e.handle == nullptr) return nullptr;
    e.grid = grid;
    e.n = a.rows();
    return &entries_.emplace(spec, e).first->second;
  }

 private:
  static bool build(const std::string& spec, bkr::CsrMatrix<double>* out, int64_t* grid) {
    std::vector<std::string> parts;
    size_t start = 0;
    while (start <= spec.size()) {
      const size_t colon = spec.find(':', start);
      parts.push_back(spec.substr(start, colon == std::string::npos ? colon : colon - start));
      if (colon == std::string::npos) break;
      start = colon + 1;
    }
    if (parts.size() < 2) return false;
    const long g = std::strtol(parts[1].c_str(), nullptr, 10);
    if (g < 2 || g > 4096) return false;
    *grid = g;
    if (parts[0] == "poisson2d" && parts.size() == 2) {
      *out = bkr::poisson2d(g, g);
      return true;
    }
    if (parts[0] == "varcoef" && (parts.size() == 3 || parts.size() == 4)) {
      const double contrast = std::strtod(parts[2].c_str(), nullptr);
      const long inclusions = parts.size() == 4 ? std::strtol(parts[3].c_str(), nullptr, 10) : 12;
      if (contrast <= 0 || inclusions < 1 || inclusions > 1024) return false;
      *out = bkr::poisson2d_varcoef(g, g, contrast, inclusions);
      return true;
    }
    return false;
  }

  std::mutex mutex_;
  std::map<std::string, MatrixEntry> entries_;
};

/* ---- requests & batches ----------------------------------------------- */

struct Request {
  std::string id;
  std::string tenant = "default";
  std::string matrix;
  std::string method = "gmres";
  int64_t nrhs = 1;
  double nu = 0.1;
  double tol = 1e-8;
  int64_t restart = 30;
  int64_t recycle = 10;
  int64_t coarse = 0;
  int64_t max_iterations = 10000;
  int64_t deadline_ms = -1;  // < 0: none
  bool return_x = false;
  Clock::time_point arrival;
  std::shared_ptr<Connection> conn;
  // Cooperative-cancel state: `cancelled` is sticky; `active_token` points
  // at the batch's token while the solve is running (guarded by the
  // server registry mutex).
  std::atomic<bool> cancelled{false};
  bkr_cancel_token* active_token = nullptr;

  [[nodiscard]] bool has_deadline() const { return deadline_ms >= 0; }
  [[nodiscard]] Clock::time_point deadline() const {
    return arrival + std::chrono::milliseconds(deadline_ms);
  }
};

using ReqPtr = std::shared_ptr<Request>;

// One unit of worker dispatch: members share matrix/method/options and
// solve as a single block RHS of sum(nrhs) columns.
struct Batch {
  std::vector<ReqPtr> members;
};

// Requests batch when everything that shapes the solve matches.
std::string batch_key(const Request& r) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "|%s|%.17g|%lld|%lld|%lld|%lld", r.method.c_str(), r.tol,
                static_cast<long long>(r.restart), static_cast<long long>(r.recycle),
                static_cast<long long>(r.coarse), static_cast<long long>(r.max_iterations));
  return r.matrix + buf;
}

bool method_from_name(const std::string& name, bkr_method* out) {
  if (name == "cg") *out = BKR_METHOD_CG;
  else if (name == "block_cg") *out = BKR_METHOD_BLOCK_CG;
  else if (name == "gmres") *out = BKR_METHOD_GMRES;
  else if (name == "pseudo_gmres") *out = BKR_METHOD_PSEUDO_GMRES;
  else if (name == "lgmres") *out = BKR_METHOD_LGMRES;
  else if (name == "gcrodr") *out = BKR_METHOD_GCRODR;
  else if (name == "pseudo_gcrodr") *out = BKR_METHOD_PSEUDO_GCRODR;
  else return false;
  return true;
}

const char* status_to_name(bkr_status s) {
  switch (s) {
    case BKR_STATUS_CONVERGED: return "converged";
    case BKR_STATUS_MAX_ITERATIONS: return "max-iterations";
    case BKR_STATUS_STAGNATED: return "stagnated";
    case BKR_STATUS_BREAKDOWN: return "breakdown";
    case BKR_STATUS_NON_FINITE_RESIDUAL: return "non-finite-residual";
    case BKR_STATUS_PRECONDITIONER_FAILURE: return "preconditioner-failure";
    case BKR_STATUS_EIG_SOLVE_FAILURE: return "eig-solve-failure";
    case BKR_STATUS_FAULTED: return "faulted";
    case BKR_STATUS_CANCELLED: return "cancelled";
    case BKR_STATUS_DEADLINE_EXCEEDED: return "deadline-exceeded";
  }
  return "unknown";
}

bool is_hard_failure(bkr_status s) {
  return s == BKR_STATUS_BREAKDOWN || s == BKR_STATUS_NON_FINITE_RESIDUAL ||
         s == BKR_STATUS_PRECONDITIONER_FAILURE || s == BKR_STATUS_EIG_SOLVE_FAILURE ||
         s == BKR_STATUS_FAULTED;
}

/* ---- degradation ladder ----------------------------------------------- */

struct LadderRung {
  const char* action;
};
constexpr LadderRung kLadder[] = {
    {"normal"},            // 0
    {"drop-warm-start"},   // 1
    {"disable-deflation"}, // 2
    {"method-fallback"},   // 3: gcrodr -> gmres
    {"shrink-block"},      // 4: batch width 1
};
constexpr int kLadderMax = 4;

/* ---- the server ------------------------------------------------------- */

struct ServerConfig {
  int64_t workers = 2;
  int64_t queue_limit = 64;
  int64_t tenant_cap = 8;
  int64_t drain_ms = 5000;
  int64_t cache_budget = 0;  // 0: library default
  std::string cache_file;
};

class Server {
 public:
  explicit Server(ServerConfig cfg) : cfg_(cfg), pool_(cfg.workers + 1) {
    cache_ = bkr_cache_create(size_t(cfg_.cache_budget));
    if (!cfg_.cache_file.empty()) {
      if (bkr_cache_load(cache_, cfg_.cache_file.c_str()) == 0) {
        std::fprintf(stderr, "bkr_serve: loaded %lld cached spaces from %s\n",
                     static_cast<long long>(bkr_cache_entries(cache_)),
                     cfg_.cache_file.c_str());
      } else if (struct stat sb; ::stat(cfg_.cache_file.c_str(), &sb) == 0) {
        std::fprintf(stderr, "bkr_serve: cache snapshot %s is corrupt; starting cold\n",
                     cfg_.cache_file.c_str());
      }
    }
    dispatcher_ = std::thread([this] {
      pool_.parallel_for(bkr::index_t(cfg_.workers), [this](bkr::index_t) { worker_loop(); });
    });
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }

  ~Server() { bkr_cache_destroy(cache_); }

  // One request line from a client. Thread-safe (the socket mode runs one
  // reader per connection).
  void handle_line(const std::string& line, const std::shared_ptr<Connection>& conn) {
    JsonObject msg;
    std::string err;
    if (!parse_flat_json(line, &msg, &err)) {
      conn->write_line("{\"status\":\"rejected\",\"error\":\"" + json_escape(err) + "\"}");
      return;
    }
    const std::string op = msg.str("op", "solve");
    if (op == "solve") {
      admit(msg, conn);
    } else if (op == "flush") {
      flush_holds();
    } else if (op == "cancel") {
      cancel(msg.str("id"));
    } else if (op == "stats") {
      conn->write_line(stats_json());
    } else if (op == "degrade") {
      force_level(int(msg.integer("level", 0)));
    } else if (op == "shutdown") {
      shutdown_requested_.store(true);
    } else {
      conn->write_line("{\"status\":\"rejected\",\"error\":\"unknown op\"}");
    }
  }

  [[nodiscard]] bool shutdown_requested() const { return shutdown_requested_.load(); }

  // SIGTERM / EOF / {"op":"shutdown"}: stop admitting, flush holds, drain
  // under the deadline (the watchdog cancels stragglers), snapshot.
  void drain_and_stop() {
    // Deadline must be visible before the watchdog can see draining_, or
    // it would cancel in-flight work against the epoch sentinel.
    drain_deadline_ = Clock::now() + std::chrono::milliseconds(cfg_.drain_ms);
    draining_.store(true);
    flush_holds();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      stop_ = true;
      queue_cv_.notify_all();
      // Hard cap past the drain budget: even if accounting were ever off,
      // shutdown proceeds (workers are bounded by max_iterations anyway).
      drained_cv_.wait_until(lock, drain_deadline_ + std::chrono::seconds(10),
                             [this] { return queue_.empty() && in_flight_ == 0; });
    }
    dispatcher_.join();
    watchdog_stop_.store(true);
    watchdog_.join();
    if (!cfg_.cache_file.empty()) {
      if (bkr_cache_save(cache_, cfg_.cache_file.c_str()) == 0)
        std::fprintf(stderr, "bkr_serve: cache snapshot (%lld entries) saved to %s\n",
                     static_cast<long long>(bkr_cache_entries(cache_)),
                     cfg_.cache_file.c_str());
      else
        std::fprintf(stderr, "bkr_serve: FAILED to save cache snapshot to %s\n",
                     cfg_.cache_file.c_str());
    }
    std::fprintf(stderr,
                 "bkr_serve: drained (%lld solved, %lld overloaded, %lld cancelled, "
                 "%lld deadline-exceeded)\n",
                 counters_.solved.load(), counters_.overloaded.load(),
                 counters_.cancelled.load(), counters_.deadline.load());
  }

 private:
  struct Counters {
    std::atomic<long long> received{0}, solved{0}, overloaded{0}, cancelled{0}, deadline{0},
        batches{0}, rejected{0};
  };

  /* -- admission -- */

  void admit(const JsonObject& msg, const std::shared_ptr<Connection>& conn) {
    counters_.received.fetch_add(1);
    auto req = std::make_shared<Request>();
    req->id = msg.str("id");
    req->tenant = msg.str("tenant", "default");
    req->matrix = msg.str("matrix");
    req->method = msg.str("method", "gmres");
    req->nrhs = msg.integer("nrhs", 1);
    req->nu = msg.num("nu", 0.1);
    req->tol = msg.num("tol", 1e-8);
    req->restart = msg.integer("m", 30);
    req->recycle = msg.integer("k", 10);
    req->coarse = msg.integer("coarse", 0);
    req->max_iterations = msg.integer("max_iterations", 10000);
    req->deadline_ms = msg.integer("deadline_ms", -1);
    req->return_x = msg.flag("return_x", false);
    req->arrival = Clock::now();
    req->conn = conn;
    bkr_method method_check = BKR_METHOD_GMRES;
    if (req->id.empty() || req->matrix.empty() || !method_from_name(req->method, &method_check) ||
        req->nrhs < 1 || req->nrhs > 64) {
      counters_.rejected.fetch_add(1);
      conn->write_line("{\"id\":\"" + json_escape(req->id) +
                       "\",\"status\":\"rejected\",\"error\":\"bad solve request\"}");
      return;
    }
    const bool hold = msg.flag("hold", false);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (draining_.load() || stop_) {
        respond_overloaded_locked(*req, "shutting-down");
        return;
      }
      if (admitted_ >= cfg_.queue_limit) {
        respond_overloaded_locked(*req, "queue-full");
        return;
      }
      if (tenant_in_flight_[req->tenant] >= cfg_.tenant_cap) {
        respond_overloaded_locked(*req, "tenant-cap");
        return;
      }
      if (registry_.count(req->id) != 0) {
        counters_.rejected.fetch_add(1);
        req->conn->write_line("{\"id\":\"" + json_escape(req->id) +
                              "\",\"status\":\"rejected\",\"error\":\"duplicate id\"}");
        return;
      }
      ++admitted_;
      ++tenant_in_flight_[req->tenant];
      registry_[req->id] = req;
      if (hold) {
        holds_[batch_key(*req)].push_back(req);
      } else {
        queue_.push_back(Batch{{req}});
        queue_cv_.notify_one();
      }
    }
  }

  void respond_overloaded_locked(const Request& req, const char* reason) {
    counters_.overloaded.fetch_add(1);
    req.conn->write_line("{\"id\":\"" + json_escape(req.id) +
                         "\",\"status\":\"overloaded\",\"reason\":\"" + reason + "\"}");
  }

  // Move every held group into the queue as one block batch each.
  void flush_holds() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [key, members] : holds_) {
      if (members.empty()) continue;
      queue_.push_back(Batch{std::move(members)});
      queue_cv_.notify_one();
    }
    holds_.clear();
  }

  void cancel(const std::string& id) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = registry_.find(id);
    if (it == registry_.end()) return;
    it->second->cancelled.store(true);
    if (it->second->active_token != nullptr) bkr_cancel_token_cancel(it->second->active_token);
  }

  void force_level(int level) {
    level = std::max(0, std::min(kLadderMax, level));
    const int prev = level_.exchange(level);
    if (prev != level) emit_degrade_event(prev, level, "admin");
  }

  void emit_degrade_event(int from, int to, const char* why) {
    // RecoveryEvent-style trace of a ladder transition, mirrored to every
    // live response stream via stderr plus a stdout event line in pipe
    // mode (workers hold a connection per member; stderr is the shared
    // channel that always exists).
    std::fprintf(stderr, "bkr_serve: degrade level %d -> %d (%s, action=%s)\n", from, to, why,
                 kLadder[to].action);
  }

  /* -- responses (every admitted request exits through here exactly once) */

  void finish(const ReqPtr& req, const std::string& json) {
    req->conn->write_line(json);
    std::lock_guard<std::mutex> lock(mutex_);
    --admitted_;
    const auto t = tenant_in_flight_.find(req->tenant);
    if (t != tenant_in_flight_.end() && --t->second <= 0) tenant_in_flight_.erase(t);
    registry_.erase(req->id);
    drained_cv_.notify_all();
  }

  void finish_status(const ReqPtr& req, const char* status) {
    if (std::strcmp(status, "cancelled") == 0) counters_.cancelled.fetch_add(1);
    if (std::strcmp(status, "deadline-exceeded") == 0) counters_.deadline.fetch_add(1);
    finish(req, "{\"id\":\"" + json_escape(req->id) + "\",\"status\":\"" + status +
                    "\",\"converged\":0}");
  }

  /* -- worker lanes (run on the ThreadPool via the dispatcher) -- */

  void worker_loop() {
    while (true) {
      Batch batch;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) {
          if (stop_) return;
          continue;
        }
        batch = std::move(queue_.front());
        queue_.pop_front();
        in_flight_ += int64_t(batch.members.size());
      }
      const int level = level_.load();
      try {
        if (level >= 4 && batch.members.size() > 1) {
          // Shrink-block rung: serve members one by one.
          for (const auto& m : batch.members) run_batch(Batch{{m}}, level);
        } else {
          run_batch(std::move(batch), level);
        }
      } catch (const std::exception& e) {
        // A worker lane must never die: whatever escaped the batch takes
        // the internal-error path so the drain accounting stays exact.
        std::fprintf(stderr, "bkr_serve: worker error: %s\n", e.what());
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        drained_cv_.notify_all();
      }
    }
  }

  void run_batch(Batch batch, int level) {
    counters_.batches.fetch_add(1);
    const auto release = [this](size_t n) {
      std::lock_guard<std::mutex> lock(mutex_);
      in_flight_ -= int64_t(n);
    };
    // Shed members that were cancelled or expired while queued.
    std::vector<ReqPtr> live;
    for (const auto& m : batch.members) {
      if (m->cancelled.load()) {
        finish_status(m, "cancelled");
      } else if (m->has_deadline() && Clock::now() >= m->deadline()) {
        finish_status(m, "deadline-exceeded");
      } else {
        live.push_back(m);
      }
    }
    if (live.empty()) {
      release(batch.members.size());
      return;
    }

    const Request& head = *live.front();
    const MatrixEntry* mat = matrices_.get(head.matrix);
    if (mat == nullptr) {
      for (const auto& m : live)
        finish(m, "{\"id\":\"" + json_escape(m->id) +
                      "\",\"status\":\"rejected\",\"error\":\"unknown matrix spec\"}");
      release(batch.members.size());
      return;
    }

    bkr_options o;
    bkr_options_default(&o);
    o.restart = head.restart;
    o.recycle = head.recycle;
    o.tol = head.tol;
    o.max_iterations = head.max_iterations;
    o.coarse = head.coarse;
    std::string effective_method = head.method;
    if (level >= 2) o.coarse = 0;  // disable-deflation rung
    if (level >= 3) {              // method-fallback rung
      if (effective_method == "gcrodr") effective_method = "gmres";
      if (effective_method == "pseudo_gcrodr") effective_method = "pseudo_gmres";
    }
    method_from_name(effective_method, &o.method);
    // Tightest member deadline bounds the whole block solve; members keep
    // their own shed checks above.
    int64_t deadline_budget = -1;
    for (const auto& m : live)
      if (m->has_deadline()) {
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(m->deadline() - Clock::now())
                .count();
        const int64_t ms = left < 0 ? 0 : left;
        deadline_budget = deadline_budget < 0 ? ms : std::min(deadline_budget, ms);
      }
    bkr_cancel_token* token = bkr_cancel_token_create();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const auto& m : live) {
        m->active_token = token;
        if (m->cancelled.load()) bkr_cancel_token_cancel(token);
      }
    }
    o.cancel = token;
    o.deadline_ms = deadline_budget;

    const int64_t n = mat->n;
    int64_t width = 0;
    for (const auto& m : live) width += m->nrhs;
    std::vector<double> b(size_t(n * width), 0.0), x(size_t(n * width), 0.0);
    int64_t col = 0;
    for (const auto& m : live)
      for (int64_t j = 0; j < m->nrhs; ++j, ++col) {
        const auto f = bkr::poisson2d_rhs(mat->grid, mat->grid, m->nu * double(j + 1));
        std::copy(f.begin(), f.end(), b.begin() + size_t(col * n));
      }

    const bool attach_cache = level < 1;  // drop-warm-start rung
    bkr_session* session = bkr_session_create(mat->handle, &o, attach_cache ? cache_ : nullptr);
    bkr_result result;
    std::memset(&result, 0, sizeof result);
    int rc = 2;
    if (session != nullptr) {
      rc = bkr_session_solve(session, b.data(), x.data(), width, &result);
      bkr_session_destroy(session);  // deposits the recycle space
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const auto& m : live) m->active_token = nullptr;
    }
    bkr_cancel_token_destroy(token);

    update_ladder(rc, result.status);
    col = 0;
    for (const auto& m : live) {
      const double* mx = x.data() + size_t(col * n);
      respond_solved(m, rc, result, effective_method, width, level, mx, n);
      col += m->nrhs;
    }
    release(batch.members.size());
  }

  void respond_solved(const ReqPtr& req, int rc, const bkr_result& result,
                      const std::string& method, int64_t width, int level, const double* x,
                      int64_t n) {
    if (rc == 1 || rc == 2) {
      finish(req, "{\"id\":\"" + json_escape(req->id) +
                      "\",\"status\":\"error\",\"error\":\"solver error\",\"code\":" +
                      std::to_string(rc) + "}");
      return;
    }
    const bkr_status status = result.status;
    if (status == BKR_STATUS_CANCELLED) counters_.cancelled.fetch_add(1);
    else if (status == BKR_STATUS_DEADLINE_EXCEEDED) counters_.deadline.fetch_add(1);
    else counters_.solved.fetch_add(1);
    const uint64_t hash =
        bkr::fnv1a64(x, size_t(n * req->nrhs) * sizeof(double));
    char head[512];
    std::snprintf(head, sizeof head,
                  "{\"id\":\"%s\",\"status\":\"%s\",\"converged\":%d,\"iterations\":%lld,"
                  "\"warm_start\":%d,\"batch_width\":%lld,\"method\":\"%s\",\"degraded\":%d,"
                  "\"seconds\":%.6g,\"x_hash\":\"%016llx\"",
                  json_escape(req->id).c_str(), status_to_name(status), result.converged,
                  static_cast<long long>(result.iterations), result.warm_start,
                  static_cast<long long>(width), method.c_str(), level, result.seconds,
                  static_cast<unsigned long long>(hash));
    std::string out(head);
    if (req->return_x) {
      out += ",\"x\":[";
      char num[32];
      for (int64_t i = 0; i < n * req->nrhs; ++i) {
        std::snprintf(num, sizeof num, "%.17g", x[i]);
        if (i != 0) out.push_back(',');
        out += num;
      }
      out.push_back(']');
    }
    out.push_back('}');
    finish(req, out);
  }

  /* -- graceful-degradation ladder -- */

  void update_ladder(int rc, bkr_status status) {
    std::lock_guard<std::mutex> lock(ladder_mutex_);
    const bool hard = rc == 2 || rc == 3 || (rc == 0 && is_hard_failure(status));
    if (hard) {
      heals_ = 0;
      if (++strikes_ >= 2) {
        strikes_ = 0;
        const int cur = level_.load();
        if (cur < kLadderMax) {
          level_.store(cur + 1);
          emit_degrade_event(cur, cur + 1, "hard-failures");
        }
      }
    } else if (status == BKR_STATUS_CONVERGED) {
      strikes_ = 0;
      if (++heals_ >= 4) {
        heals_ = 0;
        const int cur = level_.load();
        if (cur > 0) {
          level_.store(cur - 1);
          emit_degrade_event(cur, cur - 1, "recovered");
        }
      }
    }
  }

  /* -- watchdog: sheds queued/held requests past deadline; past the drain
        deadline it cancels whatever is still running. -- */

  void watchdog_loop() {
    while (!watchdog_stop_.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      const auto now = Clock::now();
      std::vector<ReqPtr> expired;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto sweep = [&](std::vector<ReqPtr>& members) {
          auto keep = members.begin();
          for (auto& m : members) {
            if (m->has_deadline() && now >= m->deadline()) expired.push_back(m);
            else *keep++ = m;
          }
          members.erase(keep, members.end());
        };
        for (auto& batch : queue_) sweep(batch.members);
        while (!queue_.empty() && queue_.front().members.empty()) queue_.pop_front();
        for (auto& [key, members] : holds_) sweep(members);
        if (draining_.load() && now >= drain_deadline_) {
          for (auto& [id, req] : registry_)
            if (req->active_token != nullptr) {
              req->cancelled.store(true);
              bkr_cancel_token_cancel(req->active_token);
            }
        }
      }
      for (const auto& m : expired) finish_status(m, "deadline-exceeded");
    }
  }

  std::string stats_json() {
    std::lock_guard<std::mutex> lock(mutex_);
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "{\"event\":\"stats\",\"received\":%lld,\"solved\":%lld,\"overloaded\":%lld,"
                  "\"cancelled\":%lld,\"deadline_exceeded\":%lld,\"rejected\":%lld,"
                  "\"batches\":%lld,\"queued\":%lld,\"in_flight\":%lld,\"degrade_level\":%d,"
                  "\"cache_entries\":%lld,\"cache_hits\":%lld,\"cache_misses\":%lld}",
                  counters_.received.load(), counters_.solved.load(),
                  counters_.overloaded.load(), counters_.cancelled.load(),
                  counters_.deadline.load(), counters_.rejected.load(),
                  counters_.batches.load(), static_cast<long long>(queue_.size()),
                  static_cast<long long>(in_flight_), level_.load(),
                  static_cast<long long>(bkr_cache_entries(cache_)),
                  static_cast<long long>(bkr_cache_hits(cache_)),
                  static_cast<long long>(bkr_cache_misses(cache_)));
    return buf;
  }

  ServerConfig cfg_;
  bkr::ThreadPool pool_;  // worker lanes run here via the dispatcher
  std::thread dispatcher_;
  std::thread watchdog_;
  MatrixRegistry matrices_;
  bkr_cache* cache_ = nullptr;

  std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::condition_variable drained_cv_;
  std::deque<Batch> queue_;
  std::map<std::string, std::vector<ReqPtr>> holds_;
  std::map<std::string, ReqPtr> registry_;  // admitted, not yet responded
  std::map<std::string, int64_t> tenant_in_flight_;
  int64_t admitted_ = 0;   // queued + held + running
  int64_t in_flight_ = 0;  // members currently owned by a worker
  bool stop_ = false;

  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> watchdog_stop_{false};
  Clock::time_point drain_deadline_{};

  std::mutex ladder_mutex_;
  std::atomic<int> level_{0};
  int strikes_ = 0;
  int heals_ = 0;

  Counters counters_;
};

/* ---- front ends ------------------------------------------------------- */

// Reads `fd` line by line with a poll timeout so SIGTERM is noticed even
// while idle. Returns when EOF is hit or shutdown is requested.
void serve_fd(Server& server, int fd, const std::shared_ptr<Connection>& conn) {
  std::string buffer;
  char chunk[4096];
  while (g_sigterm == 0 && !server.shutdown_requested()) {
    struct pollfd pfd = {fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 100);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pr == 0) continue;
    const ssize_t r = ::read(fd, chunk, sizeof chunk);
    if (r <= 0) break;  // EOF: graceful shutdown
    buffer.append(chunk, size_t(r));
    size_t nl = 0;
    while ((nl = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (!line.empty()) server.handle_line(line, conn);
    }
  }
}

int run_pipe_mode(const ServerConfig& cfg) {
  Server server(cfg);
  auto conn = std::make_shared<Connection>(STDOUT_FILENO);
  serve_fd(server, STDIN_FILENO, conn);
  server.drain_and_stop();
  return 0;
}

int run_socket_mode(const ServerConfig& cfg, const std::string& path) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("bkr_serve: socket");
    return 1;
  }
  ::unlink(path.c_str());
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::bind(listener, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listener, 16) != 0) {
    std::perror("bkr_serve: bind/listen");
    ::close(listener);
    return 1;
  }
  std::fprintf(stderr, "bkr_serve: listening on %s\n", path.c_str());
  Server server(cfg);
  std::vector<std::thread> clients;
  while (g_sigterm == 0 && !server.shutdown_requested()) {
    struct pollfd pfd = {listener, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 100);
    if (pr < 0 && errno != EINTR) break;
    if (pr <= 0) continue;
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) continue;
    clients.emplace_back([&server, fd] {
      auto conn = std::make_shared<Connection>(fd);
      serve_fd(server, fd, conn);
      ::close(fd);
    });
  }
  ::close(listener);
  ::unlink(path.c_str());
  for (auto& c : clients) c.join();
  server.drain_and_stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bkr::Options opts(argc, argv);
  if (opts.has("help")) {
    std::printf(
        "bkr_serve: multi-tenant solve server (DESIGN.md §15)\n"
        "  -socket PATH      listen on a Unix socket (default: stdin/stdout pipe mode)\n"
        "  -workers N        solve worker lanes (2)\n"
        "  -queue N          admission-queue capacity in requests (64)\n"
        "  -tenant_cap N     max in-flight requests per tenant (8)\n"
        "  -drain_ms N       shutdown drain budget before in-flight solves are cancelled (5000)\n"
        "  -cache_file FILE  load the recycle-space cache at start, snapshot it at shutdown\n"
        "  -cache_budget B   cache byte budget (library default)\n"
        "  -check_snapshot FILE  utility: exit 0 iff FILE is a loadable cache snapshot\n");
    return 0;
  }
  if (opts.has("check_snapshot")) {
    const std::string path = opts.get("check_snapshot", std::string(""));
    bkr_cache* cache = bkr_cache_create(0);
    const int rc = bkr_cache_load(cache, path.c_str());
    std::printf("%s: %s (%lld entries)\n", path.c_str(), rc == 0 ? "loadable" : "NOT loadable",
                static_cast<long long>(bkr_cache_entries(cache)));
    bkr_cache_destroy(cache);
    return rc == 0 ? 0 : 1;
  }

  ServerConfig cfg;
  cfg.workers = std::max<bkr::index_t>(1, opts.get("workers", bkr::index_t(2)));
  cfg.queue_limit = std::max<bkr::index_t>(1, opts.get("queue", bkr::index_t(64)));
  cfg.tenant_cap = std::max<bkr::index_t>(1, opts.get("tenant_cap", bkr::index_t(8)));
  cfg.drain_ms = std::max<bkr::index_t>(0, opts.get("drain_ms", bkr::index_t(5000)));
  cfg.cache_budget = std::max<bkr::index_t>(0, opts.get("cache_budget", bkr::index_t(0)));
  cfg.cache_file = opts.get("cache_file", std::string(""));

  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = on_term_signal;
  ::sigaction(SIGTERM, &sa, nullptr);  // no SA_RESTART: interrupt blocking reads
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  const std::string socket_path = opts.get("socket", std::string(""));
  return socket_path.empty() ? run_pipe_mode(cfg) : run_socket_mode(cfg, socket_path);
}
