file(REMOVE_RECURSE
  "CMakeFiles/example_heat_implicit.dir/heat_implicit.cpp.o"
  "CMakeFiles/example_heat_implicit.dir/heat_implicit.cpp.o.d"
  "example_heat_implicit"
  "example_heat_implicit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_heat_implicit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
