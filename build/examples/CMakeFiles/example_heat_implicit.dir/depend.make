# Empty dependencies file for example_heat_implicit.
# This may be replaced when dependencies are built.
