file(REMOVE_RECURSE
  "CMakeFiles/example_solver_driver.dir/solver_driver.cpp.o"
  "CMakeFiles/example_solver_driver.dir/solver_driver.cpp.o.d"
  "example_solver_driver"
  "example_solver_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_solver_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
