# Empty dependencies file for example_solver_driver.
# This may be replaced when dependencies are built.
