file(REMOVE_RECURSE
  "CMakeFiles/example_shape_optimization.dir/shape_optimization.cpp.o"
  "CMakeFiles/example_shape_optimization.dir/shape_optimization.cpp.o.d"
  "example_shape_optimization"
  "example_shape_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_shape_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
