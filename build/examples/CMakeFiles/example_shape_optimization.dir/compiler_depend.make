# Empty compiler generated dependencies file for example_shape_optimization.
# This may be replaced when dependencies are built.
