file(REMOVE_RECURSE
  "CMakeFiles/example_microwave_imaging.dir/microwave_imaging.cpp.o"
  "CMakeFiles/example_microwave_imaging.dir/microwave_imaging.cpp.o.d"
  "example_microwave_imaging"
  "example_microwave_imaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_microwave_imaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
