# Empty compiler generated dependencies file for example_microwave_imaging.
# This may be replaced when dependencies are built.
