file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_maxwell_precond.dir/bench_fig4_maxwell_precond.cpp.o"
  "CMakeFiles/bench_fig4_maxwell_precond.dir/bench_fig4_maxwell_precond.cpp.o.d"
  "bench_fig4_maxwell_precond"
  "bench_fig4_maxwell_precond.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_maxwell_precond.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
