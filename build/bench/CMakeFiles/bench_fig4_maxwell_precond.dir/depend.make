# Empty dependencies file for bench_fig4_maxwell_precond.
# This may be replaced when dependencies are built.
