file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_poisson.dir/bench_fig2_poisson.cpp.o"
  "CMakeFiles/bench_fig2_poisson.dir/bench_fig2_poisson.cpp.o.d"
  "bench_fig2_poisson"
  "bench_fig2_poisson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_poisson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
