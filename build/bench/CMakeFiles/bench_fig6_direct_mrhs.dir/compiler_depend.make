# Empty compiler generated dependencies file for bench_fig6_direct_mrhs.
# This may be replaced when dependencies are built.
