file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_direct_mrhs.dir/bench_fig6_direct_mrhs.cpp.o"
  "CMakeFiles/bench_fig6_direct_mrhs.dir/bench_fig6_direct_mrhs.cpp.o.d"
  "bench_fig6_direct_mrhs"
  "bench_fig6_direct_mrhs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_direct_mrhs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
