# Empty dependencies file for bench_fig3_elasticity.
# This may be replaced when dependencies are built.
