file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_elasticity.dir/bench_fig3_elasticity.cpp.o"
  "CMakeFiles/bench_fig3_elasticity.dir/bench_fig3_elasticity.cpp.o.d"
  "bench_fig3_elasticity"
  "bench_fig3_elasticity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_elasticity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
