# Empty dependencies file for bench_fig8_alternatives.
# This may be replaced when dependencies are built.
