file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_alternatives.dir/bench_fig8_alternatives.cpp.o"
  "CMakeFiles/bench_fig8_alternatives.dir/bench_fig8_alternatives.cpp.o.d"
  "bench_fig8_alternatives"
  "bench_fig8_alternatives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_alternatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
