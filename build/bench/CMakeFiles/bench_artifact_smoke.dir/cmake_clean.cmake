file(REMOVE_RECURSE
  "CMakeFiles/bench_artifact_smoke.dir/bench_artifact_smoke.cpp.o"
  "CMakeFiles/bench_artifact_smoke.dir/bench_artifact_smoke.cpp.o.d"
  "bench_artifact_smoke"
  "bench_artifact_smoke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_artifact_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
