# Empty compiler generated dependencies file for bench_artifact_smoke.
# This may be replaced when dependencies are built.
