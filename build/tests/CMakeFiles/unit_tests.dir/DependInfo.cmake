
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_block_cg.cpp" "tests/CMakeFiles/unit_tests.dir/test_block_cg.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_block_cg.cpp.o.d"
  "/root/repo/tests/test_capi.cpp" "tests/CMakeFiles/unit_tests.dir/test_capi.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_capi.cpp.o.d"
  "/root/repo/tests/test_complex_solvers.cpp" "tests/CMakeFiles/unit_tests.dir/test_complex_solvers.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_complex_solvers.cpp.o.d"
  "/root/repo/tests/test_direct.cpp" "tests/CMakeFiles/unit_tests.dir/test_direct.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_direct.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/unit_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_fem.cpp" "tests/CMakeFiles/unit_tests.dir/test_fem.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_fem.cpp.o.d"
  "/root/repo/tests/test_gcrodr.cpp" "tests/CMakeFiles/unit_tests.dir/test_gcrodr.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_gcrodr.cpp.o.d"
  "/root/repo/tests/test_gmres.cpp" "tests/CMakeFiles/unit_tests.dir/test_gmres.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_gmres.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/unit_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_invariants.cpp" "tests/CMakeFiles/unit_tests.dir/test_invariants.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_invariants.cpp.o.d"
  "/root/repo/tests/test_la_dense.cpp" "tests/CMakeFiles/unit_tests.dir/test_la_dense.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_la_dense.cpp.o.d"
  "/root/repo/tests/test_la_eig.cpp" "tests/CMakeFiles/unit_tests.dir/test_la_eig.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_la_eig.cpp.o.d"
  "/root/repo/tests/test_la_qr.cpp" "tests/CMakeFiles/unit_tests.dir/test_la_qr.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_la_qr.cpp.o.d"
  "/root/repo/tests/test_matrix_market.cpp" "tests/CMakeFiles/unit_tests.dir/test_matrix_market.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_matrix_market.cpp.o.d"
  "/root/repo/tests/test_options_and_sweeps.cpp" "tests/CMakeFiles/unit_tests.dir/test_options_and_sweeps.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_options_and_sweeps.cpp.o.d"
  "/root/repo/tests/test_parallel.cpp" "tests/CMakeFiles/unit_tests.dir/test_parallel.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_parallel.cpp.o.d"
  "/root/repo/tests/test_precond.cpp" "tests/CMakeFiles/unit_tests.dir/test_precond.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_precond.cpp.o.d"
  "/root/repo/tests/test_solvers_misc.cpp" "tests/CMakeFiles/unit_tests.dir/test_solvers_misc.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_solvers_misc.cpp.o.d"
  "/root/repo/tests/test_sparse.cpp" "tests/CMakeFiles/unit_tests.dir/test_sparse.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_sparse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bkr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
