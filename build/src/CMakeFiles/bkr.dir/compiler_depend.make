# Empty compiler generated dependencies file for bkr.
# This may be replaced when dependencies are built.
