file(REMOVE_RECURSE
  "libbkr.a"
)
