
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/capi/bkr_c.cpp" "src/CMakeFiles/bkr.dir/capi/bkr_c.cpp.o" "gcc" "src/CMakeFiles/bkr.dir/capi/bkr_c.cpp.o.d"
  "/root/repo/src/core/block_cg.cpp" "src/CMakeFiles/bkr.dir/core/block_cg.cpp.o" "gcc" "src/CMakeFiles/bkr.dir/core/block_cg.cpp.o.d"
  "/root/repo/src/core/cg.cpp" "src/CMakeFiles/bkr.dir/core/cg.cpp.o" "gcc" "src/CMakeFiles/bkr.dir/core/cg.cpp.o.d"
  "/root/repo/src/core/gcrodr.cpp" "src/CMakeFiles/bkr.dir/core/gcrodr.cpp.o" "gcc" "src/CMakeFiles/bkr.dir/core/gcrodr.cpp.o.d"
  "/root/repo/src/core/gmres.cpp" "src/CMakeFiles/bkr.dir/core/gmres.cpp.o" "gcc" "src/CMakeFiles/bkr.dir/core/gmres.cpp.o.d"
  "/root/repo/src/core/lgmres.cpp" "src/CMakeFiles/bkr.dir/core/lgmres.cpp.o" "gcc" "src/CMakeFiles/bkr.dir/core/lgmres.cpp.o.d"
  "/root/repo/src/core/pseudo_gcrodr.cpp" "src/CMakeFiles/bkr.dir/core/pseudo_gcrodr.cpp.o" "gcc" "src/CMakeFiles/bkr.dir/core/pseudo_gcrodr.cpp.o.d"
  "/root/repo/src/direct/factor.cpp" "src/CMakeFiles/bkr.dir/direct/factor.cpp.o" "gcc" "src/CMakeFiles/bkr.dir/direct/factor.cpp.o.d"
  "/root/repo/src/direct/ordering.cpp" "src/CMakeFiles/bkr.dir/direct/ordering.cpp.o" "gcc" "src/CMakeFiles/bkr.dir/direct/ordering.cpp.o.d"
  "/root/repo/src/fem/elasticity3d.cpp" "src/CMakeFiles/bkr.dir/fem/elasticity3d.cpp.o" "gcc" "src/CMakeFiles/bkr.dir/fem/elasticity3d.cpp.o.d"
  "/root/repo/src/fem/maxwell3d.cpp" "src/CMakeFiles/bkr.dir/fem/maxwell3d.cpp.o" "gcc" "src/CMakeFiles/bkr.dir/fem/maxwell3d.cpp.o.d"
  "/root/repo/src/fem/poisson2d.cpp" "src/CMakeFiles/bkr.dir/fem/poisson2d.cpp.o" "gcc" "src/CMakeFiles/bkr.dir/fem/poisson2d.cpp.o.d"
  "/root/repo/src/la/eig.cpp" "src/CMakeFiles/bkr.dir/la/eig.cpp.o" "gcc" "src/CMakeFiles/bkr.dir/la/eig.cpp.o.d"
  "/root/repo/src/la/qr.cpp" "src/CMakeFiles/bkr.dir/la/qr.cpp.o" "gcc" "src/CMakeFiles/bkr.dir/la/qr.cpp.o.d"
  "/root/repo/src/parallel/comm_model.cpp" "src/CMakeFiles/bkr.dir/parallel/comm_model.cpp.o" "gcc" "src/CMakeFiles/bkr.dir/parallel/comm_model.cpp.o.d"
  "/root/repo/src/parallel/thread_pool.cpp" "src/CMakeFiles/bkr.dir/parallel/thread_pool.cpp.o" "gcc" "src/CMakeFiles/bkr.dir/parallel/thread_pool.cpp.o.d"
  "/root/repo/src/precond/amg.cpp" "src/CMakeFiles/bkr.dir/precond/amg.cpp.o" "gcc" "src/CMakeFiles/bkr.dir/precond/amg.cpp.o.d"
  "/root/repo/src/precond/chebyshev.cpp" "src/CMakeFiles/bkr.dir/precond/chebyshev.cpp.o" "gcc" "src/CMakeFiles/bkr.dir/precond/chebyshev.cpp.o.d"
  "/root/repo/src/precond/schwarz.cpp" "src/CMakeFiles/bkr.dir/precond/schwarz.cpp.o" "gcc" "src/CMakeFiles/bkr.dir/precond/schwarz.cpp.o.d"
  "/root/repo/src/sparse/graph.cpp" "src/CMakeFiles/bkr.dir/sparse/graph.cpp.o" "gcc" "src/CMakeFiles/bkr.dir/sparse/graph.cpp.o.d"
  "/root/repo/src/sparse/matrix_market.cpp" "src/CMakeFiles/bkr.dir/sparse/matrix_market.cpp.o" "gcc" "src/CMakeFiles/bkr.dir/sparse/matrix_market.cpp.o.d"
  "/root/repo/src/sparse/partition.cpp" "src/CMakeFiles/bkr.dir/sparse/partition.cpp.o" "gcc" "src/CMakeFiles/bkr.dir/sparse/partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
