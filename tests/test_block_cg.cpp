// Tests: Block Conjugate Gradient (O'Leary).
#include <gtest/gtest.h>

#include "core/block_cg.hpp"
#include "core/cg.hpp"
#include "fem/poisson2d.hpp"
#include "precond/jacobi.hpp"
#include "test_helpers.hpp"

namespace bkr {
namespace {

using testing::random_matrix;

TEST(BlockCg, SolvesSpdBlockSystem) {
  const auto a = poisson2d(14, 14);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  const auto b = random_matrix<double>(n, 5, 61);
  DenseMatrix<double> x(n, 5);
  SolverOptions opts;
  opts.tol = 1e-9;
  opts.max_iterations = 1000;
  const auto st = block_cg<double>(op, nullptr, b.view(), x.view(), opts);
  ASSERT_TRUE(st.converged);
  DenseMatrix<double> check(n, 5);
  a.spmm(x.view(), check.view());
  EXPECT_LT(testing::diff_fro<double>(check.view(), b.view()), 1e-6);
}

TEST(BlockCg, FewerIterationsThanFusedCg) {
  // The block method shares one Krylov space across the RHS; it must beat
  // the fused-but-independent recurrences on iteration count.
  const auto a = poisson2d(20, 20);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  const auto b = random_matrix<double>(n, 6, 62);
  SolverOptions opts;
  opts.tol = 1e-8;
  opts.max_iterations = 3000;
  DenseMatrix<double> x1(n, 6), x2(n, 6);
  const auto sblock = block_cg<double>(op, nullptr, b.view(), x1.view(), opts);
  const auto sfused = cg<double>(op, nullptr, b.view(), x2.view(), opts);
  ASSERT_TRUE(sblock.converged);
  ASSERT_TRUE(sfused.converged);
  EXPECT_LT(sblock.iterations, sfused.iterations);
}

TEST(BlockCg, SingleRhsMatchesCg) {
  const auto a = poisson2d(12, 12);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(12, 12, 0.1);
  SolverOptions opts;
  opts.tol = 1e-9;
  opts.max_iterations = 1000;
  std::vector<double> x1(b.size(), 0.0), x2(b.size(), 0.0);
  const auto s1 = block_cg<double>(op, nullptr, MatrixView<const double>(b.data(), n, 1, n),
                                   MatrixView<double>(x1.data(), n, 1, n), opts);
  const auto s2 = cg<double>(op, nullptr, b, x2, opts);
  ASSERT_TRUE(s1.converged);
  ASSERT_TRUE(s2.converged);
  EXPECT_EQ(s1.iterations, s2.iterations);
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(x1[size_t(i)], x2[size_t(i)], 1e-8);
}

TEST(BlockCg, JacobiPreconditioned) {
  const auto a = poisson2d(16, 16);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  JacobiPreconditioner<double> m(a);
  const auto b = random_matrix<double>(n, 3, 63);
  DenseMatrix<double> x(n, 3);
  SolverOptions opts;
  opts.tol = 1e-9;
  opts.max_iterations = 1000;
  const auto st = block_cg<double>(op, &m, b.view(), x.view(), opts);
  ASSERT_TRUE(st.converged);
  DenseMatrix<double> check(n, 3);
  a.spmm(x.view(), check.view());
  EXPECT_LT(testing::diff_fro<double>(check.view(), b.view()), 1e-6);
}

TEST(BlockCg, SurvivesDuplicateColumns) {
  // Identical RHS columns make rho singular immediately; block CG must
  // stop gracefully (break on singular LU), not crash or diverge.
  const auto a = poisson2d(8, 8);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  DenseMatrix<double> b(n, 2);
  const auto f = poisson2d_rhs(8, 8, 1.0);
  std::copy(f.begin(), f.end(), b.col(0));
  std::copy(f.begin(), f.end(), b.col(1));
  DenseMatrix<double> x(n, 2);
  SolverOptions opts;
  opts.tol = 1e-8;
  opts.max_iterations = 500;
  const auto st = block_cg<double>(op, nullptr, b.view(), x.view(), opts);
  // Either it converges (regularized path) or it stops; both are
  // acceptable — it must not produce NaNs.
  for (index_t c = 0; c < 2; ++c)
    for (index_t i = 0; i < n; ++i) EXPECT_TRUE(std::isfinite(x(i, c)));
  (void)st;
}

}  // namespace
}  // namespace bkr
