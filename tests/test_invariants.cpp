// Algorithmic invariants: properties the methods must satisfy by
// construction, checked explicitly.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "core/gcrodr.hpp"
#include "core/gmres.hpp"
#include "fem/poisson2d.hpp"
#include "test_helpers.hpp"

namespace bkr {
namespace {

using testing::random_matrix;

TEST(Invariants, GmresEstimateEqualsTrueResidual) {
  // Within one (unrestarted) cycle the least-squares residual estimate is
  // the true residual: run to several tolerances and compare.
  const auto a = poisson2d(10, 10);
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(10, 10, 10.0);
  for (const double tol : {1e-4, 1e-8, 1e-12}) {
    SolverOptions opts;
    opts.restart = 150;
    opts.tol = tol;
    std::vector<double> x(b.size(), 0.0);
    const auto st = gmres<double>(op, nullptr, b, x, opts);
    ASSERT_TRUE(st.converged);
    const double est = st.history[0].back();
    const double truth = testing::relative_residual(a, x, b);
    EXPECT_NEAR(est, truth, 1e-10 + 0.05 * truth) << "tol " << tol;
  }
}

TEST(Invariants, GmresResidualsMatchMinimization) {
  // The GMRES iterate minimizes over the Krylov space: running with a
  // larger restart never increases the residual at a given iteration.
  const auto a = poisson2d(12, 12);
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(12, 12, 0.1);
  SolverOptions small, big;
  small.restart = 10;
  big.restart = 200;
  small.tol = big.tol = 1e-10;
  small.max_iterations = big.max_iterations = 400;
  std::vector<double> x1(b.size(), 0.0), x2(b.size(), 0.0);
  const auto s1 = gmres<double>(op, nullptr, b, x1, small);
  const auto s2 = gmres<double>(op, nullptr, b, x2, big);
  ASSERT_TRUE(s1.converged);
  ASSERT_TRUE(s2.converged);
  const auto& h1 = s1.history[0];
  const auto& h2 = s2.history[0];
  for (size_t i = 0; i < std::min(h1.size(), h2.size()); ++i)
    EXPECT_LE(h2[i], h1[i] * (1 + 1e-8)) << "iteration " << i;
}

TEST(Invariants, GcroDrEqualsFullGmresWhenSpaceCoversProblem) {
  // On a small problem with restart > n, GCRO-DR's first cycle IS full
  // GMRES: iteration counts agree.
  const auto a = poisson2d(5, 5);  // n = 25
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(5, 5, 1.0);
  SolverOptions opts;
  opts.restart = 40;
  opts.tol = 1e-10;
  std::vector<double> xg(b.size(), 0.0), xc(b.size(), 0.0);
  const auto sg = gmres<double>(op, nullptr, b, xg, opts);
  auto gopts = opts;
  gopts.recycle = 5;
  GcroDr<double> solver(gopts);
  const auto sc = solver.solve(op, nullptr, MatrixView<const double>(b.data(), n, 1, n),
                               MatrixView<double>(xc.data(), n, 1, n));
  ASSERT_TRUE(sg.converged);
  ASSERT_TRUE(sc.converged);
  EXPECT_EQ(sg.iterations, sc.iterations);
}

TEST(Invariants, RecycledSpaceOrthogonalityAfterManySolves) {
  // C_k stays orthonormal and A U_k = C_k holds after a long sequence
  // (the CGS2 stability fix keeps the defect at machine level).
  const auto a = poisson2d(12, 12);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  SolverOptions opts;
  opts.restart = 15;
  opts.recycle = 5;
  opts.tol = 1e-9;
  GcroDr<double> solver(opts);
  Rng rng(41);
  for (int s = 0; s < 6; ++s) {
    std::vector<double> b(static_cast<size_t>(n));
    for (auto& v : b) v = rng.scalar<double>();
    std::vector<double> x(b.size(), 0.0);
    ASSERT_TRUE(solver
                    .solve(op, nullptr, MatrixView<const double>(b.data(), n, 1, n),
                           MatrixView<double>(x.data(), n, 1, n), nullptr, false)
                    .converged);
    const auto& u = solver.recycled_u();
    const auto& c = solver.recycled_c();
    EXPECT_LT(testing::ortho_defect<double>(c.view()), 1e-10) << "solve " << s;
    DenseMatrix<double> au(n, u.cols());
    a.spmm(u.view(), au.view());
    EXPECT_LT(testing::diff_fro<double>(au.view(), c.view()), 1e-9) << "solve " << s;
  }
}

TEST(Invariants, BlockGmresBasisOrthonormal) {
  // Sample the block Arnoldi basis orthonormality indirectly: two block
  // solves from different initial guesses land on the same solution.
  const auto a = poisson2d(9, 9);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  const auto b = random_matrix<double>(n, 3, 43);
  SolverOptions opts;
  opts.restart = 90;
  opts.tol = 1e-11;
  DenseMatrix<double> x1(n, 3);
  DenseMatrix<double> x2 = random_matrix<double>(n, 3, 44);
  ASSERT_TRUE(block_gmres<double>(op, nullptr, b.view(), x1.view(), opts).converged);
  ASSERT_TRUE(block_gmres<double>(op, nullptr, b.view(), x2.view(), opts).converged);
  EXPECT_LT(testing::diff_fro<double>(x1.view(), x2.view()), 1e-7);
}

TEST(Invariants, ReductionCountIndependentOfValues) {
  // Communication counts are structural: two different RHS with the same
  // iteration count produce identical reduction counts.
  const auto a = poisson2d(10, 10);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  SolverOptions opts;
  opts.restart = 12;
  opts.tol = 1e-8;
  opts.max_iterations = 31;  // fixed budget, convergence unreachable
  opts.tol = 1e-16;
  std::int64_t reductions[2];
  for (int trial = 0; trial < 2; ++trial) {
    Rng rng(unsigned(50 + trial));
    std::vector<double> b(static_cast<size_t>(n));
    for (auto& v : b) v = rng.scalar<double>();
    std::vector<double> x(b.size(), 0.0);
    const auto st = gmres<double>(op, nullptr, b, x, opts);
    EXPECT_EQ(st.iterations, 31);
    reductions[trial] = st.reductions;
  }
  EXPECT_EQ(reductions[0], reductions[1]);
}

TEST(Invariants, PerRhsIterationsBoundedByTotal) {
  const auto a = poisson2d(10, 10);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  const auto b = random_matrix<double>(n, 4, 45);
  SolverOptions opts;
  opts.restart = 80;
  opts.tol = 1e-8;
  DenseMatrix<double> x(n, 4);
  const auto st = pseudo_block_gmres<double>(op, nullptr, b.view(), x.view(), opts);
  ASSERT_TRUE(st.converged);
  for (index_t c = 0; c < 4; ++c) {
    EXPECT_LE(st.per_rhs_iterations[size_t(c)], st.iterations);
    EXPECT_GT(st.per_rhs_iterations[size_t(c)], 0);
    // history = initial residual + one entry per recorded iteration; the
    // converging iteration is recorded but not counted in per_rhs.
    EXPECT_EQ(st.history[size_t(c)].size(), size_t(st.per_rhs_iterations[size_t(c)]) + 2);
  }
}

}  // namespace
}  // namespace bkr
