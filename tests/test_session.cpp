// SolverSession conformance and warm-start suite.
//
// The contract under test (core/session.hpp): a cold session's first
// solve is bitwise identical to the corresponding one-shot entry point at
// every lane count; later solves of the recycling methods get cheaper;
// a session warm-started from a RecycleCache beats its cold reference on
// first-solve iterations (the PR's acceptance assertion); SolveStats
// resets per call while SessionStats accumulates.
#include <gtest/gtest.h>

#include <complex>
#include <thread>  // bkr-lint: allow(unpooled-thread)
#include <vector>

#include "core/session.hpp"
#include "fem/poisson2d.hpp"
#include "obs/trace.hpp"
#include "parallel/kernel_executor.hpp"
#include "test_helpers.hpp"

namespace bkr {
namespace {

using cplx = std::complex<double>;

constexpr KernelCutoffs kForceParallel{1, 1, 1};

// Multi-RHS block: fig-2 source in column 0 plus perturbed copies.
DenseMatrix<double> poisson_rhs_block(index_t nx, index_t ny, index_t p) {
  const auto base = poisson2d_rhs(nx, ny, 0.1);
  const index_t n = index_t(base.size());
  DenseMatrix<double> b(n, p);
  for (index_t c = 0; c < p; ++c)
    for (index_t i = 0; i < n; ++i)
      b(i, c) = base[size_t(i)] + 0.05 * double(c) * std::sin(double(i + 1) * double(c + 1));
  return b;
}

SolverOptions base_opts() {
  SolverOptions opts;
  opts.restart = 50;
  opts.tol = 1e-9;
  return opts;
}

void expect_same_stats(const SolveStats& got, const SolveStats& ref, index_t lanes,
                       const char* what) {
  EXPECT_EQ(got.converged, ref.converged) << what << " lanes=" << lanes;
  EXPECT_EQ(got.status, ref.status) << what << " lanes=" << lanes;
  EXPECT_EQ(got.iterations, ref.iterations) << what << " lanes=" << lanes;
  EXPECT_EQ(got.cycles, ref.cycles) << what << " lanes=" << lanes;
  EXPECT_EQ(got.reductions, ref.reductions) << what << " lanes=" << lanes;
  EXPECT_EQ(got.operator_applies, ref.operator_applies) << what << " lanes=" << lanes;
  EXPECT_EQ(got.precond_applies, ref.precond_applies) << what << " lanes=" << lanes;
  EXPECT_EQ(got.per_rhs_iterations, ref.per_rhs_iterations) << what << " lanes=" << lanes;
  ASSERT_EQ(got.history.size(), ref.history.size()) << what << " lanes=" << lanes;
  for (size_t c = 0; c < ref.history.size(); ++c)
    EXPECT_EQ(got.history[c], ref.history[c])
        << what << " lanes=" << lanes << " rhs=" << c << " (residual history diverged)";
}

template <class T>
void expect_same_solution(const DenseMatrix<T>& got, const DenseMatrix<T>& ref, index_t lanes,
                          const char* what) {
  ASSERT_EQ(got.rows(), ref.rows());
  ASSERT_EQ(got.cols(), ref.cols());
  for (index_t j = 0; j < ref.cols(); ++j)
    for (index_t i = 0; i < ref.rows(); ++i)
      EXPECT_EQ(got(i, j), ref(i, j)) << what << " lanes=" << lanes << " x(" << i << "," << j
                                      << ")";
}

// Conformance harness: at 1 lane and N lanes (cutoffs forced to 1 so the
// executor path is always exercised), a cold session's solves must match
// the one-shot reference produced by `oneshot(op, b, x, opts)` bitwise.
template <class T, class OneShot>
void check_conformance(const CsrMatrix<T>& a, const std::vector<DenseMatrix<T>>& rhs,
                       SessionMethod method, SolverOptions opts, OneShot oneshot,
                       const char* what) {
  for (index_t lanes : {index_t(1), index_t(4)}) {
    KernelExecutor ex(lanes, kForceParallel);
    SolverOptions lopts = opts;
    lopts.exec = &ex;

    CsrOperator<T> op(a, nullptr, &ex);
    std::vector<SolveStats> ref_stats;
    std::vector<DenseMatrix<T>> ref_x;
    for (size_t s = 0; s < rhs.size(); ++s) {
      ref_x.emplace_back(a.rows(), rhs[s].cols());
      ref_stats.push_back(oneshot(op, rhs[s], ref_x.back(), lopts, s));
    }

    SessionConfig cfg;
    cfg.method = method;
    cfg.options = lopts;
    SolverSession<T> session(a, nullptr, cfg);
    EXPECT_FALSE(session.warm_started());
    for (size_t s = 0; s < rhs.size(); ++s) {
      DenseMatrix<T> x(a.rows(), rhs[s].cols());
      const SolveStats st = session.solve(rhs[s].view(), x.view());
      EXPECT_TRUE(st.converged) << what << " lanes=" << lanes;
      expect_same_stats(st, ref_stats[s], lanes, what);
      expect_same_solution(x, ref_x[s], lanes, what);
    }
  }
}

TEST(SessionConformance, Cg) {
  const auto a = poisson2d(12, 12);
  check_conformance<double>(
      a, {poisson_rhs_block(12, 12, 1)}, SessionMethod::Cg, base_opts(),
      [](CsrOperator<double>& op, const DenseMatrix<double>& b, DenseMatrix<double>& x,
         const SolverOptions& o, size_t) { return cg<double>(op, nullptr, b.view(), x.view(), o); },
      "cg");
}

TEST(SessionConformance, BlockCg) {
  const auto a = poisson2d(12, 12);
  check_conformance<double>(
      a, {poisson_rhs_block(12, 12, 4)}, SessionMethod::BlockCg, base_opts(),
      [](CsrOperator<double>& op, const DenseMatrix<double>& b, DenseMatrix<double>& x,
         const SolverOptions& o, size_t) {
        return block_cg<double>(op, nullptr, b.view(), x.view(), o);
      },
      "block_cg");
}

TEST(SessionConformance, BlockGmres) {
  const auto a = poisson2d(12, 12);
  check_conformance<double>(
      a, {poisson_rhs_block(12, 12, 4)}, SessionMethod::BlockGmres, base_opts(),
      [](CsrOperator<double>& op, const DenseMatrix<double>& b, DenseMatrix<double>& x,
         const SolverOptions& o, size_t) {
        return block_gmres<double>(op, nullptr, b.view(), x.view(), o);
      },
      "block_gmres");
}

TEST(SessionConformance, PseudoBlockGmres) {
  const auto a = poisson2d(12, 12);
  check_conformance<double>(
      a, {poisson_rhs_block(12, 12, 3)}, SessionMethod::PseudoBlockGmres, base_opts(),
      [](CsrOperator<double>& op, const DenseMatrix<double>& b, DenseMatrix<double>& x,
         const SolverOptions& o, size_t) {
        return pseudo_block_gmres<double>(op, nullptr, b.view(), x.view(), o);
      },
      "pseudo_block_gmres");
}

TEST(SessionConformance, Lgmres) {
  const auto a = poisson2d(12, 12);
  SolverOptions opts = base_opts();
  opts.restart = 30;
  opts.recycle = 2;  // augmentation vectors
  check_conformance<double>(
      a, {poisson_rhs_block(12, 12, 1)}, SessionMethod::Lgmres, opts,
      [](CsrOperator<double>& op, const DenseMatrix<double>& b, DenseMatrix<double>& x,
         const SolverOptions& o, size_t) {
        const index_t n = b.rows();
        std::vector<double> bv(b.col(0), b.col(0) + n), xv(size_t(n), 0.0);
        const SolveStats st = lgmres<double>(op, nullptr, bv, xv, o);
        std::copy(xv.begin(), xv.end(), x.col(0));
        return st;
      },
      "lgmres");
}

TEST(SessionConformance, GcroDrSequence) {
  const auto a = poisson2d(12, 12);
  SolverOptions opts = base_opts();
  opts.restart = 20;
  opts.recycle = 2;
  GcroDr<double> oneshot(opts);
  bool oneshot_ready = false;
  check_conformance<double>(
      a, {poisson_rhs_block(12, 12, 2), poisson_rhs_block(12, 12, 2)}, SessionMethod::GcroDr,
      opts,
      [&](CsrOperator<double>& op, const DenseMatrix<double>& b, DenseMatrix<double>& x,
          const SolverOptions& o, size_t s) {
        if (s == 0) {
          // Fresh reference solver per lane count, rebuilt with the
          // lane-local executor options.
          oneshot = GcroDr<double>(o);
          oneshot_ready = true;
        }
        EXPECT_TRUE(oneshot_ready);
        return oneshot.solve(op, nullptr, b.view(), x.view(), nullptr, /*new_matrix=*/s == 0);
      },
      "gcrodr");
}

TEST(SessionConformance, PseudoGcroDrSequence) {
  const auto a = poisson2d(12, 12);
  SolverOptions opts = base_opts();
  opts.restart = 20;
  opts.recycle = 2;
  PseudoGcroDr<double> oneshot(opts);
  check_conformance<double>(
      a, {poisson_rhs_block(12, 12, 3), poisson_rhs_block(12, 12, 3)},
      SessionMethod::PseudoGcroDr, opts,
      [&](CsrOperator<double>& op, const DenseMatrix<double>& b, DenseMatrix<double>& x,
          const SolverOptions& o, size_t s) {
        if (s == 0) oneshot = PseudoGcroDr<double>(o);
        return oneshot.solve(op, nullptr, b.view(), x.view(), nullptr, /*new_matrix=*/s == 0);
      },
      "pseudo_gcrodr");
}

TEST(SessionConformance, LgmresMultiRhsMatchesColumnRuns) {
  // The session's multi-RHS LGMRES batch is defined as back-to-back
  // column solves; pin the merged record against manual column runs.
  const auto a = poisson2d(10, 10);
  const index_t n = a.rows();
  const auto b = poisson_rhs_block(10, 10, 3);
  SolverOptions opts = base_opts();
  opts.restart = 25;
  opts.recycle = 2;

  CsrOperator<double> op(a);
  DenseMatrix<double> xref(n, 3);
  std::vector<SolveStats> cols;
  for (index_t c = 0; c < 3; ++c) {
    std::vector<double> bv(b.col(c), b.col(c) + n), xv(size_t(n), 0.0);
    cols.push_back(lgmres<double>(op, nullptr, bv, xv, opts));
    std::copy(xv.begin(), xv.end(), xref.col(c));
  }

  SessionConfig cfg;
  cfg.method = SessionMethod::Lgmres;
  cfg.options = opts;
  SolverSession<double> session(a, nullptr, cfg);
  DenseMatrix<double> x(n, 3);
  const SolveStats st = session.solve(b.view(), x.view());
  EXPECT_TRUE(st.converged);
  expect_same_solution(x, xref, 0, "lgmres batch");
  index_t worst = 0;
  std::int64_t applies = 0;
  ASSERT_EQ(st.per_rhs_iterations.size(), 3u);
  ASSERT_EQ(st.history.size(), 3u);
  for (index_t c = 0; c < 3; ++c) {
    worst = std::max(worst, cols[size_t(c)].iterations);
    applies += cols[size_t(c)].operator_applies;
    EXPECT_EQ(st.per_rhs_iterations[size_t(c)], cols[size_t(c)].iterations);
    EXPECT_EQ(st.history[size_t(c)], cols[size_t(c)].history[0]);
  }
  EXPECT_EQ(st.iterations, worst);
  EXPECT_EQ(st.operator_applies, applies);
}

TEST(Session, SecondSolveUsesRecycledSpace) {
  // The fig-2 scenario through the session: one operator, the four nu
  // sources; every later solve must beat the cold first one.
  const auto a = poisson2d(16, 16);
  const index_t n = a.rows();
  for (SessionMethod method : {SessionMethod::GcroDr, SessionMethod::PseudoGcroDr}) {
    SolverOptions opts;
    opts.restart = 25;
    opts.recycle = 8;
    opts.tol = 1e-9;
    SessionConfig cfg;
    cfg.method = method;
    cfg.options = opts;
    SolverSession<double> session(a, nullptr, cfg);
    std::vector<index_t> iters;
    for (const double nu : kPoissonNus) {
      const auto f = poisson2d_rhs(16, 16, nu);
      DenseMatrix<double> b(n, 1), x(n, 1);
      std::copy(f.begin(), f.end(), b.col(0));
      const auto st = session.solve(b.view(), x.view());
      ASSERT_TRUE(st.converged) << session_method_name(method);
      iters.push_back(st.iterations);
    }
    EXPECT_LT(iters[1], iters[0]) << session_method_name(method);
    EXPECT_LT(iters[2], iters[0]) << session_method_name(method);
    EXPECT_LT(iters[3], iters[0]) << session_method_name(method);
  }
}

// The acceptance assertion of this PR: a fresh session warm-started from
// the cache takes strictly fewer first-solve iterations than the cold
// session that populated it — for both recycling methods.
TEST(SessionWarmStart, WarmFirstSolveBeatsColdFirstSolve) {
  const auto a = poisson2d(20, 20);
  const index_t n = a.rows();
  for (SessionMethod method : {SessionMethod::GcroDr, SessionMethod::PseudoGcroDr}) {
    SolverOptions opts;
    opts.restart = 20;
    opts.recycle = 8;
    opts.tol = 1e-8;
    auto run_sequence = [&](RecycleCache* cache, bool* warm) {
      SessionConfig cfg;
      cfg.method = method;
      cfg.options = opts;
      cfg.cache = cache;
      SolverSession<double> session(a, nullptr, cfg);
      *warm = session.warm_started();
      index_t first = 0;
      for (size_t s = 0; s < 4; ++s) {
        const auto f = poisson2d_rhs(20, 20, kPoissonNus[s]);
        DenseMatrix<double> b(n, 1), x(n, 1);
        std::copy(f.begin(), f.end(), b.col(0));
        const auto st = session.solve(b.view(), x.view());
        EXPECT_TRUE(st.converged) << session_method_name(method);
        if (s == 0) first = st.iterations;
      }
      return first;  // session deposits its space on destruction
    };
    RecycleCache cache;
    bool warm = true;
    const index_t cold_first = run_sequence(&cache, &warm);
    EXPECT_FALSE(warm) << session_method_name(method);
    EXPECT_EQ(cache.counters().entries, 1u) << session_method_name(method);
    const index_t warm_first = run_sequence(&cache, &warm);
    EXPECT_TRUE(warm) << session_method_name(method);
    EXPECT_LT(warm_first, cold_first) << session_method_name(method);
  }
}

TEST(SessionWarmStart, MismatchedOperatorStaysCold) {
  // A cache populated by one operator must not warm-start a session on a
  // different operator (the fingerprint separates them).
  const auto a1 = poisson2d(14, 14);
  const auto a2 = poisson2d_varcoef(14, 14, 100.0, 4);
  SolverOptions opts;
  opts.restart = 20;
  opts.recycle = 6;
  RecycleCache cache;
  {
    SessionConfig cfg;
    cfg.method = SessionMethod::GcroDr;
    cfg.options = opts;
    cfg.cache = &cache;
    SolverSession<double> session(a1, nullptr, cfg);
    const auto f = poisson2d_rhs(14, 14, 0.1);
    DenseMatrix<double> b(a1.rows(), 1), x(a1.rows(), 1);
    std::copy(f.begin(), f.end(), b.col(0));
    ASSERT_TRUE(session.solve(b.view(), x.view()).converged);
  }
  SessionConfig cfg;
  cfg.method = SessionMethod::GcroDr;
  cfg.options = opts;
  cfg.cache = &cache;
  SolverSession<double> other(a2, nullptr, cfg);
  EXPECT_FALSE(other.warm_started());
  EXPECT_GE(cache.counters().misses, 1);
}

TEST(Session, StatsAccumulateWhilePerCallStatsReset) {
  // Satellite contract: SessionStats ACCUMULATES across solves;
  // the SolveStats returned by each call covers that call only.
  const auto a = poisson2d(12, 12);
  const index_t n = a.rows();
  SessionConfig cfg;
  cfg.method = SessionMethod::GcroDr;
  cfg.options.restart = 20;
  cfg.options.recycle = 4;
  SolverSession<double> session(a, nullptr, cfg);
  std::vector<SolveStats> calls;
  for (const double nu : {0.1, 10.0}) {
    const auto f = poisson2d_rhs(12, 12, nu);
    DenseMatrix<double> b(n, 1), x(n, 1);
    std::copy(f.begin(), f.end(), b.col(0));
    calls.push_back(session.solve(b.view(), x.view()));
    ASSERT_TRUE(calls.back().converged);
  }
  // Per-call reset: the second record is not a running total.
  EXPECT_LT(calls[1].iterations, calls[0].iterations + calls[1].iterations);
  EXPECT_GT(calls[1].iterations, 0);
  // Session accumulation: totals are the sum of the per-call records.
  const SessionStats& st = session.stats();
  EXPECT_EQ(st.solves, 2);
  EXPECT_EQ(st.converged_solves, 2);
  EXPECT_EQ(st.iterations, calls[0].iterations + calls[1].iterations);
  EXPECT_EQ(st.cycles, calls[0].cycles + calls[1].cycles);
  EXPECT_EQ(st.reductions, calls[0].reductions + calls[1].reductions);
  EXPECT_EQ(st.operator_applies, calls[0].operator_applies + calls[1].operator_applies);
  EXPECT_EQ(st.last_status, SolveStatus::Converged);
  session.reset_stats();
  EXPECT_EQ(session.stats().solves, 0);
  EXPECT_EQ(session.stats().iterations, 0);
  EXPECT_EQ(session.solves(), 0);
}

TEST(Session, FlushSemantics) {
  const auto a = poisson2d(12, 12);
  const index_t n = a.rows();
  RecycleCache cache;
  // No cache attached: flush is a no-op.
  {
    SessionConfig cfg;
    cfg.method = SessionMethod::GcroDr;
    cfg.options.recycle = 4;
    SolverSession<double> session(a, nullptr, cfg);
    EXPECT_FALSE(session.flush());
  }
  // Non-recycling method: nothing to deposit even with a cache.
  {
    SessionConfig cfg;
    cfg.method = SessionMethod::BlockGmres;
    cfg.cache = &cache;
    SolverSession<double> session(a, nullptr, cfg);
    EXPECT_FALSE(session.flush());
  }
  EXPECT_EQ(cache.counters().entries, 0u);
  // Recycling method: no space before the first solve, a space after.
  SessionConfig cfg;
  cfg.method = SessionMethod::GcroDr;
  cfg.options.recycle = 4;
  cfg.cache = &cache;
  cfg.store_on_destroy = false;
  SolverSession<double> session(a, nullptr, cfg);
  EXPECT_FALSE(session.flush());
  const auto f = poisson2d_rhs(12, 12, 0.1);
  DenseMatrix<double> b(n, 1), x(n, 1);
  std::copy(f.begin(), f.end(), b.col(0));
  ASSERT_TRUE(session.solve(b.view(), x.view()).converged);
  EXPECT_TRUE(session.flush());
  EXPECT_EQ(cache.counters().entries, 1u);
}

TEST(Session, CacheTraceEventsFlow) {
  // The cold create misses, the destroy stores, the warm create hits —
  // all visible on the session's own trace sink.
  const auto a = poisson2d(12, 12);
  const index_t n = a.rows();
  obs::SolverTrace trace;
  RecycleCache cache;
  SolverOptions opts;
  opts.recycle = 4;
  opts.trace = &trace;
  auto run = [&] {
    SessionConfig cfg;
    cfg.method = SessionMethod::GcroDr;
    cfg.options = opts;
    cfg.cache = &cache;
    SolverSession<double> session(a, nullptr, cfg);
    const auto f = poisson2d_rhs(12, 12, 0.1);
    DenseMatrix<double> b(n, 1), x(n, 1);
    std::copy(f.begin(), f.end(), b.col(0));
    ASSERT_TRUE(session.solve(b.view(), x.view()).converged);
  };
  run();
  EXPECT_EQ(trace.cache_event_count("miss"), 1);
  EXPECT_EQ(trace.cache_event_count("store"), 1);
  EXPECT_EQ(trace.cache_event_count("hit"), 0);
  run();
  EXPECT_EQ(trace.cache_event_count("hit"), 1);
  EXPECT_EQ(trace.cache_event_count("store"), 2);
}

TEST(SessionThreads, TwoSessionsSharedExecutorMatchSerial) {
  // Two sessions over different operators driven from two threads on one
  // shared KernelExecutor must reproduce their serial runs bitwise, and
  // concurrent deposits into the shared cache must be safe.
  const auto a1 = poisson2d(12, 12);
  const auto a2 = poisson2d_varcoef(12, 12, 50.0, 4);
  const auto b1 = poisson_rhs_block(12, 12, 2);
  const auto b2 = poisson_rhs_block(12, 12, 2);
  SolverOptions opts;
  opts.restart = 20;
  opts.recycle = 3;
  opts.tol = 1e-9;

  auto run = [&](const CsrMatrix<double>& a, const DenseMatrix<double>& b,
                 const KernelExecutor& ex, RecycleCache* cache, DenseMatrix<double>* x) {
    SolverOptions lopts = opts;
    lopts.exec = &ex;
    SessionConfig cfg;
    cfg.method = SessionMethod::GcroDr;
    cfg.options = lopts;
    cfg.cache = cache;
    SolverSession<double> session(a, nullptr, cfg);
    x->resize(a.rows(), b.cols());
    return session.solve(b.view(), x->view());
  };

  KernelExecutor ex(4, kForceParallel);
  DenseMatrix<double> ref1, ref2;
  const SolveStats sref1 = run(a1, b1, ex, nullptr, &ref1);
  const SolveStats sref2 = run(a2, b2, ex, nullptr, &ref2);
  ASSERT_TRUE(sref1.converged);
  ASSERT_TRUE(sref2.converged);

  RecycleCache cache;
  DenseMatrix<double> x1, x2;
  SolveStats s1, s2;
  std::thread t1([&] { s1 = run(a1, b1, ex, &cache, &x1); });  // bkr-lint: allow(unpooled-thread)
  std::thread t2([&] { s2 = run(a2, b2, ex, &cache, &x2); });  // bkr-lint: allow(unpooled-thread)
  t1.join();
  t2.join();
  expect_same_stats(s1, sref1, 4, "threaded session a1");
  expect_same_stats(s2, sref2, 4, "threaded session a2");
  expect_same_solution(x1, ref1, 4, "threaded session a1");
  expect_same_solution(x2, ref2, 4, "threaded session a2");
  EXPECT_EQ(cache.counters().entries, 2u);
}

TEST(SessionConformance, ComplexBlockGmres) {
  // Complex shifted Poisson through a complex session (the zsession
  // path of the C API shares this instantiation).
  const auto ar = poisson2d(10, 10);
  const index_t n = ar.rows();
  CooBuilder<cplx> builder(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t l = ar.rowptr()[size_t(i)]; l < ar.rowptr()[size_t(i) + 1]; ++l)
      builder.add(i, ar.colind()[size_t(l)],
                  cplx(ar.values()[size_t(l)], 0) -
                      (ar.colind()[size_t(l)] == i ? cplx(0.05, -0.05) : cplx(0)));
  const auto a = builder.build();
  Rng rng(97);
  DenseMatrix<cplx> b(n, 2);
  for (index_t j = 0; j < 2; ++j)
    for (index_t i = 0; i < n; ++i) b(i, j) = rng.scalar<cplx>();
  check_conformance<cplx>(
      a, {b}, SessionMethod::BlockGmres, base_opts(),
      [](CsrOperator<cplx>& op, const DenseMatrix<cplx>& bb, DenseMatrix<cplx>& x,
         const SolverOptions& o, size_t) {
        return block_gmres<cplx>(op, nullptr, bb.view(), x.view(), o);
      },
      "complex block_gmres");
}

}  // namespace
}  // namespace bkr
