// Unit tests: fill-reducing orderings and the sparse LDL^T direct solver.
#include <gtest/gtest.h>

#include <complex>

#include "direct/factor.hpp"
#include "fem/maxwell3d.hpp"
#include "fem/poisson2d.hpp"
#include "test_helpers.hpp"

namespace bkr {
namespace {

using cplx = std::complex<double>;
using testing::random_matrix;

TEST(Ordering, NestedDissectionIsPermutation) {
  const auto a = poisson2d(13, 11);
  const auto g = adjacency_of(a);
  const auto perm = nested_dissection(g, 8);
  ASSERT_EQ(index_t(perm.size()), g.n);
  std::vector<char> seen(perm.size(), 0);
  for (const auto v : perm) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, g.n);
    EXPECT_FALSE(seen[size_t(v)]);
    seen[size_t(v)] = 1;
  }
}

TEST(Ordering, NestedDissectionReducesFill) {
  const auto a = poisson2d(24, 24);
  const SparseLDLT<double> nd(a, FactorOrdering::NestedDissection);
  const SparseLDLT<double> nat(a, FactorOrdering::Natural);
  // ND should produce clearly less fill than the natural (banded) order on
  // a square grid.
  EXPECT_LT(nd.factor_nnz(), nat.factor_nnz());
}

TEST(Direct, SolvesPoissonSingleRhs) {
  const auto a = poisson2d(15, 15);
  const SparseLDLT<double> f(a);
  std::vector<double> b = poisson2d_rhs(15, 15, 0.5);
  std::vector<double> x = b;
  f.solve(MatrixView<double>(x.data(), a.rows(), 1, a.rows()));
  EXPECT_LT(testing::relative_residual(a, x, b), 1e-12);
}

TEST(Direct, SolvesPoissonMultiRhs) {
  const auto a = poisson2d(12, 10);
  const index_t n = a.rows();
  const SparseLDLT<double> f(a);
  auto b = random_matrix<double>(n, 7, 61);
  DenseMatrix<double> x = copy_of(b);
  f.solve(x.view());
  DenseMatrix<double> check(n, 7);
  a.spmm(x.view(), check.view());
  EXPECT_LT(testing::diff_fro<double>(check.view(), b.view()), 1e-11);
}

TEST(Direct, MultiRhsMatchesRepeatedSingleRhs) {
  const auto a = poisson2d(9, 9);
  const index_t n = a.rows();
  const SparseLDLT<double> f(a);
  auto b = random_matrix<double>(n, 4, 62);
  DenseMatrix<double> xblock = copy_of(b);
  f.solve(xblock.view());
  for (index_t c = 0; c < 4; ++c) {
    std::vector<double> x(b.col(c), b.col(c) + n);
    f.solve(MatrixView<double>(x.data(), n, 1, n));
    for (index_t i = 0; i < n; ++i) EXPECT_NEAR(x[size_t(i)], xblock(i, c), 1e-12);
  }
}

TEST(Direct, ThreadedPanelsMatchSerial) {
  const auto a = poisson2d(11, 11);
  const index_t n = a.rows();
  const SparseLDLT<double> f(a);
  auto b = random_matrix<double>(n, 8, 63);
  DenseMatrix<double> xs = copy_of(b), xt = copy_of(b);
  f.solve(xs.view(), 1);
  f.solve(xt.view(), 4);
  EXPECT_LT(testing::diff_fro<double>(xs.view(), xt.view()), 1e-13);
}

TEST(Direct, ComplexSymmetricMaxwell) {
  MaxwellConfig cfg;
  cfg.n = 6;
  cfg.wavelengths = 1.0;
  cfg.loss = 0.3;
  const auto prob = maxwell3d(cfg);
  ASSERT_GT(prob.nfree, 0);
  const SparseLDLT<cplx> f(prob.matrix);
  const auto b = antenna_rhs(prob, 0, 8);
  std::vector<cplx> x = b;
  f.solve(MatrixView<cplx>(x.data(), prob.nfree, 1, prob.nfree));
  EXPECT_LT(testing::relative_residual(prob.matrix, x, b), 1e-10);
}

TEST(Direct, AllOrderingsAgree) {
  const auto a = poisson2d(8, 9);
  const index_t n = a.rows();
  const auto b = poisson2d_rhs(8, 9, 10.0);
  std::vector<std::vector<double>> solutions;
  for (const auto ord :
       {FactorOrdering::NestedDissection, FactorOrdering::Rcm, FactorOrdering::Natural}) {
    const SparseLDLT<double> f(a, ord);
    std::vector<double> x = b;
    f.solve(MatrixView<double>(x.data(), n, 1, n));
    solutions.push_back(std::move(x));
  }
  for (size_t s = 1; s < solutions.size(); ++s)
    for (index_t i = 0; i < n; ++i) EXPECT_NEAR(solutions[s][size_t(i)], solutions[0][size_t(i)], 1e-11);
}

TEST(Direct, ThrowsOnSingularMatrix) {
  CooBuilder<double> b(3, 3);
  b.add(0, 0, 1.0);
  b.add(1, 1, 1.0);
  b.add(2, 2, 0.0);  // dropped: zero entries are not stored
  b.add(2, 1, 0.0);
  // Row 2 is structurally empty -> singular.
  CooBuilder<double> b2(3, 3);
  b2.add(0, 0, 1.0);
  b2.add(1, 1, 1.0);
  b2.add(2, 2, 1e-30);
  EXPECT_THROW(SparseLDLT<double> f(b2.build()), std::runtime_error);
}

TEST(Direct, SolveCopyLeavesInputIntact) {
  const auto a = poisson2d(7, 7);
  const index_t n = a.rows();
  const SparseLDLT<double> f(a);
  const auto b = random_matrix<double>(n, 2, 64);
  DenseMatrix<double> x(n, 2);
  f.solve_copy(b.view(), x.view());
  DenseMatrix<double> check(n, 2);
  a.spmm(x.view(), check.view());
  EXPECT_LT(testing::diff_fro<double>(check.view(), b.view()), 1e-11);
}

// Property sweep: LDL^T solves SPD grid systems of assorted shapes.
class DirectShapes : public ::testing::TestWithParam<std::pair<index_t, index_t>> {};

TEST_P(DirectShapes, Solves) {
  const auto [nx, ny] = GetParam();
  const auto a = poisson2d(nx, ny);
  const SparseLDLT<double> f(a);
  const auto b = poisson2d_rhs(nx, ny, 1.0);
  std::vector<double> x = b;
  f.solve(MatrixView<double>(x.data(), a.rows(), 1, a.rows()));
  EXPECT_LT(testing::relative_residual(a, x, b), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Grids, DirectShapes,
                         ::testing::Values(std::pair<index_t, index_t>{1, 1},
                                           std::pair<index_t, index_t>{2, 3},
                                           std::pair<index_t, index_t>{16, 3},
                                           std::pair<index_t, index_t>{3, 16},
                                           std::pair<index_t, index_t>{17, 17}));

}  // namespace
}  // namespace bkr
