// RecycleCache unit tests: fingerprint stability, LRU eviction under a
// byte budget, serialization round trips, and the corrupted-file cold
// start (a bad snapshot must degrade to an empty cache, never bad data).
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <complex>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>  // bkr-lint: allow(unpooled-thread)
#include <vector>

#include "core/recycle_cache.hpp"
#include "core/session.hpp"
#include "fem/poisson2d.hpp"
#include "obs/trace.hpp"
#include "test_helpers.hpp"

namespace bkr {
namespace {

using cplx = std::complex<double>;
using testing::random_matrix;

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

RecycleSpace make_space(index_t n, index_t cols, unsigned seed, index_t lanes = 0) {
  const auto u = random_matrix<double>(n, cols, seed);
  const auto c = random_matrix<double>(n, cols, seed + 1);
  return RecycleSpace::pack(u, c, lanes);
}

TEST(RecycleCache, FingerprintStableAcrossRebuilds) {
  const auto a1 = poisson2d(10, 10);
  const auto a2 = poisson2d(10, 10);
  EXPECT_EQ(operator_fingerprint(a1), operator_fingerprint(a2));
}

TEST(RecycleCache, FingerprintSeesValuePerturbation) {
  const auto a = poisson2d(10, 10);
  auto b = a;
  b.values()[7] += 1e-13;  // one ulp-scale nudge of one nonzero
  EXPECT_NE(operator_fingerprint(a), operator_fingerprint(b));
}

TEST(RecycleCache, FingerprintSeesShapeAndStructure) {
  EXPECT_NE(operator_fingerprint(poisson2d(10, 10)), operator_fingerprint(poisson2d(10, 11)));
  EXPECT_NE(operator_fingerprint(poisson2d(10, 10)),
            operator_fingerprint(poisson2d_varcoef(10, 10, 100.0, 4)));
}

TEST(RecycleCache, PackUnpackRoundTripReal) {
  const auto u = random_matrix<double>(13, 4, 11);
  const auto c = random_matrix<double>(13, 4, 12);
  const RecycleSpace s = RecycleSpace::pack(u, c, 2);
  EXPECT_EQ(s.n, 13);
  EXPECT_EQ(s.cols, 4);
  EXPECT_EQ(s.lanes, 2);
  EXPECT_FALSE(s.is_complex);
  DenseMatrix<double> u2, c2;
  ASSERT_TRUE(s.unpack(&u2, &c2));
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 13; ++i) {
      EXPECT_EQ(u2(i, j), u(i, j));
      EXPECT_EQ(c2(i, j), c(i, j));
    }
  // Scalar-kind mismatch is rejected, not reinterpreted.
  DenseMatrix<cplx> uz, cz;
  EXPECT_FALSE(s.unpack(&uz, &cz));
}

TEST(RecycleCache, PackUnpackRoundTripComplex) {
  DenseMatrix<cplx> u(7, 3), c(7, 3);
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 7; ++i) {
      u(i, j) = cplx(double(i + 1), double(j) - 0.5);
      c(i, j) = cplx(-double(j + 1), double(i) * 0.25);
    }
  const RecycleSpace s = RecycleSpace::pack(u, c, 0);
  EXPECT_TRUE(s.is_complex);
  EXPECT_EQ(s.bytes(), std::size_t(2 * 7 * 3 * 2) * sizeof(double));
  DenseMatrix<cplx> u2, c2;
  ASSERT_TRUE(s.unpack(&u2, &c2));
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 7; ++i) {
      EXPECT_EQ(u2(i, j), u(i, j));
      EXPECT_EQ(c2(i, j), c(i, j));
    }
}

TEST(RecycleCache, FetchMissThenStoreThenHit) {
  RecycleCache cache;
  const CacheKey key{0x1234, 5, 0};
  RecycleSpace out;
  EXPECT_FALSE(cache.fetch(key, &out));
  cache.store(key, make_space(8, 2, 21));
  EXPECT_TRUE(cache.fetch(key, &out));
  EXPECT_EQ(out.n, 8);
  EXPECT_EQ(out.cols, 2);
  const auto c = cache.counters();
  EXPECT_EQ(c.hits, 1);
  EXPECT_EQ(c.misses, 1);
  EXPECT_EQ(c.stores, 1);
  EXPECT_EQ(c.entries, 1u);
  EXPECT_EQ(c.bytes, out.bytes());
}

TEST(RecycleCache, KeysSeparateMethodAndScalar) {
  RecycleCache cache;
  cache.store(CacheKey{1, 5, 0}, make_space(6, 2, 31));
  RecycleSpace out;
  EXPECT_FALSE(cache.fetch(CacheKey{1, 6, 0}, &out));  // other method
  EXPECT_FALSE(cache.fetch(CacheKey{1, 5, 1}, &out));  // other scalar
  EXPECT_TRUE(cache.fetch(CacheKey{1, 5, 0}, &out));
}

TEST(RecycleCache, LruEvictionUnderTightBudget) {
  // Each space is 2 * 8*2 doubles = 256 bytes; budget fits exactly two.
  const std::size_t one = make_space(8, 2, 0).bytes();
  RecycleCache cache(2 * one);
  const CacheKey k1{1, 5, 0}, k2{2, 5, 0}, k3{3, 5, 0};
  cache.store(k1, make_space(8, 2, 41));
  cache.store(k2, make_space(8, 2, 42));
  RecycleSpace out;
  ASSERT_TRUE(cache.fetch(k1, &out));  // refresh k1: k2 is now the LRU entry
  cache.store(k3, make_space(8, 2, 43));
  EXPECT_FALSE(cache.fetch(k2, &out));
  EXPECT_TRUE(cache.fetch(k1, &out));
  EXPECT_TRUE(cache.fetch(k3, &out));
  const auto c = cache.counters();
  EXPECT_EQ(c.evictions, 1);
  EXPECT_EQ(c.entries, 2u);
  EXPECT_LE(c.bytes, cache.byte_budget());
}

TEST(RecycleCache, ReplacingAnEntryKeepsByteAccounting) {
  RecycleCache cache;
  const CacheKey key{9, 5, 0};
  cache.store(key, make_space(8, 2, 51));
  cache.store(key, make_space(8, 4, 52));  // replace with a wider space
  const auto c = cache.counters();
  EXPECT_EQ(c.entries, 1u);
  EXPECT_EQ(c.bytes, make_space(8, 4, 52).bytes());
}

TEST(RecycleCache, SaveLoadRoundTrip) {
  const std::string path = temp_path("bkr_cache_roundtrip.bkrc");
  RecycleCache cache;
  const CacheKey kd{0xaaa, 5, 0}, kz{0xbbb, 6, 1};
  cache.store(kd, make_space(12, 3, 61, 0));
  DenseMatrix<cplx> uz(5, 2), cz(5, 2);
  for (index_t j = 0; j < 2; ++j)
    for (index_t i = 0; i < 5; ++i) {
      uz(i, j) = cplx(double(i), double(j));
      cz(i, j) = cplx(double(j), -double(i));
    }
  cache.store(kz, RecycleSpace::pack(uz, cz, 2));
  ASSERT_TRUE(cache.save(path));

  RecycleCache loaded;
  ASSERT_TRUE(loaded.load(path));
  EXPECT_EQ(loaded.counters().entries, 2u);
  RecycleSpace a, b;
  ASSERT_TRUE(loaded.fetch(kd, &a));
  ASSERT_TRUE(loaded.fetch(kz, &b));
  RecycleSpace ra, rb;
  ASSERT_TRUE(cache.fetch(kd, &ra));
  ASSERT_TRUE(cache.fetch(kz, &rb));
  EXPECT_EQ(a.u, ra.u);
  EXPECT_EQ(a.c, ra.c);
  EXPECT_EQ(a.lanes, ra.lanes);
  EXPECT_EQ(b.u, rb.u);
  EXPECT_EQ(b.c, rb.c);
  EXPECT_EQ(b.lanes, rb.lanes);
  EXPECT_TRUE(b.is_complex);
  std::remove(path.c_str());
}

TEST(RecycleCache, CorruptedPayloadLoadsAsColdStart) {
  const std::string path = temp_path("bkr_cache_corrupt.bkrc");
  RecycleCache cache;
  cache.store(CacheKey{0xccc, 5, 0}, make_space(10, 2, 71));
  ASSERT_TRUE(cache.save(path));
  {
    // Flip one byte inside the first entry's u payload (after the
    // 4-byte magic, 4-byte version, 8-byte count, 56-byte header).
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(bool(f));
    f.seekp(4 + 4 + 8 + 56 + 17);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(4 + 4 + 8 + 56 + 17);
    byte = char(byte ^ 0x5a);
    f.write(&byte, 1);
  }
  RecycleCache loaded;
  EXPECT_FALSE(loaded.load(path));  // checksum catches the flip
  EXPECT_EQ(loaded.counters().entries, 0u);
  std::remove(path.c_str());
}

TEST(RecycleCache, TruncatedFileLoadsAsColdStart) {
  const std::string path = temp_path("bkr_cache_truncated.bkrc");
  RecycleCache cache;
  cache.store(CacheKey{0xddd, 5, 0}, make_space(10, 2, 81));
  ASSERT_TRUE(cache.save(path));
  std::vector<char> bytes;
  {
    std::ifstream is(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>());
  }
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), std::streamsize(bytes.size() / 2));
  }
  RecycleCache loaded;
  EXPECT_FALSE(loaded.load(path));
  EXPECT_EQ(loaded.counters().entries, 0u);
  std::remove(path.c_str());
}

TEST(RecycleCache, RejectsMissingAndForeignFiles) {
  RecycleCache cache;
  EXPECT_FALSE(cache.load(temp_path("bkr_cache_does_not_exist.bkrc")));
  const std::string path = temp_path("bkr_cache_foreign.bkrc");
  {
    std::ofstream os(path, std::ios::binary);
    os << "definitely not a cache snapshot";
  }
  EXPECT_FALSE(cache.load(path));
  EXPECT_EQ(cache.counters().entries, 0u);
  std::remove(path.c_str());
}

// The atomic-save contract: a save that fails partway must leave the
// previous good snapshot untouched and loadable (the write goes to a
// sibling ".tmp" and only a fully-flushed image is renamed over the
// target). The trap: a directory squatting on the temp path makes every
// write attempt fail deterministically.
TEST(RecycleCache, FailedSaveLeavesOldSnapshotLoadable) {
  const std::string path = temp_path("bkr_cache_atomic.bkrc");
  const CacheKey key{0x51, 3, 0};
  RecycleCache first;
  first.store(key, make_space(8, 2, 7));
  ASSERT_TRUE(first.save(path));

  ASSERT_EQ(::mkdir((path + ".tmp").c_str(), 0755), 0);
  RecycleCache second;
  second.store(key, make_space(8, 2, 99));
  second.store(CacheKey{0x52, 3, 0}, make_space(8, 2, 100));
  EXPECT_FALSE(second.save(path));  // cannot open the temp file

  // The failed save destroyed nothing: the old snapshot still loads with
  // the first cache's payload, not the second's.
  RecycleCache loaded;
  ASSERT_TRUE(loaded.load(path));
  EXPECT_EQ(loaded.counters().entries, 1u);
  RecycleSpace got, want;
  ASSERT_TRUE(loaded.fetch(key, &got));
  ASSERT_TRUE(first.fetch(key, &want));
  ASSERT_EQ(got.u.size(), want.u.size());
  for (size_t i = 0; i < got.u.size(); ++i) EXPECT_EQ(got.u[i], want.u[i]);

  ASSERT_EQ(::rmdir((path + ".tmp").c_str()), 0);
  std::remove(path.c_str());
}

TEST(RecycleCache, SaveReplacesSnapshotAndLeavesNoTempFile) {
  const std::string path = temp_path("bkr_cache_replace.bkrc");
  RecycleCache first;
  first.store(CacheKey{0x61, 3, 0}, make_space(8, 2, 1));
  ASSERT_TRUE(first.save(path));
  RecycleCache second;
  second.store(CacheKey{0x62, 3, 0}, make_space(8, 2, 2));
  second.store(CacheKey{0x63, 3, 0}, make_space(8, 2, 3));
  ASSERT_TRUE(second.save(path));  // rename over the old snapshot

  RecycleCache loaded;
  ASSERT_TRUE(loaded.load(path));
  EXPECT_EQ(loaded.counters().entries, 2u);
  RecycleSpace out;
  EXPECT_FALSE(loaded.fetch(CacheKey{0x61, 3, 0}, &out));  // old content gone
  EXPECT_TRUE(loaded.fetch(CacheKey{0x62, 3, 0}, &out));
  struct stat sb;
  EXPECT_NE(::stat((path + ".tmp").c_str(), &sb), 0);  // no debris
  std::remove(path.c_str());
}

TEST(RecycleCache, EmitsTraceEvents) {
  obs::SolverTrace trace;
  RecycleCache cache;
  const CacheKey key{0xeee, 5, 0};
  RecycleSpace out;
  EXPECT_FALSE(cache.fetch(key, &out, &trace));
  cache.store(key, make_space(8, 2, 91), &trace);
  EXPECT_TRUE(cache.fetch(key, &out, &trace));
  EXPECT_EQ(trace.cache_event_count("miss"), 1);
  EXPECT_EQ(trace.cache_event_count("store"), 1);
  EXPECT_EQ(trace.cache_event_count("hit"), 1);
  EXPECT_EQ(trace.cache_event_count("evict"), 0);
}

// Contention stress for the TSan preset: several threads hammer a shared
// cache with interleaved stores, fetches and counter reads under a budget
// small enough to force concurrent evictions.
TEST(RecycleCacheThreads, ConcurrentStoreFetchEvict) {
  const std::size_t one = make_space(8, 2, 0).bytes();
  RecycleCache cache(4 * one);
  constexpr int kThreads = 4;
  constexpr int kOps = 200;
  std::vector<std::thread> workers;  // bkr-lint: allow(unpooled-thread)
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {  // bkr-lint: allow(unpooled-thread)
      for (int i = 0; i < kOps; ++i) {
        const CacheKey key{std::uint64_t(1 + (t + i) % 7), 5, 0};
        if (i % 3 == 0) {
          cache.store(key, make_space(8, 2, unsigned(t * kOps + i)));
        } else {
          RecycleSpace out;
          cache.fetch(key, &out);
        }
        if (i % 17 == 0) (void)cache.counters();
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto c = cache.counters();
  EXPECT_EQ(c.stores, kThreads * ((kOps + 2) / 3));
  EXPECT_LE(c.bytes, cache.byte_budget());
  EXPECT_LE(c.entries, 7u);
}

// Recycle spaces survive resharding: the cache key is built from the
// monolithic source matrix regardless of the execution layout, so the
// fingerprint a sharded operator exposes is identical to the monolithic
// one at every shard count.
TEST(RecycleCache, FingerprintIsShardCountInvariant) {
  const auto a = poisson2d(12, 12);
  const std::uint64_t mono = operator_fingerprint(a);
  for (const index_t shards : {index_t(1), index_t(2), index_t(4), index_t(7)}) {
    const ShardedOperator<double> op(a, shards);
    EXPECT_EQ(operator_fingerprint(op.matrix()), mono) << "shards=" << shards;
  }
}

// End-to-end: a recycle space deposited by a monolithic session
// warm-starts a sharded session on the same matrix (and the reverse), so
// changing the shard count between runs never invalidates the cache.
TEST(RecycleCache, SpacesSurviveResharding) {
  const auto a = poisson2d(20, 20);
  const index_t n = a.rows();
  SolverOptions base;
  base.restart = 20;
  base.recycle = 8;
  base.tol = 1e-8;
  auto run_sequence = [&](RecycleCache* cache, index_t shards, bool* warm) {
    SessionConfig cfg;
    cfg.method = SessionMethod::GcroDr;
    cfg.options = base;
    cfg.options.shards = shards;
    cfg.cache = cache;
    SolverSession<double> session(a, nullptr, cfg);
    *warm = session.warm_started();
    index_t first = 0;
    for (size_t s = 0; s < 2; ++s) {
      const auto f = poisson2d_rhs(20, 20, kPoissonNus[s]);
      DenseMatrix<double> b(n, 1), x(n, 1);
      std::copy(f.begin(), f.end(), b.col(0));
      const auto st = session.solve(b.view(), x.view());
      EXPECT_TRUE(st.converged) << "shards=" << shards;
      if (s == 0) first = st.iterations;
    }
    return first;
  };
  RecycleCache cache;
  bool warm = true;
  const index_t cold_first = run_sequence(&cache, 0, &warm);  // monolithic deposit
  EXPECT_FALSE(warm);
  EXPECT_EQ(cache.counters().entries, 1u);
  const index_t warm_sharded = run_sequence(&cache, 4, &warm);  // sharded consume
  EXPECT_TRUE(warm) << "monolithic deposit must warm a sharded session";
  EXPECT_LT(warm_sharded, cold_first);
  const index_t warm_back = run_sequence(&cache, 0, &warm);  // sharded deposit, monolithic consume
  EXPECT_TRUE(warm) << "sharded deposit must warm a monolithic session";
  EXPECT_LT(warm_back, cold_first);
  EXPECT_EQ(cache.counters().entries, 1u);  // one key throughout: no reshard duplication
}

}  // namespace
}  // namespace bkr
