// Counter accounting: SolveStats, the CommModel and the trace's phase
// counters are three views of the same synchronization/kernel structure
// and must agree exactly (paper section III-D counts the reductions; the
// trace must not invent or lose any).
#include <gtest/gtest.h>

#include <cstdint>

#include "core/block_cg.hpp"
#include "core/cg.hpp"
#include "core/gcrodr.hpp"
#include "core/gmres.hpp"
#include "core/lgmres.hpp"
#include "fem/poisson2d.hpp"
#include "parallel/comm_model.hpp"
#include "precond/jacobi.hpp"
#include "test_helpers.hpp"

namespace bkr {
namespace {

using testing::random_matrix;

void expect_trace_matches_stats(const obs::SolverTrace& trace, const SolveStats& st,
                                const char* label) {
  EXPECT_EQ(trace.phase_count(obs::Phase::Reduction), st.reductions) << label;
  EXPECT_EQ(trace.phase_count(obs::Phase::Spmm), st.operator_applies) << label;
  EXPECT_EQ(trace.phase_count(obs::Phase::Precond), st.precond_applies) << label;
}

TEST(TraceAccounting, GmresReductionFormulaPerOrtho) {
  // Single-vector unpreconditioned GMRES converging within one Krylov
  // cycle of N iterations (the convergence re-check enters a second outer
  // cycle): 1 bnorm + 2 residual norms + 1 initial normalization, plus per
  // iteration 1 projection + 1 normalization for CGS, 2 + 1 for CGS2, and
  // j + 1 for the MGS projection at iteration j (section III-D).
  const auto a = poisson2d(10, 10);
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(10, 10, 2.0);
  for (const Ortho ortho : {Ortho::Cgs, Ortho::Cgs2, Ortho::Mgs}) {
    obs::SolverTrace trace;
    SolverOptions opts;
    opts.restart = 200;
    opts.tol = 1e-10;
    opts.ortho = ortho;
    opts.trace = &trace;
    std::vector<double> x(b.size(), 0.0);
    const auto st = gmres<double>(op, nullptr, b, x, opts);
    ASSERT_TRUE(st.converged);
    ASSERT_EQ(st.cycles, 2);  // one Krylov cycle + the convergence re-check
    const std::int64_t n_it = st.iterations;
    std::int64_t expected = 4;
    switch (ortho) {
      case Ortho::Cgs:
      case Ortho::CholQr: expected += 2 * n_it; break;
      case Ortho::Cgs2: expected += 3 * n_it; break;
      case Ortho::Mgs: expected += n_it * (n_it + 1) / 2 + n_it; break;
    }
    EXPECT_EQ(st.reductions, expected) << "ortho " << int(ortho);
    EXPECT_EQ(trace.phase_count(obs::Phase::Reduction), st.reductions) << "ortho " << int(ortho);
    // Operator applications: one per iteration plus the two residuals.
    EXPECT_EQ(st.operator_applies, n_it + 2);
    EXPECT_EQ(trace.phase_count(obs::Phase::Spmm), st.operator_applies);
  }
}

TEST(TraceAccounting, TraceCountsMatchStatsAllSolvers) {
  // The accounting contract holds for every method and preconditioning
  // side: the trace's Reduction/Spmm/Precond counters equal the
  // SolveStats counters exactly.
  const auto a = poisson2d(10, 10);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  JacobiPreconditioner<double> m(a);
  const auto bblock = random_matrix<double>(n, 3, 61);
  const auto b1 = poisson2d_rhs(10, 10, 1.0);

  SolverOptions base;
  base.restart = 25;
  base.tol = 1e-8;

  {
    obs::SolverTrace trace;
    auto opts = base;
    opts.side = PrecondSide::Right;
    opts.trace = &trace;
    DenseMatrix<double> x(n, 3);
    x.set_zero();
    const auto st = block_gmres<double>(op, &m, bblock.view(), x.view(), opts);
    ASSERT_TRUE(st.converged);
    expect_trace_matches_stats(trace, st, "block_gmres right");
  }
  {
    obs::SolverTrace trace;
    auto opts = base;
    opts.side = PrecondSide::Left;
    opts.trace = &trace;
    std::vector<double> x(b1.size(), 0.0);
    const auto st = gmres<double>(op, &m, b1, x, opts);
    ASSERT_TRUE(st.converged);
    expect_trace_matches_stats(trace, st, "gmres left");
  }
  {
    obs::SolverTrace trace;
    auto opts = base;
    opts.side = PrecondSide::Flexible;
    opts.trace = &trace;
    std::vector<double> x(b1.size(), 0.0);
    const auto st = gmres<double>(op, &m, b1, x, opts);
    ASSERT_TRUE(st.converged);
    expect_trace_matches_stats(trace, st, "gmres flexible");
  }
  {
    obs::SolverTrace trace;
    auto opts = base;
    opts.trace = &trace;
    DenseMatrix<double> x(n, 3);
    x.set_zero();
    const auto st = pseudo_block_gmres<double>(op, &m, bblock.view(), x.view(), opts);
    ASSERT_TRUE(st.converged);
    expect_trace_matches_stats(trace, st, "pseudo_block_gmres");
  }
  for (const Ortho ortho : {Ortho::Cgs, Ortho::Cgs2, Ortho::Mgs}) {
    obs::SolverTrace trace;
    auto opts = base;
    opts.ortho = ortho;
    opts.recycle = 6;  // LGMRES augmentation count
    opts.trace = &trace;
    std::vector<double> x(b1.size(), 0.0);
    const auto st = lgmres<double>(op, &m, b1, x, opts);
    ASSERT_TRUE(st.converged);
    expect_trace_matches_stats(trace, st, "lgmres");
  }
  {
    obs::SolverTrace trace;
    auto opts = base;
    opts.trace = &trace;
    DenseMatrix<double> x(n, 2);
    x.set_zero();
    const auto bcg = random_matrix<double>(n, 2, 62);
    const auto st = cg<double>(op, &m, bcg.view(), x.view(), opts);
    ASSERT_TRUE(st.converged);
    expect_trace_matches_stats(trace, st, "cg");
  }
  {
    obs::SolverTrace trace;
    auto opts = base;
    opts.trace = &trace;
    DenseMatrix<double> x(n, 2);
    x.set_zero();
    const auto bcg = random_matrix<double>(n, 2, 63);
    const auto st = block_cg<double>(op, &m, bcg.view(), x.view(), opts);
    ASSERT_TRUE(st.converged);
    expect_trace_matches_stats(trace, st, "block_cg");
  }
}

TEST(TraceAccounting, TraceCountsMatchStatsRecyclingSequence) {
  // GCRO-DR (both variants) across a sequence: clear the shared sink
  // between solves and compare per solve — including the strategy-A
  // restarts, whose extra reduction is count-only inside the RestartEig
  // phase.
  const auto a = poisson2d(11, 11);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  JacobiPreconditioner<double> m(a);
  for (const RecycleStrategy strat : {RecycleStrategy::A, RecycleStrategy::B}) {
    obs::SolverTrace trace;
    SolverOptions opts;
    opts.restart = 15;
    opts.recycle = 5;
    opts.tol = 1e-8;
    opts.strategy = strat;
    opts.trace = &trace;
    GcroDr<double> solver(opts);
    Rng rng(71);
    for (int s = 0; s < 3; ++s) {
      trace.clear();
      std::vector<double> b(static_cast<size_t>(n));
      for (auto& v : b) v = rng.scalar<double>();
      std::vector<double> x(b.size(), 0.0);
      const auto st = solver.solve(op, &m, MatrixView<const double>(b.data(), n, 1, n),
                                   MatrixView<double>(x.data(), n, 1, n), nullptr, false);
      ASSERT_TRUE(st.converged) << "solve " << s;
      expect_trace_matches_stats(trace, st, "gcrodr");
    }
  }
  {
    obs::SolverTrace trace;
    SolverOptions opts;
    opts.restart = 20;
    opts.recycle = 4;
    opts.tol = 1e-8;
    opts.trace = &trace;
    PseudoGcroDr<double> solver(opts);
    const auto b = random_matrix<double>(n, 3, 72);
    for (int s = 0; s < 2; ++s) {
      trace.clear();
      DenseMatrix<double> x(n, 3);
      x.set_zero();
      const auto st = solver.solve(op, &m, b.view(), x.view(), nullptr, false);
      ASSERT_TRUE(st.converged) << "solve " << s;
      expect_trace_matches_stats(trace, st, "pseudo_gcrodr");
    }
  }
}

TEST(TraceAccounting, CommModelUnchangedByTrace) {
  // Attaching a trace must not change the communication structure: the
  // pseudo-block methods make ONE all-reduce per fused batch regardless of
  // how many paper-count reductions ride on it, and the comm-model call
  // count with and without a sink is identical.
  const auto a = poisson2d(10, 10);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  JacobiPreconditioner<double> m(a);
  const auto b = random_matrix<double>(n, 3, 81);
  SolverOptions opts;
  opts.restart = 20;
  opts.tol = 1e-8;
  // MGS makes the fusion visible: j+1 paper-count reductions ride on one
  // batched all-reduce at iteration j.
  opts.ortho = Ortho::Mgs;

  auto run = [&](obs::TraceSink* sink, CommModel& comm) {
    auto o = opts;
    o.trace = sink;
    DenseMatrix<double> x(n, 3);
    x.set_zero();
    return pseudo_block_gmres<double>(op, &m, b.view(), x.view(), o, &comm);
  };
  CommModel plain, traced;
  obs::SolverTrace trace;
  const auto st0 = run(nullptr, plain);
  const auto st1 = run(&trace, traced);
  ASSERT_TRUE(st0.converged);
  EXPECT_EQ(st0.iterations, st1.iterations);
  EXPECT_EQ(st0.reductions, st1.reductions);
  EXPECT_EQ(plain.reductions(), traced.reductions());
  EXPECT_EQ(plain.reduction_bytes(), traced.reduction_bytes());
  // The fused batches mean fewer all-reduces than paper-count reductions.
  EXPECT_LT(plain.reductions(), st0.reductions);
  EXPECT_EQ(trace.phase_count(obs::Phase::Reduction), st1.reductions);
}

TEST(TraceAccounting, StrategyBNeedsNoExtraRestartReduction) {
  // Eq. 3b is communication-free at restarts. With a fixed iteration
  // budget (unreachable tolerance) both strategies traverse the same
  // cycle structure, so strategy A accounts exactly one extra reduction
  // per deflation refresh — strictly more than B — and both match their
  // traces.
  const auto a = poisson2d(14, 14);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  std::int64_t reds[2];
  index_t iters[2], cycles[2];
  int i = 0;
  for (const RecycleStrategy strat : {RecycleStrategy::A, RecycleStrategy::B}) {
    obs::SolverTrace trace;
    SolverOptions opts;
    opts.restart = 12;  // small restart: several deflation refreshes
    opts.recycle = 4;
    opts.tol = 1e-16;        // unreachable: the budget fixes the structure
    opts.max_iterations = 60;
    opts.strategy = strat;
    opts.trace = &trace;
    GcroDr<double> solver(opts);
    const auto b = poisson2d_rhs(14, 14, 3.0);
    std::vector<double> x(b.size(), 0.0);
    const auto st = solver.solve(op, nullptr, MatrixView<const double>(b.data(), n, 1, n),
                                 MatrixView<double>(x.data(), n, 1, n));
    EXPECT_EQ(st.iterations, 60);
    ASSERT_GT(st.cycles, 2) << "need restarts for the strategies to differ";
    EXPECT_EQ(trace.phase_count(obs::Phase::Reduction), st.reductions);
    reds[i] = st.reductions;
    iters[i] = st.iterations;
    cycles[i] = st.cycles;
    ++i;
  }
  ASSERT_EQ(iters[0], iters[1]);
  ASSERT_EQ(cycles[0], cycles[1]);
  EXPECT_GT(reds[0], reds[1]);
}

TEST(TraceAccounting, CgReductionFormula) {
  // CG synchronization structure (section III-D applied to the CG
  // recursion): 1 bnorm + 1 initial residual norm + 1 initial rho, then
  // per iteration the fused (d,q)/residual-norm pair (2) plus the rho of
  // the next direction (1) — which the final, converging iteration skips.
  // Converged: 2 + 3*it. Budget-exhausted: 3 + 3*it. Every SolveStats
  // reduction is one CommModel all-reduce in CG (no fused batching).
  const auto a = poisson2d(10, 10);
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(10, 10, 0.1);
  {
    CommModel comm;
    SolverOptions opts;
    opts.tol = 1e-10;
    std::vector<double> x(b.size(), 0.0);
    const auto st = cg<double>(op, nullptr, b, x, opts, &comm);
    ASSERT_TRUE(st.converged);
    EXPECT_EQ(st.reductions, 2 + 3 * std::int64_t(st.iterations));
    EXPECT_EQ(comm.reductions(), st.reductions);
  }
  {
    CommModel comm;
    SolverOptions opts;
    opts.tol = 1e-30;  // unreachable: exhaust the budget
    opts.max_iterations = 7;
    std::vector<double> x(b.size(), 0.0);
    const auto st = cg<double>(op, nullptr, b, x, opts, &comm);
    ASSERT_FALSE(st.converged);
    ASSERT_EQ(st.iterations, 7);
    EXPECT_EQ(st.reductions, 3 + 3 * std::int64_t(7));
    EXPECT_EQ(comm.reductions(), st.reductions);
  }
}

// The sharded layer makes the CommModel's message counters real: every
// all-reduce is an executed (S-1)-message, ceil(log2 S)-round tree, every
// operator apply one halo exchange with the operator's true neighbor-pair
// count — and the trace mirror sees one CommEvent per round. Pinned for CG
// and GMRES.
TEST(TraceAccounting, ShardedMessageAccountingCgAndGmres) {
  const auto a = poisson2d(10, 10);
  const auto b = poisson2d_rhs(10, 10, 0.1);
  for (const index_t shards : {index_t(2), index_t(4), index_t(7)}) {
    for (const bool use_cg : {true, false}) {
      SCOPED_TRACE(std::string(use_cg ? "cg" : "gmres") + " shards=" + std::to_string(shards));
      CommModel comm;
      obs::SolverTrace trace;
      comm.set_trace(&trace);
      ShardedOperator<double> op(a, shards, &comm);
      ASSERT_EQ(comm.shards(), shards);
      SolverOptions opts;
      opts.tol = 1e-10;
      opts.restart = 120;
      opts.shards = shards;
      std::vector<double> x(b.size(), 0.0);
      const auto st = use_cg ? cg<double>(op, nullptr, b, x, opts, &comm)
                             : gmres<double>(op, nullptr, b, x, opts, &comm);
      ASSERT_TRUE(st.converged);
      const std::int64_t applies = comm.halo_exchanges();
      EXPECT_EQ(applies, st.operator_applies);
      const std::int64_t halo_msgs =
          std::int64_t(op.sharded().halo_messages()) * applies;
      EXPECT_EQ(comm.messages(), comm.reductions() * (shards - 1) + halo_msgs);
      EXPECT_EQ(comm.tree_rounds(), comm.reductions() * CommModel::ceil_log2(shards));
      // Trace mirror: one CommEvent per all-reduce tree and one per halo
      // exchange round.
      EXPECT_EQ(trace.comm_event_count("reduction-tree"), comm.reductions());
      EXPECT_EQ(trace.comm_event_count("halo"), applies);
    }
  }
}

// Monolithic runs keep the legacy accounting: no shard count attached
// means no executed messages, no tree rounds, no comm events.
TEST(TraceAccounting, MonolithicRunsRecordNoMessages) {
  const auto a = poisson2d(10, 10);
  const auto b = poisson2d_rhs(10, 10, 0.1);
  CommModel comm;
  obs::SolverTrace trace;
  comm.set_trace(&trace);
  CsrOperator<double> op(a);
  SolverOptions opts;
  opts.tol = 1e-10;
  std::vector<double> x(b.size(), 0.0);
  const auto st = cg<double>(op, nullptr, b, x, opts, &comm);
  ASSERT_TRUE(st.converged);
  EXPECT_GT(comm.reductions(), 0);
  EXPECT_EQ(comm.messages(), 0);
  EXPECT_EQ(comm.tree_rounds(), 0);
  EXPECT_EQ(trace.comm_event_count("reduction-tree"), 0);
  EXPECT_EQ(trace.comm_event_count("halo"), 0);
}

// A single process communicates with nobody: the modeled time of any
// recorded traffic is exactly zero at P <= 1 (the historical model charged
// halo latency and bytes even at P = 1, flattening every scaling curve's
// origin), and positive as soon as a second process exists.
TEST(TraceAccounting, ModeledSecondsFreeAtSingleProcess) {
  CommModel comm;
  for (int i = 0; i < 10; ++i) comm.reduction(64);
  for (int i = 0; i < 5; ++i) comm.halo_exchange(4096, 3);
  EXPECT_EQ(comm.modeled_seconds(1), 0.0);
  EXPECT_EQ(comm.modeled_seconds(0), 0.0);
  EXPECT_GT(comm.modeled_seconds(2), 0.0);
  EXPECT_GT(comm.modeled_seconds(64), comm.modeled_seconds(2));
}

}  // namespace
}  // namespace bkr
