// Tests: CG, LGMRES, pseudo-block GCRO-DR, and cross-method comparisons.
#include <gtest/gtest.h>

#include <complex>

#include "core/cg.hpp"
#include "core/gcrodr.hpp"
#include "core/gmres.hpp"
#include "core/lgmres.hpp"
#include "fem/poisson2d.hpp"
#include "precond/jacobi.hpp"
#include "test_helpers.hpp"

namespace bkr {
namespace {

using testing::random_matrix;

TEST(Cg, SolvesSpdSystem) {
  const auto a = poisson2d(15, 15);
  const auto b = poisson2d_rhs(15, 15, 0.1);
  std::vector<double> x(b.size(), 0.0);
  SolverOptions opts;
  opts.tol = 1e-10;
  opts.max_iterations = 1000;
  const auto st = cg<double>(CsrOperator<double>(a), nullptr, b, x, opts);
  EXPECT_TRUE(st.converged);
  EXPECT_LT(testing::relative_residual(a, x, b), 1e-9);
}

TEST(Cg, JacobiPreconditionedConvergesFaster) {
  // A badly scaled SPD matrix: Jacobi helps.
  const auto base = poisson2d(15, 15);
  const index_t n = base.rows();
  CooBuilder<double> builder(n, n);
  for (index_t i = 0; i < n; ++i) {
    const double s = (i % 3 == 0) ? 100.0 : 1.0;
    for (index_t l = base.rowptr()[size_t(i)]; l < base.rowptr()[size_t(i) + 1]; ++l) {
      const index_t j = base.colind()[size_t(l)];
      const double sj = (j % 3 == 0) ? 100.0 : 1.0;
      builder.add(i, j, std::sqrt(s) * base.values()[size_t(l)] * std::sqrt(sj));
    }
  }
  const auto a = builder.build();
  Rng rng(95);
  std::vector<double> b(static_cast<size_t>(n));
  for (auto& v : b) v = rng.scalar<double>();
  SolverOptions opts;
  opts.tol = 1e-8;
  opts.max_iterations = 3000;
  std::vector<double> x1(b.size(), 0.0), x2(b.size(), 0.0);
  JacobiPreconditioner<double> m(a);
  const auto splain = cg<double>(CsrOperator<double>(a), nullptr, b, x1, opts);
  const auto sprec = cg<double>(CsrOperator<double>(a), &m, b, x2, opts);
  ASSERT_TRUE(splain.converged);
  ASSERT_TRUE(sprec.converged);
  EXPECT_LT(sprec.iterations, splain.iterations);
}

TEST(Cg, BlockLanesIndependent) {
  const auto a = poisson2d(10, 10);
  const index_t n = a.rows();
  const auto b = random_matrix<double>(n, 3, 96);
  DenseMatrix<double> x(n, 3);
  SolverOptions opts;
  opts.tol = 1e-9;
  opts.max_iterations = 1000;
  const auto st = cg<double>(CsrOperator<double>(a), nullptr, b.view(), x.view(), opts);
  ASSERT_TRUE(st.converged);
  DenseMatrix<double> check(n, 3);
  a.spmm(x.view(), check.view());
  EXPECT_LT(testing::diff_fro<double>(check.view(), b.view()), 1e-7);
}

TEST(Cg, FixedIterationSmootherMode) {
  const auto a = poisson2d(8, 8);
  std::vector<double> b(64, 1.0), x(64, 0.0);
  SolverOptions opts;
  opts.tol = 0.0;  // never converge: run exactly max_iterations
  opts.max_iterations = 4;
  const auto st = cg<double>(CsrOperator<double>(a), nullptr, b, x, opts);
  EXPECT_EQ(st.iterations, 4);
  EXPECT_FALSE(st.converged);
}

TEST(Lgmres, SolvesPoisson) {
  const auto a = poisson2d(16, 16);
  const auto b = poisson2d_rhs(16, 16, 10.0);
  std::vector<double> x(b.size(), 0.0);
  SolverOptions opts;
  opts.restart = 30;
  opts.recycle = 10;  // augmentation count
  opts.tol = 1e-9;
  opts.max_iterations = 5000;
  const auto st = lgmres<double>(CsrOperator<double>(a), nullptr, b, x, opts);
  EXPECT_TRUE(st.converged);
  EXPECT_LT(testing::relative_residual(a, x, b), 1e-8);
}

TEST(Lgmres, AugmentationBeatsPlainRestartedGmres) {
  // The motivating property of LGMRES: with small restarts, augmentation
  // with error approximations accelerates convergence.
  const auto a = poisson2d(24, 24);
  const auto b = poisson2d_rhs(24, 24, 0.001);
  SolverOptions opts;
  opts.restart = 12;
  opts.tol = 1e-8;
  opts.max_iterations = 20000;
  std::vector<double> x1(b.size(), 0.0), x2(b.size(), 0.0);
  const auto plain = gmres<double>(CsrOperator<double>(a), nullptr, b, x1, opts);
  opts.recycle = 4;
  const auto loose = lgmres<double>(CsrOperator<double>(a), nullptr, b, x2, opts);
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(loose.converged);
  EXPECT_LT(loose.iterations, plain.iterations);
}

TEST(Lgmres, GcroDrBeatsLgmresOnSequences) {
  // Section IV-C's message: LGMRES cannot recycle across systems,
  // GCRO-DR can — over a sequence, GCRO-DR needs fewer total iterations.
  const auto a = poisson2d(20, 20);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  SolverOptions lopts;
  lopts.restart = 15;
  lopts.recycle = 5;
  lopts.tol = 1e-8;
  lopts.max_iterations = 20000;
  auto gopts = lopts;
  gopts.same_system = true;
  GcroDr<double> recycler(gopts);
  index_t lg_total = 0, gc_total = 0;
  for (const double nu : kPoissonNus) {
    const auto b = poisson2d_rhs(20, 20, nu);
    std::vector<double> xl(b.size(), 0.0), xg(b.size(), 0.0);
    const auto sl = lgmres<double>(op, nullptr, b, xl, lopts);
    ASSERT_TRUE(sl.converged);
    lg_total += sl.iterations;
    const auto sg = recycler.solve(op, nullptr, MatrixView<const double>(b.data(), n, 1, n),
                                   MatrixView<double>(xg.data(), n, 1, n));
    ASSERT_TRUE(sg.converged);
    gc_total += sg.iterations;
  }
  EXPECT_LT(gc_total, lg_total);
}

TEST(PseudoGcroDr, SolvesMultipleRhs) {
  const auto a = poisson2d(12, 12);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  DenseMatrix<double> b(n, 4);
  int c = 0;
  for (const double nu : kPoissonNus) {
    const auto f = poisson2d_rhs(12, 12, nu);
    std::copy(f.begin(), f.end(), b.col(c++));
  }
  DenseMatrix<double> x(n, 4);
  SolverOptions opts;
  opts.restart = 20;
  opts.recycle = 6;
  opts.tol = 1e-9;
  opts.max_iterations = 2000;
  PseudoGcroDr<double> solver(opts);
  const auto st = solver.solve(op, nullptr, b.view(), x.view());
  EXPECT_TRUE(st.converged);
  DenseMatrix<double> check(n, 4);
  a.spmm(x.view(), check.view());
  EXPECT_LT(testing::diff_fro<double>(check.view(), b.view()), 1e-6);
  EXPECT_TRUE(solver.has_recycled_space());
}

TEST(PseudoGcroDr, RecyclingHelpsSecondSolve) {
  const auto a = poisson2d(16, 16);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  SolverOptions opts;
  opts.restart = 20;
  opts.recycle = 6;
  opts.tol = 1e-8;
  opts.same_system = true;
  opts.max_iterations = 5000;
  PseudoGcroDr<double> solver(opts);
  const auto b1 = random_matrix<double>(n, 3, 97);
  const auto b2 = random_matrix<double>(n, 3, 98);
  DenseMatrix<double> x1(n, 3), x2(n, 3);
  const auto s1 = solver.solve(op, nullptr, b1.view(), x1.view());
  const auto s2 = solver.solve(op, nullptr, b2.view(), x2.view());
  ASSERT_TRUE(s1.converged);
  ASSERT_TRUE(s2.converged);
  // The recycled solve must beat restarted GMRES with the same restart
  // (the paper's comparison); a fresh GCRO-DR may do better still since
  // `same_system` freezes the deflation space (section III-B trade-off).
  DenseMatrix<double> xg(n, 3);
  const auto sg = pseudo_block_gmres<double>(op, nullptr, b2.view(), xg.view(), opts);
  ASSERT_TRUE(sg.converged);
  EXPECT_LT(s2.iterations, sg.iterations);
}

TEST(PseudoGcroDr, MatchesSingleLaneGcroDr) {
  // With p = 1, pseudo-block GCRO-DR and GCRO-DR are the same algorithm.
  const auto a = poisson2d(10, 10);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(10, 10, 0.1);
  SolverOptions opts;
  opts.restart = 12;
  opts.recycle = 4;
  opts.tol = 1e-9;
  std::vector<double> x1(b.size(), 0.0), x2(b.size(), 0.0);
  GcroDr<double> block(opts);
  PseudoGcroDr<double> pseudo(opts);
  const auto s1 = block.solve(op, nullptr, MatrixView<const double>(b.data(), n, 1, n),
                              MatrixView<double>(x1.data(), n, 1, n));
  const auto s2 = pseudo.solve(op, nullptr, MatrixView<const double>(b.data(), n, 1, n),
                               MatrixView<double>(x2.data(), n, 1, n));
  ASSERT_TRUE(s1.converged);
  ASSERT_TRUE(s2.converged);
  EXPECT_EQ(s1.iterations, s2.iterations);
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(x1[size_t(i)], x2[size_t(i)], 1e-7);
}

TEST(PseudoGcroDr, FusedReductionsBeatSequentialGcroDr) {
  const auto a = poisson2d(12, 12);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  const auto b = random_matrix<double>(n, 4, 99);
  SolverOptions opts;
  opts.restart = 15;
  opts.recycle = 5;
  opts.tol = 1e-8;
  PseudoGcroDr<double> fused(opts);
  DenseMatrix<double> x(n, 4);
  const auto sf = fused.solve(op, nullptr, b.view(), x.view());
  ASSERT_TRUE(sf.converged);
  std::int64_t sequential = 0;
  for (index_t c = 0; c < 4; ++c) {
    GcroDr<double> single(opts);
    std::vector<double> bc(b.col(c), b.col(c) + n), xc(static_cast<size_t>(n), 0.0);
    const auto st = single.solve(op, nullptr, MatrixView<const double>(bc.data(), n, 1, n),
                                 MatrixView<double>(xc.data(), n, 1, n));
    ASSERT_TRUE(st.converged);
    sequential += st.reductions;
  }
  EXPECT_LT(sf.reductions, sequential);
}

}  // namespace
}  // namespace bkr
