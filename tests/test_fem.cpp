// Unit tests: problem generators (Poisson, elasticity, Maxwell).
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numeric>

#include "direct/factor.hpp"
#include "fem/elasticity3d.hpp"
#include "fem/maxwell3d.hpp"
#include "fem/poisson2d.hpp"
#include "test_helpers.hpp"

namespace bkr {
namespace {

using cplx = std::complex<double>;

TEST(Poisson2d, StencilStructure) {
  const auto a = poisson2d(3, 3);
  EXPECT_EQ(a.rows(), 9);
  EXPECT_DOUBLE_EQ(a.at(4, 4), 4.0);  // centre
  EXPECT_DOUBLE_EQ(a.at(4, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(4, 3), -1.0);
  EXPECT_DOUBLE_EQ(a.at(4, 5), -1.0);
  EXPECT_DOUBLE_EQ(a.at(4, 7), -1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 8), 0.0);
}

TEST(Poisson2d, SymmetricPositiveRowSums) {
  const auto a = poisson2d(7, 5);
  for (index_t i = 0; i < a.rows(); ++i) {
    double row = 0;
    for (index_t l = a.rowptr()[size_t(i)]; l < a.rowptr()[size_t(i) + 1]; ++l) {
      row += a.values()[size_t(l)];
      // symmetry
      EXPECT_DOUBLE_EQ(a.at(a.colind()[size_t(l)], i), a.values()[size_t(l)]);
    }
    EXPECT_GE(row, 0.0);  // diagonally dominant
  }
}

TEST(Poisson2d, SolvesManufacturedProblem) {
  // -Delta u = 2 pi^2 sin(pi x) sin(pi y) has u = sin(pi x) sin(pi y);
  // second-order convergence of the 5-point stencil.
  double err_prev = 0;
  for (const index_t nn : {15, 31}) {
    const auto a = poisson2d(nn, nn);
    const double h = 1.0 / double(nn + 1);
    std::vector<double> b(static_cast<size_t>(nn * nn)), exact(static_cast<size_t>(nn * nn));
    for (index_t j = 0; j < nn; ++j)
      for (index_t i = 0; i < nn; ++i) {
        const double xx = (i + 1) * h, yy = (j + 1) * h;
        exact[size_t(i + j * nn)] = std::sin(M_PI * xx) * std::sin(M_PI * yy);
        b[size_t(i + j * nn)] = 2 * M_PI * M_PI * exact[size_t(i + j * nn)] * h * h;
      }
    // Direct solve.
    SparseLDLT<double> f(a);
    std::vector<double> x = b;
    f.solve(MatrixView<double>(x.data(), a.rows(), 1, a.rows()));
    double err = 0;
    for (size_t i = 0; i < x.size(); ++i) err = std::max(err, std::abs(x[i] - exact[i]));
    if (err_prev > 0) {
      EXPECT_LT(err, 0.35 * err_prev);  // ~4x per refinement
    }
    err_prev = err;
  }
}

TEST(Poisson2d, RhsSequenceMatchesPaperWidths) {
  for (const double nu : kPoissonNus) {
    const auto f = poisson2d_rhs(8, 8, nu);
    EXPECT_EQ(f.size(), 64u);
    // The Gaussian peaks near (1,1) — top-right corner dof is largest for
    // narrow sources.
    if (nu <= 0.1) {
      const auto mx = std::max_element(f.begin(), f.end());
      EXPECT_EQ(index_t(mx - f.begin()), index_t(63));
    }
  }
}

TEST(Elasticity3d, DimensionsAndSymmetry) {
  ElasticityConfig cfg;
  cfg.ne = 3;
  const auto prob = elasticity3d(cfg);
  // (ne+1)^3 nodes minus the clamped x=0 face, times 3 dofs.
  const index_t nn = 4;
  EXPECT_EQ(prob.nfree, 3 * (nn * nn * nn - nn * nn));
  EXPECT_EQ(prob.matrix.rows(), prob.nfree);
  // Spot-check symmetry.
  const auto& a = prob.matrix;
  for (index_t i = 0; i < a.rows(); i += 7)
    for (index_t l = a.rowptr()[size_t(i)]; l < a.rowptr()[size_t(i) + 1]; ++l)
      EXPECT_NEAR(a.at(a.colind()[size_t(l)], i), a.values()[size_t(l)], 1e-10);
}

TEST(Elasticity3d, SpdAfterClamping) {
  ElasticityConfig cfg;
  cfg.ne = 3;
  const auto prob = elasticity3d(cfg);
  // LDL^T succeeds without pivot failures only if SPD (clamped face
  // removes the rigid-body kernel).
  EXPECT_NO_THROW(SparseLDLT<double> f(prob.matrix));
}

TEST(Elasticity3d, RigidBodyModesNearNullspaceOfFreeBody) {
  // On the *unclamped* operator the six modes are an exact nullspace; on
  // the clamped one, K * mode is supported near the clamped face only.
  // Check the energy of each mode is small relative to a random vector.
  ElasticityConfig cfg;
  cfg.ne = 4;
  const auto prob = elasticity3d(cfg);
  const index_t n = prob.nfree;
  std::vector<double> w(static_cast<size_t>(n));
  Rng rng(101);
  std::vector<double> rnd(static_cast<size_t>(n));
  for (auto& v : rnd) v = rng.scalar<double>();
  prob.matrix.spmv(rnd.data(), w.data());
  const double rand_energy = dot<double>(n, rnd.data(), w.data()) / dot<double>(n, rnd.data(), rnd.data());
  for (int mode = 0; mode < 3; ++mode) {  // translations
    prob.matrix.spmv(prob.rigid_body_modes.col(mode), w.data());
    const double e = dot<double>(n, prob.rigid_body_modes.col(mode), w.data()) /
                     dot<double>(n, prob.rigid_body_modes.col(mode), prob.rigid_body_modes.col(mode));
    EXPECT_LT(e, 0.5 * rand_energy);
  }
}

TEST(Elasticity3d, InclusionSoftensMatrix) {
  ElasticityConfig hard;
  hard.ne = 4;
  ElasticityConfig soft = hard;
  soft.inclusion = Inclusion{30.0, 0.4, 0.5, 0.5, 0.5};
  const auto ph = elasticity3d(hard);
  const auto ps = elasticity3d(soft);
  ASSERT_EQ(ph.matrix.nnz(), ps.matrix.nnz());
  // The softened matrix has strictly smaller Frobenius norm.
  double nh = 0, ns = 0;
  for (const auto v : ph.matrix.values()) nh += v * v;
  for (const auto v : ps.matrix.values()) ns += v * v;
  EXPECT_LT(ns, nh);
}

TEST(Elasticity3d, SequenceMatricesDiffer) {
  ElasticityConfig cfg;
  cfg.ne = 3;
  std::vector<double> norms;
  for (const auto& inc : kElasticitySequence) {
    cfg.inclusion = inc;
    const auto prob = elasticity3d(cfg);
    double s = 0;
    for (const auto v : prob.matrix.values()) s += v * v;
    norms.push_back(s);
  }
  for (size_t i = 1; i < norms.size(); ++i) EXPECT_NE(norms[i], norms[i - 1]);
}

TEST(Maxwell3d, EdgeCountsMatchPecElimination) {
  MaxwellConfig cfg;
  cfg.n = 4;
  const auto prob = maxwell3d(cfg);
  // Free x-edges: n * (n-1)^2 per direction after removing tangential
  // boundary edges; 3 directions.
  const index_t n = 4;
  EXPECT_EQ(prob.nfree, 3 * n * (n - 1) * (n - 1));
  EXPECT_EQ(prob.matrix.rows(), prob.nfree);
  EXPECT_EQ(index_t(prob.edge_dir.size()), prob.nfree);
}

TEST(Maxwell3d, ComplexSymmetricNotHermitian) {
  MaxwellConfig cfg;
  cfg.n = 5;
  cfg.loss = 0.3;
  const auto prob = maxwell3d(cfg);
  const auto& a = prob.matrix;
  for (index_t i = 0; i < a.rows(); i += 11)
    for (index_t l = a.rowptr()[size_t(i)]; l < a.rowptr()[size_t(i) + 1]; ++l) {
      const index_t j = a.colind()[size_t(l)];
      // Symmetric: A(j,i) == A(i,j) (no conjugation).
      EXPECT_LT(std::abs(a.at(j, i) - a.values()[size_t(l)]), 1e-12);
    }
  // Diagonal entries carry the negative complex shift -> nonzero
  // imaginary part (not Hermitian).
  bool has_imag = false;
  for (const auto v : a.diagonal())
    if (std::abs(v.imag()) > 1e-12) has_imag = true;
  EXPECT_TRUE(has_imag);
}

TEST(Maxwell3d, CurlCurlAnnihilatesGradients) {
  // Without the mass shift, C^T C applied to a discrete gradient field is
  // zero: edges of grad(phi) with phi nodal. Build with wavelengths ~ 0
  // (tiny shift) and test near-annihilation.
  MaxwellConfig cfg;
  cfg.n = 4;
  cfg.wavelengths = 1e-6;
  cfg.loss = 0.0;
  const auto prob = maxwell3d(cfg);
  const index_t n = cfg.n;
  const double h = prob.h;
  // phi(x,y,z) = x*y*z on nodes; gradient on an edge = difference of phi
  // at endpoints (per unit h in the incidence convention).
  // The potential must vanish on the boundary so that its discrete
  // gradient has zero tangential trace (the PEC-eliminated edges).
  auto phi = [](double x, double y, double z) {
    return std::sin(M_PI * x) * std::sin(M_PI * y) * std::sin(M_PI * z);
  };
  std::vector<cplx> grad(static_cast<size_t>(prob.nfree));
  for (index_t e = 0; e < prob.nfree; ++e) {
    const double cx = prob.edge_center[size_t(3 * e)];
    const double cy = prob.edge_center[size_t(3 * e + 1)];
    const double cz = prob.edge_center[size_t(3 * e + 2)];
    const int d = prob.edge_dir[size_t(e)];
    const double dx = (d == 0) ? h / 2 : 0, dy = (d == 1) ? h / 2 : 0, dz = (d == 2) ? h / 2 : 0;
    grad[size_t(e)] = phi(cx + dx, cy + dy, cz + dz) - phi(cx - dx, cy - dy, cz - dz);
  }
  std::vector<cplx> out(static_cast<size_t>(prob.nfree));
  prob.matrix.spmv(grad.data(), out.data());
  double gn = 0, on = 0;
  for (index_t e = 0; e < prob.nfree; ++e) {
    gn += std::norm(grad[size_t(e)]);
    on += std::norm(out[size_t(e)]);
  }
  (void)n;
  EXPECT_LT(std::sqrt(on), 1e-8 * std::sqrt(gn));
}

TEST(Maxwell3d, AntennaRhsLocalized) {
  MaxwellConfig cfg;
  cfg.n = 10;
  const auto prob = maxwell3d(cfg);
  const auto b = antenna_rhs(prob, 3, 32, 0.35, 0.5);
  index_t nonzeros = 0;
  for (const auto& v : b)
    if (std::abs(v) > 0) ++nonzeros;
  EXPECT_GT(nonzeros, 0);
  EXPECT_LT(nonzeros, prob.nfree / 10);  // localized footprint
}

TEST(Maxwell3d, DifferentAntennasGiveIndependentRhs) {
  MaxwellConfig cfg;
  cfg.n = 10;
  const auto prob = maxwell3d(cfg);
  const auto b0 = antenna_rhs(prob, 0, 32);
  const auto b8 = antenna_rhs(prob, 8, 32);  // 90 degrees apart
  cplx overlap = 0;
  double n0 = 0, n8 = 0;
  for (index_t e = 0; e < prob.nfree; ++e) {
    overlap += std::conj(b0[size_t(e)]) * b8[size_t(e)];
    n0 += std::norm(b0[size_t(e)]);
    n8 += std::norm(b8[size_t(e)]);
  }
  ASSERT_GT(n0, 0.0);
  ASSERT_GT(n8, 0.0);
  EXPECT_LT(std::abs(overlap) / std::sqrt(n0 * n8), 1e-6);
}

TEST(Maxwell3d, InclusionChangesOperator) {
  MaxwellConfig plain;
  plain.n = 6;
  MaxwellConfig with = plain;
  with.inclusion_radius = 0.15;
  const auto p1 = maxwell3d(plain);
  const auto p2 = maxwell3d(with);
  ASSERT_EQ(p1.matrix.nnz(), p2.matrix.nnz());
  double diff = 0;
  for (index_t l = 0; l < p1.matrix.nnz(); ++l)
    diff += std::norm(p1.matrix.values()[size_t(l)] - p2.matrix.values()[size_t(l)]);
  EXPECT_GT(diff, 0.0);
}

}  // namespace
}  // namespace bkr
