// Unit tests: dense nonsymmetric eigensolvers (the GCRO-DR deflation
// kernel).
#include <gtest/gtest.h>

#include <algorithm>
#include <complex>

#include "la/eig.hpp"
#include "test_helpers.hpp"

namespace bkr {
namespace {

using testing::random_matrix;
using cplx = std::complex<double>;

// ||A z - lambda z|| for every eigenpair.
double eigen_residual(const DenseMatrix<cplx>& a, const EigDecomposition& e) {
  const index_t n = a.rows();
  double worst = 0;
  for (index_t j = 0; j < n; ++j) {
    double r = 0;
    for (index_t i = 0; i < n; ++i) {
      cplx s = 0;
      for (index_t l = 0; l < n; ++l) s += a(i, l) * e.vectors(l, j);
      s -= e.values[size_t(j)] * e.vectors(i, j);
      r += std::norm(s);
    }
    worst = std::max(worst, std::sqrt(r));
  }
  return worst;
}

TEST(Eig, DiagonalMatrix) {
  DenseMatrix<cplx> a(4, 4);
  a(0, 0) = {3, 0};
  a(1, 1) = {1, 2};
  a(2, 2) = {-5, 0};
  a(3, 3) = {0, 1};
  const auto e = eig_general(copy_of(a));
  std::vector<double> mags;
  for (const auto& v : e.values) mags.push_back(std::abs(v));
  std::sort(mags.begin(), mags.end());
  EXPECT_NEAR(mags[0], 1.0, 1e-10);
  EXPECT_NEAR(mags[1], std::sqrt(5.0), 1e-10);
  EXPECT_NEAR(mags[2], 3.0, 1e-10);
  EXPECT_NEAR(mags[3], 5.0, 1e-10);
}

TEST(Eig, RandomComplexResiduals) {
  const auto a = random_matrix<cplx>(20, 20, 41);
  const auto e = eig_general(copy_of(a));
  EXPECT_LT(eigen_residual(a, e), 1e-9);
}

TEST(Eig, RandomRealPromotedResiduals) {
  const auto ar = random_matrix<double>(15, 15, 42);
  DenseMatrix<cplx> a(15, 15);
  for (index_t j = 0; j < 15; ++j)
    for (index_t i = 0; i < 15; ++i) a(i, j) = ar(i, j);
  const auto e = eig_general(copy_of(a));
  EXPECT_LT(eigen_residual(a, e), 1e-9);
  // Eigenvalues of a real matrix come in conjugate pairs.
  for (const auto& v : e.values) {
    if (std::abs(v.imag()) < 1e-9) continue;
    bool found = false;
    for (const auto& w : e.values)
      if (std::abs(w - std::conj(v)) < 1e-7 * std::max(1.0, std::abs(v))) found = true;
    EXPECT_TRUE(found) << "missing conjugate of " << v;
  }
}

TEST(Eig, GeneralizedReducesToStandardWithIdentityW) {
  const auto a = random_matrix<cplx>(12, 12, 43);
  const auto w = DenseMatrix<cplx>::identity(12);
  const auto e1 = eig_generalized(a, w);
  const auto e2 = eig_general(copy_of(a));
  auto sorted = [](std::vector<cplx> v) {
    std::sort(v.begin(), v.end(), [](cplx x, cplx y) {
      return std::abs(x) != std::abs(y) ? std::abs(x) < std::abs(y) : x.real() < y.real();
    });
    return v;
  };
  const auto v1 = sorted(e1.values), v2 = sorted(e2.values);
  for (size_t i = 0; i < v1.size(); ++i) EXPECT_LT(std::abs(v1[i] - v2[i]), 1e-8);
}

TEST(Eig, GeneralizedPencilResiduals) {
  const auto t = random_matrix<cplx>(10, 10, 44);
  auto w = random_matrix<cplx>(10, 10, 45);
  for (index_t i = 0; i < 10; ++i) w(i, i) += cplx(5, 0);
  const auto e = eig_generalized(t, w);
  // Check T z = theta W z.
  for (index_t j = 0; j < 10; ++j) {
    double r = 0;
    for (index_t i = 0; i < 10; ++i) {
      cplx s = 0;
      for (index_t l = 0; l < 10; ++l)
        s += t(i, l) * e.vectors(l, j) - e.values[size_t(j)] * w(i, l) * e.vectors(l, j);
      r += std::norm(s);
    }
    EXPECT_LT(std::sqrt(r), 1e-8);
  }
}

TEST(Eig, SmallestVectorsComplexSpanInvariant) {
  // Matrix with known smallest eigenvalues: diagonal + small coupling.
  DenseMatrix<cplx> a(8, 8);
  for (index_t i = 0; i < 8; ++i) a(i, i) = cplx(double(i + 1), 0.3 * double(i));
  a(0, 7) = {0.01, 0};
  const auto p = smallest_eig_vectors<cplx>(a, 3);
  EXPECT_EQ(p.rows(), 8);
  EXPECT_EQ(p.cols(), 3);
  // The span should be dominated by coordinates 0..2 (smallest diagonal).
  for (index_t j = 0; j < 3; ++j) {
    double low = 0, high = 0;
    for (index_t i = 0; i < 8; ++i) {
      const double v = std::norm(p(i, j));
      (i < 3 ? low : high) += v;
    }
    EXPECT_GT(low, 100 * high);
  }
}

TEST(Eig, SmallestVectorsRealConjugatePairSpan) {
  // 2x2 rotation block (complex pair, |lambda| = 1) + large real modes.
  DenseMatrix<double> a(6, 6);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = -1.0;
  a(1, 1) = 0.0;
  for (index_t i = 2; i < 6; ++i) a(i, i) = 10.0 + double(i);
  const auto p = smallest_eig_vectors<double>(a, 2);
  EXPECT_EQ(p.cols(), 2);
  // The real span of the conjugate pair is e_0, e_1.
  for (index_t j = 0; j < 2; ++j) {
    double low = 0, high = 0;
    for (index_t i = 0; i < 6; ++i) {
      const double v = p(i, j) * p(i, j);
      (i < 2 ? low : high) += v;
    }
    EXPECT_GT(low, 1e6 * high);
  }
}

TEST(Eig, UpperTriangularEigenvaluesAreDiagonal) {
  auto a = random_matrix<cplx>(9, 9, 46);
  for (index_t j = 0; j < 9; ++j)
    for (index_t i = j + 1; i < 9; ++i) a(i, j) = 0;
  const auto e = eig_general(copy_of(a));
  std::vector<double> expected, got;
  for (index_t i = 0; i < 9; ++i) expected.push_back(std::abs(a(i, i)));
  for (const auto& v : e.values) got.push_back(std::abs(v));
  std::sort(expected.begin(), expected.end());
  std::sort(got.begin(), got.end());
  for (size_t i = 0; i < 9; ++i) EXPECT_NEAR(got[i], expected[i], 1e-9);
}

}  // namespace
}  // namespace bkr
