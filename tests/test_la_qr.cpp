// Unit tests: Householder QR, incremental QR and CholQR.
#include <gtest/gtest.h>

#include <complex>

#include "la/qr.hpp"
#include "test_helpers.hpp"

namespace bkr {
namespace {

using testing::diff_fro;
using testing::ortho_defect;
using testing::random_matrix;
using cplx = std::complex<double>;

template <class T>
class QrSuite : public ::testing::Test {};
using Scalars = ::testing::Types<double, cplx>;
TYPED_TEST_SUITE(QrSuite, Scalars);

TYPED_TEST(QrSuite, HouseholderReconstructs) {
  using T = TypeParam;
  const auto a = random_matrix<T>(10, 6, 21);
  HouseholderQR<T> qr(copy_of(a));
  const DenseMatrix<T> q = qr.q_thin();
  const DenseMatrix<T> r = qr.r();
  EXPECT_LT(ortho_defect<T>(q.view()), 1e-13);
  DenseMatrix<T> back(10, 6);
  gemm<T>(Trans::N, Trans::N, T(1), q.view(), r.view(), T(0), back.view());
  EXPECT_LT(diff_fro<T>(back.view(), a.view()), 1e-12);
}

TYPED_TEST(QrSuite, HouseholderQtQIsIdentity) {
  using T = TypeParam;
  const auto a = random_matrix<T>(8, 4, 22);
  HouseholderQR<T> qr(copy_of(a));
  auto b = random_matrix<T>(8, 3, 23);
  const DenseMatrix<T> orig = copy_of(b);
  qr.apply_qt(b.view());
  qr.apply_q(b.view());
  EXPECT_LT(diff_fro<T>(b.view(), orig.view()), 1e-12);
}

TYPED_TEST(QrSuite, IncrementalMatchesBatch) {
  using T = TypeParam;
  // Hessenberg-like columns: column j nonzero in its first j+2 rows.
  const index_t m = 7;
  auto h = random_matrix<T>(m + 1, m, 24);
  for (index_t j = 0; j < m; ++j)
    for (index_t i = j + 2; i < m + 1; ++i) h(i, j) = T(0);
  IncrementalQR<T> inc(m + 1, m);
  for (index_t j = 0; j < m; ++j) inc.add_column(h.col(j), j + 2);
  HouseholderQR<T> batch(copy_of(h));
  const DenseMatrix<T> rb = batch.r();
  // R is unique up to unit diagonal phases; compare magnitudes.
  for (index_t j = 0; j < m; ++j)
    for (index_t i = 0; i <= j; ++i)
      EXPECT_NEAR(abs_val(inc.r(i, j)), abs_val(rb(i, j)), 1e-11);
  // Q reconstructs the matrix.
  const DenseMatrix<T> q = inc.q_thin(m + 1);
  const DenseMatrix<T> r = inc.r_matrix();
  DenseMatrix<T> back(m + 1, m);
  gemm<T>(Trans::N, Trans::N, T(1), q.view(), r.view(), T(0), back.view());
  EXPECT_LT(diff_fro<T>(back.view(), h.view()), 1e-12);
}

TYPED_TEST(QrSuite, IncrementalApplyQtRangeMatchesFull) {
  using T = TypeParam;
  const index_t m = 6;
  auto h = random_matrix<T>(m + 1, m, 25);
  for (index_t j = 0; j < m; ++j)
    for (index_t i = j + 2; i < m + 1; ++i) h(i, j) = T(0);
  const auto g0 = random_matrix<T>(m + 1, 2, 26);
  // Incrementally updated ghat.
  IncrementalQR<T> inc(m + 1, m);
  DenseMatrix<T> ghat = copy_of(g0);
  for (index_t j = 0; j < m; ++j) {
    const index_t before = inc.cols();
    inc.add_column(h.col(j), j + 2);
    inc.apply_qt_range(ghat.view(), before);
  }
  // One-shot application.
  DenseMatrix<T> ghat2 = copy_of(g0);
  inc.apply_qt(ghat2.view());
  EXPECT_LT(diff_fro<T>(ghat.view(), ghat2.view()), 1e-12);
}

TYPED_TEST(QrSuite, CholQrOrthonormalizes) {
  using T = TypeParam;
  auto v = random_matrix<T>(50, 6, 27);
  DenseMatrix<T> r(6, 6);
  const DenseMatrix<T> orig = copy_of(v);
  ASSERT_TRUE(cholqr<T>(v.view(), r.view()));
  EXPECT_LT(ortho_defect<T>(v.view()), 1e-12);
  DenseMatrix<T> back(50, 6);
  gemm<T>(Trans::N, Trans::N, T(1), v.view(), r.view(), T(0), back.view());
  EXPECT_LT(diff_fro<T>(back.view(), orig.view()), 1e-11);
}

TYPED_TEST(QrSuite, CholQrFailsOnRankDeficiency) {
  using T = TypeParam;
  auto v = random_matrix<T>(30, 3, 28);
  for (index_t i = 0; i < 30; ++i) v(i, 2) = v(i, 0);  // duplicate column
  DenseMatrix<T> r(3, 3);
  EXPECT_FALSE(cholqr<T>(v.view(), r.view()));
}

TYPED_TEST(QrSuite, CholQrRankDiagnostic) {
  using T = TypeParam;
  auto v = random_matrix<T>(40, 4, 29);
  for (index_t i = 0; i < 40; ++i) v(i, 3) = v(i, 1) - v(i, 2);
  EXPECT_EQ(cholqr_rank<T>(v.view()), 3);
  const auto full = random_matrix<T>(40, 4, 30);
  EXPECT_EQ(cholqr_rank<T>(full.view()), 4);
}

TYPED_TEST(QrSuite, HouseholderTsqrFallback) {
  using T = TypeParam;
  auto v = random_matrix<T>(25, 5, 31);
  DenseMatrix<T> r(5, 5);
  const DenseMatrix<T> orig = copy_of(v);
  householder_tsqr<T>(v.view(), r.view());
  EXPECT_LT(ortho_defect<T>(v.view()), 1e-13);
  DenseMatrix<T> back(25, 5);
  gemm<T>(Trans::N, Trans::N, T(1), v.view(), r.view(), T(0), back.view());
  EXPECT_LT(diff_fro<T>(back.view(), orig.view()), 1e-12);
}

// CholQR on badly scaled columns still succeeds with well-separated
// magnitudes (property sweep over the scale).
class CholQrScale : public ::testing::TestWithParam<double> {};

TEST_P(CholQrScale, HandlesColumnScaling) {
  auto v = random_matrix<double>(60, 4, 32);
  const double s = GetParam();
  for (index_t i = 0; i < 60; ++i) v(i, 1) *= s;
  DenseMatrix<double> r(4, 4);
  ASSERT_TRUE(cholqr<double>(v.view(), r.view()));
  EXPECT_LT(ortho_defect<double>(v.view()), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Scales, CholQrScale, ::testing::Values(1e-6, 1e-3, 1.0, 1e3, 1e6));

}  // namespace
}  // namespace bkr
