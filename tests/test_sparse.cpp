// Unit tests: CSR matrices, sparse products, graphs, partitioning.
#include <gtest/gtest.h>

#include <complex>
#include <numeric>

#include "fem/poisson2d.hpp"
#include "sparse/assembler.hpp"
#include "sparse/csr.hpp"
#include "sparse/graph.hpp"
#include "sparse/partition.hpp"
#include "test_helpers.hpp"

namespace bkr {
namespace {

using testing::random_matrix;
using cplx = std::complex<double>;

TEST(Csr, CooBuilderSumsDuplicates) {
  CooBuilder<double> b(3, 3);
  b.add(0, 0, 1.0);
  b.add(0, 0, 2.0);
  b.add(1, 2, -1.0);
  b.add(2, 1, 4.0);
  const auto a = b.build();
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.at(1, 2), -1.0);
  EXPECT_DOUBLE_EQ(a.at(2, 1), 4.0);
  EXPECT_DOUBLE_EQ(a.at(2, 2), 0.0);
}

TEST(Csr, SpmvMatchesDense) {
  const auto a = poisson2d(5, 4);
  const auto d = a.to_dense();
  std::vector<double> x(20), y(20), yd(20);
  std::iota(x.begin(), x.end(), 1.0);
  a.spmv(x.data(), y.data());
  gemv<double>(Trans::N, 1.0, d.view(), x.data(), 0.0, yd.data());
  for (index_t i = 0; i < 20; ++i) EXPECT_NEAR(y[size_t(i)], yd[size_t(i)], 1e-13);
}

TEST(Csr, SpmmMatchesColumnwiseSpmv) {
  const auto a = poisson2d(6, 6);
  const auto x = random_matrix<double>(36, 5, 51);
  DenseMatrix<double> y(36, 5), yc(36, 5);
  a.spmm(x.view(), y.view());
  for (index_t c = 0; c < 5; ++c) a.spmv(x.col(c), yc.col(c));
  EXPECT_LT(testing::diff_fro<double>(y.view(), yc.view()), 1e-13);
}

TEST(Csr, TransposeInvolution) {
  CooBuilder<double> b(3, 4);
  b.add(0, 1, 2.0);
  b.add(2, 3, -1.0);
  b.add(1, 0, 5.0);
  const auto a = b.build();
  const auto att = transpose(transpose(a));
  ASSERT_EQ(att.rows(), a.rows());
  for (index_t i = 0; i < 3; ++i)
    for (index_t j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(att.at(i, j), a.at(i, j));
}

TEST(Csr, MultiplyMatchesDense) {
  const auto a = poisson2d(4, 3);  // 12 x 12
  const auto b = transpose(a);
  const auto c = multiply(a, b);
  const auto cd = c.to_dense();
  DenseMatrix<double> expected(12, 12);
  gemm<double>(Trans::N, Trans::N, 1.0, a.to_dense().view(), b.to_dense().view(), 0.0,
               expected.view());
  EXPECT_LT(testing::diff_fro<double>(cd.view(), expected.view()), 1e-12);
}

TEST(Csr, TripleProductGalerkin) {
  const auto a = poisson2d(4, 4);  // 16 x 16
  // Simple aggregation prolongator: 2 coarse points.
  CooBuilder<double> pb(16, 2);
  for (index_t i = 0; i < 16; ++i) pb.add(i, i < 8 ? 0 : 1, 1.0);
  const auto p = pb.build();
  const auto ac = triple_product(p, a);
  EXPECT_EQ(ac.rows(), 2);
  DenseMatrix<double> expected(2, 2);
  const auto pd = p.to_dense();
  DenseMatrix<double> ap(16, 2);
  gemm<double>(Trans::N, Trans::N, 1.0, a.to_dense().view(), pd.view(), 0.0, ap.view());
  gemm<double>(Trans::C, Trans::N, 1.0, pd.view(), ap.view(), 0.0, expected.view());
  EXPECT_LT(testing::diff_fro<double>(ac.to_dense().view(), expected.view()), 1e-12);
}

TEST(Csr, ExtractSubmatrixDropsOutside) {
  const auto a = poisson2d(4, 4);
  const std::vector<index_t> rows = {0, 1, 4, 5};
  const auto sub = extract_submatrix(a, rows);
  EXPECT_EQ(sub.rows(), 4);
  EXPECT_DOUBLE_EQ(sub.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(sub.at(0, 1), -1.0);  // 0-1 neighbours
  EXPECT_DOUBLE_EQ(sub.at(0, 2), -1.0);  // 0-4 neighbours
  EXPECT_DOUBLE_EQ(sub.at(1, 2), 0.0);   // 1-4 not neighbours
}

TEST(Graph, AdjacencySymmetric) {
  const auto a = poisson2d(3, 3);
  const auto g = adjacency_of(a);
  EXPECT_EQ(g.n, 9);
  // Corner has 2 neighbours, centre has 4.
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(4), 4);
}

TEST(Graph, RcmIsAPermutation) {
  const auto a = poisson2d(7, 5);
  const auto g = adjacency_of(a);
  const auto perm = rcm_ordering(g);
  ASSERT_EQ(index_t(perm.size()), g.n);
  std::vector<char> seen(perm.size(), 0);
  for (const auto v : perm) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, g.n);
    EXPECT_FALSE(seen[size_t(v)]);
    seen[size_t(v)] = 1;
  }
}

TEST(Graph, RcmReducesBandwidth) {
  // A graph ordered badly on purpose: path graph with scrambled ids.
  const index_t n = 64;
  CooBuilder<double> b(n, n);
  auto scramble = [n](index_t i) { return (i * 37) % n; };
  for (index_t i = 0; i < n; ++i) b.add(scramble(i), scramble(i), 2.0);
  for (index_t i = 0; i + 1 < n; ++i) {
    b.add(scramble(i), scramble(i + 1), -1.0);
    b.add(scramble(i + 1), scramble(i), -1.0);
  }
  const auto a = b.build();
  const auto g = adjacency_of(a);
  const auto perm = rcm_ordering(g);
  const auto pa = permute_symmetric(a, perm);
  index_t band = 0;
  for (index_t i = 0; i < n; ++i)
    for (index_t l = pa.rowptr()[size_t(i)]; l < pa.rowptr()[size_t(i) + 1]; ++l)
      band = std::max(band, std::abs(pa.colind()[size_t(l)] - i));
  EXPECT_LE(band, 2);  // a path graph has RCM bandwidth 1 (2 with ties)
}

TEST(Graph, PermuteSymmetricPreservesSpectrumProxy) {
  const auto a = poisson2d(4, 4);
  const auto g = adjacency_of(a);
  const auto perm = rcm_ordering(g);
  const auto pa = permute_symmetric(a, perm);
  // Frobenius norm and diagonal multiset are permutation invariants.
  double na = 0, npa = 0;
  for (const auto v : a.values()) na += v * v;
  for (const auto v : pa.values()) npa += v * v;
  EXPECT_NEAR(na, npa, 1e-10);
}

TEST(Partition, GreedyCoversAllVertices) {
  const auto a = poisson2d(12, 12);
  const auto g = adjacency_of(a);
  const auto part = partition_greedy(g, 7);
  std::vector<index_t> count(7, 0);
  for (index_t v = 0; v < g.n; ++v) {
    ASSERT_GE(part.owner[size_t(v)], 0);
    ASSERT_LT(part.owner[size_t(v)], 7);
    ++count[size_t(part.owner[size_t(v)])];
  }
  index_t total = 0;
  for (index_t i = 0; i < 7; ++i) {
    EXPECT_EQ(index_t(part.interior[size_t(i)].size()), count[size_t(i)]);
    total += count[size_t(i)];
    EXPECT_GT(count[size_t(i)], 0);  // no empty part on a connected grid
  }
  EXPECT_EQ(total, g.n);
}

TEST(Partition, GreedyRoughlyBalanced) {
  const auto a = poisson2d(20, 20);
  const auto g = adjacency_of(a);
  const auto part = partition_greedy(g, 8);
  for (index_t i = 0; i < 8; ++i) {
    const auto size = index_t(part.interior[size_t(i)].size());
    EXPECT_GE(size, 25);   // 400/8 = 50 target
    EXPECT_LE(size, 100);
  }
}

TEST(Partition, OverlapGrowsByLayers) {
  const auto a = poisson2d(10, 10);
  const auto g = adjacency_of(a);
  const std::vector<index_t> seed = {0};  // corner vertex
  const auto d0 = grow_overlap(g, seed, 0);
  const auto d1 = grow_overlap(g, seed, 1);
  const auto d2 = grow_overlap(g, seed, 2);
  EXPECT_EQ(d0.size(), 1u);
  EXPECT_EQ(d1.size(), 3u);  // corner + 2 neighbours
  EXPECT_EQ(d2.size(), 6u);  // + 3 second-layer vertices
}

TEST(Partition, PartitionOfUnitySumsToOne) {
  const auto a = poisson2d(9, 9);
  const auto g = adjacency_of(a);
  for (const auto kind : {PouKind::Boolean, PouKind::Multiplicity}) {
    const auto d = make_decomposition(g, 4, 2, kind);
    std::vector<double> sum(size_t(g.n), 0.0);
    for (size_t i = 0; i < d.rows.size(); ++i)
      for (size_t l = 0; l < d.rows[i].size(); ++l) sum[size_t(d.rows[i][l])] += d.pou[i][l];
    for (index_t v = 0; v < g.n; ++v) EXPECT_NEAR(sum[size_t(v)], 1.0, 1e-12);
  }
}

TEST(Assembler, PatternScatterMatchesCoo) {
  std::vector<std::vector<index_t>> pattern = {{0, 1}, {0, 1, 2}, {1, 2}};
  PatternAssembler<double> pa(3, 3, std::move(pattern));
  pa.add(0, 0, 1.0);
  pa.add(0, 1, 2.0);
  pa.add(1, 1, 3.0);
  pa.add(1, 1, 1.0);
  pa.add(2, 2, 5.0);
  const auto a = std::move(pa).build();
  EXPECT_DOUBLE_EQ(a.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 4.0);
  EXPECT_DOUBLE_EQ(a.at(2, 2), 5.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 0.0);  // in pattern but never written
}

}  // namespace
}  // namespace bkr
