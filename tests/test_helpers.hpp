// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <complex>

#include "common/rng.hpp"
#include "la/blas.hpp"
#include "la/dense.hpp"
#include "sparse/csr.hpp"

namespace bkr::testing {

template <class T>
DenseMatrix<T> random_matrix(index_t rows, index_t cols, unsigned seed = 1) {
  Rng rng(seed);
  DenseMatrix<T> a(rows, cols);
  for (index_t j = 0; j < cols; ++j)
    for (index_t i = 0; i < rows; ++i) a(i, j) = rng.scalar<T>();
  return a;
}

// || A - B ||_F
template <class T>
double diff_fro(MatrixView<const T> a, MatrixView<const T> b) {
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.cols(), b.cols());
  double s = 0;
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i) {
      const auto d = abs_val(a(i, j) - b(i, j));
      s += d * d;
    }
  return std::sqrt(s);
}

// || V^H V - I ||_F: orthonormality defect.
template <class T>
double ortho_defect(MatrixView<const T> v) {
  DenseMatrix<T> g(v.cols(), v.cols());
  gram<T>(v, g.view());
  for (index_t i = 0; i < v.cols(); ++i) g(i, i) -= T(1);
  return norm_fro<T>(g.view());
}

// Relative residual ||b - A x|| / ||b|| for a CSR system.
template <class T>
double relative_residual(const CsrMatrix<T>& a, const std::vector<T>& x, const std::vector<T>& b) {
  std::vector<T> r(b.size());
  a.spmv(x.data(), r.data());
  double num = 0, den = 0;
  for (size_t i = 0; i < b.size(); ++i) {
    num += std::norm(std::complex<double>(abs_val(b[i] - r[i]), 0));
    den += std::norm(std::complex<double>(abs_val(b[i]), 0));
  }
  return std::sqrt(num) / std::sqrt(den);
}

}  // namespace bkr::testing
