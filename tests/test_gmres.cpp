// Unit/integration tests: (block / pseudo-block) GMRES.
#include <gtest/gtest.h>

#include <complex>

#include "core/gmres.hpp"
#include "direct/factor.hpp"
#include "fem/maxwell3d.hpp"
#include "fem/poisson2d.hpp"
#include "test_helpers.hpp"

namespace bkr {
namespace {

using cplx = std::complex<double>;
using testing::random_matrix;

// A preconditioner wrapping the exact direct solve (makes GMRES converge
// in one iteration — a sharp correctness probe).
template <class T>
class ExactPrecond final : public Preconditioner<T> {
 public:
  explicit ExactPrecond(const CsrMatrix<T>& a) : f_(a), n_(a.rows()) {}
  [[nodiscard]] index_t n() const override { return n_; }
  void apply(MatrixView<const T> r, MatrixView<T> z) override { f_.solve_copy(r, z); }

 private:
  SparseLDLT<T> f_;
  index_t n_;
};

// Diagonal (Jacobi) preconditioner used as a cheap linear M.
template <class T>
class DiagPrecond final : public Preconditioner<T> {
 public:
  explicit DiagPrecond(const CsrMatrix<T>& a) : d_(a.diagonal()) {}
  [[nodiscard]] index_t n() const override { return index_t(d_.size()); }
  void apply(MatrixView<const T> r, MatrixView<T> z) override {
    for (index_t c = 0; c < r.cols(); ++c)
      for (index_t i = 0; i < r.rows(); ++i) z(i, c) = r(i, c) / d_[size_t(i)];
  }

 private:
  std::vector<T> d_;
};

double block_residual(const CsrMatrix<double>& a, MatrixView<const double> x,
                      MatrixView<const double> b) {
  DenseMatrix<double> r(b.rows(), b.cols());
  a.spmm(x, r.view());
  double worst = 0;
  for (index_t c = 0; c < b.cols(); ++c) {
    double num = 0, den = 0;
    for (index_t i = 0; i < b.rows(); ++i) {
      num += (b(i, c) - r(i, c)) * (b(i, c) - r(i, c));
      den += b(i, c) * b(i, c);
    }
    worst = std::max(worst, std::sqrt(num / den));
  }
  return worst;
}

TEST(Gmres, UnpreconditionedPoisson) {
  const auto a = poisson2d(10, 10);
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(10, 10, 0.1);
  std::vector<double> x(b.size(), 0.0);
  SolverOptions opts;
  opts.restart = 60;
  opts.tol = 1e-10;
  const auto st = gmres<double>(op, nullptr, b, x, opts);
  EXPECT_TRUE(st.converged);
  EXPECT_LT(testing::relative_residual(a, x, b), 1e-9);
  EXPECT_GT(st.iterations, 5);
}

TEST(Gmres, ExactPreconditionerConvergesInOneIteration) {
  const auto a = poisson2d(9, 9);
  CsrOperator<double> op(a);
  ExactPrecond<double> m(a);
  const auto b = poisson2d_rhs(9, 9, 1.0);
  std::vector<double> x(b.size(), 0.0);
  SolverOptions opts;
  opts.tol = 1e-10;
  for (const auto side : {PrecondSide::Right, PrecondSide::Left, PrecondSide::Flexible}) {
    std::fill(x.begin(), x.end(), 0.0);
    opts.side = side;
    const auto st = gmres<double>(op, &m, b, x, opts);
    EXPECT_TRUE(st.converged);
    EXPECT_LE(st.iterations, 2) << "side " << int(side);
    EXPECT_LT(testing::relative_residual(a, x, b), 1e-9);
  }
}

TEST(Gmres, RestartsStillConverge) {
  const auto a = poisson2d(12, 12);
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(12, 12, 10.0);
  std::vector<double> x(b.size(), 0.0);
  SolverOptions opts;
  opts.restart = 10;  // force many restarts
  opts.tol = 1e-8;
  opts.max_iterations = 5000;
  const auto st = gmres<double>(op, nullptr, b, x, opts);
  EXPECT_TRUE(st.converged);
  EXPECT_GT(st.cycles, 2);
  EXPECT_LT(testing::relative_residual(a, x, b), 1e-7);
}

TEST(Gmres, JacobiRightPreconditioned) {
  const auto a = poisson2d(11, 11);
  CsrOperator<double> op(a);
  DiagPrecond<double> m(a);
  const auto b = poisson2d_rhs(11, 11, 0.001);
  std::vector<double> x(b.size(), 0.0);
  SolverOptions opts;
  opts.restart = 80;
  opts.tol = 1e-10;
  const auto st = gmres<double>(op, &m, b, x, opts);
  EXPECT_TRUE(st.converged);
  EXPECT_LT(testing::relative_residual(a, x, b), 1e-9);
}

TEST(Gmres, HistoryIsMonotoneEnough) {
  const auto a = poisson2d(10, 10);
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(10, 10, 100.0);
  std::vector<double> x(b.size(), 0.0);
  SolverOptions opts;
  opts.restart = 100;
  opts.tol = 1e-9;
  const auto st = gmres<double>(op, nullptr, b, x, opts);
  ASSERT_FALSE(st.history.empty());
  const auto& h = st.history[0];
  ASSERT_GT(h.size(), 2u);
  // GMRES residuals are non-increasing within a cycle.
  for (size_t i = 1; i < h.size(); ++i) EXPECT_LE(h[i], h[i - 1] * (1 + 1e-10));
  EXPECT_LE(h.back(), 1e-9);
}

TEST(BlockGmres, SolvesMultipleRhsAtOnce) {
  const auto a = poisson2d(10, 10);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  DenseMatrix<double> b(n, 4);
  int c = 0;
  for (const double nu : kPoissonNus) {
    const auto f = poisson2d_rhs(10, 10, nu);
    std::copy(f.begin(), f.end(), b.col(c++));
  }
  DenseMatrix<double> x(n, 4);
  SolverOptions opts;
  opts.restart = 40;
  opts.tol = 1e-9;
  const auto st = block_gmres<double>(op, nullptr, b.view(), x.view(), opts);
  EXPECT_TRUE(st.converged);
  EXPECT_LT(block_residual(a, x.view(), b.view()), 1e-8);
  // Block iterations should be well below 4x the single-RHS count.
  EXPECT_LT(st.iterations, 80);
}

TEST(BlockGmres, FewerIterationsThanSingleVector) {
  const auto a = poisson2d(14, 14);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  const auto b = random_matrix<double>(n, 6, 71);
  DenseMatrix<double> x(n, 6);
  SolverOptions opts;
  opts.restart = 100;
  opts.tol = 1e-8;
  const auto block = block_gmres<double>(op, nullptr, b.view(), x.view(), opts);
  ASSERT_TRUE(block.converged);
  // Reference: solve the first column alone.
  std::vector<double> b0(b.col(0), b.col(0) + n), x0(size_t(n), 0.0);
  const auto single = gmres<double>(op, nullptr, b0, x0, opts);
  ASSERT_TRUE(single.converged);
  EXPECT_LT(block.iterations, single.iterations);
}

TEST(PseudoBlockGmres, MatchesBlockSolutions) {
  const auto a = poisson2d(9, 9);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  const auto b = random_matrix<double>(n, 3, 72);
  DenseMatrix<double> x(n, 3);
  SolverOptions opts;
  opts.restart = 90;
  opts.tol = 1e-10;
  const auto st = pseudo_block_gmres<double>(op, nullptr, b.view(), x.view(), opts);
  EXPECT_TRUE(st.converged);
  EXPECT_LT(block_residual(a, x.view(), b.view()), 1e-9);
}

TEST(PseudoBlockGmres, LanesConvergeIndependently) {
  const auto a = poisson2d(10, 10);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  DenseMatrix<double> b(n, 2);
  // Lane 0: trivial RHS (in the span of one eigenvector family — fast);
  // lane 1: random (slow).
  const auto f = poisson2d_rhs(10, 10, 100.0);
  std::copy(f.begin(), f.end(), b.col(0));
  const auto r = random_matrix<double>(n, 1, 73);
  std::copy(r.col(0), r.col(0) + n, b.col(1));
  DenseMatrix<double> x(n, 2);
  SolverOptions opts;
  opts.restart = 120;
  opts.tol = 1e-9;
  const auto st = pseudo_block_gmres<double>(op, nullptr, b.view(), x.view(), opts);
  EXPECT_TRUE(st.converged);
  EXPECT_LT(block_residual(a, x.view(), b.view()), 1e-8);
  EXPECT_LE(st.per_rhs_iterations[0], st.per_rhs_iterations[1]);
}

TEST(PseudoBlockGmres, FusedReductionCountBeatsSequential) {
  const auto a = poisson2d(8, 8);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  const auto b = random_matrix<double>(n, 4, 74);
  SolverOptions opts;
  opts.restart = 64;
  opts.tol = 1e-8;
  DenseMatrix<double> x(n, 4);
  const auto fused = pseudo_block_gmres<double>(op, nullptr, b.view(), x.view(), opts);
  ASSERT_TRUE(fused.converged);
  std::int64_t sequential = 0;
  for (index_t c = 0; c < 4; ++c) {
    std::vector<double> bc(b.col(c), b.col(c) + n), xc(size_t(n), 0.0);
    const auto st = gmres<double>(op, nullptr, bc, xc, opts);
    ASSERT_TRUE(st.converged);
    sequential += st.reductions;
  }
  // The whole point of pseudo-block methods (section V-B1).
  EXPECT_LT(fused.reductions, sequential);
}

TEST(Gmres, ComplexMaxwellUnpreconditioned) {
  MaxwellConfig cfg;
  cfg.n = 5;
  cfg.wavelengths = 0.8;
  cfg.loss = 0.5;
  const auto prob = maxwell3d(cfg);
  CsrOperator<cplx> op(prob.matrix);
  const auto b = antenna_rhs(prob, 0, 4);
  std::vector<cplx> x(b.size(), cplx(0));
  SolverOptions opts;
  opts.restart = 200;
  opts.max_iterations = 2000;
  opts.tol = 1e-8;
  const auto st = gmres<cplx>(op, nullptr, b, x, opts);
  EXPECT_TRUE(st.converged);
  EXPECT_LT(testing::relative_residual(prob.matrix, x, b), 1e-7);
}

TEST(Gmres, OrthogonalizationSchemesAgree) {
  const auto a = poisson2d(9, 9);
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(9, 9, 0.1);
  SolverOptions opts;
  opts.restart = 90;
  opts.tol = 1e-10;
  std::vector<index_t> iters;
  for (const auto o : {Ortho::Cgs, Ortho::Cgs2, Ortho::Mgs}) {
    opts.ortho = o;
    std::vector<double> x(b.size(), 0.0);
    const auto st = gmres<double>(op, nullptr, b, x, opts);
    EXPECT_TRUE(st.converged);
    EXPECT_LT(testing::relative_residual(a, x, b), 1e-9);
    iters.push_back(st.iterations);
  }
  // Same Krylov space: iteration counts agree across schemes.
  EXPECT_EQ(iters[0], iters[1]);
  EXPECT_EQ(iters[0], iters[2]);
}

TEST(Gmres, ZeroRhsReturnsZero) {
  const auto a = poisson2d(6, 6);
  CsrOperator<double> op(a);
  std::vector<double> b(36, 0.0), x(36, 1.0);
  SolverOptions opts;
  std::fill(x.begin(), x.end(), 0.0);
  const auto st = gmres<double>(op, nullptr, b, x, opts);
  EXPECT_TRUE(st.converged);
  EXPECT_EQ(st.iterations, 0);
}

TEST(Gmres, ReductionAccountingMatchesModel) {
  // GMRES with CGS: per iteration 2 reductions (projection + norm);
  // plus per cycle: 1 residual-norms + 1 initial QR; plus 1 for ||b||.
  const auto a = poisson2d(8, 8);
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(8, 8, 10.0);
  std::vector<double> x(b.size(), 0.0);
  SolverOptions opts;
  opts.ortho = Ortho::Cgs;
  opts.restart = 200;  // single cycle
  opts.tol = 1e-8;
  CommModel comm;
  const auto st = gmres<double>(op, nullptr, b, x, opts, &comm);
  ASSERT_TRUE(st.converged);
  ASSERT_EQ(st.cycles, 2);  // one working cycle + the converged check
  const std::int64_t expected = 1                    // ||b||
                                + 2 * st.iterations  // CGS + CholQR per iteration
                                + 2 * 1              // initial residual norms + QR (cycle 1)
                                + 1;                 // final residual norms (cycle 2)
  EXPECT_EQ(st.reductions, expected);
  EXPECT_EQ(comm.reductions(), expected);
}

}  // namespace
}  // namespace bkr
