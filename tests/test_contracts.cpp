// Unit tests: the contract macro layer (src/common/contracts.hpp).
//
// The unit_tests target compiles with BKR_ENABLE_CONTRACTS=1, so the
// header-level kernel contracts are active here regardless of how the
// library objects were built. Tests that exercise contracts compiled into
// the library (.cpp solver entry points) skip themselves when the library
// was built unchecked (the release tier-1 configuration).
#include <gtest/gtest.h>

#include <complex>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "core/cg.hpp"
#include "core/gmres.hpp"
#include "core/operator.hpp"
#include "core/solver.hpp"
#include "la/blas.hpp"
#include "la/dense.hpp"
#include "la/factor.hpp"
#include "la/qr.hpp"
#include "fem/poisson2d.hpp"
#include "sparse/csr.hpp"

namespace bkr {
namespace {

using contracts::ContractViolation;
using contracts::Kind;

TEST(Contracts, RequireFiresWithKindFileLineAndOperands) {
  const index_t m = 3, n = 7;
  try {
    BKR_REQUIRE(m == n, "m", m, "n", n);
    FAIL() << "BKR_REQUIRE did not throw";
  } catch (const ContractViolation& e) {
    EXPECT_EQ(e.kind(), Kind::Precondition);
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos) << what;
    EXPECT_NE(what.find("m == n"), std::string::npos) << what;
    EXPECT_NE(what.find("test_contracts.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("m=3"), std::string::npos) << what;
    EXPECT_NE(what.find("n=7"), std::string::npos) << what;
    // file:line — a colon followed by a digit after the file name.
    const size_t file = what.find("test_contracts.cpp:");
    ASSERT_NE(file, std::string::npos) << what;
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(
        what[file + std::string("test_contracts.cpp:").size()])))
        << what;
  }
}

TEST(Contracts, EnsureAndAssertReportTheirKind) {
  try {
    BKR_ENSURE(false, "v", 1);
    FAIL();
  } catch (const ContractViolation& e) {
    EXPECT_EQ(e.kind(), Kind::Postcondition);
  }
  try {
    BKR_ASSERT(false);
    FAIL();
  } catch (const ContractViolation& e) {
    EXPECT_EQ(e.kind(), Kind::Invariant);
  }
}

TEST(Contracts, ShapeMacroReportsBothActualAndExpected) {
  DenseMatrix<double> a(2, 3);
  try {
    BKR_ASSERT_SHAPE(a.view(), 4, 5);
    FAIL();
  } catch (const ContractViolation& e) {
    EXPECT_EQ(e.kind(), Kind::Shape);
    const std::string what = e.what();
    EXPECT_NE(what.find("rows=2"), std::string::npos) << what;
    EXPECT_NE(what.find("cols=3"), std::string::npos) << what;
    EXPECT_NE(what.find("expected_rows=4"), std::string::npos) << what;
    EXPECT_NE(what.find("expected_cols=5"), std::string::npos) << what;
  }
  // Matching shape passes.
  EXPECT_NO_THROW(BKR_ASSERT_SHAPE(a.view(), 2, 3));
}

TEST(Contracts, PassingContractsEvaluateQuietly) {
  EXPECT_NO_THROW(BKR_REQUIRE(1 + 1 == 2, "lhs", 1 + 1));
  EXPECT_NO_THROW(BKR_ENSURE(true));
  EXPECT_NO_THROW(BKR_ASSERT(true, "x", 0));
}

// --- kernel contracts (header templates, instantiated in this checked TU) --

TEST(Contracts, GemmRejectsMismatchedInnerDimension) {
  DenseMatrix<double> a(3, 4), b(5, 2), c(3, 2);  // a.cols != b.rows
  EXPECT_THROW(gemm<double>(Trans::N, Trans::N, 1.0, a.view(), b.view(), 0.0, c.view()),
               ContractViolation);
}

TEST(Contracts, GemmRejectsWrongOutputShape) {
  DenseMatrix<double> a(3, 4), b(4, 2), c(3, 3);  // c.cols != b.cols
  EXPECT_THROW(gemm<double>(Trans::N, Trans::N, 1.0, a.view(), b.view(), 0.0, c.view()),
               ContractViolation);
}

TEST(Contracts, CholeskyRejectsNonSquareInput) {
  DenseMatrix<double> a(3, 4);
  EXPECT_THROW(cholesky_upper(a.view()), ContractViolation);
}

TEST(Contracts, CholQrRejectsWideBlocksAndWrongRShape) {
  DenseMatrix<double> v(2, 5), r(5, 5);  // fewer rows than columns
  EXPECT_THROW(cholqr<double>(v.view(), r.view()), ContractViolation);
  DenseMatrix<double> v2(6, 3), r2(2, 3);  // R not p x p
  EXPECT_THROW(cholqr<double>(v2.view(), r2.view()), ContractViolation);
}

TEST(Contracts, RankDeficientCholQrReportsBreakdownNotViolation) {
  // Two identical columns: the Gram matrix is singular. That is a
  // *numerical* condition — cholqr must return false, not throw.
  DenseMatrix<double> v(4, 2), r(2, 2);
  for (index_t i = 0; i < 4; ++i) v(i, 0) = v(i, 1) = double(i + 1);
  EXPECT_FALSE(cholqr<double>(v.view(), r.view()));
}

TEST(Contracts, TrsmAndCopyIntoValidateShapes) {
  DenseMatrix<double> r(3, 3), x(4, 2);  // x.rows != 3
  EXPECT_THROW(trsm_left_upper<double>(r.view(), x.view()), ContractViolation);
  DenseMatrix<double> src(2, 2), dst(3, 2);
  EXPECT_THROW(copy_into<double>(src.view(), dst.view()), ContractViolation);
}

TEST(Contracts, SpmmValidatesOperandShapes) {
  const CsrMatrix<double> a = poisson2d(4, 4);  // 16 x 16
  DenseMatrix<double> x(5, 2), y(16, 2);
  EXPECT_THROW(a.spmm(x.view(), y.view()), ContractViolation);
  DenseMatrix<double> x2(16, 2), y2(16, 3);
  EXPECT_THROW(a.spmm(x2.view(), y2.view()), ContractViolation);
}

TEST(Contracts, CsrConstructorValidatesArraySizes) {
  EXPECT_THROW(CsrMatrix<double>(2, 2, {0, 1}, {0}, {1.0}), ContractViolation);     // rowptr
  EXPECT_THROW(CsrMatrix<double>(1, 1, {0, 1}, {0}, {1.0, 2.0}), ContractViolation);  // values
}

// --- solver entry contracts (compiled into the library objects) -----------

TEST(Contracts, SolverEntryRejectsMismatchedSystem) {
  if (!contracts::library_checks_enabled())
    GTEST_SKIP() << "library built without contracts (release tier-1)";
  const CsrMatrix<double> a = poisson2d(4, 4);
  CsrOperator<double> op(a);
  SolverOptions opts;
  opts.max_iterations = 5;
  DenseMatrix<double> b(12, 1), x(12, 1);  // wrong rows for a 16-dof system
  EXPECT_THROW(cg<double>(op, nullptr, b.view(), x.view(), opts, nullptr), ContractViolation);
  DenseMatrix<double> b2(16, 1), x2(16, 2);  // x shape != b shape
  EXPECT_THROW(block_gmres<double>(op, nullptr, b2.view(), x2.view(), opts, nullptr),
               ContractViolation);
}

TEST(Contracts, SolverEntryRejectsBadOptions) {
  if (!contracts::library_checks_enabled())
    GTEST_SKIP() << "library built without contracts (release tier-1)";
  const CsrMatrix<double> a = poisson2d(4, 4);
  CsrOperator<double> op(a);
  DenseMatrix<double> b(16, 1), x(16, 1);
  SolverOptions opts;
  opts.restart = 0;  // restart must be >= 1
  EXPECT_THROW(block_gmres<double>(op, nullptr, b.view(), x.view(), opts, nullptr),
               ContractViolation);
  SolverOptions opts2;
  // tol == 0 is the documented fixed-iteration smoother mode, so only a
  // negative tolerance is malformed (see Cg.FixedIterationSmootherMode).
  opts2.tol = -1.0;
  EXPECT_THROW(cg<double>(op, nullptr, b.view(), x.view(), opts2, nullptr), ContractViolation);
}

}  // namespace
}  // namespace bkr

// ---------------------------------------------------------------------------
// Compiled-out form: re-include the header with checking forced off (the
// assert.h idiom) and prove the disabled macros evaluate neither the
// condition nor the operands.
// ---------------------------------------------------------------------------
#define BKR_FORCE_CONTRACTS 0
#include "common/contracts.hpp"  // NOLINT(build/include) re-include is intentional

namespace bkr {
namespace {

TEST(Contracts, CompiledOutMacrosEvaluateNothing) {
  int evaluations = 0;
  auto touch = [&evaluations]() {
    ++evaluations;
    return false;
  };
  BKR_REQUIRE(touch(), "count", ++evaluations);
  BKR_ENSURE(touch());
  BKR_ASSERT(touch(), "count", ++evaluations);
  DenseMatrix<double> a(1, 1);
  auto shape_rows = [&evaluations]() {
    ++evaluations;
    return index_t(9);
  };
  BKR_ASSERT_SHAPE(a.view(), shape_rows(), 9);
  EXPECT_EQ(evaluations, 0);
}

TEST(Contracts, CompiledOutRequireDoesNotThrow) {
  EXPECT_NO_THROW(BKR_REQUIRE(false, "always", 0));
}

}  // namespace
}  // namespace bkr

// Restore the active form for anything included later in this TU.
#undef BKR_FORCE_CONTRACTS
#define BKR_FORCE_CONTRACTS 1
#include "common/contracts.hpp"  // NOLINT(build/include) re-include is intentional
#undef BKR_FORCE_CONTRACTS
