// Shard-invariance conformance for the sharded SPMD layer (DESIGN.md §13).
//
// The contract under test is the sharded analogue of the thread-count
// contract of test_solver_threads.cpp: a ShardedCsrOperator apply is
// bitwise identical to the monolithic serial sweep at EVERY shard count,
// and the tree reductions it pairs with depend on the problem size only —
// so a full solver run produces identical iteration counts, residual
// histories and solutions at 1 shard and at N shards. Covered here:
//   * partition structure: shards own disjoint sorted row sets covering
//     every row; halo lists are sorted, owned-disjoint, and exactly the
//     referenced non-owned columns; PoU weights are 1 on owned, 0 on halo;
//   * SpMV/SpMM vs. the serial CsrMatrix oracle, real and complex, at
//     shard counts {1, 2, 4, 7}, with and without an executor;
//   * edge shards: more shards than rows (empty shards) and one row per
//     shard (every column is halo);
//   * tree reductions: bitwise lane-invariant, unlike the plain chunked
//     reductions they replace;
//   * end-to-end: all six solvers on the sharded operator with
//     SolverOptions::shards set, bitwise identical at every shard count.
#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "core/block_cg.hpp"
#include "core/cg.hpp"
#include "core/gcrodr.hpp"
#include "core/gmres.hpp"
#include "core/lgmres.hpp"
#include "fem/poisson2d.hpp"
#include "parallel/kernel_executor.hpp"
#include "sparse/sharded.hpp"
#include "test_helpers.hpp"

namespace bkr {
namespace {

using cplx = std::complex<double>;

const index_t kShardCounts[] = {1, 2, 4, 7};

constexpr KernelCutoffs kForceParallel{1, 1, 1};

// Small nonsymmetric band matrix with deterministic entries: exercises
// halo columns on both sides of every shard without fem machinery.
template <class T>
CsrMatrix<T> band_matrix(index_t n, index_t bandwidth) {
  CooBuilder<T> coo(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = std::max<index_t>(0, i - bandwidth);
         j <= std::min<index_t>(n - 1, i + bandwidth); ++j) {
      const double v = (i == j) ? 4.0 + 0.01 * double(i) : 1.0 / double(2 + i + 2 * j);
      if constexpr (std::is_same_v<T, cplx>)
        coo.add(i, j, T(v, 0.3 / double(1 + i + j)));
      else
        coo.add(i, j, T(v));
    }
  return coo.build();
}

template <class T>
void check_partition_structure(const CsrMatrix<T>& a, index_t nshards) {
  const ShardedCsrOperator<T> op(a, nshards);
  ASSERT_EQ(op.shard_count(), nshards);
  std::vector<char> seen(size_t(a.rows()), 0);
  for (index_t s = 0; s < nshards; ++s) {
    const auto& rows = op.owned_rows(s);
    const auto& halo = op.halo_indices(s);
    const auto& pou = op.pou_weights(s);
    EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end())) << "shard " << s;
    EXPECT_TRUE(std::is_sorted(halo.begin(), halo.end())) << "shard " << s;
    for (const index_t r : rows) {
      EXPECT_EQ(seen[size_t(r)], 0) << "row " << r << " owned twice";
      seen[size_t(r)] = 1;
    }
    // Halo = exactly the referenced non-owned columns.
    std::vector<char> owned(size_t(a.rows()), 0);
    for (const index_t r : rows) owned[size_t(r)] = 1;
    std::vector<char> referenced(size_t(a.rows()), 0);
    for (const index_t r : rows)
      for (index_t l = a.rowptr()[size_t(r)]; l < a.rowptr()[size_t(r) + 1]; ++l)
        referenced[size_t(a.colind()[size_t(l)])] = 1;
    for (const index_t h : halo) {
      EXPECT_EQ(owned[size_t(h)], 0) << "halo column " << h << " is owned";
      EXPECT_EQ(referenced[size_t(h)], 1) << "halo column " << h << " never referenced";
    }
    size_t expected_halo = 0;
    for (index_t c = 0; c < a.rows(); ++c)
      if (referenced[size_t(c)] != 0 && owned[size_t(c)] == 0) ++expected_halo;
    EXPECT_EQ(halo.size(), expected_halo) << "shard " << s;
    // PoU: 1 on owned columns, 0 on halo columns.
    ASSERT_EQ(pou.size(), rows.size() + halo.size());
    for (size_t k = 0; k < rows.size(); ++k) EXPECT_EQ(pou[k], 1.0);
    for (size_t k = rows.size(); k < pou.size(); ++k) EXPECT_EQ(pou[k], 0.0);
    // Local matrix shape matches the column map.
    EXPECT_EQ(op.local_matrix(s).rows(), index_t(rows.size()));
    EXPECT_EQ(op.local_matrix(s).cols(), index_t(rows.size() + halo.size()));
  }
  for (index_t r = 0; r < a.rows(); ++r) EXPECT_EQ(seen[size_t(r)], 1) << "row " << r << " unowned";
}

TEST(ShardedOperator, PartitionStructure) {
  const auto a = poisson2d(9, 7);
  for (const index_t s : kShardCounts) check_partition_structure(a, s);
}

template <class T>
void check_spmm_oracle(const CsrMatrix<T>& a, index_t p) {
  const index_t n = a.rows();
  const auto x = testing::random_matrix<T>(n, p, 11);
  DenseMatrix<T> yref(n, p);
  a.spmm(x.view(), yref.view(), nullptr);  // monolithic serial oracle
  KernelExecutor ex(4, kForceParallel);
  const KernelExecutor* execs[] = {nullptr, &ex};
  for (const index_t s : kShardCounts) {
    const ShardedCsrOperator<T> op(a, s);
    for (const KernelExecutor* e : execs) {
      DenseMatrix<T> y(n, p);
      op.spmm(x.view(), y.view(), e);
      for (index_t j = 0; j < p; ++j)
        for (index_t i = 0; i < n; ++i)
          ASSERT_EQ(y(i, j), yref(i, j))
              << "shards=" << s << " exec=" << (e != nullptr) << " (" << i << "," << j << ")";
    }
  }
}

TEST(ShardedOperator, SpmmMatchesSerialOracleReal) {
  check_spmm_oracle<double>(poisson2d(8, 8), 3);
  check_spmm_oracle<double>(band_matrix<double>(37, 3), 2);
}

TEST(ShardedOperator, SpmmMatchesSerialOracleComplex) {
  check_spmm_oracle<cplx>(band_matrix<cplx>(41, 4), 3);
}

TEST(ShardedOperator, SpmvMatchesSerialOracle) {
  const auto a = band_matrix<double>(29, 2);
  std::vector<double> x(29), yref(29), y(29);
  for (index_t i = 0; i < 29; ++i) x[size_t(i)] = std::sin(double(i) + 0.5);
  a.spmv(x.data(), yref.data());
  for (const index_t s : kShardCounts) {
    const ShardedCsrOperator<double> op(a, s);
    op.spmv(x.data(), y.data());
    for (index_t i = 0; i < 29; ++i) ASSERT_EQ(y[size_t(i)], yref[size_t(i)]) << "shards=" << s;
  }
}

// More shards than rows: the partitioner leaves trailing shards empty;
// applies must skip them and still reproduce the oracle.
TEST(ShardedOperator, EmptyShards) {
  const auto a = band_matrix<double>(5, 1);
  const ShardedCsrOperator<double> op(a, 7);
  ASSERT_EQ(op.shard_count(), 7);
  index_t owned_total = 0;
  bool any_empty = false;
  for (index_t s = 0; s < 7; ++s) {
    owned_total += index_t(op.owned_rows(s).size());
    if (op.owned_rows(s).empty()) any_empty = true;
  }
  EXPECT_EQ(owned_total, 5);
  EXPECT_TRUE(any_empty);
  std::vector<double> x{1.0, -2.0, 3.0, -4.0, 5.0}, yref(5), y(5);
  a.spmv(x.data(), yref.data());
  op.spmv(x.data(), y.data());
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(y[i], yref[i]);
}

// One row per shard: every off-diagonal column is halo.
TEST(ShardedOperator, SingleRowShards) {
  const index_t n = 6;
  const auto a = band_matrix<double>(n, 2);
  const ShardedCsrOperator<double> op(a, n);
  for (index_t s = 0; s < n; ++s) {
    ASSERT_EQ(op.owned_rows(s).size(), 1u);
    const index_t r = op.owned_rows(s)[0];
    const size_t row_nnz = size_t(a.rowptr()[size_t(r) + 1] - a.rowptr()[size_t(r)]);
    EXPECT_EQ(op.halo_indices(s).size(), row_nnz - 1);  // all but the diagonal
  }
  check_spmm_oracle<double>(a, 2);
}

TEST(ShardedOperator, HaloAccountingMatchesStructure) {
  const auto a = poisson2d(8, 6);
  for (const index_t s : kShardCounts) {
    const ShardedCsrOperator<double> op(a, s);
    index_t entries = 0;
    for (index_t k = 0; k < s; ++k) entries += index_t(op.halo_indices(k).size());
    EXPECT_EQ(op.halo_entries(), entries);
    if (s == 1) {
      EXPECT_EQ(op.halo_messages(), 0);  // one shard talks to nobody
    }
  }
}

// The halo hook observes the gathered values bitwise and may mutate them
// (the resilience layer's corruption point).
TEST(ShardedOperator, HaloHookObservesGatheredValues) {
  const auto a = poisson2d(6, 6);
  ShardedCsrOperator<double> op(a, 4);
  std::vector<double> x(size_t(a.rows()));
  for (size_t i = 0; i < x.size(); ++i) x[i] = double(i) + 0.25;
  index_t hook_calls = 0;
  bool all_match = true;
  op.set_halo_hook([&](index_t s, MatrixView<double> halo) {
    ++hook_calls;
    const auto& idx = op.halo_indices(s);
    for (index_t k = 0; k < halo.rows(); ++k)
      if (halo(k, 0) != x[size_t(idx[size_t(k)])]) all_match = false;
  });
  std::vector<double> y(x.size());
  op.spmv(x.data(), y.data());
  EXPECT_GT(hook_calls, 0);
  EXPECT_TRUE(all_match);
}

// Tree reductions are lane-invariant bitwise: the fold shape is a function
// of the element count only (DESIGN.md §13), so any executor produces the
// 1-lane result exactly.
TEST(ShardedOperator, TreeReductionsLaneInvariant) {
  const index_t n = 10000;  // several kReduceChunk chunks
  std::vector<double> u(size_t{10000}), v(size_t{10000});
  for (index_t i = 0; i < n; ++i) {
    u[size_t(i)] = std::sin(double(i) * 0.7) + 1e-3;
    v[size_t(i)] = std::cos(double(i) * 0.3) - 1e-3;
  }
  KernelExecutor ex1(1, kForceParallel);
  const double dref = tree_dot<double>(n, u.data(), v.data(), &ex1);
  const double nref = tree_norm2<double>(n, u.data(), &ex1);
  for (const index_t lanes : {index_t(2), index_t(4), index_t(7)}) {
    KernelExecutor ex(lanes, kForceParallel);
    EXPECT_EQ(tree_dot<double>(n, u.data(), v.data(), &ex), dref) << "lanes=" << lanes;
    EXPECT_EQ(tree_norm2<double>(n, u.data(), &ex), nref) << "lanes=" << lanes;
  }
  // Serial (null executor) agrees too: same fold shape, one thread.
  EXPECT_EQ(tree_dot<double>(n, u.data(), v.data(), nullptr), dref);
  EXPECT_EQ(tree_norm2<double>(n, u.data(), nullptr), nref);
}

// --- end-to-end: solvers on the sharded operator ---------------------------

template <class T>
struct Outcome {
  std::vector<SolveStats> stats;
  std::vector<T> x;
};

template <class T>
void expect_same_outcome(const Outcome<T>& got, const Outcome<T>& ref, index_t shards,
                         const char* what) {
  ASSERT_EQ(got.stats.size(), ref.stats.size()) << what;
  for (size_t s = 0; s < ref.stats.size(); ++s) {
    const SolveStats& a = got.stats[s];
    const SolveStats& b = ref.stats[s];
    EXPECT_EQ(a.converged, b.converged) << what << " shards=" << shards;
    EXPECT_EQ(a.iterations, b.iterations) << what << " shards=" << shards;
    EXPECT_EQ(a.cycles, b.cycles) << what << " shards=" << shards;
    EXPECT_EQ(a.reductions, b.reductions) << what << " shards=" << shards;
    ASSERT_EQ(a.history.size(), b.history.size()) << what << " shards=" << shards;
    for (size_t c = 0; c < b.history.size(); ++c)
      EXPECT_EQ(a.history[c], b.history[c])
          << what << " shards=" << shards << " rhs=" << c << " (history diverged)";
  }
  ASSERT_EQ(got.x.size(), ref.x.size()) << what;
  for (size_t i = 0; i < ref.x.size(); ++i)
    EXPECT_EQ(got.x[i], ref.x[i]) << what << " shards=" << shards << " x[" << i << "]";
}

// Run once per shard count and demand bitwise-identical outcomes; the
// 1-shard run is the reference ("1 vs N shards").
template <class T, class Run>
void check_shard_invariance(Run run, const char* what) {
  Outcome<T> ref;
  bool have_ref = false;
  for (const index_t shards : kShardCounts) {
    Outcome<T> got = run(shards);
    for (const SolveStats& st : got.stats) EXPECT_TRUE(st.converged) << what << " shards=" << shards;
    if (!have_ref) {
      ref = std::move(got);
      have_ref = true;
      continue;
    }
    expect_same_outcome<T>(got, ref, shards, what);
  }
}

DenseMatrix<double> poisson_rhs_block(index_t nx, index_t ny, index_t p) {
  const auto base = poisson2d_rhs(nx, ny, 0.1);
  const index_t n = index_t(base.size());
  DenseMatrix<double> b(n, p);
  for (index_t c = 0; c < p; ++c)
    for (index_t i = 0; i < n; ++i)
      b(i, c) = base[size_t(i)] + 0.05 * double(c) * std::sin(double(i + 1) * double(c + 1));
  return b;
}

SolverOptions sharded_opts(index_t shards) {
  SolverOptions opts;
  opts.restart = 50;
  opts.tol = 1e-9;
  opts.shards = shards;
  return opts;
}

TEST(ShardedOperator, CgShardInvariant) {
  const auto a = poisson2d(12, 12);
  const auto b = poisson_rhs_block(12, 12, 1);
  check_shard_invariance<double>(
      [&](index_t shards) {
        SolverOptions opts = sharded_opts(shards);
        ShardedOperator<double> op(a, shards);
        Outcome<double> out;
        DenseMatrix<double> x(a.rows(), 1);
        out.stats.push_back(cg<double>(op, nullptr, b.view(), x.view(), opts));
        out.x.assign(x.data(), x.data() + a.rows());
        return out;
      },
      "cg");
}

TEST(ShardedOperator, BlockCgShardInvariant) {
  const auto a = poisson2d(12, 12);
  const auto b = poisson_rhs_block(12, 12, 4);
  check_shard_invariance<double>(
      [&](index_t shards) {
        SolverOptions opts = sharded_opts(shards);
        ShardedOperator<double> op(a, shards);
        Outcome<double> out;
        DenseMatrix<double> x(a.rows(), 4);
        out.stats.push_back(block_cg<double>(op, nullptr, b.view(), x.view(), opts));
        out.x.assign(x.data(), x.data() + a.rows() * 4);
        return out;
      },
      "block_cg");
}

TEST(ShardedOperator, BlockGmresShardInvariant) {
  const auto a = poisson2d(12, 12);
  const auto b = poisson_rhs_block(12, 12, 4);
  check_shard_invariance<double>(
      [&](index_t shards) {
        SolverOptions opts = sharded_opts(shards);
        ShardedOperator<double> op(a, shards);
        Outcome<double> out;
        DenseMatrix<double> x(a.rows(), 4);
        out.stats.push_back(block_gmres<double>(op, nullptr, b.view(), x.view(), opts));
        out.x.assign(x.data(), x.data() + a.rows() * 4);
        return out;
      },
      "block_gmres");
}

TEST(ShardedOperator, PseudoBlockGmresShardInvariant) {
  const auto a = poisson2d(12, 12);
  const auto b = poisson_rhs_block(12, 12, 3);
  check_shard_invariance<double>(
      [&](index_t shards) {
        SolverOptions opts = sharded_opts(shards);
        ShardedOperator<double> op(a, shards);
        Outcome<double> out;
        DenseMatrix<double> x(a.rows(), 3);
        out.stats.push_back(pseudo_block_gmres<double>(op, nullptr, b.view(), x.view(), opts));
        out.x.assign(x.data(), x.data() + a.rows() * 3);
        return out;
      },
      "pseudo_block_gmres");
}

TEST(ShardedOperator, LgmresShardInvariant) {
  const auto a = poisson2d(12, 12);
  const auto b = poisson2d_rhs(12, 12, 0.1);
  check_shard_invariance<double>(
      [&](index_t shards) {
        SolverOptions opts = sharded_opts(shards);
        opts.restart = 30;
        opts.recycle = 2;
        ShardedOperator<double> op(a, shards);
        Outcome<double> out;
        std::vector<double> x(b.size(), 0.0);
        out.stats.push_back(lgmres<double>(op, nullptr, b, x, opts));
        out.x = std::move(x);
        return out;
      },
      "lgmres");
}

TEST(ShardedOperator, GcroDrShardInvariant) {
  const auto a = poisson2d(12, 12);
  const auto b1 = poisson_rhs_block(12, 12, 2);
  const auto b2 = poisson_rhs_block(12, 12, 2);
  check_shard_invariance<double>(
      [&](index_t shards) {
        SolverOptions opts = sharded_opts(shards);
        opts.restart = 20;
        opts.recycle = 2;
        ShardedOperator<double> op(a, shards);
        GcroDr<double> solver(opts);
        Outcome<double> out;
        DenseMatrix<double> x1(a.rows(), 2), x2(a.rows(), 2);
        out.stats.push_back(solver.solve(op, nullptr, b1.view(), x1.view()));
        out.stats.push_back(solver.solve(op, nullptr, b2.view(), x2.view(), nullptr, false));
        out.x.assign(x1.data(), x1.data() + a.rows() * 2);
        out.x.insert(out.x.end(), x2.data(), x2.data() + a.rows() * 2);
        return out;
      },
      "gcrodr");
}

TEST(ShardedOperator, PseudoGcroDrShardInvariant) {
  const auto a = poisson2d(12, 12);
  const auto b1 = poisson_rhs_block(12, 12, 3);
  const auto b2 = poisson_rhs_block(12, 12, 3);
  check_shard_invariance<double>(
      [&](index_t shards) {
        SolverOptions opts = sharded_opts(shards);
        opts.restart = 20;
        opts.recycle = 2;
        ShardedOperator<double> op(a, shards);
        PseudoGcroDr<double> solver(opts);
        Outcome<double> out;
        DenseMatrix<double> x1(a.rows(), 3), x2(a.rows(), 3);
        out.stats.push_back(solver.solve(op, nullptr, b1.view(), x1.view()));
        out.stats.push_back(solver.solve(op, nullptr, b2.view(), x2.view(), nullptr, false));
        out.x.assign(x1.data(), x1.data() + a.rows() * 3);
        out.x.insert(out.x.end(), x2.data(), x2.data() + a.rows() * 3);
        return out;
      },
      "pseudo_gcrodr");
}

// Complex path: the sharded operator and tree reductions are
// scalar-type-generic; one GMRES run pins it.
TEST(ShardedOperator, ComplexGmresShardInvariant) {
  const auto a = band_matrix<cplx>(80, 3);
  std::vector<cplx> b(80);
  for (index_t i = 0; i < 80; ++i) b[size_t(i)] = cplx(std::sin(double(i) + 1.0), 0.2);
  check_shard_invariance<cplx>(
      [&](index_t shards) {
        SolverOptions opts = sharded_opts(shards);
        opts.tol = 1e-10;
        ShardedOperator<cplx> op(a, shards);
        Outcome<cplx> out;
        std::vector<cplx> x(b.size(), cplx(0));
        out.stats.push_back(gmres<cplx>(op, nullptr, b, x, opts));
        out.x = std::move(x);
        return out;
      },
      "complex gmres");
}

// Executor attached AND sharded: the two parallel axes compose without
// breaking the invariance (sharded fan-out over executor lanes).
TEST(ShardedOperator, ExecutorComposesWithSharding) {
  const auto a = poisson2d(12, 12);
  const auto b = poisson_rhs_block(12, 12, 2);
  KernelExecutor ex(4, kForceParallel);
  check_shard_invariance<double>(
      [&](index_t shards) {
        SolverOptions opts = sharded_opts(shards);
        opts.exec = &ex;
        ShardedOperator<double> op(a, shards, nullptr, &ex);
        Outcome<double> out;
        DenseMatrix<double> x(a.rows(), 2);
        out.stats.push_back(block_gmres<double>(op, nullptr, b.view(), x.view(), opts));
        out.x.assign(x.data(), x.data() + a.rows() * 2);
        return out;
      },
      "block_gmres executor+shards");
}

}  // namespace
}  // namespace bkr
