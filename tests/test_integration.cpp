// Cross-module integration tests: the full pipelines the benches rely on,
// at miniature scale.
#include <gtest/gtest.h>

#include <complex>

#include "common/timer.hpp"
#include "core/gcrodr.hpp"
#include "core/gmres.hpp"
#include "core/lgmres.hpp"
#include "direct/factor.hpp"
#include "fem/elasticity3d.hpp"
#include "fem/maxwell3d.hpp"
#include "fem/poisson2d.hpp"
#include "precond/amg.hpp"
#include "precond/schwarz.hpp"
#include "test_helpers.hpp"

namespace bkr {
namespace {

using cplx = std::complex<double>;

double residual_cplx(const CsrMatrix<cplx>& a, MatrixView<const cplx> x,
                     MatrixView<const cplx> b) {
  DenseMatrix<cplx> r(b.rows(), b.cols());
  a.spmm(x, r.view());
  double worst = 0;
  for (index_t c = 0; c < b.cols(); ++c) {
    double num = 0, den = 0;
    for (index_t i = 0; i < b.rows(); ++i) {
      num += std::norm(b(i, c) - r(i, c));
      den += std::norm(b(i, c));
    }
    worst = std::max(worst, std::sqrt(num / den));
  }
  return worst;
}

TEST(Pipeline, MaxwellOrasBlockGcroDr) {
  // The fig. 8 pipeline in miniature: chamber + ORAS + block GCRO-DR with
  // several antenna RHS.
  MaxwellConfig cfg;
  cfg.n = 8;
  cfg.wavelengths = 1.2;
  cfg.loss = 0.2;
  const auto prob = maxwell3d(cfg);
  const index_t n = prob.nfree;
  DenseMatrix<cplx> b(n, 4);
  for (index_t a = 0; a < 4; ++a) {
    const auto col = antenna_rhs(prob, a, 4);
    std::copy(col.begin(), col.end(), b.col(a));
  }
  SchwarzOptions so;
  so.subdomains = 8;
  so.overlap = 2;
  so.kind = SchwarzKind::Oras;
  so.impedance = 0.5;
  SchwarzPreconditioner<cplx> m(prob.matrix, so);
  CsrOperator<cplx> op(prob.matrix);
  SolverOptions opts;
  opts.restart = 20;
  opts.recycle = 5;
  opts.tol = 1e-8;
  opts.side = PrecondSide::Right;
  opts.max_iterations = 1000;
  GcroDr<cplx> solver(opts);
  DenseMatrix<cplx> x(n, 4);
  const auto st = solver.solve(op, &m, b.view(), x.view());
  EXPECT_TRUE(st.converged);
  EXPECT_LT(residual_cplx(prob.matrix, x.view(), b.view()), 1e-7);
}

TEST(Pipeline, MaxwellOrasPseudoBlockGcroDrSequence) {
  MaxwellConfig cfg;
  cfg.n = 8;
  cfg.wavelengths = 1.0;
  cfg.loss = 0.25;
  const auto prob = maxwell3d(cfg);
  const index_t n = prob.nfree;
  SchwarzOptions so;
  so.subdomains = 4;
  so.overlap = 2;
  so.kind = SchwarzKind::Oras;
  so.impedance = 0.5;
  SchwarzPreconditioner<cplx> m(prob.matrix, so);
  CsrOperator<cplx> op(prob.matrix);
  SolverOptions opts;
  opts.restart = 20;
  opts.recycle = 4;
  opts.tol = 1e-8;
  opts.side = PrecondSide::Right;
  opts.same_system = true;
  opts.max_iterations = 2000;
  PseudoGcroDr<cplx> solver(opts);
  index_t prev = 0;
  for (index_t batch = 0; batch < 2; ++batch) {
    DenseMatrix<cplx> b(n, 2);
    for (index_t a = 0; a < 2; ++a) {
      const auto col = antenna_rhs(prob, 2 * batch + a, 4);
      std::copy(col.begin(), col.end(), b.col(a));
    }
    DenseMatrix<cplx> x(n, 2);
    const auto st = solver.solve(op, &m, b.view(), x.view());
    EXPECT_TRUE(st.converged);
    EXPECT_LT(residual_cplx(prob.matrix, x.view(), b.view()), 1e-7);
    if (batch == 1) {
      EXPECT_LT(st.iterations, prev);  // recycling across batches
    }
    prev = st.iterations;
  }
}

TEST(Pipeline, ElasticityAmgFlexibleGcroDrSequence) {
  // The fig. 3 pipeline in miniature: varying matrices, CG-smoothed AMG
  // (variable), flexible recycling with strategy A.
  SolverOptions opts;
  opts.restart = 20;
  opts.recycle = 6;
  opts.tol = 1e-8;
  opts.side = PrecondSide::Flexible;
  opts.strategy = RecycleStrategy::A;
  opts.max_iterations = 2000;
  GcroDr<double> solver(opts);
  for (const auto& inclusion : kElasticitySequence) {
    ElasticityConfig cfg;
    cfg.ne = 6;
    cfg.inclusion = inclusion;
    const auto prob = elasticity3d(cfg);
    const index_t n = prob.nfree;
    AmgOptions amg;
    amg.block_size = 3;
    amg.smoother = AmgSmoother::Cg;
    amg.smoother_iterations = 2;
    AmgPreconditioner<double> m(prob.matrix, amg, prob.rigid_body_modes.view());
    ASSERT_TRUE(m.is_variable());
    CsrOperator<double> op(prob.matrix);
    std::vector<double> x(prob.rhs.size(), 0.0);
    const auto st = solver.solve(op, &m, MatrixView<const double>(prob.rhs.data(), n, 1, n),
                                 MatrixView<double>(x.data(), n, 1, n), nullptr, true);
    EXPECT_TRUE(st.converged);
    EXPECT_LT(testing::relative_residual(prob.matrix, x, prob.rhs), 1e-7);
  }
}

TEST(Pipeline, PoissonAmgAllSolversAgree) {
  // Same system solved by five different methods: identical solutions.
  const auto a = poisson2d_varcoef(24, 24, 100.0, 6);
  const index_t n = a.rows();
  AmgOptions amg;
  amg.smoother = AmgSmoother::Chebyshev;
  AmgPreconditioner<double> m(a, amg);
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(24, 24, 0.1);
  SolverOptions opts;
  opts.restart = 25;
  opts.recycle = 6;
  opts.tol = 1e-10;
  opts.side = PrecondSide::Right;
  std::vector<std::vector<double>> solutions;
  {  // GMRES
    std::vector<double> x(b.size(), 0.0);
    ASSERT_TRUE(gmres<double>(op, &m, b, x, opts).converged);
    solutions.push_back(x);
  }
  {  // LGMRES
    std::vector<double> x(b.size(), 0.0);
    ASSERT_TRUE(lgmres<double>(op, &m, b, x, opts).converged);
    solutions.push_back(x);
  }
  {  // GCRO-DR
    GcroDr<double> s(opts);
    std::vector<double> x(b.size(), 0.0);
    ASSERT_TRUE(s.solve(op, &m, MatrixView<const double>(b.data(), n, 1, n),
                        MatrixView<double>(x.data(), n, 1, n))
                    .converged);
    solutions.push_back(x);
  }
  {  // pseudo-block (p=1)
    std::vector<double> x(b.size(), 0.0);
    ASSERT_TRUE(pseudo_block_gmres<double>(op, &m, MatrixView<const double>(b.data(), n, 1, n),
                                           MatrixView<double>(x.data(), n, 1, n), opts)
                    .converged);
    solutions.push_back(x);
  }
  {  // pseudo GCRO-DR (p=1)
    PseudoGcroDr<double> s(opts);
    std::vector<double> x(b.size(), 0.0);
    ASSERT_TRUE(s.solve(op, &m, MatrixView<const double>(b.data(), n, 1, n),
                        MatrixView<double>(x.data(), n, 1, n))
                    .converged);
    solutions.push_back(x);
  }
  for (size_t s = 1; s < solutions.size(); ++s) {
    double diff = 0;
    for (index_t i = 0; i < n; ++i)
      diff = std::max(diff, std::abs(solutions[s][size_t(i)] - solutions[0][size_t(i)]));
    EXPECT_LT(diff, 1e-7) << "solver " << s;
  }
}

TEST(Pipeline, LeftPreconditionedGcroDr) {
  const auto a = poisson2d(14, 14);
  const index_t n = a.rows();
  AmgOptions amg;
  amg.smoother = AmgSmoother::Jacobi;
  AmgPreconditioner<double> m(a, amg);
  CsrOperator<double> op(a);
  SolverOptions opts;
  opts.restart = 15;
  opts.recycle = 5;
  opts.tol = 1e-9;
  opts.side = PrecondSide::Left;
  opts.same_system = true;
  GcroDr<double> solver(opts);
  for (const double nu : {0.1, 100.0}) {
    const auto b = poisson2d_rhs(14, 14, nu);
    std::vector<double> x(b.size(), 0.0);
    const auto st = solver.solve(op, &m, MatrixView<const double>(b.data(), n, 1, n),
                                 MatrixView<double>(x.data(), n, 1, n));
    EXPECT_TRUE(st.converged);
    // Left preconditioning stops on the preconditioned residual; the true
    // one is still small for a bounded M^{-1}.
    EXPECT_LT(testing::relative_residual(a, x, b), 1e-6);
  }
}

TEST(Pipeline, Fig6MultiRhsDirectEfficiency) {
  // The fig. 6 mechanism, asserted: solving 16 RHS through the factor at
  // once is faster than 16 single solves (BLAS-3 reuse).
  MaxwellConfig cfg;
  cfg.n = 9;
  cfg.wavelengths = 0.8;
  cfg.loss = 0.3;
  const auto prob = maxwell3d(cfg);
  const index_t n = prob.nfree;
  const SparseLDLT<cplx> f(prob.matrix);
  DenseMatrix<cplx> b(n, 16);
  Rng rng(7);
  for (index_t c = 0; c < 16; ++c)
    for (index_t i = 0; i < n; ++i) b(i, c) = rng.scalar<cplx>();
  // Warm up, then time both strategies.
  DenseMatrix<cplx> x = copy_of(b);
  f.solve(x.view());
  Timer t_block;
  for (int rep = 0; rep < 3; ++rep) {
    copy_into<cplx>(b.view(), x.view());
    f.solve(x.view());
  }
  const double block_time = t_block.seconds();
  Timer t_single;
  for (int rep = 0; rep < 3; ++rep) {
    copy_into<cplx>(b.view(), x.view());
    for (index_t c = 0; c < 16; ++c) f.solve(x.block(0, c, n, 1));
  }
  const double single_time = t_single.seconds();
  EXPECT_LT(block_time, single_time);
}

}  // namespace
}  // namespace bkr
