// Unit/integration tests: Jacobi, Chebyshev, Krylov smoothers, AMG,
// Schwarz (ASM / RAS / ORAS).
#include <gtest/gtest.h>

#include <complex>

#include "core/gmres.hpp"
#include "fem/elasticity3d.hpp"
#include "fem/maxwell3d.hpp"
#include "fem/poisson2d.hpp"
#include "precond/amg.hpp"
#include "precond/chebyshev.hpp"
#include "precond/jacobi.hpp"
#include "precond/krylov_smoother.hpp"
#include "precond/schwarz.hpp"
#include "test_helpers.hpp"

namespace bkr {
namespace {

using cplx = std::complex<double>;

index_t gmres_iterations(const CsrMatrix<double>& a, Preconditioner<double>* m,
                         const std::vector<double>& b, double tol = 1e-8,
                         index_t restart = 60) {
  CsrOperator<double> op(a);
  std::vector<double> x(b.size(), 0.0);
  SolverOptions opts;
  opts.restart = restart;
  opts.tol = tol;
  opts.max_iterations = 20000;
  const auto st = gmres<double>(op, m, b, x, opts);
  EXPECT_TRUE(st.converged);
  EXPECT_LT(testing::relative_residual(a, x, b), tol * 50);
  return st.iterations;
}

TEST(Jacobi, ScalesByInverseDiagonal) {
  const auto a = poisson2d(4, 4);
  JacobiPreconditioner<double> m(a);
  DenseMatrix<double> r(16, 1), z(16, 1);
  for (index_t i = 0; i < 16; ++i) r(i, 0) = 8.0;
  m.apply(r.view(), z.view());
  for (index_t i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(z(i, 0), 2.0);  // diag = 4
}

TEST(Chebyshev, EstimatesSpectralRadius) {
  const auto a = poisson2d(20, 20);
  ChebyshevSmoother s(a, 3);
  // Jacobi-scaled 2-D Poisson has lambda_max close to 2.
  EXPECT_GT(s.lambda_max_estimate(), 1.5);
  EXPECT_LT(s.lambda_max_estimate(), 2.1);
}

TEST(Chebyshev, ReducesHighFrequencyError) {
  const auto a = poisson2d(16, 16);
  const index_t n = a.rows();
  ChebyshevSmoother s(a, 4);
  // Apply the smoother as a stationary iteration on A x = b and check the
  // error drops (x* known).
  Rng rng(90);
  std::vector<double> xstar(static_cast<size_t>(n));
  for (auto& v : xstar) v = rng.scalar<double>();
  std::vector<double> b(static_cast<size_t>(n));
  a.spmv(xstar.data(), b.data());
  DenseMatrix<double> x(n, 1), r(n, 1), dz(n, 1);
  double err0 = 0, err1 = 0;
  for (index_t i = 0; i < n; ++i) err0 += xstar[size_t(i)] * xstar[size_t(i)];
  for (int sweep = 0; sweep < 2; ++sweep) {
    a.spmv(x.col(0), r.col(0));
    for (index_t i = 0; i < n; ++i) r(i, 0) = b[size_t(i)] - r(i, 0);
    s.apply(r.view(), dz.view());
    for (index_t i = 0; i < n; ++i) x(i, 0) += dz(i, 0);
  }
  for (index_t i = 0; i < n; ++i) {
    const double e = x(i, 0) - xstar[size_t(i)];
    err1 += e * e;
  }
  EXPECT_LT(err1, 0.25 * err0);
}

TEST(Chebyshev, IsLinear) {
  // Chebyshev is a fixed polynomial: apply(alpha r) == alpha apply(r).
  const auto a = poisson2d(10, 10);
  ChebyshevSmoother s(a, 3);
  const auto r = testing::random_matrix<double>(100, 1, 91);
  DenseMatrix<double> z1(100, 1), z2(100, 1), r2(100, 1);
  s.apply(r.view(), z1.view());
  for (index_t i = 0; i < 100; ++i) r2(i, 0) = 3.0 * r(i, 0);
  s.apply(r2.view(), z2.view());
  for (index_t i = 0; i < 100; ++i) EXPECT_NEAR(z2(i, 0), 3.0 * z1(i, 0), 1e-12);
}

TEST(KrylovSmoother, GmresSmootherIsVariable) {
  const auto a = poisson2d(8, 8);
  CsrOperator<double> op(a);
  GmresSmoother<double> s(op, 3);
  EXPECT_TRUE(s.is_variable());
  CgSmoother<double> c(op, 4);
  EXPECT_TRUE(c.is_variable());
}

TEST(Amg, PoissonVcycleBeatsUnpreconditioned) {
  const auto a = poisson2d(40, 40);
  const auto b = poisson2d_rhs(40, 40, 0.1);
  AmgOptions amg_opts;
  amg_opts.threshold = 0.0;
  AmgPreconditioner<double> m(a, amg_opts);
  EXPECT_GE(m.levels(), 2);
  const index_t with = gmres_iterations(a, &m, b);
  const index_t without = gmres_iterations(a, nullptr, b, 1e-8, 400);
  EXPECT_LT(with, without / 4);
  EXPECT_LT(with, 30);
}

TEST(Amg, CoarseningReducesSize) {
  const auto a = poisson2d(30, 30);
  AmgOptions o;
  AmgPreconditioner<double> m(a, o);
  for (index_t l = 1; l < m.levels(); ++l) EXPECT_LT(m.level_rows(l), m.level_rows(l - 1));
  EXPECT_LT(m.operator_complexity(), 3.0);
}

TEST(Amg, ThresholdControlsCoarsening) {
  // Higher threshold -> sparser strength graph -> more, smaller
  // aggregates -> bigger coarse problems (the paper's setup/iteration
  // trade-off dial). Uniform Poisson has equal couplings, so use an
  // anisotropic operator where the threshold can discriminate.
  const index_t nn = 24;
  CooBuilder<double> builder(nn * nn, nn * nn);
  auto id = [nn](index_t i, index_t j) { return i + j * nn; };
  const double weak_coupling = 0.05;
  for (index_t j = 0; j < nn; ++j)
    for (index_t i = 0; i < nn; ++i) {
      builder.add(id(i, j), id(i, j), 2.0 + 2.0 * weak_coupling);
      if (i > 0) builder.add(id(i, j), id(i - 1, j), -1.0);
      if (i + 1 < nn) builder.add(id(i, j), id(i + 1, j), -1.0);
      if (j > 0) builder.add(id(i, j), id(i, j - 1), -weak_coupling);
      if (j + 1 < nn) builder.add(id(i, j), id(i, j + 1), -weak_coupling);
    }
  const auto a = builder.build();
  AmgOptions all_edges;
  all_edges.threshold = 0.0;
  AmgOptions semicoarsen;
  semicoarsen.threshold = 0.1;  // keeps x-edges, drops the weak y-edges
  AmgPreconditioner<double> mw(a, all_edges), ms(a, semicoarsen);
  ASSERT_GE(mw.levels(), 2);
  ASSERT_GE(ms.levels(), 2);
  EXPECT_LT(mw.level_rows(1), ms.level_rows(1));
}

TEST(Amg, GmresSmootherMakesItVariable) {
  const auto a = poisson2d(24, 24);
  AmgOptions o;
  o.smoother = AmgSmoother::Gmres;
  o.smoother_iterations = 3;
  AmgPreconditioner<double> m(a, o);
  EXPECT_TRUE(m.is_variable());
  AmgOptions lin;
  lin.smoother = AmgSmoother::Chebyshev;
  AmgPreconditioner<double> ml(a, lin);
  EXPECT_FALSE(ml.is_variable());
}

TEST(Amg, ElasticityWithRigidBodyModes) {
  ElasticityConfig cfg;
  cfg.ne = 5;
  cfg.inclusion = kElasticitySequence[0];
  const auto prob = elasticity3d(cfg);
  AmgOptions o;
  o.block_size = 3;
  o.smoother = AmgSmoother::Chebyshev;
  o.coarse_size = 200;
  AmgPreconditioner<double> m(prob.matrix, o, prob.rigid_body_modes.view());
  const index_t with = gmres_iterations(prob.matrix, &m, prob.rhs, 1e-8, 100);
  const index_t without = gmres_iterations(prob.matrix, nullptr, prob.rhs, 1e-8, 2000);
  EXPECT_LT(with, without / 2);
}

TEST(Schwarz, RasSolvesPoisson) {
  const auto a = poisson2d(24, 24);
  const auto b = poisson2d_rhs(24, 24, 10.0);
  SchwarzOptions o;
  o.subdomains = 6;
  o.overlap = 2;
  o.kind = SchwarzKind::Ras;
  SchwarzPreconditioner<double> m(a, o);
  const index_t iters = gmres_iterations(a, &m, b);
  EXPECT_LT(iters, 40);
  EXPECT_GT(m.stats().setup_seconds_max, 0.0);
  EXPECT_LE(m.stats().setup_seconds_max, m.stats().setup_seconds_sum + 1e-12);
}

TEST(Schwarz, MoreOverlapFewerIterations) {
  const auto a = poisson2d(30, 30);
  const auto b = poisson2d_rhs(30, 30, 0.1);
  index_t iters[2];
  int idx = 0;
  for (const index_t delta : {index_t(1), index_t(4)}) {
    SchwarzOptions o;
    o.subdomains = 8;
    o.overlap = delta;
    o.kind = SchwarzKind::Ras;
    SchwarzPreconditioner<double> m(a, o);
    iters[idx++] = gmres_iterations(a, &m, b);
  }
  EXPECT_LE(iters[1], iters[0]);
}

TEST(Schwarz, AsmAndRasBothConverge) {
  const auto a = poisson2d(20, 20);
  const auto b = poisson2d_rhs(20, 20, 1.0);
  for (const auto kind : {SchwarzKind::Asm, SchwarzKind::Ras}) {
    SchwarzOptions o;
    o.subdomains = 4;
    o.overlap = 2;
    o.kind = kind;
    SchwarzPreconditioner<double> m(a, o);
    const index_t iters = gmres_iterations(a, &m, b);
    EXPECT_LT(iters, 60);
  }
}

TEST(Schwarz, SingleSubdomainIsExact) {
  const auto a = poisson2d(12, 12);
  const auto b = poisson2d_rhs(12, 12, 0.001);
  SchwarzOptions o;
  o.subdomains = 1;
  o.overlap = 0;
  o.kind = SchwarzKind::Ras;
  SchwarzPreconditioner<double> m(a, o);
  EXPECT_LE(gmres_iterations(a, &m, b), 2);
}

TEST(Schwarz, OrasBeatsAsmOnMaxwell) {
  // The fig. 4 phenomenon, scaled down: for the indefinite complex
  // Maxwell operator, the impedance transmission conditions converge
  // faster than Dirichlet (ASM) ones.
  MaxwellConfig cfg;
  cfg.n = 8;
  cfg.wavelengths = 1.2;
  cfg.loss = 0.2;
  const auto prob = maxwell3d(cfg);
  CsrOperator<cplx> op(prob.matrix);
  const auto b = antenna_rhs(prob, 0, 8);
  auto run = [&](SchwarzKind kind, double beta, index_t overlap) {
    SchwarzOptions o;
    o.subdomains = 8;
    o.overlap = overlap;
    o.kind = kind;
    o.impedance = beta;
    SchwarzPreconditioner<cplx> m(prob.matrix, o);
    std::vector<cplx> x(b.size(), cplx(0));
    SolverOptions opts;
    opts.restart = 300;
    opts.tol = 1e-8;
    opts.max_iterations = 600;
    const auto st = gmres<cplx>(op, &m, b, x, opts);
    return std::pair<bool, index_t>(st.converged, st.iterations);
  };
  const auto [oras_ok, oras_iters] = run(SchwarzKind::Oras, 1.0, 2);
  const auto [asm_ok, asm_iters] = run(SchwarzKind::Asm, 0.0, 1);
  EXPECT_TRUE(oras_ok);
  if (asm_ok) {
    EXPECT_LE(oras_iters, asm_iters);
  }
}

TEST(Schwarz, MultiRhsApplyMatchesColumnwise) {
  const auto a = poisson2d(15, 15);
  const index_t n = a.rows();
  SchwarzOptions o;
  o.subdomains = 5;
  o.overlap = 1;
  SchwarzPreconditioner<double> m(a, o);
  const auto r = testing::random_matrix<double>(n, 4, 92);
  DenseMatrix<double> z(n, 4), zc(n, 4);
  m.apply(r.view(), z.view());
  for (index_t c = 0; c < 4; ++c)
    m.apply(MatrixView<const double>(r.col(c), n, 1, n), zc.block(0, c, n, 1));
  EXPECT_LT(testing::diff_fro<double>(z.view(), zc.view()), 1e-12);
}

}  // namespace
}  // namespace bkr
