// Resilience layer: failure taxonomy, recovery escalation and the
// deterministic fault-injection chaos suite.
//
// The chaos sweep drives every solver entry point through every fault
// site/kind at several visit indices and asserts the resilience contract:
// the solve always terminates inside its budget, and it either genuinely
// converges (verified against the true residual) or reports a precise
// non-Converged status — never a crash, hang, or silently wrong answer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <string>

#include "core/block_cg.hpp"
#include "core/cg.hpp"
#include "core/gcrodr.hpp"
#include "core/gmres.hpp"
#include "core/krylov_detail.hpp"
#include "core/lgmres.hpp"
#include "fem/poisson2d.hpp"
#include "obs/trace.hpp"
#include "precond/jacobi.hpp"
#include "resilience/fault_injector.hpp"
#include "test_helpers.hpp"

namespace bkr {
namespace {

using resilience::FaultInjector;
using resilience::FaultKind;
using resilience::FaultPlan;
using resilience::FaultSite;
using testing::random_matrix;

// ---------------------------------------------------------------------------
// FaultInjector unit behavior.

TEST(Resilience, InjectorFiresOncePerPlanAtScheduledVisit) {
  FaultInjector inj;
  FaultPlan plan;
  plan.site = FaultSite::OperatorApply;
  plan.kind = FaultKind::ZeroColumn;
  plan.at_visit = 2;
  plan.column = 1;
  inj.schedule(plan);
  DenseMatrix<double> block(4, 2);
  for (index_t j = 0; j < 2; ++j)
    for (index_t i = 0; i < 4; ++i) block(i, j) = 1.0;
  inj.at(FaultSite::OperatorApply, block.view());
  EXPECT_EQ(inj.injected(), 0);
  EXPECT_EQ(block(0, 1), 1.0);
  inj.at(FaultSite::OperatorApply, block.view());
  EXPECT_EQ(inj.injected(), 1);
  for (index_t i = 0; i < 4; ++i) EXPECT_EQ(block(i, 1), 0.0);
  for (index_t i = 0; i < 4; ++i) EXPECT_EQ(block(i, 0), 1.0);
  // Fired plans stay dormant on later visits.
  block(0, 1) = 5.0;
  inj.at(FaultSite::OperatorApply, block.view());
  EXPECT_EQ(inj.injected(), 1);
  EXPECT_EQ(block(0, 1), 5.0);
  EXPECT_EQ(inj.visits(FaultSite::OperatorApply), 3);
  // Other sites have independent counters.
  EXPECT_EQ(inj.visits(FaultSite::PrecondApply), 0);
}

TEST(Resilience, InjectorResetRearmsPlansClearDropsThem) {
  FaultInjector inj;
  FaultPlan plan;
  plan.kind = FaultKind::ZeroColumn;
  inj.schedule(plan);
  DenseMatrix<double> block(2, 1);
  block(0, 0) = block(1, 0) = 3.0;
  inj.at(FaultSite::OperatorApply, block.view());
  EXPECT_EQ(inj.injected(), 1);
  inj.reset();
  EXPECT_EQ(inj.visits(FaultSite::OperatorApply), 0);
  block(0, 0) = block(1, 0) = 3.0;
  inj.at(FaultSite::OperatorApply, block.view());
  EXPECT_EQ(inj.injected(), 1);  // counter reset, plan re-fired
  EXPECT_EQ(block(0, 0), 0.0);
  inj.clear();
  block(0, 0) = 3.0;
  inj.at(FaultSite::OperatorApply, block.view());
  EXPECT_EQ(block(0, 0), 3.0);
}

TEST(Resilience, InjectorThrowCarriesSite) {
  FaultInjector inj;
  FaultPlan plan;
  plan.site = FaultSite::PrecondApply;
  plan.kind = FaultKind::Throw;
  inj.schedule(plan);
  DenseMatrix<double> block(2, 1);
  try {
    inj.at(FaultSite::PrecondApply, block.view());
    FAIL() << "expected InjectedFault";
  } catch (const resilience::InjectedFault& f) {
    EXPECT_EQ(f.site(), FaultSite::PrecondApply);
  }
}

// ---------------------------------------------------------------------------
// Status taxonomy.

TEST(Resilience, StatusNamesAreDistinctAndComplete) {
  std::set<std::string> names;
  for (int s = 0; s < kSolveStatusCount; ++s)
    names.insert(status_name(static_cast<SolveStatus>(s)));
  EXPECT_EQ(index_t(names.size()), kSolveStatusCount);
  EXPECT_EQ(std::string(status_name(SolveStatus::Converged)), "converged");
  EXPECT_EQ(std::string(status_name(SolveStatus::EigSolveFailure)), "eig-solve-failure");
}

TEST(Resilience, BreakdownErrorRoundTripsStatus) {
  const BreakdownError e(SolveStatus::EigSolveFailure, "deflation failed");
  EXPECT_EQ(e.status(), SolveStatus::EigSolveFailure);
  EXPECT_NE(std::string(e.what()).find("deflation"), std::string::npos);
}

TEST(Resilience, ConvergedSolveReportsConvergedStatus) {
  const auto a = poisson2d(8, 8);
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(8, 8, 0.1);
  std::vector<double> x(b.size(), 0.0);
  SolverOptions opts;
  const auto st = gmres<double>(op, nullptr, b, x, opts);
  ASSERT_TRUE(st.converged);
  EXPECT_EQ(st.status, SolveStatus::Converged);
  EXPECT_EQ(st.recoveries, 0);
}

TEST(Resilience, MaxIterationsStatus) {
  const auto a = poisson2d(12, 12);
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(12, 12, 0.001);
  SolverOptions opts;
  opts.restart = 8;
  opts.tol = 1e-14;
  opts.max_iterations = 20;
  std::vector<double> x(b.size(), 0.0);
  const auto st = gmres<double>(op, nullptr, b, x, opts);
  EXPECT_FALSE(st.converged);
  EXPECT_EQ(st.status, SolveStatus::MaxIterations);
}

TEST(Resilience, StagnationIsDetectedNotSpun) {
  // Down-shift operator with b = e1: the residual is orthogonal to every
  // Krylov direction, the least-squares update is exactly null, and without
  // the terminal-stagnation exit the solver would replay identical restart
  // cycles until the iteration budget burned out.
  const index_t n = 20;
  CooBuilder<double> builder(n, n);
  for (index_t i = 0; i + 1 < n; ++i) builder.add(i + 1, i, 1.0);
  builder.add(0, n - 1, 0.0);  // keep the diagonal pattern square
  const auto a = builder.build();
  CsrOperator<double> op(a);
  std::vector<double> b(static_cast<size_t>(n), 0.0), x(b.size(), 0.0);
  b[0] = 1.0;
  SolverOptions opts;
  opts.restart = 5;
  opts.max_iterations = 10000;
  const auto st = gmres<double>(op, nullptr, b, x, opts);
  EXPECT_FALSE(st.converged);
  EXPECT_EQ(st.status, SolveStatus::Stagnated);
  EXPECT_LT(st.iterations, 100);  // terminated by diagnosis, not by budget
}

TEST(Resilience, CgIndefiniteOperatorBreaksDownPrecisely) {
  // dq = p^H A p < 0 on an indefinite matrix: the CG recurrence is invalid
  // and the lane must stop with Breakdown instead of iterating on garbage.
  CooBuilder<double> builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(1, 1, -2.0);
  const auto a = builder.build();
  CsrOperator<double> op(a);
  std::vector<double> b = {1.0, 1.0}, x = {0.0, 0.0};
  SolverOptions opts;
  opts.max_iterations = 50;
  const auto st = cg<double>(op, nullptr, b, x, opts);
  EXPECT_FALSE(st.converged);
  EXPECT_EQ(st.status, SolveStatus::Breakdown);
}

TEST(Resilience, ThrowOnFailureEscalatesHardFailures) {
  CooBuilder<double> builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(1, 1, -2.0);
  const auto a = builder.build();
  CsrOperator<double> op(a);
  std::vector<double> b = {1.0, 1.0}, x = {0.0, 0.0};
  SolverOptions opts;
  opts.max_iterations = 50;
  opts.recovery.throw_on_failure = true;
  try {
    (void)cg<double>(op, nullptr, b, x, opts);
    FAIL() << "expected BreakdownError";
  } catch (const BreakdownError& e) {
    EXPECT_EQ(e.status(), SolveStatus::Breakdown);
  }
}

TEST(Resilience, ThrowOnFailureDoesNotEscalateBudgetExhaustion) {
  const auto a = poisson2d(12, 12);
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(12, 12, 0.001);
  SolverOptions opts;
  opts.tol = 1e-14;
  opts.max_iterations = 15;
  opts.recovery.throw_on_failure = true;
  std::vector<double> x(b.size(), 0.0);
  SolveStats st;
  EXPECT_NO_THROW(st = gmres<double>(op, nullptr, b, x, opts));
  EXPECT_EQ(st.status, SolveStatus::MaxIterations);
}

// ---------------------------------------------------------------------------
// Injected-fault statuses.

TEST(Resilience, NanInjectionYieldsNonFiniteResidual) {
  const auto a = poisson2d(7, 7);
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(7, 7, 0.1);
  FaultInjector inj;
  FaultPlan plan;
  plan.site = FaultSite::OperatorApply;
  plan.kind = FaultKind::InjectNan;
  plan.at_visit = 2;
  inj.schedule(plan);
  SolverOptions opts;
  opts.fault = &inj;
  std::vector<double> x(b.size(), 0.0);
  const auto st = cg<double>(op, nullptr, b, x, opts);
  EXPECT_FALSE(st.converged);
  EXPECT_EQ(st.status, SolveStatus::NonFiniteResidual);
  EXPECT_EQ(inj.injected(), 1);
}

TEST(Resilience, OperatorThrowYieldsFaulted) {
  const auto a = poisson2d(7, 7);
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(7, 7, 0.1);
  FaultInjector inj;
  FaultPlan plan;
  plan.site = FaultSite::OperatorApply;
  plan.kind = FaultKind::Throw;
  plan.at_visit = 3;
  inj.schedule(plan);
  SolverOptions opts;
  opts.fault = &inj;
  std::vector<double> x(b.size(), 0.0);
  const auto st = gmres<double>(op, nullptr, b, x, opts);
  EXPECT_FALSE(st.converged);
  EXPECT_EQ(st.status, SolveStatus::Faulted);
}

TEST(Resilience, PrecondThrowYieldsPreconditionerFailure) {
  const auto a = poisson2d(7, 7);
  CsrOperator<double> op(a);
  JacobiPreconditioner<double> m(a);
  const auto b = poisson2d_rhs(7, 7, 0.1);
  FaultInjector inj;
  FaultPlan plan;
  plan.site = FaultSite::PrecondApply;
  plan.kind = FaultKind::Throw;
  plan.at_visit = 2;
  inj.schedule(plan);
  SolverOptions opts;
  opts.fault = &inj;
  opts.side = PrecondSide::Right;
  std::vector<double> x(b.size(), 0.0);
  const auto st = gmres<double>(op, &m, b, x, opts);
  EXPECT_FALSE(st.converged);
  EXPECT_EQ(st.status, SolveStatus::PreconditionerFailure);
}

TEST(Resilience, CorruptedRecursionCaughtByFinalCheck) {
  // A large perturbation of the very first operator apply poisons r0; the
  // estimated residual then converges against the wrong system. The
  // fault-gated true-residual epilogue must refuse to report success.
  const auto a = poisson2d(7, 7);
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(7, 7, 0.1);
  FaultInjector inj;
  FaultPlan plan;
  plan.site = FaultSite::OperatorApply;
  plan.kind = FaultKind::PerturbBlock;
  plan.at_visit = 1;
  plan.magnitude = 1e6;
  inj.schedule(plan);
  SolverOptions opts;
  opts.fault = &inj;
  opts.restart = 60;
  std::vector<double> x(b.size(), 0.0);
  const auto st = gmres<double>(op, nullptr, b, x, opts);
  if (st.converged) {
    // Only legitimate if the true residual really is small.
    EXPECT_LT(testing::relative_residual(a, x, b), 1e-4);
  } else {
    EXPECT_NE(st.status, SolveStatus::Converged);
  }
}

TEST(Resilience, InjectionIsDeterministic) {
  const auto a = poisson2d(7, 7);
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(7, 7, 0.1);
  auto run = [&] {
    FaultInjector inj(123);
    FaultPlan plan;
    plan.site = FaultSite::Orthogonalization;
    plan.kind = FaultKind::PerturbBlock;
    plan.at_visit = 4;
    plan.magnitude = 10.0;
    inj.schedule(plan);
    SolverOptions opts;
    opts.fault = &inj;
    opts.max_iterations = 300;
    std::vector<double> x(b.size(), 0.0);
    return gmres<double>(op, nullptr, b, x, opts);
  };
  const auto s1 = run();
  const auto s2 = run();
  EXPECT_EQ(s1.status, s2.status);
  EXPECT_EQ(s1.iterations, s2.iterations);
  ASSERT_EQ(s1.history.size(), s2.history.size());
  for (size_t c = 0; c < s1.history.size(); ++c) {
    ASSERT_EQ(s1.history[c].size(), s2.history[c].size());
    for (size_t i = 0; i < s1.history[c].size(); ++i)
      EXPECT_EQ(s1.history[c][i], s2.history[c][i]);  // bitwise
  }
}

// ---------------------------------------------------------------------------
// Recovery escalation.

TEST(Resilience, BlockOrthoRecoveryEmitsTraceEvents) {
  // Duplicated RHS columns collapse the residual block rank: CholQR fails
  // and the escalation ladder (TSQR, then column replacement) repairs the
  // basis. The repair must be visible in both SolveStats and the trace.
  const auto a = poisson2d(9, 9);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  DenseMatrix<double> b(n, 2);
  const auto f = poisson2d_rhs(9, 9, 1.0);
  std::copy(f.begin(), f.end(), b.col(0));
  std::copy(f.begin(), f.end(), b.col(1));
  DenseMatrix<double> x(n, 2);
  obs::SolverTrace trace;
  SolverOptions opts;
  opts.restart = 50;
  opts.max_iterations = 500;
  opts.trace = &trace;
  const auto st = block_gmres<double>(op, nullptr, b.view(), x.view(), opts);
  EXPECT_TRUE(st.converged);
  EXPECT_GT(st.recoveries, 0);
  EXPECT_EQ(trace.recovery_count(), st.recoveries);
}

TEST(Resilience, RecoveryCanBeDisabled) {
  // Same rank-collapsed block with the ladder turned off: the solve must
  // still terminate, now with a precise failure status instead of a repair.
  const auto a = poisson2d(9, 9);
  const index_t n = a.rows();
  CsrOperator<double> op(a);
  DenseMatrix<double> b(n, 2);
  const auto f = poisson2d_rhs(9, 9, 1.0);
  std::copy(f.begin(), f.end(), b.col(0));
  std::copy(f.begin(), f.end(), b.col(1));
  DenseMatrix<double> x(n, 2);
  SolverOptions opts;
  opts.restart = 50;
  opts.max_iterations = 500;
  opts.recovery.block_recovery = false;
  opts.recovery.early_restart = false;
  const auto st = block_gmres<double>(op, nullptr, b.view(), x.view(), opts);
  EXPECT_EQ(st.converged, st.status == SolveStatus::Converged);
  EXPECT_LE(st.iterations, opts.max_iterations);
}

// ---------------------------------------------------------------------------
// Chaos sweep: every entry point x fault site x fault kind x visit index.

struct ChaosEntry {
  const char* name;
  // Returns the stats; writes the solution into x (n x 2).
  SolveStats (*run)(const CsrMatrix<double>&, MatrixView<const double>, MatrixView<double>,
                    const SolverOptions&);
  index_t nrhs = 2;  // columns of x the entry actually solves
};

SolveStats chaos_cg(const CsrMatrix<double>& a, MatrixView<const double> b, MatrixView<double> x,
                    const SolverOptions& opts) {
  CsrOperator<double> op(a);
  return cg<double>(op, nullptr, b, x, opts);
}
SolveStats chaos_block_cg(const CsrMatrix<double>& a, MatrixView<const double> b,
                          MatrixView<double> x, const SolverOptions& opts) {
  CsrOperator<double> op(a);
  return block_cg<double>(op, nullptr, b, x, opts);
}
SolveStats chaos_block_gmres(const CsrMatrix<double>& a, MatrixView<const double> b,
                             MatrixView<double> x, const SolverOptions& opts) {
  CsrOperator<double> op(a);
  return block_gmres<double>(op, nullptr, b, x, opts);
}
SolveStats chaos_pseudo_gmres(const CsrMatrix<double>& a, MatrixView<const double> b,
                              MatrixView<double> x, const SolverOptions& opts) {
  CsrOperator<double> op(a);
  return pseudo_block_gmres<double>(op, nullptr, b, x, opts);
}
SolveStats chaos_lgmres(const CsrMatrix<double>& a, MatrixView<const double> b,
                        MatrixView<double> x, const SolverOptions& opts) {
  CsrOperator<double> op(a);
  const index_t n = a.rows();
  std::vector<double> bv(b.data(), b.data() + n), xv(n, 0.0);
  const auto st = lgmres<double>(op, nullptr, bv, xv, opts);
  for (index_t i = 0; i < n; ++i) x(i, 0) = xv[size_t(i)];
  return st;
}
SolveStats chaos_gcrodr(const CsrMatrix<double>& a, MatrixView<const double> b,
                        MatrixView<double> x, const SolverOptions& opts) {
  CsrOperator<double> op(a);
  GcroDr<double> solver(opts);
  return solver.solve(op, nullptr, b, x);
}
SolveStats chaos_pseudo_gcrodr(const CsrMatrix<double>& a, MatrixView<const double> b,
                               MatrixView<double> x, const SolverOptions& opts) {
  CsrOperator<double> op(a);
  PseudoGcroDr<double> solver(opts);
  return solver.solve(op, nullptr, b, x);
}

TEST(Chaos, SweepAllSolversSitesAndKinds) {
  const auto a = poisson2d(7, 7);
  const index_t n = a.rows();
  DenseMatrix<double> b(n, 2);
  const auto f0 = poisson2d_rhs(7, 7, 0.1);
  const auto f1 = poisson2d_rhs(7, 7, 10.0);
  std::copy(f0.begin(), f0.end(), b.col(0));
  std::copy(f1.begin(), f1.end(), b.col(1));

  const ChaosEntry entries[] = {
      {"cg", chaos_cg},
      {"block_cg", chaos_block_cg},
      {"block_gmres", chaos_block_gmres},
      {"pseudo_block_gmres", chaos_pseudo_gmres},
      {"lgmres", chaos_lgmres, 1},
      {"gcrodr", chaos_gcrodr},
      {"pseudo_gcrodr", chaos_pseudo_gcrodr},
  };
  const FaultSite sites[] = {FaultSite::OperatorApply, FaultSite::PrecondApply,
                             FaultSite::Orthogonalization};
  const FaultKind kinds[] = {FaultKind::InjectNan, FaultKind::ZeroColumn, FaultKind::PerturbBlock,
                             FaultKind::Throw};
  const std::int64_t visits[] = {1, 3, 7};

  std::set<SolveStatus> seen;
  for (const ChaosEntry& entry : entries) {
    for (const FaultSite site : sites) {
      for (const FaultKind kind : kinds) {
        for (const std::int64_t visit : visits) {
          SCOPED_TRACE(std::string(entry.name) + " site=" + std::to_string(int(site)) +
                       " kind=" + std::to_string(int(kind)) + " visit=" + std::to_string(visit));
          FaultInjector inj;
          FaultPlan plan;
          plan.site = site;
          plan.kind = kind;
          plan.at_visit = visit;
          inj.schedule(plan);
          SolverOptions opts;
          opts.restart = 12;
          opts.recycle = 4;
          opts.tol = 1e-8;
          opts.max_iterations = 400;
          opts.fault = &inj;
          DenseMatrix<double> x(n, 2);
          SolveStats st;
          ASSERT_NO_THROW(st = entry.run(a, b.view(), x.view(), opts));
          seen.insert(st.status);
          // The status taxonomy and the converged flag must agree.
          EXPECT_EQ(st.converged, st.status == SolveStatus::Converged);
          EXPECT_LE(st.iterations, opts.max_iterations);
          if (st.converged) {
            // Never silently wrong: a converged cell must satisfy the true
            // (uninjected) system to a loose multiple of the tolerance.
            DenseMatrix<double> r(n, 2);
            a.spmm(x.view(), r.view());
            for (index_t c = 0; c < entry.nrhs; ++c) {
              double num = 0, den = 0;
              for (index_t i = 0; i < n; ++i) {
                const double d = b(i, c) - r(i, c);
                num += d * d;
                den += b(i, c) * b(i, c);
              }
              EXPECT_LT(std::sqrt(num), 1e-4 * std::sqrt(den));
            }
          }
        }
      }
    }
  }
  // PrecondApply plans cannot fire without a preconditioner, and the CG
  // family never hits the Orthogonalization site, so a share of cells run
  // fault-free and converge — by design: a scheduled-but-unreached fault
  // must never perturb a solve. The sweep still has to surface a healthy
  // breadth of the taxonomy.
  EXPECT_GE(index_t(seen.size()), 3);
  EXPECT_TRUE(seen.count(SolveStatus::Converged) != 0);
  EXPECT_TRUE(seen.count(SolveStatus::Faulted) != 0);
}

TEST(Chaos, PreconditionedSweepReachesPrecondSite) {
  const auto a = poisson2d(7, 7);
  const index_t n = a.rows();
  DenseMatrix<double> b(n, 2);
  const auto f0 = poisson2d_rhs(7, 7, 0.1);
  std::copy(f0.begin(), f0.end(), b.col(0));
  std::copy(f0.begin(), f0.end(), b.col(1));
  JacobiPreconditioner<double> m(a);
  CsrOperator<double> op(a);
  const FaultKind kinds[] = {FaultKind::InjectNan, FaultKind::Throw};
  std::set<SolveStatus> seen;
  for (const FaultKind kind : kinds) {
    for (const std::int64_t visit : {1, 2, 5}) {
      SCOPED_TRACE("kind=" + std::to_string(int(kind)) + " visit=" + std::to_string(visit));
      FaultInjector inj;
      FaultPlan plan;
      plan.site = FaultSite::PrecondApply;
      plan.kind = kind;
      plan.at_visit = visit;
      inj.schedule(plan);
      SolverOptions opts;
      opts.restart = 12;
      opts.max_iterations = 400;
      opts.side = PrecondSide::Right;
      opts.fault = &inj;
      DenseMatrix<double> x(n, 2);
      SolveStats st;
      ASSERT_NO_THROW(st = block_gmres<double>(op, &m, b.view(), x.view(), opts));
      seen.insert(st.status);
      EXPECT_EQ(st.converged, st.status == SolveStatus::Converged);
    }
  }
  EXPECT_TRUE(seen.count(SolveStatus::PreconditionerFailure) != 0);
}

// ShardHalo: corrupting the gathered halo payload of a sharded apply (the
// in-flight "message" of the SPMD layer, DESIGN.md §13) is subject to the
// same contract as every other site — terminate inside budget, converge
// genuinely or report precisely, never crash. The hook fires during the
// serial gather phase, so plans here also prove injection is race-free
// under the shard-parallel fan-out.
TEST(Chaos, ShardHaloCorruptionSweep) {
  const auto a = poisson2d(7, 7);
  const index_t n = a.rows();
  DenseMatrix<double> b(n, 2);
  const auto f0 = poisson2d_rhs(7, 7, 0.1);
  const auto f1 = poisson2d_rhs(7, 7, 10.0);
  std::copy(f0.begin(), f0.end(), b.col(0));
  std::copy(f1.begin(), f1.end(), b.col(1));

  const FaultKind kinds[] = {FaultKind::InjectNan, FaultKind::ZeroColumn,
                             FaultKind::PerturbBlock, FaultKind::Throw};
  std::set<SolveStatus> seen;
  for (const index_t shards : {index_t(2), index_t(4)}) {
    for (const FaultKind kind : kinds) {
      for (const std::int64_t visit : {1, 3, 9}) {
        SCOPED_TRACE("shards=" + std::to_string(shards) + " kind=" + std::to_string(int(kind)) +
                     " visit=" + std::to_string(visit));
        FaultInjector inj;
        FaultPlan plan;
        plan.site = FaultSite::ShardHalo;
        plan.kind = kind;
        plan.at_visit = visit;
        inj.schedule(plan);
        SolverOptions opts;
        opts.restart = 12;
        opts.tol = 1e-8;
        opts.max_iterations = 400;
        opts.shards = shards;
        ShardedOperator<double> op(a, shards, nullptr, nullptr, &inj);
        DenseMatrix<double> x(n, 2);
        SolveStats st;
        ASSERT_NO_THROW(st = block_gmres<double>(op, nullptr, b.view(), x.view(), opts));
        seen.insert(st.status);
        EXPECT_EQ(st.converged, st.status == SolveStatus::Converged);
        EXPECT_LE(st.iterations, opts.max_iterations);
        EXPECT_GT(inj.visits(FaultSite::ShardHalo), 0) << "hook never reached";
        if (st.converged) {
          DenseMatrix<double> r(n, 2);
          a.spmm(x.view(), r.view());
          for (index_t c = 0; c < 2; ++c) {
            double num = 0, den = 0;
            for (index_t i = 0; i < n; ++i) {
              const double d = b(i, c) - r(i, c);
              num += d * d;
              den += b(i, c) * b(i, c);
            }
            EXPECT_LT(std::sqrt(num), 1e-4 * std::sqrt(den));
          }
        }
      }
    }
  }
  EXPECT_TRUE(seen.count(SolveStatus::Converged) != 0);
  EXPECT_TRUE(seen.count(SolveStatus::Faulted) != 0);
}

// A plan scheduled at ShardHalo must stay dormant on a monolithic (1-shard)
// operator: one shard gathers no halo, so the site is never visited and the
// solve is untouched — the "scheduled but unreached" guarantee.
TEST(Chaos, ShardHaloPlanDormantAtOneShard) {
  const auto a = poisson2d(7, 7);
  const index_t n = a.rows();
  DenseMatrix<double> b(n, 1);
  const auto f0 = poisson2d_rhs(7, 7, 0.1);
  std::copy(f0.begin(), f0.end(), b.col(0));
  FaultInjector inj;
  FaultPlan plan;
  plan.site = FaultSite::ShardHalo;
  plan.kind = FaultKind::Throw;
  plan.at_visit = 1;
  inj.schedule(plan);
  SolverOptions opts;
  opts.tol = 1e-9;
  opts.shards = 1;
  ShardedOperator<double> op(a, 1, nullptr, nullptr, &inj);
  DenseMatrix<double> x(n, 1);
  SolveStats st;
  ASSERT_NO_THROW(st = block_gmres<double>(op, nullptr, b.view(), x.view(), opts));
  EXPECT_TRUE(st.converged);
  EXPECT_EQ(inj.visits(FaultSite::ShardHalo), 0);
  EXPECT_EQ(inj.injected(), 0);
}

// ---------------------------------------------------------------------------
// Cooperative cancellation and deadlines (DESIGN.md §15): the client-side
// abort channel is subject to the same chaos contract as injected faults —
// terminate promptly at an iteration boundary, report the precise status,
// and leave a finite (if unconverged) iterate behind.

// Wraps the CSR apply and trips the shared cancel token at the k-th
// operator visit, modelling a client that cancels mid-solve.
class CancelAfterOperator final : public LinearOperator<double> {
 public:
  CancelAfterOperator(const CsrMatrix<double>& a, std::atomic<bool>* token,
                      std::int64_t at_visit)
      : op_(a), token_(token), at_visit_(at_visit) {}
  [[nodiscard]] index_t n() const override { return op_.n(); }
  void apply(MatrixView<const double> x, MatrixView<double> y) const override {
    op_.apply(x, y);
    if (++visits_ == at_visit_) token_->store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t visits() const { return visits_; }

 private:
  CsrOperator<double> op_;
  std::atomic<bool>* token_;
  std::int64_t at_visit_;
  mutable std::int64_t visits_ = 0;
};

struct CancelEntry {
  const char* name;
  SolveStats (*run)(const LinearOperator<double>&, MatrixView<const double>, MatrixView<double>,
                    const SolverOptions&);
};

SolveStats cancel_cg(const LinearOperator<double>& op, MatrixView<const double> b,
                     MatrixView<double> x, const SolverOptions& opts) {
  return cg<double>(op, nullptr, b, x, opts);
}
SolveStats cancel_block_cg(const LinearOperator<double>& op, MatrixView<const double> b,
                           MatrixView<double> x, const SolverOptions& opts) {
  return block_cg<double>(op, nullptr, b, x, opts);
}
SolveStats cancel_block_gmres(const LinearOperator<double>& op, MatrixView<const double> b,
                              MatrixView<double> x, const SolverOptions& opts) {
  return block_gmres<double>(op, nullptr, b, x, opts);
}
SolveStats cancel_pseudo_gmres(const LinearOperator<double>& op, MatrixView<const double> b,
                               MatrixView<double> x, const SolverOptions& opts) {
  return pseudo_block_gmres<double>(op, nullptr, b, x, opts);
}
SolveStats cancel_lgmres(const LinearOperator<double>& op, MatrixView<const double> b,
                         MatrixView<double> x, const SolverOptions& opts) {
  const index_t n = op.n();
  std::vector<double> bv(b.data(), b.data() + n), xv(n, 0.0);
  const auto st = lgmres<double>(op, nullptr, bv, xv, opts);
  for (index_t i = 0; i < n; ++i) x(i, 0) = xv[size_t(i)];
  return st;
}
SolveStats cancel_gcrodr(const LinearOperator<double>& op, MatrixView<const double> b,
                         MatrixView<double> x, const SolverOptions& opts) {
  GcroDr<double> solver(opts);
  return solver.solve(op, nullptr, b, x);
}
SolveStats cancel_pseudo_gcrodr(const LinearOperator<double>& op, MatrixView<const double> b,
                                MatrixView<double> x, const SolverOptions& opts) {
  PseudoGcroDr<double> solver(opts);
  return solver.solve(op, nullptr, b, x);
}

const CancelEntry kCancelEntries[] = {
    {"cg", cancel_cg},
    {"block_cg", cancel_block_cg},
    {"block_gmres", cancel_block_gmres},
    {"pseudo_block_gmres", cancel_pseudo_gmres},
    {"lgmres", cancel_lgmres},
    {"gcrodr", cancel_gcrodr},
    {"pseudo_gcrodr", cancel_pseudo_gcrodr},
};

TEST(Cancellation, CancelMidIterationAllSolvers) {
  const auto a = poisson2d(7, 7);
  const index_t n = a.rows();
  DenseMatrix<double> b(n, 2);
  const auto f0 = poisson2d_rhs(7, 7, 0.1);
  const auto f1 = poisson2d_rhs(7, 7, 10.0);
  std::copy(f0.begin(), f0.end(), b.col(0));
  std::copy(f1.begin(), f1.end(), b.col(1));

  for (const CancelEntry& entry : kCancelEntries) {
    for (const std::int64_t visit : {1, 3, 7}) {
      SCOPED_TRACE(std::string(entry.name) + " visit=" + std::to_string(visit));
      std::atomic<bool> token{false};
      CancelAfterOperator op(a, &token, visit);
      SolverOptions opts;
      opts.restart = 12;
      opts.recycle = 4;
      opts.tol = 0;  // smoother mode: the solve can only end by cancellation
      opts.max_iterations = 400;
      opts.cancel = &token;
      DenseMatrix<double> x(n, 2);
      SolveStats st;
      ASSERT_NO_THROW(st = entry.run(op, b.view(), x.view(), opts));
      EXPECT_FALSE(st.converged);
      EXPECT_EQ(st.status, SolveStatus::Cancelled);
      // The abort happens at an iteration boundary, not an arbitrary point:
      // the iterate left behind must be a consistent, finite vector.
      for (index_t c = 0; c < 2; ++c)
        for (index_t i = 0; i < n; ++i) EXPECT_TRUE(std::isfinite(x(i, c)));
      EXPECT_LE(st.iterations, opts.max_iterations);
      EXPECT_GE(op.visits(), visit);  // the trip point really was reached
    }
  }
}

TEST(Cancellation, ExpiredDeadlineAbortsBeforeFirstOperatorApply) {
  const auto a = poisson2d(7, 7);
  const index_t n = a.rows();
  DenseMatrix<double> b(n, 2);
  const auto f0 = poisson2d_rhs(7, 7, 0.1);
  std::copy(f0.begin(), f0.end(), b.col(0));
  std::copy(f0.begin(), f0.end(), b.col(1));

  for (const CancelEntry& entry : kCancelEntries) {
    SCOPED_TRACE(entry.name);
    std::atomic<bool> token{false};
    CancelAfterOperator op(a, &token, std::int64_t(1) << 40);
    SolverOptions opts;
    opts.restart = 12;
    opts.recycle = 4;
    opts.max_iterations = 400;
    opts.deadline = std::chrono::steady_clock::now();  // already expired
    DenseMatrix<double> x(n, 2);
    SolveStats st;
    ASSERT_NO_THROW(st = entry.run(op, b.view(), x.view(), opts));
    EXPECT_FALSE(st.converged);
    EXPECT_EQ(st.status, SolveStatus::DeadlineExceeded);
    // The entry check fires before the body: zero work was spent.
    EXPECT_EQ(op.visits(), 0);
    EXPECT_EQ(st.operator_applies, 0);
  }
}

TEST(Cancellation, PreSetTokenAbortsBeforeFirstOperatorApply) {
  const auto a = poisson2d(7, 7);
  const index_t n = a.rows();
  DenseMatrix<double> b(n, 1);
  const auto f0 = poisson2d_rhs(7, 7, 0.1);
  std::copy(f0.begin(), f0.end(), b.col(0));
  std::atomic<bool> token{true};
  CancelAfterOperator op(a, &token, std::int64_t(1) << 40);
  SolverOptions opts;
  opts.cancel = &token;
  DenseMatrix<double> x(n, 1);
  SolveStats st;
  ASSERT_NO_THROW(st = cancel_cg(op, b.view(), x.view(), opts));
  EXPECT_EQ(st.status, SolveStatus::Cancelled);
  EXPECT_EQ(op.visits(), 0);
}

TEST(Cancellation, DefaultedOffSolvesAreUntouched) {
  // The cancellation channel must be invisible when unused: a plain solve
  // with default options still converges with the exact same status
  // contract as before the channel existed.
  const auto a = poisson2d(8, 8);
  CsrOperator<double> op(a);
  const auto b = poisson2d_rhs(8, 8, 0.1);
  std::vector<double> x(b.size(), 0.0);
  SolverOptions opts;
  EXPECT_EQ(opts.cancel, nullptr);
  EXPECT_FALSE(detail::deadline_enabled(opts));
  const auto st = gmres<double>(op, nullptr, b, x, opts);
  EXPECT_TRUE(st.converged);
  EXPECT_EQ(st.status, SolveStatus::Converged);
}

TEST(Cancellation, ThrowOnFailureDoesNotEscalateCancellation) {
  // Cancellation and deadlines are client verdicts, not solver failures:
  // throw_on_failure must leave them as statuses, like MaxIterations.
  const auto a = poisson2d(7, 7);
  const index_t n = a.rows();
  DenseMatrix<double> b(n, 1);
  const auto f0 = poisson2d_rhs(7, 7, 0.1);
  std::copy(f0.begin(), f0.end(), b.col(0));
  std::atomic<bool> token{true};
  CsrOperator<double> op(a);
  SolverOptions opts;
  opts.cancel = &token;
  opts.recovery.throw_on_failure = true;
  DenseMatrix<double> x(n, 1);
  SolveStats st;
  EXPECT_NO_THROW(st = cg<double>(op, nullptr, b.view(), x.view(), opts));
  EXPECT_EQ(st.status, SolveStatus::Cancelled);
}

}  // namespace
}  // namespace bkr
