// End-to-end tests for tools/bkr_serve: the multi-tenant solve server
// (DESIGN.md §15). Each test forks the real binary (path injected by the
// build as BKR_SERVE_BINARY), drives its stdin/stdout pipes with
// newline-delimited JSON, and asserts on the response stream — the same
// transport a production client would use.
#include <gtest/gtest.h>

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/recycle_cache.hpp"

namespace {

using Clock = std::chrono::steady_clock;

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// Minimal field extraction from the server's flat JSON responses; enough
// for assertions without a JSON dependency.
std::string json_str(const std::string& line, const std::string& key) {
  const std::string pat = "\"" + key + "\":\"";
  const auto at = line.find(pat);
  if (at == std::string::npos) return "";
  const auto start = at + pat.size();
  const auto end = line.find('"', start);
  return end == std::string::npos ? "" : line.substr(start, end - start);
}

long long json_int(const std::string& line, const std::string& key, long long fallback = -1) {
  const std::string pat = "\"" + key + "\":";
  const auto at = line.find(pat);
  if (at == std::string::npos) return fallback;
  return std::atoll(line.c_str() + at + pat.size());
}

// Fork/exec harness holding the child's stdin and stdout pipes.
class ServeProc {
 public:
  explicit ServeProc(const std::vector<std::string>& extra_args = {}) {
    ::signal(SIGPIPE, SIG_IGN);
    int to_child[2], from_child[2];
    if (::pipe(to_child) != 0 || ::pipe(from_child) != 0) return;
    pid_ = ::fork();
    if (pid_ == 0) {
      ::dup2(to_child[0], STDIN_FILENO);
      ::dup2(from_child[1], STDOUT_FILENO);
      ::close(to_child[0]);
      ::close(to_child[1]);
      ::close(from_child[0]);
      ::close(from_child[1]);
      std::vector<char*> argv;
      static const char* bin = BKR_SERVE_BINARY;
      argv.push_back(const_cast<char*>(bin));
      for (const auto& a : extra_args) argv.push_back(const_cast<char*>(a.c_str()));
      argv.push_back(nullptr);
      ::execv(bin, argv.data());
      std::perror("execv bkr_serve");
      ::_exit(127);
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    in_fd_ = to_child[1];
    out_fd_ = from_child[0];
  }

  ~ServeProc() {
    if (in_fd_ >= 0) ::close(in_fd_);
    if (out_fd_ >= 0) ::close(out_fd_);
    if (pid_ > 0 && !waited_) {
      ::kill(pid_, SIGKILL);
      int st = 0;
      ::waitpid(pid_, &st, 0);
    }
  }

  [[nodiscard]] bool alive() const { return pid_ > 0 && in_fd_ >= 0; }

  void send(const std::string& line) {
    const std::string out = line + "\n";
    ASSERT_EQ(::write(in_fd_, out.data(), out.size()), ssize_t(out.size()));
  }

  void close_stdin() {
    if (in_fd_ >= 0) ::close(in_fd_);
    in_fd_ = -1;
  }

  void terminate() { ::kill(pid_, SIGTERM); }

  // Blocks until a full line arrives or the timeout lapses ("" on timeout
  // or EOF). Event lines (no "id") can be skipped by the callers that only
  // care about per-request responses.
  std::string read_line(int timeout_ms = 30000) {
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    while (true) {
      const auto nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - Clock::now())
                            .count();
      if (left <= 0) return "";
      struct pollfd pfd{out_fd_, POLLIN, 0};
      const int rc = ::poll(&pfd, 1, int(left));
      if (rc <= 0) {
        if (rc < 0 && errno == EINTR) continue;
        return "";
      }
      char chunk[4096];
      const ssize_t got = ::read(out_fd_, chunk, sizeof chunk);
      if (got <= 0) return "";
      buffer_.append(chunk, size_t(got));
    }
  }

  // Next response that carries an "id" field (skips stats/event lines).
  std::string read_response(int timeout_ms = 30000) {
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    while (true) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - Clock::now())
                            .count();
      if (left <= 0) return "";
      const std::string line = read_line(int(left));
      if (line.empty()) return "";
      if (!json_str(line, "id").empty()) return line;
    }
  }

  int wait_exit(int timeout_ms = 30000) {
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    int st = 0;
    while (Clock::now() < deadline) {
      const pid_t got = ::waitpid(pid_, &st, WNOHANG);
      if (got == pid_) {
        waited_ = true;
        return WIFEXITED(st) ? WEXITSTATUS(st) : 128 + WTERMSIG(st);
      }
      ::usleep(10000);
    }
    return -1;
  }

 private:
  pid_t pid_ = -1;
  int in_fd_ = -1;
  int out_fd_ = -1;
  bool waited_ = false;
  std::string buffer_;
};

std::string solve_req(const std::string& id, const std::string& matrix,
                      const std::string& method, const std::string& extra = "") {
  return "{\"op\":\"solve\",\"id\":\"" + id + "\",\"matrix\":\"" + matrix +
         "\",\"method\":\"" + method + "\"" + (extra.empty() ? "" : "," + extra) + "}";
}

// A request that can never converge (tol=0 is the documented smoother
// mode) — the deterministic way to keep a worker lane busy.
std::string stuck_req(const std::string& id) {
  return solve_req(id, "poisson2d:64", "gmres", "\"tol\":0,\"max_iterations\":100000000");
}

TEST(Serve, ColdSolveThenWarmStartThroughSharedCache) {
  ServeProc srv({"-workers", "1"});
  ASSERT_TRUE(srv.alive());
  srv.send(solve_req("cold", "poisson2d:32", "gcrodr", "\"tenant\":\"a\""));
  const std::string r1 = srv.read_response();
  ASSERT_FALSE(r1.empty());
  EXPECT_EQ(json_str(r1, "status"), "converged");
  EXPECT_EQ(json_int(r1, "warm_start"), 0);
  const long long cold_iters = json_int(r1, "iterations");

  // Same operator from a different tenant: the recycle space deposited by
  // the first session must warm-start the second.
  srv.send(solve_req("warm", "poisson2d:32", "gcrodr", "\"tenant\":\"b\""));
  const std::string r2 = srv.read_response();
  ASSERT_FALSE(r2.empty());
  EXPECT_EQ(json_str(r2, "status"), "converged");
  EXPECT_EQ(json_int(r2, "warm_start"), 1);
  EXPECT_LT(json_int(r2, "iterations"), cold_iters);

  srv.send("{\"op\":\"shutdown\"}");
  EXPECT_EQ(srv.wait_exit(), 0);
}

TEST(Serve, HeldRequestsBatchIntoOneBlockSolveBitwiseEqualToSeparate) {
  // Two tenants share an operator; held requests flush into a single
  // width-2 pseudo-block solve. The pseudo-block lanes are arithmetically
  // independent, so each tenant's answer must be bitwise identical
  // (x_hash) to the width-1 solve it would have gotten alone.
  std::map<std::string, std::string> batched_hash;
  {
    ServeProc srv({"-workers", "1"});
    ASSERT_TRUE(srv.alive());
    srv.send(solve_req("a1", "poisson2d:32", "pseudo_gmres",
                       "\"tenant\":\"a\",\"nu\":0.1,\"hold\":true"));
    srv.send(solve_req("b1", "poisson2d:32", "pseudo_gmres",
                       "\"tenant\":\"b\",\"nu\":0.2,\"hold\":true"));
    srv.send("{\"op\":\"flush\"}");
    for (int i = 0; i < 2; ++i) {
      const std::string r = srv.read_response();
      ASSERT_FALSE(r.empty());
      EXPECT_EQ(json_str(r, "status"), "converged");
      EXPECT_EQ(json_int(r, "batch_width"), 2);  // really one block solve
      batched_hash[json_str(r, "id")] = json_str(r, "x_hash");
    }
    srv.send("{\"op\":\"shutdown\"}");
    EXPECT_EQ(srv.wait_exit(), 0);
  }
  ASSERT_EQ(batched_hash.size(), 2u);

  ServeProc srv({"-workers", "1"});
  ASSERT_TRUE(srv.alive());
  srv.send(solve_req("a1", "poisson2d:32", "pseudo_gmres", "\"tenant\":\"a\",\"nu\":0.1"));
  srv.send(solve_req("b1", "poisson2d:32", "pseudo_gmres", "\"tenant\":\"b\",\"nu\":0.2"));
  for (int i = 0; i < 2; ++i) {
    const std::string r = srv.read_response();
    ASSERT_FALSE(r.empty());
    EXPECT_EQ(json_int(r, "batch_width"), 1);
    EXPECT_EQ(json_str(r, "x_hash"), batched_hash[json_str(r, "id")]);
  }
  srv.send("{\"op\":\"shutdown\"}");
  EXPECT_EQ(srv.wait_exit(), 0);
}

TEST(Serve, QueueOverflowReturnsOverloadedWithoutBlocking) {
  // One lane, queue budget 2: a stuck request plus one queued fill the
  // budget, so the burst behind them must be refused immediately with
  // typed "overloaded" responses — never block, never starve.
  ServeProc srv({"-workers", "1", "-queue", "2"});
  ASSERT_TRUE(srv.alive());
  srv.send(stuck_req("stuck"));
  ::usleep(200000);  // let the lane pick the stuck solve up
  srv.send(solve_req("q1", "poisson2d:16", "cg"));
  srv.send(solve_req("q2", "poisson2d:16", "cg"));
  srv.send(solve_req("q3", "poisson2d:16", "cg"));

  int overloaded = 0;
  const auto start = Clock::now();
  for (int i = 0; i < 2; ++i) {
    const std::string r = srv.read_response(5000);
    ASSERT_FALSE(r.empty());
    EXPECT_EQ(json_str(r, "status"), "overloaded");
    EXPECT_EQ(json_str(r, "reason"), "queue-full");
    ++overloaded;
  }
  const auto waited =
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - start).count();
  EXPECT_EQ(overloaded, 2);
  EXPECT_LT(waited, 2000);  // refusals arrive while the lane is still busy

  // Cancelling the stuck solve lets the queued request drain normally.
  srv.send("{\"op\":\"cancel\",\"id\":\"stuck\"}");
  bool saw_cancelled = false, saw_q1 = false;
  for (int i = 0; i < 2; ++i) {
    const std::string r = srv.read_response();
    ASSERT_FALSE(r.empty());
    if (json_str(r, "id") == "stuck") {
      EXPECT_EQ(json_str(r, "status"), "cancelled");
      saw_cancelled = true;
    } else if (json_str(r, "id") == "q1") {
      EXPECT_EQ(json_str(r, "status"), "converged");
      saw_q1 = true;
    }
  }
  EXPECT_TRUE(saw_cancelled);
  EXPECT_TRUE(saw_q1);
  srv.send("{\"op\":\"shutdown\"}");
  EXPECT_EQ(srv.wait_exit(), 0);
}

TEST(Serve, TenantCapRefusesTypedNotBlocking) {
  ServeProc srv({"-workers", "1", "-tenant_cap", "1"});
  ASSERT_TRUE(srv.alive());
  srv.send(stuck_req("t1"));
  ::usleep(100000);
  srv.send(solve_req("t2", "poisson2d:16", "cg", "\"tenant\":\"default\""));
  const std::string r = srv.read_response(5000);
  ASSERT_FALSE(r.empty());
  EXPECT_EQ(json_str(r, "id"), "t2");
  EXPECT_EQ(json_str(r, "status"), "overloaded");
  EXPECT_EQ(json_str(r, "reason"), "tenant-cap");
  // A different tenant is unaffected by the cap.
  srv.send(solve_req("u1", "poisson2d:16", "cg", "\"tenant\":\"other\""));
  srv.send("{\"op\":\"cancel\",\"id\":\"t1\"}");
  for (int i = 0; i < 2; ++i) ASSERT_FALSE(srv.read_response().empty());
  srv.send("{\"op\":\"shutdown\"}");
  EXPECT_EQ(srv.wait_exit(), 0);
}

TEST(Serve, TightDeadlineRefusedWithinAHundredMilliseconds) {
  ServeProc srv({"-workers", "1"});
  ASSERT_TRUE(srv.alive());
  // Warm-up on the same operator so the timed request measures the
  // deadline refusal, not the one-off matrix assembly.
  srv.send(solve_req("prep", "poisson2d:256", "cg", "\"tol\":0.5,\"max_iterations\":3"));
  ASSERT_FALSE(srv.read_response().empty());
  const auto start = Clock::now();
  srv.send(solve_req("t1", "poisson2d:256", "gmres", "\"tol\":1e-14,\"deadline_ms\":1"));
  const std::string r = srv.read_response(5000);
  const auto waited =
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - start).count();
  ASSERT_FALSE(r.empty());
  EXPECT_EQ(json_str(r, "status"), "deadline-exceeded");
  EXPECT_LT(waited, 100);
  srv.send("{\"op\":\"shutdown\"}");
  EXPECT_EQ(srv.wait_exit(), 0);
}

TEST(Serve, DegradationLadderFallsBackGcrodrToGmres) {
  ServeProc srv({"-workers", "1"});
  ASSERT_TRUE(srv.alive());
  srv.send("{\"op\":\"degrade\",\"level\":3}");
  ::usleep(100000);  // the level is read at execution time
  srv.send(solve_req("d1", "poisson2d:32", "gcrodr"));
  const std::string r = srv.read_response();
  ASSERT_FALSE(r.empty());
  EXPECT_EQ(json_str(r, "status"), "converged");
  EXPECT_EQ(json_str(r, "method"), "gmres");  // method-fallback rung
  EXPECT_EQ(json_int(r, "degraded"), 3);
  srv.send("{\"op\":\"shutdown\"}");
  EXPECT_EQ(srv.wait_exit(), 0);
}

TEST(Serve, SigtermDrainsInFlightWorkAndSnapshotsCache) {
  const std::string snap = temp_path("bkr_serve_sigterm.bkrc");
  std::remove(snap.c_str());
  {
    ServeProc srv({"-workers", "1", "-cache_file", snap, "-drain_ms", "500"});
    ASSERT_TRUE(srv.alive());
    // A completed recycling solve puts one space in the cache...
    srv.send(solve_req("warm", "poisson2d:16", "gcrodr"));
    ASSERT_EQ(json_str(srv.read_response(), "status"), "converged");
    // ...and a stuck request is mid-flight when SIGTERM lands.
    srv.send(stuck_req("stuck"));
    ::usleep(200000);
    srv.terminate();
    // Drain: the in-flight solve is cancelled at the drain deadline and
    // still gets its response before the process exits cleanly.
    const std::string r = srv.read_response(10000);
    ASSERT_FALSE(r.empty());
    EXPECT_EQ(json_str(r, "id"), "stuck");
    EXPECT_EQ(json_str(r, "status"), "cancelled");
    EXPECT_EQ(srv.wait_exit(10000), 0);
  }
  // The snapshot written during shutdown is a loadable cache image.
  bkr::RecycleCache loaded;
  ASSERT_TRUE(loaded.load(snap));
  EXPECT_GE(loaded.counters().entries, 1u);
  std::remove(snap.c_str());
}

TEST(Serve, MalformedAndInvalidRequestsAreRejectedTyped) {
  ServeProc srv({"-workers", "1"});
  ASSERT_TRUE(srv.alive());
  srv.send("this is not json");
  std::string r = srv.read_line(5000);
  ASSERT_FALSE(r.empty());
  EXPECT_EQ(json_str(r, "status"), "rejected");
  srv.send(solve_req("bad", "poisson2d:32", "no_such_method"));
  r = srv.read_response(5000);
  EXPECT_EQ(json_str(r, "status"), "rejected");
  srv.send(solve_req("nomat", "not-a-spec", "cg"));
  r = srv.read_response(5000);
  EXPECT_EQ(json_str(r, "status"), "rejected");
  // Duplicate in-flight id.
  srv.send(stuck_req("dup"));
  ::usleep(100000);
  srv.send(stuck_req("dup"));
  r = srv.read_response(5000);
  EXPECT_EQ(json_str(r, "status"), "rejected");
  srv.send("{\"op\":\"cancel\",\"id\":\"dup\"}");
  ASSERT_FALSE(srv.read_response().empty());
  srv.send("{\"op\":\"shutdown\"}");
  EXPECT_EQ(srv.wait_exit(), 0);
}

TEST(Serve, EofOnStdinShutsDownGracefully) {
  ServeProc srv({"-workers", "1"});
  ASSERT_TRUE(srv.alive());
  srv.send(solve_req("r1", "poisson2d:16", "cg"));
  ASSERT_EQ(json_str(srv.read_response(), "status"), "converged");
  srv.close_stdin();
  EXPECT_EQ(srv.wait_exit(), 0);
}

}  // namespace
