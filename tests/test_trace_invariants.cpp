// Property-based invariants of the Krylov building blocks and the
// telemetry they emit (src/obs): Arnoldi relation, orthogonality loss per
// Gram-Schmidt mode, CholQR triangularity, recycled-space orthonormality,
// and well-formedness of the per-iteration trace events.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/gcrodr.hpp"
#include "core/gmres.hpp"
#include "core/krylov_detail.hpp"
#include "fem/poisson2d.hpp"
#include "precond/jacobi.hpp"
#include "test_helpers.hpp"

namespace bkr {
namespace {

using testing::diff_fro;
using testing::ortho_defect;
using testing::random_matrix;

// Seeded nonsymmetric operator: the Poisson stencil with its
// strictly-upper entries randomly rescaled (SPD structure kept, symmetry
// broken) — the general-matrix regime of the Arnoldi-based methods.
CsrMatrix<double> nonsymmetric_poisson(index_t nx, index_t ny, unsigned seed) {
  auto a = poisson2d(nx, ny);
  Rng rng(seed);
  auto& vals = a.values();
  const auto& rowptr = a.rowptr();
  const auto& colind = a.colind();
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t l = rowptr[size_t(i)]; l < rowptr[size_t(i) + 1]; ++l)
      if (colind[size_t(l)] > i) vals[size_t(l)] *= 1.0 + 0.3 * rng.uniform(0.0, 1.0);
  return a;
}

TEST(TraceInvariants, CholQrUpperTriangularPositiveDiagonal) {
  // qr_block returns W = Q R with R upper triangular, positive diagonal,
  // Q orthonormal — and accounts exactly one global reduction.
  const index_t n = 200, p = 5;
  for (const unsigned seed : {7u, 8u, 9u}) {
    auto w = random_matrix<double>(n, p, seed);
    const DenseMatrix<double> w0 = w;
    DenseMatrix<double> r(p, p);
    SolveStats st;
    obs::SolverTrace trace;
    ASSERT_TRUE(detail::qr_block<double>(w.view(), r.view(), st, nullptr, &trace));
    for (index_t c = 0; c < p; ++c) {
      EXPECT_GT(r(c, c), 0.0) << "seed " << seed;
      for (index_t i = c + 1; i < p; ++i) EXPECT_EQ(r(i, c), 0.0) << "seed " << seed;
    }
    EXPECT_LT(ortho_defect<double>(w.view()), 1e-12) << "seed " << seed;
    DenseMatrix<double> qr_prod(n, p);
    gemm<double>(Trans::N, Trans::N, 1.0, w.view(), r.view(), 0.0, qr_prod.view());
    EXPECT_LT(diff_fro<double>(qr_prod.view(), w0.view()), 1e-11) << "seed " << seed;
    EXPECT_EQ(st.reductions, 1);
    EXPECT_EQ(trace.phase_count(obs::Phase::Reduction), 1);
    EXPECT_EQ(trace.phase_count(obs::Phase::OrthoNormalization), 1);
  }
}

TEST(TraceInvariants, ProjectionOrthogonalityLossPerMode) {
  // After projecting a random vector against an orthonormal basis, the
  // remaining overlap V^H w measures the orthogonality loss of each mode:
  // single-pass CGS is the loosest, CGS2 and MGS reach machine level.
  // Reduction counts follow section III-D (1, 2, and one per basis block).
  const index_t n = 300, s = 8;
  auto basis = random_matrix<double>(n, s, 11);
  DenseMatrix<double> r(s, s);
  SolveStats qst;
  ASSERT_TRUE(detail::qr_block<double>(basis.view(), r.view(), qst, nullptr, nullptr));

  struct ModeCase {
    Ortho mode;
    std::int64_t reductions;
    double defect_bound;
  };
  const ModeCase cases[] = {{Ortho::Cgs, 1, 1e-8},
                            {Ortho::Cgs2, 2, 1e-13},
                            {Ortho::Mgs, s, 1e-13}};
  for (const auto& mc : cases) {
    auto w = random_matrix<double>(n, 1, 12);
    const DenseMatrix<double> w0 = w;
    DenseMatrix<double> h(s, 1);
    h.set_zero();
    SolveStats st;
    obs::SolverTrace trace;
    SolverWorkspace<double> ws;
    detail::project<double>(basis.view(), s, w.view(), h.view(), mc.mode, 1, st, nullptr, ws,
                            &trace);
    // Residual overlap with the basis.
    DenseMatrix<double> overlap(s, 1);
    gemm<double>(Trans::C, Trans::N, 1.0, basis.view(),
                 MatrixView<const double>(w.data(), n, 1, n), 0.0, overlap.view());
    double loss = 0;
    for (index_t i = 0; i < s; ++i) loss = std::max(loss, std::abs(overlap(i, 0)));
    EXPECT_LT(loss, mc.defect_bound) << "mode " << int(mc.mode);
    // Reconstruction: w0 = w + V h.
    DenseMatrix<double> rec = w;
    gemm<double>(Trans::N, Trans::N, 1.0, basis.view(),
                 MatrixView<const double>(h.data(), s, 1, s), 1.0, rec.view());
    EXPECT_LT(diff_fro<double>(rec.view(), w0.view()), 1e-12) << "mode " << int(mc.mode);
    EXPECT_EQ(st.reductions, mc.reductions) << "mode " << int(mc.mode);
    EXPECT_EQ(trace.phase_count(obs::Phase::Reduction), mc.reductions) << "mode " << int(mc.mode);
    EXPECT_EQ(trace.phase_count(obs::Phase::OrthoProjection), 1) << "mode " << int(mc.mode);
  }
}

TEST(TraceInvariants, ArnoldiRelationResidual) {
  // Build an Arnoldi decomposition from the same project / qr_block
  // primitives every solver uses and check A V_m = V_{m+1} Hbar_m to
  // machine precision on a seeded nonsymmetric operator.
  const auto a = nonsymmetric_poisson(12, 12, 21);
  const index_t n = a.rows(), mdim = 20;
  CsrOperator<double> op(a);
  DenseMatrix<double> v(n, mdim + 1), hbar(mdim + 1, mdim);
  hbar.set_zero();
  {
    auto b = random_matrix<double>(n, 1, 22);
    copy_into<double>(b.view(), v.block(0, 0, n, 1));
    DenseMatrix<double> r0(1, 1);
    SolveStats st;
    ASSERT_TRUE(detail::qr_block<double>(v.block(0, 0, n, 1), r0.view(), st, nullptr, nullptr));
  }
  SolveStats st;
  SolverWorkspace<double> ws;
  for (index_t j = 0; j < mdim; ++j) {
    auto w = v.block(0, j + 1, n, 1);
    op.apply(MatrixView<const double>(v.col(j), n, 1, v.ld()), w);
    DenseMatrix<double> h(j + 1, 1);
    h.set_zero();
    detail::project<double>(v.view(), j + 1, w, h.view(), Ortho::Cgs2, 1, st, nullptr, ws);
    for (index_t i = 0; i <= j; ++i) hbar(i, j) = h(i, 0);
    DenseMatrix<double> r(1, 1);
    ASSERT_TRUE(detail::qr_block<double>(w, r.view(), st, nullptr, nullptr)) << "iteration " << j;
    hbar(j + 1, j) = r(0, 0);
  }
  EXPECT_LT(ortho_defect<double>(v.view()), 1e-12);
  // ||A V_m - V_{m+1} Hbar||_F relative to ||A V_m||_F.
  DenseMatrix<double> av(n, mdim), vh(n, mdim);
  op.apply(MatrixView<const double>(v.data(), n, mdim, v.ld()), av.view());
  gemm<double>(Trans::N, Trans::N, 1.0, v.view(),
               MatrixView<const double>(hbar.data(), mdim + 1, mdim, hbar.ld()), 0.0, vh.view());
  const double rel = diff_fro<double>(av.view(), vh.view()) /
                     std::max(norm_fro<double>(av.view()), 1e-300);
  EXPECT_LT(rel, 1e-13);
}

TEST(TraceInvariants, RecycledSpaceOrthonormalWithTrace) {
  // Over a sequence of solves with a nonsymmetric matrix the recycled C_k
  // stays orthonormal, A U_k = C_k holds, and the attached trace records
  // one solve per call with the recycle dimension visible in the events.
  const auto a = nonsymmetric_poisson(11, 11, 31);
  const index_t n = a.rows(), k = 5;
  CsrOperator<double> op(a);
  obs::SolverTrace trace;
  SolverOptions opts;
  opts.restart = 15;
  opts.recycle = k;
  opts.tol = 1e-9;
  opts.trace = &trace;
  GcroDr<double> solver(opts);
  Rng rng(32);
  const int nsolves = 4;
  for (int s = 0; s < nsolves; ++s) {
    std::vector<double> b(static_cast<size_t>(n));
    for (auto& val : b) val = rng.scalar<double>();
    std::vector<double> x(b.size(), 0.0);
    const auto st = solver.solve(op, nullptr, MatrixView<const double>(b.data(), n, 1, n),
                                 MatrixView<double>(x.data(), n, 1, n), nullptr, false);
    ASSERT_TRUE(st.converged) << "solve " << s;
    const auto& c = solver.recycled_c();
    const auto& u = solver.recycled_u();
    EXPECT_LT(ortho_defect<double>(c.view()), 1e-10) << "solve " << s;
    DenseMatrix<double> au(n, u.cols());
    a.spmm(u.view(), au.view());
    EXPECT_LT(diff_fro<double>(au.view(), c.view()), 1e-9) << "solve " << s;
    ASSERT_EQ(trace.solves().size(), size_t(s + 1));
    const auto& rec = trace.solves().back();
    EXPECT_EQ(rec.method, "gcrodr");
    EXPECT_EQ(rec.n, n);
    EXPECT_EQ(rec.nrhs, 1);
    EXPECT_TRUE(rec.converged);
    EXPECT_EQ(rec.iterations, st.iterations);
    EXPECT_EQ(rec.cycles, st.cycles);
    if (s > 0) {
      // After the first solve the recycled space is active from the start.
      ASSERT_FALSE(rec.events.empty());
      bool saw_recycle = false;
      for (const auto& ev : rec.events) saw_recycle |= ev.recycle_dim == k;
      EXPECT_TRUE(saw_recycle) << "solve " << s;
    }
  }
}

TEST(TraceInvariants, IterationEventsWellFormed) {
  // Multi-cycle block solve: events carry consecutive iteration numbers,
  // non-decreasing cycles, basis sizes bounded by the restart, and one
  // residual per RHS column; the final event sits at the tolerance.
  const auto a = poisson2d(12, 12);
  const index_t n = a.rows(), p = 3;
  CsrOperator<double> op(a);
  JacobiPreconditioner<double> m(a);
  const auto b = random_matrix<double>(n, p, 41);
  obs::SolverTrace trace;
  SolverOptions opts;
  opts.restart = 12;  // forces several cycles
  opts.tol = 1e-9;
  opts.trace = &trace;
  DenseMatrix<double> x(n, p);
  x.set_zero();
  const auto st = block_gmres<double>(op, &m, b.view(), x.view(), opts);
  ASSERT_TRUE(st.converged);
  ASSERT_EQ(trace.solves().size(), 1u);
  const auto& rec = trace.solves()[0];
  ASSERT_EQ(index_t(rec.events.size()), st.iterations);
  index_t prev_cycle = 1;
  for (size_t i = 0; i < rec.events.size(); ++i) {
    const auto& ev = rec.events[i];
    EXPECT_EQ(ev.iteration, index_t(i) + 1);
    EXPECT_GE(ev.cycle, prev_cycle);
    EXPECT_LE(ev.cycle, st.cycles);
    prev_cycle = ev.cycle;
    EXPECT_GE(ev.basis_size, p);
    // After iteration j the basis holds j+1 blocks (the newly normalized
    // one included), so a full cycle peaks at (m+1) blocks.
    EXPECT_LE(ev.basis_size, (opts.restart + 1) * p);
    ASSERT_EQ(ev.residuals.size(), size_t(p));
    for (const double res : ev.residuals) EXPECT_GE(res, 0.0);
  }
  for (const double res : rec.events.back().residuals) EXPECT_LE(res, opts.tol * 1.0001);
}

TEST(TraceInvariants, PhaseSecondsNonNegativeAndBounded) {
  // The phase scopes never nest, so the per-phase seconds sum to at most
  // the solve wall time (modulo clock granularity).
  const auto a = poisson2d(24, 24);
  CsrOperator<double> op(a);
  JacobiPreconditioner<double> m(a);
  obs::SolverTrace trace;
  SolverOptions opts;
  opts.restart = 40;
  opts.tol = 1e-8;
  opts.trace = &trace;
  const auto b = poisson2d_rhs(24, 24, 5.0);
  std::vector<double> x(b.size(), 0.0);
  const auto st = gmres<double>(op, &m, b, x, opts);
  ASSERT_TRUE(st.converged);
  double sum = 0;
  for (int ph = 0; ph < obs::kPhaseCount; ++ph) {
    const auto totals = trace.phase_totals(static_cast<obs::Phase>(ph));
    EXPECT_GE(totals.seconds, 0.0);
    EXPECT_GE(totals.count, 0);
    sum += totals.seconds;
  }
  EXPECT_GT(sum, 0.0);
  EXPECT_NEAR(trace.total_phase_seconds(), sum, 1e-12);
  EXPECT_NEAR(trace.total_solve_seconds(), st.seconds, 1e-12);
  // Generous slack: steady_clock reads on tiny spans can overshoot.
  EXPECT_LE(trace.total_phase_seconds(), st.seconds * 1.25 + 1e-3);
}

}  // namespace
}  // namespace bkr
